package eagg_test

import (
	"fmt"
	"math/rand"
	"testing"

	"eagg"
	"eagg/internal/engine"
)

// buildStarQuery assembles the doc-comment example through the facade.
func buildStarQuery() (*eagg.Query, int) {
	q := eagg.NewQuery()
	fact := q.AddRelation("fact", 1_000_000)
	dim := q.AddRelation("dim", 100)
	fk := q.AddAttr(fact, "fact.fk", 100)
	g := q.AddAttr(fact, "fact.g", 10)
	q.AddAttr(fact, "fact.v", 500_000)
	pk := q.AddAttr(dim, "dim.pk", 100)
	q.AddKey(dim, pk)
	q.Root = eagg.Join(eagg.InnerJoin, eagg.Scan(fact), eagg.Scan(dim), fk, pk, 1.0/100)
	q.SetGrouping([]int{g}, eagg.Aggregates(
		eagg.Count("cnt"), eagg.Sum("total", "fact.v")))
	return q, g
}

func TestFacadeOptimize(t *testing.T) {
	q, _ := buildStarQuery()
	for _, alg := range []eagg.Algorithm{eagg.DPhyp, eagg.EAAll, eagg.EAPrune, eagg.H1} {
		res, err := eagg.Optimize(q, eagg.Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Plan == nil || res.Plan.Cost <= 0 {
			t.Fatalf("%v: bad result", alg)
		}
	}
	res, err := eagg.Optimize(q, eagg.Options{Algorithm: eagg.H2, F: 1.03})
	if err != nil || res.Plan == nil {
		t.Fatalf("H2: %v", err)
	}
}

func TestFacadeEagerBeatsLazy(t *testing.T) {
	q, _ := buildStarQuery()
	lazy, _ := eagg.Optimize(q, eagg.Options{Algorithm: eagg.DPhyp})
	eager, _ := eagg.Optimize(q, eagg.Options{Algorithm: eagg.EAPrune})
	if eager.Plan.Cost >= lazy.Plan.Cost {
		t.Errorf("eager %.6g should beat lazy %.6g", eager.Plan.Cost, lazy.Plan.Cost)
	}
}

func TestFacadeExecuteMatchesCanonical(t *testing.T) {
	q, _ := buildStarQuery()
	data := engine.RandomData(rand.New(rand.NewSource(3)), q, 8)
	want, err := eagg.Canonical(q, data)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := eagg.Optimize(q, eagg.Options{Algorithm: eagg.EAPrune})
	got, err := eagg.Execute(q, res.Plan, data)
	if err != nil {
		t.Fatal(err)
	}
	if !eagg.SameResult(q, want, got) {
		t.Errorf("optimized result differs\nwant:\n%v\ngot:\n%v", want, got)
	}
}

func TestFacadeAggregateHelpers(t *testing.T) {
	v := eagg.Aggregates(
		eagg.Count("c"), eagg.CountOf("ca", "x"), eagg.Sum("s", "x"),
		eagg.Min("lo", "x"), eagg.Max("hi", "x"), eagg.Avg("m", "x"))
	if len(v) != 6 {
		t.Fatalf("vector length %d", len(v))
	}
	outs := v.Outs()
	want := []string{"c", "ca", "s", "lo", "hi", "m"}
	for i := range want {
		if outs[i] != want[i] {
			t.Errorf("outs = %v", outs)
		}
	}
}

// Example demonstrates the optimizer collapsing a star-schema aggregation
// by pushing the grouping below the join.
func Example() {
	q := eagg.NewQuery()
	fact := q.AddRelation("fact", 1_000_000)
	dim := q.AddRelation("dim", 100)
	fk := q.AddAttr(fact, "fact.fk", 100)
	g := q.AddAttr(fact, "fact.g", 10)
	q.AddAttr(fact, "fact.v", 500_000)
	pk := q.AddAttr(dim, "dim.pk", 100)
	q.AddKey(dim, pk)
	q.Root = eagg.Join(eagg.InnerJoin, eagg.Scan(fact), eagg.Scan(dim), fk, pk, 1.0/100)
	q.SetGrouping([]int{g}, eagg.Aggregates(
		eagg.Count("cnt"), eagg.Sum("total", "fact.v")))

	lazy, _ := eagg.Optimize(q, eagg.Options{Algorithm: eagg.DPhyp})
	eager, _ := eagg.Optimize(q, eagg.Options{Algorithm: eagg.EAPrune})
	fmt.Printf("lazy  C_out = %.6g\n", lazy.Plan.Cost)
	fmt.Printf("eager C_out = %.6g\n", eager.Plan.Cost)
	fmt.Printf("eager groupings pushed: %d\n", eager.Plan.CountGroupings())
	// Output:
	// lazy  C_out = 1.00001e+06
	// eager C_out = 2010
	// eager groupings pushed: 1
}

// TestFacadeReoptimize drives the cardinality feedback loop through the
// facade: the loop must converge to a plan whose estimate matches its
// own execution, and the result must stay identical to the canonical
// evaluation. It also exercises manual use of the seam: an overlay
// harvested from one execution fed back via Options.Stats.
func TestFacadeReoptimize(t *testing.T) {
	q, _ := buildStarQuery()
	data := engine.RandomData(rand.New(rand.NewSource(3)), q, 8).Tables()
	res, err := eagg.Reoptimize(q, data, eagg.FeedbackOptions{
		Opt: eagg.Options{Algorithm: eagg.EAPrune, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("feedback loop did not converge in %d rounds", len(res.Rounds))
	}
	if qe := res.Final().Stats.CoutQError(); qe > 1+1e-9 {
		t.Fatalf("converged q-error %g > 1", qe)
	}
	want, err := eagg.CanonicalTables(q, data)
	if err != nil {
		t.Fatal(err)
	}
	if !eagg.SameResult(q, want.Rel(), res.Result.Rel()) {
		t.Fatal("feedback result differs from canonical")
	}

	// Manual seam use: harvest a profile, re-optimize under it.
	first, err := eagg.Optimize(q, eagg.Options{Algorithm: eagg.EAPrune, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := eagg.ExecuteProfiled(q, first.Plan, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Ops) == 0 {
		t.Fatal("execution profile is empty")
	}
	second, err := eagg.Optimize(q, eagg.Options{Algorithm: eagg.EAPrune, Workers: 1, Stats: stats.Profile()})
	if err != nil {
		t.Fatal(err)
	}
	if second.Plan == nil {
		t.Fatal("re-optimization under overlay failed")
	}
}

// TestFacadeSurfacesCapacityErrors pins the satellite contract of the
// >64-relation roadmap item's first step: blowing the relation or
// attribute caps is an error returned by Optimize, not a panic during
// query construction.
func TestFacadeSurfacesCapacityErrors(t *testing.T) {
	q := eagg.NewQuery()
	for i := 0; i < 80; i++ {
		q.AddRelation(fmt.Sprintf("r%d", i), 10)
	}
	if _, err := eagg.Optimize(q, eagg.Options{Algorithm: eagg.H1}); err == nil {
		t.Fatal("Optimize must reject a query that overflowed the relation cap")
	}
}

// TestFacadePhysModes drives the sort-based physical layer through the
// facade: all three modes optimize and execute the doc example, results
// equal the canonical evaluation.
func TestFacadePhysModes(t *testing.T) {
	q, _ := buildStarQuery()
	rng := rand.New(rand.NewSource(5))
	data := engine.RandomData(rng, q, 40)
	want, err := eagg.Canonical(q, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []eagg.PhysMode{eagg.PhysHash, eagg.PhysSort, eagg.PhysAuto} {
		res, err := eagg.Optimize(q, eagg.Options{Algorithm: eagg.EAPrune, Phys: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		got, err := eagg.Execute(q, res.Plan, data)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !eagg.SameResult(q, want, got) {
			t.Fatalf("%v: result differs from canonical", mode)
		}
	}
	if _, err := eagg.ParsePhysMode("bogus"); err == nil {
		t.Fatal("ParsePhysMode must reject unknown modes")
	}
}
