package algebra

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"eagg/internal/aggfn"
)

// randomRel builds a relation with mixed value kinds: NULLs, small ints,
// floats (including integral floats, which join-equal ints), and strings
// containing the characters of the legacy key encoding.
func randomRel(rng *rand.Rand, attrs []string, rows int) *Rel {
	r := &Rel{Attrs: append([]string(nil), attrs...)}
	for i := 0; i < rows; i++ {
		t := make(Tuple, len(attrs))
		for _, a := range attrs {
			t[a] = randomValue(rng)
		}
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(10) {
	case 0:
		return Null
	case 1:
		return Float(float64(rng.Intn(4))) // integral float: join-equals ints
	case 2:
		return Float(float64(rng.Intn(8)) / 2)
	case 3:
		return Str([]string{"a", "b", "a|b", "s", "|", "a|sb"}[rng.Intn(6)])
	default:
		return Int(int64(rng.Intn(4)))
	}
}

// sameRel asserts two relations are identical as sequences of tuples over
// the given schema (stronger than bag equality: the hash operators
// promise nested-loop output order).
func sameRel(t *testing.T, want, got *Rel, attrs []string) {
	t.Helper()
	if len(want.Tuples) != len(got.Tuples) {
		t.Fatalf("cardinality: want %d got %d\nwant:\n%v\ngot:\n%v",
			len(want.Tuples), len(got.Tuples), want, got)
	}
	for i := range want.Tuples {
		if encodeTuple(want.Tuples[i], attrs) != encodeTuple(got.Tuples[i], attrs) {
			t.Fatalf("row %d differs\nwant:\n%v\ngot:\n%v", i, want, got)
		}
	}
}

// TestHashJoinsMatchNestedLoops is the operator-level equivalence
// property: every hash operator must produce exactly the nested-loop
// reference result, including NULL key semantics, padding defaults and
// cross-kind numeric key equality.
func TestHashJoinsMatchNestedLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		la := []string{"l.k1", "l.k2", "l.v"}
		ra := []string{"r.k1", "r.k2", "r.w"}
		l := randomRel(rng, la, rng.Intn(12))
		r := randomRel(rng, ra, rng.Intn(12))
		for _, tu := range r.Tuples {
			// r.w is aggregated below; keep it numeric (the runtime's
			// relations are typed consistently per attribute).
			if tu["r.w"].Kind == KindString {
				tu["r.w"] = Int(int64(len(tu["r.w"].S)))
			}
		}
		lt, rt := TableOf(l), TableOf(r)

		nKeys := rng.Intn(3) // 0 keys = cross-product degeneration
		var preds []Pred
		var lk, rk []int
		for i := 0; i < nKeys; i++ {
			preds = append(preds, EqAttr(la[i], ra[i]))
			lk = append(lk, lt.Schema.MustSlot(la[i]))
			rk = append(rk, rt.Schema.MustSlot(ra[i]))
		}
		pred := AndPred(preds...)

		sameRel(t, Join(l, r, pred), HashJoin(lt, rt, lk, rk).Rel(), append(la, ra...))
		sameRel(t, SemiJoin(l, r, pred), HashSemiJoin(lt, rt, lk, rk).Rel(), la)
		sameRel(t, AntiJoin(l, r, pred), HashAntiJoin(lt, rt, lk, rk).Rel(), la)

		var defs Defaults
		pad := NullRow(rt.Schema)
		if rng.Intn(2) == 0 {
			defs = Defaults{"r.w": Int(1)}
			pad[rt.Schema.MustSlot("r.w")] = Int(1)
		}
		sameRel(t, LeftOuter(l, r, pred, defs),
			HashLeftOuter(lt, rt, lk, rk, pad).Rel(), append(la, ra...))

		lpad := NullRow(lt.Schema)
		sameRel(t, FullOuter(l, r, pred, nil, defs),
			HashFullOuter(lt, rt, lk, rk, lpad, pad).Rel(), append(la, ra...))

		gjVec := aggfn.Vector{
			{Out: "gj_cnt", Kind: aggfn.CountStar},
			{Out: "gj_sum", Kind: aggfn.Sum, Arg: "r.w"},
			{Out: "gj_min", Kind: aggfn.Min, Arg: "r.w"},
		}
		sameRel(t, GroupJoin(l, r, pred, gjVec),
			HashGroupJoin(lt, rt, lk, rk, gjVec).Rel(),
			append(la, "gj_cnt", "gj_sum", "gj_min"))

		// Workers>1 arm: the morsel-parallel variants must reproduce
		// the same nested-loop reference, output order included. Tiny
		// morsels force real fan-out even on these small inputs.
		par := NewExec(3).WithMorselSize(2)
		sameRel(t, Join(l, r, pred), par.HashJoin(lt, rt, lk, rk).Rel(), append(la, ra...))
		sameRel(t, SemiJoin(l, r, pred), par.HashSemiJoin(lt, rt, lk, rk).Rel(), la)
		sameRel(t, AntiJoin(l, r, pred), par.HashAntiJoin(lt, rt, lk, rk).Rel(), la)
		sameRel(t, LeftOuter(l, r, pred, defs),
			par.HashLeftOuter(lt, rt, lk, rk, pad).Rel(), append(la, ra...))
		sameRel(t, FullOuter(l, r, pred, nil, defs),
			par.HashFullOuter(lt, rt, lk, rk, lpad, pad).Rel(), append(la, ra...))
		sameRel(t, GroupJoin(l, r, pred, gjVec),
			par.HashGroupJoin(lt, rt, lk, rk, gjVec).Rel(),
			append(la, "gj_cnt", "gj_sum", "gj_min"))
	}
}

// TestHashGroupMatchesGroup checks typed hash aggregation against the
// reference Group for every aggregate kind, including the derived forms
// the engine's eager-aggregation rewrites produce.
func TestHashGroupMatchesGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vec := aggfn.Vector{
		{Out: "o_cnt", Kind: aggfn.CountStar},
		{Out: "o_cnta", Kind: aggfn.Count, Arg: "e.a"},
		{Out: "o_sum", Kind: aggfn.Sum, Arg: "e.a"},
		{Out: "o_min", Kind: aggfn.Min, Arg: "e.a"},
		{Out: "o_max", Kind: aggfn.Max, Arg: "e.b"},
		{Out: "o_avg", Kind: aggfn.Avg, Arg: "e.b"},
		{Out: "o_st", Kind: aggfn.SumTimes, Arg: "e.a", Arg2: "e.b"},
		{Out: "o_snn", Kind: aggfn.SumIfNotNull, Arg: "e.a", Arg2: "e.b"},
		{Out: "o_am", Kind: aggfn.AvgMerge, Arg: "e.a", Arg2: "e.b"},
		{Out: "o_amw", Kind: aggfn.AvgMerge, Arg: "e.a", Arg2: "e.b", Weight: "e.w"},
		{Out: "o_aw", Kind: aggfn.AvgWeighted, Arg: "e.a", Arg2: "e.w"},
		{Out: "o_sd", Kind: aggfn.SumDistinct, Arg: "e.a"},
		{Out: "o_cd", Kind: aggfn.CountDistinct, Arg: "e.a"},
		{Out: "o_ad", Kind: aggfn.AvgDistinct, Arg: "e.b"},
	}
	numeric := func(rng *rand.Rand) Value {
		switch rng.Intn(6) {
		case 0:
			return Null
		case 1:
			return Float(float64(rng.Intn(8)) / 4)
		default:
			return Int(int64(rng.Intn(5)))
		}
	}
	for trial := 0; trial < 200; trial++ {
		attrs := []string{"e.g1", "e.g2", "e.a", "e.b", "e.w"}
		e := &Rel{Attrs: attrs}
		for i := 0; i < rng.Intn(20); i++ {
			tu := Tuple{
				"e.g1": randomValue(rng),
				"e.g2": randomValue(rng),
				"e.a":  numeric(rng),
				"e.b":  numeric(rng),
				"e.w":  numeric(rng),
			}
			e.Tuples = append(e.Tuples, tu)
		}
		g := []string{"e.g1", "e.g2"}[:1+rng.Intn(2)]
		et := TableOf(e)
		want := Group(e, g, vec)
		got := HashGroup(et, g, vec)
		outAttrs := append(append([]string{}, g...), vec.Outs()...)
		sameRel(t, want, got.Rel(), outAttrs)

		// Workers>1 arm: partition-parallel aggregation against the
		// same reference, for every aggregate kind.
		par := NewExec(4).WithMorselSize(3)
		sameRel(t, want, par.HashGroup(et, g, vec).Rel(), outAttrs)
	}
}

// TestGroupingKeyCollision pins the fix for the legacy string-concatenated
// grouping keys: under the old encoding ("s"+payload joined by '|'), the
// two tuples below encoded identically — ("a|sb|sc", "d") and
// ("a", "b|sc|sd") both rendered as "sa|sb|sc|sd|" — so grouping merged
// two distinct groups and DISTINCT dropped a row. The length-prefixed
// encoding keeps them apart; the typed binary keys of the slot runtime
// are collision-proof by construction.
func TestGroupingKeyCollision(t *testing.T) {
	rel := NewRel([]string{"x", "y"},
		[]any{"a|sb|sc", "d"},
		[]any{"a", "b|sc|sd"},
	)
	if g := Group(rel, []string{"x", "y"}, aggfn.Vector{{Out: "c", Kind: aggfn.CountStar}}); g.Card() != 2 {
		t.Fatalf("Group merged distinct groups: got %d groups\n%v", g.Card(), g)
	}
	if d := DistinctProject(rel, []string{"x", "y"}); d.Card() != 2 {
		t.Fatalf("DistinctProject merged distinct tuples: got %d rows\n%v", d.Card(), d)
	}
	tab := TableOf(rel)
	if g := HashGroup(tab, []string{"x", "y"}, aggfn.Vector{{Out: "c", Kind: aggfn.CountStar}}); g.Card() != 2 {
		t.Fatalf("HashGroup merged distinct groups: got %d groups", g.Card())
	}
	// The simpler shape from the issue: a value containing the separator
	// must not merge with the tuple of its fragments.
	rel2 := NewRel([]string{"x", "y"},
		[]any{"a|b", "c"},
		[]any{"a", "b|c"},
	)
	if d := DistinctProject(rel2, []string{"x", "y"}); d.Card() != 2 {
		t.Fatalf("DistinctProject merged %q-style tuples: got %d rows", "a|b", d.Card())
	}
}

// TestNaNKeySemantics pins the strict-equality treatment of NaN: NaN
// join keys match nothing (NaN ≠ NaN, like the nested-loop EqStrict
// path), while grouping collapses all NaN payloads into one group (like
// the reference encoding, which renders every NaN as "NaN").
func TestNaNKeySemantics(t *testing.T) {
	nan := Float(math.NaN())
	l := NewRel([]string{"l.k"}, []any{nan}, []any{1.5})
	r := NewRel([]string{"r.k"}, []any{nan}, []any{1.5})
	lt, rt := TableOf(l), TableOf(r)
	lk, rk := []int{0}, []int{0}
	pred := EqAttr("l.k", "r.k")

	sameRel(t, Join(l, r, pred), HashJoin(lt, rt, lk, rk).Rel(), []string{"l.k", "r.k"})
	sameRel(t, AntiJoin(l, r, pred), HashAntiJoin(lt, rt, lk, rk).Rel(), []string{"l.k"})
	if got := HashJoin(lt, rt, lk, rk); got.Card() != 1 {
		t.Fatalf("NaN join keys must match nothing: got %d rows", got.Card())
	}

	g := NewRel([]string{"g"}, []any{nan}, []any{Float(math.Float64frombits(0x7ff8000000000001))})
	gt := TableOf(g)
	want := Group(g, []string{"g"}, aggfn.Vector{{Out: "c", Kind: aggfn.CountStar}})
	got := HashGroup(gt, []string{"g"}, aggfn.Vector{{Out: "c", Kind: aggfn.CountStar}})
	if want.Card() != 1 || got.Card() != 1 {
		t.Fatalf("NaN payloads must form one group: reference %d, hash %d", want.Card(), got.Card())
	}
}

// TestTableRoundTrip: Rel → Table → Rel preserves the bag and the schema.
func TestTableRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		attrs := []string{"t.a", "t.b", "t.c"}
		r := randomRel(rng, attrs, rng.Intn(10))
		back := TableOf(r).Rel()
		sameRel(t, r, back, attrs)
		if fmt.Sprint(back.Attrs) != fmt.Sprint(r.Attrs) {
			t.Fatalf("schema drift: %v vs %v", back.Attrs, r.Attrs)
		}
	}
}
