package algebra

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"eagg/internal/aggfn"
)

// identicalTables asserts two tables are bit-identical: same schema in
// slot order, same rows as a sequence, every value equal in kind and
// payload (floats compared by bit pattern, so even -0 vs +0 or different
// summation orders are caught).
func identicalTables(t *testing.T, label string, want, got *Table) {
	t.Helper()
	if fmt.Sprint(want.Schema.Names()) != fmt.Sprint(got.Schema.Names()) {
		t.Fatalf("%s: schema differs: %v vs %v", label, want.Schema.Names(), got.Schema.Names())
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: cardinality differs: want %d got %d", label, len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			a, b := want.Rows[i][j], got.Rows[i][j]
			if a.Kind != b.Kind || a.I != b.I || a.S != b.S ||
				math.Float64bits(a.F) != math.Float64bits(b.F) {
				t.Fatalf("%s: row %d slot %d differs: %v (%#v) vs %v (%#v)", label, i, j, a, a, b, b)
			}
		}
	}
}

// TestParallelOpsIdenticalToSequential is the operator-level determinism
// contract of the morsel-driven runtime: for every operator, every
// worker count and every morsel size, the parallel variant must produce
// a bit-identical copy of the sequential output — same rows, same
// order, same float payloads.
func TestParallelOpsIdenticalToSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	execs := []*Exec{
		NewExec(2).WithMorselSize(1),
		NewExec(3).WithMorselSize(2),
		NewExec(8).WithMorselSize(7),
		NewExec(4), // default morsel size: single-morsel fallback on small data
	}
	for trial := 0; trial < 120; trial++ {
		la := []string{"l.k1", "l.k2", "l.v"}
		ra := []string{"r.k1", "r.k2", "r.w"}
		l := randomRel(rng, la, rng.Intn(30))
		r := randomRel(rng, ra, rng.Intn(30))
		for _, tu := range r.Tuples {
			// r.w and l.v are aggregated below; keep them numeric (the
			// runtime's relations are typed consistently per attribute).
			if tu["r.w"].Kind == KindString {
				tu["r.w"] = Int(int64(len(tu["r.w"].S)))
			}
		}
		for _, tu := range l.Tuples {
			if tu["l.v"].Kind == KindString {
				tu["l.v"] = Int(int64(len(tu["l.v"].S)))
			}
		}
		lt, rt := TableOf(l), TableOf(r)

		nKeys := rng.Intn(3)
		var lk, rk []int
		for i := 0; i < nKeys; i++ {
			lk = append(lk, lt.Schema.MustSlot(la[i]))
			rk = append(rk, rt.Schema.MustSlot(ra[i]))
		}
		pad := NullRow(rt.Schema)
		pad[rt.Schema.MustSlot("r.w")] = Int(1)
		lpad := NullRow(lt.Schema)
		gjVec := aggfn.Vector{
			{Out: "gj_cnt", Kind: aggfn.CountStar},
			{Out: "gj_sum", Kind: aggfn.Sum, Arg: "r.w"},
		}

		e := execs[trial%len(execs)]
		identicalTables(t, "join", HashJoin(lt, rt, lk, rk), e.HashJoin(lt, rt, lk, rk))
		identicalTables(t, "semi", HashSemiJoin(lt, rt, lk, rk), e.HashSemiJoin(lt, rt, lk, rk))
		identicalTables(t, "anti", HashAntiJoin(lt, rt, lk, rk), e.HashAntiJoin(lt, rt, lk, rk))
		identicalTables(t, "leftouter",
			HashLeftOuter(lt, rt, lk, rk, pad), e.HashLeftOuter(lt, rt, lk, rk, pad))
		identicalTables(t, "fullouter",
			HashFullOuter(lt, rt, lk, rk, lpad, pad), e.HashFullOuter(lt, rt, lk, rk, lpad, pad))
		identicalTables(t, "groupjoin",
			HashGroupJoin(lt, rt, lk, rk, gjVec), e.HashGroupJoin(lt, rt, lk, rk, gjVec))

		groupBy := []string{"l.k1", "l.k2"}[:1+rng.Intn(2)]
		aggVec := aggfn.Vector{
			{Out: "cnt", Kind: aggfn.CountStar},
			{Out: "mn", Kind: aggfn.Min, Arg: "l.v"},
			{Out: "cd", Kind: aggfn.CountDistinct, Arg: "l.v"},
		}
		identicalTables(t, "group",
			HashGroup(lt, groupBy, aggVec), e.HashGroup(lt, groupBy, aggVec))

		wSlot := rt.Schema.MustSlot("r.w")
		ext := func(row Row) Value { return Mul(row.get(wSlot), Int(2)) }
		identicalTables(t, "extend",
			ExtendTable(rt, "x", ext), e.ExtendTable(rt, "x", ext))
	}
}

// TestParallelFloatSumOrder pins the core determinism promise for
// order-sensitive float aggregation: sums whose value depends on
// accumulation order (catastrophic cancellation between big and small
// terms) must come out bit-identical under parallel aggregation, because
// each group's rows are folded in global input order by exactly one
// partition task.
func TestParallelFloatSumOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := NewTable(NewSchema([]string{"g", "v"}))
	for i := 0; i < 5000; i++ {
		g := Int(int64(rng.Intn(17)))
		var v Value
		switch rng.Intn(3) {
		case 0:
			v = Float(1e16)
		case 1:
			v = Float(-1e16)
		default:
			v = Float(rng.Float64())
		}
		tab.Rows = append(tab.Rows, Row{g, v})
	}
	vec := aggfn.Vector{
		{Out: "s", Kind: aggfn.Sum, Arg: "v"},
		{Out: "a", Kind: aggfn.Avg, Arg: "v"},
	}
	want := HashGroup(tab, []string{"g"}, vec)
	for _, workers := range []int{2, 4, 8} {
		e := NewExec(workers).WithMorselSize(64)
		identicalTables(t, fmt.Sprintf("workers=%d", workers), want, e.HashGroup(tab, []string{"g"}, vec))
	}
}

// TestExecSettings pins the Exec settings resolution: 0 and negatives
// resolve to GOMAXPROCS, nil and 1 are sequential, WithMorselSize(0)
// restores the default.
func TestExecSettings(t *testing.T) {
	if got, want := NewExec(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("NewExec(0).Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got, want := NewExec(-3).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("NewExec(-3).Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got := NewExec(5).Workers(); got != 5 {
		t.Errorf("NewExec(5).Workers() = %d", got)
	}
	var nilExec *Exec
	if nilExec.Workers() != 1 || nilExec.par() {
		t.Error("nil Exec must be sequential with 1 worker")
	}
	if NewExec(1).par() {
		t.Error("Workers 1 must select the sequential path")
	}
	if e := NewExec(4).WithMorselSize(0); e.morsel != 0 {
		t.Errorf("WithMorselSize(0) = %d, want adaptive default 0", e.morsel)
	}
}

// TestSizeFor pins the adaptive morsel sizing: explicit sizes are
// exact, the default yields several morsels per worker within the
// [minMorselSize, DefaultMorselSize] clamp, and sizing is a pure
// function of the input cardinality.
func TestSizeFor(t *testing.T) {
	e := NewExec(4)
	if got := e.WithMorselSize(7).sizeFor(1_000_000); got != 7 {
		t.Errorf("explicit size: got %d, want 7", got)
	}
	if got := e.sizeFor(10); got != minMorselSize {
		t.Errorf("tiny input: got %d, want floor %d", got, minMorselSize)
	}
	if got := e.sizeFor(100_000_000); got != DefaultMorselSize {
		t.Errorf("huge input: got %d, want cap %d", got, DefaultMorselSize)
	}
	n := 4000
	size := e.sizeFor(n)
	morsels := e.morselCount(n)
	if morsels < e.workers {
		t.Errorf("n=%d: only %d morsels for %d workers (size %d)", n, morsels, e.workers, size)
	}
	if size < minMorselSize || size > DefaultMorselSize {
		t.Errorf("size %d outside clamp", size)
	}
}

// TestForMorsels checks the scheduler: every row index is covered
// exactly once for assorted sizes and worker counts, including the
// empty input.
func TestForMorsels(t *testing.T) {
	for _, n := range []int{0, 1, 5, 100, 1000} {
		for _, workers := range []int{1, 2, 7} {
			for _, size := range []int{1, 3, 4096} {
				e := NewExec(workers).WithMorselSize(size)
				covered := make([]atomic.Int32, n)
				e.forMorsels(n, func(m, lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("n=%d: bad morsel [%d,%d)", n, lo, hi)
					}
					for i := lo; i < hi; i++ {
						covered[i].Add(1)
					}
				})
				for i := range covered {
					if covered[i].Load() != 1 {
						t.Fatalf("n=%d w=%d size=%d: row %d covered %d times", n, workers, size, i, covered[i].Load())
					}
				}
			}
		}
	}
}

// TestPartitionedBuildMatchesBuildSide: the partitioned table must hold
// exactly the sequential buildSide postings, split by key hash.
func TestPartitionedBuildMatchesBuildSide(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		ra := []string{"r.k1", "r.k2"}
		r := randomRel(rng, ra, rng.Intn(40))
		rt := TableOf(r)
		rk := []int{0, 1}[:1+rng.Intn(2)]

		want := buildSide(rt, rk)
		e := NewExec(4).WithMorselSize(3)
		pt := e.buildPartitioned(rt, rk)

		total := 0
		for _, mp := range pt.parts {
			if mp != nil {
				total += mp.n
			}
		}
		if total != len(want) {
			t.Fatalf("partitioned table has %d keys, sequential %d", total, len(want))
		}
		for key, rows := range want {
			got := pt.lookup([]byte(key))
			if fmt.Sprint(got) != fmt.Sprint(rows) {
				t.Fatalf("postings differ for key %q: want %v got %v", key, rows, got)
			}
		}
	}
}
