package algebra

import (
	"fmt"

	"eagg/internal/aggfn"
)

// Cmp is the comparison operator θ of the θ-grouping operator Γθ and the
// groupjoin.
type Cmp int

const (
	// CmpEq is '=' (with grouping semantics: NULLs compare equal).
	CmpEq Cmp = iota
	// CmpNe is '≠'.
	CmpNe
	// CmpLt is '<'.
	CmpLt
	// CmpLe is '≤'.
	CmpLe
	// CmpGt is '>'.
	CmpGt
	// CmpGe is '≥'.
	CmpGe
)

// Holds evaluates a θ b. For CmpEq, grouping equality applies (two NULLs
// are equal); for the ordering comparisons NULL makes the comparison
// unknown, hence false.
func (c Cmp) Holds(a, b Value) bool {
	if c == CmpEq {
		return EqGrouping(a, b)
	}
	if c == CmpNe {
		if a.IsNull() || b.IsNull() {
			return false
		}
		return !eqNonNull(a, b)
	}
	r, ok := CompareStrict(a, b)
	if !ok {
		return false
	}
	switch c {
	case CmpLt:
		return r < 0
	case CmpLe:
		return r <= 0
	case CmpGt:
		return r > 0
	case CmpGe:
		return r >= 0
	}
	return false
}

// EvalAgg applies a single aggregate to a group of tuples with SQL
// semantics (NULLs are ignored by sum/min/max/avg/count(a); sum of an
// empty or all-NULL input is NULL; count never is).
func EvalAgg(a aggfn.Agg, group []Tuple) Value {
	switch a.Kind {
	case aggfn.CountStar:
		return Int(int64(len(group)))
	case aggfn.Count:
		n := int64(0)
		for _, t := range group {
			if !t.Get(a.Arg).IsNull() {
				n++
			}
		}
		return Int(n)
	case aggfn.Sum:
		return sumOf(group, func(t Tuple) Value { return t.Get(a.Arg) })
	case aggfn.SumTimes:
		return sumOf(group, func(t Tuple) Value { return Mul(t.Get(a.Arg), t.Get(a.Arg2)) })
	case aggfn.SumIfNotNull:
		return sumOf(group, func(t Tuple) Value {
			if t.Get(a.Arg).IsNull() {
				return Int(0)
			}
			return t.Get(a.Arg2)
		})
	case aggfn.Min, aggfn.Max:
		var best Value = Null
		for _, t := range group {
			v := t.Get(a.Arg)
			if v.IsNull() {
				continue
			}
			if best.IsNull() {
				best = v
				continue
			}
			r, _ := CompareStrict(v, best)
			if (a.Kind == aggfn.Min && r < 0) || (a.Kind == aggfn.Max && r > 0) {
				best = v
			}
		}
		return best
	case aggfn.Avg:
		s := sumOf(group, func(t Tuple) Value { return t.Get(a.Arg) })
		n := EvalAgg(aggfn.Agg{Kind: aggfn.Count, Arg: a.Arg}, group)
		return Div(s, n)
	case aggfn.AvgMerge:
		num := sumOf(group, func(t Tuple) Value { return weighted(t, a.Arg, a.Weight) })
		den := sumOf(group, func(t Tuple) Value { return weighted(t, a.Arg2, a.Weight) })
		return Div(num, den)
	case aggfn.AvgWeighted:
		num := sumOf(group, func(t Tuple) Value { return Mul(t.Get(a.Arg), t.Get(a.Arg2)) })
		den := sumOf(group, func(t Tuple) Value {
			if t.Get(a.Arg).IsNull() {
				return Int(0)
			}
			return t.Get(a.Arg2)
		})
		return Div(num, den)
	case aggfn.SumDistinct, aggfn.CountDistinct, aggfn.AvgDistinct:
		vals := distinctNonNull(group, a.Arg)
		switch a.Kind {
		case aggfn.CountDistinct:
			return Int(int64(len(vals)))
		case aggfn.SumDistinct:
			var s Value = Null
			for _, v := range vals {
				if s.IsNull() {
					s = v
				} else {
					s = Add(s, v)
				}
			}
			return s
		default: // AvgDistinct
			if len(vals) == 0 {
				return Null
			}
			var s Value = Null
			for _, v := range vals {
				if s.IsNull() {
					s = v
				} else {
					s = Add(s, v)
				}
			}
			return Div(s, Int(int64(len(vals))))
		}
	}
	panic(fmt.Sprintf("algebra: unknown aggregate kind %v", a.Kind))
}

func weighted(t Tuple, attr, weight string) Value {
	v := t.Get(attr)
	if weight == "" {
		return v
	}
	return Mul(v, t.Get(weight))
}

// sumOf folds SQL sum over per-tuple terms: NULL terms are skipped, and the
// result is NULL when no non-NULL term exists.
func sumOf(group []Tuple, term func(Tuple) Value) Value {
	var s Value = Null
	for _, t := range group {
		v := term(t)
		if v.IsNull() {
			continue
		}
		if s.IsNull() {
			s = v
		} else {
			s = Add(s, v)
		}
	}
	return s
}

func distinctNonNull(group []Tuple, attr string) []Value {
	seen := map[string]bool{}
	var out []Value
	for _, t := range group {
		v := t.Get(attr)
		if v.IsNull() {
			continue
		}
		k := v.encode()
		if !seen[k] {
			seen[k] = true
			out = append(out, v)
		}
	}
	return out
}

// EvalVector applies an aggregation vector to a group, producing a tuple of
// the output attributes.
func EvalVector(f aggfn.Vector, group []Tuple) Tuple {
	out := make(Tuple, len(f))
	for _, a := range f {
		out[a.Out] = EvalAgg(a, group)
	}
	return out
}

// Group is the standard grouping operator Γ_{G;F}(e) with θ = '='. NULLs in
// grouping attributes form their own group, as in SQL GROUP BY.
func Group(e *Rel, g []string, f aggfn.Vector) *Rel {
	out := &Rel{Attrs: schemaUnion(g, f.Outs())}
	order := make([]string, 0)
	groups := map[string][]Tuple{}
	reps := map[string]Tuple{}
	for _, t := range e.Tuples {
		key := make(Tuple, len(g))
		for _, a := range g {
			key[a] = t.Get(a)
		}
		k := encodeTuple(key, g)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
			reps[k] = key
		}
		groups[k] = append(groups[k], t)
	}
	for _, k := range order {
		out.Tuples = append(out.Tuples, reps[k].Concat(EvalVector(f, groups[k])))
	}
	return out
}

// GroupTheta is the θ-grouping operator Γθ_{G;F}(e): group representatives
// are the distinct G-projections of e, and the group of a representative y
// is {z ∈ e | z.G θ y.G} with θ applied attribute-wise.
func GroupTheta(e *Rel, g []string, theta Cmp, f aggfn.Vector) *Rel {
	if theta == CmpEq {
		return Group(e, g, f)
	}
	out := &Rel{Attrs: schemaUnion(g, f.Outs())}
	for _, y := range DistinctProject(e, g).Tuples {
		var group []Tuple
		for _, z := range e.Tuples {
			all := true
			for _, a := range g {
				if !theta.Holds(z.Get(a), y.Get(a)) {
					all = false
					break
				}
			}
			if all {
				group = append(group, z)
			}
		}
		out.Tuples = append(out.Tuples, y.Concat(EvalVector(f, group)))
	}
	return out
}

// GroupJoin is the left groupjoin e1 Z_{p;F} e2 (Eqv. 9): each tuple of e1
// is extended by the aggregates of its join partners in e2. Empty partner
// sets yield the aggregates of ∅ (0 for counts, NULL for sum/min/max/avg).
func GroupJoin(e1, e2 *Rel, p Pred, f aggfn.Vector) *Rel {
	out := &Rel{Attrs: schemaUnion(e1.Attrs, f.Outs())}
	for _, r := range e1.Tuples {
		var group []Tuple
		for _, s := range e2.Tuples {
			if p(r, s) {
				group = append(group, s)
			}
		}
		out.Tuples = append(out.Tuples, r.Concat(EvalVector(f, group)))
	}
	return out
}

// GroupJoinTheta is the groupjoin with an attribute-wise θ-comparison
// between G1 ⊆ A(e1) and G2 ⊆ A(e2), e1 Z_{G1 θ G2; F} e2.
func GroupJoinTheta(e1, e2 *Rel, g1, g2 []string, theta Cmp, f aggfn.Vector) *Rel {
	if len(g1) != len(g2) {
		panic("algebra: GroupJoinTheta attribute lists differ in length")
	}
	p := func(l, r Tuple) bool {
		for i := range g1 {
			var holds bool
			if theta == CmpEq {
				// Join-predicate equality is strict: NULL matches nothing.
				holds = EqStrict(l.Get(g1[i]), r.Get(g2[i]))
			} else {
				holds = theta.Holds(l.Get(g1[i]), r.Get(g2[i]))
			}
			if !holds {
				return false
			}
		}
		return true
	}
	return GroupJoin(e1, e2, p, f)
}

// MapAggs realizes the χ_F̂ operator of the top-grouping elimination
// (Eqv. 42): every tuple is extended by each aggregate applied to the
// singleton bag {t}.
func MapAggs(e *Rel, f aggfn.Vector) *Rel {
	out := &Rel{Attrs: schemaUnion(e.Attrs, f.Outs())}
	for _, t := range e.Tuples {
		out.Tuples = append(out.Tuples, t.Concat(EvalVector(f, []Tuple{t})))
	}
	return out
}
