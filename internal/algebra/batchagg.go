package algebra

import (
	"sort"

	"eagg/internal/aggfn"
)

// Batch-at-a-time hash aggregation. Every aggregate of the vector picks a
// fold kernel ONCE per operator, from (aggregate kind, input column
// kinds): typed columns get monomorphic loops over []int64 / []float64 /
// []string payloads with no per-value kind dispatch; ColMixed columns,
// absent arguments and the rare aggregate forms fall back to the shared
// row-runtime accumulator core (aggCell.updateVals), which is
// bit-identical by construction.
//
// The typed kernels replicate the aggCell trajectories exactly:
//
//   - Sums use first-assignment start (the first non-NULL term is
//     assigned, not added to a zero), matching addTo — observable with
//     float -0.0: addTo(NULL, -0.0) is -0.0, while 0 + -0.0 would be
//     +0.0.
//   - A typed column fixes every term's kind, so an int column's running
//     sum stays Int and a float column's stays Float, exactly like
//     Add/Mul on uniform-kind operands; terms fold in input order, so
//     float rounding is reproduced bit for bit.
//   - Min/Max use plain </> against the current best, replicating
//     CompareStrict's NaN behavior (NaN compares r=0, keeping the
//     current best) and its -0.0 == +0.0 tie (neither < nor >, keep
//     current).

// foldKind selects the batch fold kernel of one aggregate.
type foldKind uint8

const (
	foldGeneric foldKind = iota
	foldCountStar
	foldCount
	foldSumInt
	foldSumFloat
	foldSumTimesInt   // both factors int columns
	foldSumTimesFloat // numeric factors, at least one float column
	foldSumIfInt      // SumIfNotNull with an int (or absent) arg2 column
	foldMinInt
	foldMaxInt
	foldMinFloat
	foldMaxFloat
	foldMinStr
	foldMaxStr
	foldAvgInt
	foldAvgFloat
)

// foldKindOf picks the kernel for one bound aggregate against the input
// column kinds. Any argument the aggregate reads that is absent (slot -1)
// routes to the generic kernel — correctness first, those cases are rare.
func foldKindOf(a *BoundAgg, t *ColTable) foldKind {
	kind := func(slot int) (ColKind, bool) {
		if slot < 0 {
			return 0, false
		}
		return t.Cols[slot].Kind, true
	}
	switch a.Kind {
	case aggfn.CountStar:
		return foldCountStar
	case aggfn.Count:
		if _, ok := kind(a.Arg); ok {
			return foldCount
		}
	case aggfn.Sum:
		switch k, ok := kind(a.Arg); {
		case ok && k == ColInt:
			return foldSumInt
		case ok && k == ColFloat:
			return foldSumFloat
		}
	case aggfn.SumTimes:
		k1, ok1 := kind(a.Arg)
		k2, ok2 := kind(a.Arg2)
		if ok1 && ok2 && (k1 == ColInt || k1 == ColFloat) && (k2 == ColInt || k2 == ColFloat) {
			if k1 == ColInt && k2 == ColInt {
				return foldSumTimesInt
			}
			return foldSumTimesFloat
		}
	case aggfn.SumIfNotNull:
		if _, ok := kind(a.Arg); ok {
			// Int(0) terms for NULL args keep the running sum on the Int
			// trajectory only if non-NULL terms are Int too.
			if k2, ok2 := kind(a.Arg2); !ok2 || k2 == ColInt {
				return foldSumIfInt
			}
		}
	case aggfn.Min, aggfn.Max:
		k, ok := kind(a.Arg)
		if !ok {
			return foldGeneric
		}
		mn := a.Kind == aggfn.Min
		switch k {
		case ColInt:
			if mn {
				return foldMinInt
			}
			return foldMaxInt
		case ColFloat:
			if mn {
				return foldMinFloat
			}
			return foldMaxFloat
		case ColStr:
			if mn {
				return foldMinStr
			}
			return foldMaxStr
		}
	case aggfn.Avg:
		switch k, ok := kind(a.Arg); {
		case ok && k == ColInt:
			return foldAvgInt
		case ok && k == ColFloat:
			return foldAvgFloat
		}
	}
	return foldGeneric
}

// bCell is the flat accumulator of one (group, aggregate) pair under a
// typed kernel: an int64/float64/string running value plus a count, with
// a lazily allocated full aggCell for the generic kernel.
type bCell struct {
	count int64
	seen  bool // a term fixed the running value (addTo's first assignment)
	i     int64
	f     float64
	s     string
	gen   *aggCell
}

// bFinal produces the aggregate result of a cell under its kernel. The
// zero cell is the valid empty state (NULL sums, zero counts), like the
// zero aggCell.
func (c *bCell) bFinal(fk foldKind, a *BoundAgg) Value {
	switch fk {
	case foldCountStar, foldCount:
		return Int(c.count)
	case foldSumInt, foldSumTimesInt, foldSumIfInt, foldMinInt, foldMaxInt:
		if !c.seen {
			return Null
		}
		return Int(c.i)
	case foldSumFloat, foldSumTimesFloat, foldMinFloat, foldMaxFloat:
		if !c.seen {
			return Null
		}
		return Float(c.f)
	case foldMinStr, foldMaxStr:
		if !c.seen {
			return Null
		}
		return Str(c.s)
	case foldAvgInt:
		if !c.seen {
			return Null // Div(NULL, count) is NULL
		}
		return Div(Int(c.i), Int(c.count))
	case foldAvgFloat:
		if !c.seen {
			return Null
		}
		return Div(Float(c.f), Int(c.count))
	}
	if c.gen == nil {
		var zero aggCell
		return zero.final(a)
	}
	return c.gen.final(a)
}

// batchGrouper accumulates groups of one aggregation (one partition of
// it, under the parallel variant). Groups are discovered per batch, then
// each aggregate's kernel folds the whole batch against the resolved
// group ids — one kernel dispatch per aggregate per batch.
type batchGrouper struct {
	t          *ColTable
	groupSlots []int
	bound      []BoundAgg
	folds      []foldKind
	groups     *bytesIndex // encoded-key group index (hashtable.go)
	intGroups  *intIndex   // single-ColInt key fast path (addInts)
	nullGid    int32       // the NULL key's group id on that path; -1 until seen
	firsts     []int32     // per group: physical index of its first row
	cells      []bCell     // len(firsts) * len(bound), group-major
	gids       []int32     // scratch: per batch row, its group id
	scratch    []byte      // distinct-key scratch of the generic kernel
}

func newBatchGrouper(t *ColTable, groupSlots []int, bound []BoundAgg) *batchGrouper {
	g := &batchGrouper{
		t:          t,
		groupSlots: groupSlots,
		bound:      bound,
		folds:      make([]foldKind, len(bound)),
		nullGid:    -1,
	}
	for i := range bound {
		g.folds[i] = foldKindOf(&bound[i], t)
	}
	return g
}

// add folds one batch: rows are physical indices, keys their grouping
// encodings (aligned with rows).
func (g *batchGrouper) add(rows []int32, keys [][]byte) {
	g.addKeys(rows, keys, nil)
}

// addKeys is add with optionally precomputed key hashes (aligned with
// rows) — the parallel path cached them during the partition scatter.
// Ids are assigned in first-encounter order either way.
func (g *batchGrouper) addKeys(rows []int32, keys [][]byte, hashes []uint64) {
	nb := len(g.bound)
	if g.groups == nil {
		g.groups = newBytesIndex(groupIndexSeedCap)
	}
	g.gids = g.gids[:0]
	for k, i := range rows {
		var h uint64
		if hashes != nil {
			h = hashes[k]
		} else {
			h = hashKey(keys[k])
		}
		id, added := g.groups.lookupOrAdd(h, keys[k], int32(len(g.firsts)))
		if added {
			g.firsts = append(g.firsts, i)
		}
		g.gids = append(g.gids, id)
	}
	g.growCells(nb)
	for j := range g.bound {
		g.fold(j, rows)
	}
}

// recordStats reports the group indexes' final geometry.
func (g *batchGrouper) recordStats(hs *HashStats) {
	if hs == nil {
		return
	}
	if g.groups != nil {
		g.groups.record(hs)
	}
	if g.intGroups != nil {
		g.intGroups.record(hs)
	}
}

// growCells extends the accumulator matrix to the current group count in
// one step. The slice only ever grows, so spare capacity is still the
// zeroed memory make handed out — reslicing exposes valid empty cells.
func (g *batchGrouper) growCells(nb int) {
	if need := len(g.firsts) * nb; need > len(g.cells) {
		if need <= cap(g.cells) {
			g.cells = g.cells[:need]
		} else {
			nc := make([]bCell, need, 2*need)
			copy(nc, g.cells)
			g.cells = nc
		}
	}
}

// addInts folds one batch whose single grouping column is typed int: the
// group key IS the int64 payload (NULL keeps its own group, exactly the
// keyNull tag's), so no key bytes are encoded and no key strings are
// copied into the map. Group discovery order — and therefore the output's
// first-encounter order — matches the encoded path row for row.
func (g *batchGrouper) addInts(rows []int32, col *Vector) {
	nb := len(g.bound)
	if g.intGroups == nil {
		g.intGroups = newIntIndex(groupIndexSeedCap)
	}
	g.gids = g.gids[:0]
	for _, i := range rows {
		var id int32
		if col.IsNull(int(i)) {
			if g.nullGid < 0 {
				g.nullGid = int32(len(g.firsts))
				g.firsts = append(g.firsts, i)
			}
			id = g.nullGid
		} else {
			gid, added := g.intGroups.lookupOrAdd(col.Ints[i], int32(len(g.firsts)))
			if added {
				g.firsts = append(g.firsts, i)
			}
			id = gid
		}
		g.gids = append(g.gids, id)
	}
	g.growCells(nb)
	for j := range g.bound {
		g.fold(j, rows)
	}
}

// fold runs aggregate j's kernel over the batch. The hot kernels hoist
// the column pointer and payload slice out of the loop; each loop body is
// monomorphic over one payload type.
func (g *batchGrouper) fold(j int, rows []int32) {
	a := &g.bound[j]
	nb := len(g.bound)
	cell := func(k int) *bCell { return &g.cells[int(g.gids[k])*nb+j] }
	var col *Vector
	if a.Arg >= 0 {
		col = &g.t.Cols[a.Arg]
	}
	switch g.folds[j] {
	case foldCountStar:
		for k := range rows {
			cell(k).count++
		}
	case foldCount:
		for k, i := range rows {
			if !col.IsNull(int(i)) {
				cell(k).count++
			}
		}
	case foldSumInt:
		vals := col.Ints
		for k, i := range rows {
			if col.IsNull(int(i)) {
				continue
			}
			c := cell(k)
			if !c.seen {
				c.i, c.seen = vals[i], true
			} else {
				c.i += vals[i]
			}
		}
	case foldSumFloat:
		vals := col.Floats
		for k, i := range rows {
			if col.IsNull(int(i)) {
				continue
			}
			c := cell(k)
			if !c.seen {
				c.f, c.seen = vals[i], true
			} else {
				c.f += vals[i]
			}
		}
	case foldSumTimesInt:
		col2 := &g.t.Cols[a.Arg2]
		v1, v2 := col.Ints, col2.Ints
		for k, i := range rows {
			if col.IsNull(int(i)) || col2.IsNull(int(i)) {
				continue // Mul with a NULL factor is NULL; addTo skips it
			}
			term := v1[i] * v2[i]
			c := cell(k)
			if !c.seen {
				c.i, c.seen = term, true
			} else {
				c.i += term
			}
		}
	case foldSumTimesFloat:
		col2 := &g.t.Cols[a.Arg2]
		fac := func(c *Vector, i int32) float64 {
			if c.Kind == ColInt {
				return float64(c.Ints[i])
			}
			return c.Floats[i]
		}
		for k, i := range rows {
			if col.IsNull(int(i)) || col2.IsNull(int(i)) {
				continue
			}
			// Mul with a float operand is Float(a.AsFloat()*b.AsFloat()).
			term := fac(col, i) * fac(col2, i)
			c := cell(k)
			if !c.seen {
				c.f, c.seen = term, true
			} else {
				c.f += term
			}
		}
	case foldSumIfInt:
		var col2 *Vector
		if a.Arg2 >= 0 {
			col2 = &g.t.Cols[a.Arg2]
		}
		for k, i := range rows {
			var term int64 // NULL arg folds Int(0)
			if !col.IsNull(int(i)) {
				if col2 == nil || col2.IsNull(int(i)) {
					continue // non-NULL arg, NULL arg2: addTo skips
				}
				term = col2.Ints[i]
			}
			c := cell(k)
			if !c.seen {
				c.i, c.seen = term, true
			} else {
				c.i += term
			}
		}
	case foldMinInt, foldMaxInt:
		mn := g.folds[j] == foldMinInt
		vals := col.Ints
		for k, i := range rows {
			if col.IsNull(int(i)) {
				continue
			}
			v := vals[i]
			c := cell(k)
			if !c.seen {
				c.i, c.seen = v, true
			} else if (mn && v < c.i) || (!mn && v > c.i) {
				c.i = v
			}
		}
	case foldMinFloat, foldMaxFloat:
		mn := g.folds[j] == foldMinFloat
		vals := col.Floats
		for k, i := range rows {
			if col.IsNull(int(i)) {
				continue
			}
			v := vals[i]
			c := cell(k)
			if !c.seen {
				c.f, c.seen = v, true
			} else if (mn && v < c.f) || (!mn && v > c.f) {
				// NaN terms compare false either way — current best kept,
				// like CompareStrict's r=0 for NaN.
				c.f = v
			}
		}
	case foldMinStr, foldMaxStr:
		mn := g.folds[j] == foldMinStr
		vals := col.Strs
		for k, i := range rows {
			if col.IsNull(int(i)) {
				continue
			}
			v := vals[i]
			c := cell(k)
			if !c.seen {
				c.s, c.seen = v, true
			} else if (mn && v < c.s) || (!mn && v > c.s) {
				c.s = v
			}
		}
	case foldAvgInt:
		vals := col.Ints
		for k, i := range rows {
			if col.IsNull(int(i)) {
				continue
			}
			c := cell(k)
			c.count++
			if !c.seen {
				c.i, c.seen = vals[i], true
			} else {
				c.i += vals[i]
			}
		}
	case foldAvgFloat:
		vals := col.Floats
		for k, i := range rows {
			if col.IsNull(int(i)) {
				continue
			}
			c := cell(k)
			c.count++
			if !c.seen {
				c.f, c.seen = vals[i], true
			} else {
				c.f += vals[i]
			}
		}
	default: // foldGeneric: the shared row-runtime accumulator core
		for k, i := range rows {
			c := cell(k)
			if c.gen == nil {
				c.gen = &aggCell{}
			}
			c.gen.updateVals(a, colValue(g.t, a.Arg, i), colValue(g.t, a.Arg2, i), colValue(g.t, a.Wgt, i), &g.scratch)
		}
	}
}

// emit produces the finished group rows tagged with their first-row
// index, in this grouper's first-encounter order. Representative grouping
// values are read back from each group's first row (the input is
// immutable, so they equal the values seen at discovery).
func (g *batchGrouper) emit() []groupOut {
	nb := len(g.bound)
	outs := make([]groupOut, len(g.firsts))
	for gi, first := range g.firsts {
		row := make(Row, 0, len(g.groupSlots)+nb)
		for _, s := range g.groupSlots {
			row = append(row, colValue(g.t, s, first))
		}
		for j := 0; j < nb; j++ {
			row = append(row, g.cells[gi*nb+j].bFinal(g.folds[j], &g.bound[j]))
		}
		outs[gi] = groupOut{first: first, row: row}
	}
	return outs
}

// emitTable assembles the finished groups directly as a columnar table in
// first-encounter order: group columns are one typed gather of the
// first-row indices each, aggregate columns are built by typed kernels
// from the flat cells — no per-group row materialization at all.
func (g *batchGrouper) emitTable(s *Schema) *ColTable {
	ng := len(g.firsts)
	out := &ColTable{Schema: s, N: ng}
	out.Cols = make([]Vector, 0, len(g.groupSlots)+len(g.bound))
	for _, slot := range g.groupSlots {
		if slot < 0 {
			// Absent grouping attribute: an all-NULL column, like the
			// untyped colBuilder produces.
			var b colBuilder
			for i := 0; i < ng; i++ {
				b.append(Null)
			}
			out.Cols = append(out.Cols, b.finish())
			continue
		}
		out.Cols = append(out.Cols, gatherCol(&g.t.Cols[slot], g.firsts))
	}
	for j := range g.bound {
		out.Cols = append(out.Cols, g.aggCol(j))
	}
	return out
}

// aggCol materializes aggregate j's output column. Counts and the
// int/float/string running values of the typed kernels assemble straight
// from the cells; averages and the generic kernel route through bFinal
// (and the colBuilder) for the exact row-runtime finalization.
func (g *batchGrouper) aggCol(j int) Vector {
	ng, nb := len(g.firsts), len(g.bound)
	var nulls []uint64
	hasNull := false
	markNull := func(i int) {
		if nulls == nil {
			nulls = make([]uint64, (ng+63)/64)
		}
		nulls[i>>6] |= 1 << (uint(i) & 63)
		hasNull = true
	}
	withNulls := func(v Vector) Vector {
		if hasNull {
			v.Nulls = nulls
		}
		return v
	}
	switch g.folds[j] {
	case foldCountStar, foldCount:
		ints := make([]int64, ng)
		for gi := range ints {
			ints[gi] = g.cells[gi*nb+j].count
		}
		return Vector{Kind: ColInt, Ints: ints}
	case foldSumInt, foldSumTimesInt, foldSumIfInt, foldMinInt, foldMaxInt:
		ints := make([]int64, ng)
		for gi := range ints {
			if c := &g.cells[gi*nb+j]; c.seen {
				ints[gi] = c.i
			} else {
				markNull(gi)
			}
		}
		return withNulls(Vector{Kind: ColInt, Ints: ints})
	case foldSumFloat, foldSumTimesFloat, foldMinFloat, foldMaxFloat:
		floats := make([]float64, ng)
		for gi := range floats {
			if c := &g.cells[gi*nb+j]; c.seen {
				floats[gi] = c.f
			} else {
				markNull(gi)
			}
		}
		return withNulls(Vector{Kind: ColFloat, Floats: floats})
	case foldMinStr, foldMaxStr:
		strs := make([]string, ng)
		for gi := range strs {
			if c := &g.cells[gi*nb+j]; c.seen {
				strs[gi] = c.s
			} else {
				markNull(gi)
			}
		}
		return withNulls(Vector{Kind: ColStr, Strs: strs})
	}
	var b colBuilder
	for gi := 0; gi < ng; gi++ {
		b.append(g.cells[gi*nb+j].bFinal(g.folds[j], &g.bound[j]))
	}
	return b.finish()
}

// BatchHashGroup is typed hash aggregation on the batch runtime: one
// output row per distinct grouping key in first-encounter order, exactly
// HashGroup's contract. Sequential: groups discovered and folded batch by
// batch. Parallel: the morsel scatter of the row runtime (keys encoded
// column-major), one grouper per partition folding its entries in global
// input order, partitions merged by ascending first-row index. Because
// selection vectors are monotone, ascending physical first-row order is
// first-encounter order even under a selection.
func (e *Exec) BatchHashGroup(t *ColTable, groupBy []string, f aggfn.Vector) *ColTable {
	bound := BindVector(f, t.Schema)
	groupSlots := t.Schema.Slots(groupBy)
	names := make([]string, 0, len(groupBy)+len(f))
	names = append(names, groupBy...)
	names = append(names, f.Outs()...)
	outSchema := NewSchema(names)
	bs := e.batchSize()
	n := t.Card()

	if !e.parFor(n) {
		g := newBatchGrouper(t, groupSlots, bound)
		if len(groupSlots) == 1 && groupSlots[0] >= 0 && t.Cols[groupSlots[0]].Kind == ColInt {
			col := &t.Cols[groupSlots[0]]
			sc := batchScratchPool.Get().(*batchScratch)
			for b := 0; b < n; b += bs {
				sc.rows = t.physBatch(b, min(b+bs, n), sc.rows)
				g.addInts(sc.rows, col)
			}
			batchScratchPool.Put(sc)
		} else {
			batchKeys(t, 0, n, bs, groupSlots, false, func(rows []int32, kb *keyBatch) {
				g.add(rows, kb.keys)
			})
		}
		g.recordStats(e.hashStats())
		return g.emitTable(outSchema)
	}

	scatters := make([]*morselScatter, e.morselCount(n))
	e.forMorsels(n, func(m, lo, hi int) {
		s := &morselScatter{}
		batchKeys(t, lo, hi, bs, groupSlots, false, func(rows []int32, kb *keyBatch) {
			for k, i := range rows {
				off := len(s.arena)
				s.arena = append(s.arena, kb.keys[k]...)
				key := s.arena[off:]
				h := hashKey(key)
				p := h & (partitions - 1)
				s.buckets[p] = append(s.buckets[p], scatterEntry{row: i, off: int32(off), len: int32(len(key)), hash: h})
			}
		})
		scatters[m] = s
	})

	partOuts := make([][]groupOut, partitions)
	e.forParts(func(p int) {
		g := newBatchGrouper(t, groupSlots, bound)
		rows := make([]int32, 0, bs)
		keys := make([][]byte, 0, bs)
		hashes := make([]uint64, 0, bs)
		flush := func() {
			if len(rows) > 0 {
				g.addKeys(rows, keys, hashes)
				rows, keys, hashes = rows[:0], keys[:0], hashes[:0]
			}
		}
		// Walking scatter entries in morsel order feeds every group in
		// global input order; flushing in slices of bs only chunks that
		// order, it never reorders.
		for _, sc := range scatters {
			for _, en := range sc.buckets[p] {
				rows = append(rows, en.row)
				keys = append(keys, sc.arena[en.off:en.off+en.len])
				hashes = append(hashes, en.hash)
				if len(rows) == bs {
					flush()
				}
			}
		}
		flush()
		g.recordStats(e.hashStats())
		partOuts[p] = g.emit()
	})

	var all []groupOut
	for _, outs := range partOuts {
		all = append(all, outs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].first < all[j].first })
	rows := make([]Row, len(all))
	for i, o := range all {
		rows[i] = o.row
	}
	return colTableFromRows(outSchema, rows)
}

// BatchExtendProduct appends the product column of the slot values (the
// engine's weight-product extension): Int(1) times every slot value, NULL
// if any factor is NULL — exactly Mul's trajectory. All-int inputs (the
// engine's weights always are) run a typed kernel; anything else folds
// Values through Mul itself.
func (e *Exec) BatchExtendProduct(t *ColTable, name string, slots []int) *ColTable {
	tc := t.Compact() // the new column is dense; align the others
	out := &ColTable{Schema: tc.Schema.Extend(name), N: tc.N}
	out.Cols = make([]Vector, len(tc.Cols)+1)
	copy(out.Cols, tc.Cols)

	allInt := true
	for _, s := range slots {
		if tc.Cols[s].Kind != ColInt {
			allInt = false
			break
		}
	}
	n := tc.N
	if allInt {
		anyNulls := false
		for _, s := range slots {
			if tc.Cols[s].Nulls != nil {
				anyNulls = true
				break
			}
		}
		v := Vector{Kind: ColInt, Ints: make([]int64, n)}
		if !anyNulls {
			fill := func(lo, hi int) {
				for i := lo; i < hi; i++ {
					prod := int64(1)
					for _, s := range slots {
						prod *= tc.Cols[s].Ints[i]
					}
					v.Ints[i] = prod
				}
			}
			if e.parFor(n) {
				e.forMorsels(n, func(m, lo, hi int) { fill(lo, hi) })
			} else {
				fill(0, n)
			}
			out.Cols[len(tc.Cols)] = v
			return out
		}
		// NULL factors are absorbing (Mul(_, NULL) is NULL). Sequential:
		// morsel spans share bitmap words, so a parallel fill would race.
		nulls := make([]uint64, (n+63)/64)
		hasNull := false
		for i := 0; i < n; i++ {
			prod := int64(1)
			null := false
			for _, s := range slots {
				if tc.Cols[s].IsNull(i) {
					null = true
					break
				}
				prod *= tc.Cols[s].Ints[i]
			}
			if null {
				nulls[i>>6] |= 1 << (uint(i) & 63)
				hasNull = true
			} else {
				v.Ints[i] = prod
			}
		}
		if hasNull {
			v.Nulls = nulls
		}
		out.Cols[len(tc.Cols)] = v
		return out
	}

	var b colBuilder
	for i := 0; i < n; i++ {
		v := Int(1)
		for _, s := range slots {
			v = Mul(v, tc.Cols[s].Value(i))
		}
		b.append(v)
	}
	out.Cols[len(tc.Cols)] = b.finish()
	return out
}
