package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"eagg/internal/aggfn"
)

// Adversarial coverage for the flat open-addressing tables: property
// tests against naive map models, engineered hash collisions (keys
// brute-forced onto one home slot), resize-boundary sweeps across every
// grow threshold, bloom-filter semantics, and a grow-under-parallel-
// scatter determinism test (workers 1 vs 8, bit-identical).

func equalPosts(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIntTableVsMapModel drives an intTable with random inserts from a
// dup-heavy key domain and checks every posting list — content and
// order — against the map the table replaces.
func TestIntTableVsMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3000)
		domain := 1 + rng.Intn(400) // heavy duplication at small domains
		tab := newIntTable(1 + rng.Intn(8))
		model := map[int64][]int32{}
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(domain)) * 7919 // spread, deterministic
			tab.insert(k, int32(i))
			model[k] = append(model[k], int32(i))
		}
		tab.finalize()
		if tab.n != len(model) {
			t.Fatalf("trial %d: %d distinct keys, want %d", trial, tab.n, len(model))
		}
		if tab.rows != n {
			t.Fatalf("trial %d: %d postings, want %d", trial, tab.rows, n)
		}
		for k, want := range model {
			if got := tab.lookup(k); !equalPosts(got, want) {
				t.Fatalf("trial %d: key %d: got %v want %v", trial, k, got, want)
			}
		}
		for i := 0; i < 50; i++ {
			if k := int64(domain+i) * 7919; tab.lookup(k) != nil {
				t.Fatalf("trial %d: absent key %d resolved postings", trial, k)
			}
		}
		if load := float64(tab.n) / float64(len(tab.slots)); load > 0.75 {
			t.Fatalf("trial %d: load factor %.3f exceeds ¾", trial, load)
		}
	}
}

// TestBytesTableVsMapModel is the byte-key mirror, with shared prefixes,
// the empty key, and scratch-buffer reuse (the table must copy keys).
func TestBytesTableVsMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(2000)
		domain := 1 + rng.Intn(300)
		tab := newBytesTable(1 + rng.Intn(8))
		model := map[string][]int32{}
		scratch := make([]byte, 0, 64) // reused: inserts must copy
		for i := 0; i < n; i++ {
			d := rng.Intn(domain)
			scratch = scratch[:0]
			if d > 0 { // d == 0 is the empty key (legal: empty key list)
				scratch = append(scratch, fmt.Sprintf("prefix/%03d", d)...)
			}
			tab.insert(hashKey(scratch), scratch, int32(i))
			model[string(scratch)] = append(model[string(scratch)], int32(i))
		}
		tab.finalize()
		if tab.n != len(model) {
			t.Fatalf("trial %d: %d distinct keys, want %d", trial, tab.n, len(model))
		}
		for k, want := range model {
			if got := tab.lookup([]byte(k)); !equalPosts(got, want) {
				t.Fatalf("trial %d: key %q: got %v want %v", trial, k, got, want)
			}
		}
		for i := 0; i < 50; i++ {
			key := []byte(fmt.Sprintf("prefix/%03d", domain+i))
			if tab.lookup(key) != nil {
				t.Fatalf("trial %d: absent key %q resolved postings", trial, key)
			}
		}
	}
}

// TestIndexesVsMapModel checks intIndex and bytesIndex against map
// models: first-encounter id assignment, id stability across growth.
func TestIndexesVsMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(2000)
		domain := 1 + rng.Intn(500)
		ii := newIntIndex(1)
		bi := newBytesIndex(1)
		im := map[int64]int32{}
		bm := map[string]int32{}
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(domain))
			wantID, ok := im[k]
			if !ok {
				wantID = int32(len(im))
				im[k] = wantID
			}
			gotID, added := ii.lookupOrAdd(k, int32(len(im))-1)
			if gotID != wantID || added == ok {
				t.Fatalf("trial %d intIndex key %d: got (%d,%v) want (%d,%v)", trial, k, gotID, added, wantID, !ok)
			}

			bk := []byte(fmt.Sprintf("g%04d", k))
			wantID, ok = bm[string(bk)]
			if !ok {
				wantID = int32(len(bm))
				bm[string(bk)] = wantID
			}
			gotID, added = bi.lookupOrAdd(hashKey(bk), bk, int32(len(bm))-1)
			if gotID != wantID || added == ok {
				t.Fatalf("trial %d bytesIndex key %q: got (%d,%v) want (%d,%v)", trial, bk, gotID, added, wantID, !ok)
			}
		}
		if ii.n != len(im) || bi.n != len(bm) {
			t.Fatalf("trial %d: index sizes %d/%d, want %d/%d", trial, ii.n, bi.n, len(im), len(bm))
		}
	}
}

// collidingInts brute-forces n int64 keys whose hashes share home slot 0
// under the given shift — the engineered worst case for linear probing.
func collidingInts(shift uint, n int) []int64 {
	keys := make([]int64, 0, n)
	for k := int64(0); len(keys) < n; k++ {
		if hashInt64(k)>>shift == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestEngineeredCollisions inserts keys that all hash to the same home
// slot: the probe chain must stay correct, maxProbe must reflect the
// pile-up, and a subsequent grow must redistribute without losing
// postings.
func TestEngineeredCollisions(t *testing.T) {
	tab := newIntTable(48) // capacity 64, growAt 48
	if len(tab.slots) != 64 {
		t.Fatalf("geometry: capacity %d, want 64", len(tab.slots))
	}
	keys := collidingInts(tab.shift, 24)
	for rep := 0; rep < 2; rep++ { // two postings per key
		for i, k := range keys {
			tab.insert(k, int32(rep*len(keys)+i))
		}
	}
	if tab.maxProbe != len(keys) {
		t.Fatalf("maxProbe %d after %d same-slot keys, want %d", tab.maxProbe, len(keys), len(keys))
	}
	// Push past growAt with fresh keys; the colliding keys' postings must
	// survive the redistribution.
	next := int32(2 * len(keys))
	for i := 0; i < 40; i++ {
		tab.insert(int64(1_000_000+i), next)
		next++
	}
	tab.finalize()
	if len(tab.slots) != 128 {
		t.Fatalf("capacity %d after grow, want 128", len(tab.slots))
	}
	for i, k := range keys {
		want := []int32{int32(i), int32(len(keys) + i)}
		if got := tab.lookup(k); !equalPosts(got, want) {
			t.Fatalf("key %d after grow: got %v want %v", k, got, want)
		}
	}

	// The byte-key table under the same attack (keys colliding under
	// hashKey's high bits at its geometry).
	bt := newBytesTable(48)
	var bkeys [][]byte
	for i := 0; len(bkeys) < 16; i++ {
		k := []byte(fmt.Sprintf("c%d", i))
		if hashKey(k)>>bt.shift == 0 {
			bkeys = append(bkeys, k)
		}
	}
	for i, k := range bkeys {
		bt.insert(hashKey(k), k, int32(i))
	}
	if bt.maxProbe != len(bkeys) {
		t.Fatalf("bytes maxProbe %d, want %d", bt.maxProbe, len(bkeys))
	}
	bt.finalize()
	for i, k := range bkeys {
		if got := bt.lookup(k); !equalPosts(got, []int32{int32(i)}) {
			t.Fatalf("bytes key %q: got %v want [%d]", k, got, i)
		}
	}
}

// TestResizeBoundaryKeys sweeps key counts across every grow threshold
// of the first few doublings (growAt is ¾·cap: 6, 12, 24, 48, 96, …),
// starting every structure at minimal capacity so each n crosses its own
// boundary exactly.
func TestResizeBoundaryKeys(t *testing.T) {
	for _, n := range []int{1, 5, 6, 7, 11, 12, 13, 23, 24, 25, 47, 48, 49, 95, 96, 97, 191, 192, 193} {
		tab := newIntTable(1)
		bt := newBytesTable(1)
		ii := newIntIndex(1)
		bi := newBytesIndex(1)
		for i := 0; i < n; i++ {
			k := int64(i) * 2654435761 // spread; distinct
			tab.insert(k, int32(i))
			tab.insert(k, int32(i+n)) // a duplicate posting per key
			bk := []byte(fmt.Sprintf("rk-%05d", i))
			bt.insert(hashKey(bk), bk, int32(i))
			if id, added := ii.lookupOrAdd(k, int32(i)); !added || id != int32(i) {
				t.Fatalf("n=%d: intIndex add %d: (%d,%v)", n, i, id, added)
			}
			if id, added := bi.lookupOrAdd(hashKey(bk), bk, int32(i)); !added || id != int32(i) {
				t.Fatalf("n=%d: bytesIndex add %d: (%d,%v)", n, i, id, added)
			}
		}
		tab.finalize()
		bt.finalize()
		if tab.n != n || bt.n != n || ii.n != n || bi.n != n {
			t.Fatalf("n=%d: sizes %d/%d/%d/%d", n, tab.n, bt.n, ii.n, bi.n)
		}
		for i := 0; i < n; i++ {
			k := int64(i) * 2654435761
			if got := tab.lookup(k); !equalPosts(got, []int32{int32(i), int32(i + n)}) {
				t.Fatalf("n=%d: intTable key %d: %v", n, k, got)
			}
			bk := []byte(fmt.Sprintf("rk-%05d", i))
			if got := bt.lookup(bk); !equalPosts(got, []int32{int32(i)}) {
				t.Fatalf("n=%d: bytesTable key %q: %v", n, bk, got)
			}
			// Ids assigned before any grow must survive every grow after.
			if id, added := ii.lookupOrAdd(k, -2); added || id != int32(i) {
				t.Fatalf("n=%d: intIndex id for %d changed: (%d,%v)", n, k, id, added)
			}
			if id, added := bi.lookupOrAdd(hashKey(bk), bk, -2); added || id != int32(i) {
				t.Fatalf("n=%d: bytesIndex id for %q changed: (%d,%v)", n, bk, id, added)
			}
		}
		if tab.lookup(int64(n)*2654435761) != nil {
			t.Fatalf("n=%d: absent int key resolved", n)
		}
		if bt.lookup([]byte(fmt.Sprintf("rk-%05d", n))) != nil {
			t.Fatalf("n=%d: absent byte key resolved", n)
		}
	}
}

// TestBloomFilterSemantics pins the filter contract: no false negatives
// ever, and a false-positive rate consistent with 8 bits/key.
func TestBloomFilterSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, n := range []int{1, 10, 100, 5000} {
		f := newBloom(n)
		member := make([]uint64, n)
		for i := range member {
			member[i] = rng.Uint64()
			f.add(member[i])
		}
		for _, h := range member {
			if !f.mayContain(h) {
				t.Fatalf("n=%d: false negative for %x", n, h)
			}
		}
		fp := 0
		const probes = 10000
		for i := 0; i < probes; i++ {
			if f.mayContain(rng.Uint64()) {
				fp++
			}
		}
		if rate := float64(fp) / probes; rate > 0.3 {
			t.Fatalf("n=%d: false-positive rate %.3f", n, rate)
		}
	}
}

// bloomJoinTables builds a join shape that clears the bloom gate: a tiny
// build side and a probe side ≥ 8x larger whose keys mostly miss.
func bloomJoinTables(strKeys bool) (l, r *Table) {
	key := func(i int) Value {
		if strKeys {
			return Str(fmt.Sprintf("bk-%04d", i))
		}
		return Int(int64(i))
	}
	r = &Table{Schema: NewSchema([]string{"rk", "rv"})}
	for i := 0; i < 32; i++ {
		r.Rows = append(r.Rows, Row{key(i % 24), Int(int64(i * 10))}) // some dup keys
	}
	l = &Table{Schema: NewSchema([]string{"lk", "lv"})}
	for i := 0; i < 600; i++ {
		l.Rows = append(l.Rows, Row{key(i % 500), Int(int64(i))}) // mostly misses
	}
	return l, r
}

// TestBloomJoinsMatchRow pins bloom safety end to end: with the filter
// demonstrably active (BloomChecks > 0), inner/semi/anti results equal
// the row runtime bit for bit — on the int fast path, the encoded
// sequential path and the partitioned parallel path — and the outer
// joins never consult a filter.
func TestBloomJoinsMatchRow(t *testing.T) {
	for _, strKeys := range []bool{false, true} {
		l, r := bloomJoinTables(strKeys)
		lc, rc := ColTableOf(l), ColTableOf(r)
		lk, rk := []int{0}, []int{0}
		execs := map[string]*Exec{
			"seq": NewExec(1),
			"par": NewExec(8).WithMorselSize(64),
		}
		for name, e := range execs {
			hs := &HashStats{}
			e = e.WithHashStats(hs)
			prefix := fmt.Sprintf("str=%v/%s", strKeys, name)
			identicalRows(t, prefix+"/join",
				HashJoin(l, r, lk, rk), e.BatchHashJoin(lc, rc, lk, rk).Table())
			identicalRows(t, prefix+"/semi",
				HashSemiJoin(l, r, lk, rk), e.BatchHashSemiJoin(lc, rc, lk, rk).Table())
			identicalRows(t, prefix+"/anti",
				HashAntiJoin(l, r, lk, rk), e.BatchHashAntiJoin(lc, rc, lk, rk).Table())
			snap := hs.Snapshot()
			if snap.BloomChecks == 0 {
				t.Fatalf("%s: bloom never consulted (checks=0) — the gate regressed", prefix)
			}
			if snap.BloomPasses >= snap.BloomChecks {
				t.Fatalf("%s: bloom filtered nothing (%d/%d)", prefix, snap.BloomPasses, snap.BloomChecks)
			}
			if snap.Builds == 0 {
				t.Fatalf("%s: no table builds recorded", prefix)
			}

			// Outer joins emit every probe row — no filter, no checks.
			hs2 := &HashStats{}
			e2 := e.WithHashStats(hs2)
			pad := NullRow(r.Schema)
			e2.BatchHashLeftOuter(lc, rc, lk, rk, pad)
			if got := hs2.Snapshot().BloomChecks; got != 0 {
				t.Fatalf("%s: left outer consulted a bloom filter (%d checks)", prefix, got)
			}
		}
	}
}

// TestGrowUnderParallelScatterDeterminism drives joins and aggregation
// over thousands of distinct string keys — group indexes seed at
// groupIndexSeedCap and must grow repeatedly inside the partition
// fan-out — and asserts workers 1 and 8 produce bit-identical results.
func TestGrowUnderParallelScatterDeterminism(t *testing.T) {
	r := &Table{Schema: NewSchema([]string{"rk", "rv"})}
	for i := 0; i < 3000; i++ {
		r.Rows = append(r.Rows, Row{Str(fmt.Sprintf("key-%04d", i)), Int(int64(i))})
	}
	l := &Table{Schema: NewSchema([]string{"lk", "lv", "lf"})}
	for i := 0; i < 6000; i++ {
		l.Rows = append(l.Rows, Row{
			Str(fmt.Sprintf("key-%04d", (i*7)%4000)), // ~¾ hit, some keys dup'd
			Int(int64(i)),
			Float(float64(i) * 0.125),
		})
	}
	lc, rc := ColTableOf(l), ColTableOf(r)
	w1 := NewExec(1)
	w8 := NewExec(8).WithMorselSize(128)

	identicalRows(t, "join w1≡w8",
		w1.BatchHashJoin(lc, rc, []int{0}, []int{0}).Table(),
		w8.BatchHashJoin(lc, rc, []int{0}, []int{0}).Table())

	f := aggfn.Vector{
		{Out: "c", Kind: aggfn.CountStar},
		{Out: "s", Kind: aggfn.Sum, Arg: "lf"}, // float sum: order-sensitive
	}
	identicalRows(t, "group w1≡w8",
		w1.BatchHashGroup(lc, []string{"lk"}, f).Table(),
		w8.BatchHashGroup(lc, []string{"lk"}, f).Table())

	// The row-runtime parallel joins share the partitioned flat tables.
	identicalRows(t, "row join seq≡w8",
		HashJoin(l, r, []int{0}, []int{0}),
		w8.WithMorselSize(128).HashJoin(l, r, []int{0}, []int{0}))
}

// TestHashStatsRecording pins the collector arithmetic and that grouper
// builds report through it (joins are covered by TestBloomJoinsMatchRow).
func TestHashStatsRecording(t *testing.T) {
	hs := &HashStats{}
	hs.recordTable(6, 8, 3)
	hs.recordTable(2, 8, 5)
	hs.recordBloom(100, 25)
	s := hs.Snapshot()
	if s.Builds != 2 || s.Entries != 8 || s.Capacity != 16 || s.MaxProbe != 5 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.LoadFactor() != 0.5 {
		t.Fatalf("load factor %v, want 0.5", s.LoadFactor())
	}
	if s.BloomPassRate() != 0.25 {
		t.Fatalf("bloom pass rate %v, want 0.25", s.BloomPassRate())
	}
	if z := (HashTableStats{}); z.LoadFactor() != 0 || z.BloomPassRate() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}

	tb := aggColumnsTable()
	tc := ColTableOf(tb)
	for name, e := range map[string]*Exec{
		"seq-int":     NewExec(1),
		"par-encoded": NewExec(8).WithMorselSize(16),
	} {
		ghs := &HashStats{}
		NewExec(1).WithHashStats(ghs) // exercise the copy semantics: original untouched
		ex := e.WithHashStats(ghs)
		ex.BatchHashGroup(tc, []string{"g1"}, aggfn.Vector{{Out: "c", Kind: aggfn.CountStar}})
		if snap := ghs.Snapshot(); snap.Builds == 0 || snap.Entries == 0 {
			t.Fatalf("%s: grouper recorded nothing: %+v", name, snap)
		}
	}
}
