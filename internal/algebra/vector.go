package algebra

// Columnar batches: the vectorized counterpart of Table (MonetDB/X100
// style, Boncz et al., CIDR'05). A ColTable stores one typed Vector per
// schema slot — a flat []int64 / []float64 / []string payload plus a null
// bitmap — instead of per-row []Value tuples, and the batch operators
// (batchjoin.go, batchagg.go) process it a batch of rows at a time: one
// column-kind dispatch per column per batch instead of a 40-byte
// tagged-union load and a kind switch per value.
//
// Two invariants make the batch runtime bit-identical to the row runtime:
//
//   - A column is typed (ColInt/ColFloat/ColStr) only when every non-NULL
//     value in it has that one kind; columns mixing kinds fall back to
//     ColMixed, which stores tagged Values and routes every consumer
//     through the exact row-runtime semantics. Typed fast paths therefore
//     never have to guess a value's kind — the trajectory of every
//     aggregate accumulator (int stays int, float stays float) equals the
//     row runtime's by construction.
//
//   - Sel, the selection vector, is monotone increasing by construction:
//     selections (semi/antijoin) filter rows, they never reorder them. A
//     ColTable's logical row order thus always equals its physical row
//     order restricted to the selected indices, so first-encounter group
//     order, build-input posting order and probe output order survive
//     zero-copy selection unchanged.
type ColTable struct {
	Schema *Schema
	Cols   []Vector
	// N is the physical row count of the column vectors.
	N int
	// Sel, when non-nil, selects the visible rows: logical row i is
	// physical row Sel[i]. Monotone increasing — see the invariant above.
	Sel []int32
}

// Card returns the logical number of rows.
func (t *ColTable) Card() int {
	if t.Sel != nil {
		return len(t.Sel)
	}
	return t.N
}

// TabSchema returns the schema — the runtime-neutral accessor shared with
// Table so the engine can hold either representation behind one
// interface.
func (t *ColTable) TabSchema() *Schema { return t.Schema }

// phys maps a logical row index to its physical index.
func (t *ColTable) phys(i int) int32 {
	if t.Sel != nil {
		return t.Sel[i]
	}
	return int32(i)
}

// physBatch appends the physical indices of logical rows [lo, hi) to buf
// (reset first) — the per-batch row list every batch kernel iterates.
func (t *ColTable) physBatch(lo, hi int, buf []int32) []int32 {
	buf = buf[:0]
	if t.Sel != nil {
		return append(buf, t.Sel[lo:hi]...)
	}
	for i := lo; i < hi; i++ {
		buf = append(buf, int32(i))
	}
	return buf
}

// ColKind classifies a column's physical representation.
type ColKind uint8

const (
	// ColInt: every non-NULL value is KindInt, payload in Ints.
	ColInt ColKind = iota
	// ColFloat: every non-NULL value is KindFloat, payload in Floats.
	ColFloat
	// ColStr: every non-NULL value is KindString, payload in Strs.
	ColStr
	// ColMixed: values of several kinds; per-value tagged fallback in
	// Vals. Consumers route through the row-runtime Value semantics.
	ColMixed
)

// Vector is one column: a typed payload slice (indexed by physical row)
// plus a null bitmap. NULL positions hold zero placeholders in the
// payload; the bitmap is the source of truth. A nil bitmap means "no
// NULLs"; a short bitmap covers only the prefix that contains them.
type Vector struct {
	Kind   ColKind
	Ints   []int64
	Floats []float64
	Strs   []string
	Vals   []Value // ColMixed only
	Nulls  []uint64
}

// IsNull reports whether physical row i is NULL.
func (v *Vector) IsNull(i int) bool {
	if v.Kind == ColMixed {
		return v.Vals[i].Kind == KindNull
	}
	w := i >> 6
	return w < len(v.Nulls) && v.Nulls[w]&(1<<(uint(i)&63)) != 0
}

// Value materializes physical row i as a tagged Value.
func (v *Vector) Value(i int) Value {
	switch v.Kind {
	case ColMixed:
		return v.Vals[i]
	}
	if v.IsNull(i) {
		return Null
	}
	switch v.Kind {
	case ColInt:
		return Int(v.Ints[i])
	case ColFloat:
		return Float(v.Floats[i])
	case ColStr:
		return Str(v.Strs[i])
	}
	panic("algebra: unknown column kind")
}

// colBuilder accumulates one column value by value, keeping the tightest
// kind: it starts typed on the first non-NULL value and demotes to
// ColMixed only when a second kind appears.
type colBuilder struct {
	kind    ColKind
	typed   bool // a non-NULL value fixed the kind
	n       int
	ints    []int64
	floats  []float64
	strs    []string
	vals    []Value
	nulls   []uint64
	hasNull bool
}

func (b *colBuilder) setNull(i int) {
	w := i>>6 + 1
	for len(b.nulls) < w {
		b.nulls = append(b.nulls, 0)
	}
	b.nulls[i>>6] |= 1 << (uint(i) & 63)
	b.hasNull = true
}

// demote rebuilds the column as ColMixed from whatever was collected.
func (b *colBuilder) demote() {
	vals := make([]Value, 0, b.n)
	for i := 0; i < b.n; i++ {
		vals = append(vals, b.valueAt(i))
	}
	b.kind = ColMixed
	b.vals = vals
	b.ints, b.floats, b.strs, b.nulls = nil, nil, nil, nil
}

func (b *colBuilder) valueAt(i int) Value {
	if b.kind != ColMixed {
		w := i >> 6
		if w < len(b.nulls) && b.nulls[w]&(1<<(uint(i)&63)) != 0 {
			return Null
		}
	}
	switch b.kind {
	case ColInt:
		return Int(b.ints[i])
	case ColFloat:
		return Float(b.floats[i])
	case ColStr:
		return Str(b.strs[i])
	}
	return b.vals[i]
}

// append adds one value to the column.
func (b *colBuilder) append(v Value) {
	if b.kind == ColMixed {
		b.vals = append(b.vals, v)
		b.n++
		return
	}
	if v.Kind == KindNull {
		b.setNull(b.n)
		b.pad()
		b.n++
		return
	}
	want := colKindOfValue(v.Kind)
	if !b.typed {
		b.kind = want
		b.typed = true
		// Every earlier value was a NULL padded into the default backing
		// array; re-pad them into the one the kind now selects so indices
		// stay aligned.
		b.ints, b.floats, b.strs = b.ints[:0], b.floats[:0], b.strs[:0]
		for i := 0; i < b.n; i++ {
			b.pad()
		}
	} else if b.kind != want {
		b.demote()
		b.vals = append(b.vals, v)
		b.n++
		return
	}
	switch b.kind {
	case ColInt:
		b.ints = append(b.ints, v.I)
	case ColFloat:
		b.floats = append(b.floats, v.F)
	case ColStr:
		b.strs = append(b.strs, v.S)
	}
	b.n++
}

// pad appends the zero placeholder of the current typed payload.
func (b *colBuilder) pad() {
	switch b.kind {
	case ColInt:
		b.ints = append(b.ints, 0)
	case ColFloat:
		b.floats = append(b.floats, 0)
	case ColStr:
		b.strs = append(b.strs, "")
	}
}

func colKindOfValue(k ValueKind) ColKind {
	switch k {
	case KindInt:
		return ColInt
	case KindFloat:
		return ColFloat
	case KindString:
		return ColStr
	}
	panic("algebra: no column kind for NULL")
}

// finish returns the built vector.
func (b *colBuilder) finish() Vector {
	v := Vector{Kind: b.kind, Ints: b.ints, Floats: b.floats, Strs: b.strs, Vals: b.vals}
	if b.hasNull {
		v.Nulls = b.nulls
	}
	return v
}

// colTableFromRows builds a columnar table from materialized rows.
func colTableFromRows(s *Schema, rows []Row) *ColTable {
	cols := make([]Vector, s.Len())
	for c := range cols {
		var b colBuilder
		for _, r := range rows {
			b.append(r[c])
		}
		cols[c] = b.finish()
	}
	return &ColTable{Schema: s, Cols: cols, N: len(rows)}
}

// ColTableOf converts a row table into its columnar form.
func ColTableOf(t *Table) *ColTable {
	return colTableFromRows(t.Schema, t.Rows)
}

// Table materializes the columnar table back into rows (logical order),
// slicing every row out of one backing slab. Values are rebuilt through
// the canonical constructors, so a round trip through the batch runtime
// is bit-identical to the row pipeline.
func (t *ColTable) Table() *Table {
	w := t.Schema.Len()
	n := t.Card()
	rows := make([]Row, n)
	slab := make([]Value, n*w) // zero Value = NULL, so NULLs need no writes
	for i := range rows {
		rows[i] = slab[i*w : (i+1)*w : (i+1)*w]
	}
	for ci := range t.Cols {
		col := &t.Cols[ci]
		switch col.Kind {
		case ColInt:
			for i := 0; i < n; i++ {
				if p := int(t.phys(i)); !col.IsNull(p) {
					rows[i][ci] = Int(col.Ints[p])
				}
			}
		case ColFloat:
			for i := 0; i < n; i++ {
				if p := int(t.phys(i)); !col.IsNull(p) {
					rows[i][ci] = Float(col.Floats[p])
				}
			}
		case ColStr:
			for i := 0; i < n; i++ {
				if p := int(t.phys(i)); !col.IsNull(p) {
					rows[i][ci] = Str(col.Strs[p])
				}
			}
		case ColMixed:
			for i := 0; i < n; i++ {
				rows[i][ci] = col.Vals[int(t.phys(i))]
			}
		}
	}
	return &Table{Schema: t.Schema, Rows: rows}
}

// Compact materializes the selection: a dense table (Sel == nil) with the
// same logical rows. A table without a selection is returned as-is.
func (t *ColTable) Compact() *ColTable {
	if t.Sel == nil {
		return t
	}
	cols := make([]Vector, len(t.Cols))
	for c := range t.Cols {
		cols[c] = gatherCol(&t.Cols[c], t.Sel)
	}
	return &ColTable{Schema: t.Schema, Cols: cols, N: len(t.Sel)}
}

// gatherCol builds a fresh dense vector holding col[idx[0]], col[idx[1]],
// … — the typed assembly step of batch joins. Every index must be a valid
// physical row (no pads).
func gatherCol(col *Vector, idx []int32) Vector {
	out := Vector{Kind: col.Kind}
	var nulls []uint64
	hasNull := false
	markNull := func(i int) {
		if nulls == nil {
			nulls = make([]uint64, (len(idx)+63)/64)
		}
		nulls[i>>6] |= 1 << (uint(i) & 63)
		hasNull = true
	}
	switch col.Kind {
	case ColInt:
		out.Ints = make([]int64, len(idx))
		for i, p := range idx {
			out.Ints[i] = col.Ints[p]
			if col.IsNull(int(p)) {
				markNull(i)
			}
		}
	case ColFloat:
		out.Floats = make([]float64, len(idx))
		for i, p := range idx {
			out.Floats[i] = col.Floats[p]
			if col.IsNull(int(p)) {
				markNull(i)
			}
		}
	case ColStr:
		out.Strs = make([]string, len(idx))
		for i, p := range idx {
			out.Strs[i] = col.Strs[p]
			if col.IsNull(int(p)) {
				markNull(i)
			}
		}
	case ColMixed:
		out.Vals = make([]Value, len(idx))
		for i, p := range idx {
			out.Vals[i] = col.Vals[p]
		}
	}
	if hasNull {
		out.Nulls = nulls
	}
	return out
}

// gatherColPad is gatherCol with outerjoin padding: index -1 reads as the
// pad value (an engine default vector entry — NULL, Int(0) or Int(1)).
// When the pad's kind does not fit the column's, the output demotes to
// ColMixed — exactly the mixed-kind column the row runtime would produce.
func gatherColPad(col *Vector, idx []int32, pad Value) Vector {
	padded := false
	for _, p := range idx {
		if p < 0 {
			padded = true
			break
		}
	}
	if !padded {
		return gatherCol(col, idx)
	}
	if pad.Kind != KindNull && (col.Kind == ColMixed || colKindOfValue(pad.Kind) != col.Kind) {
		// Pad kind disagrees with the column (or the column is already
		// mixed): assemble tagged values.
		out := Vector{Kind: ColMixed, Vals: make([]Value, len(idx))}
		for i, p := range idx {
			if p < 0 {
				out.Vals[i] = pad
			} else {
				out.Vals[i] = col.Value(int(p))
			}
		}
		return out
	}
	out := Vector{Kind: col.Kind}
	var nulls []uint64
	hasNull := false
	markNull := func(i int) {
		if nulls == nil {
			nulls = make([]uint64, (len(idx)+63)/64)
		}
		nulls[i>>6] |= 1 << (uint(i) & 63)
		hasNull = true
	}
	switch col.Kind {
	case ColMixed: // pad is NULL here (mismatching pads were handled above)
		out.Vals = make([]Value, len(idx))
		for i, p := range idx {
			if p >= 0 {
				out.Vals[i] = col.Vals[p]
			}
		}
	case ColInt:
		out.Ints = make([]int64, len(idx))
		for i, p := range idx {
			switch {
			case p < 0 && pad.Kind == KindNull:
				markNull(i)
			case p < 0:
				out.Ints[i] = pad.I
			default:
				out.Ints[i] = col.Ints[p]
				if col.IsNull(int(p)) {
					markNull(i)
				}
			}
		}
	case ColFloat: // pad is NULL or demoted above
		out.Floats = make([]float64, len(idx))
		for i, p := range idx {
			switch {
			case p < 0 && pad.Kind == KindNull:
				markNull(i)
			case p < 0:
				out.Floats[i] = pad.F
			default:
				out.Floats[i] = col.Floats[p]
				if col.IsNull(int(p)) {
					markNull(i)
				}
			}
		}
	case ColStr:
		out.Strs = make([]string, len(idx))
		for i, p := range idx {
			switch {
			case p < 0 && pad.Kind == KindNull:
				markNull(i)
			case p < 0:
				out.Strs[i] = pad.S
			default:
				out.Strs[i] = col.Strs[p]
				if col.IsNull(int(p)) {
					markNull(i)
				}
			}
		}
	}
	if hasNull {
		out.Nulls = nulls
	}
	return out
}

// colValue reads one value of a slot at a physical row; slot -1 reads as
// NULL, mirroring Row.get.
func colValue(t *ColTable, slot int, i int32) Value {
	if slot < 0 {
		return Null
	}
	return t.Cols[slot].Value(int(i))
}
