package algebra

import (
	"fmt"
	"testing"

	"eagg/internal/aggfn"
)

// Benchmarks comparing the row and batch runtimes on the operator level,
// with allocation counts: the batch aggregation path must cut allocs/op
// by at least 5x against row HashGroup (PR 7 acceptance), and the
// slab-backed table ops must stay O(1) allocations per output table
// rather than one make per row.

// benchAggTable builds n rows over (g, v, f): an int grouping column
// cycling through the given group count, an int measure and a float
// measure — the typical typed aggregation input.
func benchAggTable(n, groups int) *Table {
	s := NewSchema([]string{"g", "v", "f"})
	t := &Table{Schema: s}
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, Row{
			Int(int64(i % groups)),
			Int(int64(i)),
			Float(float64(i) * 0.5),
		})
	}
	return t
}

// BenchmarkHashGroupRuntimes is the aggregation-path allocation shootout:
// identical inputs, identical results, row HashGroup against the batch
// grouper (input already columnar, as it is mid-pipeline). The batch side
// allocates per group and per output column; the row side allocates per
// group row and per accumulator.
func BenchmarkHashGroupRuntimes(b *testing.B) {
	f := aggfn.Vector{
		{Out: "s", Kind: aggfn.Sum, Arg: "v"},
		{Out: "c", Kind: aggfn.CountStar},
		{Out: "m", Kind: aggfn.Min, Arg: "f"},
	}
	groupBy := []string{"g"}
	for _, groups := range []int{16, 1024} {
		t := benchAggTable(1<<13, groups)
		ct := ColTableOf(t)
		e := NewExec(1)
		b.Run(fmt.Sprintf("runtime=row/groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if out := e.HashGroup(t, groupBy, f); len(out.Rows) != groups {
					b.Fatalf("got %d groups, want %d", len(out.Rows), groups)
				}
			}
		})
		b.Run(fmt.Sprintf("runtime=batch/groups=%d", groups), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if out := e.BatchHashGroup(ct, groupBy, f); out.Card() != groups {
					b.Fatalf("got %d groups, want %d", out.Card(), groups)
				}
			}
		})
	}
}

// BenchmarkHashTable is the backend shootout behind every batch join and
// aggregation: the flat open-addressing tables against the Go maps they
// replaced, build + full probe, on int and encoded byte keys. The flat
// tables must win on allocations by construction (slab postings, no
// per-key list headers) — this benchmark keeps the rows/s and allocs/op
// numbers visible in CI.
func BenchmarkHashTable(b *testing.B) {
	const nBuild, nProbe, dups = 1 << 12, 1 << 14, 4
	ikeys := make([]int64, nBuild)
	for i := range ikeys {
		ikeys[i] = int64(i/dups) * 2654435761
	}
	bkeys := make([][]byte, nBuild)
	for i := range bkeys {
		bkeys[i] = []byte(fmt.Sprintf("key-%06d", i/dups))
	}
	b.Run("keys=int/backend=flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := newIntTable(nBuild)
			for r, k := range ikeys {
				t.insert(k, int32(r))
			}
			t.finalize()
			hits := 0
			for p := 0; p < nProbe; p++ {
				hits += len(t.lookup(ikeys[p%nBuild]))
			}
			if hits != nProbe*dups {
				b.Fatalf("hits %d, want %d", hits, nProbe*dups)
			}
		}
	})
	b.Run("keys=int/backend=map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[int64][]int32, nBuild)
			for r, k := range ikeys {
				m[k] = append(m[k], int32(r))
			}
			hits := 0
			for p := 0; p < nProbe; p++ {
				hits += len(m[ikeys[p%nBuild]])
			}
			if hits != nProbe*dups {
				b.Fatalf("hits %d, want %d", hits, nProbe*dups)
			}
		}
	})
	b.Run("keys=bytes/backend=flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := newBytesTable(nBuild)
			for r, k := range bkeys {
				t.insert(hashKey(k), k, int32(r))
			}
			t.finalize()
			hits := 0
			for p := 0; p < nProbe; p++ {
				hits += len(t.lookup(bkeys[p%nBuild]))
			}
			if hits != nProbe*dups {
				b.Fatalf("hits %d, want %d", hits, nProbe*dups)
			}
		}
	})
	b.Run("keys=bytes/backend=map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := make(map[string][]int32, nBuild)
			for r, k := range bkeys {
				m[string(k)] = append(m[string(k)], int32(r))
			}
			hits := 0
			for p := 0; p < nProbe; p++ {
				hits += len(m[string(bkeys[p%nBuild])])
			}
			if hits != nProbe*dups {
				b.Fatalf("hits %d, want %d", hits, nProbe*dups)
			}
		}
	})
}

// BenchmarkBatchHashJoin measures the batch join pair (build + probe +
// typed gather) against the row operator on a fk-pk shape with int keys.
func BenchmarkBatchHashJoin(b *testing.B) {
	const nl, nr = 1 << 13, 1 << 10
	ls := NewSchema([]string{"fk", "x"})
	l := &Table{Schema: ls}
	for i := 0; i < nl; i++ {
		l.Rows = append(l.Rows, Row{Int(int64(i % nr)), Int(int64(i))})
	}
	rs := NewSchema([]string{"pk", "y"})
	r := &Table{Schema: rs}
	for i := 0; i < nr; i++ {
		r.Rows = append(r.Rows, Row{Int(int64(i)), Int(int64(-i))})
	}
	cl, cr := ColTableOf(l), ColTableOf(r)
	e := NewExec(1)
	lk, rk := []int{0}, []int{0}
	b.Run("runtime=row", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := e.HashJoin(l, r, lk, rk); len(out.Rows) != nl {
				b.Fatalf("got %d rows, want %d", len(out.Rows), nl)
			}
		}
	})
	b.Run("runtime=batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if out := e.BatchHashJoin(cl, cr, lk, rk); out.Card() != nl {
				b.Fatalf("got %d rows, want %d", out.Card(), nl)
			}
		}
	})
}

// BenchmarkTableOpAllocs pins the slab allocation of the row-table ops:
// extending and projecting a table must cost a constant number of
// allocations (header + one backing slab), not one make per row.
func BenchmarkTableOpAllocs(b *testing.B) {
	t := benchAggTable(1<<13, 64)
	b.Run("op=extend", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := ExtendTable(t, "w", func(r Row) Value { return Mul(r[1], Int(2)) })
			if len(out.Rows) != len(t.Rows) {
				b.Fatal("row count changed")
			}
		}
	})
	slots := []int{0, 2}
	b.Run("op=project", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := ProjectTable(t, slots)
			if len(out.Rows) != len(t.Rows) {
				b.Fatal("row count changed")
			}
		}
	})
}
