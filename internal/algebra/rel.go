package algebra

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple maps attribute names to values. Attributes absent from the map are
// NULL; lookups go through Get to make that uniform.
type Tuple map[string]Value

// Get returns the value of attribute a, NULL if absent.
func (t Tuple) Get(a string) Value {
	if v, ok := t[a]; ok {
		return v
	}
	return Null
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// Concat returns the concatenation t ◦ u. Attribute sets must be disjoint in
// well-formed plans; on overlap u wins (useful for default padding).
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, len(t)+len(u))
	for k, v := range t {
		out[k] = v
	}
	for k, v := range u {
		out[k] = v
	}
	return out
}

// Rel is a bag of tuples over an ordered schema.
type Rel struct {
	Attrs  []string
	Tuples []Tuple
}

// NewRel builds a relation from a schema and rows given in schema order.
// Row entries may be Value, int (convenience, becomes Int), float64, string
// or nil (NULL).
func NewRel(attrs []string, rows ...[]any) *Rel {
	r := &Rel{Attrs: append([]string(nil), attrs...)}
	for _, row := range rows {
		if len(row) != len(attrs) {
			panic(fmt.Sprintf("algebra: row has %d values for %d attributes", len(row), len(attrs)))
		}
		t := make(Tuple, len(attrs))
		for i, cell := range row {
			t[attrs[i]] = toValue(cell)
		}
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

func toValue(cell any) Value {
	switch c := cell.(type) {
	case nil:
		return Null
	case Value:
		return c
	case int:
		return Int(int64(c))
	case int64:
		return Int(c)
	case float64:
		return Float(c)
	case string:
		return Str(c)
	}
	panic(fmt.Sprintf("algebra: unsupported cell type %T", cell))
}

// Card returns the number of tuples.
func (r *Rel) Card() int { return len(r.Tuples) }

// HasAttr reports whether the schema contains a.
func (r *Rel) HasAttr(a string) bool {
	for _, x := range r.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// schemaUnion concatenates two schemas.
func schemaUnion(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	for _, x := range b {
		dup := false
		for _, y := range a {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// NullTuple returns ⊥_A: a tuple that is NULL in every given attribute.
func NullTuple(attrs []string) Tuple {
	t := make(Tuple, len(attrs))
	for _, a := range attrs {
		t[a] = Null
	}
	return t
}

// encodeTuple renders a tuple canonically over the given schema, used for
// bag comparison and duplicate elimination.
func encodeTuple(t Tuple, attrs []string) string {
	var b strings.Builder
	for _, a := range attrs {
		b.WriteString(t.Get(a).encode())
		b.WriteByte('|')
	}
	return b.String()
}

// EqualBags reports whether two relations contain the same bag of tuples
// over the given attribute list (which defaults to r's schema when attrs is
// nil). Attribute order and tuple order are irrelevant.
func EqualBags(r, s *Rel, attrs []string) bool {
	if attrs == nil {
		attrs = r.Attrs
	}
	if len(r.Tuples) != len(s.Tuples) {
		return false
	}
	re := make([]string, len(r.Tuples))
	se := make([]string, len(s.Tuples))
	for i, t := range r.Tuples {
		re[i] = encodeTuple(t, attrs)
	}
	for i, t := range s.Tuples {
		se[i] = encodeTuple(t, attrs)
	}
	sort.Strings(re)
	sort.Strings(se)
	for i := range re {
		if re[i] != se[i] {
			return false
		}
	}
	return true
}

// String renders the relation as an aligned table, NULLs as "-", matching
// the paper's figures.
func (r *Rel) String() string {
	widths := make([]int, len(r.Attrs))
	for i, a := range r.Attrs {
		widths[i] = len(a)
	}
	cells := make([][]string, len(r.Tuples))
	for ti, t := range r.Tuples {
		row := make([]string, len(r.Attrs))
		for i, a := range r.Attrs {
			row[i] = t.Get(a).String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		cells[ti] = row
	}
	var b strings.Builder
	for i, a := range r.Attrs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%-*s", widths[i], a)
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Union returns the bag union r ∪ s. Schemas are merged.
func Union(r, s *Rel) *Rel {
	out := &Rel{Attrs: schemaUnion(r.Attrs, s.Attrs)}
	out.Tuples = append(out.Tuples, r.Tuples...)
	out.Tuples = append(out.Tuples, s.Tuples...)
	return out
}

// Select returns σ_p(r).
func Select(r *Rel, p func(Tuple) bool) *Rel {
	out := &Rel{Attrs: r.Attrs}
	for _, t := range r.Tuples {
		if p(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Project returns the duplicate-preserving projection Π_attrs(r).
func Project(r *Rel, attrs []string) *Rel {
	out := &Rel{Attrs: append([]string(nil), attrs...)}
	for _, t := range r.Tuples {
		nt := make(Tuple, len(attrs))
		for _, a := range attrs {
			nt[a] = t.Get(a)
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out
}

// DistinctProject returns the duplicate-removing projection Π^D_attrs(r).
// NULLs compare equal for duplicate elimination, matching SQL DISTINCT.
func DistinctProject(r *Rel, attrs []string) *Rel {
	out := &Rel{Attrs: append([]string(nil), attrs...)}
	seen := map[string]bool{}
	for _, t := range r.Tuples {
		nt := make(Tuple, len(attrs))
		for _, a := range attrs {
			nt[a] = t.Get(a)
		}
		key := encodeTuple(nt, attrs)
		if !seen[key] {
			seen[key] = true
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out
}

// Map returns χ(r): every tuple extended with new attributes computed by
// the given expressions.
func Map(r *Rel, exts map[string]func(Tuple) Value) *Rel {
	names := make([]string, 0, len(exts))
	for n := range exts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := &Rel{Attrs: schemaUnion(r.Attrs, names)}
	for _, t := range r.Tuples {
		nt := t.Clone()
		for _, n := range names {
			nt[n] = exts[n](t)
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out
}
