package algebra

import "fmt"

// Schema is an ordered list of attribute names with O(1) name→slot
// resolution. It is the slot-based runtime's replacement for per-tuple
// name lookups: an operator resolves every attribute it touches to an
// integer slot once, at compile time, and row access becomes an index
// expression.
//
// Schemas are immutable after construction and may be shared freely
// between tables.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema over the given attribute names. Names must be
// unique; duplicates panic (schemas come from query compilation, not from
// runtime input).
func NewSchema(names []string) *Schema {
	s := &Schema{
		names: append([]string(nil), names...),
		index: make(map[string]int, len(names)),
	}
	for i, n := range s.names {
		if _, dup := s.index[n]; dup {
			panic(fmt.Sprintf("algebra: duplicate attribute %q in schema", n))
		}
		s.index[n] = i
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.names) }

// Names returns the attribute names in slot order. The caller must not
// mutate the returned slice.
func (s *Schema) Names() []string { return s.names }

// Name returns the attribute name of a slot.
func (s *Schema) Name(slot int) string { return s.names[slot] }

// Slot resolves an attribute name to its slot.
func (s *Schema) Slot(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustSlot resolves an attribute name, panicking on unknown names (a
// compilation bug, not runtime input).
func (s *Schema) MustSlot(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("algebra: unknown attribute %q in schema %v", name, s.names))
	}
	return i
}

// Has reports whether the schema contains the attribute.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// Concat returns the concatenated schema s ◦ t. Attribute sets must be
// disjoint in well-formed plans (operator outputs never alias).
func (s *Schema) Concat(t *Schema) *Schema {
	out := make([]string, 0, len(s.names)+len(t.names))
	out = append(out, s.names...)
	out = append(out, t.names...)
	return NewSchema(out)
}

// Extend returns a schema with one extra attribute appended.
func (s *Schema) Extend(name string) *Schema {
	out := make([]string, 0, len(s.names)+1)
	out = append(out, s.names...)
	out = append(out, name)
	return NewSchema(out)
}

// Slots resolves a list of attribute names at once. Unknown names resolve
// to slot -1, which readers treat as a NULL column — mirroring the map
// runtime, where absent attributes read as NULL.
func (s *Schema) Slots(names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		if slot, ok := s.index[n]; ok {
			out[i] = slot
		} else {
			out[i] = -1
		}
	}
	return out
}
