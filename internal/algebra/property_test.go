package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"eagg/internal/aggfn"
)

// Property-based tests (testing/quick) for the algebraic laws the
// optimizer relies on implicitly.

// genRel builds a relation from quick-generated raw data.
func genRel(vals []int8, attrs []string) *Rel {
	r := &Rel{Attrs: attrs}
	for i := 0; i+len(attrs) <= len(vals); i += len(attrs) {
		t := Tuple{}
		for j, a := range attrs {
			v := vals[i+j]
			if v%5 == 0 {
				t[a] = Null
			} else {
				t[a] = Int(int64(v % 3))
			}
		}
		r.Tuples = append(r.Tuples, t)
	}
	return r
}

// Inner join is commutative (as a bag over the union schema).
func TestQuickJoinCommutative(t *testing.T) {
	f := func(a, b []int8) bool {
		e1 := genRel(a, []string{"x", "u"})
		e2 := genRel(b, []string{"y", "v"})
		p := EqAttr("x", "y")
		pSwap := EqAttr("y", "x")
		l := Join(e1, e2, p)
		r := Join(e2, e1, pSwap)
		return EqualBags(l, r, []string{"x", "u", "y", "v"})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Full outerjoin is commutative.
func TestQuickFullOuterCommutative(t *testing.T) {
	f := func(a, b []int8) bool {
		e1 := genRel(a, []string{"x"})
		e2 := genRel(b, []string{"y"})
		l := FullOuter(e1, e2, EqAttr("x", "y"), nil, nil)
		r := FullOuter(e2, e1, EqAttr("y", "x"), nil, nil)
		return EqualBags(l, r, []string{"x", "y"})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// E decomposes into B ∪ (T × {⊥}) — the definition (Eqv. 5) the proofs
// build on.
func TestQuickLeftOuterDecomposition(t *testing.T) {
	f := func(a, b []int8) bool {
		e1 := genRel(a, []string{"x", "u"})
		e2 := genRel(b, []string{"y"})
		p := EqAttr("x", "y")
		lhs := LeftOuter(e1, e2, p, nil)
		anti := AntiJoin(e1, e2, p)
		padded := Join(anti, NewRel([]string{"y"}, []any{nil}), TruePred)
		rhs := Union(Join(e1, e2, p), padded)
		return EqualBags(lhs, rhs, []string{"x", "u", "y"})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Semijoin ∪ antijoin partitions the left input.
func TestQuickSemiAntiPartition(t *testing.T) {
	f := func(a, b []int8) bool {
		e1 := genRel(a, []string{"x", "u"})
		e2 := genRel(b, []string{"y"})
		p := EqAttr("x", "y")
		semi := SemiJoin(e1, e2, p)
		anti := AntiJoin(e1, e2, p)
		return EqualBags(Union(semi, anti), e1, e1.Attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Two-phase grouping: Γ_G;F2(Γ_{G∪H};F1(e)) ≡ Γ_G;F(e) for decomposable F
// (the essence of Def. 2 lifted to the operator level).
func TestQuickTwoPhaseGrouping(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 300; trial++ {
		var vals []int8
		for i := 0; i < rng.Intn(30); i++ {
			vals = append(vals, int8(rng.Intn(20)-10))
		}
		e := genRel(vals, []string{"g", "h", "a"})
		f := aggfn.Vector{
			{Out: "c", Kind: aggfn.CountStar},
			{Out: "s", Kind: aggfn.Sum, Arg: "a"},
			{Out: "m", Kind: aggfn.Max, Arg: "a"},
			{Out: "v", Kind: aggfn.Avg, Arg: "a"},
		}
		direct := Group(e, []string{"g"}, f)
		dec, err := f.Decompose()
		if err != nil {
			t.Fatal(err)
		}
		two := Group(Group(e, []string{"g", "h"}, dec.Inner), []string{"g"}, dec.Outer)
		if !EqualBags(direct, two, append([]string{"g"}, f.Outs()...)) {
			t.Fatalf("trial %d: two-phase grouping mismatch\ninput:\n%v\ndirect:\n%v\ntwo-phase:\n%v",
				trial, e, direct, two)
		}
	}
}

// Grouping over a bag union with decomposable aggregates: Eqv. 46.
func TestQuickGroupOverUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		mk := func() *Rel {
			var vals []int8
			for i := 0; i < rng.Intn(20); i++ {
				vals = append(vals, int8(rng.Intn(20)-10))
			}
			return genRel(vals, []string{"g", "a"})
		}
		e1, e2 := mk(), mk()
		f := aggfn.Vector{
			{Out: "c", Kind: aggfn.CountStar},
			{Out: "s", Kind: aggfn.Sum, Arg: "a"},
			{Out: "lo", Kind: aggfn.Min, Arg: "a"},
		}
		lhs := Group(Union(e1, e2), []string{"g"}, f)
		dec, err := f.Decompose()
		if err != nil {
			t.Fatal(err)
		}
		rhs := Group(Union(Group(e1, []string{"g"}, dec.Inner), Group(e2, []string{"g"}, dec.Inner)),
			[]string{"g"}, dec.Outer)
		if !EqualBags(lhs, rhs, append([]string{"g"}, f.Outs()...)) {
			t.Fatalf("trial %d: Eqv 46 mismatch\nLHS:\n%v\nRHS:\n%v", trial, lhs, rhs)
		}
	}
}

// EqualBags is an equivalence relation on the relations we build.
func TestQuickEqualBagsReflexiveSymmetric(t *testing.T) {
	f := func(a, b []int8) bool {
		e1 := genRel(a, []string{"x"})
		e2 := genRel(b, []string{"x"})
		if !EqualBags(e1, e1, e1.Attrs) {
			return false
		}
		return EqualBags(e1, e2, e1.Attrs) == EqualBags(e2, e1, e1.Attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
