// Package algebra is a small bag-semantics relational runtime. It exists for
// two purposes: (1) to verify the paper's equivalences (Fig. 3 and Appendix
// A) by executing both sides of each equivalence on concrete relations, and
// (2) to execute optimized plans end-to-end so that eager-aggregation plans
// can be checked for result equivalence against their lazy counterparts.
//
// The operator set follows Fig. 1 of the paper: cross product A, inner join
// B, left semijoin N, left antijoin T, left outerjoin E (with an optional
// default vector, Eqv. 7), full outerjoin K (with default vectors on either
// side, Eqv. 8), groupjoin Z (Eqv. 9), plus grouping Γ, map χ, selection σ,
// projection Π and duplicate-removing projection Π^D.
package algebra

import (
	"fmt"
	"strconv"
)

// ValueKind discriminates the runtime value types.
type ValueKind int

const (
	// KindNull is the SQL NULL marker.
	KindNull ValueKind = iota
	// KindInt is a 64-bit integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindString is a string.
	KindString
)

// Value is a SQL-style value: NULL, integer, float or string. The zero
// Value is NULL.
type Value struct {
	Kind ValueKind
	I    int64
	F    float64
	S    string
}

// Null is the NULL value.
var Null = Value{Kind: KindNull}

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts a numeric value to float64. It panics on strings and
// NULL; callers must check first.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	panic(fmt.Sprintf("algebra: AsFloat of %v", v))
}

// String renders the value; NULL renders as "-" like the paper's examples.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "-"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	}
	return "?"
}

// encode produces an unambiguous string used for hashing/sorting tuples.
// String payloads are length-prefixed: the bare "s" + payload form used
// previously was ambiguous once a string value contained the tuple
// separator and a type tag, so two distinct tuples could encode
// identically and be merged by grouping or duplicate elimination (see
// TestGroupingKeyCollision). The slot runtime's binary keys (hashkey.go)
// are collision-proof by the same construction.
func (v Value) encode() string {
	switch v.Kind {
	case KindNull:
		return "N"
	case KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "s" + strconv.Itoa(len(v.S)) + ":" + v.S
	}
	return "?"
}

// EqStrict is SQL join-predicate equality: NULL compares equal to nothing,
// including NULL.
func EqStrict(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return eqNonNull(a, b)
}

// EqGrouping is grouping/key equality as suggested by Paulley and adopted
// in Sec. 2.3: two values are equal if they agree in value or are both
// NULL.
func EqGrouping(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return eqNonNull(a, b)
}

func eqNonNull(a, b Value) bool {
	if a.Kind == KindString || b.Kind == KindString {
		return a.Kind == KindString && b.Kind == KindString && a.S == b.S
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		return a.I == b.I
	}
	return a.AsFloat() == b.AsFloat()
}

// CompareStrict implements SQL comparison for non-NULL values: it returns
// -1, 0, +1, and ok=false when either side is NULL (unknown). Numeric
// values compare numerically across int/float; strings compare
// lexicographically. Comparing a string with a number panics — relations in
// this runtime are typed consistently per attribute.
func CompareStrict(a, b Value) (cmp int, ok bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if a.Kind == KindString || b.Kind == KindString {
		if a.Kind != KindString || b.Kind != KindString {
			panic("algebra: comparing string with number")
		}
		switch {
		case a.S < b.S:
			return -1, true
		case a.S > b.S:
			return 1, true
		}
		return 0, true
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		switch {
		case a.I < b.I:
			return -1, true
		case a.I > b.I:
			return 1, true
		}
		return 0, true
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1, true
	case af > bf:
		return 1, true
	}
	return 0, true
}

// Add returns a+b with SQL NULL propagation and int→float promotion.
func Add(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		return Int(a.I + b.I)
	}
	return Float(a.AsFloat() + b.AsFloat())
}

// Mul returns a*b with SQL NULL propagation and int→float promotion.
func Mul(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		return Int(a.I * b.I)
	}
	return Float(a.AsFloat() * b.AsFloat())
}

// Div returns a/b as a float, NULL on NULL input or division by zero
// (SQL would error on zero division; for aggregate merging NULL is the
// correct "empty group" answer).
func Div(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	bf := b.AsFloat()
	if bf == 0 {
		return Null
	}
	return Float(a.AsFloat() / bf)
}
