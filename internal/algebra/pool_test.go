package algebra

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunsEveryTaskExactlyOnce is the pool's basic contract: a job
// of n tasks runs each task exactly once before Run returns, for any
// worker count (including zero, where the submitter drains alone).
func TestPoolRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 4, 16} {
		p := NewPool(workers)
		const n = 1000
		var hits [n]atomic.Int32
		p.Run(n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
		st := p.Stats()
		if st.Jobs != 1 || st.WorkerTasks+st.HelperTasks != n {
			t.Fatalf("workers=%d: stats %+v, want 1 job and %d tasks", workers, st, n)
		}
		p.Close()
	}
}

// TestPoolConcurrentJobs hammers one pool from many submitters at once —
// the service layer's actual usage pattern. Every job must still see
// each of its tasks exactly once.
func TestPoolConcurrentJobs(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const submitters, tasks = 16, 257
	var wg sync.WaitGroup
	wg.Add(submitters)
	for s := 0; s < submitters; s++ {
		go func() {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				var sum atomic.Int64
				p.Run(tasks, func(i int) { sum.Add(int64(i) + 1) })
				if got := sum.Load(); got != tasks*(tasks+1)/2 {
					t.Errorf("job saw task sum %d, want %d", got, tasks*(tasks+1)/2)
				}
			}
		}()
	}
	wg.Wait()
}

// TestPoolClosedRunsInline pins the shutdown behavior: Run on a closed
// pool degrades to inline execution instead of hanging or dropping work.
func TestPoolClosedRunsInline(t *testing.T) {
	p := NewPool(2)
	p.Close()
	var count atomic.Int32
	p.Run(10, func(i int) { count.Add(1) })
	if count.Load() != 10 {
		t.Fatalf("closed pool ran %d/10 tasks", count.Load())
	}
}

// TestPoolZeroTasks pins that an empty fan-out returns immediately.
func TestPoolZeroTasks(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	p.Run(0, func(i int) { t.Error("task ran for n=0") })
}

// TestPoolOperatorsBitIdentical is the determinism half of the shared
// scheduler: hash operators executing on a pool-attached Exec must
// produce results bit-identical to the plain sequential operators —
// the same contract the goroutine-spawning fan-out already satisfies.
// Tiny morsels force the parallel machinery onto the small inputs.
func TestPoolOperatorsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(615))
	p := NewPool(3)
	defer p.Close()
	ex := NewExec(8).WithMorselSize(2).WithPool(p)
	for trial := 0; trial < 20; trial++ {
		l := TableOf(randomRel(rng, []string{"a", "b"}, 60))
		r := TableOf(randomRel(rng, []string{"c", "d"}, 40))
		want := HashJoin(l, r, []int{0}, []int{0})
		got := ex.HashJoin(l, r, []int{0}, []int{0})
		sameRel(t, want.Rel(), got.Rel(), []string{"a", "b", "c", "d"})

		gwant := HashGroup(l, []string{"a"}, nil)
		ggot := ex.HashGroup(l, []string{"a"}, nil)
		sameRel(t, gwant.Rel(), ggot.Rel(), []string{"a"})
	}
	if p.Stats().WorkerTasks+p.Stats().HelperTasks == 0 {
		t.Fatal("pool executed no tasks — fan-out did not route through it")
	}
}
