package algebra

import (
	"testing"

	"eagg/internal/aggfn"
)

// fig2e1 and fig2e2 are the example relations of the paper's Figure 2.
func fig2e1() *Rel {
	return NewRel([]string{"a", "b", "c"},
		[]any{0, 0, 1},
		[]any{1, 0, 1},
		[]any{2, 1, 3},
		[]any{3, 2, 3},
	)
}

func fig2e2() *Rel {
	return NewRel([]string{"d", "e", "f"},
		[]any{0, 0, 1},
		[]any{1, 1, 1},
		[]any{2, 2, 1},
		[]any{3, 4, 2},
	)
}

func TestFig2InnerJoin(t *testing.T) {
	got := Join(fig2e1(), fig2e2(), EqAttr("b", "d"))
	want := NewRel([]string{"a", "b", "c", "d", "e", "f"},
		[]any{0, 0, 1, 0, 0, 1},
		[]any{1, 0, 1, 0, 0, 1},
		[]any{2, 1, 3, 1, 1, 1},
		[]any{3, 2, 3, 2, 2, 1},
	)
	if !EqualBags(got, want, want.Attrs) {
		t.Errorf("inner join:\n%v\nwant:\n%v", got, want)
	}
}

func TestFig2AntiJoin(t *testing.T) {
	got := AntiJoin(fig2e1(), fig2e2(), EqAttr("a", "e"))
	want := NewRel([]string{"a", "b", "c"}, []any{3, 2, 3})
	if !EqualBags(got, want, want.Attrs) {
		t.Errorf("antijoin:\n%v", got)
	}
}

func TestFig2SemiJoin(t *testing.T) {
	got := SemiJoin(fig2e1(), fig2e2(), EqAttr("b", "d"))
	if !EqualBags(got, fig2e1(), fig2e1().Attrs) {
		t.Errorf("semijoin:\n%v", got)
	}
}

func TestFig2LeftOuter(t *testing.T) {
	got := LeftOuter(fig2e1(), fig2e2(), EqAttr("a", "e"), nil)
	want := NewRel([]string{"a", "b", "c", "d", "e", "f"},
		[]any{0, 0, 1, 0, 0, 1},
		[]any{1, 0, 1, 1, 1, 1},
		[]any{2, 1, 3, 2, 2, 1},
		[]any{3, 2, 3, nil, nil, nil},
	)
	if !EqualBags(got, want, want.Attrs) {
		t.Errorf("left outerjoin:\n%v\nwant:\n%v", got, want)
	}
}

func TestFig2FullOuter(t *testing.T) {
	got := FullOuter(fig2e1(), fig2e2(), EqAttr("a", "e"), nil, nil)
	want := NewRel([]string{"a", "b", "c", "d", "e", "f"},
		[]any{0, 0, 1, 0, 0, 1},
		[]any{1, 0, 1, 1, 1, 1},
		[]any{2, 1, 3, 2, 2, 1},
		[]any{3, 2, 3, nil, nil, nil},
		[]any{nil, nil, nil, 3, 4, 2},
	)
	if !EqualBags(got, want, want.Attrs) {
		t.Errorf("full outerjoin:\n%v\nwant:\n%v", got, want)
	}
}

// Fig. 2's groupjoin column shows the matched tuples; the formal definition
// (Eqv. 9) extends *every* left tuple, with f(∅) for tuples without
// partners. We test the definition: sum(∅) is NULL.
func TestFig2GroupJoin(t *testing.T) {
	f := aggfn.Vector{{Out: "g", Kind: aggfn.Sum, Arg: "f"}}
	got := GroupJoin(fig2e1(), fig2e2(), EqAttr("a", "f"), f)
	want := NewRel([]string{"a", "b", "c", "g"},
		[]any{0, 0, 1, nil},
		[]any{1, 0, 1, 3},
		[]any{2, 1, 3, 2},
		[]any{3, 2, 3, nil},
	)
	if !EqualBags(got, want, want.Attrs) {
		t.Errorf("groupjoin:\n%v\nwant:\n%v", got, want)
	}
}

func TestLeftOuterWithDefaults(t *testing.T) {
	d := Defaults{"f": Int(99)}
	got := LeftOuter(fig2e1(), fig2e2(), EqAttr("a", "e"), d)
	for _, tu := range got.Tuples {
		if tu.Get("a").I == 3 { // the unmatched tuple
			if tu.Get("f").I != 99 || !tu.Get("d").IsNull() {
				t.Errorf("default padding broken: %v", tu)
			}
		}
	}
}

func TestFullOuterWithDefaults(t *testing.T) {
	d1 := Defaults{"c": Int(-1)}
	d2 := Defaults{"f": Int(-2)}
	got := FullOuter(fig2e1(), fig2e2(), EqAttr("a", "e"), d1, d2)
	var sawLeftPad, sawRightPad bool
	for _, tu := range got.Tuples {
		if tu.Get("a").IsNull() { // right orphan: left side padded with D1
			sawLeftPad = true
			if tu.Get("c").I != -1 {
				t.Errorf("D1 default not applied: %v", tu)
			}
		}
		if tu.Get("d").IsNull() && !tu.Get("a").IsNull() { // left orphan
			sawRightPad = true
			if tu.Get("f").I != -2 {
				t.Errorf("D2 default not applied: %v", tu)
			}
		}
	}
	if !sawLeftPad || !sawRightPad {
		t.Error("expected padded tuples on both sides")
	}
}

func TestCross(t *testing.T) {
	got := Cross(fig2e1(), fig2e2())
	if got.Card() != 16 {
		t.Errorf("cross product size = %d, want 16", got.Card())
	}
}

func TestNullNeverJoins(t *testing.T) {
	l := NewRel([]string{"x"}, []any{nil}, []any{1})
	r := NewRel([]string{"y"}, []any{nil}, []any{1})
	got := Join(l, r, EqAttr("x", "y"))
	if got.Card() != 1 {
		t.Errorf("NULL joined: %v", got)
	}
	lo := LeftOuter(l, r, EqAttr("x", "y"), nil)
	if lo.Card() != 2 {
		t.Errorf("left outer over NULLs: %v", lo)
	}
}

func TestAndPredAndTruePred(t *testing.T) {
	l := NewRel([]string{"x", "x2"}, []any{1, 2}, []any{1, 3})
	r := NewRel([]string{"y", "y2"}, []any{1, 2}, []any{1, 9})
	got := Join(l, r, AndPred(EqAttr("x", "y"), EqAttr("x2", "y2")))
	if got.Card() != 1 {
		t.Errorf("AndPred join: %v", got)
	}
	if Join(l, r, TruePred).Card() != 4 {
		t.Error("TruePred should produce the cross product")
	}
}
