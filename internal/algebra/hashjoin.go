package algebra

// Hash-based equi-join operators over slot-based tables. Each operator
// takes paired key slot lists (lk[i] on the left schema matches rk[i] on
// the right schema), builds a hash table over the right input keyed by the
// collision-proof typed encoding of hashkey.go, and probes with the left
// input. Join equality is strict: rows with a NULL key component match
// nothing (they are never inserted and never probe successfully), exactly
// like the nested-loop reference operators with EqStrict predicates.
//
// A slot of -1 stands for an attribute absent from the schema; it reads
// as NULL and therefore matches nothing — the same behavior the map
// runtime exhibits for unresolvable predicate attributes.
//
// With empty key lists every row shares the empty key and the operators
// degenerate to their cross-product forms, again matching the reference
// with an always-true predicate.
//
// Output row order equals the nested-loop order (probe rows in input
// order, matches in build-input order), so results are identical as
// sequences, not just as bags.

// buildSide hashes the right input: key → indices of its rows, in input
// order.
func buildSide(r *Table, rk []int) map[string][]int32 {
	m := make(map[string][]int32, len(r.Rows))
	var buf []byte
	for i, row := range r.Rows {
		if rowHasNullKey(row, rk) {
			continue
		}
		buf = appendJoinKey(buf[:0], row, rk)
		m[string(buf)] = append(m[string(buf)], int32(i))
	}
	return m
}

// HashJoin returns the inner equi-join l ⋈ r.
func HashJoin(l, r *Table, lk, rk []int) *Table {
	out := &Table{Schema: l.Schema.Concat(r.Schema)}
	ht := buildSide(r, rk)
	ar := newRowArena(out.Schema.Len())
	var buf []byte
	for _, lrow := range l.Rows {
		if rowHasNullKey(lrow, lk) {
			continue
		}
		buf = appendJoinKey(buf[:0], lrow, lk)
		for _, ri := range ht[string(buf)] {
			out.Rows = append(out.Rows, ar.concat(lrow, r.Rows[ri]))
		}
	}
	return out
}

// HashSemiJoin returns the left semijoin l ⋉ r.
func HashSemiJoin(l, r *Table, lk, rk []int) *Table {
	out := &Table{Schema: l.Schema}
	ht := buildSide(r, rk)
	var buf []byte
	for _, lrow := range l.Rows {
		if rowHasNullKey(lrow, lk) {
			continue
		}
		buf = appendJoinKey(buf[:0], lrow, lk)
		if len(ht[string(buf)]) > 0 {
			out.Rows = append(out.Rows, lrow)
		}
	}
	return out
}

// HashAntiJoin returns the left antijoin l ▷ r. Left rows with NULL key
// components are kept: strict equality makes them match nothing.
func HashAntiJoin(l, r *Table, lk, rk []int) *Table {
	out := &Table{Schema: l.Schema}
	ht := buildSide(r, rk)
	var buf []byte
	for _, lrow := range l.Rows {
		if !rowHasNullKey(lrow, lk) {
			buf = appendJoinKey(buf[:0], lrow, lk)
			if len(ht[string(buf)]) > 0 {
				continue
			}
		}
		out.Rows = append(out.Rows, lrow)
	}
	return out
}

// HashLeftOuter returns the left outerjoin with a default padding row for
// the right side (NULLs, overridden by engine default vectors). pad must
// be a full row over r's schema.
func HashLeftOuter(l, r *Table, lk, rk []int, pad Row) *Table {
	out := &Table{Schema: l.Schema.Concat(r.Schema)}
	ht := buildSide(r, rk)
	ar := newRowArena(out.Schema.Len())
	var buf []byte
	for _, lrow := range l.Rows {
		matched := false
		if !rowHasNullKey(lrow, lk) {
			buf = appendJoinKey(buf[:0], lrow, lk)
			for _, ri := range ht[string(buf)] {
				matched = true
				out.Rows = append(out.Rows, ar.concat(lrow, r.Rows[ri]))
			}
		}
		if !matched {
			out.Rows = append(out.Rows, ar.concat(lrow, pad))
		}
	}
	return out
}

// HashFullOuter returns the full outerjoin with default padding rows for
// either side.
func HashFullOuter(l, r *Table, lk, rk []int, lpad, rpad Row) *Table {
	out := &Table{Schema: l.Schema.Concat(r.Schema)}
	ht := buildSide(r, rk)
	ar := newRowArena(out.Schema.Len())
	matchedRight := make([]bool, len(r.Rows))
	var buf []byte
	for _, lrow := range l.Rows {
		matched := false
		if !rowHasNullKey(lrow, lk) {
			buf = appendJoinKey(buf[:0], lrow, lk)
			for _, ri := range ht[string(buf)] {
				matched = true
				matchedRight[ri] = true
				out.Rows = append(out.Rows, ar.concat(lrow, r.Rows[ri]))
			}
		}
		if !matched {
			out.Rows = append(out.Rows, ar.concat(lrow, rpad))
		}
	}
	for ri, rrow := range r.Rows {
		if !matchedRight[ri] {
			out.Rows = append(out.Rows, ar.concat(lpad, rrow))
		}
	}
	return out
}

// NullRow returns a row of NULLs over the schema.
func NullRow(s *Schema) Row {
	return make(Row, s.Len())
}
