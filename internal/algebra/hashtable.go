package algebra

// Flat open-addressing hash tables for the batch runtime's hot paths.
// Go's generic map pays a hash of an already-hashed key, pointer-chasing
// buckets and a per-insert allocation on exactly the traffic the paper's
// C_out metric counts; these tables are the cache-conscious replacement
// in the X100 tradition (Boncz et al., CIDR'05): one flat slot array,
// linear probing, power-of-two capacity, cached 64-bit hashes, and
// posting lists stored inline — the first matching row lives in the slot
// itself, overflow rows go to a slab-backed chain that a finalize pass
// flattens into one contiguous postings slab, so a lookup returns a
// zero-allocation subslice.
//
// Two posting-table specializations cover the runtime's key shapes:
//
//   - intTable hashes raw int64 payloads (the single-ColInt fast path of
//     batchBuildSide) through a splitmix64-style mixer.
//   - bytesTable hashes the canonical typed binary key encodings
//     (batchkey.go) under the same word-at-a-time hash (hashKey) the partition
//     scatter uses, so one hash per key serves both the partition choice
//     (low bits) and the slot choice (high bits). Keys are copied into a
//     table-owned arena on first insert — callers hand in pooled scratch
//     buffers that are overwritten batch to batch.
//
// Slots are derived from the HIGH bits of the hash (h >> shift). The
// radix partitioner has already consumed the LOW log2(partitions) bits
// when a table holds one partition's keys; taking high bits keeps the
// slot distribution independent of the partition choice.
//
// Posting lists preserve build-input order by construction: the slot
// holds the first row, overflow rows are appended to the chain tail, and
// finalize walks first-then-chain. That is the whole PR 3 determinism
// argument — per-partition inserts in morsel order produce the exact
// posting sequences of the sequential build, so workers 1 ≡ N stays
// bit-identical without any sorting.
//
// intIndex / bytesIndex are the companion key→group-id maps of batch
// aggregation: same probing scheme, but the payload is a caller-assigned
// dense id, preserving first-encounter group order.

import (
	"bytes"
	"math/bits"
	"sync/atomic"
)

// hashInt64 mixes an int64 join key into a 64-bit hash (the splitmix64
// finalizer). The raw payload is not usable directly: sequential keys
// would collide per stride in the high slot bits.
func hashInt64(x int64) uint64 {
	z := uint64(x)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// minTableCap is the smallest slot-array size. Power of two, like every
// capacity here.
const minTableCap = 8

// tableGeometry sizes a slot array for hint distinct keys at no more
// than ¾ load: the smallest power-of-two capacity c with hint ≤ ¾·c,
// its probe mask, and the right-shift that turns a 64-bit hash into a
// home slot from its high bits.
func tableGeometry(hint int) (capacity int, mask uint64, shift uint) {
	c := minTableCap
	for c-c/4 < hint {
		c <<= 1
	}
	return c, uint64(c - 1), uint(64 - bits.Len(uint(c-1)))
}

// intSlot is one open-addressing slot of an intTable. first < 0 marks an
// empty slot. While building, head/tail are the overflow chain's ends
// (indices into ovRow/ovNext, -1 for none); after finalize they are the
// slot's (offset, length) into the flat postings slab.
type intSlot struct {
	key   int64
	first int32
	head  int32
	tail  int32
}

// intTable maps int64 keys to posting lists of int32 rows in insertion
// order. Build with insert, seal with finalize, then read with lookup.
type intTable struct {
	slots []intSlot
	mask  uint64
	shift uint

	n        int // distinct keys
	growAt   int // grow before exceeding ¾ load
	rows     int // total postings inserted
	maxProbe int // longest probe sequence any insert walked

	ovRow  []int32 // overflow postings (rows beyond each key's first)
	ovNext []int32 // chain links through ovRow; -1 ends a chain
	posts  []int32 // finalized postings slab
}

func newIntTable(hint int) *intTable {
	t := &intTable{}
	c, mask, shift := tableGeometry(hint)
	t.slots, t.mask, t.shift = newIntSlots(c), mask, shift
	t.growAt = c - c/4
	return t
}

func newIntSlots(c int) []intSlot {
	s := make([]intSlot, c)
	for i := range s {
		s[i].first = -1
	}
	return s
}

// insert appends row to key's posting list, claiming a slot on first
// encounter. Postings keep insertion order: first row inline, the rest
// tail-appended to the overflow chain.
func (t *intTable) insert(key int64, row int32) {
	t.rows++
	h := hashInt64(key)
	for {
		i := h >> t.shift
		d := 1
		for {
			s := &t.slots[i]
			if s.first < 0 {
				if t.n >= t.growAt {
					t.grow()
					break // re-probe in the grown table
				}
				t.n++
				if d > t.maxProbe {
					t.maxProbe = d
				}
				*s = intSlot{key: key, first: row, head: -1, tail: -1}
				return
			}
			if s.key == key {
				t.appendOverflow(s, row)
				return
			}
			i = (i + 1) & t.mask
			d++
		}
	}
}

func (t *intTable) appendOverflow(s *intSlot, row int32) {
	e := int32(len(t.ovRow))
	t.ovRow = append(t.ovRow, row)
	t.ovNext = append(t.ovNext, -1)
	if s.tail >= 0 {
		t.ovNext[s.tail] = e
	} else {
		s.head = e
	}
	s.tail = e
}

// grow doubles the slot array and re-places every occupied slot by its
// key's hash. Overflow chains index into slabs, never into slots, so
// growing moves no postings.
func (t *intTable) grow() {
	old := t.slots
	c := 2 * len(old)
	t.slots = newIntSlots(c)
	t.mask = uint64(c - 1)
	t.shift--
	t.growAt = c - c/4
	t.maxProbe = 0
	for oi := range old {
		s := &old[oi]
		if s.first < 0 {
			continue
		}
		i := hashInt64(s.key) >> t.shift
		d := 1
		for t.slots[i].first >= 0 {
			i = (i + 1) & t.mask
			d++
		}
		if d > t.maxProbe {
			t.maxProbe = d
		}
		t.slots[i] = *s
	}
}

// finalize flattens every key's inline-first-plus-chain postings into
// one contiguous slab (insertion order preserved) and repurposes
// head/tail as its (offset, length). Must be called exactly once, after
// the last insert and before the first lookup.
func (t *intTable) finalize() {
	t.posts = make([]int32, 0, t.rows)
	for i := range t.slots {
		s := &t.slots[i]
		if s.first < 0 {
			continue
		}
		off := int32(len(t.posts))
		t.posts = append(t.posts, s.first)
		for e := s.head; e >= 0; e = t.ovNext[e] {
			t.posts = append(t.posts, t.ovRow[e])
		}
		s.head = off
		s.tail = int32(len(t.posts)) - off
	}
	t.ovRow, t.ovNext = nil, nil
}

// lookup returns key's postings in insertion order, nil if absent.
func (t *intTable) lookup(key int64) []int32 {
	return t.lookupHashed(hashInt64(key), key)
}

func (t *intTable) lookupHashed(h uint64, key int64) []int32 {
	i := h >> t.shift
	for {
		s := &t.slots[i]
		if s.first < 0 {
			return nil
		}
		if s.key == key {
			return t.posts[s.head : s.head+s.tail]
		}
		i = (i + 1) & t.mask
	}
}

// fillBloom adds every distinct key's hash to the filter.
func (t *intTable) fillBloom(f *bloomFilter) {
	for i := range t.slots {
		if t.slots[i].first >= 0 {
			f.add(hashInt64(t.slots[i].key))
		}
	}
}

func (t *intTable) record(hs *HashStats) {
	if hs != nil {
		hs.recordTable(t.n, len(t.slots), t.maxProbe)
	}
}

// bytesSlot is one open-addressing slot of a bytesTable: the cached key
// hash, the key's (offset, length) in the table's arena, and the same
// first/head/tail posting layout as intSlot. first < 0 marks empty (the
// empty key is legal — klen 0 — so occupancy needs its own marker).
type bytesSlot struct {
	hash       uint64
	koff, klen int32
	first      int32
	head       int32
	tail       int32
}

// bytesTable maps encoded byte keys to posting lists of int32 rows in
// insertion order. Keys are copied into the table-owned arena on first
// insert (callers reuse their encoding buffers); equality is cached-hash
// first, bytes second. Resizing re-places slots by the cached hash and
// never touches key bytes.
type bytesTable struct {
	slots []bytesSlot
	mask  uint64
	shift uint

	n        int
	growAt   int
	rows     int
	maxProbe int

	arena  []byte
	ovRow  []int32
	ovNext []int32
	posts  []int32
}

func newBytesTable(hint int) *bytesTable {
	t := &bytesTable{}
	c, mask, shift := tableGeometry(hint)
	t.slots, t.mask, t.shift = newBytesSlots(c), mask, shift
	t.growAt = c - c/4
	return t
}

func newBytesSlots(c int) []bytesSlot {
	s := make([]bytesSlot, c)
	for i := range s {
		s[i].first = -1
	}
	return s
}

func (t *bytesTable) key(s *bytesSlot) []byte {
	return t.arena[s.koff : s.koff+s.klen]
}

// insert appends row to key's posting list under its precomputed hash
// (hashKey(key) — the same hash that picked this table's partition, when
// partitioned). key may point into caller scratch; it is copied on first
// encounter.
func (t *bytesTable) insert(h uint64, key []byte, row int32) {
	t.rows++
	for {
		i := h >> t.shift
		d := 1
		for {
			s := &t.slots[i]
			if s.first < 0 {
				if t.n >= t.growAt {
					t.grow()
					break // re-probe in the grown table
				}
				t.n++
				if d > t.maxProbe {
					t.maxProbe = d
				}
				koff := int32(len(t.arena))
				t.arena = append(t.arena, key...)
				*s = bytesSlot{hash: h, koff: koff, klen: int32(len(key)), first: row, head: -1, tail: -1}
				return
			}
			if s.hash == h && bytes.Equal(t.key(s), key) {
				t.appendOverflow(s, row)
				return
			}
			i = (i + 1) & t.mask
			d++
		}
	}
}

func (t *bytesTable) appendOverflow(s *bytesSlot, row int32) {
	e := int32(len(t.ovRow))
	t.ovRow = append(t.ovRow, row)
	t.ovNext = append(t.ovNext, -1)
	if s.tail >= 0 {
		t.ovNext[s.tail] = e
	} else {
		s.head = e
	}
	s.tail = e
}

func (t *bytesTable) grow() {
	old := t.slots
	c := 2 * len(old)
	t.slots = newBytesSlots(c)
	t.mask = uint64(c - 1)
	t.shift--
	t.growAt = c - c/4
	t.maxProbe = 0
	for oi := range old {
		s := &old[oi]
		if s.first < 0 {
			continue
		}
		i := s.hash >> t.shift
		d := 1
		for t.slots[i].first >= 0 {
			i = (i + 1) & t.mask
			d++
		}
		if d > t.maxProbe {
			t.maxProbe = d
		}
		t.slots[i] = *s
	}
}

// finalize flattens postings exactly like intTable.finalize.
func (t *bytesTable) finalize() {
	t.posts = make([]int32, 0, t.rows)
	for i := range t.slots {
		s := &t.slots[i]
		if s.first < 0 {
			continue
		}
		off := int32(len(t.posts))
		t.posts = append(t.posts, s.first)
		for e := s.head; e >= 0; e = t.ovNext[e] {
			t.posts = append(t.posts, t.ovRow[e])
		}
		s.head = off
		s.tail = int32(len(t.posts)) - off
	}
	t.ovRow, t.ovNext = nil, nil
}

// lookup returns key's postings in insertion order, nil if absent.
func (t *bytesTable) lookup(key []byte) []int32 {
	return t.lookupHashed(hashKey(key), key)
}

func (t *bytesTable) lookupHashed(h uint64, key []byte) []int32 {
	i := h >> t.shift
	for {
		s := &t.slots[i]
		if s.first < 0 {
			return nil
		}
		if s.hash == h && bytes.Equal(t.key(s), key) {
			return t.posts[s.head : s.head+s.tail]
		}
		i = (i + 1) & t.mask
	}
}

func (t *bytesTable) fillBloom(f *bloomFilter) {
	for i := range t.slots {
		if t.slots[i].first >= 0 {
			f.add(t.slots[i].hash)
		}
	}
}

func (t *bytesTable) record(hs *HashStats) {
	if hs != nil {
		hs.recordTable(t.n, len(t.slots), t.maxProbe)
	}
}

// groupIndexSeedCap seeds the group indexes small: group counts are
// unknown up front (often tiny against the row count), and growth is
// deterministic anyway.
const groupIndexSeedCap = 64

// intIndex maps int64 keys to caller-assigned dense int32 ids — the
// group index of the single-ColInt aggregation fast path.
type intIndex struct {
	keys     []int64
	ids      []int32 // < 0 marks an empty slot
	mask     uint64
	shift    uint
	n        int
	growAt   int
	maxProbe int
}

func newIntIndex(hint int) *intIndex {
	x := &intIndex{}
	c, mask, shift := tableGeometry(hint)
	x.keys, x.ids, x.mask, x.shift = make([]int64, c), newIds(c), mask, shift
	x.growAt = c - c/4
	return x
}

func newIds(c int) []int32 {
	ids := make([]int32, c)
	for i := range ids {
		ids[i] = -1
	}
	return ids
}

// lookupOrAdd returns key's id, inserting it as id on first encounter
// (added reports which). Assigned ids are stable across growth.
func (x *intIndex) lookupOrAdd(key int64, id int32) (got int32, added bool) {
	h := hashInt64(key)
	for {
		i := h >> x.shift
		d := 1
		for {
			if x.ids[i] < 0 {
				if x.n >= x.growAt {
					x.grow()
					break // re-probe in the grown index
				}
				x.n++
				if d > x.maxProbe {
					x.maxProbe = d
				}
				x.keys[i], x.ids[i] = key, id
				return id, true
			}
			if x.keys[i] == key {
				return x.ids[i], false
			}
			i = (i + 1) & x.mask
			d++
		}
	}
}

func (x *intIndex) grow() {
	oldKeys, oldIds := x.keys, x.ids
	c := 2 * len(oldKeys)
	x.keys, x.ids = make([]int64, c), newIds(c)
	x.mask = uint64(c - 1)
	x.shift--
	x.growAt = c - c/4
	x.maxProbe = 0
	for oi, id := range oldIds {
		if id < 0 {
			continue
		}
		i := hashInt64(oldKeys[oi]) >> x.shift
		d := 1
		for x.ids[i] >= 0 {
			i = (i + 1) & x.mask
			d++
		}
		if d > x.maxProbe {
			x.maxProbe = d
		}
		x.keys[i], x.ids[i] = oldKeys[oi], id
	}
}

func (x *intIndex) record(hs *HashStats) {
	if hs != nil {
		hs.recordTable(x.n, len(x.ids), x.maxProbe)
	}
}

// bytesIndexSlot is one slot of a bytesIndex; id < 0 marks empty.
type bytesIndexSlot struct {
	hash       uint64
	koff, klen int32
	id         int32
}

// bytesIndex maps encoded byte keys to caller-assigned dense int32 ids —
// the group index of batch aggregation's encoded-key path. Keys are
// copied into the index-owned arena on first encounter.
type bytesIndex struct {
	slots    []bytesIndexSlot
	mask     uint64
	shift    uint
	n        int
	growAt   int
	maxProbe int
	arena    []byte
}

func newBytesIndex(hint int) *bytesIndex {
	x := &bytesIndex{}
	c, mask, shift := tableGeometry(hint)
	x.slots, x.mask, x.shift = newBytesIndexSlots(c), mask, shift
	x.growAt = c - c/4
	return x
}

func newBytesIndexSlots(c int) []bytesIndexSlot {
	s := make([]bytesIndexSlot, c)
	for i := range s {
		s[i].id = -1
	}
	return s
}

// lookupOrAdd returns key's id under its precomputed hash, inserting it
// as id on first encounter. key may point into caller scratch; it is
// copied when inserted.
func (x *bytesIndex) lookupOrAdd(h uint64, key []byte, id int32) (got int32, added bool) {
	for {
		i := h >> x.shift
		d := 1
		for {
			s := &x.slots[i]
			if s.id < 0 {
				if x.n >= x.growAt {
					x.grow()
					break // re-probe in the grown index
				}
				x.n++
				if d > x.maxProbe {
					x.maxProbe = d
				}
				koff := int32(len(x.arena))
				x.arena = append(x.arena, key...)
				*s = bytesIndexSlot{hash: h, koff: koff, klen: int32(len(key)), id: id}
				return id, true
			}
			if s.hash == h && bytes.Equal(x.arena[s.koff:s.koff+s.klen], key) {
				return s.id, false
			}
			i = (i + 1) & x.mask
			d++
		}
	}
}

func (x *bytesIndex) grow() {
	old := x.slots
	c := 2 * len(old)
	x.slots = newBytesIndexSlots(c)
	x.mask = uint64(c - 1)
	x.shift--
	x.growAt = c - c/4
	x.maxProbe = 0
	for oi := range old {
		s := &old[oi]
		if s.id < 0 {
			continue
		}
		i := s.hash >> x.shift
		d := 1
		for x.slots[i].id >= 0 {
			i = (i + 1) & x.mask
			d++
		}
		if d > x.maxProbe {
			x.maxProbe = d
		}
		x.slots[i] = *s
	}
}

func (x *bytesIndex) record(hs *HashStats) {
	if hs != nil {
		hs.recordTable(x.n, len(x.slots), x.maxProbe)
	}
}

// bloomBitsPerKey sizes the build-side Bloom filter; with the two probes
// below, 8 bits/key lands around a 5% false-positive rate.
const bloomBitsPerKey = 8

// bloomMinBits floors the filter size (power of two, ≥ one word).
const bloomMinBits = 256

// bloomProbeBuildRatio gates the filter: it pays only when many probe
// keys miss, which the planner's cardinalities signal as a probe side
// much larger than the build side.
const bloomProbeBuildRatio = 8

// bloomFilter is a split two-probe Bloom filter over cached 64-bit key
// hashes. Both probes derive from the one hash the table already
// computed — no extra hashing on either side.
type bloomFilter struct {
	words []uint64
	mask  uint64
}

func newBloom(keys int) *bloomFilter {
	n := bloomMinBits
	for n < keys*bloomBitsPerKey {
		n <<= 1
	}
	return &bloomFilter{words: make([]uint64, n/64), mask: uint64(n - 1)}
}

func (f *bloomFilter) bitPositions(h uint64) (uint64, uint64) {
	return h & f.mask, bits.RotateLeft64(h, 21) & f.mask
}

func (f *bloomFilter) add(h uint64) {
	b1, b2 := f.bitPositions(h)
	f.words[b1>>6] |= 1 << (b1 & 63)
	f.words[b2>>6] |= 1 << (b2 & 63)
}

// mayContain is exact on negatives (an added hash always passes) and
// approximate on positives — a false positive only costs the table probe
// the caller was about to do anyway, so filter answers never change join
// results.
func (f *bloomFilter) mayContain(h uint64) bool {
	b1, b2 := f.bitPositions(h)
	return f.words[b1>>6]&(1<<(b1&63)) != 0 && f.words[b2>>6]&(1<<(b2&63)) != 0
}

// buildBloom decides the optional build-side filter for a join: non-nil
// when the estimated probe/build ratio clears bloomProbeBuildRatio
// (probeCard < 0 disables — outer joins emit every probe row anyway, so
// a filter saves nothing there).
func buildBloom(buildCard, probeCard int) *bloomFilter {
	if probeCard >= 0 && probeCard >= bloomProbeBuildRatio*max(buildCard, 1) {
		return newBloom(buildCard)
	}
	return nil
}

// HashStats aggregates hash-table telemetry across one execution:
// every table/index build records its geometry here, every bloom-
// filtered probe its check/pass counts. All counters are atomic — builds
// finish inside forParts fan-outs. A nil *HashStats disables recording.
type HashStats struct {
	builds      atomic.Int64
	entries     atomic.Int64
	capacity    atomic.Int64
	maxProbe    atomic.Int64
	bloomChecks atomic.Int64
	bloomPasses atomic.Int64
}

func (hs *HashStats) recordTable(entries, capacity, maxProbe int) {
	if hs == nil {
		return
	}
	hs.builds.Add(1)
	hs.entries.Add(int64(entries))
	hs.capacity.Add(int64(capacity))
	for {
		cur := hs.maxProbe.Load()
		if int64(maxProbe) <= cur || hs.maxProbe.CompareAndSwap(cur, int64(maxProbe)) {
			return
		}
	}
}

func (hs *HashStats) recordBloom(checks, passes int) {
	if hs == nil || checks == 0 {
		return
	}
	hs.bloomChecks.Add(int64(checks))
	hs.bloomPasses.Add(int64(passes))
}

// Snapshot captures the counters as plain values.
func (hs *HashStats) Snapshot() HashTableStats {
	if hs == nil {
		return HashTableStats{}
	}
	return HashTableStats{
		Builds:      hs.builds.Load(),
		Entries:     hs.entries.Load(),
		Capacity:    hs.capacity.Load(),
		MaxProbe:    hs.maxProbe.Load(),
		BloomChecks: hs.bloomChecks.Load(),
		BloomPasses: hs.bloomPasses.Load(),
	}
}

// HashTableStats is a point-in-time view of HashStats: how many flat
// tables were built, their summed entries and capacities (the quotient
// is the mean load factor), the worst probe sequence any build walked,
// and the Bloom filter's check/pass traffic.
type HashTableStats struct {
	Builds      int64
	Entries     int64
	Capacity    int64
	MaxProbe    int64
	BloomChecks int64
	BloomPasses int64
}

// LoadFactor is the mean occupancy of the built tables (0 when none).
func (s HashTableStats) LoadFactor() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return float64(s.Entries) / float64(s.Capacity)
}

// BloomPassRate is the fraction of bloom-checked probe keys that went on
// to the table (0 when no filter ran); low is good — the complement is
// the fraction of probes the filter skipped.
func (s HashTableStats) BloomPassRate() float64 {
	if s.BloomChecks == 0 {
		return 0
	}
	return float64(s.BloomPasses) / float64(s.BloomChecks)
}
