package algebra

import (
	"encoding/binary"
	"math"
)

// Column-major key encoding for the batch runtime: one batch of rows gets
// its grouping or join keys built column by column — the kind dispatch
// happens once per column per batch instead of once per value, but every
// produced key is byte-for-byte the appendRowKey/appendJoinKey encoding,
// so batch and row operators hash and compare identically.

// keyBatch holds the encoded keys of one batch. All buffers are reused
// across batches (reset re-slices, it never frees), and the per-row key
// buffers are carved out of one shared slab, so preparing a batch costs a
// constant number of allocations, not one per row.
type keyBatch struct {
	keys [][]byte
	// dead marks rows whose join key contains NULL or NaN — they match
	// nothing under strict equality (join encodings only; grouping keys
	// give NULL its own tag and are never dead).
	dead []bool
}

// reset prepares the buffers for a batch of n rows whose keys are
// expected to need about chunk bytes each (fixed-width components; only
// long strings overflow a chunk, and then append reallocates just that
// row's buffer).
func (kb *keyBatch) reset(n, chunk int) {
	if cap(kb.keys) < n {
		nk := make([][]byte, n)
		copy(nk, kb.keys[:cap(kb.keys)])
		kb.keys = nk
	} else {
		kb.keys = kb.keys[:n]
	}
	var slab []byte
	for i := range kb.keys {
		if cap(kb.keys[i]) != 0 {
			kb.keys[i] = kb.keys[i][:0]
			continue
		}
		if len(slab) < chunk {
			slab = make([]byte, (n-i)*chunk)
		}
		kb.keys[i] = slab[:0:chunk]
		slab = slab[chunk:]
	}
	if cap(kb.dead) < n {
		kb.dead = make([]bool, n)
	} else {
		kb.dead = kb.dead[:n]
		clear(kb.dead)
	}
}

// encodeGroup builds the grouping keys of the given physical rows over
// the slot columns — the columnar appendRowKey. Slot -1 reads as a NULL
// column.
func (kb *keyBatch) encodeGroup(t *ColTable, rows []int32, slots []int) {
	kb.reset(len(rows), 10*len(slots))
	for _, s := range slots {
		if s < 0 {
			for k := range rows {
				kb.keys[k] = append(kb.keys[k], keyNull)
			}
			continue
		}
		col := &t.Cols[s]
		switch col.Kind {
		case ColInt:
			for k, i := range rows {
				if col.IsNull(int(i)) {
					kb.keys[k] = append(kb.keys[k], keyNull)
					continue
				}
				kb.keys[k] = append(kb.keys[k], keyInt)
				kb.keys[k] = binary.BigEndian.AppendUint64(kb.keys[k], uint64(col.Ints[i]))
			}
		case ColFloat:
			for k, i := range rows {
				if col.IsNull(int(i)) {
					kb.keys[k] = append(kb.keys[k], keyNull)
					continue
				}
				f := col.Floats[i]
				if math.IsNaN(f) {
					f = math.NaN() // canonicalize payloads, like appendKeyValue
				}
				kb.keys[k] = append(kb.keys[k], keyFloat)
				kb.keys[k] = binary.BigEndian.AppendUint64(kb.keys[k], math.Float64bits(f))
			}
		case ColStr:
			for k, i := range rows {
				if col.IsNull(int(i)) {
					kb.keys[k] = append(kb.keys[k], keyNull)
					continue
				}
				s := col.Strs[i]
				kb.keys[k] = append(kb.keys[k], keyString)
				kb.keys[k] = binary.AppendUvarint(kb.keys[k], uint64(len(s)))
				kb.keys[k] = append(kb.keys[k], s...)
			}
		case ColMixed:
			for k, i := range rows {
				kb.keys[k] = appendKeyValue(kb.keys[k], col.Vals[i])
			}
		}
	}
}

// encodeJoin builds the join keys of the given physical rows over the
// slot columns — the columnar appendJoinKey, with rowHasNullKey folded
// into the dead marks: a NULL or NaN key component kills the row (strict
// equality matches it to nothing). Dead rows carry truncated keys and
// must not be hashed.
func (kb *keyBatch) encodeJoin(t *ColTable, rows []int32, slots []int) {
	kb.reset(len(rows), 10*len(slots))
	for _, s := range slots {
		if s < 0 {
			// Absent attribute: every key component is NULL.
			for k := range rows {
				kb.dead[k] = true
			}
			continue
		}
		col := &t.Cols[s]
		switch col.Kind {
		case ColInt:
			for k, i := range rows {
				if kb.dead[k] {
					continue
				}
				if col.IsNull(int(i)) {
					kb.dead[k] = true
					continue
				}
				kb.keys[k] = append(kb.keys[k], keyInt)
				kb.keys[k] = binary.BigEndian.AppendUint64(kb.keys[k], uint64(col.Ints[i]))
			}
		case ColFloat:
			for k, i := range rows {
				if kb.dead[k] {
					continue
				}
				if col.IsNull(int(i)) {
					kb.dead[k] = true
					continue
				}
				f := col.Floats[i]
				if math.IsNaN(f) {
					kb.dead[k] = true
					continue
				}
				// Integral floats normalize to the integer encoding
				// (join equality is numeric across kinds).
				if n := int64(f); float64(n) == f {
					kb.keys[k] = append(kb.keys[k], keyInt)
					kb.keys[k] = binary.BigEndian.AppendUint64(kb.keys[k], uint64(n))
					continue
				}
				kb.keys[k] = append(kb.keys[k], keyFloat)
				kb.keys[k] = binary.BigEndian.AppendUint64(kb.keys[k], math.Float64bits(f))
			}
		case ColStr:
			for k, i := range rows {
				if kb.dead[k] {
					continue
				}
				if col.IsNull(int(i)) {
					kb.dead[k] = true
					continue
				}
				s := col.Strs[i]
				kb.keys[k] = append(kb.keys[k], keyString)
				kb.keys[k] = binary.AppendUvarint(kb.keys[k], uint64(len(s)))
				kb.keys[k] = append(kb.keys[k], s...)
			}
		case ColMixed:
			for k, i := range rows {
				if kb.dead[k] {
					continue
				}
				v := col.Vals[i]
				if v.IsNull() || (v.Kind == KindFloat && math.IsNaN(v.F)) {
					kb.dead[k] = true
					continue
				}
				if v.Kind == KindFloat {
					if n := int64(v.F); float64(n) == v.F {
						v = Int(n)
					}
				}
				kb.keys[k] = appendKeyValue(kb.keys[k], v)
			}
		}
	}
}
