package algebra

import (
	"fmt"
	"math"
	"testing"

	"eagg/internal/aggfn"
)

// Differential tests of the batch runtime against the row runtime. TPC-H
// generated data is all-Int, so these tests build columns of every
// physical kind — typed int/float/string with NULL bitmaps, mixed-kind
// fallbacks, -0.0, NaN, integral floats — and assert that every batch
// operator reproduces its row counterpart bit for bit, sequentially and
// under the morsel-parallel variants, across batch sizes.

// batchExecs is the (workers, morsel, batch-size) matrix every
// differential test runs. Explicit morsel sizes force the parallel
// machinery onto tiny inputs.
func batchExecs() map[string]*Exec {
	return map[string]*Exec{
		"seq-default": nil,
		"seq-b1":      NewExec(1).WithBatchSize(1),
		"seq-b3":      NewExec(1).WithBatchSize(3),
		"par-b1":      NewExec(8).WithMorselSize(2).WithBatchSize(1),
		"par-b7":      NewExec(8).WithMorselSize(3).WithBatchSize(7),
		"par-b1024":   NewExec(8).WithMorselSize(2).WithBatchSize(1024),
	}
}

// identicalRows fails unless want and got agree as value sequences, bit
// for bit (float payloads compared by Float64bits, so -0.0 ≠ +0.0 and
// NaN payloads must match).
func identicalRows(t *testing.T, label string, want, got *Table) {
	t.Helper()
	wn, gn := want.Schema.Names(), got.Schema.Names()
	if fmt.Sprint(wn) != fmt.Sprint(gn) {
		t.Fatalf("%s: schema %v != %v", label, gn, wn)
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			a, b := want.Rows[i][j], got.Rows[i][j]
			if a.Kind != b.Kind || a.I != b.I || a.S != b.S ||
				math.Float64bits(a.F) != math.Float64bits(b.F) {
				t.Fatalf("%s: row %d col %d: got %v (kind %v, bits %x), want %v (kind %v, bits %x)",
					label, i, j, b, b.Kind, math.Float64bits(b.F), a, a.Kind, math.Float64bits(a.F))
			}
		}
	}
}

// mixedKey produces a key-domain value cycling through every kind the
// join encoding distinguishes: ints, integral floats (normalize to the
// int encoding), fractional floats, NULLs and NaNs (match nothing).
func mixedKey(i int) Value {
	switch i % 7 {
	case 0:
		return Int(int64(i % 5))
	case 1:
		return Float(float64(i % 5)) // integral float — joins with Int
	case 2:
		return Null
	case 3:
		return Float(math.NaN())
	case 4:
		return Float(float64(i%5) + 0.5)
	case 5:
		return Str(fmt.Sprintf("k%d", i%4))
	default:
		return Int(int64(i % 4))
	}
}

// batchTestTables builds a left and right table with columns of every
// physical kind. Key columns come in a typed-int flavor (km), a
// typed-float flavor (kf) and a mixed flavor (kx).
func batchTestTables() (l, r *Table) {
	ls := NewSchema([]string{"lid", "lkm", "lkf", "lkx", "lf", "ls"})
	l = &Table{Schema: ls}
	for i := 0; i < 41; i++ {
		km := Int(int64(i % 6))
		if i%9 == 4 {
			km = Null
		}
		kf := Float(float64(i % 4))
		if i%8 == 5 {
			kf = Float(math.NaN())
		}
		lf := Float(float64(i) * 1.25)
		if i%11 == 3 {
			lf = Float(math.Copysign(0, -1)) // -0.0
		}
		if i%13 == 7 {
			lf = Null
		}
		l.Rows = append(l.Rows, Row{
			Int(int64(i)), km, kf, mixedKey(i), lf, Str(fmt.Sprintf("s%d", i%5)),
		})
	}
	rs := NewSchema([]string{"rid", "rkm", "rkf", "rkx", "rv", "rw", "rs"})
	r = &Table{Schema: rs}
	for i := 0; i < 53; i++ {
		km := Int(int64(i % 7))
		if i%10 == 6 {
			km = Null
		}
		rv := Int(int64(i * 3))
		if i%6 == 2 {
			rv = Null
		}
		r.Rows = append(r.Rows, Row{
			Int(int64(1000 + i)), km, Float(float64(i % 4)), mixedKey(i + 2),
			rv, Float(float64(i) / 8), Str(fmt.Sprintf("r%d", i%6)),
		})
	}
	return l, r
}

func TestBatchJoinsMatchRow(t *testing.T) {
	l, r := batchTestTables()
	keySets := []struct {
		name   string
		lk, rk []int
	}{
		{"int", []int{1}, []int{1}},
		{"float-vs-int", []int{2}, []int{1}}, // integral-float normalization
		{"mixed", []int{3}, []int{3}},
		{"two-col", []int{1, 3}, []int{1, 3}},
	}
	npad := NullRow(r.Schema)
	vpad := NullRow(r.Schema)
	vpad[4] = Int(1) // engine-style default vector into an int column
	vpad[5] = Int(0) // Int default into a float column → mixed demotion
	lpad := NullRow(l.Schema)
	lpad[0] = Int(7)

	for _, ks := range keySets {
		lc, rc := ColTableOf(l), ColTableOf(r)
		for name, e := range batchExecs() {
			prefix := fmt.Sprintf("%s/%s", ks.name, name)
			identicalRows(t, prefix+"/join",
				HashJoin(l, r, ks.lk, ks.rk),
				e.BatchHashJoin(lc, rc, ks.lk, ks.rk).Table())
			identicalRows(t, prefix+"/semi",
				HashSemiJoin(l, r, ks.lk, ks.rk),
				e.BatchHashSemiJoin(lc, rc, ks.lk, ks.rk).Table())
			identicalRows(t, prefix+"/anti",
				HashAntiJoin(l, r, ks.lk, ks.rk),
				e.BatchHashAntiJoin(lc, rc, ks.lk, ks.rk).Table())
			identicalRows(t, prefix+"/leftouter-null",
				HashLeftOuter(l, r, ks.lk, ks.rk, npad),
				e.BatchHashLeftOuter(lc, rc, ks.lk, ks.rk, npad).Table())
			identicalRows(t, prefix+"/leftouter-defaults",
				HashLeftOuter(l, r, ks.lk, ks.rk, vpad),
				e.BatchHashLeftOuter(lc, rc, ks.lk, ks.rk, vpad).Table())
			identicalRows(t, prefix+"/fullouter",
				HashFullOuter(l, r, ks.lk, ks.rk, lpad, vpad),
				e.BatchHashFullOuter(lc, rc, ks.lk, ks.rk, lpad, vpad).Table())
		}
	}
}

// aggColumnsTable builds the aggregation-input table: group columns of
// several kinds, argument columns typed int/float/string plus a
// numeric-mixed column, with NULLs sprinkled through all of them and a
// singleton group whose only float value is -0.0 (pinning addTo's
// first-assignment semantics — a zero-initialized sum would flip it to
// +0.0).
func aggColumnsTable() *Table {
	s := NewSchema([]string{"g1", "g2", "ai", "af", "as", "am", "bi", "wi"})
	tb := &Table{Schema: s}
	for i := 0; i < 67; i++ {
		g1 := Int(int64(i % 5))
		if i%17 == 9 {
			g1 = Null // NULLs form their own group
		}
		ai := Int(int64(i * 2))
		if i%7 == 3 {
			ai = Null
		}
		af := Float(float64(i) * 0.3)
		if i%9 == 1 {
			af = Float(math.NaN())
		}
		if i%13 == 5 {
			af = Null
		}
		as := Str(fmt.Sprintf("v%02d", (i*7)%10))
		if i%15 == 8 {
			as = Null
		}
		var am Value // numeric-mixed: Int / Float / NULL
		switch i % 3 {
		case 0:
			am = Int(int64(i))
		case 1:
			am = Float(float64(i) + 0.5)
		default:
			am = Null
		}
		bi := Int(int64(i%4 + 1))
		if i%19 == 11 {
			bi = Null
		}
		tb.Rows = append(tb.Rows, Row{
			g1, Str(fmt.Sprintf("g%d", i%3)), ai, af, as, am, bi, Int(int64(i%3 + 1)),
		})
	}
	// Singleton group: sum over exactly one -0.0.
	tb.Rows = append(tb.Rows, Row{
		Int(999), Str("gz"), Null, Float(math.Copysign(0, -1)), Null, Null, Int(1), Int(1),
	})
	return tb
}

func aggTestVector() aggfn.Vector {
	return aggfn.Vector{
		{Out: "cstar", Kind: aggfn.CountStar},
		{Out: "cnt", Kind: aggfn.Count, Arg: "ai"},
		{Out: "si", Kind: aggfn.Sum, Arg: "ai"},
		{Out: "sf", Kind: aggfn.Sum, Arg: "af"},
		{Out: "sm", Kind: aggfn.Sum, Arg: "am"},
		{Out: "sti", Kind: aggfn.SumTimes, Arg: "ai", Arg2: "bi"},
		{Out: "stf", Kind: aggfn.SumTimes, Arg: "af", Arg2: "bi"},
		{Out: "sin", Kind: aggfn.SumIfNotNull, Arg: "af", Arg2: "bi"},
		{Out: "sinm", Kind: aggfn.SumIfNotNull, Arg: "ai", Arg2: "am"},
		{Out: "mni", Kind: aggfn.Min, Arg: "ai"},
		{Out: "mxi", Kind: aggfn.Max, Arg: "ai"},
		{Out: "mnf", Kind: aggfn.Min, Arg: "af"},
		{Out: "mxf", Kind: aggfn.Max, Arg: "af"},
		{Out: "mns", Kind: aggfn.Min, Arg: "as"},
		{Out: "mxs", Kind: aggfn.Max, Arg: "as"},
		{Out: "avi", Kind: aggfn.Avg, Arg: "ai"},
		{Out: "avf", Kind: aggfn.Avg, Arg: "af"},
		{Out: "avm", Kind: aggfn.AvgMerge, Arg: "ai", Arg2: "bi", Weight: "wi"},
		{Out: "avw", Kind: aggfn.AvgWeighted, Arg: "af", Arg2: "bi"},
		{Out: "sd", Kind: aggfn.SumDistinct, Arg: "ai"},
		{Out: "cd", Kind: aggfn.CountDistinct, Arg: "as"},
		{Out: "ad", Kind: aggfn.AvgDistinct, Arg: "af"},
		{Out: "gone", Kind: aggfn.Sum, Arg: "absent"},
	}
}

func TestBatchGroupMatchesRow(t *testing.T) {
	tb := aggColumnsTable()
	f := aggTestVector()
	for _, groupBy := range [][]string{
		{"g1"}, {"g2"}, {"g1", "g2"}, {"af"}, {"absent"}, {},
	} {
		want := HashGroup(tb, groupBy, f)
		tc := ColTableOf(tb)
		for name, e := range batchExecs() {
			got := e.BatchHashGroup(tc, groupBy, f).Table()
			identicalRows(t, fmt.Sprintf("group%v/%s", groupBy, name), want, got)
		}
	}
}

func TestBatchGroupJoinMatchesRow(t *testing.T) {
	l, r := batchTestTables()
	f := aggfn.Vector{
		{Out: "n", Kind: aggfn.CountStar},
		{Out: "sv", Kind: aggfn.Sum, Arg: "rv"},
		{Out: "sw", Kind: aggfn.Sum, Arg: "rw"},
		{Out: "mw", Kind: aggfn.Max, Arg: "rw"},
		{Out: "cs", Kind: aggfn.CountDistinct, Arg: "rs"},
	}
	want := HashGroupJoin(l, r, []int{1}, []int{1}, f)
	lc, rc := ColTableOf(l), ColTableOf(r)
	for name, e := range batchExecs() {
		got := e.BatchHashGroupJoin(lc, rc, []int{1}, []int{1}, f).Table()
		identicalRows(t, "groupjoin/"+name, want, got)
	}
}

// TestBatchSelectionChaining drives Sel-view outputs through downstream
// operators: semijoin → group, antijoin → join, a semijoin output as a
// build side, and groupjoin over a selected left input — the
// selection-vector composition rules end to end.
func TestBatchSelectionChaining(t *testing.T) {
	l, r := batchTestTables()
	lk, rk := []int{1}, []int{1}
	f := aggfn.Vector{
		{Out: "n", Kind: aggfn.CountStar},
		{Out: "sf", Kind: aggfn.Sum, Arg: "lf"},
		{Out: "mx", Kind: aggfn.Max, Arg: "lid"},
	}
	wantSemi := HashSemiJoin(l, r, lk, rk)
	wantGroup := HashGroup(wantSemi, []string{"ls"}, f)
	wantAnti := HashAntiJoin(l, r, lk, rk)
	wantJoin := HashJoin(wantAnti, r, lk, rk) // empty by construction, still must agree
	wantBuild := HashJoin(r, wantSemi, rk, lk)
	wantGJ := HashGroupJoin(r, wantSemi, rk, lk, aggfn.Vector{
		{Out: "n", Kind: aggfn.CountStar},
		{Out: "s", Kind: aggfn.Sum, Arg: "lf"},
	})

	lc, rc := ColTableOf(l), ColTableOf(r)
	for name, e := range batchExecs() {
		semi := e.BatchHashSemiJoin(lc, rc, lk, rk)
		identicalRows(t, "chain-semi/"+name, wantSemi, semi.Table())
		identicalRows(t, "chain-semi-group/"+name, wantGroup,
			e.BatchHashGroup(semi, []string{"ls"}, f).Table())
		anti := e.BatchHashAntiJoin(lc, rc, lk, rk)
		identicalRows(t, "chain-anti-join/"+name, wantJoin,
			e.BatchHashJoin(anti, rc, lk, rk).Table())
		identicalRows(t, "chain-build-sel/"+name, wantBuild,
			e.BatchHashJoin(rc, semi, rk, lk).Table())
		identicalRows(t, "chain-gj-sel/"+name, wantGJ,
			e.BatchHashGroupJoin(rc, semi, rk, lk, aggfn.Vector{
				{Out: "n", Kind: aggfn.CountStar},
				{Out: "s", Kind: aggfn.Sum, Arg: "lf"},
			}).Table())
	}
}

// TestBatchSemiJoinZeroCopy pins the zero-copy contract: a semijoin
// output shares its column storage with the input.
func TestBatchSemiJoinZeroCopy(t *testing.T) {
	l, r := batchTestTables()
	lc, rc := ColTableOf(l), ColTableOf(r)
	got := (*Exec)(nil).BatchHashSemiJoin(lc, rc, []int{1}, []int{1})
	if got.Sel == nil {
		t.Fatalf("semijoin output has no selection vector")
	}
	if len(got.Cols) == 0 || len(got.Cols[0].Ints) == 0 || &got.Cols[0].Ints[0] != &lc.Cols[0].Ints[0] {
		t.Fatalf("semijoin output does not share input column storage")
	}
	for i := 1; i < len(got.Sel); i++ {
		if got.Sel[i] <= got.Sel[i-1] {
			t.Fatalf("selection vector not monotone at %d: %v", i, got.Sel[:i+1])
		}
	}
}

func TestBatchExtendProductMatchesRow(t *testing.T) {
	s := NewSchema([]string{"a", "w1", "w2", "wf"})
	tb := &Table{Schema: s}
	for i := 0; i < 33; i++ {
		w2 := Int(int64(i%5 + 1))
		if i%13 == 4 {
			w2 = Null
		}
		tb.Rows = append(tb.Rows, Row{
			Int(int64(i)), Int(int64(i%3 + 1)), w2, Float(float64(i) * 0.5),
		})
	}
	for _, attrs := range [][]string{{"w1", "w2"}, {"w1", "wf"}} {
		slots := s.Slots(attrs)
		want := ExtendTable(tb, "prod", func(row Row) Value {
			v := Int(1)
			for _, sl := range slots {
				v = Mul(v, row[sl])
			}
			return v
		})
		tc := ColTableOf(tb)
		for name, e := range batchExecs() {
			got := e.BatchExtendProduct(tc, "prod", slots).Table()
			identicalRows(t, fmt.Sprintf("product%v/%s", attrs, name), want, got)
		}
	}
}

// TestBuildSidePostings pins that the scratch-buffer-reusing key encoding
// leaves posting lists exactly as a fresh-buffer-per-row build produces
// them (satellite of the buffer-reuse change): same keys, same row
// indices, same order — including string keys sharing prefixes, where a
// buffer aliasing bug would show first.
func TestBuildSidePostings(t *testing.T) {
	s := NewSchema([]string{"k", "v"})
	tb := &Table{Schema: s}
	keys := []Value{
		Str("aa"), Str("aab"), Str("aa"), Str("a"), Null, Str("aab"),
		Int(7), Float(7), Int(7), Float(7.5), Float(math.NaN()), Str("aa"),
	}
	for i, k := range keys {
		tb.Rows = append(tb.Rows, Row{k, Int(int64(i))})
	}
	rk := []int{0}
	got := buildSide(tb, rk)
	naive := map[string][]int32{}
	for i, row := range tb.Rows {
		if rowHasNullKey(row, rk) {
			continue
		}
		k := string(appendJoinKey(nil, row, rk))
		naive[k] = append(naive[k], int32(i))
	}
	if len(got) != len(naive) {
		t.Fatalf("posting table has %d keys, want %d", len(got), len(naive))
	}
	for k, want := range naive {
		if fmt.Sprint(got[k]) != fmt.Sprint(want) {
			t.Fatalf("postings for %q: got %v, want %v", k, got[k], want)
		}
	}
	// Int(7) and Float(7) must share a posting list (join normalization),
	// and the NaN/NULL rows must be absent.
	k7 := string(appendJoinKey(nil, Row{Int(7)}, []int{0}))
	if fmt.Sprint(naive[k7]) != "[6 7 8]" {
		t.Fatalf("normalized int/float postings = %v, want [6 7 8]", naive[k7])
	}
}

// TestDistinctScratchReuse pins the distinct accumulators against the
// shared scratch buffer: values with shared encoding prefixes must stay
// distinct, and results must match a literal enumeration.
func TestDistinctScratchReuse(t *testing.T) {
	s := NewSchema([]string{"g", "v", "n"})
	tb := &Table{Schema: s}
	add := func(g string, v Value, n int64) {
		tb.Rows = append(tb.Rows, Row{Str(g), v, Int(n)})
	}
	add("a", Str("xx"), 5)
	add("a", Str("xxy"), 5)
	add("a", Str("xx"), 7)
	add("a", Null, 9)
	add("b", Str("x"), 1)
	add("b", Str("x"), 2)
	f := aggfn.Vector{
		{Out: "cd", Kind: aggfn.CountDistinct, Arg: "v"},
		{Out: "sd", Kind: aggfn.SumDistinct, Arg: "n"},
	}
	got := HashGroup(tb, []string{"g"}, f)
	want := [][2]int64{{2, 21}, {1, 3}} // a: {xx,xxy}, 5+7+9; b: {x}, 1+2
	if len(got.Rows) != 2 {
		t.Fatalf("got %d groups, want 2", len(got.Rows))
	}
	for i, w := range want {
		if got.Rows[i][1].I != w[0] || got.Rows[i][2].I != w[1] {
			t.Fatalf("group %d: got (%v, %v), want %v", i, got.Rows[i][1], got.Rows[i][2], w)
		}
	}
	// And the batch runtime agrees.
	for name, e := range batchExecs() {
		identicalRows(t, "distinct/"+name, got, e.BatchHashGroup(ColTableOf(tb), []string{"g"}, f).Table())
	}
}

// TestColTableRoundTrip pins Table → ColTable → Table as the identity on
// every value, including NaN payloads and -0.0.
func TestColTableRoundTrip(t *testing.T) {
	l, r := batchTestTables()
	identicalRows(t, "roundtrip-l", l, ColTableOf(l).Table())
	identicalRows(t, "roundtrip-r", r, ColTableOf(r).Table())
	agg := aggColumnsTable()
	identicalRows(t, "roundtrip-agg", agg, ColTableOf(agg).Table())
	if c := agg.Columnar(); c != agg.Columnar() {
		t.Fatalf("Columnar cache not stable")
	}
}
