package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"eagg/internal/aggfn"
)

// randomKeyedTable builds a table with a key column drawn from a small
// domain (plus NULLs and the odd float twin), a payload column, and —
// when sorted is set — rows ordered by the key so the eliminated-sort
// paths are exercised.
func randomKeyedTable(rng *rand.Rand, prefix string, rows int, sorted bool, withNulls bool) *Table {
	t := &Table{Schema: NewSchema([]string{prefix + ".k", prefix + ".v"})}
	keys := make([]int64, rows)
	for i := range keys {
		keys[i] = int64(rng.Intn(8))
	}
	if sorted {
		for i := 1; i < rows; i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
	}
	for i := 0; i < rows; i++ {
		k := Value(Int(keys[i]))
		if withNulls && !sorted && rng.Intn(6) == 0 {
			k = Null
		} else if !sorted && rng.Intn(7) == 0 {
			k = Float(float64(keys[i])) // joins must match across kinds
		}
		t.Rows = append(t.Rows, Row{k, Int(int64(rng.Intn(100)))})
	}
	return t
}

func identical(t *testing.T, label string, want, got *Table) {
	t.Helper()
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: %d rows vs %d rows", label, len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		if len(want.Rows[i]) != len(got.Rows[i]) {
			t.Fatalf("%s: row %d width differs", label, i)
		}
		for j := range want.Rows[i] {
			if want.Rows[i][j] != got.Rows[i][j] {
				t.Fatalf("%s: row %d slot %d: %v vs %v", label, i, j, want.Rows[i][j], got.Rows[i][j])
			}
		}
	}
}

// TestMergeJoinsMatchHash pins the central contract of the sort-based
// layer: every merge operator emits exactly the hash operator's output
// sequence — for sorted inputs with the sort eliminated, unsorted inputs
// with the sort performed, and any worker count.
func TestMergeJoinsMatchHash(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lk, rk := []int{0}, []int{0}
	for trial := 0; trial < 60; trial++ {
		lSorted, rSorted := trial%2 == 0, trial%3 == 0
		l := randomKeyedTable(rng, "l", 1+rng.Intn(40), lSorted, true)
		r := randomKeyedTable(rng, "r", 1+rng.Intn(40), rSorted, true)
		pad := NullRow(r.Schema)
		for _, workers := range []int{1, 8} {
			ex := NewExec(workers).WithMorselSize(3)
			label := fmt.Sprintf("trial=%d workers=%d lSorted=%v rSorted=%v", trial, workers, lSorted, rSorted)

			got, err := ex.MergeJoin(l, r, lk, rk, !lSorted, !rSorted)
			if err != nil {
				t.Fatalf("%s join: %v", label, err)
			}
			identical(t, label+" join", HashJoin(l, r, lk, rk), got)

			got, err = ex.MergeSemiJoin(l, r, lk, rk, !lSorted, !rSorted)
			if err != nil {
				t.Fatalf("%s semi: %v", label, err)
			}
			identical(t, label+" semi", HashSemiJoin(l, r, lk, rk), got)

			got, err = ex.MergeAntiJoin(l, r, lk, rk, !lSorted, !rSorted)
			if err != nil {
				t.Fatalf("%s anti: %v", label, err)
			}
			identical(t, label+" anti", HashAntiJoin(l, r, lk, rk), got)

			got, err = ex.MergeLeftOuter(l, r, lk, rk, !lSorted, !rSorted, pad)
			if err != nil {
				t.Fatalf("%s leftouter: %v", label, err)
			}
			identical(t, label+" leftouter", HashLeftOuter(l, r, lk, rk, pad), got)
		}
	}
}

// TestSortGroupMatchesHash pins the same contract for sort-group
// aggregation, including order-sensitive float sums: group boundaries by
// run (eliminated) or by sort (performed), output always equals
// HashGroup bit for bit.
func TestSortGroupMatchesHash(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := aggfn.Vector{
		{Out: "cnt", Kind: aggfn.CountStar},
		{Out: "s", Kind: aggfn.Sum, Arg: "t.v"},
		{Out: "m", Kind: aggfn.Min, Arg: "t.v"},
	}
	for trial := 0; trial < 60; trial++ {
		sorted := trial%2 == 0
		in := randomKeyedTable(rng, "t", 1+rng.Intn(60), sorted, true)
		// Float payloads make summation order observable.
		for i, row := range in.Rows {
			if i%3 == 0 {
				row[1] = Float(float64(rng.Intn(1000)) / 7)
			}
		}
		want := HashGroup(in, []string{"t.k"}, f)
		for _, workers := range []int{1, 8} {
			ex := NewExec(workers).WithMorselSize(4)
			var verify []int
			if sorted {
				verify = []int{0} // eliminated path: verify the run column
			}
			got, err := ex.SortGroup(in, []string{"t.k"}, f, !sorted, verify)
			if err != nil {
				t.Fatalf("trial=%d workers=%d sorted=%v: %v", trial, workers, sorted, err)
			}
			identical(t, fmt.Sprintf("trial=%d workers=%d sorted=%v", trial, workers, sorted), want, got)
		}
	}
}

// TestMergeJoinVerifiesOrder pins the safety net: claiming an eliminated
// sort on an unsorted input is an execution error, not a wrong result.
func TestMergeJoinVerifiesOrder(t *testing.T) {
	l := &Table{Schema: NewSchema([]string{"l.k"}), Rows: []Row{{Int(2)}, {Int(1)}}}
	r := &Table{Schema: NewSchema([]string{"r.k"}), Rows: []Row{{Int(1)}}}
	if _, err := NewExec(1).MergeJoin(l, r, []int{0}, []int{0}, false, true); err == nil {
		t.Fatal("merge join accepted an unsorted input declared sorted")
	}
	// NULL keys are filtered before the check, so a NULL between ordered
	// keys is fine.
	l2 := &Table{Schema: NewSchema([]string{"l.k"}), Rows: []Row{{Int(1)}, {Null}, {Int(2)}}}
	if _, err := NewExec(1).MergeJoin(l2, r, []int{0}, []int{0}, false, true); err != nil {
		t.Fatalf("NULL key between ordered keys rejected: %v", err)
	}
}

// TestSortGroupKindSensitive pins that the sort comparator refines
// numeric equality by kind: Int(2) and Float(2.0) stay separate groups,
// exactly like the hash layer's kind-sensitive grouping keys.
func TestSortGroupKindSensitive(t *testing.T) {
	in := &Table{Schema: NewSchema([]string{"t.k"}), Rows: []Row{
		{Float(2)}, {Int(2)}, {Null}, {Int(2)}, {Null}, {Float(2)},
	}}
	f := aggfn.Vector{{Out: "cnt", Kind: aggfn.CountStar}}
	want := HashGroup(in, []string{"t.k"}, f)
	got, err := NewExec(1).SortGroup(in, []string{"t.k"}, f, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	identical(t, "kind-sensitive groups", want, got)
	if len(got.Rows) != 3 {
		t.Fatalf("want 3 groups (Float 2, Int 2, NULL), got %d", len(got.Rows))
	}
}

// TestSortGroupVerifiesOrder pins the streaming aggregation's safety
// net: an eliminated sort whose covering order prefix the data violates
// is an execution error, never a silently duplicated group.
func TestSortGroupVerifiesOrder(t *testing.T) {
	in := &Table{Schema: NewSchema([]string{"t.k"}), Rows: []Row{{Int(1)}, {Int(2)}, {Int(1)}}}
	f := aggfn.Vector{{Out: "cnt", Kind: aggfn.CountStar}}
	for _, workers := range []int{1, 8} {
		ex := NewExec(workers).WithMorselSize(1)
		if _, err := ex.SortGroup(in, []string{"t.k"}, f, false, []int{0}); err == nil {
			t.Fatalf("workers=%d: streaming aggregation accepted an unsorted run column", workers)
		}
	}
	// A genuinely sorted column (NULLs first) streams fine.
	ok := &Table{Schema: NewSchema([]string{"t.k"}), Rows: []Row{{Null}, {Int(1)}, {Int(1)}, {Int(2)}}}
	got, err := NewExec(1).SortGroup(ok, []string{"t.k"}, f, false, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	identical(t, "sorted stream", HashGroup(ok, []string{"t.k"}, f), got)
}
