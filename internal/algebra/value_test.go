package algebra

import "testing"

func TestValueBasics(t *testing.T) {
	if !Null.IsNull() || Int(3).IsNull() {
		t.Error("IsNull broken")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value must be NULL")
	}
	if Int(3).String() != "3" || Null.String() != "-" || Str("x").String() != "x" {
		t.Error("String rendering broken")
	}
}

func TestEqStrict(t *testing.T) {
	if EqStrict(Null, Null) {
		t.Error("NULL = NULL must be false under strict equality")
	}
	if EqStrict(Int(1), Null) || EqStrict(Null, Int(1)) {
		t.Error("NULL never matches under strict equality")
	}
	if !EqStrict(Int(2), Int(2)) || EqStrict(Int(2), Int(3)) {
		t.Error("int equality broken")
	}
	if !EqStrict(Int(2), Float(2.0)) {
		t.Error("cross-type numeric equality broken")
	}
	if !EqStrict(Str("a"), Str("a")) || EqStrict(Str("a"), Str("b")) {
		t.Error("string equality broken")
	}
}

func TestEqGrouping(t *testing.T) {
	if !EqGrouping(Null, Null) {
		t.Error("grouping equality must treat two NULLs as equal")
	}
	if EqGrouping(Null, Int(0)) {
		t.Error("NULL must not group with 0")
	}
	if !EqGrouping(Int(5), Int(5)) {
		t.Error("value equality broken")
	}
}

func TestCompareStrict(t *testing.T) {
	if _, ok := CompareStrict(Null, Int(1)); ok {
		t.Error("comparison with NULL must be unknown")
	}
	if c, ok := CompareStrict(Int(1), Int(2)); !ok || c != -1 {
		t.Error("int compare broken")
	}
	if c, ok := CompareStrict(Float(2.5), Int(2)); !ok || c != 1 {
		t.Error("mixed compare broken")
	}
	if c, ok := CompareStrict(Str("a"), Str("b")); !ok || c != -1 {
		t.Error("string compare broken")
	}
}

func TestArithmetic(t *testing.T) {
	if v := Add(Int(2), Int(3)); v.Kind != KindInt || v.I != 5 {
		t.Errorf("Add = %v", v)
	}
	if v := Add(Int(2), Float(0.5)); v.Kind != KindFloat || v.F != 2.5 {
		t.Errorf("promoted Add = %v", v)
	}
	if !Add(Null, Int(1)).IsNull() || !Mul(Int(1), Null).IsNull() {
		t.Error("NULL propagation broken")
	}
	if v := Mul(Int(3), Int(4)); v.I != 12 {
		t.Errorf("Mul = %v", v)
	}
	if v := Div(Int(7), Int(2)); v.Kind != KindFloat || v.F != 3.5 {
		t.Errorf("Div = %v", v)
	}
	if !Div(Int(1), Int(0)).IsNull() {
		t.Error("division by zero must be NULL")
	}
}
