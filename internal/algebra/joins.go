package algebra

// Pred is a binary join predicate p(r, s).
type Pred func(l, r Tuple) bool

// EqAttr returns the equality join predicate l.la = r.ra with SQL
// semantics: NULL matches nothing.
func EqAttr(la, ra string) Pred {
	return func(l, r Tuple) bool {
		return EqStrict(l.Get(la), r.Get(ra))
	}
}

// AndPred conjoins predicates.
func AndPred(ps ...Pred) Pred {
	return func(l, r Tuple) bool {
		for _, p := range ps {
			if !p(l, r) {
				return false
			}
		}
		return true
	}
}

// TruePred accepts everything (cross product as a join).
func TruePred(Tuple, Tuple) bool { return true }

// Defaults assigns constant values to a subset of the NULL-padded side's
// attributes, realizing the paper's generalized outerjoins (Eqvs. 7/8).
// A nil Defaults means plain NULL padding.
type Defaults map[string]Value

// pad builds the padding tuple ⊥_{A\A(D)} ◦ [D] for the given schema.
func (d Defaults) pad(attrs []string) Tuple {
	t := NullTuple(attrs)
	for k, v := range d {
		t[k] = v
	}
	return t
}

// Cross returns e1 A e2, the cross product.
func Cross(e1, e2 *Rel) *Rel {
	return Join(e1, e2, TruePred)
}

// Join returns the inner join e1 B_p e2.
func Join(e1, e2 *Rel, p Pred) *Rel {
	out := &Rel{Attrs: schemaUnion(e1.Attrs, e2.Attrs)}
	for _, r := range e1.Tuples {
		for _, s := range e2.Tuples {
			if p(r, s) {
				out.Tuples = append(out.Tuples, r.Concat(s))
			}
		}
	}
	return out
}

// SemiJoin returns the left semijoin e1 N_p e2.
func SemiJoin(e1, e2 *Rel, p Pred) *Rel {
	out := &Rel{Attrs: e1.Attrs}
	for _, r := range e1.Tuples {
		for _, s := range e2.Tuples {
			if p(r, s) {
				out.Tuples = append(out.Tuples, r)
				break
			}
		}
	}
	return out
}

// AntiJoin returns the left antijoin e1 T_p e2.
func AntiJoin(e1, e2 *Rel, p Pred) *Rel {
	out := &Rel{Attrs: e1.Attrs}
	for _, r := range e1.Tuples {
		matched := false
		for _, s := range e2.Tuples {
			if p(r, s) {
				matched = true
				break
			}
		}
		if !matched {
			out.Tuples = append(out.Tuples, r)
		}
	}
	return out
}

// LeftOuter returns the left outerjoin with defaults e1 E^{D2}_p e2
// (Eqv. 7). Pass nil defaults for the plain left outerjoin (Eqv. 5).
func LeftOuter(e1, e2 *Rel, p Pred, d2 Defaults) *Rel {
	out := &Rel{Attrs: schemaUnion(e1.Attrs, e2.Attrs)}
	pad := d2.pad(e2.Attrs)
	for _, r := range e1.Tuples {
		matched := false
		for _, s := range e2.Tuples {
			if p(r, s) {
				matched = true
				out.Tuples = append(out.Tuples, r.Concat(s))
			}
		}
		if !matched {
			out.Tuples = append(out.Tuples, r.Concat(pad))
		}
	}
	return out
}

// FullOuter returns the full outerjoin with defaults e1 K^{D1;D2}_p e2
// (Eqv. 8). Pass nil for plain NULL padding on either side (Eqv. 6).
func FullOuter(e1, e2 *Rel, p Pred, d1, d2 Defaults) *Rel {
	out := &Rel{Attrs: schemaUnion(e1.Attrs, e2.Attrs)}
	pad1 := d1.pad(e1.Attrs)
	pad2 := d2.pad(e2.Attrs)
	matchedRight := make([]bool, len(e2.Tuples))
	for _, r := range e1.Tuples {
		matched := false
		for si, s := range e2.Tuples {
			if p(r, s) {
				matched = true
				matchedRight[si] = true
				out.Tuples = append(out.Tuples, r.Concat(s))
			}
		}
		if !matched {
			out.Tuples = append(out.Tuples, r.Concat(pad2))
		}
	}
	for si, s := range e2.Tuples {
		if !matchedRight[si] {
			out.Tuples = append(out.Tuples, pad1.Concat(s))
		}
	}
	return out
}
