package algebra

import (
	"testing"

	"eagg/internal/aggfn"
)

func TestEvalAggBasics(t *testing.T) {
	r := NewRel([]string{"a"}, []any{1}, []any{2}, []any{nil}, []any{2})
	g := r.Tuples
	cases := []struct {
		agg  aggfn.Agg
		want Value
	}{
		{aggfn.Agg{Kind: aggfn.CountStar}, Int(4)},
		{aggfn.Agg{Kind: aggfn.Count, Arg: "a"}, Int(3)},
		{aggfn.Agg{Kind: aggfn.Sum, Arg: "a"}, Int(5)},
		{aggfn.Agg{Kind: aggfn.Min, Arg: "a"}, Int(1)},
		{aggfn.Agg{Kind: aggfn.Max, Arg: "a"}, Int(2)},
		{aggfn.Agg{Kind: aggfn.SumDistinct, Arg: "a"}, Int(3)},
		{aggfn.Agg{Kind: aggfn.CountDistinct, Arg: "a"}, Int(2)},
		{aggfn.Agg{Kind: aggfn.AvgDistinct, Arg: "a"}, Float(1.5)},
	}
	for _, c := range cases {
		got := EvalAgg(c.agg, g)
		if got != c.want {
			t.Errorf("%v = %v, want %v", c.agg, got, c.want)
		}
	}
	if got := EvalAgg(aggfn.Agg{Kind: aggfn.Avg, Arg: "a"}, g); got.F != 5.0/3.0 {
		t.Errorf("avg = %v", got)
	}
}

func TestEvalAggEmptyAndAllNull(t *testing.T) {
	empty := []Tuple{}
	if !EvalAgg(aggfn.Agg{Kind: aggfn.Sum, Arg: "a"}, empty).IsNull() {
		t.Error("sum(∅) must be NULL")
	}
	if got := EvalAgg(aggfn.Agg{Kind: aggfn.CountStar}, empty); got.I != 0 {
		t.Error("count(*)(∅) must be 0")
	}
	allNull := []Tuple{{"a": Null}, {"a": Null}}
	if !EvalAgg(aggfn.Agg{Kind: aggfn.Sum, Arg: "a"}, allNull).IsNull() {
		t.Error("sum of all-NULL must be NULL")
	}
	if got := EvalAgg(aggfn.Agg{Kind: aggfn.Count, Arg: "a"}, allNull); got.I != 0 {
		t.Error("count(a) of all-NULL must be 0")
	}
	if got := EvalAgg(aggfn.Agg{Kind: aggfn.CountStar}, []Tuple{NullTuple([]string{"a"})}); got.I != 1 {
		t.Error("count(*)({⊥}) must be 1, as Sec. 3.1.2 notes")
	}
}

func TestEvalAggDerivedKinds(t *testing.T) {
	// Tuples carrying a value a and a replication count c.
	g := []Tuple{
		{"a": Int(2), "c": Int(3)},
		{"a": Int(5), "c": Int(1)},
		{"a": Null, "c": Int(4)},
	}
	// sum(a*c) = 2*3 + 5*1 = 11
	if got := EvalAgg(aggfn.Agg{Kind: aggfn.SumTimes, Arg: "a", Arg2: "c"}, g); got.I != 11 {
		t.Errorf("SumTimes = %v", got)
	}
	// sum(a isnull?0:c) = 3 + 1 + 0 = 4  (count(a) over the expansion)
	if got := EvalAgg(aggfn.Agg{Kind: aggfn.SumIfNotNull, Arg: "a", Arg2: "c"}, g); got.I != 4 {
		t.Errorf("SumIfNotNull = %v", got)
	}
	// avg weighted: 11/4
	if got := EvalAgg(aggfn.Agg{Kind: aggfn.AvgWeighted, Arg: "a", Arg2: "c"}, g); got.F != 11.0/4.0 {
		t.Errorf("AvgWeighted = %v", got)
	}
	// AvgMerge over partials s, n.
	m := []Tuple{
		{"s": Int(10), "n": Int(2)},
		{"s": Int(2), "n": Int(2)},
	}
	if got := EvalAgg(aggfn.Agg{Kind: aggfn.AvgMerge, Arg: "s", Arg2: "n"}, m); got.F != 3 {
		t.Errorf("AvgMerge = %v", got)
	}
	// Weighted AvgMerge: weight w doubles the first partial's share.
	mw := []Tuple{
		{"s": Int(10), "n": Int(2), "w": Int(2)},
		{"s": Int(2), "n": Int(2), "w": Int(1)},
	}
	if got := EvalAgg(aggfn.Agg{Kind: aggfn.AvgMerge, Arg: "s", Arg2: "n", Weight: "w"}, mw); got.F != 22.0/6.0 {
		t.Errorf("weighted AvgMerge = %v", got)
	}
}

func TestGroup(t *testing.T) {
	r := NewRel([]string{"g", "a"},
		[]any{1, 10},
		[]any{1, 20},
		[]any{2, 5},
		[]any{nil, 7},
		[]any{nil, 8},
	)
	f := aggfn.Vector{
		{Out: "n", Kind: aggfn.CountStar},
		{Out: "s", Kind: aggfn.Sum, Arg: "a"},
	}
	got := Group(r, []string{"g"}, f)
	want := NewRel([]string{"g", "n", "s"},
		[]any{1, 2, 30},
		[]any{2, 1, 5},
		[]any{nil, 2, 15},
	)
	if !EqualBags(got, want, want.Attrs) {
		t.Errorf("group:\n%v\nwant:\n%v", got, want)
	}
}

func TestGroupEmptyInput(t *testing.T) {
	r := &Rel{Attrs: []string{"g", "a"}}
	got := Group(r, []string{"g"}, aggfn.Vector{{Out: "n", Kind: aggfn.CountStar}})
	if got.Card() != 0 {
		t.Error("grouping an empty relation must be empty")
	}
}

func TestGroupNoGroupingAttrs(t *testing.T) {
	// Γ over ∅ grouping attributes yields a single group when input is
	// non-empty (matching the operator definition via Π^D_∅ = {()}).
	r := NewRel([]string{"a"}, []any{1}, []any{2})
	got := Group(r, nil, aggfn.Vector{{Out: "s", Kind: aggfn.Sum, Arg: "a"}})
	if got.Card() != 1 || got.Tuples[0].Get("s").I != 3 {
		t.Errorf("Γ_∅ = %v", got)
	}
}

func TestGroupTheta(t *testing.T) {
	r := NewRel([]string{"g", "a"},
		[]any{1, 10},
		[]any{2, 20},
		[]any{3, 30},
	)
	// Γ≤: for representative g=y, group is all z with z.g ≤ y.g, so the
	// sums are prefix sums 10, 30, 60.
	got := GroupTheta(r, []string{"g"}, CmpLe, aggfn.Vector{{Out: "s", Kind: aggfn.Sum, Arg: "a"}})
	want := NewRel([]string{"g", "s"},
		[]any{1, 10},
		[]any{2, 30},
		[]any{3, 60},
	)
	if !EqualBags(got, want, want.Attrs) {
		t.Errorf("Γ≤:\n%v\nwant:\n%v", got, want)
	}
}

func TestCmpHolds(t *testing.T) {
	if !CmpEq.Holds(Null, Null) {
		t.Error("grouping = must hold for NULL,NULL")
	}
	if CmpLt.Holds(Null, Int(1)) || CmpNe.Holds(Null, Int(1)) {
		t.Error("ordering comparisons with NULL must be false")
	}
	if !CmpLt.Holds(Int(1), Int(2)) || !CmpGe.Holds(Int(2), Int(2)) {
		t.Error("Cmp broken")
	}
	if !CmpNe.Holds(Int(1), Int(2)) || CmpNe.Holds(Int(2), Int(2)) {
		t.Error("CmpNe broken")
	}
}

func TestMapAggs(t *testing.T) {
	r := NewRel([]string{"a"}, []any{5}, []any{nil})
	f := aggfn.Vector{
		{Out: "k", Kind: aggfn.CountStar},
		{Out: "s", Kind: aggfn.Sum, Arg: "a"},
		{Out: "c", Kind: aggfn.Count, Arg: "a"},
	}
	got := MapAggs(r, f)
	if got.Tuples[0].Get("k").I != 1 || got.Tuples[0].Get("s").I != 5 || got.Tuples[0].Get("c").I != 1 {
		t.Errorf("MapAggs row 0: %v", got.Tuples[0])
	}
	if got.Tuples[1].Get("k").I != 1 || !got.Tuples[1].Get("s").IsNull() || got.Tuples[1].Get("c").I != 0 {
		t.Errorf("MapAggs row 1: %v", got.Tuples[1])
	}
}

func TestSelectProjectDistinct(t *testing.T) {
	r := NewRel([]string{"a", "b"},
		[]any{1, "x"},
		[]any{1, "y"},
		[]any{2, "x"},
	)
	s := Select(r, func(t Tuple) bool { return t.Get("a").I == 1 })
	if s.Card() != 2 {
		t.Errorf("select card = %d", s.Card())
	}
	p := Project(r, []string{"a"})
	if p.Card() != 3 || len(p.Attrs) != 1 {
		t.Errorf("project = %v", p)
	}
	d := DistinctProject(r, []string{"a"})
	if d.Card() != 2 {
		t.Errorf("distinct project card = %d", d.Card())
	}
}

func TestMap(t *testing.T) {
	r := NewRel([]string{"a"}, []any{3})
	got := Map(r, map[string]func(Tuple) Value{
		"twice": func(t Tuple) Value { return Mul(t.Get("a"), Int(2)) },
	})
	if got.Tuples[0].Get("twice").I != 6 {
		t.Errorf("map = %v", got)
	}
	if !got.HasAttr("twice") || !got.HasAttr("a") {
		t.Error("map schema broken")
	}
}

func TestUnionAndEqualBags(t *testing.T) {
	a := NewRel([]string{"x"}, []any{1}, []any{2})
	b := NewRel([]string{"x"}, []any{2})
	u := Union(a, b)
	if u.Card() != 3 {
		t.Errorf("union card = %d", u.Card())
	}
	// Bags differ by multiplicity.
	if EqualBags(a, u, a.Attrs) {
		t.Error("bags with different cardinality must differ")
	}
	c := NewRel([]string{"x"}, []any{2}, []any{1})
	if !EqualBags(a, c, a.Attrs) {
		t.Error("order must not matter for bag equality")
	}
}
