package algebra

import (
	"encoding/binary"
	"math"
)

// Typed hash keys. The map runtime built grouping and duplicate-elimination
// keys by concatenating human-readable value renderings with a separator,
// which is ambiguous: a string value containing the separator and a type
// tag could make two distinct tuples encode identically (see
// TestGroupingKeyCollision). The slot runtime instead uses an unambiguous
// binary encoding: every value is tagged with its kind, numeric payloads
// are fixed-width, and string payloads are length-prefixed. No two
// distinct value sequences share an encoding.
//
// Equality semantics follow the runtime's comparison rules for keys:
// values are equal iff they agree in kind and payload. (Grouping equality
// additionally makes NULL equal to NULL, which the encoding realizes by
// giving NULL its own tag; join code never encodes NULL keys because
// strict equality makes them match nothing.)

const (
	keyNull   = 0x00
	keyInt    = 0x01
	keyFloat  = 0x02
	keyString = 0x03
)

// appendKeyValue appends the unambiguous binary encoding of v to b.
func appendKeyValue(b []byte, v Value) []byte {
	switch v.Kind {
	case KindNull:
		return append(b, keyNull)
	case KindInt:
		b = append(b, keyInt)
		return binary.BigEndian.AppendUint64(b, uint64(v.I))
	case KindFloat:
		b = append(b, keyFloat)
		f := v.F
		if math.IsNaN(f) {
			// Canonicalize NaN payloads: the reference encoding renders
			// every NaN as the same "NaN" token, so grouping treats all
			// NaNs as one group.
			f = math.NaN()
		}
		return binary.BigEndian.AppendUint64(b, math.Float64bits(f))
	case KindString:
		b = append(b, keyString)
		b = binary.AppendUvarint(b, uint64(len(v.S)))
		return append(b, v.S...)
	}
	panic("algebra: unknown value kind in key encoding")
}

// appendRowKey appends the grouping key of row over the given slots:
// kind-sensitive, exactly the equality that the reference runtime's
// canonical tuple encoding implements. Slot -1 reads as NULL.
func appendRowKey(b []byte, row Row, slots []int) []byte {
	for _, s := range slots {
		b = appendKeyValue(b, row.get(s))
	}
	return b
}

// appendJoinKey appends the join key of row over the given slots. Join
// equality is numeric across kinds (Int(2) = Float(2.0), see eqNonNull),
// so integral floats are normalized to the integer encoding. The
// normalization is exact for |values| ≤ 2^53, the range where float64
// represents integers exactly; the runtime's data domains stay far below
// that.
func appendJoinKey(b []byte, row Row, slots []int) []byte {
	for _, s := range slots {
		v := row.get(s)
		if v.Kind == KindFloat {
			if i := int64(v.F); float64(i) == v.F {
				v = Int(i)
			}
		}
		b = appendKeyValue(b, v)
	}
	return b
}

// rowHasNullKey reports whether any key slot of the row is NULL or NaN —
// such rows match nothing under strict (join) equality: NULL by SQL
// semantics, NaN because NaN ≠ NaN, exactly as the reference operators'
// EqStrict comparison behaves.
func rowHasNullKey(row Row, slots []int) bool {
	for _, s := range slots {
		v := row.get(s)
		if v.IsNull() || (v.Kind == KindFloat && math.IsNaN(v.F)) {
			return true
		}
	}
	return false
}
