package algebra

// Sort-based physical operators: streaming sort-merge equi-joins
// (inner/semi/anti/leftouter) and sort-group aggregation over slot-based
// tables — the second physical layer beside the hash operators.
//
// Every operator here emits the *hash-canonical output sequence*: the
// exact row order its hash counterpart produces (probe rows in input
// order with matches in build-input order; groups in first-encounter
// order, folded in input order). Sortedness is exploited internally —
// to find join partners by merging instead of hashing, and to detect
// group boundaries by run instead of hash lookups — but never leaks
// into the output order. Two consequences:
//
//   - results are bit-identical to the hash layer for every operator,
//     every worker count and every input, float aggregation included,
//     so the whole differential-testing story of the runtime carries
//     over unchanged; and
//   - an operator's output keeps its left/probe input's physical order,
//     which is exactly the contractual order propagation the optimizer
//     assumes (internal/ordering): orders originate at sorted scans and
//     survive through the sort-based layer.
//
// When an input's sort is *eliminated* (the optimizer proved its
// contractual order covers the requirement), the operator does not
// trust the claim blindly: the merge verifies non-decreasing keys while
// streaming and fails the execution on a violated declaration — a wrong
// scan-order declaration is an error, never a wrong result.
//
// When an input's sort is *performed*, rows are ordered by
// (key, original index). That total order makes the sorted permutation
// unique, so the parallel sort (chunked sort + pairwise merge rounds)
// is bit-identical to the sequential one for every worker count.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"eagg/internal/aggfn"
)

// ---------------------------------------------------------------------
// Comparators
// ---------------------------------------------------------------------

// compareJoinValue is the total order behind merge joins. Its equality
// coincides with join-key equality (strict, numeric across int/float —
// Int(2) = Float(2.0), like appendJoinKey's normalization); NULL and NaN
// never reach it (rows with such keys are filtered like in the hash
// operators). Mixed number/string keys order numbers first — consistent
// on both sides, which is all a merge needs.
func compareJoinValue(a, b Value) int {
	as, bs := a.Kind == KindString, b.Kind == KindString
	if as || bs {
		if as && bs {
			return strings.Compare(a.S, b.S)
		}
		if bs {
			return -1 // number < string
		}
		return 1
	}
	if a.Kind == KindInt && b.Kind == KindInt {
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		}
		return 0
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1
	case af > bf:
		return 1
	}
	return 0
}

// compareGroupValue is the total order behind sort-group aggregation.
// Its equality coincides with grouping equality (NULL = NULL, all NaNs
// one group, otherwise kind-sensitive like appendRowKey): values that
// hash aggregation keeps apart never compare equal here.
func compareGroupValue(a, b Value) int {
	ra, rb := groupRank(a), groupRank(b)
	if ra != rb {
		return ra - rb
	}
	switch ra {
	case 0, 1: // both NULL / both NaN
		return 0
	case 3:
		return strings.Compare(a.S, b.S)
	}
	if c := compareJoinValue(a, b); c != 0 {
		return c
	}
	// Numerically equal but kind-sensitive: Int(2) before Float(2.0).
	return int(a.Kind) - int(b.Kind)
}

func groupRank(v Value) int {
	switch v.Kind {
	case KindNull:
		return 0
	case KindString:
		return 3
	case KindFloat:
		if math.IsNaN(v.F) {
			return 1
		}
	}
	return 2
}

// compareKeySeq compares two rows' key sequences under cmp.
func compareKeySeq(a Row, ak []int, b Row, bk []int, cmp func(Value, Value) int) int {
	for i := range ak {
		if c := cmp(a.get(ak[i]), b.get(bk[i])); c != 0 {
			return c
		}
	}
	return 0
}

// ---------------------------------------------------------------------
// Index preparation: verified (eliminated sort) or sorted (performed)
// ---------------------------------------------------------------------

// verifiedJoinIndex returns the indices of t's rows with non-NULL keys in
// input order, verifying the contractual claim that the kept rows are
// non-decreasing under the join comparator. A violation is an execution
// error: the scan-order declaration (or an unsound order inference) lied
// about the data.
func verifiedJoinIndex(t *Table, ks []int) ([]int32, error) {
	idx := make([]int32, 0, len(t.Rows))
	prev := int32(-1)
	for i, row := range t.Rows {
		if rowHasNullKey(row, ks) {
			continue
		}
		if prev >= 0 {
			if compareKeySeq(t.Rows[prev], ks, row, ks, compareJoinValue) > 0 {
				return nil, fmt.Errorf(
					"algebra: input declared sorted on merge keys but row %d is out of order (violated scan-order declaration)", i)
			}
		}
		prev = int32(i)
		idx = append(idx, int32(i))
	}
	return idx, nil
}

// sortedIndexBy returns row indices ordered by (key, original index)
// under cmp — a total order, so the permutation is unique and identical
// for every worker count. With filterNull set, rows with NULL/NaN key
// components are dropped first (join semantics); otherwise every row
// participates (grouping semantics).
func (e *Exec) sortedIndexBy(t *Table, ks []int, cmp func(Value, Value) int, filterNull bool) []int32 {
	idx := make([]int32, 0, len(t.Rows))
	for i, row := range t.Rows {
		if filterNull && rowHasNullKey(row, ks) {
			continue
		}
		idx = append(idx, int32(i))
	}
	less := func(a, b int32) bool {
		if c := compareKeySeq(t.Rows[a], ks, t.Rows[b], ks, cmp); c != 0 {
			return c < 0
		}
		return a < b
	}
	if !e.parFor(len(idx)) {
		sort.Slice(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
		return idx
	}
	// Parallel: sort morsel-sized chunks concurrently, then merge
	// adjacent runs in rounds — one task per merge pair, so the cascade
	// keeps all workers busy instead of collapsing onto one morsel. The
	// (key, index) order is total, so the result does not depend on the
	// chunking.
	size := e.sizeFor(len(idx))
	var chunks [][]int32
	for lo := 0; lo < len(idx); lo += size {
		chunks = append(chunks, idx[lo:min(lo+size, len(idx))])
	}
	e.forMorsels(len(idx), func(m, lo, hi int) {
		c := idx[lo:hi]
		sort.Slice(c, func(i, j int) bool { return less(c[i], c[j]) })
	})
	for len(chunks) > 1 {
		next := make([][]int32, (len(chunks)+1)/2)
		e.forTasks(len(next), func(p int) {
			if 2*p+1 < len(chunks) {
				next[p] = mergeRuns(chunks[2*p], chunks[2*p+1], less)
			} else {
				next[p] = chunks[2*p]
			}
		})
		chunks = next
	}
	if len(chunks) == 1 {
		return chunks[0]
	}
	return idx
}

// mergeRuns merges two runs sorted under less into a fresh slice.
func mergeRuns(a, b []int32, less func(x, y int32) bool) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// joinIndex prepares one merge input: verified input order when the sort
// is eliminated, (key, index)-sorted otherwise.
func (e *Exec) joinIndex(t *Table, ks []int, needSort bool) ([]int32, error) {
	if needSort {
		return e.sortedIndexBy(t, ks, compareJoinValue, true), nil
	}
	return verifiedJoinIndex(t, ks)
}

// ---------------------------------------------------------------------
// The merge: per-left-row match ranges
// ---------------------------------------------------------------------

// noRange marks "no partners" in a range table.
const noRange = int32(-1)

// matchRanges walks the two prepared index streams once and returns, per
// original left row, the half-open range into rIdx holding its join
// partners. Rows absent from lIdx (NULL keys) keep noRange. Within one
// range, rIdx ascends — for a performed sort by the (key, index) order,
// for a verified input by construction — so partners are emitted in
// right-input order, exactly like a hash build's posting list.
func matchRanges(l, r *Table, lIdx, rIdx []int32, lk, rk []int) [][2]int32 {
	ranges := make([][2]int32, len(l.Rows))
	for i := range ranges {
		ranges[i] = [2]int32{noRange, noRange}
	}
	j := 0
	for i := 0; i < len(lIdx); {
		lrow := l.Rows[lIdx[i]]
		// Left key group [i, i2).
		i2 := i + 1
		for i2 < len(lIdx) && compareKeySeq(l.Rows[lIdx[i2]], lk, lrow, lk, compareJoinValue) == 0 {
			i2++
		}
		// Advance the right stream to the group's key.
		for j < len(rIdx) && compareKeySeq(r.Rows[rIdx[j]], rk, lrow, lk, compareJoinValue) < 0 {
			j++
		}
		j2 := j
		for j2 < len(rIdx) && compareKeySeq(r.Rows[rIdx[j2]], rk, lrow, lk, compareJoinValue) == 0 {
			j2++
		}
		if j2 > j {
			for ; i < i2; i++ {
				ranges[lIdx[i]] = [2]int32{int32(j), int32(j2)}
			}
		} else {
			i = i2
		}
		// The right pointer stays at the group start: several left keys
		// never share right partners (keys differ), so j only moves
		// forward — the walk is linear.
		j = j2
	}
	return ranges
}

// verifyOrderedBy checks the contractual claim behind an eliminated
// group sort: the table is non-decreasing on the covering order prefix
// (grouping comparator: NULLs first, kind-refined). Adjacent pairs are
// checked morsel-parallel; a violation is an execution error — the
// scan-order declaration (or an unsound inference) lied about the data.
func (e *Exec) verifyOrderedBy(t *Table, slots []int) error {
	n := len(t.Rows)
	if len(slots) == 0 || n < 2 {
		return nil
	}
	viol := make([]int, e.morselCount(n))
	for i := range viol {
		viol[i] = -1
	}
	e.forMorsels(n, func(m, lo, hi int) {
		if lo == 0 {
			lo = 1
		}
		for i := lo; i < hi; i++ {
			if compareKeySeq(t.Rows[i-1], slots, t.Rows[i], slots, compareGroupValue) > 0 {
				viol[m] = i
				return
			}
		}
	})
	// Morsels cover ascending index ranges and each records its first
	// violation, so the first hit in morsel order is the global first.
	for _, v := range viol {
		if v >= 0 {
			return fmt.Errorf(
				"algebra: input declared ordered for streaming aggregation but row %d is out of order (violated scan-order declaration)", v)
		}
	}
	return nil
}

// mergePrepare runs both index preparations and the merge walk — the
// shared first half of every merge join.
func (e *Exec) mergePrepare(l, r *Table, lk, rk []int, sortL, sortR bool) ([]int32, [][2]int32, error) {
	lIdx, err := e.joinIndex(l, lk, sortL)
	if err != nil {
		return nil, nil, fmt.Errorf("merge join, left input: %w", err)
	}
	rIdx, err := e.joinIndex(r, rk, sortR)
	if err != nil {
		return nil, nil, fmt.Errorf("merge join, right input: %w", err)
	}
	return rIdx, matchRanges(l, r, lIdx, rIdx, lk, rk), nil
}

// ---------------------------------------------------------------------
// The operators
// ---------------------------------------------------------------------

// MergeJoin is the inner equi-join l ⋈ r on the sort-based layer. sortL
// and sortR say which inputs must be sorted; a false flag is the
// eliminated-sort case and requires (and verifies) that the input is
// already non-decreasing on its key slots. The output sequence equals
// HashJoin's exactly.
func (e *Exec) MergeJoin(l, r *Table, lk, rk []int, sortL, sortR bool) (*Table, error) {
	e = e.seqFor(max(len(l.Rows), len(r.Rows)))
	out := &Table{Schema: l.Schema.Concat(r.Schema)}
	rIdx, ranges, err := e.mergePrepare(l, r, lk, rk, sortL, sortR)
	if err != nil {
		return nil, err
	}
	width := out.Schema.Len()
	e.probeMorsels(l, out, func(lo, hi int) []Row {
		var chunk []Row
		ar := newRowArena(width)
		for i := lo; i < hi; i++ {
			rg := ranges[i]
			for j := rg[0]; j < rg[1]; j++ {
				chunk = append(chunk, ar.concat(l.Rows[i], r.Rows[rIdx[j]]))
			}
		}
		return chunk
	})
	return out, nil
}

// MergeSemiJoin is the left semijoin l ⋉ r on the sort-based layer.
func (e *Exec) MergeSemiJoin(l, r *Table, lk, rk []int, sortL, sortR bool) (*Table, error) {
	e = e.seqFor(max(len(l.Rows), len(r.Rows)))
	out := &Table{Schema: l.Schema}
	_, ranges, err := e.mergePrepare(l, r, lk, rk, sortL, sortR)
	if err != nil {
		return nil, err
	}
	e.probeMorsels(l, out, func(lo, hi int) []Row {
		var chunk []Row
		for i := lo; i < hi; i++ {
			if ranges[i][0] != noRange {
				chunk = append(chunk, l.Rows[i])
			}
		}
		return chunk
	})
	return out, nil
}

// MergeAntiJoin is the left antijoin l ▷ r on the sort-based layer. Left
// rows with NULL key components are kept, like in the hash operator.
func (e *Exec) MergeAntiJoin(l, r *Table, lk, rk []int, sortL, sortR bool) (*Table, error) {
	e = e.seqFor(max(len(l.Rows), len(r.Rows)))
	out := &Table{Schema: l.Schema}
	_, ranges, err := e.mergePrepare(l, r, lk, rk, sortL, sortR)
	if err != nil {
		return nil, err
	}
	e.probeMorsels(l, out, func(lo, hi int) []Row {
		var chunk []Row
		for i := lo; i < hi; i++ {
			if ranges[i][0] == noRange {
				chunk = append(chunk, l.Rows[i])
			}
		}
		return chunk
	})
	return out, nil
}

// MergeLeftOuter is the left outerjoin on the sort-based layer. pad must
// be a full row over r's schema (the engine's default vectors).
func (e *Exec) MergeLeftOuter(l, r *Table, lk, rk []int, sortL, sortR bool, pad Row) (*Table, error) {
	e = e.seqFor(max(len(l.Rows), len(r.Rows)))
	out := &Table{Schema: l.Schema.Concat(r.Schema)}
	rIdx, ranges, err := e.mergePrepare(l, r, lk, rk, sortL, sortR)
	if err != nil {
		return nil, err
	}
	width := out.Schema.Len()
	e.probeMorsels(l, out, func(lo, hi int) []Row {
		var chunk []Row
		ar := newRowArena(width)
		for i := lo; i < hi; i++ {
			rg := ranges[i]
			if rg[0] == noRange {
				chunk = append(chunk, ar.concat(l.Rows[i], pad))
				continue
			}
			for j := rg[0]; j < rg[1]; j++ {
				chunk = append(chunk, ar.concat(l.Rows[i], r.Rows[rIdx[j]]))
			}
		}
		return chunk
	})
	return out, nil
}

// SortGroup is sort-group aggregation: the sort-based counterpart of
// HashGroup. With sortInput false the input's contractual order already
// makes every group a consecutive run, and the operator streams over the
// input aggregating run by run — zero reorganization. With sortInput
// true it orders rows by (grouping key, input index) first. Either way
// every group folds its rows in input order and groups are emitted in
// first-encounter order: the output is bit-identical to HashGroup.
func (e *Exec) SortGroup(t *Table, groupBy []string, f aggfn.Vector, sortInput bool, verify []int) (*Table, error) {
	e = e.seqFor(len(t.Rows))
	bound := BindVector(f, t.Schema)
	groupSlots := t.Schema.Slots(groupBy)
	names := make([]string, 0, len(groupBy)+len(f))
	names = append(names, groupBy...)
	names = append(names, f.Outs()...)
	out := &Table{Schema: NewSchema(names)}

	if !sortInput {
		if err := e.verifyOrderedBy(t, verify); err != nil {
			return nil, err
		}
		e.streamRuns(t, groupSlots, bound, out)
		return out, nil
	}

	idx := e.sortedIndexBy(t, groupSlots, compareGroupValue, false)
	// Runs of equal keys are contiguous in idx and internally ascend by
	// original index, so folding a run front to back is folding the
	// group in input order. Emitting the finished groups by ascending
	// first (= minimal original) index restores first-encounter order.
	groups := e.foldSortedRuns(t, idx, groupSlots, bound)
	sort.Slice(groups, func(i, j int) bool { return groups[i].first < groups[j].first })
	out.Rows = make([]Row, len(groups))
	for i, g := range groups {
		out.Rows[i] = g.row
	}
	return out, nil
}

// foldSortedRuns folds each equal-key run of the sorted index into one
// finished group row, in parallel across runs. Run boundaries are a pure
// function of the data, and each run is owned start to finish by the
// task whose original span contains its first element, so the result is
// identical for every worker count.
func (e *Exec) foldSortedRuns(t *Table, idx []int32, groupSlots []int, bound []BoundAgg) []groupOut {
	sameKey := func(a, b int32) bool {
		return compareKeySeq(t.Rows[a], groupSlots, t.Rows[b], groupSlots, compareGroupValue) == 0
	}
	runStart := func(p int) bool { return p == 0 || !sameKey(idx[p-1], idx[p]) }
	n := len(idx)
	if !e.parFor(n) {
		return foldRunRange(t, idx, 0, n, n, groupSlots, bound, sameKey, runStart)
	}
	chunks := make([][]groupOut, e.morselCount(n))
	e.forMorsels(n, func(m, lo, hi int) {
		chunks[m] = foldRunRange(t, idx, lo, hi, n, groupSlots, bound, sameKey, runStart)
	})
	var all []groupOut
	for _, c := range chunks {
		all = append(all, c...)
	}
	return all
}

// foldRunRange folds every run starting in [lo, hi) to completion (a run
// may extend past hi; runs starting before lo belong to earlier spans).
func foldRunRange(t *Table, idx []int32, lo, hi, n int, groupSlots []int, bound []BoundAgg,
	sameKey func(a, b int32) bool, runStart func(p int) bool) []groupOut {
	var outs []groupOut
	var scratch []byte
	p := lo
	for p < hi && !runStart(p) {
		p++
	}
	for p < hi {
		end := p + 1
		for end < n && sameKey(idx[p], idx[end]) {
			end++
		}
		rep := make(Row, len(groupSlots))
		for i, s := range groupSlots {
			rep[i] = t.Rows[idx[p]].get(s)
		}
		cells := make([]aggCell, len(bound))
		for q := p; q < end; q++ {
			row := t.Rows[idx[q]]
			for i := range bound {
				cells[i].update(&bound[i], row, &scratch)
			}
		}
		row := make(Row, 0, len(groupSlots)+len(bound))
		row = append(row, rep...)
		for i := range bound {
			row = append(row, cells[i].final(&bound[i]))
		}
		outs = append(outs, groupOut{first: idx[p], row: row})
		p = end
	}
	return outs
}

// streamRuns is the eliminated-sort aggregation: the input's order makes
// every group one consecutive run, so a single pass folds runs in place.
// Boundaries are detected with the same collision-proof key encoding the
// hash layer groups by, so run equality is exactly hash-group equality.
func (e *Exec) streamRuns(t *Table, groupSlots []int, bound []BoundAgg, out *Table) {
	n := len(t.Rows)
	fold := func(lo, hi int) []Row { // runs starting in [lo,hi), folded to completion
		var chunk []Row
		// Per-call (= per-morsel) reusable key buffers: run-boundary
		// detection and the distinct accumulators never allocate fresh
		// encodings per row.
		var key, next, scratch []byte
		isStart := func(i int) bool {
			if i == 0 {
				return true
			}
			key = appendRowKey(key[:0], t.Rows[i-1], groupSlots)
			next = appendRowKey(next[:0], t.Rows[i], groupSlots)
			return string(key) != string(next)
		}
		p := lo
		for p < hi && !isStart(p) {
			p++
		}
		for p < hi {
			key = appendRowKey(key[:0], t.Rows[p], groupSlots)
			end := p + 1
			for end < n {
				next = appendRowKey(next[:0], t.Rows[end], groupSlots)
				if string(next) != string(key) {
					break
				}
				end++
			}
			rep := make(Row, len(groupSlots))
			for i, s := range groupSlots {
				rep[i] = t.Rows[p].get(s)
			}
			cells := make([]aggCell, len(bound))
			for q := p; q < end; q++ {
				for i := range bound {
					cells[i].update(&bound[i], t.Rows[q], &scratch)
				}
			}
			row := make(Row, 0, len(groupSlots)+len(bound))
			row = append(row, rep...)
			for i := range bound {
				row = append(row, cells[i].final(&bound[i]))
			}
			chunk = append(chunk, row)
			p = end
		}
		return chunk
	}
	if !e.parFor(n) {
		out.Rows = fold(0, n)
		return
	}
	chunks := make([][]Row, e.morselCount(n))
	e.forMorsels(n, func(m, lo, hi int) {
		chunks[m] = fold(lo, hi)
	})
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out.Rows = make([]Row, 0, total)
	for _, c := range chunks {
		out.Rows = append(out.Rows, c...)
	}
}
