package algebra

import (
	"fmt"

	"eagg/internal/aggfn"
)

// Typed hash aggregation: the slot-based counterpart of Group and
// GroupJoin. An aggregation vector is bound against a schema once
// (attribute names → slots), groups are keyed by the collision-proof
// typed encoding of hashkey.go with grouping equality (NULL = NULL,
// kind-sensitive otherwise), and every aggregate folds its group
// incrementally through a small accumulator instead of re-scanning
// collected tuple slices. Rows are folded in input order, so even
// order-sensitive float summation matches the reference operators bit for
// bit.

// BoundAgg is one aggregate of a vector with its inputs resolved to
// slots. Slot -1 means "attribute absent", which reads as NULL exactly
// like the map runtime.
type BoundAgg struct {
	Kind           aggfn.Kind
	Arg, Arg2, Wgt int
}

// BindVector resolves an aggregation vector against a schema.
func BindVector(f aggfn.Vector, s *Schema) []BoundAgg {
	out := make([]BoundAgg, len(f))
	slot := func(name string) int {
		if name == "" {
			return -1
		}
		if i, ok := s.Slot(name); ok {
			return i
		}
		return -1
	}
	for i, a := range f {
		out[i] = BoundAgg{
			Kind: a.Kind,
			Arg:  slot(a.Arg),
			Arg2: slot(a.Arg2),
			Wgt:  slot(a.Weight),
		}
	}
	return out
}

// aggCell is the accumulator state of one aggregate in one group.
type aggCell struct {
	count int64 // CountStar / Count / Avg denominator
	sum   Value // running sum, min/max best, or numerator
	sum2  Value // second running sum (denominators of the merge forms)
	seen  map[string]struct{}
	vals  []Value // distinct non-NULL values in first-seen order
}

// addTo folds one term into a running SQL sum: NULL terms are skipped and
// the sum of no terms is NULL.
func addTo(s Value, term Value) Value {
	if term.IsNull() {
		return s
	}
	if s.IsNull() {
		return term
	}
	return Add(s, term)
}

// update folds one input row into the accumulator. scratch is a reusable
// per-worker key buffer for the distinct forms (reset on every use, so
// sharing one across rows and aggregates is safe).
func (c *aggCell) update(a *BoundAgg, row Row, scratch *[]byte) {
	c.updateVals(a, row.get(a.Arg), row.get(a.Arg2), row.get(a.Wgt), scratch)
}

// updateVals is the representation-neutral fold core: it takes the
// aggregate's input values directly instead of reading them from a row,
// so the row runtime (update) and the batch runtime's generic fold
// (batchagg.go) share one accumulator trajectory — bit-identical by
// construction.
func (c *aggCell) updateVals(a *BoundAgg, arg, arg2, wgt Value, scratch *[]byte) {
	switch a.Kind {
	case aggfn.CountStar:
		c.count++
	case aggfn.Count:
		if !arg.IsNull() {
			c.count++
		}
	case aggfn.Sum:
		c.sum = addTo(c.sum, arg)
	case aggfn.SumTimes:
		c.sum = addTo(c.sum, Mul(arg, arg2))
	case aggfn.SumIfNotNull:
		if arg.IsNull() {
			c.sum = addTo(c.sum, Int(0))
		} else {
			c.sum = addTo(c.sum, arg2)
		}
	case aggfn.Min, aggfn.Max:
		if arg.IsNull() {
			return
		}
		if c.sum.IsNull() {
			c.sum = arg
			return
		}
		r, _ := CompareStrict(arg, c.sum)
		if (a.Kind == aggfn.Min && r < 0) || (a.Kind == aggfn.Max && r > 0) {
			c.sum = arg
		}
	case aggfn.Avg:
		c.sum = addTo(c.sum, arg)
		if !arg.IsNull() {
			c.count++
		}
	case aggfn.AvgMerge:
		num, den := arg, arg2
		if a.Wgt >= 0 {
			num, den = Mul(num, wgt), Mul(den, wgt)
		}
		c.sum = addTo(c.sum, num)
		c.sum2 = addTo(c.sum2, den)
	case aggfn.AvgWeighted:
		c.sum = addTo(c.sum, Mul(arg, arg2))
		if arg.IsNull() {
			c.sum2 = addTo(c.sum2, Int(0))
		} else {
			c.sum2 = addTo(c.sum2, arg2)
		}
	case aggfn.SumDistinct, aggfn.CountDistinct, aggfn.AvgDistinct:
		if arg.IsNull() {
			return
		}
		if c.seen == nil {
			c.seen = map[string]struct{}{}
		}
		*scratch = appendKeyValue((*scratch)[:0], arg)
		if _, dup := c.seen[string(*scratch)]; !dup {
			c.seen[string(*scratch)] = struct{}{}
			c.vals = append(c.vals, arg)
		}
	default:
		panic(fmt.Sprintf("algebra: unknown aggregate kind %v", a.Kind))
	}
}

// final produces the aggregate's result value.
func (c *aggCell) final(a *BoundAgg) Value {
	switch a.Kind {
	case aggfn.CountStar, aggfn.Count:
		return Int(c.count)
	case aggfn.Sum, aggfn.SumTimes, aggfn.SumIfNotNull, aggfn.Min, aggfn.Max:
		return c.sum
	case aggfn.Avg:
		return Div(c.sum, Int(c.count))
	case aggfn.AvgMerge, aggfn.AvgWeighted:
		return Div(c.sum, c.sum2)
	case aggfn.CountDistinct:
		return Int(int64(len(c.vals)))
	case aggfn.SumDistinct:
		var s Value = Null
		for _, v := range c.vals {
			s = addTo(s, v)
		}
		return s
	case aggfn.AvgDistinct:
		if len(c.vals) == 0 {
			return Null
		}
		var s Value = Null
		for _, v := range c.vals {
			s = addTo(s, v)
		}
		return Div(s, Int(int64(len(c.vals))))
	}
	panic(fmt.Sprintf("algebra: unknown aggregate kind %v", a.Kind))
}

// groupAcc is the per-group state of a hash aggregation.
type groupAcc struct {
	rep   Row // representative grouping values
	cells []aggCell
}

// HashGroup is the typed hash-aggregation form of Group: one output row
// per distinct grouping key (grouping equality: NULLs form their own
// group), in first-encounter order. The grouping attributes are resolved
// against t's schema once; attributes absent from the schema read as a
// NULL column, like in the map runtime. The output schema is the grouping
// attributes followed by the vector's output attributes.
func HashGroup(t *Table, groupBy []string, f aggfn.Vector) *Table {
	bound := BindVector(f, t.Schema)
	groupSlots := t.Schema.Slots(groupBy)
	names := make([]string, 0, len(groupBy)+len(f))
	names = append(names, groupBy...)
	names = append(names, f.Outs()...)
	out := &Table{Schema: NewSchema(names)}

	groups := map[string]*groupAcc{}
	var order []*groupAcc
	var buf, scratch []byte
	for _, row := range t.Rows {
		buf = appendRowKey(buf[:0], row, groupSlots)
		g := groups[string(buf)]
		if g == nil {
			rep := make(Row, len(groupSlots))
			for i, s := range groupSlots {
				rep[i] = row.get(s)
			}
			g = &groupAcc{rep: rep, cells: make([]aggCell, len(bound))}
			groups[string(buf)] = g
			order = append(order, g)
		}
		for i := range bound {
			g.cells[i].update(&bound[i], row, &scratch)
		}
	}
	for _, g := range order {
		row := make(Row, 0, len(groupSlots)+len(bound))
		row = append(row, g.rep...)
		for i := range bound {
			row = append(row, g.cells[i].final(&bound[i]))
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// HashGroupJoin is the typed build/probe form of GroupJoin: the right
// side is hashed on its key slots, and every left row is extended by the
// vector's aggregates over its (possibly empty) partner bucket. Strict
// join equality applies to the keys.
func HashGroupJoin(l, r *Table, lk, rk []int, f aggfn.Vector) *Table {
	bound := BindVector(f, r.Schema)
	names := append(append([]string(nil), l.Schema.Names()...), f.Outs()...)
	out := &Table{Schema: NewSchema(names)}
	ht := buildSide(r, rk)
	var buf, scratch []byte
	for _, lrow := range l.Rows {
		cells := make([]aggCell, len(bound))
		if !rowHasNullKey(lrow, lk) {
			buf = appendJoinKey(buf[:0], lrow, lk)
			for _, ri := range ht[string(buf)] {
				for i := range bound {
					cells[i].update(&bound[i], r.Rows[ri], &scratch)
				}
			}
		}
		row := make(Row, 0, len(lrow)+len(bound))
		row = append(row, lrow...)
		for i := range bound {
			row = append(row, cells[i].final(&bound[i]))
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
