package algebra

// Morsel-driven parallel execution (Leis et al., SIGMOD 2014 style) for
// the slot-based hash operators. Inputs are split into fixed-size row
// ranges (morsels) that a small worker pool processes concurrently:
//
//   - Hash-join builds run as parallel partitioned inserts: a
//     morsel-parallel scatter pass buckets every build row by the hash
//     (hashKey) of its typed binary key into a fixed number of partitions,
//     then each partition's flat hash table (hashtable.go) is built
//     independently, sized exactly from the morsel bucket counts.
//     Because the per-morsel buckets are merged in morsel order, every
//     posting list holds its row indices in build-input order — the
//     partitioned table is observationally identical to the sequential
//     buildSide map, just split by key hash.
//   - Probes run morsel-parallel over the probe input. Each morsel
//     produces its own output chunk, and the chunks are concatenated in
//     morsel order, so the output is exactly the sequential probe order
//     (probe rows in input order, matches in build-input order).
//   - Hash aggregation scatters input rows by grouping key into the same
//     fixed partitions and aggregates each partition independently.
//     Every group lives in exactly one partition (its key determines its
//     hash), and walking the scatter output in morsel order feeds each
//     group's accumulators in global input order — so even
//     order-sensitive float sums come out bit-identical. The finished
//     groups of all partitions are merged by ascending first-input-row
//     index, which reproduces the sequential first-encounter output
//     order exactly.
//
// The partition count is fixed and independent of the worker count, so
// the work decomposition — and with it every intermediate structure —
// does not depend on how many goroutines happen to execute it. Together
// with the ordered assembly above this makes results bit-identical for
// every worker count; Workers ≤ 1 short-circuits to the plain sequential
// operators and is the exact reference path.

import (
	"encoding/binary"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"eagg/internal/aggfn"
)

// DefaultMorselSize caps the adaptive morsel sizing: rows per morsel
// never exceed it, so skewed operators on large inputs still
// load-balance.
const DefaultMorselSize = 4096

// minMorselSize floors the adaptive sizing: below this, per-morsel
// bookkeeping stops vanishing against per-row work.
const minMorselSize = 64

// morselsPerWorker is the adaptive sizing target: enough morsels per
// worker that the atomic hand-out evens out per-morsel skew.
const morselsPerWorker = 4

// partitions is the fixed fan-out of partitioned builds and
// aggregations. Must be a power of two (the partition of a key is its
// hash masked by partitions-1).
const partitions = 64

// Exec carries execution-wide settings for the slot operators: the
// worker count of the morsel-driven parallel variants and the morsel
// granularity. A nil *Exec runs every operator sequentially.
type Exec struct {
	workers int
	// morsel is the explicit morsel size; 0 selects adaptive sizing
	// (see sizeFor). Never read directly — operators size through
	// sizeFor so that morsel counts and morsel iteration agree.
	morsel int
	// pool, when set, supplies the goroutines for every task fan-out
	// instead of spawning fresh ones — the shared-scheduler seam of the
	// service layer. The work decomposition (morsel geometry, partition
	// count) still derives only from workers, so results are identical
	// with or without a pool.
	pool *Pool
	// batch is the row count per columnar batch of the batch-at-a-time
	// operators (batchjoin.go, batchagg.go); 0 selects DefaultBatchSize.
	// Results are identical for every size.
	batch int
	// hstats, when set, collects hash-table build/probe telemetry
	// (hashtable.go). Observation only — never consulted for decisions,
	// so attaching it cannot change results.
	hstats *HashStats
}

// DefaultBatchSize is the default row count per columnar batch: large
// enough to amortize the per-batch column-kind dispatch, small enough
// that a batch's working set (keys + payloads) stays cache-resident.
const DefaultBatchSize = 1024

// WithBatchSize returns a copy of e with an explicit columnar batch size
// (≤ 0 restores the default). Results are bit-identical for every size.
func (e *Exec) WithBatchSize(rows int) *Exec {
	out := *e
	if rows < 0 {
		rows = 0
	}
	out.batch = rows
	return &out
}

// batchSize returns the resolved columnar batch size.
func (e *Exec) batchSize() int {
	if e == nil || e.batch <= 0 {
		return DefaultBatchSize
	}
	return e.batch
}

// NewExec returns execution settings for the given worker count:
// 0 (or negative) selects GOMAXPROCS, 1 is the exact sequential
// reference path, larger counts enable the morsel-parallel operator
// variants. Results are bit-identical for every value.
func NewExec(workers int) *Exec {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Exec{workers: workers}
}

// Workers returns the resolved worker count (1 for a nil Exec).
func (e *Exec) Workers() int {
	if e == nil {
		return 1
	}
	return e.workers
}

// WithMorselSize returns a copy of e with an exact morsel size
// (0 restores the adaptive default). An explicit size also disables the
// small-operator sequential cutoff (see parFor) — the tests rely on
// that to force the parallel machinery onto tiny inputs. Results are
// identical for every size.
func (e *Exec) WithMorselSize(rows int) *Exec {
	out := *e
	if rows < 0 {
		rows = 0
	}
	out.morsel = rows
	return &out
}

// WithPool returns a copy of e whose task fan-outs run on the shared
// pool (nil restores plain goroutine spawning). Attaching a pool never
// changes results — only which goroutines execute the tasks.
func (e *Exec) WithPool(p *Pool) *Exec {
	out := *e
	out.pool = p
	return &out
}

// WithHashStats returns a copy of e that records hash-table telemetry
// into hs (nil detaches). Pure observation: results are identical with
// or without a collector.
func (e *Exec) WithHashStats(hs *HashStats) *Exec {
	out := *e
	out.hstats = hs
	return &out
}

// hashStats returns the attached collector (nil for none, including on
// a nil Exec — every record path is nil-safe).
func (e *Exec) hashStats() *HashStats {
	if e == nil {
		return nil
	}
	return e.hstats
}

// par reports whether the parallel operator variants are selected.
func (e *Exec) par() bool { return e != nil && e.workers > 1 }

// parallelCutoff is the smallest driving input (rows) for which the
// parallel variants pay for their scatter/partition overhead under the
// adaptive morsel sizing. Operators below it run sequentially — a
// deterministic, size-only decision.
const parallelCutoff = 512

// parFor reports whether the parallel variant should run for an
// operator driven by n input rows. An explicit morsel size disables the
// cutoff so tests can force the parallel machinery onto tiny inputs.
func (e *Exec) parFor(n int) bool {
	return e.par() && (e.morsel > 0 || n >= parallelCutoff)
}

// sizeFor returns the morsel size for an n-row input: the explicitly
// configured size, or — by default — a size aiming at morselsPerWorker
// morsels per worker, clamped to [minMorselSize, DefaultMorselSize], so
// small inputs still fan out while per-morsel bookkeeping stays
// negligible on large ones. The size depends only on (n, workers,
// configuration), never on scheduling — morsel boundaries are
// deterministic.
func (e *Exec) sizeFor(n int) int {
	if e.morsel > 0 {
		return e.morsel
	}
	target := e.workers * morselsPerWorker
	size := (n + target - 1) / target
	if size > DefaultMorselSize {
		return DefaultMorselSize
	}
	if size < minMorselSize {
		return minMorselSize
	}
	return size
}

// morselCount returns the number of morsels n rows split into.
func (e *Exec) morselCount(n int) int {
	size := e.sizeFor(n)
	return (n + size - 1) / size
}

// forMorsels executes fn(m, lo, hi) for every morsel of n input rows,
// fanning out over the task scheduler (up to e.workers goroutines, or
// the attached pool's workers). Morsel boundaries are computed here —
// a pure function of (n, workers, configuration) — and only then handed
// to forTasks, so the decomposition never depends on who executes it.
// fn must only write state owned by morsel m; the fan-out barrier gives
// the caller a happens-before edge on everything fn wrote.
func (e *Exec) forMorsels(n int, fn func(m, lo, hi int)) {
	size := e.sizeFor(n)
	morsels := e.morselCount(n)
	e.forTasks(morsels, func(m int) {
		fn(m, m*size, min((m+1)*size, n))
	})
}

// forTasks executes fn(i) for i in [0, n) — the single fan-out point
// every parallel operator funnels through (forMorsels and forParts
// included). Tasks are handed out through an atomic counter so workers
// stay busy under per-task skew; with a pool attached, the pool's
// shared workers (plus the submitter) execute the tasks instead of
// freshly spawned goroutines. The call returns only after all n tasks
// finished, with a happens-before edge on everything they wrote.
func (e *Exec) forTasks(n int, fn func(i int)) {
	w := e.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if e.pool != nil {
		e.pool.Run(n, fn)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// seqFor returns e itself when the parallel variants should run for an
// n-row operator, and a single-worker copy otherwise — the sort-based
// operators' counterpart of the hash operators' sequential fallback
// below parallelCutoff. Results are identical either way.
func (e *Exec) seqFor(n int) *Exec {
	if e.parFor(n) {
		return e
	}
	s := *e
	s.workers = 1
	return &s
}

// forParts executes fn(p) for every partition id over the task
// scheduler.
func (e *Exec) forParts(fn func(p int)) {
	e.forTasks(partitions, fn)
}

// hashKey is the deterministic hash over an encoded key, shared by the
// partition scatter (low bits) and the flat tables' slot choice (high
// bits). Hash values never affect results — partitioning only splits
// work, and the grouper merge orders by first input row — but a fixed
// hash keeps run-to-run behavior reproducible. The body is a word-at-a-
// time multiply-xor over 8-byte lanes with a splitmix-style finalizer:
// byte-at-a-time FNV-1a measured ~2x slower than Go's map hash on the
// probe-heavy join paths, and encoded keys are usually 9-20 bytes.
func hashKey(b []byte) uint64 {
	const m = 0xe7037ed1a0b428db
	h := uint64(14695981039346656037) ^ uint64(len(b))*0xa0761d6478bd642f
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * m
		h ^= h >> 29
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i, c := range b {
			tail |= uint64(c) << (8 * uint(i))
		}
		h = (h ^ tail) * m
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// scatterEntry locates one row and its encoded key in the morsel arena,
// with the key's hash cached — the partition pass computed it anyway,
// and the flat per-partition tables reuse it for their slot choice.
type scatterEntry struct {
	row      int32
	off, len int32
	hash     uint64
}

// morselScatter is one morsel's contribution to a partitioned pass: per
// partition, the rows hashing into it in row order, with their encoded
// keys in a shared arena.
type morselScatter struct {
	arena   []byte
	buckets [partitions][]scatterEntry
}

// scatterRows buckets rows [lo,hi) of t by the hash of their key over
// the given slots. With joinKeys true the key is the join encoding and
// rows with NULL/NaN key components are dropped (strict equality matches
// them to nothing); otherwise the grouping encoding is used and NULL
// keys form their own groups.
func scatterRows(t *Table, lo, hi int, slots []int, joinKeys bool) *morselScatter {
	s := &morselScatter{}
	for i := lo; i < hi; i++ {
		row := t.Rows[i]
		if joinKeys && rowHasNullKey(row, slots) {
			continue
		}
		off := len(s.arena)
		if joinKeys {
			s.arena = appendJoinKey(s.arena, row, slots)
		} else {
			s.arena = appendRowKey(s.arena, row, slots)
		}
		key := s.arena[off:]
		h := hashKey(key)
		p := h & (partitions - 1)
		s.buckets[p] = append(s.buckets[p], scatterEntry{row: int32(i), off: int32(off), len: int32(len(key)), hash: h})
	}
	return s
}

// partTable is a partitioned hash table over a build input: partition p
// holds the keys hashing to p (low hash bits) in a flat open-addressing
// table, posting lists in build-input order — the sequential buildSide
// postings split by key hash. A nil partition holds no keys.
type partTable struct {
	parts [partitions]*bytesTable
}

// lookup returns the posting list of an encoded key.
func (pt *partTable) lookup(key []byte) []int32 {
	return pt.lookupHashed(hashKey(key), key)
}

func (pt *partTable) lookupHashed(h uint64, key []byte) []int32 {
	t := pt.parts[h&(partitions-1)]
	if t == nil {
		return nil
	}
	return t.lookupHashed(h, key)
}

// buildParts assembles the flat per-partition tables from finished
// morsel scatters: every partition's table is sized exactly from the
// summed morsel bucket counts (a pure function of the data — the morsel
// geometry never depends on scheduling — so table capacities, and with
// them every probe sequence, are identical for every worker count), and
// morsel contributions are inserted in morsel order to keep build-input
// order within every posting list.
func (e *Exec) buildParts(scatters []*morselScatter) *partTable {
	pt := &partTable{}
	hs := e.hashStats()
	e.forParts(func(p int) {
		total := 0
		for _, sc := range scatters {
			total += len(sc.buckets[p])
		}
		if total == 0 {
			return
		}
		t := newBytesTable(total)
		for _, sc := range scatters {
			for _, en := range sc.buckets[p] {
				t.insert(en.hash, sc.arena[en.off:en.off+en.len], en.row)
			}
		}
		t.finalize()
		t.record(hs)
		pt.parts[p] = t
	})
	return pt
}

// buildPartitioned builds the partitioned hash table over r's key slots:
// a morsel-parallel scatter pass, then parallel partitioned inserts into
// flat tables (buildParts).
func (e *Exec) buildPartitioned(r *Table, rk []int) *partTable {
	scatters := make([]*morselScatter, e.morselCount(len(r.Rows)))
	e.forMorsels(len(r.Rows), func(m, lo, hi int) {
		scatters[m] = scatterRows(r, lo, hi, rk, true)
	})
	return e.buildParts(scatters)
}

// probeMorsels runs fn over morsels of the probe input, each morsel
// returning its output chunk, and assembles out.Rows by concatenating
// the chunks in input-morsel order — exactly the sequential output
// order.
func (e *Exec) probeMorsels(probe *Table, out *Table, fn func(lo, hi int) []Row) {
	chunks := make([][]Row, e.morselCount(len(probe.Rows)))
	e.forMorsels(len(probe.Rows), func(m, lo, hi int) {
		chunks[m] = fn(lo, hi)
	})
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	out.Rows = make([]Row, 0, total)
	for _, c := range chunks {
		out.Rows = append(out.Rows, c...)
	}
}

// HashJoin is the inner equi-join l ⋈ r under e's settings: partitioned
// parallel build, morsel-parallel probe. Workers ≤ 1 is the sequential
// HashJoin.
func (e *Exec) HashJoin(l, r *Table, lk, rk []int) *Table {
	if !e.parFor(max(len(l.Rows), len(r.Rows))) {
		return HashJoin(l, r, lk, rk)
	}
	out := &Table{Schema: l.Schema.Concat(r.Schema)}
	pt := e.buildPartitioned(r, rk)
	width := out.Schema.Len()
	e.probeMorsels(l, out, func(lo, hi int) []Row {
		var chunk []Row
		var buf []byte
		ar := newRowArena(width)
		for _, lrow := range l.Rows[lo:hi] {
			if rowHasNullKey(lrow, lk) {
				continue
			}
			buf = appendJoinKey(buf[:0], lrow, lk)
			for _, ri := range pt.lookup(buf) {
				chunk = append(chunk, ar.concat(lrow, r.Rows[ri]))
			}
		}
		return chunk
	})
	return out
}

// HashSemiJoin is the left semijoin l ⋉ r under e's settings.
func (e *Exec) HashSemiJoin(l, r *Table, lk, rk []int) *Table {
	if !e.parFor(max(len(l.Rows), len(r.Rows))) {
		return HashSemiJoin(l, r, lk, rk)
	}
	out := &Table{Schema: l.Schema}
	pt := e.buildPartitioned(r, rk)
	e.probeMorsels(l, out, func(lo, hi int) []Row {
		var chunk []Row
		var buf []byte
		for _, lrow := range l.Rows[lo:hi] {
			if rowHasNullKey(lrow, lk) {
				continue
			}
			buf = appendJoinKey(buf[:0], lrow, lk)
			if len(pt.lookup(buf)) > 0 {
				chunk = append(chunk, lrow)
			}
		}
		return chunk
	})
	return out
}

// HashAntiJoin is the left antijoin l ▷ r under e's settings.
func (e *Exec) HashAntiJoin(l, r *Table, lk, rk []int) *Table {
	if !e.parFor(max(len(l.Rows), len(r.Rows))) {
		return HashAntiJoin(l, r, lk, rk)
	}
	out := &Table{Schema: l.Schema}
	pt := e.buildPartitioned(r, rk)
	e.probeMorsels(l, out, func(lo, hi int) []Row {
		var chunk []Row
		var buf []byte
		for _, lrow := range l.Rows[lo:hi] {
			if !rowHasNullKey(lrow, lk) {
				buf = appendJoinKey(buf[:0], lrow, lk)
				if len(pt.lookup(buf)) > 0 {
					continue
				}
			}
			chunk = append(chunk, lrow)
		}
		return chunk
	})
	return out
}

// HashLeftOuter is the left outerjoin under e's settings. pad must be a
// full row over r's schema.
func (e *Exec) HashLeftOuter(l, r *Table, lk, rk []int, pad Row) *Table {
	if !e.parFor(max(len(l.Rows), len(r.Rows))) {
		return HashLeftOuter(l, r, lk, rk, pad)
	}
	out := &Table{Schema: l.Schema.Concat(r.Schema)}
	pt := e.buildPartitioned(r, rk)
	width := out.Schema.Len()
	e.probeMorsels(l, out, func(lo, hi int) []Row {
		var chunk []Row
		var buf []byte
		ar := newRowArena(width)
		for _, lrow := range l.Rows[lo:hi] {
			matched := false
			if !rowHasNullKey(lrow, lk) {
				buf = appendJoinKey(buf[:0], lrow, lk)
				for _, ri := range pt.lookup(buf) {
					matched = true
					chunk = append(chunk, ar.concat(lrow, r.Rows[ri]))
				}
			}
			if !matched {
				chunk = append(chunk, ar.concat(lrow, pad))
			}
		}
		return chunk
	})
	return out
}

// HashFullOuter is the full outerjoin under e's settings. Matched build
// rows are marked through atomics (the mark only ever moves false→true,
// so concurrent marking is order-independent); the unmatched right rows
// are appended after the probe barrier in build-input order, exactly
// like the sequential operator.
func (e *Exec) HashFullOuter(l, r *Table, lk, rk []int, lpad, rpad Row) *Table {
	if !e.parFor(max(len(l.Rows), len(r.Rows))) {
		return HashFullOuter(l, r, lk, rk, lpad, rpad)
	}
	out := &Table{Schema: l.Schema.Concat(r.Schema)}
	pt := e.buildPartitioned(r, rk)
	width := out.Schema.Len()
	matched := make([]atomic.Bool, len(r.Rows))
	e.probeMorsels(l, out, func(lo, hi int) []Row {
		var chunk []Row
		var buf []byte
		ar := newRowArena(width)
		for _, lrow := range l.Rows[lo:hi] {
			found := false
			if !rowHasNullKey(lrow, lk) {
				buf = appendJoinKey(buf[:0], lrow, lk)
				for _, ri := range pt.lookup(buf) {
					found = true
					matched[ri].Store(true)
					chunk = append(chunk, ar.concat(lrow, r.Rows[ri]))
				}
			}
			if !found {
				chunk = append(chunk, ar.concat(lrow, rpad))
			}
		}
		return chunk
	})
	tail := newRowArena(width)
	for ri, rrow := range r.Rows {
		if !matched[ri].Load() {
			out.Rows = append(out.Rows, tail.concat(lpad, rrow))
		}
	}
	return out
}

// HashGroupJoin is the groupjoin under e's settings: partitioned build,
// morsel-parallel probe; every left row folds its partner bucket in
// build-input order, like the sequential operator.
func (e *Exec) HashGroupJoin(l, r *Table, lk, rk []int, f aggfn.Vector) *Table {
	if !e.parFor(max(len(l.Rows), len(r.Rows))) {
		return HashGroupJoin(l, r, lk, rk, f)
	}
	bound := BindVector(f, r.Schema)
	names := append(append([]string(nil), l.Schema.Names()...), f.Outs()...)
	out := &Table{Schema: NewSchema(names)}
	pt := e.buildPartitioned(r, rk)
	e.probeMorsels(l, out, func(lo, hi int) []Row {
		chunk := make([]Row, 0, hi-lo)
		var buf, scratch []byte
		for _, lrow := range l.Rows[lo:hi] {
			cells := make([]aggCell, len(bound))
			if !rowHasNullKey(lrow, lk) {
				buf = appendJoinKey(buf[:0], lrow, lk)
				for _, ri := range pt.lookup(buf) {
					for i := range bound {
						cells[i].update(&bound[i], r.Rows[ri], &scratch)
					}
				}
			}
			row := make(Row, 0, len(lrow)+len(bound))
			row = append(row, lrow...)
			for i := range bound {
				row = append(row, cells[i].final(&bound[i]))
			}
			chunk = append(chunk, row)
		}
		return chunk
	})
	return out
}

// partGroup is one group being accumulated in a partition, tagged with
// the global index of its first input row.
type partGroup struct {
	acc   groupAcc
	first int32
}

// groupOut is one finished group: its output row plus the first-row tag
// that orders the deterministic merge.
type groupOut struct {
	first int32
	row   Row
}

// HashGroup is typed hash aggregation under e's settings: morsel-parallel
// scatter by grouping key, one independent accumulator table per
// partition, partitions merged by ascending first-input-row index. Every
// group's rows are folded in global input order by exactly one partition
// task, and the merge order equals first-encounter order — so the result
// is bit-identical to the sequential HashGroup, float sums included.
func (e *Exec) HashGroup(t *Table, groupBy []string, f aggfn.Vector) *Table {
	if !e.parFor(len(t.Rows)) {
		return HashGroup(t, groupBy, f)
	}
	bound := BindVector(f, t.Schema)
	groupSlots := t.Schema.Slots(groupBy)
	names := make([]string, 0, len(groupBy)+len(f))
	names = append(names, groupBy...)
	names = append(names, f.Outs()...)
	out := &Table{Schema: NewSchema(names)}

	scatters := make([]*morselScatter, e.morselCount(len(t.Rows)))
	e.forMorsels(len(t.Rows), func(m, lo, hi int) {
		scatters[m] = scatterRows(t, lo, hi, groupSlots, false)
	})

	partOuts := make([][]groupOut, partitions)
	e.forParts(func(p int) {
		groups := map[string]*partGroup{}
		var order []*partGroup
		var scratch []byte
		for _, sc := range scatters {
			for _, en := range sc.buckets[p] {
				key := sc.arena[en.off : en.off+en.len]
				g := groups[string(key)]
				row := t.Rows[en.row]
				if g == nil {
					rep := make(Row, len(groupSlots))
					for i, s := range groupSlots {
						rep[i] = row.get(s)
					}
					g = &partGroup{
						acc:   groupAcc{rep: rep, cells: make([]aggCell, len(bound))},
						first: en.row,
					}
					groups[string(key)] = g
					order = append(order, g)
				}
				for i := range bound {
					g.acc.cells[i].update(&bound[i], row, &scratch)
				}
			}
		}
		outs := make([]groupOut, len(order))
		for i, g := range order {
			row := make(Row, 0, len(groupSlots)+len(bound))
			row = append(row, g.acc.rep...)
			for ci := range bound {
				row = append(row, g.acc.cells[ci].final(&bound[ci]))
			}
			outs[i] = groupOut{first: g.first, row: row}
		}
		partOuts[p] = outs
	})

	var all []groupOut
	for _, outs := range partOuts {
		all = append(all, outs...)
	}
	// First-row indices are unique across groups, so the order is total
	// and the sort deterministic.
	sort.Slice(all, func(i, j int) bool { return all[i].first < all[j].first })
	out.Rows = make([]Row, len(all))
	for i, g := range all {
		out.Rows[i] = g.row
	}
	return out
}

// ExtendTable appends one computed column under e's settings. fn must be
// pure; rows are written by index, so the output order is trivially the
// input order.
func (e *Exec) ExtendTable(t *Table, name string, fn func(Row) Value) *Table {
	if !e.parFor(len(t.Rows)) {
		return ExtendTable(t, name, fn)
	}
	out := &Table{Schema: t.Schema.Extend(name), Rows: make([]Row, len(t.Rows))}
	w := t.Schema.Len() + 1
	slab := make([]Value, len(t.Rows)*w)
	e.forMorsels(len(t.Rows), func(m, lo, hi int) {
		// Morsels own disjoint row ranges, so they write disjoint slab
		// spans.
		for i := lo; i < hi; i++ {
			row := t.Rows[i]
			nr := slab[i*w : i*w : (i+1)*w]
			nr = append(nr, row...)
			nr = append(nr, fn(row))
			out.Rows[i] = nr
		}
	})
	return out
}
