package algebra

// Pool is a shared morsel scheduler: one fixed set of worker goroutines
// multiplexed across the task fan-outs of many concurrent plan
// executions. Attaching a Pool to an Exec (WithPool) reroutes the
// goroutine spawns of forTasks/forMorsels/forParts into the pool; the
// work decomposition itself — morsel boundaries, partition count, task
// order — still derives only from the Exec's configured worker count, so
// results stay bit-identical whether tasks run on pool workers, on the
// submitter, or sequentially.
//
// Scheduling is round-robin over the open jobs at task granularity: each
// worker claims one task from the next job in rotation, so a query with
// many tasks cannot starve a query with few (per-query fairness at the
// granularity of a single morsel). Submitters always help drain their
// own job, which makes Run deadlock-free under any load: even with every
// pool worker busy elsewhere — or a pool of zero workers — the
// submitting goroutine completes its job alone.

import (
	"sync"
	"sync/atomic"
)

// poolJob is one fan-out submitted to the pool: n tasks claimed through
// an atomic cursor, completion signalled when all n are done.
type poolJob struct {
	n    int
	fn   func(i int)
	next atomic.Int64 // task claim cursor
	done atomic.Int64 // completed tasks; closing fin at done==n gives
	// the waiter a happens-before edge on everything every task wrote
	fin chan struct{}
}

// runOne claims and runs one task; it reports whether a task was left to
// claim. The goroutine that completes the last task closes fin.
func (j *poolJob) runOne() bool {
	t := int(j.next.Add(1)) - 1
	if t >= j.n {
		return false
	}
	j.fn(t)
	if int(j.done.Add(1)) == j.n {
		close(j.fin)
	}
	return true
}

// exhausted reports that every task has been claimed (not necessarily
// finished) — the job no longer needs scheduling.
func (j *poolJob) exhausted() bool { return int(j.next.Load()) >= j.n }

// Pool multiplexes a fixed worker set across concurrent jobs. The zero
// value is not usable; construct with NewPool. A nil *Pool attached to
// an Exec means "no pool" (plain goroutine fan-out).
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*poolJob // open jobs, scheduled round-robin
	rr     int        // rotation cursor into jobs
	closed bool
	wg     sync.WaitGroup

	workers int
	// counters (atomic): lifetime totals for reports and tests.
	jobCount    atomic.Int64
	workerTasks atomic.Int64 // tasks executed by pool workers
	helperTasks atomic.Int64 // tasks executed by submitting goroutines
	maxQueued   atomic.Int64 // high-water mark of concurrently open jobs
}

// NewPool starts a pool with the given number of worker goroutines
// (0 or negative is allowed: jobs are then drained entirely by their
// submitters, which is still correct, just not concurrent).
func NewPool(workers int) *Pool {
	if workers < 0 {
		workers = 0
	}
	p := &Pool{workers: workers}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.workerLoop()
	}
	return p
}

// Workers returns the pool's worker-goroutine count.
func (p *Pool) Workers() int { return p.workers }

// pick returns the next job in round-robin rotation, blocking while no
// job is open; it returns nil once the pool is closed and drained.
// Exhausted jobs are pruned in passing (their remaining tasks are in
// flight on other goroutines; completion is signalled through fin, not
// through the job list).
func (p *Pool) pick() *poolJob {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		kept := p.jobs[:0]
		for _, j := range p.jobs {
			if !j.exhausted() {
				kept = append(kept, j)
			}
		}
		p.jobs = kept
		if len(p.jobs) > 0 {
			p.rr++
			return p.jobs[p.rr%len(p.jobs)]
		}
		if p.closed {
			return nil
		}
		p.cond.Wait()
	}
}

func (p *Pool) workerLoop() {
	defer p.wg.Done()
	for {
		j := p.pick()
		if j == nil {
			return
		}
		// One task per pick: the rotation in pick is what gives
		// concurrent queries morsel-granular fairness.
		if j.runOne() {
			p.workerTasks.Add(1)
		}
	}
}

// Run executes fn(i) for every i in [0, n), distributing tasks over the
// pool's workers, and returns when all n tasks have finished. The
// submitting goroutine participates in draining its own job, so Run
// never deadlocks regardless of pool load; on a closed pool it simply
// runs the whole job inline.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	j := &poolJob{n: n, fn: fn, fin: make(chan struct{})}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.jobs = append(p.jobs, j)
	if depth := int64(len(p.jobs)); depth > p.maxQueued.Load() {
		p.maxQueued.Store(depth) // exact: updated under mu
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	p.jobCount.Add(1)

	// Help drain our own job (never other jobs: a query's submitter
	// should not add latency to itself by running strangers' morsels).
	for j.runOne() {
		p.helperTasks.Add(1)
	}
	<-j.fin
}

// Close shuts the pool down: workers exit once the open jobs are
// drained, and subsequent Run calls execute inline on the caller.
// Close blocks until every worker goroutine has exited.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// PoolStats is a snapshot of the pool's lifetime counters.
type PoolStats struct {
	Jobs        int64 // fan-outs submitted
	WorkerTasks int64 // tasks executed by pool workers
	HelperTasks int64 // tasks executed by submitting goroutines
	// MaxQueued is the high-water mark of concurrently open jobs — how
	// many queries' fan-outs the round-robin rotation was multiplexing at
	// the busiest moment (the per-query-fairness pressure gauge).
	MaxQueued int64
}

// Stats returns the pool's lifetime counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Jobs:        p.jobCount.Load(),
		WorkerTasks: p.workerTasks.Load(),
		HelperTasks: p.helperTasks.Load(),
		MaxQueued:   p.maxQueued.Load(),
	}
}

// QueueDepth returns the number of currently open jobs — the live gauge
// behind the metrics endpoint (MaxQueued is the lifetime high-water
// mark). Exhausted-but-unpruned jobs count until a worker prunes them;
// the value is a scheduling snapshot, not a promise.
func (p *Pool) QueueDepth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.jobs)
}
