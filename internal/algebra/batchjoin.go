package algebra

import (
	"math"
	"sync"
	"sync/atomic"

	"eagg/internal/aggfn"
)

// Batch-at-a-time hash joins over columnar tables. The operators mirror
// the row runtime's hashjoin.go/parallel.go exactly — same build order,
// same probe order, same NULL-key semantics — but work on ColTables:
// keys are encoded column-major a batch at a time (batchkey.go), probes
// accumulate (left, right) physical index pairs instead of copying rows,
// and the output columns are assembled by one typed gather per column.
// Semijoin and antijoin never copy anything: their output is a selection
// vector over the shared input columns.
//
// All indices flowing through here are physical row numbers. Because
// selection vectors are monotone (vector.go), physical order equals
// logical order, so posting lists accumulated in logical scan order, the
// morsel-ordered chunk concatenation, and the full-outer right tail all
// reproduce the row runtime's output sequence bit for bit.

// batchScratch bundles the per-batch scratch buffers (physical row list,
// key encodings, resolved posting lists) one batch driver needs. Pooled:
// an operator borrows one set for its whole scan instead of growing fresh
// buffers, so steady-state batch iteration allocates nothing.
type batchScratch struct {
	kb    keyBatch
	rows  []int32
	posts [][]int32
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// batchKeys iterates logical rows [lo, hi) of t in batches of bs,
// encoding the join (join=true) or grouping key of every batch over the
// slot columns and handing (physical rows, encoded keys) to fn. Key and
// row buffers come from the scratch pool and are reused across batches;
// fn must not retain them.
func batchKeys(t *ColTable, lo, hi, bs int, slots []int, join bool, fn func(rows []int32, kb *keyBatch)) {
	sc := batchScratchPool.Get().(*batchScratch)
	for b := lo; b < hi; b += bs {
		end := min(b+bs, hi)
		sc.rows = t.physBatch(b, end, sc.rows)
		if join {
			sc.kb.encodeJoin(t, sc.rows, slots)
		} else {
			sc.kb.encodeGroup(t, sc.rows, slots)
		}
		fn(sc.rows, &sc.kb)
	}
	batchScratchPool.Put(sc)
}

// batchBuild is a hashed build side over the flat tables of
// hashtable.go. Joins on a single int column — the overwhelmingly common
// equi-join shape — skip byte encoding entirely and hash the int64
// payloads themselves; everything else uses the canonical key encoding.
// Posting lists are identical either way: same keys, same build-input
// order (integral floats probe the int64 table through the same
// normalization the encoding applies). bloom, when non-nil, pre-filters
// probe keys by their cached hashes: negatives are exact (an absent key
// resolves to nil postings either way) and false positives just fall
// through to the table probe, so the filter never changes results.
type batchBuild struct {
	it    *intTable   // single-ColInt fast path (sequential)
	bt    *bytesTable // encoded keys, sequential
	pt    *partTable  // encoded keys, parallel
	bloom *bloomFilter
}

// lookHashed resolves an encoded key under its precomputed hash on the
// general paths.
func (b *batchBuild) lookHashed(h uint64, key []byte) []int32 {
	if b.bt != nil {
		return b.bt.lookupHashed(h, key)
	}
	return b.pt.lookupHashed(h, key)
}

// batchBuildSide hashes the build input's join keys: the columnar
// buildSide (sequential) or buildPartitioned (parallel). Posting lists
// are identical to the row runtime's up to physical renumbering under a
// selection — same keys, same order. probeCard is the probe input's
// cardinality, used only to gate the optional Bloom filter; pass -1 to
// disable it (operators that emit every probe row regardless).
func (e *Exec) batchBuildSide(r *ColTable, rk []int, par bool, probeCard int) *batchBuild {
	bs := e.batchSize()
	hs := e.hashStats()
	n := r.Card()
	if !par && len(rk) == 1 && rk[0] >= 0 && r.Cols[rk[0]].Kind == ColInt {
		col := &r.Cols[rk[0]]
		t := newIntTable(n)
		for li := 0; li < n; li++ {
			i := r.phys(li)
			if col.IsNull(int(i)) {
				continue // NULL keys match nothing
			}
			t.insert(col.Ints[i], i)
		}
		t.finalize()
		t.record(hs)
		b := &batchBuild{it: t}
		if f := buildBloom(t.n, probeCard); f != nil {
			t.fillBloom(f)
			b.bloom = f
		}
		return b
	}
	if !par {
		t := newBytesTable(n)
		batchKeys(r, 0, n, bs, rk, true, func(rows []int32, kb *keyBatch) {
			for k, i := range rows {
				if kb.dead[k] {
					continue
				}
				t.insert(hashKey(kb.keys[k]), kb.keys[k], i)
			}
		})
		t.finalize()
		t.record(hs)
		b := &batchBuild{bt: t}
		if f := buildBloom(t.n, probeCard); f != nil {
			t.fillBloom(f)
			b.bloom = f
		}
		return b
	}
	scatters := make([]*morselScatter, e.morselCount(n))
	e.forMorsels(n, func(m, lo, hi int) {
		s := &morselScatter{}
		batchKeys(r, lo, hi, bs, rk, true, func(rows []int32, kb *keyBatch) {
			for k, i := range rows {
				if kb.dead[k] {
					continue
				}
				off := len(s.arena)
				s.arena = append(s.arena, kb.keys[k]...)
				key := s.arena[off:]
				h := hashKey(key)
				p := h & (partitions - 1)
				s.buckets[p] = append(s.buckets[p], scatterEntry{row: i, off: int32(off), len: int32(len(key)), hash: h})
			}
		})
		scatters[m] = s
	})
	pt := e.buildParts(scatters)
	b := &batchBuild{pt: pt}
	keys := 0
	for _, t := range pt.parts {
		if t != nil {
			keys += t.n
		}
	}
	if f := buildBloom(keys, probeCard); f != nil {
		// The per-partition tables cache every distinct key's hash, so
		// the filter fills from them in one sequential pass — no racing
		// bit-sets inside the partition fan-out.
		for _, t := range pt.parts {
			if t != nil {
				t.fillBloom(f)
			}
		}
		b.bloom = f
	}
	return b
}

// probePostings iterates probe rows [lo, hi) of l in batches, resolving
// every row's build-side posting list — nil both for dead rows (NULL/NaN
// key components match nothing) and for keys without a partner, which
// every probe operator treats identically. On the int fast path the
// resolution is one column-kind dispatch per batch over the raw payloads;
// otherwise keys are encoded and looked up. posts is scratch; fn must not
// retain it.
func (e *Exec) probePostings(l *ColTable, lk []int, b *batchBuild, lo, hi int, fn func(rows []int32, posts [][]int32)) {
	bs := e.batchSize()
	bloomChecks, bloomPasses := 0, 0
	defer func() { e.hashStats().recordBloom(bloomChecks, bloomPasses) }()
	if b.it == nil {
		sc := batchScratchPool.Get().(*batchScratch)
		posts := sc.posts
		batchKeys(l, lo, hi, bs, lk, true, func(rows []int32, kb *keyBatch) {
			if cap(posts) < len(rows) {
				posts = make([][]int32, len(rows))
			}
			posts = posts[:len(rows)]
			for k := range rows {
				if kb.dead[k] {
					posts[k] = nil
					continue
				}
				h := hashKey(kb.keys[k])
				if b.bloom != nil {
					bloomChecks++
					if !b.bloom.mayContain(h) {
						posts[k] = nil
						continue
					}
					bloomPasses++
				}
				posts[k] = b.lookHashed(h, kb.keys[k])
			}
			fn(rows, posts)
		})
		sc.posts = posts
		batchScratchPool.Put(sc)
		return
	}
	// Single-int build: the probe key is the raw int64 payload, one
	// column-kind dispatch per batch.
	look := func(v int64) []int32 {
		h := hashInt64(v)
		if b.bloom != nil {
			bloomChecks++
			if !b.bloom.mayContain(h) {
				return nil
			}
			bloomPasses++
		}
		return b.it.lookupHashed(h, v)
	}
	sc := batchScratchPool.Get().(*batchScratch)
	slot := lk[0]
	var col *Vector
	if slot >= 0 {
		col = &l.Cols[slot]
	}
	for bb := lo; bb < hi; bb += bs {
		end := min(bb+bs, hi)
		sc.rows = l.physBatch(bb, end, sc.rows)
		rows := sc.rows
		if cap(sc.posts) < len(rows) {
			sc.posts = make([][]int32, len(rows))
		}
		posts := sc.posts[:len(rows)]
		switch {
		case col == nil: // absent attribute: NULL key, matches nothing
			for k := range rows {
				posts[k] = nil
			}
		case col.Kind == ColInt:
			for k, i := range rows {
				if col.IsNull(int(i)) {
					posts[k] = nil
				} else {
					posts[k] = look(col.Ints[i])
				}
			}
		case col.Kind == ColFloat:
			for k, i := range rows {
				posts[k] = nil
				if col.IsNull(int(i)) {
					continue
				}
				// Integral floats equal their int64 under join
				// normalization; NaN and fractional floats fail the
				// round-trip check and match nothing.
				f := col.Floats[i]
				if n := int64(f); float64(n) == f {
					posts[k] = look(n)
				}
			}
		case col.Kind == ColStr:
			for k := range rows {
				posts[k] = nil // strings never equal numeric keys
			}
		default: // ColMixed
			for k, i := range rows {
				posts[k] = nil
				switch v := col.Vals[i]; v.Kind {
				case KindInt:
					posts[k] = look(v.I)
				case KindFloat:
					if math.IsNaN(v.F) {
						continue
					}
					if n := int64(v.F); float64(n) == v.F {
						posts[k] = look(n)
					}
				}
			}
		}
		fn(rows, posts)
	}
	batchScratchPool.Put(sc)
}

// idxPairs is one morsel's accumulated (left, right) output pairs.
type idxPairs struct {
	li, ri []int32
}

// concatPairs concatenates per-morsel pair chunks in morsel order.
func concatPairs(chunks []idxPairs) (li, ri []int32) {
	total := 0
	for _, c := range chunks {
		total += len(c.li)
	}
	li = make([]int32, 0, total)
	ri = make([]int32, 0, total)
	for _, c := range chunks {
		li = append(li, c.li...)
		ri = append(ri, c.ri...)
	}
	return li, ri
}

// gatherConcat assembles the concatenated join output: left columns
// gathered by lidx, right columns by ridx, one typed gather per column
// (fanned out over the task scheduler when par). Index -1 reads the
// corresponding pad value; a nil pad row means NULL padding.
func (e *Exec) gatherConcat(l, r *ColTable, lidx, ridx []int32, lpad, rpad Row, par bool) *ColTable {
	out := &ColTable{Schema: l.Schema.Concat(r.Schema), N: len(lidx)}
	lw := l.Schema.Len()
	out.Cols = make([]Vector, lw+r.Schema.Len())
	task := func(ci int) {
		if ci < lw {
			pad := Null
			if lpad != nil {
				pad = lpad[ci]
			}
			out.Cols[ci] = gatherColPad(&l.Cols[ci], lidx, pad)
		} else {
			pad := Null
			if rpad != nil {
				pad = rpad[ci-lw]
			}
			out.Cols[ci] = gatherColPad(&r.Cols[ci-lw], ridx, pad)
		}
	}
	if par {
		e.forTasks(len(out.Cols), task)
	} else {
		for ci := range out.Cols {
			task(ci)
		}
	}
	return out
}

// selTable wraps the shared input columns under a selection vector; a nil
// sel (no surviving rows) becomes the empty selection, not "all rows".
func selTable(t *ColTable, sel []int32) *ColTable {
	if sel == nil {
		sel = []int32{}
	}
	return &ColTable{Schema: t.Schema, Cols: t.Cols, N: t.N, Sel: sel}
}

// BatchHashJoin is the inner equi-join l ⋈ r on the batch runtime.
func (e *Exec) BatchHashJoin(l, r *ColTable, lk, rk []int) *ColTable {
	par := e.parFor(max(l.Card(), r.Card()))
	bld := e.batchBuildSide(r, rk, par, l.Card())
	n := l.Card()
	nm := 1
	if par {
		nm = e.morselCount(n)
	}
	chunks := make([]idxPairs, nm)
	work := func(m, lo, hi int) {
		var p idxPairs
		e.probePostings(l, lk, bld, lo, hi, func(rows []int32, posts [][]int32) {
			for k, i := range rows {
				for _, ri := range posts[k] {
					p.li = append(p.li, i)
					p.ri = append(p.ri, ri)
				}
			}
		})
		chunks[m] = p
	}
	if par {
		e.forMorsels(n, work)
	} else {
		work(0, 0, n)
	}
	lidx, ridx := concatPairs(chunks)
	return e.gatherConcat(l, r, lidx, ridx, nil, nil, par)
}

// BatchHashSemiJoin is the left semijoin l ⋉ r: a pure selection-vector
// operation, zero row copies.
func (e *Exec) BatchHashSemiJoin(l, r *ColTable, lk, rk []int) *ColTable {
	par := e.parFor(max(l.Card(), r.Card()))
	bld := e.batchBuildSide(r, rk, par, l.Card())
	n := l.Card()
	nm := 1
	if par {
		nm = e.morselCount(n)
	}
	chunks := make([][]int32, nm)
	work := func(m, lo, hi int) {
		var sel []int32
		e.probePostings(l, lk, bld, lo, hi, func(rows []int32, posts [][]int32) {
			for k, i := range rows {
				if len(posts[k]) > 0 {
					sel = append(sel, i)
				}
			}
		})
		chunks[m] = sel
	}
	if par {
		e.forMorsels(n, work)
	} else {
		work(0, 0, n)
	}
	var sel []int32
	for _, c := range chunks {
		sel = append(sel, c...)
	}
	return selTable(l, sel)
}

// BatchHashAntiJoin is the left antijoin l ▷ r: a selection keeping rows
// without a partner (NULL-key rows included — strict equality matches
// them to nothing).
func (e *Exec) BatchHashAntiJoin(l, r *ColTable, lk, rk []int) *ColTable {
	par := e.parFor(max(l.Card(), r.Card()))
	bld := e.batchBuildSide(r, rk, par, l.Card())
	n := l.Card()
	nm := 1
	if par {
		nm = e.morselCount(n)
	}
	chunks := make([][]int32, nm)
	work := func(m, lo, hi int) {
		var sel []int32
		e.probePostings(l, lk, bld, lo, hi, func(rows []int32, posts [][]int32) {
			for k, i := range rows {
				// Dead rows resolve to nil postings, so NULL-key rows are
				// kept — strict equality matches them to nothing.
				if len(posts[k]) == 0 {
					sel = append(sel, i)
				}
			}
		})
		chunks[m] = sel
	}
	if par {
		e.forMorsels(n, work)
	} else {
		work(0, 0, n)
	}
	var sel []int32
	for _, c := range chunks {
		sel = append(sel, c...)
	}
	return selTable(l, sel)
}

// BatchHashLeftOuter is the left outerjoin on the batch runtime. pad must
// be a full row over r's schema.
func (e *Exec) BatchHashLeftOuter(l, r *ColTable, lk, rk []int, pad Row) *ColTable {
	par := e.parFor(max(l.Card(), r.Card()))
	bld := e.batchBuildSide(r, rk, par, -1)
	n := l.Card()
	nm := 1
	if par {
		nm = e.morselCount(n)
	}
	chunks := make([]idxPairs, nm)
	work := func(m, lo, hi int) {
		var p idxPairs
		e.probePostings(l, lk, bld, lo, hi, func(rows []int32, posts [][]int32) {
			for k, i := range rows {
				if len(posts[k]) == 0 {
					p.li = append(p.li, i)
					p.ri = append(p.ri, -1)
					continue
				}
				for _, ri := range posts[k] {
					p.li = append(p.li, i)
					p.ri = append(p.ri, ri)
				}
			}
		})
		chunks[m] = p
	}
	if par {
		e.forMorsels(n, work)
	} else {
		work(0, 0, n)
	}
	lidx, ridx := concatPairs(chunks)
	return e.gatherConcat(l, r, lidx, ridx, nil, pad, par)
}

// BatchHashFullOuter is the full outerjoin on the batch runtime. Matched
// build rows are marked through atomics (false→true only, so concurrent
// marking is order-independent); the unmatched right rows are appended
// after the probe barrier in build-input order.
func (e *Exec) BatchHashFullOuter(l, r *ColTable, lk, rk []int, lpad, rpad Row) *ColTable {
	par := e.parFor(max(l.Card(), r.Card()))
	bld := e.batchBuildSide(r, rk, par, -1)
	n := l.Card()
	nm := 1
	if par {
		nm = e.morselCount(n)
	}
	matched := make([]atomic.Bool, r.N)
	chunks := make([]idxPairs, nm)
	work := func(m, lo, hi int) {
		var p idxPairs
		e.probePostings(l, lk, bld, lo, hi, func(rows []int32, posts [][]int32) {
			for k, i := range rows {
				if len(posts[k]) == 0 {
					p.li = append(p.li, i)
					p.ri = append(p.ri, -1)
					continue
				}
				for _, ri := range posts[k] {
					matched[ri].Store(true)
					p.li = append(p.li, i)
					p.ri = append(p.ri, ri)
				}
			}
		})
		chunks[m] = p
	}
	if par {
		e.forMorsels(n, work)
	} else {
		work(0, 0, n)
	}
	lidx, ridx := concatPairs(chunks)
	for j := 0; j < r.Card(); j++ {
		ri := r.phys(j)
		if !matched[ri].Load() {
			lidx = append(lidx, -1)
			ridx = append(ridx, ri)
		}
	}
	return e.gatherConcat(l, r, lidx, ridx, lpad, rpad, par)
}

// BatchHashGroupJoin is the groupjoin on the batch runtime: every left
// row is extended by the vector's aggregates over its partner bucket,
// folded in build-input order through the shared accumulator core
// (updateVals), so results equal the row operator's bit for bit.
func (e *Exec) BatchHashGroupJoin(l, r *ColTable, lk, rk []int, f aggfn.Vector) *ColTable {
	bound := BindVector(f, r.Schema)
	names := append(append([]string(nil), l.Schema.Names()...), f.Outs()...)
	par := e.parFor(max(l.Card(), r.Card()))
	bld := e.batchBuildSide(r, rk, par, -1)
	lc := l.Compact() // output appends dense agg columns alongside l's
	n := lc.Card()
	aggRows := make([][]Value, n)
	work := func(m, lo, hi int) {
		var scratch []byte
		cells := make([]aggCell, len(bound))
		e.probePostings(lc, lk, bld, lo, hi, func(rows []int32, posts [][]int32) {
			for k, i := range rows {
				for c := range cells {
					cells[c] = aggCell{}
				}
				for _, ri := range posts[k] {
					for c := range bound {
						a := &bound[c]
						cells[c].updateVals(a, colValue(r, a.Arg, ri), colValue(r, a.Arg2, ri), colValue(r, a.Wgt, ri), &scratch)
					}
				}
				vals := make([]Value, len(bound))
				for c := range bound {
					vals[c] = cells[c].final(&bound[c])
				}
				aggRows[i] = vals // lc is dense: physical row == logical row
			}
		})
	}
	if par {
		e.forMorsels(n, work)
	} else {
		work(0, 0, n)
	}
	out := &ColTable{Schema: NewSchema(names), N: n}
	out.Cols = make([]Vector, len(names))
	copy(out.Cols, lc.Cols)
	for c := range bound {
		var b colBuilder
		for _, vals := range aggRows {
			b.append(vals[c])
		}
		out.Cols[lc.Schema.Len()+c] = b.finish()
	}
	return out
}
