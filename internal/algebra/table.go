package algebra

import "sync/atomic"

// Row is a flat tuple: one Value per schema slot. The zero-length row is
// valid for the empty schema.
type Row []Value

// get reads a resolved slot; slot -1 (unknown attribute) reads as NULL,
// mirroring Tuple.Get on the map runtime.
func (r Row) get(slot int) Value {
	if slot < 0 {
		return Null
	}
	return r[slot]
}

// Table is the slot-based counterpart of Rel: a bag of flat rows over a
// shared Schema. It is the representation the execution engine runs on;
// Rel remains the map-based construction and reference surface.
type Table struct {
	Schema *Schema
	Rows   []Row

	// col caches the columnar form built by Columnar. Tables are shared
	// read-only between operators and sessions, so the cache is an atomic
	// pointer: racing builders compute identical values and the duplicate
	// work is benign.
	col atomic.Pointer[ColTable]
}

// NewTable returns an empty table over the schema.
func NewTable(s *Schema) *Table { return &Table{Schema: s} }

// Card returns the number of rows.
func (t *Table) Card() int { return len(t.Rows) }

// TabSchema returns the schema — the runtime-neutral accessor shared with
// ColTable.
func (t *Table) TabSchema() *Schema { return t.Schema }

// Columnar returns the columnar form of the table, converting on first
// use and caching the result (base tables are scanned by every query of a
// session, so the conversion amortizes across the workload).
func (t *Table) Columnar() *ColTable {
	if c := t.col.Load(); c != nil {
		return c
	}
	c := ColTableOf(t)
	t.col.Store(c)
	return c
}

// TableOf converts a map-tuple relation into a slot-based table. Absent
// attributes become explicit NULLs.
func TableOf(r *Rel) *Table {
	s := NewSchema(r.Attrs)
	t := &Table{Schema: s, Rows: make([]Row, len(r.Tuples))}
	w := len(r.Attrs)
	slab := make([]Value, len(r.Tuples)*w)
	for i, tu := range r.Tuples {
		row := slab[i*w : (i+1)*w : (i+1)*w]
		for j, a := range r.Attrs {
			row[j] = tu.Get(a)
		}
		t.Rows[i] = row
	}
	return t
}

// Rel converts the table back into a map-tuple relation (the boundary
// representation used by tests and result comparison).
func (t *Table) Rel() *Rel {
	out := &Rel{Attrs: append([]string(nil), t.Schema.Names()...)}
	out.Tuples = make([]Tuple, len(t.Rows))
	for i, row := range t.Rows {
		tu := make(Tuple, len(row))
		for j, v := range row {
			tu[t.Schema.Name(j)] = v
		}
		out.Tuples[i] = tu
	}
	return out
}

// rowArena hands out output rows sliced from chunked backing slabs, so
// operators with data-dependent output cardinalities (join probes) pay
// one allocation per chunk instead of one per row. Rows are capped
// slices, so appending to one can never clobber its neighbor. Arenas are
// single-owner (one per operator or per probe morsel) and never shared
// across goroutines.
type rowArena struct {
	slab []Value
	w    int // row width
}

// arenaChunkRows is how many rows one backing slab holds.
const arenaChunkRows = 256

func newRowArena(w int) *rowArena { return &rowArena{w: w} }

// alloc returns a fresh zeroed row of the arena's width.
func (a *rowArena) alloc() Row {
	if len(a.slab) < a.w {
		a.slab = make([]Value, arenaChunkRows*a.w)
	}
	r := a.slab[:a.w:a.w]
	a.slab = a.slab[a.w:]
	return r
}

// concat builds l ◦ r in arena storage. len(l)+len(r) must equal the
// arena width.
func (a *rowArena) concat(l, r Row) Row {
	out := a.alloc()
	copy(out, l)
	copy(out[len(l):], r)
	return out
}

// concatRow builds l ◦ r into a fresh row sized for the concatenated
// schema (the arena-less form for one-off callers).
func concatRow(l, r Row) Row {
	out := make(Row, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// ExtendTable appends one computed column: every row is extended by
// fn(row). Rows are copied into one backing slab (not mutated in place).
func ExtendTable(t *Table, name string, fn func(Row) Value) *Table {
	out := &Table{Schema: t.Schema.Extend(name), Rows: make([]Row, len(t.Rows))}
	w := t.Schema.Len() + 1
	slab := make([]Value, len(t.Rows)*w)
	for i, row := range t.Rows {
		nr := slab[i*w : i*w : (i+1)*w]
		nr = append(nr, row...)
		nr = append(nr, fn(row))
		out.Rows[i] = nr
	}
	return out
}

// ProjectTable returns the duplicate-preserving projection onto the given
// slots under a new schema built from their names.
func ProjectTable(t *Table, slots []int) *Table {
	names := make([]string, len(slots))
	for i, s := range slots {
		names[i] = t.Schema.Name(s)
	}
	out := &Table{Schema: NewSchema(names), Rows: make([]Row, len(t.Rows))}
	w := len(slots)
	slab := make([]Value, len(t.Rows)*w)
	for i, row := range t.Rows {
		nr := slab[i*w : (i+1)*w : (i+1)*w]
		for j, s := range slots {
			nr[j] = row[s]
		}
		out.Rows[i] = nr
	}
	return out
}
