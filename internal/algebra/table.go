package algebra

// Row is a flat tuple: one Value per schema slot. The zero-length row is
// valid for the empty schema.
type Row []Value

// get reads a resolved slot; slot -1 (unknown attribute) reads as NULL,
// mirroring Tuple.Get on the map runtime.
func (r Row) get(slot int) Value {
	if slot < 0 {
		return Null
	}
	return r[slot]
}

// Table is the slot-based counterpart of Rel: a bag of flat rows over a
// shared Schema. It is the representation the execution engine runs on;
// Rel remains the map-based construction and reference surface.
type Table struct {
	Schema *Schema
	Rows   []Row
}

// NewTable returns an empty table over the schema.
func NewTable(s *Schema) *Table { return &Table{Schema: s} }

// Card returns the number of rows.
func (t *Table) Card() int { return len(t.Rows) }

// TableOf converts a map-tuple relation into a slot-based table. Absent
// attributes become explicit NULLs.
func TableOf(r *Rel) *Table {
	s := NewSchema(r.Attrs)
	t := &Table{Schema: s, Rows: make([]Row, len(r.Tuples))}
	for i, tu := range r.Tuples {
		row := make(Row, len(r.Attrs))
		for j, a := range r.Attrs {
			row[j] = tu.Get(a)
		}
		t.Rows[i] = row
	}
	return t
}

// Rel converts the table back into a map-tuple relation (the boundary
// representation used by tests and result comparison).
func (t *Table) Rel() *Rel {
	out := &Rel{Attrs: append([]string(nil), t.Schema.Names()...)}
	out.Tuples = make([]Tuple, len(t.Rows))
	for i, row := range t.Rows {
		tu := make(Tuple, len(row))
		for j, v := range row {
			tu[t.Schema.Name(j)] = v
		}
		out.Tuples[i] = tu
	}
	return out
}

// concatRow builds l ◦ r into a fresh row sized for the concatenated
// schema.
func concatRow(l, r Row) Row {
	out := make(Row, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}

// ExtendTable appends one computed column: every row is extended by
// fn(row). Rows are copied; the input table is not mutated.
func ExtendTable(t *Table, name string, fn func(Row) Value) *Table {
	out := &Table{Schema: t.Schema.Extend(name), Rows: make([]Row, len(t.Rows))}
	for i, row := range t.Rows {
		nr := make(Row, 0, len(row)+1)
		nr = append(nr, row...)
		nr = append(nr, fn(row))
		out.Rows[i] = nr
	}
	return out
}

// ProjectTable returns the duplicate-preserving projection onto the given
// slots under a new schema built from their names.
func ProjectTable(t *Table, slots []int) *Table {
	names := make([]string, len(slots))
	for i, s := range slots {
		names[i] = t.Schema.Name(s)
	}
	out := &Table{Schema: NewSchema(names), Rows: make([]Row, len(t.Rows))}
	for i, row := range t.Rows {
		nr := make(Row, len(slots))
		for j, s := range slots {
			nr[j] = row[s]
		}
		out.Rows[i] = nr
	}
	return out
}
