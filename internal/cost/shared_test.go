package cost

import (
	"sync"
	"testing"

	"eagg/internal/bitset"
)

func sharedKey(rel int) CardKey {
	return CardKey{Rels: bitset.SingleV(rel)}
}

// TestSharedOverlayEpochDiscipline pins the epoch semantics the plan
// cache keys on: publishing new measurements advances the epoch exactly
// once per actual change, republishing identical measurements never
// advances it, and snapshots stay frozen at their version.
func TestSharedOverlayEpochDiscipline(t *testing.T) {
	s := NewSharedOverlay()
	if s.Epoch() != 0 || s.Len() != 0 {
		t.Fatalf("fresh overlay: epoch=%d len=%d, want 0/0", s.Epoch(), s.Len())
	}

	snap0, e0 := s.Snapshot()
	prof := NewFeedbackOverlay()
	prof.Set(sharedKey(1), 100)
	prof.Set(sharedKey(2), 7)

	epoch, changed := s.Publish(prof)
	if !changed || epoch != 1 {
		t.Fatalf("first publish: epoch=%d changed=%v, want 1/true", epoch, changed)
	}
	// Idempotent republish: same measurements, no epoch movement.
	epoch, changed = s.Publish(prof)
	if changed || epoch != 1 {
		t.Fatalf("republish: epoch=%d changed=%v, want 1/false", epoch, changed)
	}
	// Empty and nil profiles are no-ops.
	if _, changed := s.Publish(NewFeedbackOverlay()); changed {
		t.Fatal("empty profile advanced the overlay")
	}
	if _, changed := s.Publish(nil); changed {
		t.Fatal("nil profile advanced the overlay")
	}
	// A changed measurement advances the epoch and shows in new
	// snapshots only.
	prof2 := NewFeedbackOverlay()
	prof2.Set(sharedKey(1), 250)
	epoch, changed = s.Publish(prof2)
	if !changed || epoch != 2 {
		t.Fatalf("changed publish: epoch=%d changed=%v, want 2/true", epoch, changed)
	}
	if e0 != 0 || snap0.Len() != 0 {
		t.Fatalf("old snapshot mutated: epoch=%d len=%d", e0, snap0.Len())
	}
	snap2, e2 := s.Snapshot()
	if e2 != 2 {
		t.Fatalf("snapshot epoch %d, want 2", e2)
	}
	if c, ok := snap2.Lookup(sharedKey(1)); !ok || c != 250 {
		t.Fatalf("snapshot missed the updated measurement: %v %v", c, ok)
	}
	if c, ok := snap2.Lookup(sharedKey(2)); !ok || c != 7 {
		t.Fatalf("snapshot lost the earlier measurement: %v %v", c, ok)
	}
}

// TestSharedOverlayConcurrentPublish races many publishers and readers:
// every published key must land, snapshots must never tear, and the
// final epoch must not exceed the number of actual changes.
func TestSharedOverlayConcurrentPublish(t *testing.T) {
	s := NewSharedOverlay()
	const writers, keys = 8, 32
	var wg sync.WaitGroup
	wg.Add(writers * 2)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				prof := NewFeedbackOverlay()
				prof.Set(CardKey{Rels: bitset.SingleV(w % 8), Group: bitset.SingleV(k % 16)}, float64(100+k))
				s.Publish(prof)
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				snap, epoch := s.Snapshot()
				// Bounds: at most 8*16 distinct keys exist, and the
				// epoch cannot exceed the total publish count (each
				// writer publishes `keys` profiles).
				if snap.Len() > 8*16 || epoch > writers*keys {
					t.Errorf("implausible snapshot: len=%d epoch=%d", snap.Len(), epoch)
				}
			}
		}()
	}
	wg.Wait()
	snap, _ := s.Snapshot()
	for w := 0; w < 8; w++ {
		for k := 0; k < 16; k++ {
			key := CardKey{Rels: bitset.SingleV(w), Group: bitset.SingleV(k)}
			if _, ok := snap.Lookup(key); !ok {
				t.Fatalf("published key %v missing from final state", key)
			}
		}
	}
}
