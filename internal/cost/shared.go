// SharedOverlay: the cross-query accumulator of measured cardinalities.
// Where FeedbackOverlay serves one single-threaded feedback loop, the
// shared overlay is written by every query a service engine executes and
// read by every optimization it runs — concurrently. The discipline is
// copy-on-write with an epoch counter:
//
//   - Readers take an immutable Snapshot: a plain *FeedbackOverlay that
//     is never mutated after publication. An optimization installs the
//     snapshot as its CardSource and runs against frozen statistics, so
//     the parallel DP driver's workers-1≡8 bit-identity contract holds
//     unchanged — no measurement published mid-optimization can leak in.
//   - Writers Publish a harvested profile: the current version is copied,
//     the profile merged in, and the new version installed atomically.
//     Publication is idempotent — a profile that changes no measurement
//     leaves the version (and its epoch) in place, so a steady-state
//     workload re-measuring the same cardinalities forever does not
//     invalidate plan caches keyed by epoch.
package cost

import (
	"sync"
	"sync/atomic"
)

// overlayVersion is one immutable published state of a SharedOverlay.
type overlayVersion struct {
	epoch   uint64
	overlay *FeedbackOverlay
}

// SharedOverlay accumulates measured cardinalities across queries behind
// a copy-on-write/epoch discipline. The zero value is not usable;
// construct with NewSharedOverlay.
type SharedOverlay struct {
	cur atomic.Pointer[overlayVersion]
	// pub serializes writers; readers never take it.
	pub sync.Mutex
}

// NewSharedOverlay returns an empty shared overlay at epoch 0.
func NewSharedOverlay() *SharedOverlay {
	s := &SharedOverlay{}
	s.cur.Store(&overlayVersion{overlay: NewFeedbackOverlay()})
	return s
}

// Snapshot returns the current measurements as an immutable overlay plus
// the epoch it belongs to. The returned overlay is never mutated — it is
// safe to install as core.Options.Stats and share across the parallel
// optimizer's workers for the whole optimization.
func (s *SharedOverlay) Snapshot() (*FeedbackOverlay, uint64) {
	v := s.cur.Load()
	return v.overlay, v.epoch
}

// Epoch returns the current epoch without materializing a snapshot.
func (s *SharedOverlay) Epoch() uint64 {
	return s.cur.Load().epoch
}

// Len returns the number of measured keys in the current version.
func (s *SharedOverlay) Len() int {
	return s.cur.Load().overlay.Len()
}

// Publish merges a harvested profile into the shared state and returns
// the resulting epoch plus whether anything changed. A profile whose
// every measurement already equals the stored value is a no-op: the
// current version stays installed and the epoch does not advance —
// steady-state workloads keep their cached plans. Otherwise the current
// overlay is copied, the profile merged (profile wins on collisions,
// matching FeedbackOverlay.Set), and the copy published under the next
// epoch. Snapshots handed out earlier remain valid and frozen.
func (s *SharedOverlay) Publish(profile *FeedbackOverlay) (epoch uint64, changed bool) {
	if profile == nil || profile.Len() == 0 {
		return s.Epoch(), false
	}
	s.pub.Lock()
	defer s.pub.Unlock()
	v := s.cur.Load()
	changed = false
	for k, card := range profile.m {
		if have, ok := v.overlay.m[k]; !ok || have != card {
			changed = true
			break
		}
	}
	if !changed {
		return v.epoch, false
	}
	next := NewFeedbackOverlay()
	next.Merge(v.overlay)
	next.Merge(profile)
	nv := &overlayVersion{epoch: v.epoch + 1, overlay: next}
	s.cur.Store(nv)
	return nv.epoch, true
}
