package cost

import (
	"math"
	"testing"

	"eagg/internal/bitset"
	"eagg/internal/plan"
	"eagg/internal/query"
)

func twoRelQuery() (*query.Query, *query.Predicate) {
	q := query.New()
	r0 := q.AddRelation("r0", 1000)
	r1 := q.AddRelation("r1", 50)
	a0 := q.AddAttr(r0, "a0", 100)
	g0 := q.AddAttr(r0, "g0", 10)
	b1 := q.AddAttr(r1, "b1", 50)
	q.AddKey(r1, b1)
	_ = g0
	pred := &query.Predicate{Left: []int{a0}, Right: []int{b1}, Selectivity: 1.0 / 50}
	q.Root = &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: r0},
		Right: &query.OpNode{Kind: query.KindScan, Rel: r1},
		Pred:  pred,
	}
	return q, pred
}

func TestScanProps(t *testing.T) {
	q, _ := twoRelQuery()
	e := NewEstimator(q)
	s0 := e.Scan(0)
	if s0.Card != 1000 || s0.Cost != 0 {
		t.Errorf("scan r0: card=%v cost=%v", s0.Card, s0.Cost)
	}
	if s0.DupFree {
		t.Error("r0 has no key: not duplicate-free")
	}
	s1 := e.Scan(1)
	if !s1.DupFree || len(s1.Keys) != 1 {
		t.Error("r1 with key must be duplicate-free")
	}
}

func TestJoinCardAndCost(t *testing.T) {
	q, pred := twoRelQuery()
	e := NewEstimator(q)
	j := e.Op(query.KindJoin, []*query.Predicate{pred}, e.Scan(0), e.Scan(1))
	// 1000 × 50 × 1/50 = 1000.
	if math.Abs(j.Card-1000) > 1e-9 {
		t.Errorf("join card = %v", j.Card)
	}
	if math.Abs(j.Cost-1000) > 1e-9 {
		t.Errorf("join cost = %v (C_out counts the join output)", j.Cost)
	}
}

func TestOuterAndSemiCards(t *testing.T) {
	q, pred := twoRelQuery()
	e := NewEstimator(q)
	l, r := e.Scan(0), e.Scan(1)
	// Per-left-tuple partners: 50 × 1/50 = 1 → no unmatched fill-up.
	lo := e.Op(query.KindLeftOuter, []*query.Predicate{pred}, l, r)
	if math.Abs(lo.Card-1000) > 1e-9 {
		t.Errorf("left outer card = %v", lo.Card)
	}
	fo := e.Op(query.KindFullOuter, []*query.Predicate{pred}, l, r)
	if fo.Card < lo.Card {
		t.Errorf("full outer card %v below left outer %v", fo.Card, lo.Card)
	}
	semi := e.Op(query.KindSemiJoin, []*query.Predicate{pred}, l, r)
	if semi.Card > l.Card {
		t.Errorf("semijoin card %v exceeds left input %v", semi.Card, l.Card)
	}
	anti := e.Op(query.KindAntiJoin, []*query.Predicate{pred}, l, r)
	if anti.Card < 1 {
		t.Errorf("antijoin card %v below the floor", anti.Card)
	}
	gj := e.Op(query.KindGroupJoin, []*query.Predicate{pred}, l, r)
	if gj.Card != l.Card {
		t.Errorf("groupjoin card %v must equal the left input", gj.Card)
	}
}

func TestKeyRules(t *testing.T) {
	q, pred := twoRelQuery()
	e := NewEstimator(q)
	l, r := e.Scan(0), e.Scan(1)
	// A2 = {b1} is a key of r1, A1 is not a key of r0 → join keys = keys(r0) = none.
	j := e.Op(query.KindJoin, []*query.Predicate{pred}, l, r)
	if len(j.Keys) != 0 {
		t.Errorf("join keys = %v, want none (left side keyless)", j.Keys)
	}
	// Left outer with key on the right: κ = κ(e1) = none here, and the
	// result must not be duplicate-free (left input is not).
	lo := e.Op(query.KindLeftOuter, []*query.Predicate{pred}, l, r)
	if lo.DupFree {
		t.Error("left outer of non-dupfree input can't be dupfree")
	}
	// Semijoin keeps left keys only.
	semi := e.Op(query.KindSemiJoin, []*query.Predicate{pred}, l, r)
	if len(semi.Keys) != 0 {
		t.Errorf("semijoin keys = %v", semi.Keys)
	}
}

func TestJoinBothKeys(t *testing.T) {
	q := query.New()
	r0 := q.AddRelation("r0", 100)
	r1 := q.AddRelation("r1", 100)
	k0 := q.AddAttr(r0, "k0", 100)
	k1 := q.AddAttr(r1, "k1", 100)
	q.AddKey(r0, k0)
	q.AddKey(r1, k1)
	e := NewEstimator(q)
	pred := &query.Predicate{Left: []int{k0}, Right: []int{k1}, Selectivity: 0.01}
	j := e.Op(query.KindJoin, []*query.Predicate{pred}, e.Scan(0), e.Scan(1))
	// Key-key join: both sides' keys remain keys.
	if len(j.Keys) != 2 {
		t.Errorf("key-key join keys = %v", j.Keys)
	}
	if !j.DupFree {
		t.Error("join of dupfree inputs must be dupfree")
	}
}

func TestPairwiseKeyUnion(t *testing.T) {
	q := query.New()
	r0 := q.AddRelation("r0", 100)
	r1 := q.AddRelation("r1", 100)
	k0 := q.AddAttr(r0, "k0", 100)
	a0 := q.AddAttr(r0, "x0", 5)
	k1 := q.AddAttr(r1, "k1", 100)
	a1 := q.AddAttr(r1, "x1", 5)
	q.AddKey(r0, k0)
	q.AddKey(r1, k1)
	e := NewEstimator(q)
	// Predicate on non-key attributes: keys must combine pairwise.
	pred := &query.Predicate{Left: []int{a0}, Right: []int{a1}, Selectivity: 0.2}
	j := e.Op(query.KindJoin, []*query.Predicate{pred}, e.Scan(0), e.Scan(1))
	want := bitset.NewV(k0, k1)
	if len(j.Keys) != 1 || j.Keys[0] != want {
		t.Errorf("pairwise keys = %v, want [%v]", j.Keys, want)
	}
	fo := e.Op(query.KindFullOuter, []*query.Predicate{pred}, e.Scan(0), e.Scan(1))
	if len(fo.Keys) != 1 || fo.Keys[0] != want {
		t.Errorf("full outer keys = %v", fo.Keys)
	}
}

func TestGroupProps(t *testing.T) {
	q, _ := twoRelQuery()
	e := NewEstimator(q)
	s0 := e.Scan(0)
	g := e.Group(s0, bitset.NewV(q.AttrID("g0")))
	if math.Abs(g.Card-10) > 1e-9 {
		t.Errorf("Γ card = %v, want 10 (distinct g0)", g.Card)
	}
	if math.Abs(g.Cost-10) > 1e-9 {
		t.Errorf("Γ cost = %v", g.Cost)
	}
	if !g.DupFree || !g.HasKeySubsetOf(bitset.NewV(q.AttrID("g0"))) {
		t.Error("Γ result must be dupfree with G as key")
	}
	// Grouping by more attributes than rows: capped at input card.
	tiny := e.Scan(1) // card 50, distinct(a0)=100 irrelevant here
	g2 := e.Group(tiny, bitset.NewV(q.AttrID("a0")))
	if g2.Card > tiny.Card {
		t.Errorf("Γ card %v exceeds input %v", g2.Card, tiny.Card)
	}
}

func TestProjectIsFree(t *testing.T) {
	q, _ := twoRelQuery()
	e := NewEstimator(q)
	s := e.Scan(1)
	p := e.Project(s)
	if p.Cost != s.Cost || p.Card != s.Card || !p.DupFree {
		t.Error("projection must be free and property-preserving")
	}
	if p.Kind != plan.NodeProject {
		t.Error("wrong node kind")
	}
}

func TestGroupOnEmptyAttrs(t *testing.T) {
	q, _ := twoRelQuery()
	e := NewEstimator(q)
	g := e.Group(e.Scan(0), bitset.VSet{})
	if g.Card != 1 {
		t.Errorf("Γ_∅ card = %v, want 1", g.Card)
	}
}

func TestCapKeysDropsDominated(t *testing.T) {
	keys := capKeys([]bitset.VSet{
		bitset.NewV(1, 2),
		bitset.NewV(1),    // subsumes {1,2}
		bitset.NewV(1, 2), // duplicate of a dominated key
		bitset.NewV(3),    // independent
		bitset.NewV(1, 3), // dominated by {1} and {3}
	})
	if len(keys) != 2 {
		t.Fatalf("capKeys = %v", keys)
	}
	has := func(k bitset.VSet) bool {
		for _, x := range keys {
			if x == k {
				return true
			}
		}
		return false
	}
	if !has(bitset.NewV(1)) || !has(bitset.NewV(3)) {
		t.Errorf("capKeys = %v", keys)
	}
}
