// Package cost implements the logical property estimator: the cardinality
// model, the candidate-key inference rules of Sec. 2.3, duplicate-freeness
// tracking, and the C_out cost function of Sec. 4.4:
//
//	C_out(T) = 0                                if T is a single table
//	         = |T| + C_out(T1) + C_out(T2)      if T = T1 ◦ T2
//	         = |T| + C_out(T1)                  if T = Γ(T1)
//
// All plan nodes are created through an Estimator so that every plan in
// the DP table carries consistent properties.
package cost

import (
	"math/bits"

	"eagg/internal/bitset"
	"eagg/internal/fd"
	"eagg/internal/ordering"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// maxKeys caps the candidate-key lists carried per plan; beyond this the
// pairwise union rule would grow quadratically with no practical benefit.
const maxKeys = 8

// Estimator computes logical properties against a query's statistics.
type Estimator struct {
	Q *query.Query

	// preds caches every predicate of the query with its relation set,
	// for canonical set-level cardinalities. The cache is split by key
	// width: sets fitting the inline word (every ≤63-relation query) key
	// a uint64 map, the wide remainder keys the VSet map — struct keys
	// with a string field hash noticeably slower on the estimate path.
	preds   []predInfo
	canonLo map[uint64]float64
	canon   map[bitset.VSet]float64

	// fds holds the query-level functional dependencies (base keys and
	// inner equi-join pairs); they hold in every complete plan and are
	// used for the final-grouping elimination and, optionally, to shrink
	// grouping attribute sets.
	fds fd.Set

	// FDReduceGroups enables FD-based reduction of grouping attribute
	// sets in cardinality estimates (sharper, but departs from the
	// paper's evaluation conditions — see groupCard).
	FDReduceGroups bool

	// Source supplies operator output cardinalities by canonical key
	// (see CardKey). The default ModelSource passes the selectivity
	// model through unchanged; a FeedbackOverlay overrides keys that
	// were measured during an execution. The source is consulted for
	// every operator and grouping estimate, so all plans in one DP run
	// see a consistent view.
	Source CardSource

	// ord lazily holds the order-inference analysis of the sort-based
	// physical layer (see phys.go); nil until the first Physify call,
	// so the default hash mode never builds it.
	ord *ordering.Info

	// GPlusLo/GPlus are scratch owned by the optimizer core: they memoize
	// the G⁺ computation per relation set, split by key width like the
	// canon cache. They ride on the estimator because estimators are
	// cloned per worker in the parallel driver, so each worker gets a
	// lock-free cache that persists across DP levels. Lazily initialized
	// by the core; Clone starts clones empty.
	GPlusLo map[uint64]bitset.VSet
	GPlus   map[bitset.VSet]bitset.VSet
}

type predInfo struct {
	rels bitset.VSet
	sel  float64
}

// NewEstimator returns an estimator for the query using the pure
// selectivity model (ModelSource) as its cardinality source.
func NewEstimator(q *query.Query) *Estimator {
	e := &Estimator{Q: q, canonLo: map[uint64]float64{}, canon: map[bitset.VSet]float64{}, Source: ModelSource{}}
	var walk func(n *query.OpNode)
	walk = func(n *query.OpNode) {
		if n == nil || n.Kind == query.KindScan {
			return
		}
		e.preds = append(e.preds, predInfo{
			rels: q.RelsOf(n.Pred.Attrs()),
			sel:  n.Pred.Selectivity,
		})
		// Inner equi-join pairs induce a ↔ b in every complete plan
		// (outer-join predicates do not: their padding breaks them).
		if n.Kind == query.KindJoin {
			for i := range n.Pred.Left {
				e.fds.AddEquiv(n.Pred.Left[i], n.Pred.Right[i])
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(q.Root)
	for ri := range q.Relations {
		for _, k := range q.Relations[ri].Keys {
			e.fds.Add(k, q.Relations[ri].Attrs)
		}
	}
	return e
}

// Clone returns an estimator sharing the immutable query analysis (the
// predicate list, the FD set and the cardinality source never change
// during an optimization) but
// owning a private canonical-cardinality cache. Concurrent optimizer
// workers each estimate through their own clone, so the hot path needs no
// synchronization; cached values are pure functions of the query, so every
// clone stays numerically identical to the original.
func (e *Estimator) Clone() *Estimator {
	c := &Estimator{
		Q:              e.Q,
		preds:          e.preds,
		canonLo:        make(map[uint64]float64, len(e.canonLo)),
		canon:          make(map[bitset.VSet]float64, len(e.canon)),
		fds:            e.fds,
		FDReduceGroups: e.FDReduceGroups,
		Source:         e.Source,
	}
	if e.ord != nil {
		// Order inference is pure per query; clones own their caches.
		c.ord = e.ord.Clone()
	}
	return c
}

// FDClosure returns the attribute closure under the query-level functional
// dependencies. Being query-level (not plan-level), it is identical for
// every plan of the same query, so using it in pruning-relevant decisions
// cannot break the dominance invariant.
func (e *Estimator) FDClosure(attrs bitset.VSet) bitset.VSet {
	return e.fds.Closure(attrs)
}

// CanonCard is the canonical (plan-independent) cardinality of a relation
// set: base cardinalities times the selectivities of all internal
// predicates. Semijoin and antijoin match fractions are computed against
// this value rather than the concrete right plan's cardinality — the match
// semantics depend on the right side's value set, not on how the plan
// shaped it, and a plan-dependent value would make the antijoin estimate
// anti-monotone and break the dominance pruning of Sec. 4.6.
func (e *Estimator) CanonCard(s bitset.VSet) float64 {
	if lo, narrow := s.Lo(); narrow {
		if c, ok := e.canonLo[lo]; ok {
			return c
		}
		c := e.canonCardSlow(s)
		e.canonLo[lo] = c
		return c
	}
	if c, ok := e.canon[s]; ok {
		return c
	}
	c := e.canonCardSlow(s)
	e.canon[s] = c
	return c
}

func (e *Estimator) canonCardSlow(s bitset.VSet) float64 {
	c := 1.0
	for w, nw := 0, s.NumWords(); w < nw; w++ {
		for t := s.Word(w); t != 0; t &= t - 1 {
			c *= e.Q.Relations[w*64+bits.TrailingZeros64(t)].Card
		}
	}
	for _, p := range e.preds {
		if p.rels.SubsetOf(s) {
			c *= p.sel
		}
	}
	return maxf(1, c)
}

// Scan builds a leaf plan for a base relation. Scanning is free under
// C_out (the scan cost would be the same constant in every plan).
func (e *Estimator) Scan(rel int) *plan.Plan {
	r := e.Q.Relations[rel]
	return &plan.Plan{
		Kind:    plan.NodeScan,
		Rels:    bitset.SingleV(rel),
		Rel:     rel,
		Card:    r.Card,
		Cost:    0,
		Keys:    capKeys(r.Keys),
		DupFree: len(r.Keys) > 0,
	}
}

// Distinct returns the distinct-value estimate of an attribute within a
// subplan. The base distinct count is capped by the cardinality of *every*
// intermediate result along the attribute's path through the plan: once a
// selective join shrank the rows carrying the attribute, later fan-out
// joins cannot re-create lost values. This propagation is what lets the
// estimator see that grouping a customer⨝orders⨝lineitem intermediate by
// c_custkey collapses to the number of participating customers.
func (e *Estimator) Distinct(attr int, p *plan.Plan) float64 {
	rel := e.Q.AttrRel[attr]
	return maxf(1, e.distinctWalk(attr, rel, p))
}

func (e *Estimator) distinctWalk(attr, rel int, p *plan.Plan) float64 {
	if p == nil || !p.Rels.Contains(rel) {
		return e.Q.Distinct[attr]
	}
	switch p.Kind {
	case plan.NodeScan:
		return minf(e.Q.Distinct[attr], p.Card)
	case plan.NodeOp:
		var d float64
		if p.Left.Rels.Contains(rel) {
			d = e.distinctWalk(attr, rel, p.Left)
		} else {
			d = e.distinctWalk(attr, rel, p.Right)
		}
		return minf(d, p.Card)
	default: // grouping, projection
		return minf(e.distinctWalk(attr, rel, p.Left), p.Card)
	}
}

// selectivity multiplies the selectivities of the predicates.
func selectivity(preds []*query.Predicate) float64 {
	s := 1.0
	for _, p := range preds {
		s *= p.Selectivity
	}
	return s
}

// Op builds a binary operator node and estimates its properties.
//
// The cardinality model is kept consistent with the key inference: when a
// side's join attributes contain one of its candidate keys, every tuple of
// the other side matches at most one tuple there, so the match count is
// capped by the other side's cardinality. Without this cap the key rules
// of Sec. 2.3 would declare keys that the cardinalities contradict, and
// NeedsGrouping would skip groupings as "waste" that are anything but.
func (e *Estimator) Op(kind query.OpKind, preds []*query.Predicate, left, right *plan.Plan) *plan.Plan {
	sel := selectivity(preds)
	var a1, a2 bitset.VSet
	for _, p := range preds {
		a1 = a1.Union(p.LeftAttrs())
		a2 = a2.Union(p.RightAttrs())
	}
	leftKey := left.HasKeySubsetOf(a1)
	rightKey := right.HasKeySubsetOf(a2)

	inner := left.Card * right.Card * sel
	if leftKey {
		inner = minf(inner, right.Card)
	}
	if rightKey {
		inner = minf(inner, left.Card)
	}
	// Expected number of partners per left/right tuple. For the
	// existence-style operators (N, T) the fraction is computed against
	// the canonical right-side cardinality (see CanonCard).
	perLeft := right.Card * sel
	perRight := left.Card * sel
	perLeftCanon := e.CanonCard(right.Rels) * sel

	unmatchedLeft := left.Card * maxf(0, 1-perLeft)
	if rightKey {
		unmatchedLeft = maxf(0, left.Card-inner)
	}
	unmatchedRight := right.Card * maxf(0, 1-perRight)
	if leftKey {
		unmatchedRight = maxf(0, right.Card-inner)
	}

	var card float64
	switch kind {
	case query.KindJoin:
		card = inner
	case query.KindSemiJoin:
		card = left.Card * minf(1, perLeftCanon)
	case query.KindAntiJoin:
		card = left.Card * maxf(0, 1-perLeftCanon)
	case query.KindLeftOuter:
		card = inner + unmatchedLeft
	case query.KindFullOuter:
		card = inner + unmatchedLeft + unmatchedRight
	case query.KindGroupJoin:
		card = left.Card
	default:
		panic("cost: unsupported operator kind")
	}
	card = maxf(1, card)

	// The collapse state below the operator: for left-only operators the
	// right side contributes a value set, which grouping cannot change,
	// so its groupings do not shape this output (and canonicalizing them
	// away lets a measurement taken with an ungrouped right side correct
	// plans that group it, and vice versa).
	groupsBelow := left.GroupsBelow
	if !kind.LeftOnly() {
		groupsBelow = groupsBelow.Union(right.GroupsBelow)
	}
	rels := left.Rels.Union(right.Rels)
	// Measured cardinalities (when the source carries feedback for this
	// canonical operator) replace the model estimate, un-clamped: a
	// measured empty intermediate is a real 0, not a 1.
	card = e.sourceCard(CardKey{Rels: rels, Group: groupsBelow}, card)

	p := &plan.Plan{
		Kind:        plan.NodeOp,
		Rels:        rels,
		Op:          kind,
		Preds:       preds,
		Left:        left,
		Right:       right,
		Card:        card,
		Cost:        card + left.Cost + right.Cost,
		GroupsBelow: groupsBelow,
	}
	p.Keys = e.opKeys(kind, preds, left, right)
	p.DupFree = opDupFree(kind, left, right)
	return p
}

// opKeys implements the key-inference rules of Sec. 2.3.
func (e *Estimator) opKeys(kind query.OpKind, preds []*query.Predicate, left, right *plan.Plan) []bitset.VSet {
	var a1, a2 bitset.VSet
	for _, p := range preds {
		a1 = a1.Union(p.LeftAttrs())
		a2 = a2.Union(p.RightAttrs())
	}
	leftKey := left.HasKeySubsetOf(a1)   // A1 contains a key of e1
	rightKey := right.HasKeySubsetOf(a2) // A2 contains a key of e2

	switch kind {
	case query.KindSemiJoin, query.KindAntiJoin, query.KindGroupJoin:
		// Only left attributes survive; result keys are the left keys
		// (Sec. 2.3.4).
		return capKeys(left.Keys)
	case query.KindJoin:
		switch {
		case leftKey && rightKey:
			ks := make([]bitset.VSet, 0, len(left.Keys)+len(right.Keys))
			ks = append(ks, left.Keys...)
			ks = append(ks, right.Keys...)
			return capKeys(ks)
		case leftKey:
			return capKeys(right.Keys)
		case rightKey:
			return capKeys(left.Keys)
		default:
			return pairwiseKeys(left.Keys, right.Keys)
		}
	case query.KindLeftOuter:
		if rightKey {
			return capKeys(left.Keys)
		}
		return pairwiseKeys(left.Keys, right.Keys)
	case query.KindFullOuter:
		return pairwiseKeys(left.Keys, right.Keys)
	}
	return nil
}

// opDupFree: joins of duplicate-free inputs are duplicate-free; the
// left-only operators preserve the left input's duplicate-freeness.
func opDupFree(kind query.OpKind, left, right *plan.Plan) bool {
	switch kind {
	case query.KindSemiJoin, query.KindAntiJoin, query.KindGroupJoin:
		return left.DupFree
	default:
		return left.DupFree && right.DupFree
	}
}

// Group builds a pushed-down grouping Γ_{G⁺} on top of child.
func (e *Estimator) Group(child *plan.Plan, groupBy bitset.VSet) *plan.Plan {
	card := e.groupCard(child, groupBy)
	// A grouping's output — the distinct G-combinations over the child's
	// relation set — is invariant under join order and under groupings
	// below, so its canonical key ignores the child's collapse state.
	card = e.sourceCard(CardKey{Rels: child.Rels, Group: groupBy, IsGroup: true}, card)
	p := &plan.Plan{
		Kind:        plan.NodeGroup,
		Rels:        child.Rels,
		GroupBy:     groupBy,
		Left:        child,
		Card:        card,
		Cost:        card + child.Cost,
		DupFree:     true,
		GroupsBelow: child.GroupsBelow.Union(groupBy),
	}
	p.Keys = groupKeys(child, groupBy)
	return p
}

// sourceCard resolves one operator cardinality through the estimator's
// CardSource; the default ModelSource returns the model estimate
// unchanged.
func (e *Estimator) sourceCard(key CardKey, model float64) float64 {
	if e.Source == nil {
		return model
	}
	return e.Source.Card(key, model)
}

// FinalGroup builds the query's top grouping Γ_G.
func (e *Estimator) FinalGroup(child *plan.Plan) *plan.Plan {
	p := e.Group(child, e.Q.GroupBy)
	p.Final = true
	return p
}

// Project builds the duplicate-preserving projection replacing an
// unnecessary final grouping (Sec. 3.2); it is free under C_out.
func (e *Estimator) Project(child *plan.Plan) *plan.Plan {
	return &plan.Plan{
		Kind:        plan.NodeProject,
		Rels:        child.Rels,
		Left:        child,
		Card:        child.Card,
		Cost:        child.Cost,
		Keys:        capKeys(child.Keys),
		DupFree:     child.DupFree,
		GroupsBelow: child.GroupsBelow,
	}
}

// groupCard estimates |Γ_G(e)| = min(|e|, Π d); the distinct product is
// computed per owning relation, capping each relation's contribution by
// that relation's path-capped row count: the attributes of one relation
// cannot form more combinations than the relation has surviving rows
// (c_custkey and c_name never multiply). Grouping on ∅ yields one group.
func (e *Estimator) groupCard(child *plan.Plan, groupBy bitset.VSet) float64 {
	// With FDReduceGroups, attributes functionally implied by the rest of
	// G contribute no combinations (c_custkey determines c_name and,
	// through inner key joins, n_name) and are dropped before
	// multiplying. Off by default: the sharper estimate makes the lazy
	// baseline's final grouping cheap enough to erase gains the paper
	// reports (see EXPERIMENTS.md on Q10), so the paper-faithful mode
	// keeps the plain per-relation product.
	reduced := groupBy
	if e.FDReduceGroups {
		reduced = e.fds.Reduce(groupBy)
	}
	card := 1.0
	rels := e.Q.RelsOf(reduced)
	for w, nw := 0, rels.NumWords(); w < nw; w++ {
		for t := rels.Word(w); t != 0; t &= t - 1 {
			rel := w*64 + bits.TrailingZeros64(t)
			relProd := 1.0
			ra := reduced.Intersect(e.Q.Relations[rel].Attrs)
			for w2, nw2 := 0, ra.NumWords(); w2 < nw2; w2++ {
				for t2 := ra.Word(w2); t2 != 0; t2 &= t2 - 1 {
					relProd *= e.Distinct(w2*64+bits.TrailingZeros64(t2), child)
				}
			}
			card *= minf(relProd, e.RelPathCard(rel, child))
		}
	}
	return maxf(1, minf(card, child.Card))
}

// RelPathCard is the smallest cardinality of any subplan containing the
// relation — an upper bound on how many of the relation's rows survive in
// the result, and hence on the distinct combinations of its attributes.
func (e *Estimator) RelPathCard(rel int, p *plan.Plan) float64 {
	if p == nil || !p.Rels.Contains(rel) {
		return e.Q.Relations[rel].Card
	}
	switch p.Kind {
	case plan.NodeScan:
		return p.Card
	case plan.NodeOp:
		var c float64
		if p.Left.Rels.Contains(rel) {
			c = e.RelPathCard(rel, p.Left)
		} else {
			c = e.RelPathCard(rel, p.Right)
		}
		return minf(c, p.Card)
	default:
		return minf(e.RelPathCard(rel, p.Left), p.Card)
	}
}

// groupKeys: the grouping attributes are a key of the result, and keys of
// the child contained in G remain keys.
func groupKeys(child *plan.Plan, groupBy bitset.VSet) []bitset.VSet {
	keys := []bitset.VSet{groupBy}
	for _, k := range child.Keys {
		if k.SubsetOf(groupBy) && k != groupBy {
			keys = append(keys, k)
		}
	}
	return capKeys(keys)
}

// pairwiseKeys combines keys k1 ∪ k2 per Sec. 2.3's fallback rule.
func pairwiseKeys(a, b []bitset.VSet) []bitset.VSet {
	n := len(a) * len(b)
	if n > maxKeys {
		n = maxKeys
	}
	out := make([]bitset.VSet, 0, n)
	for _, k1 := range a {
		for _, k2 := range b {
			out = append(out, k1.Union(k2))
			if len(out) >= maxKeys {
				return out
			}
		}
	}
	return out
}

func capKeys(keys []bitset.VSet) []bitset.VSet {
	// Deduplicate and drop dominated keys (a key that is a superset of
	// another key carries no extra information).
	n := len(keys)
	if n > maxKeys {
		n = maxKeys
	}
	out := make([]bitset.VSet, 0, n)
	for _, k := range keys {
		dominated := false
		for _, o := range out {
			if o.SubsetOf(k) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// Remove existing keys dominated by k.
		kept := out[:0]
		for _, o := range out {
			if !k.SubsetOf(o) {
				kept = append(kept, o)
			}
		}
		out = append(kept, k)
		if len(out) >= maxKeys {
			break
		}
	}
	return out
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
