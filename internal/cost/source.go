// The stats-provider seam: cardinalities flow into the estimator through
// a CardSource, so measured per-operator cardinalities harvested from an
// execution (internal/engine's CardProfile) can override the selectivity
// model during re-optimization — the execute→harvest→re-optimize loop of
// engine.Reoptimize.
//
// Operators are identified by canonical keys that survive plan changes:
// two plans that compute the same logical intermediate result map to the
// same CardKey, so a cardinality measured under one join order corrects
// the estimate of every other join order that builds the same result.

package cost

import (
	"fmt"
	"sort"
	"strings"

	"eagg/internal/bitset"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// CardKey canonically identifies the logical intermediate result of one
// plan operator, independent of the join order that produced it:
//
//   - a binary operator over relation set S is keyed by (S, A), where A is
//     the union of the grouping-attribute sets of the eager groupings
//     active below it — the collapse state that determines its output
//     volume. For the left-only operators (semijoin, antijoin, groupjoin)
//     only the left side's groupings count: the right side contributes a
//     value set, which grouping does not change.
//   - a grouping Γ_G over S is keyed by (S, G) with IsGroup set. Its
//     output is the set of distinct G-combinations in the canonical
//     result over S, which is invariant under both join order and any
//     groupings pushed below it, so the key deliberately ignores the
//     subtree's collapse state.
//
// Scans and the free projection are not costed and carry no key. The
// canonicalization is exact for join-order changes and a close
// approximation across collapse states that share the same attribute
// union; a collision only blends two measured cardinalities — it can skew
// an estimate, never an executed result.
type CardKey struct {
	Rels    bitset.VSet
	Group   bitset.VSet
	IsGroup bool
}

// KeyOf returns the canonical key of a plan node, or ok=false for nodes
// that are not costed under C_out (scans, projections). The executor
// records measured cardinalities under exactly this key, and the
// estimator looks estimates up under exactly this key, so the two sides
// of the feedback loop cannot drift apart.
func KeyOf(p *plan.Plan) (CardKey, bool) {
	switch p.Kind {
	case plan.NodeOp:
		return CardKey{Rels: p.Rels, Group: p.GroupsBelow}, true
	case plan.NodeGroup:
		return CardKey{Rels: p.Rels, Group: p.GroupBy, IsGroup: true}, true
	}
	return CardKey{}, false
}

// Describe renders the key with relation and attribute names resolved
// against the query ("⨝{customer,orders}" / "Γ{o_orderdate}{orders,…}").
func (k CardKey) Describe(q *query.Query) string {
	var rels []string
	k.Rels.ForEach(func(r int) { rels = append(rels, q.Relations[r].Name) })
	if k.IsGroup {
		var attrs []string
		k.Group.ForEach(func(a int) { attrs = append(attrs, q.AttrNames[a]) })
		return fmt.Sprintf("Γ{%s}(%s)", strings.Join(attrs, ","), strings.Join(rels, "⨝"))
	}
	return "⨝{" + strings.Join(rels, ",") + "}"
}

// CardSource supplies the output cardinality of a canonically-keyed
// operator. The estimator computes its selectivity-model estimate first
// and passes it in; a source with nothing better returns it unchanged.
// Sources must be safe for concurrent read-only use: parallel optimizer
// workers share one source across their estimator clones.
type CardSource interface {
	Card(key CardKey, model float64) float64
}

// ModelSource is the default CardSource: the pure selectivity model,
// passed through unchanged.
type ModelSource struct{}

// Card returns the model estimate unchanged.
func (ModelSource) Card(_ CardKey, model float64) float64 { return model }

// FeedbackOverlay is a CardSource backed by measured cardinalities: keys
// present in the overlay return their measured value, everything else
// falls back to the selectivity model. Build it from execution profiles
// (engine.ExecStats.Profile) and pass it to a re-optimization via
// core.Options.Stats. The overlay must not be mutated while an
// optimization that uses it is running.
type FeedbackOverlay struct {
	m map[CardKey]float64
}

// NewFeedbackOverlay returns an empty overlay (pure model behavior).
func NewFeedbackOverlay() *FeedbackOverlay {
	return &FeedbackOverlay{m: map[CardKey]float64{}}
}

// Card returns the measured cardinality for the key, or the model
// estimate when the key was never measured.
func (o *FeedbackOverlay) Card(key CardKey, model float64) float64 {
	if c, ok := o.m[key]; ok {
		return c
	}
	return model
}

// Lookup reports the measured cardinality for the key, if any.
func (o *FeedbackOverlay) Lookup(key CardKey) (float64, bool) {
	c, ok := o.m[key]
	return c, ok
}

// Set records a measured cardinality, overwriting earlier measurements of
// the same key (later rounds observe the same logical result; keeping the
// freshest value makes the loop self-correcting if a key ever collides).
func (o *FeedbackOverlay) Set(key CardKey, card float64) {
	o.m[key] = card
}

// Merge copies every measurement of src into o (src wins on key
// collisions). Used to seed a feedback loop with an externally
// harvested profile.
func (o *FeedbackOverlay) Merge(src *FeedbackOverlay) {
	for k, v := range src.m {
		o.m[k] = v
	}
}

// Len returns the number of measured keys.
func (o *FeedbackOverlay) Len() int { return len(o.m) }

// Keys returns the measured keys in deterministic order (for reports and
// tests).
func (o *FeedbackOverlay) Keys() []CardKey {
	out := make([]CardKey, 0, len(o.m))
	for k := range o.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rels != b.Rels {
			return a.Rels.Less(b.Rels)
		}
		if a.Group != b.Group {
			return a.Group.Less(b.Group)
		}
		return !a.IsGroup && b.IsGroup
	})
	return out
}
