package cost

import (
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/bitset"
	"eagg/internal/query"
)

// sourceQuery builds a 3-relation chain R0 ⋈ R1 ⧑ R2 (the last operator a
// semijoin) with a grouping, for exercising keys and overrides.
func sourceQuery() *query.Query {
	q := query.New()
	r0 := q.AddRelation("R0", 1000)
	r1 := q.AddRelation("R1", 500)
	r2 := q.AddRelation("R2", 200)
	a0 := q.AddAttr(r0, "R0.j", 100)
	a1 := q.AddAttr(r1, "R1.j", 100)
	b1 := q.AddAttr(r1, "R1.k", 50)
	b2 := q.AddAttr(r2, "R2.k", 50)
	g := q.AddAttr(r0, "R0.g", 10)
	v := q.AddAttr(r0, "R0.v", 900)
	scan := func(r int) *query.OpNode { return &query.OpNode{Kind: query.KindScan, Rel: r} }
	j01 := &query.OpNode{
		Kind: query.KindJoin, Left: scan(r0), Right: scan(r1),
		Pred: &query.Predicate{Left: []int{a0}, Right: []int{a1}, Selectivity: 0.01},
	}
	q.Root = &query.OpNode{
		Kind: query.KindSemiJoin, Left: j01, Right: scan(r2),
		Pred: &query.Predicate{Left: []int{b1}, Right: []int{b2}, Selectivity: 0.02},
	}
	q.SetGrouping([]int{g}, aggfn.Vector{{Out: "total", Kind: aggfn.Sum, Arg: q.AttrNames[v]}})
	return q
}

func TestFeedbackOverlayFallback(t *testing.T) {
	o := NewFeedbackOverlay()
	key := CardKey{Rels: bitset.Range64(0, 2).ToV()}
	if got := o.Card(key, 123); got != 123 {
		t.Fatalf("empty overlay must fall back to the model: got %g", got)
	}
	o.Set(key, 7)
	if got := o.Card(key, 123); got != 7 {
		t.Fatalf("overlay must return the measured value: got %g", got)
	}
	if got := o.Card(CardKey{Rels: bitset.Range64(0, 2).ToV(), IsGroup: true}, 55); got != 55 {
		t.Fatalf("distinct key must fall back: got %g", got)
	}
	if got, ok := o.Lookup(key); !ok || got != 7 {
		t.Fatalf("Lookup = %g, %v", got, ok)
	}
	o.Set(key, 9) // later measurements overwrite
	if got := o.Card(key, 123); got != 9 {
		t.Fatalf("overwrite: got %g", got)
	}
	if o.Len() != 1 {
		t.Fatalf("Len = %d", o.Len())
	}
	if got := (ModelSource{}).Card(key, 42); got != 42 {
		t.Fatalf("ModelSource must pass the model through: got %g", got)
	}
}

// TestCanonicalKeys pins the canonicalization rules: op keys carry the
// collapse state below (left side only for left-only operators), grouping
// keys ignore it, and KeyOf agrees with what the estimator looked up.
func TestCanonicalKeys(t *testing.T) {
	q := sourceQuery()
	e := NewEstimator(q)
	s0, s1, s2 := e.Scan(0), e.Scan(1), e.Scan(2)
	pred01 := &query.Predicate{Left: []int{0}, Right: []int{1}, Selectivity: 0.01}
	predSemi := &query.Predicate{Left: []int{2}, Right: []int{3}, Selectivity: 0.02}

	join := e.Op(query.KindJoin, []*query.Predicate{pred01}, s0, s1)
	key, ok := KeyOf(join)
	if !ok || key != (CardKey{Rels: bitset.Range64(0, 2).ToV()}) {
		t.Fatalf("plain join key = %+v, ok=%v", key, ok)
	}

	gp := bitset.VSet{}.Add(1).Add(2).Add(4) // join attrs + G on R0⨝R1's side
	grouped := e.Group(join, gp)
	gkey, ok := KeyOf(grouped)
	if !ok || gkey != (CardKey{Rels: bitset.Range64(0, 2).ToV(), Group: gp, IsGroup: true}) {
		t.Fatalf("group key = %+v, ok=%v", gkey, ok)
	}
	if grouped.GroupsBelow != gp {
		t.Fatalf("GroupsBelow of Γ = %v, want %v", grouped.GroupsBelow, gp)
	}

	// A second grouping on top keys by its own G, ignoring the collapse
	// state below — the canonical result is the same distinct set.
	g2 := bitset.VSet{}.Add(4)
	regrouped := e.Group(grouped, g2)
	rkey, _ := KeyOf(regrouped)
	if rkey != (CardKey{Rels: bitset.Range64(0, 2).ToV(), Group: g2, IsGroup: true}) {
		t.Fatalf("re-group key = %+v", rkey)
	}

	// Semijoin above: its key carries the left collapse state; grouping
	// the right side must not change the key (a value set is invariant
	// under grouping).
	semi := e.Op(query.KindSemiJoin, []*query.Predicate{predSemi}, grouped, s2)
	skey, _ := KeyOf(semi)
	want := CardKey{Rels: bitset.Range64(0, 3).ToV(), Group: gp}
	if skey != want {
		t.Fatalf("semijoin key = %+v, want %+v", skey, want)
	}
	gr2 := e.Group(s2, bitset.VSet{}.Add(3))
	semiGR := e.Op(query.KindSemiJoin, []*query.Predicate{predSemi}, grouped, gr2)
	skey2, _ := KeyOf(semiGR)
	if skey2 != want {
		t.Fatalf("semijoin key with grouped right = %+v, want %+v", skey2, want)
	}

	// Scans and projections carry no key.
	if _, ok := KeyOf(s0); ok {
		t.Fatal("scan must not carry a card key")
	}
	if _, ok := KeyOf(e.Project(join)); ok {
		t.Fatal("projection must not carry a card key")
	}
}

// TestSourceOverridesEstimates checks that measured cardinalities replace
// the model estimate for exactly the overlaid keys, propagate into C_out,
// and survive Clone (parallel workers share the source).
func TestSourceOverridesEstimates(t *testing.T) {
	q := sourceQuery()
	pred01 := &query.Predicate{Left: []int{0}, Right: []int{1}, Selectivity: 0.01}

	model := NewEstimator(q)
	base := model.Op(query.KindJoin, []*query.Predicate{pred01}, model.Scan(0), model.Scan(1))
	baseKey, _ := KeyOf(base)

	o := NewFeedbackOverlay()
	o.Set(baseKey, 77)
	fed := NewEstimator(q)
	fed.Source = o
	got := fed.Op(query.KindJoin, []*query.Predicate{pred01}, fed.Scan(0), fed.Scan(1))
	if got.Card != 77 || got.Cost != 77 {
		t.Fatalf("measured card must override the model: card=%g cost=%g", got.Card, got.Cost)
	}
	if base.Card == 77 {
		t.Fatal("test needs a model estimate ≠ 77")
	}

	// Unmeasured keys fall back to the model — which now estimates
	// against the corrected child (the measured 77 caps the distinct
	// counts), so the fallback is the model formula, not the old number.
	gp := bitset.VSet{}.Add(1).Add(2).Add(4)
	gModel := model.Group(base, gp)
	gFed := fed.Group(got, gp)
	if gFed.Card == gModel.Card {
		t.Fatalf("fallback Γ estimate should see the corrected child (both %g)", gFed.Card)
	}
	if want := gFed.Card + 77; gFed.Cost != want {
		t.Fatalf("C_out must accumulate the measured child: %g, want %g", gFed.Cost, want)
	}
	// A measured grouping cardinality overrides the fallback.
	gKey, _ := KeyOf(gFed)
	o.Set(gKey, 13)
	if g2 := fed.Group(got, gp); g2.Card != 13 || g2.Cost != 13+77 {
		t.Fatalf("measured Γ card must override: card=%g cost=%g", g2.Card, g2.Cost)
	}

	// A measured zero stays zero (not clamped to 1).
	o.Set(baseKey, 0)
	z := fed.Op(query.KindJoin, []*query.Predicate{pred01}, fed.Scan(0), fed.Scan(1))
	if z.Card != 0 {
		t.Fatalf("measured 0 must not be clamped: %g", z.Card)
	}

	// Clones share the source.
	c := fed.Clone()
	if c.Source != fed.Source {
		t.Fatal("Clone must share the cardinality source")
	}
	zc := c.Op(query.KindJoin, []*query.Predicate{pred01}, c.Scan(0), c.Scan(1))
	if zc.Card != z.Card {
		t.Fatalf("clone estimate differs: %g vs %g", zc.Card, z.Card)
	}
}
