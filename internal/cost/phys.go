// Order-aware physical costing for the sort-based layer. The estimator
// keeps pricing plan *quality* with the paper's C_out (Plan.Cost); when
// the optimizer enables the sort-based physical algebra it additionally
// maintains Plan.PhysCost, which adds each operator's physical
// reorganization overhead in rows touched:
//
//	hash join / groupjoin:  |left| + |right|   (hash both sides)
//	hash aggregation:       |input|            (hash every input row)
//	sort-merge join:        Σ |input| over the sorts actually performed
//	sort-group aggregation: |input| if sorted, 0 if the order is reused
//
// Reorganizing a side costs one pass whether it is hashed or sorted;
// reusing an existing order saves that pass entirely. That makes the
// sort-based operator win exactly where the classic interesting-order
// argument says it should — when an input order can be reused — and tie
// (resolved toward hash by enumeration order) everywhere else. All
// cardinalities flow through the estimator's CardSource seam, so the
// cardinality feedback loop corrects physical overheads too.
package cost

import (
	"eagg/internal/bitset"
	"eagg/internal/ordering"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// ordInfo lazily builds the order-inference analysis; it is only touched
// in sort/auto optimization modes, so the default mode pays nothing.
func (e *Estimator) ordInfo() *ordering.Info {
	if e.ord == nil {
		e.ord = ordering.NewInfo(e.Q)
	}
	return e.ord
}

// PhysifyScan fills the physical properties of a scan: the declared
// contractual order, zero overhead.
func (e *Estimator) PhysifyScan(p *plan.Plan) {
	if o := e.ordInfo().ScanOrder(p.Rel); len(o) > 0 {
		p.Ord = o
	}
	p.PhysCost = 0
}

// PhysifyOp fills the physical properties of a freshly built binary
// operator node for the requested physical kind. It returns false when
// the kind does not support the operator (the sort-based layer
// implements inner, semi, anti and left outer joins; full outer joins
// and groupjoins stay on the hash layer).
func (e *Estimator) PhysifyOp(p *plan.Plan, phys plan.PhysKind) bool {
	l, r := p.Left, p.Right
	switch phys {
	case plan.PhysHash:
		p.Phys = plan.PhysHash
		p.Ord = nil // the optimizer claims no order for the hash layer
		p.PhysCost = p.Card + l.Card + r.Card + l.PhysCost + r.PhysCost
		return true
	case plan.PhysSortMerge:
		switch p.Op {
		case query.KindJoin, query.KindSemiJoin, query.KindAntiJoin, query.KindLeftOuter:
		default:
			return false
		}
		lk, rk := orientPairs(e.Q, p.Preds, l.Rels)
		in := e.ordInfo()
		// Prefer matching the left input's order (the left sequence is
		// what the output preserves), then the right; otherwise both
		// sides are sorted in predicate order.
		sortL, sortR := true, true
		if perm, ok := in.CoversKeys(l.Rels, l.Ord, lk); ok {
			sortL = false
			lk, rk = permute(lk, perm), permute(rk, perm)
			sortR = !in.CoversKeysInOrder(r.Rels, r.Ord, rk)
		} else if perm, ok := in.CoversKeys(r.Rels, r.Ord, rk); ok {
			sortR = false
			lk, rk = permute(lk, perm), permute(rk, perm)
		}
		overhead := 0.0
		if sortL {
			overhead += l.Card
		}
		if sortR {
			overhead += r.Card
		}
		p.Phys = plan.PhysSortMerge
		p.SortL, p.SortR = sortL, sortR
		p.MergeL, p.MergeR = lk, rk
		// The operator restores the left input sequence (see
		// algebra/sort.go), so the left contractual order survives.
		p.Ord = l.Ord
		p.PhysCost = p.Card + overhead + l.PhysCost + r.PhysCost
		return true
	}
	return false
}

// PhysifyGroup fills the physical properties of a grouping node for the
// requested physical kind. Sort-group aggregation is available for every
// grouping; it reuses the input order when it covers the grouping
// attributes (rows of one group are already consecutive) and sorts
// otherwise.
func (e *Estimator) PhysifyGroup(p *plan.Plan, phys plan.PhysKind) bool {
	child := p.Left
	switch phys {
	case plan.PhysHash:
		p.Phys = plan.PhysHash
		p.Ord = nil
		p.PhysCost = p.Card + child.Card + child.PhysCost
		return true
	case plan.PhysSortMerge:
		in := e.ordInfo()
		prefix, covered := in.CoversGrouping(child.Rels, child.Ord, p.GroupBy)
		overhead := 0.0
		if !covered {
			overhead = child.Card
		}
		p.Phys = plan.PhysSortMerge
		p.SortL = !covered
		// The covering order prefix: the runtime verifies the input is
		// really non-decreasing on it before trusting the runs argument.
		p.MergeL = prefix
		// The operator emits groups in first-encounter order either way
		// (see algebra/sort.go), so the input order survives as far as
		// its attributes map into the grouping columns.
		p.Ord = in.GroupOutputOrder(child.Rels, child.Ord, p.GroupBy)
		p.PhysCost = p.Card + overhead + child.PhysCost
		return true
	}
	return false
}

// PhysifyProject fills the physical properties of the free projection:
// like its C_out cost, its physical cost is the child's. The projection
// only ever replaces the query's top grouping, so its output order can
// never be reused and is not claimed.
func (e *Estimator) PhysifyProject(p *plan.Plan) {
	p.Ord = nil
	p.PhysCost = p.Left.PhysCost
}

// permute reorders keys by perm: out[i] = keys[perm[i]].
func permute(keys, perm []int) []int {
	out := make([]int, len(perm))
	for i, j := range perm {
		out[i] = keys[j]
	}
	return out
}

// orientPairs flattens every predicate pair into aligned (left, right)
// attribute id sequences, oriented by which side owns the attribute —
// the estimator-side counterpart of the executor's joinKeys, so the
// merge order the optimizer prices is the one the runtime executes.
func orientPairs(q *query.Query, preds []*query.Predicate, leftRels bitset.VSet) (lk, rk []int) {
	for _, pr := range preds {
		for i := range pr.Left {
			la, ra := pr.Left[i], pr.Right[i]
			if !leftRels.Contains(q.AttrRel[la]) && leftRels.Contains(q.AttrRel[ra]) {
				la, ra = ra, la
			}
			lk = append(lk, la)
			rk = append(rk, ra)
		}
	}
	return lk, rk
}
