package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0 — counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the current value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets are the default histogram bounds for latencies in
// milliseconds: roughly logarithmic from 50µs to 10s, enough resolution
// for a p99 on both sub-millisecond cache hits and multi-second scans.
var DefLatencyBuckets = []float64{
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000,
}

// Histogram is a fixed-bucket histogram with a lock-free hot path: one
// atomic add on the bucket counter, one on the total count, and a CAS
// loop folding the value into the float sum. Bucket bounds are fixed at
// construction (upper bounds, ascending; an implicit +Inf bucket is
// appended), so observation never allocates and scrapes never block
// observers. Quantiles are estimated from the cumulative bucket counts —
// exact enough for p50/p99 dashboards, by construction never off by more
// than one bucket width.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last = +Inf
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound ≥ v; the +Inf bucket catches the
	// rest. Bounds are few and fixed, so this is a handful of compares.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of
// the first bucket whose cumulative count reaches q·total (the +Inf
// bucket reports the largest finite bound). NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// metricKind tags how a metric renders in the Prometheus exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registered instrument.
type metric struct {
	name string
	help string
	kind metricKind
	hist *Histogram
	read func() float64 // counters and gauges (owned or collected)
}

// Registry holds named metrics. Registration takes a lock; reads and
// updates of the registered instruments are lock-free. Names follow
// Prometheus conventions (snake_case, _total suffix on counters);
// registering a duplicate name panics — metric names are program
// constants, so a collision is a bug, not input.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.name))
	}
	r.metrics[m.name] = m
}

// Counter registers and returns a new owned counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, read: func() float64 { return float64(c.Value()) }})
	return c
}

// Gauge registers and returns a new owned gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, read: func() float64 { return float64(g.Value()) }})
	return g
}

// CounterFunc registers a counter whose value is collected from fn at
// scrape time — the bridge to counters a subsystem already maintains
// (pool task counts, cache hits). fn must be safe for concurrent calls
// and monotone non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, read: fn})
}

// GaugeFunc registers a gauge collected from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, read: fn})
}

// Histogram registers and returns a fixed-bucket histogram. bounds are
// ascending bucket upper bounds (nil = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// snapshot returns the registered metrics sorted by name.
func (r *Registry) snapshot() []*metric {
	r.mu.RLock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// formatValue renders a sample the way Prometheus expects (no exponent
// for integral values, Inf spelled +Inf).
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes every metric in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, counters and gauges as
// single samples, histograms as cumulative _bucket series plus _sum and
// _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, m := range r.snapshot() {
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", m.name, m.name, formatValue(m.read()))
		case kindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.name, m.name, formatValue(m.read()))
		case kindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", m.name)
			h := m.hist
			var cum int64
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatValue(bound), cum)
			}
			cum += h.buckets[len(h.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(w, "%s_sum %s\n", m.name, formatValue(h.Sum()))
			fmt.Fprintf(w, "%s_count %d\n", m.name, h.Count())
		}
	}
}

// Prometheus returns the full exposition as a string.
func (r *Registry) Prometheus() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// Handler returns an http.Handler serving the Prometheus text exposition
// — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Prometheus())
	})
}

// Expvar returns the registry as one expvar.Func rendering a name→value
// map (histograms appear as {count, sum, p50, p99}).
func (r *Registry) Expvar() expvar.Func {
	return func() any {
		out := map[string]any{}
		for _, m := range r.snapshot() {
			if m.kind == kindHistogram {
				h := m.hist
				entry := map[string]any{"count": h.Count(), "sum": h.Sum()}
				if h.Count() > 0 {
					entry["p50"], entry["p99"] = h.Quantile(0.5), h.Quantile(0.99)
				}
				out[m.name] = entry
				continue
			}
			out[m.name] = m.read()
		}
		return out
	}
}

// PublishExpvar publishes the registry into the process-global expvar
// namespace under name, once — republishing (or racing tests creating
// several registries) keeps the first registration, since expvar has no
// unpublish.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r.Expvar())
}
