package obs

import (
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestRegistryPrometheusText pins the exposition format: TYPE headers,
// counter/gauge samples, cumulative histogram buckets with _sum/_count.
func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests served")
	c.Add(3)
	g := r.Gauge("test_depth", "queue depth")
	g.Set(7)
	r.GaugeFunc("test_epoch", "feedback epoch", func() float64 { return 2 })
	h := r.Histogram("test_latency_ms", "latency", []float64{1, 10, 100})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(5000) // lands in +Inf

	text := r.Prometheus()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		"# TYPE test_depth gauge",
		"test_depth 7",
		"test_epoch 2",
		"# TYPE test_latency_ms histogram",
		`test_latency_ms_bucket{le="1"} 1`,
		`test_latency_ms_bucket{le="10"} 2`,
		`test_latency_ms_bucket{le="100"} 2`,
		`test_latency_ms_bucket{le="+Inf"} 3`,
		"test_latency_ms_sum 5005.5",
		"test_latency_ms_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Metrics render sorted by name — scrapes are diffable.
	if strings.Index(text, "test_depth") > strings.Index(text, "test_epoch") {
		t.Error("metrics not sorted by name")
	}
}

// TestHistogramQuantile pins the bucket-bound quantile estimate.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram should report NaN")
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // ≤1
	}
	for i := 0; i < 10; i++ {
		h.Observe(7) // ≤8
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %g, want 1", got)
	}
	if got := h.Quantile(0.99); got != 8 {
		t.Errorf("p99 = %g, want 8", got)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d, want 100", h.Count())
	}
}

// TestRegistryHandler serves the exposition over HTTP and checks the
// content type Prometheus scrapers negotiate.
func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_h_total", "h").Add(1)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(string(body), "test_h_total 1") {
		t.Errorf("scrape body missing counter:\n%s", body)
	}
}

// TestMetricsRegistryConcurrent is the registry's race test (it rides
// the CI concurrency-stress lane): counters, gauges and histograms are
// hammered from many goroutines while the exposition is scraped
// concurrently, then the final totals must be exact — atomics lose
// nothing, including the CAS-folded histogram sum.
func TestMetricsRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("stress_total", "")
	g := r.Gauge("stress_gauge", "")
	h := r.Histogram("stress_ms", "", []float64{1, 10, 100})

	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	wg.Add(goroutines + 2)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 20))
			}
		}(i)
	}
	// Concurrent scrapers: text exposition and expvar snapshot.
	for k := 0; k < 2; k++ {
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_ = r.Prometheus()
				_ = r.Expvar()()
			}
		}()
	}
	wg.Wait()

	const n = goroutines * perG
	if c.Value() != n {
		t.Errorf("counter = %d, want %d", c.Value(), n)
	}
	if g.Value() != n {
		t.Errorf("gauge = %d, want %d", g.Value(), n)
	}
	if h.Count() != n {
		t.Errorf("histogram count = %d, want %d", h.Count(), n)
	}
	wantSum := float64(goroutines) * float64(perG/20) * (19 * 20 / 2)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", h.Sum(), wantSum)
	}
	// The cumulative +Inf bucket of the exposition must equal the count.
	text := r.Prometheus()
	m := regexp.MustCompile(`stress_ms_bucket\{le="\+Inf"\} (\d+)`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no +Inf bucket in exposition:\n%s", text)
	}
	if inf, _ := strconv.Atoi(m[1]); inf != n {
		t.Errorf("+Inf bucket = %d, want %d", inf, n)
	}
}

// TestRegistryDuplicatePanics pins that name collisions are bugs.
func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "")
}

// TestPublishExpvar covers the publish-once guard (expvar is process
// global and has no unpublish).
func TestPublishExpvar(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("pub_total", "").Add(5)
	name := fmt.Sprintf("obs_test_%p", r1)
	r1.PublishExpvar(name)
	r2.PublishExpvar(name) // must not panic, keeps r1
	r1.PublishExpvar(name) // idempotent
}
