package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestTraceNesting pins the Begin/End LIFO discipline: parents enclose
// children, ids are creation-ordered, the stack unwinds correctly.
func TestTraceNesting(t *testing.T) {
	tr := NewTrace()
	root := tr.Begin("query", "exec")
	a := tr.Begin("scan", "op")
	tr.SetRows(a, -1, 100)
	tr.End(a)
	b := tr.Begin("join", "op")
	c := tr.Begin("scan", "op")
	tr.End(c)
	tr.End(b)
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(spans))
	}
	wantParents := []int{-1, 0, 0, 2}
	for i, sp := range spans {
		if sp.Parent != wantParents[i] {
			t.Errorf("span %d (%s): parent %d, want %d", i, sp.Name, sp.Parent, wantParents[i])
		}
		if sp.DurNS < 0 {
			t.Errorf("span %d (%s): still open (dur %d)", i, sp.Name, sp.DurNS)
		}
	}
	if spans[1].RowsOut != 100 || spans[1].RowsIn != -1 {
		t.Errorf("scan rows: got in=%d out=%d", spans[1].RowsIn, spans[1].RowsOut)
	}
}

// TestTraceFingerprintMasksTiming pins the determinism contract: two
// traces with identical structure and row counts but different timing
// and annotations fingerprint identically; a structural difference shows.
func TestTraceFingerprintMasksTiming(t *testing.T) {
	build := func(sleep bool, annotate string) *Trace {
		tr := NewTrace()
		root := tr.Begin("query", "exec")
		op := tr.Begin("join", "op")
		if sleep {
			time.Sleep(2 * time.Millisecond)
		}
		if annotate != "" {
			tr.Annotate(op, "note", annotate)
		}
		tr.SetRows(op, 10, 5)
		tr.End(op)
		tr.End(root)
		return tr
	}
	a, b := build(false, ""), build(true, "different args")
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("fingerprints differ on timing/args only:\n%s\nvs\n%s", a.Fingerprint(), b.Fingerprint())
	}
	c := NewTrace()
	root := c.Begin("query", "exec")
	op := c.Begin("join", "op")
	c.SetRows(op, 10, 6) // different row count
	c.End(op)
	c.End(root)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("fingerprint did not distinguish differing row counts")
	}
}

// TestWriteChrome validates the trace-event JSON shape Perfetto expects:
// a traceEvents array of complete ("X") events with µs timestamps and
// the row counts in args.
func TestWriteChrome(t *testing.T) {
	tr := NewTrace()
	root := tr.Begin("query", "exec")
	op := tr.Begin("join", "op")
	tr.SetRows(op, 10, 5)
	tr.Annotate(op, "est", "7")
	tr.End(op)
	tr.End(root)

	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("want 2 events, got %d", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q: ph %q, want X", ev.Name, ev.Ph)
		}
	}
	join := doc.TraceEvents[1]
	if join.Name != "join" || join.Args["rows_out"] != float64(5) || join.Args["est"] != "7" {
		t.Errorf("join event malformed: %+v", join)
	}
}

// TestEmitDerivedSpans covers the post-hoc span hook used for DP levels.
func TestEmitDerivedSpans(t *testing.T) {
	tr := NewTrace()
	opt := tr.Begin("optimize", "optimize")
	tr.End(opt)
	lvl := tr.Emit(opt, "level 2", "dp-level", 0, 1000, -1, 42)
	if got := tr.Spans()[lvl]; got.Parent != opt || got.RowsOut != 42 {
		t.Errorf("emitted span malformed: %+v", got)
	}
	if len(tr.Spans()) != 2 {
		t.Fatalf("want 2 spans, got %d", len(tr.Spans()))
	}
}
