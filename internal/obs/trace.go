// Package obs is the engine's observability spine: structured per-query
// traces (spans covering optimizer phases and executor operators) and a
// process-wide metrics registry (atomic counters, gauges and fixed-bucket
// histograms exportable as Prometheus text and expvar).
//
// Both halves are built so that *collection can never perturb results*:
//
//   - Traces are recorded by the single driver goroutine of a query — the
//     optimizer's level loop and the executor's operator barriers — so no
//     synchronization is needed and no operator's morsel fan-out ever
//     sees a trace. Deterministic span fields (structure, names, row
//     counts) are bit-identical for every worker count; wall-clock fields
//     are carried separately and excluded from Fingerprint, the rendering
//     the determinism tests compare.
//   - Metrics are updated through atomic operations only (histogram
//     observation is one atomic add per bucket plus a CAS loop on the
//     float sum); scrapes read the same atomics. There is no lock on any
//     hot path, and nothing in the registry feeds back into planning or
//     execution.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// KV is one deterministic-order span annotation (rendered into Chrome
// trace args and EXPLAIN ANALYZE lines; excluded from Fingerprint, since
// annotations may legitimately depend on the worker count — morsel
// counts, hash-table shapes — while the span structure must not).
type KV struct {
	Key   string
	Value string
}

// Span is one traced region. IDs index Trace.Spans; Parent is -1 for
// roots. RowsIn/RowsOut are -1 when not applicable. StartNS/DurNS are
// monotonic nanoseconds relative to the trace origin — timing, excluded
// from Fingerprint along with Args.
type Span struct {
	ID      int
	Parent  int
	Name    string
	Cat     string
	RowsIn  int64
	RowsOut int64
	StartNS int64
	DurNS   int64
	Args    []KV
}

// Trace is a per-query span collection. It is deliberately not
// synchronized: Begin/End/Annotate must be called from one goroutine at
// a time (the query's driver goroutine — the operator barriers and the
// optimizer's level loop already are single-goroutine points). Emit
// exists for attaching derived spans (e.g. DP levels reconstructed from
// core.Stats) after the fact.
type Trace struct {
	origin time.Time
	spans  []Span
	stack  []int
}

// NewTrace starts an empty trace; the wall-clock origin anchors every
// span's relative timestamps.
func NewTrace() *Trace {
	return &Trace{origin: time.Now()}
}

func (t *Trace) now() int64 { return time.Since(t.origin).Nanoseconds() }

// Begin opens a span nested under the currently open span (LIFO) and
// returns its id.
func (t *Trace) Begin(name, cat string) int {
	id := len(t.spans)
	parent := -1
	if len(t.stack) > 0 {
		parent = t.stack[len(t.stack)-1]
	}
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Name: name, Cat: cat,
		RowsIn: -1, RowsOut: -1, StartNS: t.now(), DurNS: -1,
	})
	t.stack = append(t.stack, id)
	return id
}

// End closes the span (which must be the innermost open one).
func (t *Trace) End(id int) {
	sp := &t.spans[id]
	sp.DurNS = t.now() - sp.StartNS
	if n := len(t.stack); n > 0 && t.stack[n-1] == id {
		t.stack = t.stack[:n-1]
	}
}

// SetRows records a span's deterministic row counts (part of
// Fingerprint; -1 = not applicable).
func (t *Trace) SetRows(id int, in, out int64) {
	t.spans[id].RowsIn, t.spans[id].RowsOut = in, out
}

// Annotate attaches one key-value annotation to a span.
func (t *Trace) Annotate(id int, key, value string) {
	t.spans[id].Args = append(t.spans[id].Args, KV{key, value})
}

// Annotatef is Annotate with a formatted value.
func (t *Trace) Annotatef(id int, key, format string, args ...any) {
	t.Annotate(id, key, fmt.Sprintf(format, args...))
}

// Emit attaches a complete span under an explicit parent (use -1 for a
// root) with caller-supplied timing — the hook for spans derived from
// already-collected statistics, like per-level DP timings. It returns
// the new span's id and does not touch the open-span stack.
func (t *Trace) Emit(parent int, name, cat string, startNS, durNS, rowsIn, rowsOut int64) int {
	id := len(t.spans)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Name: name, Cat: cat,
		RowsIn: rowsIn, RowsOut: rowsOut, StartNS: startNS, DurNS: durNS,
	})
	return id
}

// Spans returns the recorded spans in creation (pre-)order. The slice is
// the trace's own backing array; treat it as read-only.
func (t *Trace) Spans() []Span { return t.spans }

// Len returns the number of recorded spans.
func (t *Trace) Len() int { return len(t.spans) }

// Start returns a span's start offset as a duration.
func (s Span) Start() time.Duration { return time.Duration(s.StartNS) }

// Dur returns a span's duration (negative while still open).
func (s Span) Dur() time.Duration { return time.Duration(s.DurNS) }

// Fingerprint renders the deterministic half of the trace — span
// structure (parent links), names, categories and row counts — one line
// per span, with every timing field and annotation masked. Two
// executions of the same plan must produce equal fingerprints whatever
// the worker count, pool, batch size or runtime; the trace-determinism
// suite compares exactly this rendering.
func (t *Trace) Fingerprint() string {
	var b strings.Builder
	for _, sp := range t.spans {
		fmt.Fprintf(&b, "%d %d %s %s %d %d\n", sp.ID, sp.Parent, sp.Cat, sp.Name, sp.RowsIn, sp.RowsOut)
	}
	return b.String()
}

// chromeEvent is one Chrome trace-event ("X" = complete event).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the trace in Chrome trace-event JSON (an object
// with a traceEvents array of complete events), the format Perfetto and
// chrome://tracing open directly. Span nesting is expressed by
// enclosure: every span's interval lies inside its parent's, which the
// Begin/End discipline guarantees, so the viewer reconstructs the tree
// without explicit ids.
func (t *Trace) WriteChrome(w io.Writer) error {
	events := make([]chromeEvent, 0, len(t.spans))
	for _, sp := range t.spans {
		dur := sp.DurNS
		if dur < 0 {
			dur = 0 // still-open span: render as instant
		}
		ev := chromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			TS:  float64(sp.StartNS) / 1e3,
			Dur: float64(dur) / 1e3,
			PID: 1, TID: 1,
		}
		if sp.RowsIn >= 0 || sp.RowsOut >= 0 || len(sp.Args) > 0 {
			ev.Args = map[string]any{}
			if sp.RowsIn >= 0 {
				ev.Args["rows_in"] = sp.RowsIn
			}
			if sp.RowsOut >= 0 {
				ev.Args["rows_out"] = sp.RowsOut
			}
			for _, kv := range sp.Args {
				ev.Args[kv.Key] = kv.Value
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
