package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"eagg/internal/core"
	"eagg/internal/plan"
	"eagg/internal/tpch"
)

func mkPlan() *plan.Plan { return &plan.Plan{Kind: plan.NodeScan, Rel: 0} }

// TestPlanCacheKeyCollision pins the satellite requirement: two requests
// differing only in physical mode or only in stats epoch never share a
// cache entry — the phys mode separates through the fingerprint, the
// epoch through the key's second half.
func TestPlanCacheKeyCollision(t *testing.T) {
	q := tpch.Queries()["Q3"]
	hash := core.Fingerprint(q, core.Options{Algorithm: core.AlgEAPrune, Phys: core.PhysModeHash})
	sorted := core.Fingerprint(q, core.Options{Algorithm: core.AlgEAPrune, Phys: core.PhysModeSort})
	auto := core.Fingerprint(q, core.Options{Algorithm: core.AlgEAPrune, Phys: core.PhysModeAuto})
	if hash == sorted || hash == auto || sorted == auto {
		t.Fatal("phys modes share a fingerprint — a hash-layer plan could serve a sort request")
	}

	c := newPlanCache(16)
	computes := 0
	get := func(sig string, epoch uint64) {
		t.Helper()
		_, _, _, err := c.getOrCompute(cacheKey{sig: sig, epoch: epoch}, func() (*plan.Plan, core.Stats, error) {
			computes++
			return mkPlan(), core.Stats{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Same fingerprint, different epochs: distinct entries.
	get(hash, 0)
	get(hash, 1)
	// Different phys fingerprints, same epoch: distinct entries.
	get(sorted, 0)
	get(auto, 0)
	if computes != 4 || c.size() != 4 {
		t.Fatalf("computes=%d size=%d, want 4/4 (no sharing across phys mode or epoch)", computes, c.size())
	}
	// Exact repeats hit.
	get(hash, 0)
	get(hash, 1)
	if computes != 4 {
		t.Fatalf("repeat lookups recomputed: %d computes", computes)
	}
}

// TestPlanCacheSingleFlight pins that a cold popular key is optimized
// exactly once: concurrent requesters block on the in-flight compute and
// count as hits.
func TestPlanCacheSingleFlight(t *testing.T) {
	c := newPlanCache(16)
	var computes atomic.Int32
	gate := make(chan struct{})
	key := cacheKey{sig: "hot"}

	const waiters = 16
	var wg sync.WaitGroup
	wg.Add(waiters)
	plans := make([]*plan.Plan, waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			defer wg.Done()
			p, _, _, err := c.getOrCompute(key, func() (*plan.Plan, core.Stats, error) {
				computes.Add(1)
				<-gate // hold every waiter on the in-flight entry
				return mkPlan(), core.Stats{}, nil
			})
			if err != nil {
				t.Error(err)
			}
			plans[i] = p
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
	for i := 1; i < waiters; i++ {
		if plans[i] != plans[0] {
			t.Fatal("waiters got different plan objects")
		}
	}
	if hits := c.hits.Load(); hits != waiters-1 {
		t.Fatalf("hits=%d, want %d", hits, waiters-1)
	}
}

// TestPlanCacheErrorNotCached pins that failed optimizations are not
// cached: the next request retries and can succeed.
func TestPlanCacheErrorNotCached(t *testing.T) {
	c := newPlanCache(4)
	key := cacheKey{sig: "flaky"}
	boom := errors.New("boom")
	_, _, _, err := c.getOrCompute(key, func() (*plan.Plan, core.Stats, error) {
		return nil, core.Stats{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	if c.size() != 0 {
		t.Fatal("failed entry stayed cached")
	}
	p, _, hit, err := c.getOrCompute(key, func() (*plan.Plan, core.Stats, error) {
		return mkPlan(), core.Stats{}, nil
	})
	if err != nil || hit || p == nil {
		t.Fatalf("retry: p=%v hit=%v err=%v", p, hit, err)
	}
}

// TestPlanCacheEvictionAndPrune pins the bounds: the cap holds, older
// epochs are evicted first, and pruneBelow clears stale entries.
func TestPlanCacheEvictionAndPrune(t *testing.T) {
	c := newPlanCache(4)
	fill := func(sig string, epoch uint64) {
		_, _, _, err := c.getOrCompute(cacheKey{sig: sig, epoch: epoch}, func() (*plan.Plan, core.Stats, error) {
			return mkPlan(), core.Stats{}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		fill(fmt.Sprintf("old%d", i), 0)
	}
	for i := 0; i < 4; i++ {
		fill(fmt.Sprintf("new%d", i), 5)
	}
	if c.size() != 4 {
		t.Fatalf("size=%d, want cap 4", c.size())
	}
	// The epoch-0 entries were the eviction victims.
	c.mu.Lock()
	for k := range c.m {
		if k.epoch != 5 {
			t.Errorf("stale entry %v survived eviction of newer inserts", k)
		}
	}
	c.mu.Unlock()
	c.pruneBelow(6)
	if c.size() != 0 {
		t.Fatalf("pruneBelow left %d entries", c.size())
	}
}
