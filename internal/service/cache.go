package service

import (
	"sync"
	"sync/atomic"

	"eagg/internal/core"
	"eagg/internal/plan"
)

// cacheKey identifies one cached plan: the canonical (query, options)
// fingerprint — which includes the physical mode — plus the feedback
// epoch the plan was optimized under. Two requests differing in either
// half never share an entry: a plan built for the hash layer must not
// serve a sort-mode request, and a plan built from stale statistics
// must not outlive the measurements that would have changed it.
type cacheKey struct {
	sig   string
	epoch uint64
}

// cacheEntry is one plan cache slot with single-flight semantics: the
// first request for a key computes while later requests block on ready.
// plan/stats/err are written exactly once, before ready closes.
type cacheEntry struct {
	ready chan struct{}
	plan  *plan.Plan
	stats core.Stats
	err   error
	epoch uint64
}

// planCache is a bounded plan cache with single-flight computation.
// Plans are immutable after optimization, so handing the same *plan.Plan
// to any number of concurrent executions is safe.
type planCache struct {
	mu  sync.Mutex
	max int
	m   map[cacheKey]*cacheEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64 // capacity evictions + stale-epoch prunes
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, m: map[cacheKey]*cacheEntry{}}
}

// getOrCompute returns the cached plan for key, computing it via fn on
// the first request. Concurrent requests for the same key wait for the
// single in-flight computation and count as hits (they skipped the DP
// search — which is what hit/miss measures). A failed computation is
// not cached: its waiters see the error, and the entry is removed so
// later requests retry.
func (c *planCache) getOrCompute(key cacheKey, fn func() (*plan.Plan, core.Stats, error)) (*plan.Plan, core.Stats, bool, error) {
	c.mu.Lock()
	if en, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-en.ready
		if en.err != nil {
			return nil, core.Stats{}, false, en.err
		}
		c.hits.Add(1)
		return en.plan, en.stats, true, nil
	}
	en := &cacheEntry{ready: make(chan struct{}), epoch: key.epoch}
	c.m[key] = en
	c.evictLocked(key)
	c.mu.Unlock()
	c.misses.Add(1)

	en.plan, en.stats, en.err = fn()
	close(en.ready)
	if en.err != nil {
		c.mu.Lock()
		if c.m[key] == en {
			delete(c.m, key)
		}
		c.mu.Unlock()
		return nil, core.Stats{}, false, en.err
	}
	return en.plan, en.stats, false, nil
}

// evictLocked enforces the size cap after an insert, preferring entries
// from older epochs (already unreachable for new requests under the
// current epoch). keep is never evicted. Called with mu held.
func (c *planCache) evictLocked(keep cacheKey) {
	for len(c.m) > c.max {
		var victim cacheKey
		found := false
		for k := range c.m {
			if k == keep {
				continue
			}
			if !found || k.epoch < victim.epoch {
				victim, found = k, true
			}
		}
		if !found {
			return
		}
		delete(c.m, victim)
		c.evictions.Add(1)
	}
}

// pruneBelow drops every entry optimized under an epoch older than
// epoch. In-flight entries may be pruned too: their computation still
// completes and its direct requester still gets the plan — only the
// cache stops serving it.
func (c *planCache) pruneBelow(epoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.m {
		if k.epoch < epoch {
			delete(c.m, k)
			c.evictions.Add(1)
		}
	}
}

// size returns the current entry count.
func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
