package service

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/cost"
	"eagg/internal/engine"
	"eagg/internal/query"
	"eagg/internal/randquery"
	"eagg/internal/tpch"
)

// identicalTables asserts bit-identical results: same schema, same rows
// in the same order, floats compared by bit pattern — the same contract
// internal/engine's parallel suite enforces for the morsel runtime.
func identicalTables(t *testing.T, label string, want, got *algebra.Table) {
	t.Helper()
	if fmt.Sprint(want.Schema.Names()) != fmt.Sprint(got.Schema.Names()) {
		t.Fatalf("%s: schema differs: %v vs %v", label, want.Schema.Names(), got.Schema.Names())
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: cardinality differs: want %d got %d", label, len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			a, b := want.Rows[i][j], got.Rows[i][j]
			if a.Kind != b.Kind || a.I != b.I || a.S != b.S ||
				math.Float64bits(a.F) != math.Float64bits(b.F) {
				t.Fatalf("%s: row %d slot %d differs: %v vs %v", label, i, j, a, b)
			}
		}
	}
}

// q3Data builds the Q3 query with a small deterministic instance.
func q3Data(t *testing.T) (*query.Query, engine.TableData) {
	t.Helper()
	q := tpch.Queries()["Q3"]
	rng := rand.New(rand.NewSource(42))
	return q, tpch.GenerateTables(rng, q, tpch.ExecutionScaleAt("Q3", 0.2))
}

// TestServiceWarmCacheSkipsDP is the tentpole's headline property: the
// second request for a query shape comes from the plan cache — zero
// csg-cmp-pairs enumerated, zero plans built — and still returns a
// bit-identical result.
func TestServiceWarmCacheSkipsDP(t *testing.T) {
	q, data := q3Data(t)
	e := NewEngine(EngineOptions{Workers: 4})
	defer e.Close()
	e.Register("q3", data)
	s := e.NewSession()

	req := Request{Opt: core.Options{Algorithm: core.AlgEAPrune}, Dataset: "q3"}
	cold, err := s.Execute(q, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Fatal("first request reported a cache hit")
	}
	if cold.OptStats.CsgCmpPairs == 0 || cold.OptStats.PlansBuilt == 0 {
		t.Fatalf("cold request did no search: %+v", cold.OptStats)
	}

	warm, err := s.Execute(q, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("second request missed the cache")
	}
	if warm.OptStats.CsgCmpPairs != 0 || warm.OptStats.PlansBuilt != 0 || warm.OptStats.TablePlans != 0 {
		t.Fatalf("cache hit still reported search effort: %+v", warm.OptStats)
	}
	if warm.Plan != cold.Plan {
		t.Fatal("cache hit returned a different plan object")
	}
	identicalTables(t, "warm vs cold", cold.Table, warm.Table)

	m := e.Metrics()
	if m.PlanCacheHits != 1 || m.PlanCacheMiss != 1 || m.Requests != 2 {
		t.Fatalf("metrics %+v, want 1 hit / 1 miss / 2 requests", m)
	}
}

// TestServiceConcurrentDeterminism is the concurrent-determinism suite:
// the same query submitted from 8 goroutines through one shared Engine —
// cache hit or miss, shared feedback on or off — returns tables
// bit-identical to the sequential one-shot library call under the same
// statistics snapshot. Run with -race; the CI stress lane repeats it
// with -count=3 -cpu 1,2,4.
func TestServiceConcurrentDeterminism(t *testing.T) {
	q, data := q3Data(t)
	for _, tc := range []struct {
		name     string
		feedback bool
		noCache  bool
	}{
		{"cache", false, false},
		{"nocache", false, true},
		{"feedback-cache", true, false},
		{"feedback-nocache", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(EngineOptions{Workers: 4, MaxConcurrent: 8, SharedFeedback: tc.feedback})
			defer e.Close()
			e.Register("q3", data)
			req := Request{Opt: core.Options{Algorithm: core.AlgEAPrune}, Dataset: "q3", NoCache: tc.noCache}

			if tc.feedback {
				// Drive the overlay to its fixed point first: once a
				// request's published profile changes nothing, the
				// epoch — and with it the chosen plan — is stable, and
				// republishing stays idempotent, so the concurrent
				// phase below runs against frozen statistics.
				s := e.NewSession()
				for i := 0; i < 8; i++ {
					before := e.Epoch()
					if _, err := s.Execute(q, req); err != nil {
						t.Fatal(err)
					}
					if e.Epoch() == before && i > 0 {
						break
					}
				}
			}

			// The sequential library reference under the engine's
			// exact statistics snapshot.
			opt := core.Options{Algorithm: core.AlgEAPrune}
			if tc.feedback {
				snap, _ := e.stats.Snapshot()
				opt.Stats = snap
			}
			res, err := core.Optimize(q, opt)
			if err != nil {
				t.Fatal(err)
			}
			want, err := engine.ExecTablesOpts(q, res.Plan, data, engine.ExecOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}

			const goroutines = 8
			var wg sync.WaitGroup
			wg.Add(goroutines)
			results := make([]*Response, goroutines)
			errs := make([]error, goroutines)
			for g := 0; g < goroutines; g++ {
				go func(g int) {
					defer wg.Done()
					s := e.NewSession()
					results[g], errs[g] = s.Execute(q, req)
				}(g)
			}
			wg.Wait()
			for g := 0; g < goroutines; g++ {
				if errs[g] != nil {
					t.Fatalf("goroutine %d: %v", g, errs[g])
				}
				if sig := results[g].Plan.Signature(); sig != res.Plan.Signature() {
					t.Fatalf("goroutine %d chose plan %s, library chose %s", g, sig, res.Plan.Signature())
				}
				identicalTables(t, fmt.Sprintf("goroutine %d", g), want, results[g].Table)
			}
		})
	}
}

// TestServiceConcurrentMixedShapes hammers the engine with several
// different query shapes at once (the realistic traffic pattern): each
// shape's result must match its own sequential reference, whatever
// interleaving the shared pool and cache produce.
func TestServiceConcurrentMixedShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	type workload struct {
		q    *query.Query
		data engine.TableData
		want *algebra.Table
	}
	var shapes []workload
	for i := 0; i < 4; i++ {
		q := randquery.Generate(rng, randquery.Params{Relations: 4 + i})
		data := engine.RandomData(rng, q, 30).Tables()
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.ExecTablesOpts(q, res.Plan, data, engine.ExecOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		shapes = append(shapes, workload{q, data, want})
	}

	e := NewEngine(EngineOptions{Workers: 4, MaxConcurrent: 4})
	defer e.Close()
	var wg sync.WaitGroup
	const clients = 12
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			s := e.NewSession()
			for round := 0; round < 6; round++ {
				w := shapes[(c+round)%len(shapes)]
				resp, err := s.Execute(w.q, Request{
					Opt:  core.Options{Algorithm: core.AlgEAPrune},
					Exec: engine.ExecOptions{MorselSize: 2}, // force fan-out on tiny inputs
					Data: w.data,
				})
				if err != nil {
					t.Errorf("client %d round %d: %v", c, round, err)
					return
				}
				identicalTables(t, fmt.Sprintf("client %d round %d", c, round), w.want, resp.Table)
			}
		}(c)
	}
	wg.Wait()
	if m := e.Metrics(); m.PlanCacheMiss > int64(len(shapes)) {
		t.Errorf("expected at most %d cold optimizations, got %d misses", len(shapes), m.PlanCacheMiss)
	}
}

// TestServiceEpochInvalidation pins the feedback/cache interaction: the
// first publish of real measurements advances the epoch and re-keys the
// cache, the workload re-optimizes (possibly to a better plan), and once
// measurements stop changing the epoch freezes and the cache serves
// every further request.
func TestServiceEpochInvalidation(t *testing.T) {
	q, data := q3Data(t)
	e := NewEngine(EngineOptions{Workers: 2, SharedFeedback: true})
	defer e.Close()
	s := e.NewSession()
	req := Request{Opt: core.Options{Algorithm: core.AlgEAPrune}, Data: data}

	first, err := s.Execute(q, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Epoch != 0 || first.CacheHit {
		t.Fatalf("first request: epoch=%d hit=%v, want 0/false", first.Epoch, first.CacheHit)
	}
	if e.Epoch() == 0 {
		t.Fatal("execution published measurements but the epoch did not advance")
	}

	// Iterate to the fixed point, then verify steady state: stable
	// epoch, cache hits, and old-epoch entries pruned.
	var last *Response
	for i := 0; i < 8; i++ {
		before := e.Epoch()
		last, err = s.Execute(q, req)
		if err != nil {
			t.Fatal(err)
		}
		if e.Epoch() == before {
			break
		}
	}
	stable := e.Epoch()
	steady, err := s.Execute(q, req)
	if err != nil {
		t.Fatal(err)
	}
	if !steady.CacheHit || steady.Epoch != stable {
		t.Fatalf("steady state: hit=%v epoch=%d, want true/%d", steady.CacheHit, steady.Epoch, stable)
	}
	if e.Epoch() != stable {
		t.Fatal("steady-state re-publish advanced the epoch (publish not idempotent)")
	}
	identicalTables(t, "steady vs fixed-point", last.Table, steady.Table)
	if size := e.cache.size(); size != 1 {
		t.Fatalf("cache holds %d entries after pruning, want 1 (the current-epoch plan)", size)
	}
}

// TestServiceRequestValidation pins the request-hygiene errors: the
// engine owns statistics and the scheduler, data must resolve, and a
// closed engine refuses work.
func TestServiceRequestValidation(t *testing.T) {
	q, data := q3Data(t)
	e := NewEngine(EngineOptions{Workers: 2})
	s := e.NewSession()

	if _, err := s.Execute(q, Request{Data: data, Opt: core.Options{Stats: cost.NewFeedbackOverlay()}}); err == nil {
		t.Error("Opt.Stats accepted")
	}
	if _, err := s.Execute(q, Request{Data: data, Exec: engine.ExecOptions{Pool: algebra.NewPool(0)}}); err == nil {
		t.Error("Exec.Pool accepted")
	}
	if _, err := s.Execute(q, Request{}); err == nil {
		t.Error("request without data accepted")
	}
	if _, err := s.Execute(q, Request{Dataset: "nope"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	e.Close()
	if _, err := s.Execute(q, Request{Data: data}); err == nil {
		t.Error("closed engine accepted a request")
	}
}
