package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"eagg/internal/core"
	"eagg/internal/obs"
)

// scrape fetches the Prometheus exposition and parses the plain
// counter/gauge samples into a name→value map (histogram series keep
// their suffixed names: eagg_exec_ms_count etc.).
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("scrape: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape: read: %v", err)
	}
	out := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("scrape: malformed sample %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("scrape: value of %s: %v", name, err)
		}
		out[name] = f
	}
	return out
}

// TestServiceMetricsEndpointConcurrent scrapes the engine's /metrics
// endpoint while queries execute against it — the registry's lock-free
// instruments must neither block nor miscount under concurrency (the
// name keeps this test in the CI concurrency-stress lane's -race runs).
func TestServiceMetricsEndpointConcurrent(t *testing.T) {
	q, data := q3Data(t)
	e := NewEngine(EngineOptions{Workers: 4, SharedFeedback: true})
	defer e.Close()
	e.Register("q3", data)

	srv := httptest.NewServer(e.Registry().Handler())
	defer srv.Close()

	const goroutines, perG = 6, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := e.NewSession()
			for i := 0; i < perG; i++ {
				req := Request{Opt: core.Options{Algorithm: core.AlgEAPrune}, Dataset: "q3"}
				if _, err := s.Execute(q, req); err != nil {
					errs <- err
					return
				}
			}
		}()
		// One scraper per executor goroutine, hammering the endpoint
		// mid-flight; values are transient, only well-formedness holds.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				resp, err := http.Get(srv.URL)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	const total = goroutines * perG
	m := scrape(t, srv.URL)
	if got := m["eagg_requests_total"]; got != total {
		t.Errorf("eagg_requests_total = %v, want %d", got, total)
	}
	if hits, misses := m["eagg_plan_cache_hits_total"], m["eagg_plan_cache_misses_total"]; hits+misses != total {
		t.Errorf("cache hits %v + misses %v != %d requests", hits, misses, total)
	}
	for _, h := range []string{"eagg_optimize_ms", "eagg_exec_ms"} {
		if got := m[h+"_count"]; got != total {
			t.Errorf("%s_count = %v, want %d", h, got, total)
		}
	}
	if got := m["eagg_result_rows_total"]; got <= 0 {
		t.Errorf("eagg_result_rows_total = %v, want > 0", got)
	}
	if got := m["eagg_feedback_epoch"]; got < 1 {
		t.Errorf("eagg_feedback_epoch = %v, want ≥ 1 after measured executions", got)
	}
	// The tiny test instance may not fan out to the pool at all; the
	// instrument must exist, its value is workload-dependent.
	if _, ok := m["eagg_pool_jobs_total"]; !ok {
		t.Error("eagg_pool_jobs_total not exported")
	}
	if got := m["eagg_errors_total"]; got != 0 {
		t.Errorf("eagg_errors_total = %v, want 0", got)
	}

	// Metrics() mirrors the scraped counters.
	em := e.Metrics()
	if em.Requests != total {
		t.Errorf("Metrics().Requests = %d, want %d", em.Requests, total)
	}
	if int64(m["eagg_plan_cache_evictions_total"]) != em.PlanCacheEvictions {
		t.Errorf("evictions: scrape %v vs Metrics %d", m["eagg_plan_cache_evictions_total"], em.PlanCacheEvictions)
	}
}

// TestServiceRequestTrace exercises Exec.Trace through the service path:
// the optimize span must carry the plan-cache outcome, and operator
// spans must be recorded for the execution.
func TestServiceRequestTrace(t *testing.T) {
	q, data := q3Data(t)
	e := NewEngine(EngineOptions{Workers: 2})
	defer e.Close()
	e.Register("q3", data)
	s := e.NewSession()

	outcome := func(tr *obs.Trace) string {
		for _, sp := range tr.Spans() {
			if sp.Cat != "optimize" {
				continue
			}
			for _, kv := range sp.Args {
				if kv.Key == "plan_cache" {
					return kv.Value
				}
			}
		}
		return ""
	}
	countOps := func(tr *obs.Trace) int {
		n := 0
		for _, sp := range tr.Spans() {
			if sp.Cat == "op" {
				n++
			}
		}
		return n
	}

	for i, want := range []string{"miss", "hit"} {
		tr := obs.NewTrace()
		req := Request{Opt: core.Options{Algorithm: core.AlgEAPrune}, Dataset: "q3"}
		req.Exec.Trace = tr
		if _, err := s.Execute(q, req); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got := outcome(tr); got != want {
			t.Errorf("request %d: plan_cache = %q, want %q", i, got, want)
		}
		if countOps(tr) == 0 {
			t.Errorf("request %d: no operator spans recorded", i)
		}
	}

	tr := obs.NewTrace()
	req := Request{Opt: core.Options{Algorithm: core.AlgEAPrune}, Dataset: "q3", NoCache: true}
	req.Exec.Trace = tr
	if _, err := s.Execute(q, req); err != nil {
		t.Fatal(err)
	}
	if got := outcome(tr); got != "bypass" {
		t.Errorf("NoCache: plan_cache = %q, want %q", got, "bypass")
	}
}

// TestEngineRegistryExposition sanity-checks the exposition itself: every
// instrument the engine registers renders, and the latency histograms
// carry cumulative buckets.
func TestEngineRegistryExposition(t *testing.T) {
	q, data := q3Data(t)
	e := NewEngine(EngineOptions{Workers: 2, SharedFeedback: true})
	defer e.Close()
	e.Register("q3", data)
	s := e.NewSession()
	if _, err := s.Execute(q, Request{Opt: core.Options{Algorithm: core.AlgEAPrune}, Dataset: "q3"}); err != nil {
		t.Fatal(err)
	}

	text := e.Registry().Prometheus()
	for _, want := range []string{
		"eagg_requests_total 1",
		"eagg_plan_cache_misses_total 1",
		// The execution's publish advanced the epoch, pruning the plan
		// optimized under epoch 0 — entries 0, one eviction.
		"eagg_plan_cache_entries 0",
		"eagg_plan_cache_evictions_total 1",
		"eagg_feedback_epoch_advances_total 1",
		"eagg_sessions 1",
		"# TYPE eagg_exec_ms histogram",
		`eagg_exec_ms_bucket{le="+Inf"} 1`,
		"eagg_exec_ms_count 1",
		"eagg_feedback_epoch 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
	if strings.Count(text, "# TYPE") < 15 {
		t.Errorf("expected ≥ 15 registered metrics, got:\n%s", text)
	}

	// A failed request counts in eagg_errors_total.
	if _, err := s.Execute(q, Request{Dataset: "no-such"}); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
	if got := e.Registry().Prometheus(); !strings.Contains(got, "eagg_errors_total 1") {
		t.Errorf("eagg_errors_total not incremented:\n%s", got)
	}
}
