// Package service is the embedded query-service layer: one Engine
// serves many concurrent queries against resident table data, sharing
// three things across them that the one-shot library calls cannot:
//
//   - a plan cache keyed by (query fingerprint, stats epoch): repeated
//     query shapes skip DP enumeration entirely, with single-flight
//     deduplication so a popular shape is optimized once even when many
//     sessions race on a cold cache;
//   - a global feedback overlay (cost.SharedOverlay): measured
//     per-operator cardinalities harvested from every execution improve
//     the estimates of every later optimization, across sessions, behind
//     a copy-on-read/epoch discipline — each query optimizes against a
//     frozen snapshot, so the workers-1≡8 bit-identity contract of the
//     optimizer and runtime holds unchanged per query;
//   - a shared morsel scheduler (algebra.Pool): one worker pool
//     multiplexed across the operator fan-outs of all in-flight queries,
//     with round-robin per-query fairness at morsel granularity, plus a
//     simple admission semaphore bounding the queries executing at once.
//
// Everything the engine shares is either immutable (plans, overlay
// snapshots) or synchronized (cache, overlay versions, pool), so results
// are bit-identical to the corresponding one-shot library call — the
// concurrent-determinism suite enforces exactly that.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/cost"
	"eagg/internal/engine"
	"eagg/internal/obs"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// EngineOptions configures a service engine.
type EngineOptions struct {
	// Workers is the size of the shared execution worker pool and the
	// default work-decomposition width of each query (0 = GOMAXPROCS).
	Workers int
	// MaxConcurrent bounds the queries admitted into execution at once
	// (0 = Workers): beyond it, Execute blocks in admission order.
	MaxConcurrent int
	// SharedFeedback enables the global measured-cardinality overlay:
	// every execution publishes its profile, every optimization runs
	// against the current snapshot, and the plan cache invalidates by
	// epoch when measurements actually change.
	SharedFeedback bool
	// PlanCacheSize caps the plan cache (entries; 0 = 256). Stale-epoch
	// entries are evicted first.
	PlanCacheSize int
}

// defaults resolves zero values.
func (o EngineOptions) defaults() EngineOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = o.Workers
	}
	if o.PlanCacheSize <= 0 {
		o.PlanCacheSize = 256
	}
	return o
}

// Engine is a concurrent query service over resident table data. Create
// one with NewEngine, register datasets (or pass data per request), and
// execute queries through sessions from any number of goroutines.
type Engine struct {
	opts  EngineOptions
	pool  *algebra.Pool
	cache *planCache
	stats *cost.SharedOverlay // nil unless SharedFeedback

	sem chan struct{} // admission tickets

	mu       sync.Mutex
	datasets map[string]engine.TableData
	closed   bool
	sessions atomic.Int64

	requests       atomic.Int64
	admissionWaits atomic.Int64

	// Observability: the registry is always on (atomic instruments, no
	// hot-path locks); Registry() exposes it for scraping.
	reg           *obs.Registry
	optimizeMS    *obs.Histogram
	execMS        *obs.Histogram
	epochAdvances *obs.Counter
	resultRows    *obs.Counter
	interRows     *obs.Counter
	errorsTotal   *obs.Counter
}

// NewEngine starts a service engine: the shared worker pool is running
// and the plan cache and feedback overlay (if enabled) are empty.
func NewEngine(opts EngineOptions) *Engine {
	opts = opts.defaults()
	e := &Engine{
		opts:     opts,
		pool:     algebra.NewPool(opts.Workers),
		cache:    newPlanCache(opts.PlanCacheSize),
		sem:      make(chan struct{}, opts.MaxConcurrent),
		datasets: map[string]engine.TableData{},
	}
	if opts.SharedFeedback {
		e.stats = cost.NewSharedOverlay()
	}
	e.instrument()
	return e
}

// instrument builds the engine's metrics registry. Counters the
// subsystems already maintain (cache hits, pool tasks) are bridged as
// collected functions — the scrape reads the live atomics, nothing is
// double-counted; quantities only the request path knows (latencies,
// row totals) get owned instruments observed inline.
func (e *Engine) instrument() {
	r := obs.NewRegistry()
	e.reg = r

	r.CounterFunc("eagg_requests_total", "queries executed (or failed) through the engine",
		func() float64 { return float64(e.requests.Load()) })
	r.CounterFunc("eagg_admission_waits_total", "queries that blocked on the admission semaphore",
		func() float64 { return float64(e.admissionWaits.Load()) })
	r.GaugeFunc("eagg_sessions", "sessions created",
		func() float64 { return float64(e.sessions.Load()) })

	r.CounterFunc("eagg_plan_cache_hits_total", "plan cache hits (including single-flight waiters)",
		func() float64 { return float64(e.cache.hits.Load()) })
	r.CounterFunc("eagg_plan_cache_misses_total", "plan cache misses (DP optimizations run)",
		func() float64 { return float64(e.cache.misses.Load()) })
	r.CounterFunc("eagg_plan_cache_evictions_total", "plans dropped by capacity eviction or stale-epoch pruning",
		func() float64 { return float64(e.cache.evictions.Load()) })
	r.GaugeFunc("eagg_plan_cache_entries", "plans currently cached",
		func() float64 { return float64(e.cache.size()) })

	r.GaugeFunc("eagg_feedback_epoch", "current shared-feedback epoch (0 = feedback off or unmeasured)",
		func() float64 { return float64(e.Epoch()) })
	r.GaugeFunc("eagg_feedback_keys", "measured cardinalities in the shared overlay",
		func() float64 {
			if e.stats == nil {
				return 0
			}
			return float64(e.stats.Len())
		})
	e.epochAdvances = r.Counter("eagg_feedback_epoch_advances_total",
		"feedback publishes that changed a measurement and invalidated stale plans")

	r.CounterFunc("eagg_pool_jobs_total", "operator fan-outs submitted to the shared scheduler",
		func() float64 { return float64(e.pool.Stats().Jobs) })
	r.CounterFunc("eagg_pool_worker_tasks_total", "morsel tasks executed by pool workers",
		func() float64 { return float64(e.pool.Stats().WorkerTasks) })
	r.CounterFunc("eagg_pool_helper_tasks_total", "morsel tasks executed by submitting goroutines",
		func() float64 { return float64(e.pool.Stats().HelperTasks) })
	r.GaugeFunc("eagg_pool_queue_depth", "currently open pool jobs",
		func() float64 { return float64(e.pool.QueueDepth()) })
	r.GaugeFunc("eagg_pool_max_queued", "high-water mark of concurrently open pool jobs",
		func() float64 { return float64(e.pool.Stats().MaxQueued) })

	e.optimizeMS = r.Histogram("eagg_optimize_ms", "optimization latency per request, milliseconds (cache hits included)", nil)
	e.execMS = r.Histogram("eagg_exec_ms", "execution latency per request, milliseconds", nil)
	e.resultRows = r.Counter("eagg_result_rows_total", "result rows produced")
	e.interRows = r.Counter("eagg_intermediate_rows_total", "intermediate rows materialized (measured C_out)")
	e.errorsTotal = r.Counter("eagg_errors_total", "requests that failed")
}

// Registry returns the engine's metrics registry — mount
// Registry().Handler() at /metrics to scrape it, or PublishExpvar to
// expose it through expvar.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Close shuts the engine down: the worker pool drains and exits, and
// subsequent Execute calls fail. In-flight queries complete (their
// fan-outs degrade to inline execution once the pool closes).
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.pool.Close()
}

// Register makes a dataset available to requests by name (replacing any
// previous dataset of that name). The tables must not be mutated after
// registration — every concurrent query reads them directly.
func (e *Engine) Register(name string, data engine.TableData) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.datasets[name] = data
}

// Epoch returns the current feedback epoch (0 when shared feedback is
// off or nothing has been measured yet).
func (e *Engine) Epoch() uint64 {
	if e.stats == nil {
		return 0
	}
	return e.stats.Epoch()
}

// NewSession returns a session bound to the engine. Sessions are cheap
// handles; each is safe for concurrent use by multiple goroutines, and
// any number of sessions may execute at once.
func (e *Engine) NewSession() *Session {
	id := e.sessions.Add(1)
	return &Session{eng: e, id: id}
}

// Metrics is a point-in-time snapshot of the engine's shared state.
type Metrics struct {
	Requests           int64 // queries executed (or failed) through the engine
	AdmissionWaits     int64 // queries that blocked on the admission semaphore
	PlanCacheHits      int64
	PlanCacheMiss      int64
	PlanCacheEvictions int64  // capacity evictions + stale-epoch prunes
	PlanCacheSize      int    // entries currently cached
	Epoch              uint64 // current feedback epoch
	FeedbackKeys       int    // measured cardinalities in the shared overlay
	Pool               algebra.PoolStats
}

// Metrics returns current counters.
func (e *Engine) Metrics() Metrics {
	m := Metrics{
		Requests:           e.requests.Load(),
		AdmissionWaits:     e.admissionWaits.Load(),
		PlanCacheHits:      e.cache.hits.Load(),
		PlanCacheMiss:      e.cache.misses.Load(),
		PlanCacheEvictions: e.cache.evictions.Load(),
		PlanCacheSize:      e.cache.size(),
		Pool:               e.pool.Stats(),
	}
	if e.stats != nil {
		m.Epoch = e.stats.Epoch()
		m.FeedbackKeys = e.stats.Len()
	}
	return m
}

// Session is one client's handle on the engine.
type Session struct {
	eng *Engine
	id  int64
}

// ID returns the session's engine-unique id.
func (s *Session) ID() int64 { return s.id }

// Request is one query submission.
type Request struct {
	// Opt configures the optimizer. Opt.Stats must be nil — the engine
	// installs its own shared-overlay snapshot (requests needing custom
	// statistics belong on the one-shot library entry points).
	Opt core.Options
	// Exec configures execution. Exec.Pool must be nil — the engine
	// supplies the shared scheduler. Exec.Trace is honored: the request
	// records its optimize span (annotated with the plan-cache outcome)
	// and its operator spans into the caller's trace.
	Exec engine.ExecOptions
	// Data is the inline input data; leave nil to use the registered
	// dataset named by Dataset.
	Data engine.TableData
	// Dataset names a registered dataset (ignored when Data is set).
	Dataset string
	// NoCache bypasses the plan cache for this request (the plan is
	// optimized fresh and not stored) — the cold-path reference.
	NoCache bool
}

// Response is one executed query.
type Response struct {
	Table *algebra.Table
	Plan  *plan.Plan
	// Stats is the execution profile (measured C_out, per-operator
	// cardinalities, result rows).
	Stats *engine.ExecStats
	// OptStats reports the optimizer's search effort. On a plan-cache
	// hit it is the zero value — no csg-cmp-pairs enumerated, no plans
	// built — which is exactly the point of the cache.
	OptStats core.Stats
	// CacheHit reports that the plan came from the cache (including
	// waiting on another request's in-flight optimization).
	CacheHit bool
	// Epoch is the feedback epoch the plan was optimized under.
	Epoch uint64
	// OptimizeMillis and ExecMillis split the request's wall time.
	OptimizeMillis float64
	ExecMillis     float64
}

// Execute optimizes and runs one query. Safe for arbitrary concurrent
// use; the result table is bit-identical to the one-shot library call
// (core.Optimize + engine.ExecTablesOpts) under the same statistics
// snapshot, whatever the concurrency.
func (s *Session) Execute(q *query.Query, req Request) (*Response, error) {
	return s.eng.execute(q, req)
}

func (e *Engine) execute(q *query.Query, req Request) (*Response, error) {
	resp, err := e.doExecute(q, req)
	if err != nil {
		e.errorsTotal.Inc()
	}
	return resp, err
}

func (e *Engine) doExecute(q *query.Query, req Request) (*Response, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, errors.New("service: engine is closed")
	}
	data := req.Data
	if data == nil {
		if req.Dataset == "" {
			e.mu.Unlock()
			return nil, errors.New("service: request needs Data or a Dataset name")
		}
		var ok bool
		data, ok = e.datasets[req.Dataset]
		if !ok {
			e.mu.Unlock()
			return nil, fmt.Errorf("service: unknown dataset %q", req.Dataset)
		}
	}
	e.mu.Unlock()
	if req.Opt.Stats != nil {
		return nil, errors.New("service: Request.Opt.Stats must be nil (the engine supplies the shared statistics snapshot)")
	}
	if req.Exec.Pool != nil {
		return nil, errors.New("service: Request.Exec.Pool must be nil (the engine supplies the shared scheduler)")
	}
	e.requests.Add(1)

	// Admission: bound the queries executing at once. Waiting requests
	// queue on the channel in arrival order.
	select {
	case e.sem <- struct{}{}:
	default:
		e.admissionWaits.Add(1)
		e.sem <- struct{}{}
	}
	defer func() { <-e.sem }()

	// Freeze the statistics for this query: the snapshot is immutable,
	// so the whole optimization — parallel DP workers included — sees
	// one consistent state no concurrent publish can perturb.
	opt := req.Opt
	var epoch uint64
	if e.stats != nil {
		var snap *cost.FeedbackOverlay
		snap, epoch = e.stats.Snapshot()
		opt.Stats = snap
	}

	resp := &Response{Epoch: epoch}
	// With a trace attached, the optimize phase records a span whose id is
	// tr.Len() before the call (Begin appends immediately); TraceOptimize
	// attaches the search telemetry, the cache outcome is annotated after.
	// On a cache hit the stats are zero and the span has no dp-level
	// children — which is exactly the point of the cache.
	tr := req.Exec.Trace
	sid := -1
	if tr != nil {
		sid = tr.Len()
	}
	optStart := time.Now()
	if req.NoCache {
		res, err := engine.TraceOptimize(tr, "optimize", func() (*core.Result, error) {
			return core.Optimize(q, opt)
		})
		if err != nil {
			return nil, err
		}
		resp.Plan, resp.OptStats = res.Plan, res.Stats
	} else {
		key := cacheKey{sig: core.Fingerprint(q, opt), epoch: epoch}
		_, err := engine.TraceOptimize(tr, "optimize", func() (*core.Result, error) {
			p, stats, hit, err := e.cache.getOrCompute(key, func() (*plan.Plan, core.Stats, error) {
				res, err := core.Optimize(q, opt)
				if err != nil {
					return nil, core.Stats{}, err
				}
				return res.Plan, res.Stats, nil
			})
			if err != nil {
				return nil, err
			}
			resp.Plan, resp.CacheHit = p, hit
			if !hit {
				resp.OptStats = stats
			}
			return &core.Result{Plan: p, Stats: resp.OptStats}, nil
		})
		if err != nil {
			return nil, err
		}
	}
	if sid >= 0 {
		switch {
		case req.NoCache:
			tr.Annotate(sid, "plan_cache", "bypass")
		case resp.CacheHit:
			tr.Annotate(sid, "plan_cache", "hit")
		default:
			tr.Annotate(sid, "plan_cache", "miss")
		}
	}
	resp.OptimizeMillis = float64(time.Since(optStart).Microseconds()) / 1000
	e.optimizeMS.Observe(resp.OptimizeMillis)

	ex := req.Exec
	if ex.Workers == 0 {
		ex.Workers = e.opts.Workers
	}
	ex.Pool = e.pool
	execStart := time.Now()
	tab, stats, err := engine.ExecProfiledOpts(q, resp.Plan, data, ex)
	if err != nil {
		return nil, err
	}
	resp.ExecMillis = float64(time.Since(execStart).Microseconds()) / 1000
	e.execMS.Observe(resp.ExecMillis)
	resp.Table, resp.Stats = tab, stats
	e.resultRows.Add(int64(stats.ResultRows))
	e.interRows.Add(int64(stats.ActualCout))

	// Publish the measured cardinalities. The epoch only advances when
	// a measurement actually changes (steady-state workloads keep their
	// cached plans); on a change, plans optimized under older epochs
	// are dropped — the epoch half of the cache key already keeps them
	// from being returned, pruning just frees the memory.
	if e.stats != nil {
		if newEpoch, changed := e.stats.Publish(stats.Profile()); changed {
			e.epochAdvances.Inc()
			e.cache.pruneBelow(newEpoch)
		}
	}
	return resp, nil
}
