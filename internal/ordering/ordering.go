// Package ordering implements the order property of the sort-based
// physical layer (Selinger-style interesting orders; Neumann & Moerkotte,
// ICDE 2004): a physical row order as an attribute sequence, a canonical
// representation usable as a DP plan-class key, and the inference rules
// that decide when an existing order makes a sort unnecessary.
//
// An Order is contractual: it describes the sequence rows are genuinely
// in, not a hint. Orders originate at base relations whose scan order was
// declared (query.SetScanOrder) and propagate only through operators that
// preserve their input sequence — which, in this runtime, is every
// sort-based operator (they emit the hash-canonical output sequence, see
// internal/algebra/sort.go) and nothing else the optimizer relies on. The
// hash layer physically happens to preserve probe order too, but the
// optimizer deliberately claims nothing for it: claiming less than
// reality is sound, and it is exactly what makes the sort-based layer
// competitive where orders matter.
//
// Two different relations between attributes feed the rules, and they
// must not be conflated:
//
//   - value equivalence (a ↔ b from an inner equi-join a = b applied
//     inside the subplan): rows carry equal values, so "sorted by a"
//     and "sorted by b" are the same physical fact. Only this relation
//     may substitute attributes in an order.
//   - functional dependency (key → attributes, plus the equivalences):
//     equal determinant implies equal dependent, with no monotonicity.
//     Sufficient for grouping ("rows with equal G are consecutive") but
//     never for sorting (sorted by o_orderkey says nothing about the
//     sequence of o_orderdate values).
package ordering

import (
	"strconv"
	"strings"

	"eagg/internal/bitset"
	"eagg/internal/fd"
	"eagg/internal/query"
)

// Order is a physical row order: attribute ids in significance order,
// ascending under the runtime's value comparison. nil/empty means "no
// known order".
type Order []int

// IsEmpty reports whether the order carries no information.
func (o Order) IsEmpty() bool { return len(o) == 0 }

// Key returns the canonical representation of the order, usable as (part
// of) a DP plan-class key. The empty order has the empty key.
func (o Order) Key() string {
	if len(o) == 0 {
		return ""
	}
	var b strings.Builder
	for i, a := range o {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(a))
	}
	return b.String()
}

// Equal reports attribute-wise equality.
func (o Order) Equal(p Order) bool {
	if len(o) != len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether p is a prefix of o — the plain (equivalence-
// free) "o is at least as strong as p" test the dominance pruning uses.
func (o Order) HasPrefix(p Order) bool {
	if len(p) > len(o) {
		return false
	}
	for i := range p {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// Info derives order-inference facts for one query. It is built once per
// optimization (or estimator clone) and caches the per-relation-set
// equivalence classes and functional dependencies; all cached values are
// pure functions of the query, so clones stay numerically identical.
// Info is not safe for concurrent use — share the query, clone the Info.
type Info struct {
	q *query.Query

	// innerPairs holds every attribute pair of an inner equi-join
	// predicate with the relation set the pair spans. A pair is a value
	// equivalence inside any subplan covering its relations: DP plans
	// over S apply every predicate internal to S.
	innerPairs []attrPair

	equivs map[bitset.VSet]*unionFind
	fds    map[bitset.VSet]*fd.Set
}

type attrPair struct {
	a, b int
	rels bitset.VSet
}

// NewInfo analyses the query once.
func NewInfo(q *query.Query) *Info {
	in := &Info{
		q:      q,
		equivs: map[bitset.VSet]*unionFind{},
		fds:    map[bitset.VSet]*fd.Set{},
	}
	var walk func(n *query.OpNode)
	walk = func(n *query.OpNode) {
		if n == nil || n.Kind == query.KindScan {
			return
		}
		// Only inner-join predicates are value equivalences: outer-join
		// padding breaks a = b with one side NULL, and the left-only
		// operators drop the right attributes entirely.
		if n.Kind == query.KindJoin {
			for i := range n.Pred.Left {
				a, b := n.Pred.Left[i], n.Pred.Right[i]
				in.innerPairs = append(in.innerPairs, attrPair{
					a: a, b: b,
					rels: bitset.SingleV(q.AttrRel[a]).Union(bitset.SingleV(q.AttrRel[b])),
				})
			}
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(q.Root)
	return in
}

// Clone returns an Info sharing the immutable query analysis but owning
// private caches, for concurrent optimizer workers.
func (in *Info) Clone() *Info {
	return &Info{
		q:          in.q,
		innerPairs: in.innerPairs,
		equivs:     map[bitset.VSet]*unionFind{},
		fds:        map[bitset.VSet]*fd.Set{},
	}
}

// ScanOrder returns the declared physical order of a base relation.
func (in *Info) ScanOrder(rel int) Order {
	return Order(in.q.Relations[rel].Ordered)
}

// equivFor returns the value-equivalence classes valid inside a subplan
// over rels: the union-find over inner-join pairs internal to the set.
func (in *Info) equivFor(rels bitset.VSet) *unionFind {
	if uf, ok := in.equivs[rels]; ok {
		return uf
	}
	uf := newUnionFind(len(in.q.AttrNames))
	for _, p := range in.innerPairs {
		if p.rels.SubsetOf(rels) {
			uf.union(p.a, p.b)
		}
	}
	in.equivs[rels] = uf
	return uf
}

// fdsFor returns the functional dependencies valid inside a subplan over
// rels: candidate keys of the covered relations plus the internal inner
// equi-join equivalences. Both families survive outer-join padding and
// grouping under the NULL-equality convention of Sec. 2.3 (padded rows
// are NULL on both sides of every internal dependency; grouping
// representatives carry the attribute combinations of real rows).
func (in *Info) fdsFor(rels bitset.VSet) *fd.Set {
	if s, ok := in.fds[rels]; ok {
		return s
	}
	s := &fd.Set{}
	rels.ForEach(func(r int) {
		for _, k := range in.q.Relations[r].Keys {
			s.Add(k, in.q.Relations[r].Attrs)
		}
	})
	for _, p := range in.innerPairs {
		if p.rels.SubsetOf(rels) {
			s.AddEquiv(p.a, p.b)
		}
	}
	in.fds[rels] = s
	return s
}

// CoversKeys reports whether an input order makes sorting by the given
// key sequence unnecessary, and if so under which permutation of the
// keys. rels is the relation set of the input subplan (its value
// equivalences may substitute attributes). keys is matched greedily
// against the order prefix: position i of the order must be value-
// equivalent to some not-yet-used key; the returned perm maps merge
// position → index into keys. ok is false when no permutation works.
func (in *Info) CoversKeys(rels bitset.VSet, ord Order, keys []int) (perm []int, ok bool) {
	if len(keys) == 0 {
		return nil, true
	}
	if len(ord) < len(keys) {
		return nil, false
	}
	uf := in.equivFor(rels)
	used := make([]bool, len(keys))
	perm = make([]int, 0, len(keys))
	for pos := 0; pos < len(keys); pos++ {
		found := -1
		for j, k := range keys {
			if !used[j] && uf.same(ord[pos], k) {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		used[found] = true
		perm = append(perm, found)
	}
	return perm, true
}

// CoversKeysInOrder reports whether the order covers exactly the given
// key sequence — no permutation freedom, used for the second input of a
// merge join once the first input's match has fixed the pair order.
func (in *Info) CoversKeysInOrder(rels bitset.VSet, ord Order, keys []int) bool {
	if len(keys) == 0 {
		return true
	}
	if len(ord) < len(keys) {
		return false
	}
	uf := in.equivFor(rels)
	for i, k := range keys {
		if !uf.same(ord[i], k) {
			return false
		}
	}
	return true
}

// CoversGrouping reports whether an input order makes sorting for a
// grouping on groupBy unnecessary: rows with equal groupBy values are
// already consecutive. That holds iff some prefix P of the order
// satisfies, under the dependencies valid in the subplan,
//
//	closure(P) ⊇ G  (equal P ⇒ equal G: a P-run never spans two groups)
//	P ⊆ closure(G)  (equal G ⇒ equal P: one group never splits across runs)
//
// so G-groups are exactly P-runs and a streaming aggregation over the
// existing sequence produces exactly the hash aggregation's groups.
// The covering prefix is returned so the runtime can verify the
// underlying order claim while streaming (the runs argument is only as
// good as the scan-order declaration it rests on). Grouping on ∅ (one
// global group) is trivially covered, with an empty prefix.
func (in *Info) CoversGrouping(rels bitset.VSet, ord Order, groupBy bitset.VSet) (prefix Order, ok bool) {
	if groupBy.IsEmpty() {
		return nil, true
	}
	if len(ord) == 0 {
		return nil, false
	}
	fds := in.fdsFor(rels)
	gClosure := fds.Closure(groupBy)
	var p bitset.VSet
	for i, a := range ord {
		if !gClosure.Contains(a) {
			return nil, false // prefix stops being contained in closure(G)
		}
		p = p.Add(a)
		if groupBy.SubsetOf(fds.Closure(p)) {
			return append(Order(nil), ord[:i+1]...), true
		}
	}
	return nil, false
}

// GroupOutputOrder maps an input order through a grouping on groupBy:
// the output (one representative row per group, in first-encounter
// order) is sorted by every input-order prefix whose attributes survive
// — an attribute survives if it is value-equivalent to a grouping
// attribute (equal values, so the grouping column carries the same
// sequence). The mapped order stops at the first non-survivor.
func (in *Info) GroupOutputOrder(rels bitset.VSet, ord Order, groupBy bitset.VSet) Order {
	if len(ord) == 0 {
		return nil
	}
	uf := in.equivFor(rels)
	var out Order
	for _, a := range ord {
		mapped := -1
		if groupBy.Contains(a) {
			mapped = a
		} else {
			groupBy.ForEach(func(g int) {
				if mapped < 0 && uf.same(a, g) {
					mapped = g
				}
			})
		}
		if mapped < 0 {
			break
		}
		out = append(out, mapped)
	}
	return out
}

// unionFind is a tiny union-find over attribute ids.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(a int) int {
	for uf.parent[a] != a {
		uf.parent[a] = uf.parent[uf.parent[a]]
		a = uf.parent[a]
	}
	return a
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra != rb {
		// Deterministic root choice: the smaller id wins.
		if ra > rb {
			ra, rb = rb, ra
		}
		uf.parent[rb] = ra
	}
}

func (uf *unionFind) same(a, b int) bool {
	if a == b {
		return true
	}
	if a < 0 || b < 0 || a >= len(uf.parent) || b >= len(uf.parent) {
		return false
	}
	return uf.find(a) == uf.find(b)
}
