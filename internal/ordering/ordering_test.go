package ordering

import (
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/bitset"
	"eagg/internal/query"
)

// testQuery builds customer(ck key) ⋈ orders(ock, ok key) ⋈ lineitem(lk)
// with ck = ock and ok = lk — the Q3 shape the covering rules must get
// right.
func testQuery(t *testing.T) (q *query.Query, ck, ock, ok, lk, odate int) {
	t.Helper()
	q = query.New()
	c := q.AddRelation("customer", 100)
	o := q.AddRelation("orders", 200)
	l := q.AddRelation("lineitem", 400)
	ck = q.AddAttr(c, "c.ck", 100)
	ock = q.AddAttr(o, "o.ck", 100)
	ok = q.AddAttr(o, "o.ok", 200)
	odate = q.AddAttr(o, "o.date", 50)
	lk = q.AddAttr(l, "l.ok", 200)
	q.AddKey(c, ck)
	q.AddKey(o, ok)
	co := &query.OpNode{
		Kind: query.KindJoin,
		Left: &query.OpNode{Kind: query.KindScan, Rel: c}, Right: &query.OpNode{Kind: query.KindScan, Rel: o},
		Pred: &query.Predicate{Left: []int{ck}, Right: []int{ock}, Selectivity: 0.01},
	}
	q.Root = &query.OpNode{
		Kind: query.KindJoin,
		Left: co, Right: &query.OpNode{Kind: query.KindScan, Rel: l},
		Pred: &query.Predicate{Left: []int{ok}, Right: []int{lk}, Selectivity: 0.005},
	}
	q.SetGrouping([]int{lk, odate}, aggfn.Vector{{Out: "cnt", Kind: aggfn.CountStar}})
	return q, ck, ock, ok, lk, odate
}

func rels(ids ...int) bitset.VSet {
	var s bitset.VSet
	for _, r := range ids {
		s = s.Add(r)
	}
	return s
}

func TestCoversKeysEquivalence(t *testing.T) {
	q, ck, ock, ok, lk, _ := testQuery(t)
	in := NewInfo(q)

	// Inside {orders, lineitem}, ok = lk holds, so an order on ok covers
	// a merge on lk.
	if _, covered := in.CoversKeys(rels(1, 2), Order{ok}, []int{lk}); !covered {
		t.Fatal("order (o.ok) should cover merge key l.ok inside {o,l}")
	}
	// Outside the set of the equivalence (only lineitem) it must not.
	if _, covered := in.CoversKeys(rels(2), Order{ok}, []int{lk}); covered {
		t.Fatal("o.ok must not substitute for l.ok without the join inside the set")
	}
	// ck covers ock via the customer join, but never ok: key FDs are not
	// value equality, so being the key of orders buys no order.
	if _, covered := in.CoversKeys(rels(0, 1), Order{ck}, []int{ock}); !covered {
		t.Fatal("order (c.ck) should cover merge key o.ck inside {c,o}")
	}
	if _, covered := in.CoversKeys(rels(0, 1), Order{ck}, []int{ok}); covered {
		t.Fatal("c.ck must not substitute for o.ok: functional dependency is not value equality")
	}
}

func TestCoversKeysPermutation(t *testing.T) {
	q := query.New()
	a := q.AddRelation("a", 10)
	b := q.AddRelation("b", 10)
	ax := q.AddAttr(a, "a.x", 5)
	ay := q.AddAttr(a, "a.y", 5)
	bx := q.AddAttr(b, "b.x", 5)
	by := q.AddAttr(b, "b.y", 5)
	q.Root = &query.OpNode{
		Kind: query.KindJoin,
		Left: &query.OpNode{Kind: query.KindScan, Rel: a}, Right: &query.OpNode{Kind: query.KindScan, Rel: b},
		Pred: &query.Predicate{Left: []int{ax, ay}, Right: []int{bx, by}, Selectivity: 0.1},
	}
	in := NewInfo(q)
	// Order (y, x) covers keys [x, y] under the permutation [1, 0].
	perm, covered := in.CoversKeys(rels(0), Order{ay, ax}, []int{ax, ay})
	if !covered || len(perm) != 2 || perm[0] != 1 || perm[1] != 0 {
		t.Fatalf("want permutation [1 0], got %v covered=%v", perm, covered)
	}
	// A one-attribute order cannot cover a two-key merge.
	if _, covered := in.CoversKeys(rels(0), Order{ax}, []int{ax, ay}); covered {
		t.Fatal("prefix shorter than the key sequence must not cover it")
	}
	_ = by
}

func TestCoversGroupingFD(t *testing.T) {
	q, _, _, ok, lk, odate := testQuery(t)
	in := NewInfo(q)
	s := rels(0, 1, 2)
	g := bitset.SingleV(lk).Add(odate)

	// Order on o.ok covers grouping {l.ok, o.date}: ok ↔ lk makes equal
	// groups equal runs, and ok → o.date via the orders key. The
	// returned covering prefix is what the runtime verifies.
	prefix, covered := in.CoversGrouping(s, Order{ok}, g)
	if !covered || len(prefix) != 1 || prefix[0] != ok {
		t.Fatalf("order (o.ok) should cover grouping {l.ok, o.date} with prefix (o.ok), got %v %v", prefix, covered)
	}
	// An order on o.date alone covers nothing: two runs of one date can
	// belong to different orderkeys and one group can span runs.
	if _, covered := in.CoversGrouping(s, Order{odate}, g); covered {
		t.Fatal("order (o.date) must not cover grouping {l.ok, o.date}")
	}
	// No order covers nothing (except the global group).
	if _, covered := in.CoversGrouping(s, nil, g); covered {
		t.Fatal("empty order must not cover a non-empty grouping")
	}
	if _, covered := in.CoversGrouping(s, nil, bitset.VSet{}); !covered {
		t.Fatal("the global group is trivially covered")
	}
}

func TestGroupOutputOrder(t *testing.T) {
	q, _, _, ok, lk, odate := testQuery(t)
	in := NewInfo(q)
	s := rels(0, 1, 2)
	g := bitset.SingleV(lk).Add(odate)

	// The grouped output keeps the input order mapped into grouping
	// columns: o.ok maps to its equivalent l.ok.
	got := in.GroupOutputOrder(s, Order{ok}, g)
	if len(got) != 1 || got[0] != lk {
		t.Fatalf("want mapped order (l.ok), got %v", got)
	}
	// An order attribute without a grouping equivalent truncates the
	// mapped order there.
	if got := in.GroupOutputOrder(s, Order{ok, 0}, g); len(got) != 1 || got[0] != lk {
		t.Fatalf("mapped order should truncate at unmappable attrs, got %v", got)
	}
}

func TestOrderKeyAndPrefix(t *testing.T) {
	if (Order{}).Key() != "" || (Order{3, 1}).Key() != "3,1" {
		t.Fatal("canonical order keys drifted")
	}
	if !(Order{1, 2, 3}).HasPrefix(Order{1, 2}) || (Order{1, 2}).HasPrefix(Order{1, 2, 3}) ||
		(Order{1, 3}).HasPrefix(Order{1, 2}) || !(Order{1}).HasPrefix(nil) {
		t.Fatal("prefix test drifted")
	}
}
