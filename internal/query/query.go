// Package query models the optimizer's input: base relations with
// statistics, a universe of attributes identified by small integers (so
// attribute sets are bitsets), equi-join predicates with selectivities, the
// initial operator tree produced by the parser, and the query's grouping
// attributes G plus aggregation vector F.
//
// Attribute ids are query-global and every attribute set — grouping sets,
// join attribute sets, keys, functional dependencies — is an adaptive-width
// bitset.VSet, so the universe is bounded only by the MaxAttrs sanity cap.
// Only attributes actually referenced by the query (predicates, group-by,
// aggregates, keys) need to be registered.
package query

import (
	"fmt"
	"math/bits"

	"eagg/internal/aggfn"
	"eagg/internal/bitset"
)

const (
	// MaxRelations is the relation capacity of the wide enumeration path
	// (bitset.WideBits with the same one-element headroom Set64 kept for
	// its 63-relation cap).
	MaxRelations = bitset.WideBits - 1
	// MaxAttrs caps the attribute universe. Attribute sets are
	// adaptive-width VSets with no intrinsic limit, so this is only a
	// sanity bound against absurd universes; it comfortably admits a
	// 100-relation clique (~10k predicate attributes).
	MaxAttrs = 1 << 14
)

// OpKind enumerates the operators of Sec. 2.2 that can appear in the
// initial operator tree.
type OpKind int

const (
	// KindScan is a base relation leaf.
	KindScan OpKind = iota
	// KindJoin is the inner join B.
	KindJoin
	// KindSemiJoin is the left semijoin N.
	KindSemiJoin
	// KindAntiJoin is the left antijoin T.
	KindAntiJoin
	// KindLeftOuter is the left outerjoin E.
	KindLeftOuter
	// KindFullOuter is the full outerjoin K.
	KindFullOuter
	// KindGroupJoin is the left groupjoin Z.
	KindGroupJoin
)

var kindNames = map[OpKind]string{
	KindScan:      "scan",
	KindJoin:      "join",
	KindSemiJoin:  "semijoin",
	KindAntiJoin:  "antijoin",
	KindLeftOuter: "leftouterjoin",
	KindFullOuter: "fullouterjoin",
	KindGroupJoin: "groupjoin",
}

func (k OpKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Commutative reports whether the operator commutes (Sec. 4.1 line 7).
func (k OpKind) Commutative() bool {
	return k == KindJoin || k == KindFullOuter
}

// LeftOnly reports whether the operator only preserves attributes of its
// left input (N, T, Z), which restricts grouping pushes to the left
// argument (Sec. 3.1.3).
func (k OpKind) LeftOnly() bool {
	return k == KindSemiJoin || k == KindAntiJoin || k == KindGroupJoin
}

// Relation is a base relation with statistics.
type Relation struct {
	Name string
	Card float64
	// Attrs is the set of registered attribute ids owned by the relation.
	Attrs bitset.VSet
	// Keys lists candidate keys (attribute sets). A relation with at
	// least one key is duplicate-free (SQL primary key / uniqueness
	// remark in Sec. 3.2).
	Keys []bitset.VSet
	// Ordered declares the physical row order the relation's data
	// arrives in: attribute ids in significance order, ascending under
	// the runtime's value comparison with NULLs first. It is a promise
	// about the data, not a hint — the sort-based physical layer reuses
	// the order to skip sorts, and the merge runtime verifies it while
	// streaming (a violated declaration is an execution error, never a
	// wrong result). Empty means "no known order".
	Ordered []int
}

// Predicate is an equi-join predicate ⋀ Left[i] = Right[i] between two
// relations' attributes, with an estimated selectivity w.r.t. the cross
// product of its two sides.
type Predicate struct {
	Left, Right []int // paired attribute ids
	Selectivity float64
}

// Attrs returns all attribute ids the predicate references, F(q).
func (p *Predicate) Attrs() bitset.VSet {
	var s bitset.VSet
	for _, a := range p.Left {
		s = s.Add(a)
	}
	for _, a := range p.Right {
		s = s.Add(a)
	}
	return s
}

// LeftAttrs returns the attribute ids on the left side.
func (p *Predicate) LeftAttrs() bitset.VSet {
	var s bitset.VSet
	for _, a := range p.Left {
		s = s.Add(a)
	}
	return s
}

// RightAttrs returns the attribute ids on the right side.
func (p *Predicate) RightAttrs() bitset.VSet {
	var s bitset.VSet
	for _, a := range p.Right {
		s = s.Add(a)
	}
	return s
}

// OpNode is a node of the initial operator tree.
type OpNode struct {
	Kind        OpKind
	Rel         int // for KindScan: relation id
	Left, Right *OpNode
	Pred        *Predicate
	// GroupJoinAggs is the groupjoin's own aggregation vector F̄
	// (KindGroupJoin only). Its outputs live on the left side afterwards.
	GroupJoinAggs aggfn.Vector
}

// Rels returns the set of relations in the subtree.
func (n *OpNode) Rels() bitset.VSet {
	if n == nil {
		return bitset.VSet{}
	}
	if n.Kind == KindScan {
		return bitset.SingleV(n.Rel)
	}
	return n.Left.Rels().Union(n.Right.Rels())
}

// Query is the complete optimizer input.
type Query struct {
	Relations []Relation
	// AttrNames maps attribute id → name; AttrRel maps id → owning
	// relation.
	AttrNames []string
	AttrRel   []int
	// Distinct holds the number of distinct values per attribute id.
	Distinct []float64
	// Root is the initial operator tree.
	Root *OpNode
	// GroupBy is the grouping attribute set G; Aggregates the vector F.
	// A query without grouping has an empty GroupBy and nil Aggregates
	// and degenerates to plain join ordering.
	GroupBy    bitset.VSet
	Aggregates aggfn.Vector
	// HasGrouping distinguishes "group by ∅ with aggregates" (a single
	// global group) from "no grouping at all".
	HasGrouping bool

	attrByName map[string]int
	// err records the first construction error (relation/attribute
	// capacity overflow). Construction methods keep returning ids so
	// fluent query building does not crash mid-way; Validate surfaces
	// the error, so core.Optimize and the eagg facade report it instead
	// of panicking.
	err error
}

// New returns an empty query.
func New() *Query {
	return &Query{attrByName: map[string]int{}}
}

// fail records the first construction error; later errors are dropped
// (the first one names the root cause).
func (q *Query) fail(err error) {
	if q.err == nil {
		q.err = err
	}
}

// Err returns the first construction error (capacity overflow), if any.
// Validate reports it too, so most callers never need this directly.
func (q *Query) Err() error { return q.err }

// AddRelation registers a relation and returns its id. Relation ids are
// bitset positions; queries with ≤63 relations take the Set64 fast path
// of the enumerator and larger ones (up to MaxRelations) the wide path.
// Adding more records an error (surfaced by Validate, core.Optimize and
// the eagg facade) and returns the last valid id so fluent construction
// can continue without crashing.
func (q *Query) AddRelation(name string, card float64) int {
	if len(q.Relations) >= MaxRelations {
		q.fail(fmt.Errorf("query: too many relations (relation %q exceeds the max of %d)", name, MaxRelations))
		return len(q.Relations) - 1
	}
	q.Relations = append(q.Relations, Relation{Name: name, Card: card})
	return len(q.Relations) - 1
}

// AddAttr registers an attribute of a relation with a distinct-value count
// and returns its id. Attribute names are query-global (qualify them like
// "s.nationkey" when needed). Attribute ids are bitset positions in
// adaptive-width sets; the MaxAttrs sanity cap guards against absurd
// universes, and overflow records an error (surfaced by Validate) and
// returns the last valid id instead of panicking.
func (q *Query) AddAttr(rel int, name string, distinct float64) int {
	if len(q.AttrNames) >= MaxAttrs {
		q.fail(fmt.Errorf("query: too many attributes (attribute %q exceeds the max of %d registered attributes per query)", name, MaxAttrs))
		return len(q.AttrNames) - 1
	}
	if _, dup := q.attrByName[name]; dup {
		panic(fmt.Sprintf("query: duplicate attribute %q", name))
	}
	if distinct < 1 {
		distinct = 1
	}
	id := len(q.AttrNames)
	q.AttrNames = append(q.AttrNames, name)
	q.AttrRel = append(q.AttrRel, rel)
	q.Distinct = append(q.Distinct, distinct)
	q.Relations[rel].Attrs = q.Relations[rel].Attrs.Add(id)
	q.attrByName[name] = id
	return id
}

// AttrID resolves an attribute name; panics on unknown names (query
// construction bug, not runtime input).
func (q *Query) AttrID(name string) int {
	id, ok := q.attrByName[name]
	if !ok {
		panic(fmt.Sprintf("query: unknown attribute %q", name))
	}
	return id
}

// AddKey declares a candidate key on a relation.
func (q *Query) AddKey(rel int, attrs ...int) {
	var s bitset.VSet
	for _, a := range attrs {
		s = s.Add(a)
	}
	q.Relations[rel].Keys = append(q.Relations[rel].Keys, s)
}

// SetScanOrder declares the physical row order of a relation's data:
// ascending by the given attributes (significance order, NULLs first).
// The sort-based physical layer treats the declaration as an interesting
// order it can reuse; the merge runtime verifies it during execution.
func (q *Query) SetScanOrder(rel int, attrs ...int) {
	q.Relations[rel].Ordered = append([]int(nil), attrs...)
}

// SetGrouping installs the top grouping Γ_G;F.
func (q *Query) SetGrouping(groupBy []int, f aggfn.Vector) {
	q.GroupBy = bitset.VSet{}
	for _, a := range groupBy {
		q.GroupBy = q.GroupBy.Add(a)
	}
	q.Aggregates = f
	q.HasGrouping = true
}

// RelsOf returns the set of relations owning the given attributes.
func (q *Query) RelsOf(attrs bitset.VSet) bitset.VSet {
	// Word-level iteration instead of ForEach: the closure would force the
	// accumulator onto the heap, and this runs on the optimizer's hot path.
	var out bitset.VSet
	for w, nw := 0, attrs.NumWords(); w < nw; w++ {
		for t := attrs.Word(w); t != 0; t &= t - 1 {
			out = out.Add(q.AttrRel[w*64+bits.TrailingZeros64(t)])
		}
	}
	return out
}

// AttrsOf returns the union of attribute sets of the given relations.
func (q *Query) AttrsOf(rels bitset.VSet) bitset.VSet {
	var out bitset.VSet
	for w, nw := 0, rels.NumWords(); w < nw; w++ {
		for t := rels.Word(w); t != 0; t &= t - 1 {
			out = out.Union(q.Relations[w*64+bits.TrailingZeros64(t)].Attrs)
		}
	}
	return out
}

// AggSourceRels returns, per aggregate of F, the set of relations its
// arguments come from (empty for count(*)). Aggregates referencing
// groupjoin outputs are attributed to the groupjoin's source relations via
// the extra attribute registrations done by AddGroupJoinOutput.
func (q *Query) AggSourceRels() []bitset.VSet {
	out := make([]bitset.VSet, len(q.Aggregates))
	for i, a := range q.Aggregates {
		var s bitset.VSet
		for _, arg := range a.Args() {
			s = s.Add(q.AttrRel[q.AttrID(arg)])
		}
		out[i] = s
	}
	return out
}

// Validate performs structural sanity checks and returns an error
// describing the first problem found.
func (q *Query) Validate() error {
	if q.err != nil {
		return q.err
	}
	if q.Root == nil {
		return fmt.Errorf("query: missing operator tree")
	}
	rels := q.Root.Rels()
	if rels.Len() != len(q.Relations) {
		return fmt.Errorf("query: operator tree covers %d relations, catalog has %d",
			rels.Len(), len(q.Relations))
	}
	var walk func(n *OpNode) error
	walk = func(n *OpNode) error {
		if n == nil {
			return fmt.Errorf("query: nil operator node")
		}
		if n.Kind == KindScan {
			if n.Rel < 0 || n.Rel >= len(q.Relations) {
				return fmt.Errorf("query: scan of unknown relation %d", n.Rel)
			}
			return nil
		}
		if n.Pred == nil {
			return fmt.Errorf("query: %v without predicate", n.Kind)
		}
		if len(n.Pred.Left) != len(n.Pred.Right) || len(n.Pred.Left) == 0 {
			return fmt.Errorf("query: malformed predicate on %v", n.Kind)
		}
		if n.Pred.Selectivity <= 0 || n.Pred.Selectivity > 1 {
			return fmt.Errorf("query: selectivity %v out of (0,1]", n.Pred.Selectivity)
		}
		lrels, rrels := n.Left.Rels(), n.Right.Rels()
		if !q.RelsOf(n.Pred.LeftAttrs()).SubsetOf(lrels) || !q.RelsOf(n.Pred.RightAttrs()).SubsetOf(rrels) {
			return fmt.Errorf("query: predicate attributes of %v not in the matching subtrees", n.Kind)
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	if err := walk(q.Root); err != nil {
		return err
	}
	for _, a := range q.Aggregates {
		for _, arg := range a.Args() {
			if _, ok := q.attrByName[arg]; !ok {
				return fmt.Errorf("query: aggregate references unknown attribute %q", arg)
			}
		}
	}
	var bad error
	q.GroupBy.ForEach(func(a int) {
		if a >= len(q.AttrNames) && bad == nil {
			bad = fmt.Errorf("query: group-by references unregistered attribute %d", a)
		}
	})
	if bad != nil {
		return bad
	}
	for ri := range q.Relations {
		for _, a := range q.Relations[ri].Ordered {
			if a < 0 || a >= len(q.AttrNames) || !q.Relations[ri].Attrs.Contains(a) {
				return fmt.Errorf("query: scan order of %s references attribute %d outside the relation",
					q.Relations[ri].Name, a)
			}
		}
	}
	return nil
}
