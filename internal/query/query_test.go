package query

import (
	"fmt"
	"strings"
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/bitset"
)

func buildValid() *Query {
	q := New()
	r0 := q.AddRelation("r0", 100)
	r1 := q.AddRelation("r1", 200)
	a0 := q.AddAttr(r0, "a0", 10)
	g0 := q.AddAttr(r0, "g0", 5)
	b1 := q.AddAttr(r1, "b1", 20)
	q.Root = &OpNode{
		Kind:  KindJoin,
		Left:  &OpNode{Kind: KindScan, Rel: r0},
		Right: &OpNode{Kind: KindScan, Rel: r1},
		Pred:  &Predicate{Left: []int{a0}, Right: []int{b1}, Selectivity: 0.05},
	}
	q.SetGrouping([]int{g0}, aggfn.Vector{{Out: "c", Kind: aggfn.CountStar}})
	return q
}

func TestValidate(t *testing.T) {
	if err := buildValid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(q *Query)
		want   string
	}{
		{"missing tree", func(q *Query) { q.Root = nil }, "missing operator tree"},
		{"bad selectivity", func(q *Query) { q.Root.Pred.Selectivity = 0 }, "selectivity"},
		{"missing predicate", func(q *Query) { q.Root.Pred = nil }, "without predicate"},
		{"swapped predicate sides", func(q *Query) {
			q.Root.Pred.Left, q.Root.Pred.Right = q.Root.Pred.Right, q.Root.Pred.Left
		}, "not in the matching subtrees"},
		{"unknown aggregate attr", func(q *Query) {
			q.Aggregates = aggfn.Vector{{Out: "x", Kind: aggfn.Sum, Arg: "nope"}}
		}, "unknown attribute"},
	}
	for _, c := range cases {
		q := buildValid()
		c.mutate(q)
		err := q.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestRelsAndAttrs(t *testing.T) {
	q := buildValid()
	if q.Root.Rels() != bitset.NewV(0, 1) {
		t.Errorf("Rels = %v", q.Root.Rels())
	}
	if got := q.RelsOf(bitset.NewV(q.AttrID("a0"), q.AttrID("b1"))); got != bitset.NewV(0, 1) {
		t.Errorf("RelsOf = %v", got)
	}
	attrs0 := q.AttrsOf(bitset.NewV(0))
	if !attrs0.Contains(q.AttrID("a0")) || attrs0.Contains(q.AttrID("b1")) {
		t.Errorf("AttrsOf = %v", attrs0)
	}
}

func TestAggSourceRels(t *testing.T) {
	q := buildValid()
	q.Aggregates = aggfn.Vector{
		{Out: "c", Kind: aggfn.CountStar},
		{Out: "s", Kind: aggfn.Sum, Arg: "b1"},
	}
	src := q.AggSourceRels()
	if !src[0].IsEmpty() {
		t.Errorf("count(*) source = %v", src[0])
	}
	if src[1] != bitset.NewV(1) {
		t.Errorf("sum(b1) source = %v", src[1])
	}
}

func TestPredicateAttrSets(t *testing.T) {
	p := &Predicate{Left: []int{1, 3}, Right: []int{5}, Selectivity: 0.5}
	if p.LeftAttrs() != bitset.NewV(1, 3) || p.RightAttrs() != bitset.NewV(5) {
		t.Error("predicate attr sets broken")
	}
	if p.Attrs() != bitset.NewV(1, 3, 5) {
		t.Error("Attrs broken")
	}
}

func TestOpKindPredicates(t *testing.T) {
	if !KindJoin.Commutative() || !KindFullOuter.Commutative() {
		t.Error("B and K are commutative")
	}
	if KindLeftOuter.Commutative() || KindSemiJoin.Commutative() {
		t.Error("E and N are not commutative")
	}
	for _, k := range []OpKind{KindSemiJoin, KindAntiJoin, KindGroupJoin} {
		if !k.LeftOnly() {
			t.Errorf("%v must be left-only", k)
		}
	}
	if KindJoin.LeftOnly() || KindFullOuter.LeftOnly() {
		t.Error("B/K are not left-only")
	}
}

func TestDuplicateAttrPanics(t *testing.T) {
	q := New()
	r := q.AddRelation("r", 10)
	q.AddAttr(r, "a", 5)
	defer func() {
		if recover() == nil {
			t.Error("duplicate attribute must panic")
		}
	}()
	q.AddAttr(r, "a", 5)
}

func TestUnknownAttrPanics(t *testing.T) {
	q := New()
	defer func() {
		if recover() == nil {
			t.Error("unknown attribute must panic")
		}
	}()
	q.AttrID("missing")
}

func TestDistinctFloor(t *testing.T) {
	q := New()
	r := q.AddRelation("r", 10)
	a := q.AddAttr(r, "a", 0.2)
	if q.Distinct[a] < 1 {
		t.Error("distinct counts are floored at 1")
	}
}

func TestTooManyRelationsIsError(t *testing.T) {
	q := New()
	for i := 0; i < MaxRelations+10; i++ {
		q.AddRelation("r", 10) // must not panic past the relation cap
	}
	if len(q.Relations) != MaxRelations {
		t.Fatalf("want the catalog capped at %d relations, got %d", MaxRelations, len(q.Relations))
	}
	if q.Err() == nil || !strings.Contains(q.Err().Error(), "too many relations") {
		t.Fatalf("want a too-many-relations error, got %v", q.Err())
	}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "too many relations") {
		t.Fatalf("Validate must surface the construction error, got %v", err)
	}
}

func TestTooManyAttrsIsError(t *testing.T) {
	q := New()
	r := q.AddRelation("r", 10)
	for i := 0; i < MaxAttrs+10; i++ {
		q.AddAttr(r, fmt.Sprintf("a%d", i), 2) // must not panic past the attr cap
	}
	if len(q.AttrNames) != MaxAttrs {
		t.Fatalf("want the universe capped at %d attributes, got %d", MaxAttrs, len(q.AttrNames))
	}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "too many attributes") {
		t.Fatalf("Validate must surface the attribute overflow, got %v", err)
	}
}

func TestScanOrderValidated(t *testing.T) {
	q := buildValid()
	q.SetScanOrder(0, 2) // b1 belongs to r1, not r0
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "scan order") {
		t.Fatalf("want a scan-order validation error, got %v", err)
	}
	q2 := buildValid()
	q2.SetScanOrder(0, 0)
	if err := q2.Validate(); err != nil {
		t.Fatal(err)
	}
}
