package engine_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/tpch"
)

// identicalTables mirrors the helper of parallel_test.go for the
// external test package (which can import tpch without a cycle).
func identicalTables(t *testing.T, label string, want, got *algebra.Table) {
	t.Helper()
	if fmt.Sprint(want.Schema.Names()) != fmt.Sprint(got.Schema.Names()) {
		t.Fatalf("%s: schema differs: %v vs %v", label, want.Schema.Names(), got.Schema.Names())
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: cardinality differs: want %d got %d", label, len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			a, b := want.Rows[i][j], got.Rows[i][j]
			if a.Kind != b.Kind || a.I != b.I || a.S != b.S ||
				math.Float64bits(a.F) != math.Float64bits(b.F) {
				t.Fatalf("%s: row %d slot %d differs: %v vs %v", label, i, j, a, b)
			}
		}
	}
}

// TestExecParallelAtScale runs the default morsel geometry on inputs
// large enough to span many real morsels (TPC-H Q3 core at a few
// thousand rows): workers 1 vs 4 must agree bit for bit, and the
// deterministic cardinality profile (ActualCout) must be identical.
func TestExecParallelAtScale(t *testing.T) {
	q := tpch.Q3()
	data := tpch.GenerateTables(rand.New(rand.NewSource(1)), q, tpch.ExecutionScaleAt("Q3", 20))
	for _, alg := range []core.Algorithm{core.AlgDPhyp, core.AlgEAPrune} {
		res, err := core.Optimize(q, core.Options{Algorithm: alg, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		seq, sstats, err := engine.ExecProfiledOpts(q, res.Plan, data, engine.ExecOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// A small morsel size keeps the fan-out real on one of the runs.
		par, pstats, err := engine.ExecProfiledOpts(q, res.Plan, data, engine.ExecOptions{Workers: 4, MorselSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		identicalTables(t, fmt.Sprintf("%v", alg), seq, par)
		if sstats.ActualCout != pstats.ActualCout || sstats.ResultRows != pstats.ResultRows {
			t.Fatalf("%v: profile diverged: sequential %+v parallel %+v", alg, sstats, pstats)
		}
		if sstats.Workers != 1 || pstats.Workers != 4 {
			t.Fatalf("%v: reported workers %d/%d, want 1/4", alg, sstats.Workers, pstats.Workers)
		}
	}
}

// TestExecOptionsResolution pins the ExecOptions semantics: 0 resolves
// to GOMAXPROCS, explicit counts are reported back through ExecStats.
func TestExecOptionsResolution(t *testing.T) {
	q := tpch.Q3()
	data := tpch.GenerateTables(rand.New(rand.NewSource(1)), q, tpch.ExecutionScale("Q3"))
	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgH1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := engine.ExecProfiledOpts(q, res.Plan, data, engine.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); stats.Workers != want {
		t.Errorf("Workers 0: got %d, want GOMAXPROCS %d", stats.Workers, want)
	}
	_, stats, err = engine.ExecProfiledOpts(q, res.Plan, data, engine.ExecOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 3 {
		t.Errorf("Workers 3: got %d", stats.Workers)
	}
}
