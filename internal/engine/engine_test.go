package engine

import (
	"math/rand"
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/query"
	"eagg/internal/randquery"
)

// TestOptimizedPlansMatchCanonical is the end-to-end correctness gate:
// every plan any algorithm produces for a random query must compute
// exactly the canonical result on random data (including NULLs, outer
// joins, semijoins, and multi-level eager aggregation).
func TestOptimizedPlansMatchCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(20240612))
	algs := []struct {
		alg core.Algorithm
		f   float64
	}{
		{core.AlgDPhyp, 0},
		{core.AlgEAAll, 0},
		{core.AlgEAPrune, 0},
		{core.AlgH1, 0},
		{core.AlgH2, 1.03},
		{core.AlgBeam, 0},
	}
	for n := 2; n <= 6; n++ {
		for trial := 0; trial < 15; trial++ {
			q := randquery.Generate(rng, randquery.Params{Relations: n})
			data := RandomData(rng, q, 6)
			want, err := Canonical(q, data)
			if err != nil {
				t.Fatal(err)
			}
			attrs := OutputAttrs(q)
			for _, a := range algs {
				res, err := core.Optimize(q, core.Options{Algorithm: a.alg, F: a.f})
				if err != nil {
					t.Fatalf("n=%d trial=%d %v: %v", n, trial, a.alg, err)
				}
				got, err := Exec(q, res.Plan, data)
				if err != nil {
					t.Fatalf("n=%d trial=%d %v: exec: %v\nplan:\n%v", n, trial, a.alg, err, res.Plan.StringWithQuery(q))
				}
				if !algebra.EqualBags(want, got, attrs) {
					t.Fatalf("n=%d trial=%d: %v plan computes a different result\nplan:\n%v\nwant:\n%v\ngot:\n%v",
						n, trial, a.alg, res.Plan.StringWithQuery(q), want, got)
				}
			}
		}
	}
}

// TestAvgThroughEagerAggregation: avg requires the sum/countNN
// decomposition; exercise it explicitly on a two-relation query where the
// optimizer pushes a grouping.
func TestAvgThroughEagerAggregation(t *testing.T) {
	q := query.New()
	r0 := q.AddRelation("fact", 1000)
	r1 := q.AddRelation("dim", 10)
	fk := q.AddAttr(r0, "fact.fk", 10)
	g := q.AddAttr(r0, "fact.g", 2)
	q.AddAttr(r0, "fact.a", 500)
	pk := q.AddAttr(r1, "dim.pk", 10)
	q.AddKey(r1, pk)
	q.Root = &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: r0},
		Right: &query.OpNode{Kind: query.KindScan, Rel: r1},
		Pred:  &query.Predicate{Left: []int{fk}, Right: []int{pk}, Selectivity: 0.1},
	}
	q.SetGrouping([]int{g}, aggfn.Vector{
		{Out: "m", Kind: aggfn.Avg, Arg: "fact.a"},
		{Out: "c", Kind: aggfn.CountStar},
	})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		data := RandomData(rng, q, 8)
		want, err := Canonical(q, data)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Exec(q, res.Plan, data)
		if err != nil {
			t.Fatalf("exec: %v\n%v", err, res.Plan.StringWithQuery(q))
		}
		if !algebra.EqualBags(want, got, OutputAttrs(q)) {
			t.Fatalf("trial %d: avg mismatch\nplan:\n%v\nwant:\n%v\ngot:\n%v",
				trial, res.Plan.StringWithQuery(q), want, got)
		}
	}
}

// TestEagerPlanIsActuallyExecuted guards against the engine silently
// falling back to canonical evaluation: the optimized plan for the skewed
// fact/dim query must contain a grouping and still match.
func TestEagerPlanIsActuallyExecuted(t *testing.T) {
	q := query.New()
	r0 := q.AddRelation("fact", 100000)
	r1 := q.AddRelation("dim", 10)
	fk := q.AddAttr(r0, "fact.fk", 10)
	g := q.AddAttr(r0, "fact.g", 2)
	q.AddAttr(r0, "fact.a", 50000)
	pk := q.AddAttr(r1, "dim.pk", 10)
	q.AddKey(r1, pk)
	q.Root = &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: r0},
		Right: &query.OpNode{Kind: query.KindScan, Rel: r1},
		Pred:  &query.Predicate{Left: []int{fk}, Right: []int{pk}, Selectivity: 0.1},
	}
	q.SetGrouping([]int{g}, aggfn.Vector{
		{Out: "c", Kind: aggfn.CountStar},
		{Out: "s", Kind: aggfn.Sum, Arg: "fact.a"},
	})
	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.CountGroupings() == 0 {
		t.Fatalf("expected an eager grouping in:\n%v", res.Plan.StringWithQuery(q))
	}
	rng := rand.New(rand.NewSource(77))
	data := RandomData(rng, q, 10)
	want, _ := Canonical(q, data)
	got, err := Exec(q, res.Plan, data)
	if err != nil {
		t.Fatal(err)
	}
	if !algebra.EqualBags(want, got, OutputAttrs(q)) {
		t.Fatalf("eager plan result mismatch\nwant:\n%v\ngot:\n%v", want, got)
	}
}

func TestCanonicalErrors(t *testing.T) {
	q := query.New()
	q.AddRelation("r", 10)
	if _, err := Canonical(q, Data{}); err == nil {
		t.Error("Canonical without an operator tree must error")
	}
	// Missing relation data must surface as an error, not a panic.
	q2 := query.New()
	r0 := q2.AddRelation("a", 10)
	r1 := q2.AddRelation("b", 10)
	x := q2.AddAttr(r0, "x", 3)
	y := q2.AddAttr(r1, "y", 3)
	q2.Root = &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: r0},
		Right: &query.OpNode{Kind: query.KindScan, Rel: r1},
		Pred:  &query.Predicate{Left: []int{x}, Right: []int{y}, Selectivity: 0.5},
	}
	if _, err := Canonical(q2, Data{}); err == nil {
		t.Error("Canonical with missing data must error")
	}
}

// TestLargerQueriesEndToEnd extends the execution check to seven-relation
// queries with the heuristic and beam generators (EA-All excluded — its
// table explodes). Skipped with -short.
func TestLargerQueriesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("larger end-to-end battery")
	}
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 8; trial++ {
		q := randquery.Generate(rng, randquery.Params{Relations: 7})
		data := RandomData(rng, q, 5)
		want, err := Canonical(q, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []core.Options{
			{Algorithm: core.AlgEAPrune},
			{Algorithm: core.AlgH1},
			{Algorithm: core.AlgH2, F: 1.03},
			{Algorithm: core.AlgBeam, BeamWidth: 8},
		} {
			res, err := core.Optimize(q, cfg)
			if err != nil {
				t.Fatalf("%v: %v", cfg.Algorithm, err)
			}
			got, err := Exec(q, res.Plan, data)
			if err != nil {
				t.Fatalf("%v exec: %v\n%v", cfg.Algorithm, err, res.Plan.StringWithQuery(q))
			}
			if !algebra.EqualBags(want, got, OutputAttrs(q)) {
				t.Fatalf("trial %d %v: result mismatch\nplan:\n%v", trial, cfg.Algorithm, res.Plan.StringWithQuery(q))
			}
		}
	}
}
