package engine

import (
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
	"eagg/internal/bitset"
)

func TestProductHelper(t *testing.T) {
	tab := algebra.TableOf(algebra.NewRel([]string{"w1", "w2", "w3"},
		[]any{2, 3, 5},
		[]any{1, nil, 4},
	))
	for _, rt := range []runtimeOps{rowRuntime{}, batchRuntime{}} {
		e := &executor{rt: rt}
		in := rt.scan(tab)
		// No attributes: no column, empty name.
		name, out := e.product(in, nil)
		if name != "" || out != in {
			t.Error("empty product must be a no-op")
		}
		// Single attribute: passthrough.
		name, out = e.product(in, []string{"w1"})
		if name != "w1" || out != in {
			t.Error("single product must pass through")
		}
		// Multiple: materialized column with NULL propagation.
		name, out = e.product(in, []string{"w1", "w2", "w3"})
		if name == "" || !out.TabSchema().Has(name) {
			t.Fatal("product column missing")
		}
		rel := rt.result(out).Rel()
		if v := rel.Tuples[0].Get(name); v.I != 30 {
			t.Errorf("product = %v, want 30", v)
		}
		if !rel.Tuples[1].Get(name).IsNull() {
			t.Error("NULL weight must poison the product")
		}
	}
}

func TestWeightAttrsExclusion(t *testing.T) {
	ws := []weight{
		{attr: "w1", cover: bitset.NewV(0, 1)},
		{attr: "w2", cover: bitset.NewV(2)},
		{attr: "w3", cover: bitset.NewV(3, 4)},
	}
	got := weightAttrs(ws, bitset.NewV(2, 3))
	if len(got) != 1 || got[0] != "w1" {
		t.Errorf("weightAttrs = %v, want [w1]", got)
	}
	all := weightAttrs(ws, bitset.VSet{})
	if len(all) != 3 {
		t.Errorf("weightAttrs(∅) = %v", all)
	}
}

func TestSideDefaults(t *testing.T) {
	c := &refCompiled{
		weights: []weight{{attr: "w", cover: bitset.NewV(0)}},
		aggs: []aggState{
			{}, // raw aggregate: no defaults
			{
				partial:  []string{"p_sum", "p_cnt"},
				defaults: []aggfn.Default{aggfn.DefaultNull, aggfn.DefaultZero},
				cover:    bitset.NewV(0),
			},
		},
	}
	d := sideDefaults(c)
	if d["w"] != algebra.Int(1) {
		t.Errorf("weight default = %v, want 1", d["w"])
	}
	if d["p_cnt"] != algebra.Int(0) {
		t.Errorf("count partial default = %v, want 0", d["p_cnt"])
	}
	if _, ok := d["p_sum"]; ok {
		t.Error("NULL default must coincide with plain padding (absent)")
	}
	// No weights, no zero/one partials → nil defaults.
	if got := sideDefaults(&refCompiled{aggs: []aggState{{}}}); got != nil {
		t.Errorf("expected nil defaults, got %v", got)
	}
	// The slot executor's padRow realizes the same defaults as a full
	// row: weights 1, zero-default partials 0, NULL-default partials NULL.
	sc := &compiled{
		tab:     algebra.NewTable(algebra.NewSchema([]string{"w", "p_sum", "p_cnt", "x"})),
		weights: []weight{{attr: "w", cover: bitset.NewV(0)}},
		aggs: []aggState{
			{},
			{
				partial:  []string{"p_sum", "p_cnt"},
				defaults: []aggfn.Default{aggfn.DefaultNull, aggfn.DefaultZero},
				cover:    bitset.NewV(0),
			},
		},
	}
	pad := padRow(sc)
	s := sc.tab.TabSchema()
	if pad[s.MustSlot("w")] != algebra.Int(1) {
		t.Errorf("pad weight = %v, want 1", pad[s.MustSlot("w")])
	}
	if pad[s.MustSlot("p_cnt")] != algebra.Int(0) {
		t.Errorf("pad count partial = %v, want 0", pad[s.MustSlot("p_cnt")])
	}
	if !pad[s.MustSlot("p_sum")].IsNull() || !pad[s.MustSlot("x")].IsNull() {
		t.Error("NULL-default partials and plain attributes must pad to NULL")
	}
}

func TestCollapseRejectsNonDecomposable(t *testing.T) {
	e := &executor{}
	var inner aggfn.Vector
	_, err := e.collapse(aggfn.Agg{Out: "d", Kind: aggfn.CountDistinct, Arg: "a"}, "", &inner, bitset.NewV(0))
	if err == nil {
		t.Error("collapsing count(distinct) must error")
	}
}

func TestFinalOfRawWeighted(t *testing.T) {
	cases := []struct {
		in   aggfn.Agg
		want aggfn.Kind
	}{
		{aggfn.Agg{Out: "c", Kind: aggfn.CountStar}, aggfn.Sum},
		{aggfn.Agg{Out: "s", Kind: aggfn.Sum, Arg: "a"}, aggfn.SumTimes},
		{aggfn.Agg{Out: "n", Kind: aggfn.Count, Arg: "a"}, aggfn.SumIfNotNull},
		{aggfn.Agg{Out: "v", Kind: aggfn.Avg, Arg: "a"}, aggfn.AvgWeighted},
		{aggfn.Agg{Out: "m", Kind: aggfn.Min, Arg: "a"}, aggfn.Min},
	}
	for _, c := range cases {
		got, err := finalOfRaw(c.in, "w")
		if err != nil {
			t.Fatal(err)
		}
		if got.Kind != c.want {
			t.Errorf("finalOfRaw(%v) = %v, want %v", c.in.Kind, got.Kind, c.want)
		}
	}
	// Without a weight the aggregate passes through unchanged.
	got, err := finalOfRaw(aggfn.Agg{Out: "s", Kind: aggfn.Sum, Arg: "a"}, "")
	if err != nil || got.Kind != aggfn.Sum {
		t.Error("unweighted final must be the original aggregate")
	}
}
