package engine_test

import (
	"math/rand"
	"testing"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/query"
	"eagg/internal/randquery"
	"eagg/internal/tpch"
)

// fixedPointEps bounds the plan-level q-error of a converged feedback
// round: once the loop re-selects the previous plan, every operator
// estimate is that operator's own measured cardinality, so estimated and
// actual C_out are sums of the same integers — equal exactly in float64
// (row counts are far below 2^53). The epsilon only guards the clamped
// q-error arithmetic.
const fixedPointEps = 1e-9

// TestReoptimizeFixedPoint is the loop's sanity property: overlaying a
// complete exact profile of a plan and re-optimizing, iterated to
// convergence, must yield a plan whose estimated C_out matches its own
// execution — plan-level q-error ≤ 1+ε.
func TestReoptimizeFixedPoint(t *testing.T) {
	algs := []core.Algorithm{core.AlgDPhyp, core.AlgEAPrune, core.AlgH1}

	check := func(t *testing.T, name string, q *query.Query, data engine.TableData, alg core.Algorithm) {
		t.Helper()
		res, err := engine.Reoptimize(q, data, engine.FeedbackOptions{
			Opt: core.Options{Algorithm: alg, F: 1.03, Workers: 1},
		})
		if err != nil {
			t.Fatalf("%s/%v: %v", name, alg, err)
		}
		if !res.Converged {
			t.Fatalf("%s/%v: loop did not converge in %d rounds", name, alg, len(res.Rounds))
		}
		final := res.Final().Stats
		if qe := final.CoutQError(); qe > 1+fixedPointEps {
			t.Fatalf("%s/%v: converged plan-level q-error %g > 1+ε (est %g, actual %g)",
				name, alg, qe, final.EstimatedCout, final.ActualCout)
		}
		if w, ok := final.WorstOp(); ok && w.QError() > 1+fixedPointEps {
			t.Fatalf("%s/%v: converged worst-operator q-error %g > 1+ε (%+v)", name, alg, w.QError(), w)
		}
		// Feedback may change the plan, never the answer.
		want, err := engine.CanonicalTables(q, data)
		if err != nil {
			t.Fatal(err)
		}
		if !algebra.EqualBags(want.Rel(), res.Result.Rel(), engine.OutputAttrs(q)) {
			t.Fatalf("%s/%v: re-optimized result differs from canonical", name, alg)
		}
	}
	for name, q := range tpch.Queries() {
		rng := rand.New(rand.NewSource(7))
		data := tpch.GenerateTables(rng, q, tpch.ExecutionScaleAt(name, 2))
		for _, alg := range algs {
			check(t, name, q, data, alg)
		}
	}
	// Random query/data shapes (outer joins, semijoins, groupjoins, …).
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		q := randquery.Generate(rng, randquery.Params{Relations: 2 + int(seed%5)})
		data := engine.RandomData(rng, q, 6).Tables()
		check(t, "rand", q, data, algs[seed%int64(len(algs))])
	}
}

// TestFeedbackChangesPlanQ5 pins the headline effect on a benchmarked
// TPC-H query: on Q5 the model's estimates are off by q-errors > 10^3,
// and feeding measured cardinalities back changes the chosen plan,
// reduces the plan-level q-error by far more than 10x, and lowers the
// measured intermediate-result volume — while the result stays identical
// to the canonical evaluation.
func TestFeedbackChangesPlanQ5(t *testing.T) {
	q := tpch.Queries()["Q5"]
	rng := rand.New(rand.NewSource(42))
	data := tpch.GenerateTables(rng, q, tpch.ExecutionScaleAt("Q5", 1))
	res, err := engine.Reoptimize(q, data, engine.FeedbackOptions{
		Opt: core.Options{Algorithm: core.AlgEAPrune, Workers: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Q5 feedback did not converge in %d rounds", len(res.Rounds))
	}
	if !res.PlanChanged() {
		t.Fatal("feedback re-optimization should change the Q5 plan")
	}
	before, after := res.First().Stats, res.Final().Stats
	if before.CoutQError() < 10*after.CoutQError() {
		t.Fatalf("plan-level q-error must drop ≥10x: %g -> %g", before.CoutQError(), after.CoutQError())
	}
	if after.ActualCout >= before.ActualCout {
		t.Fatalf("re-optimized plan should produce less intermediate volume: %g -> %g",
			before.ActualCout, after.ActualCout)
	}
	want, err := engine.CanonicalTables(q, data)
	if err != nil {
		t.Fatal(err)
	}
	if !algebra.EqualBags(want.Rel(), res.Result.Rel(), engine.OutputAttrs(q)) {
		t.Fatal("re-optimized Q5 result differs from canonical")
	}
}

// TestReoptimizeParallelDeterminism: the feedback loop composed with
// parallel optimization and parallel execution must reproduce the
// sequential run bit-identically — same rounds, same plans, same
// measured profiles, same result table.
func TestReoptimizeParallelDeterminism(t *testing.T) {
	queries := []*query.Query{tpch.Queries()["Q5"], tpch.Queries()["Q10"]}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		queries = append(queries, randquery.Generate(rng, randquery.Params{Relations: 3 + int(seed%4)}))
	}
	for qi, q := range queries {
		var data engine.TableData
		rng := rand.New(rand.NewSource(55))
		if qi == 0 {
			data = tpch.GenerateTables(rng, q, tpch.ExecutionScaleAt("Q5", 1))
		} else if qi == 1 {
			data = tpch.GenerateTables(rng, q, tpch.ExecutionScaleAt("Q10", 1))
		} else {
			data = engine.RandomData(rng, q, 5).Tables()
		}
		seq, err := engine.Reoptimize(q, data, engine.FeedbackOptions{
			Opt:  core.Options{Algorithm: core.AlgEAPrune, Workers: 1},
			Exec: engine.ExecOptions{Workers: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		par, err := engine.Reoptimize(q, data, engine.FeedbackOptions{
			Opt:  core.Options{Algorithm: core.AlgEAPrune, Workers: 8},
			Exec: engine.ExecOptions{Workers: 8, MorselSize: 64},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Rounds) != len(par.Rounds) || seq.Converged != par.Converged {
			t.Fatalf("q%d: rounds %d/%v vs %d/%v", qi, len(seq.Rounds), seq.Converged, len(par.Rounds), par.Converged)
		}
		for i := range seq.Rounds {
			s, p := seq.Rounds[i], par.Rounds[i]
			if s.Plan.Signature() != p.Plan.Signature() {
				t.Fatalf("q%d round %d: plans diverge\nseq: %s\npar: %s", qi, i, s.Plan.Signature(), p.Plan.Signature())
			}
			if s.Stats.ActualCout != p.Stats.ActualCout || s.Stats.EstimatedCout != p.Stats.EstimatedCout ||
				len(s.Stats.Ops) != len(p.Stats.Ops) {
				t.Fatalf("q%d round %d: stats diverge: %+v vs %+v", qi, i, s.Stats, p.Stats)
			}
			for j := range s.Stats.Ops {
				if s.Stats.Ops[j] != p.Stats.Ops[j] {
					t.Fatalf("q%d round %d op %d: %+v vs %+v", qi, i, j, s.Stats.Ops[j], p.Stats.Ops[j])
				}
			}
		}
		if !algebra.EqualBags(seq.Result.Rel(), par.Result.Rel(), engine.OutputAttrs(q)) {
			t.Fatalf("q%d: parallel feedback result differs", qi)
		}
	}
}

// TestReoptimizeSeededProfile: seeding a second loop with a previous
// run's Profile via Opt.Stats must not forget anything after round 1 —
// the seeded loop starts at the informed plan and converges immediately
// (2 rounds: one informed baseline, one confirmation), ending on the
// same plan as the unseeded loop.
func TestReoptimizeSeededProfile(t *testing.T) {
	q := tpch.Queries()["Q5"]
	rng := rand.New(rand.NewSource(42))
	data := tpch.GenerateTables(rng, q, tpch.ExecutionScaleAt("Q5", 1))
	opts := engine.FeedbackOptions{Opt: core.Options{Algorithm: core.AlgEAPrune, Workers: 1}}
	first, err := engine.Reoptimize(q, data, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !first.PlanChanged() {
		t.Fatal("test needs a query whose plan feedback changes")
	}
	seeded := opts
	seeded.Opt.Stats = first.Profile
	second, err := engine.Reoptimize(q, data, seeded)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Converged || len(second.Rounds) != 2 {
		t.Fatalf("seeded loop should confirm the known plan in 2 rounds: rounds=%d conv=%v",
			len(second.Rounds), second.Converged)
	}
	if second.PlanChanged() {
		t.Fatal("seeded loop should start at the informed plan")
	}
	if got, want := second.Final().Plan.Signature(), first.Final().Plan.Signature(); got != want {
		t.Fatalf("seeded loop ended on a different plan:\n%s\nvs\n%s", got, want)
	}
	if qe := second.Final().Stats.CoutQError(); qe > 1+fixedPointEps {
		t.Fatalf("seeded converged q-error %g > 1", qe)
	}
}
