package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/plan"
	"eagg/internal/randquery"
)

// FuzzExecEquivalence fuzzes the end-to-end correctness property of the
// execution stack: for a random query (derived deterministically from the
// fuzz inputs) and random data, the optimized plan executed on the slot
// runtime must equal the canonical result, both slot-runtime evaluators
// must equal their frozen nested-loop references, and morsel-driven
// parallel execution (Workers>1, fuzz-chosen morsel size) must be
// bit-identical to the sequential reference path — float sums and
// output order included. The cardinality feedback loop (Reoptimize) may
// change the chosen plan but must still reproduce the canonical result.
// Run the smoke locally with
//
//	go test -run '^$' -fuzz FuzzExecEquivalence -fuzztime 20s ./internal/engine
//
// CI runs a short -fuzztime on every push; crashers land in
// testdata/fuzz as usual and replay with plain go test.
func FuzzExecEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(0))
	f.Add(int64(42), uint8(2), uint8(1), uint8(1))
	f.Add(int64(7), uint8(5), uint8(6), uint8(2))
	f.Add(int64(-12345), uint8(4), uint8(3), uint8(3))
	f.Add(int64(987654321), uint8(6), uint8(5), uint8(4))

	algs := []core.Options{
		{Algorithm: core.AlgDPhyp},
		{Algorithm: core.AlgEAPrune},
		{Algorithm: core.AlgH1},
		{Algorithm: core.AlgH2, F: 1.03},
		{Algorithm: core.AlgBeam, BeamWidth: 4},
	}

	f.Fuzz(func(t *testing.T, seed int64, nRel, maxRows, algPick uint8) {
		n := 2 + int(nRel)%5       // 2..6 relations
		rows := 1 + int(maxRows)%6 // data size knob
		opts := algs[int(algPick)%len(algs)]

		rng := rand.New(rand.NewSource(seed))
		q := randquery.Generate(rng, randquery.Params{Relations: n})
		data := RandomData(rng, q, rows)
		attrs := OutputAttrs(q)

		want, err := Canonical(q, data)
		if err != nil {
			t.Fatal(err)
		}
		wantRef, err := CanonicalRef(q, data)
		if err != nil {
			t.Fatal(err)
		}
		if !algebra.EqualBags(wantRef, want, attrs) {
			t.Fatalf("seed=%d n=%d: Canonical (slot) differs from CanonicalRef\nref:\n%v\nslot:\n%v",
				seed, n, wantRef, want)
		}

		res, err := core.Optimize(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Exec(q, res.Plan, data)
		if err != nil {
			t.Fatalf("exec: %v\nplan:\n%v", err, res.Plan.StringWithQuery(q))
		}
		if !algebra.EqualBags(want, got, attrs) {
			t.Fatalf("seed=%d n=%d %v: Execute ≢ Canonical\nplan:\n%v\nwant:\n%v\ngot:\n%v",
				seed, n, opts.Algorithm, res.Plan.StringWithQuery(q), want, got)
		}
		gotRef, err := ExecRef(q, res.Plan, data)
		if err != nil {
			t.Fatalf("ref exec: %v", err)
		}
		if !algebra.EqualBags(gotRef, got, attrs) {
			t.Fatalf("seed=%d n=%d %v: Execute (slot) ≢ ExecRef\nplan:\n%v\nref:\n%v\nslot:\n%v",
				seed, n, opts.Algorithm, res.Plan.StringWithQuery(q), gotRef, got)
		}

		// Wide arm: forcing the multi-word set representation onto a
		// query the Set64 fast path handles must pick the structurally
		// identical plan, and that plan must execute end-to-end to the
		// canonical result.
		wopts := opts
		wopts.ForceWide = true
		wres, err := core.Optimize(q, wopts)
		if err != nil {
			t.Fatalf("wide optimize: %v", err)
		}
		if !plan.Equal(res.Plan, wres.Plan) {
			t.Fatalf("seed=%d n=%d %v: wide plan ≢ fast-path plan\nfast:\n%v\nwide:\n%v",
				seed, n, opts.Algorithm, res.Plan.StringWithQuery(q), wres.Plan.StringWithQuery(q))
		}
		wideGot, err := Exec(q, wres.Plan, data)
		if err != nil {
			t.Fatalf("wide exec: %v\nplan:\n%v", err, wres.Plan.StringWithQuery(q))
		}
		if !algebra.EqualBags(want, wideGot, attrs) {
			t.Fatalf("seed=%d n=%d %v: wide Execute ≢ Canonical\nplan:\n%v\nwant:\n%v\ngot:\n%v",
				seed, n, opts.Algorithm, wres.Plan.StringWithQuery(q), want, wideGot)
		}

		// Workers>1 arm: parallel execution must be bit-identical to
		// the sequential reference path (not merely bag-equal).
		tables := data.Tables()
		workers := 2 + int(algPick)%7
		popts := ExecOptions{Workers: workers, MorselSize: 1 + int(maxRows)%5}
		seqTab, err := ExecTablesOpts(q, res.Plan, tables, ExecOptions{Workers: 1})
		if err != nil {
			t.Fatalf("sequential exec: %v", err)
		}
		parTab, err := ExecTablesOpts(q, res.Plan, tables, popts)
		if err != nil {
			t.Fatalf("parallel exec (workers=%d): %v", workers, err)
		}
		identicalTables(t, fmt.Sprintf("seed=%d n=%d %v workers=%d", seed, n, opts.Algorithm, workers), seqTab, parTab)

		// Batch-runtime arm: columnar batch execution must be
		// bit-identical to the row runtime — sequentially and under
		// morsel parallelism, for a fuzz-chosen batch size.
		bs := 1 + int(maxRows)%9
		batchTab, err := ExecTablesOpts(q, res.Plan, tables, ExecOptions{Workers: 1, Runtime: RuntimeBatch, BatchSize: bs})
		if err != nil {
			t.Fatalf("batch exec: %v", err)
		}
		identicalTables(t, fmt.Sprintf("seed=%d n=%d %v batch=%d", seed, n, opts.Algorithm, bs), seqTab, batchTab)
		batchPar, err := ExecTablesOpts(q, res.Plan, tables,
			ExecOptions{Workers: workers, MorselSize: popts.MorselSize, Runtime: RuntimeBatch, BatchSize: bs})
		if err != nil {
			t.Fatalf("parallel batch exec: %v", err)
		}
		identicalTables(t, fmt.Sprintf("seed=%d n=%d %v batch=%d workers=%d", seed, n, opts.Algorithm, bs, workers), seqTab, batchPar)

		// -phys arm: the sort-based physical layer. The sort/auto plan
		// (annotated with merge keys, sort/reuse decisions and
		// contractual orders) must execute bit-identically to the same
		// logical plan stripped to the hash layer, and bag-equal to the
		// canonical result; its parallel execution must be bit-identical
		// to its sequential one.
		physMode := []core.PhysMode{core.PhysModeSort, core.PhysModeAuto}[int(algPick/8)%2]
		popt := opts
		popt.Phys = physMode
		pres, err := core.Optimize(q, popt)
		if err != nil {
			t.Fatalf("phys optimize (%v): %v", physMode, err)
		}
		physTab, err := ExecTablesOpts(q, pres.Plan, tables, ExecOptions{Workers: 1})
		if err != nil {
			t.Fatalf("phys exec (%v): %v\nplan:\n%v", physMode, err, pres.Plan.StringWithQuery(q))
		}
		strippedTab, err := ExecTablesOpts(q, plan.StripPhys(pres.Plan), tables, ExecOptions{Workers: 1})
		if err != nil {
			t.Fatalf("phys stripped exec: %v", err)
		}
		identicalTables(t, fmt.Sprintf("seed=%d n=%d %v phys=%v sort≡hash", seed, n, opts.Algorithm, physMode), strippedTab, physTab)
		if !algebra.EqualBags(want, physTab.Rel(), attrs) {
			t.Fatalf("seed=%d n=%d %v phys=%v: ≢ Canonical\nplan:\n%v",
				seed, n, opts.Algorithm, physMode, pres.Plan.StringWithQuery(q))
		}
		physPar, err := ExecTablesOpts(q, pres.Plan, tables, popts)
		if err != nil {
			t.Fatalf("phys parallel exec: %v", err)
		}
		identicalTables(t, fmt.Sprintf("seed=%d n=%d phys=%v workers=%d", seed, n, physMode, workers), physTab, physPar)
		// Sort-annotated plans on the batch runtime bridge the merge
		// operators through the row representation — still bit-identical.
		physBatch, err := ExecTablesOpts(q, pres.Plan, tables,
			ExecOptions{Workers: 1, Runtime: RuntimeBatch, BatchSize: bs})
		if err != nil {
			t.Fatalf("phys batch exec: %v", err)
		}
		identicalTables(t, fmt.Sprintf("seed=%d n=%d phys=%v batch=%d", seed, n, physMode, bs), physTab, physBatch)

		// Feedback arm: the cardinality feedback loop may change the
		// chosen plan, never the answer — every re-optimized plan must
		// execute to the canonical result.
		fb, err := Reoptimize(q, tables, FeedbackOptions{Opt: opts, MaxRounds: 3})
		if err != nil {
			t.Fatalf("reoptimize: %v", err)
		}
		if !algebra.EqualBags(want, fb.Result.Rel(), attrs) {
			final := fb.Final()
			t.Fatalf("seed=%d n=%d %v: re-optimized plan ≢ Canonical (rounds=%d changed=%v)\nplan:\n%v\nwant:\n%v\ngot:\n%v",
				seed, n, opts.Algorithm, len(fb.Rounds), fb.PlanChanged(),
				final.Plan.StringWithQuery(q), want, fb.Result.Rel())
		}
	})
}
