package engine

import (
	"fmt"
	"math/rand"

	"eagg/internal/algebra"
	"eagg/internal/query"
)

// Canonical evaluates the query exactly as written: the initial operator
// tree followed by the top grouping. It is the reference result against
// which optimized plans are checked. Like Exec it runs on the slot-based
// hash runtime; the frozen nested-loop evaluator (CanonicalRef) provides
// an independent second opinion for the differential tests.
func Canonical(q *query.Query, data Data) (*algebra.Rel, error) {
	tab, err := CanonicalTables(q, data.Tables())
	if err != nil {
		return nil, err
	}
	return tab.Rel(), nil
}

// CanonicalTables evaluates the query as written on slot-based tables on
// the sequential reference path; CanonicalTablesOpts adds morsel-driven
// parallelism.
func CanonicalTables(q *query.Query, data TableData) (*algebra.Table, error) {
	return CanonicalTablesOpts(q, data, ExecOptions{Workers: 1})
}

// CanonicalTablesOpts evaluates the query as written under the given
// execution options. Results are bit-identical for every worker count.
func CanonicalTablesOpts(q *query.Query, data TableData, opts ExecOptions) (*algebra.Table, error) {
	if q.Root == nil {
		return nil, fmt.Errorf("engine: query has no operator tree")
	}
	ex := opts.exec()
	tab, err := evalTreeTables(q, q.Root, data, ex)
	if err != nil {
		return nil, err
	}
	if !q.HasGrouping {
		return tab, nil
	}
	var g []string
	q.GroupBy.ForEach(func(a int) { g = append(g, q.AttrNames[a]) })
	return ex.HashGroup(tab, g, q.Aggregates), nil
}

func evalTreeTables(q *query.Query, n *query.OpNode, data TableData, ex *algebra.Exec) (*algebra.Table, error) {
	if n.Kind == query.KindScan {
		tab, ok := data[n.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: no data for relation %d", n.Rel)
		}
		return tab, nil
	}
	l, err := evalTreeTables(q, n.Left, data, ex)
	if err != nil {
		return nil, err
	}
	r, err := evalTreeTables(q, n.Right, data, ex)
	if err != nil {
		return nil, err
	}
	lk, rk := joinKeys(q, []*query.Predicate{n.Pred}, l.Schema, r.Schema)
	switch n.Kind {
	case query.KindJoin:
		return ex.HashJoin(l, r, lk, rk), nil
	case query.KindSemiJoin:
		return ex.HashSemiJoin(l, r, lk, rk), nil
	case query.KindAntiJoin:
		return ex.HashAntiJoin(l, r, lk, rk), nil
	case query.KindLeftOuter:
		return ex.HashLeftOuter(l, r, lk, rk, algebra.NullRow(r.Schema)), nil
	case query.KindFullOuter:
		return ex.HashFullOuter(l, r, lk, rk, algebra.NullRow(l.Schema), algebra.NullRow(r.Schema)), nil
	case query.KindGroupJoin:
		return ex.HashGroupJoin(l, r, lk, rk, n.GroupJoinAggs), nil
	}
	return nil, fmt.Errorf("engine: unsupported node kind %v", n.Kind)
}

// OutputAttrs returns the attribute names of the query result: G ∪ A(F)
// for grouping queries, or every visible attribute otherwise.
func OutputAttrs(q *query.Query) []string {
	if q.HasGrouping {
		var out []string
		q.GroupBy.ForEach(func(a int) { out = append(out, q.AttrNames[a]) })
		return append(out, q.Aggregates.Outs()...)
	}
	var out []string
	var visible func(n *query.OpNode)
	visible = func(n *query.OpNode) {
		if n.Kind == query.KindScan {
			q.Relations[n.Rel].Attrs.ForEach(func(a int) {
				out = append(out, q.AttrNames[a])
			})
			return
		}
		visible(n.Left)
		if !n.Kind.LeftOnly() {
			visible(n.Right)
		}
	}
	visible(q.Root)
	return out
}

// RandomData generates relation contents that respect the catalog's
// declared keys (unique values in key attributes) while keeping join
// attribute domains tiny so joins actually match. Aggregate inputs include
// NULLs to exercise the NULL semantics of the equivalences.
func RandomData(rng *rand.Rand, q *query.Query, maxRows int) Data {
	data := Data{}
	for ri := range q.Relations {
		rel := &q.Relations[ri]
		n := 1 + rng.Intn(maxRows)
		var keyAttrs []int
		for _, k := range rel.Keys {
			k.ForEach(func(a int) { keyAttrs = append(keyAttrs, a) })
		}
		isKey := map[int]bool{}
		for _, a := range keyAttrs {
			isKey[a] = true
		}
		r := &algebra.Rel{}
		rel.Attrs.ForEach(func(a int) { r.Attrs = append(r.Attrs, q.AttrNames[a]) })
		for row := 0; row < n; row++ {
			t := algebra.Tuple{}
			rel.Attrs.ForEach(func(a int) {
				name := q.AttrNames[a]
				switch {
				case isKey[a]:
					t[name] = algebra.Int(int64(row)) // unique
				case rng.Intn(7) == 0:
					t[name] = algebra.Null
				default:
					t[name] = algebra.Int(int64(rng.Intn(3)))
				}
			})
			r.Tuples = append(r.Tuples, t)
		}
		data[ri] = r
	}
	return data
}
