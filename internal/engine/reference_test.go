package engine

import (
	"math/rand"
	"testing"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/randquery"
)

// TestSlotRuntimeMatchesReference is the differential gate between the
// two executors: on random queries and data, the slot-based hash runtime
// (Exec, Canonical) and the frozen map/nested-loop runtime (ExecRef,
// CanonicalRef) must produce identical result bags. Because the reference
// shares no operator code with the hash runtime, a systematic bug in the
// typed keys or accumulators cannot cancel out of this comparison.
func TestSlotRuntimeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for n := 2; n <= 6; n++ {
		for trial := 0; trial < 10; trial++ {
			q := randquery.Generate(rng, randquery.Params{Relations: n})
			data := RandomData(rng, q, 6)
			attrs := OutputAttrs(q)

			canonSlot, err := Canonical(q, data)
			if err != nil {
				t.Fatal(err)
			}
			canonRef, err := CanonicalRef(q, data)
			if err != nil {
				t.Fatal(err)
			}
			if !algebra.EqualBags(canonRef, canonSlot, attrs) {
				t.Fatalf("n=%d trial=%d: Canonical (slot) differs from CanonicalRef\nref:\n%v\nslot:\n%v",
					n, trial, canonRef, canonSlot)
			}

			for _, alg := range []core.Algorithm{core.AlgDPhyp, core.AlgEAPrune, core.AlgH1} {
				res, err := core.Optimize(q, core.Options{Algorithm: alg})
				if err != nil {
					t.Fatal(err)
				}
				slot, err := Exec(q, res.Plan, data)
				if err != nil {
					t.Fatalf("slot exec: %v\nplan:\n%v", err, res.Plan.StringWithQuery(q))
				}
				ref, err := ExecRef(q, res.Plan, data)
				if err != nil {
					t.Fatalf("ref exec: %v\nplan:\n%v", err, res.Plan.StringWithQuery(q))
				}
				if !algebra.EqualBags(ref, slot, attrs) {
					t.Fatalf("n=%d trial=%d %v: Exec (slot) differs from ExecRef\nplan:\n%v\nref:\n%v\nslot:\n%v",
						n, trial, alg, res.Plan.StringWithQuery(q), ref, slot)
				}
			}
		}
	}
}

// TestExecProfiledStats sanity-checks the execution profile: the actual
// C_out must count every join and grouping output, and the q-error must
// be finite and ≥ 1 on a query that produces rows.
func TestExecProfiledStats(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := randquery.Generate(rng, randquery.Params{Relations: 4, OuterJoinShare: 0.01})
	data := RandomData(rng, q, 8)
	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		t.Fatal(err)
	}
	tab, stats, err := ExecProfiled(q, res.Plan, data.Tables())
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResultRows != tab.Card() {
		t.Errorf("ResultRows = %d, want %d", stats.ResultRows, tab.Card())
	}
	if stats.EstimatedCout != res.Plan.Cost {
		t.Errorf("EstimatedCout = %v, want plan cost %v", stats.EstimatedCout, res.Plan.Cost)
	}
	if stats.ActualCout < float64(tab.Card()) {
		t.Errorf("ActualCout = %v cannot be below the result cardinality %d", stats.ActualCout, tab.Card())
	}
	if tab.Card() > 0 && stats.CoutQError() < 1 {
		t.Errorf("CoutQError = %v, want ≥ 1", stats.CoutQError())
	}
}
