package engine

import (
	"fmt"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
	"eagg/internal/bitset"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// This file freezes the original map-tuple/nested-loop executor as a
// reference implementation. It shares the aggregate bookkeeping (binder,
// collapse, reaggregate, finalOfPartial, finalOfRaw) with the slot
// executor but runs every operator through internal/algebra's
// predicate-driven nested-loop operators on map tuples. It exists for two
// reasons:
//
//   - differential testing: the equivalence suites and FuzzExecEquivalence
//     check Exec ≡ Canonical ≡ ExecRef ≡ CanonicalRef, so a bug in the
//     shared hash runtime cannot cancel out of the comparison, and
//   - benchmarking: BenchmarkExecute measures the slot runtime's speedup
//     against exactly this baseline.
//
// Do not optimize this code; it is deliberately the O(n·m) seed executor.

// refCompiled is an executed subplan plus its aggregate bookkeeping.
type refCompiled struct {
	rel     *algebra.Rel
	weights []weight
	aggs    []aggState
}

// ExecRef executes an optimized plan with the reference executor.
func ExecRef(q *query.Query, p *plan.Plan, data Data) (*algebra.Rel, error) {
	e := &refExecutor{binder: binder{q: q}, data: data}
	c, err := e.compile(p)
	if err != nil {
		return nil, err
	}
	return c.rel, nil
}

type refExecutor struct {
	binder
	data Data
}

func (e *refExecutor) compile(p *plan.Plan) (*refCompiled, error) {
	switch p.Kind {
	case plan.NodeScan:
		rel, ok := e.data[p.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: no data for relation %d", p.Rel)
		}
		return &refCompiled{rel: rel, aggs: make([]aggState, len(e.q.Aggregates))}, nil
	case plan.NodeOp:
		return e.compileOp(p)
	case plan.NodeGroup:
		child, err := e.compile(p.Left)
		if err != nil {
			return nil, err
		}
		if p.Final {
			return e.finalGroup(child, p.GroupBy)
		}
		return e.group(child, p)
	case plan.NodeProject:
		child, err := e.compile(p.Left)
		if err != nil {
			return nil, err
		}
		return e.finalGroup(child, e.q.GroupBy)
	}
	return nil, fmt.Errorf("engine: unknown node kind %d", p.Kind)
}

// pred compiles the plan node's predicates into a tuple predicate.
func (e *refExecutor) pred(preds []*query.Predicate) algebra.Pred {
	var ps []algebra.Pred
	for _, p := range preds {
		for i := range p.Left {
			ps = append(ps, algebra.EqAttr(e.q.AttrNames[p.Left[i]], e.q.AttrNames[p.Right[i]]))
		}
	}
	return algebra.AndPred(ps...)
}

// sideDefaults builds the outerjoin default vector for a padded side:
// every weight defaults to 1 and every partial attribute to its {⊥}
// value.
func sideDefaults(c *refCompiled) algebra.Defaults {
	d := algebra.Defaults{}
	for _, w := range c.weights {
		d[w.attr] = algebra.Int(1)
	}
	for _, st := range c.aggs {
		for i, attr := range st.partial {
			switch st.defaults[i] {
			case aggfn.DefaultOne:
				d[attr] = algebra.Int(1)
			case aggfn.DefaultZero:
				d[attr] = algebra.Int(0)
			}
		}
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

func (e *refExecutor) compileOp(p *plan.Plan) (*refCompiled, error) {
	l, err := e.compile(p.Left)
	if err != nil {
		return nil, err
	}
	r, err := e.compile(p.Right)
	if err != nil {
		return nil, err
	}
	pred := e.pred(p.Preds)

	out := &refCompiled{aggs: make([]aggState, len(e.q.Aggregates))}
	dropRight := p.Op.LeftOnly()
	for i := range out.aggs {
		switch {
		case l.aggs[i].partial != nil:
			out.aggs[i] = l.aggs[i]
		case !dropRight && r.aggs[i].partial != nil:
			out.aggs[i] = r.aggs[i]
		}
	}
	out.weights = append(out.weights, l.weights...)
	if !dropRight {
		out.weights = append(out.weights, r.weights...)
	}

	switch p.Op {
	case query.KindJoin:
		out.rel = algebra.Join(l.rel, r.rel, pred)
	case query.KindSemiJoin:
		out.rel = algebra.SemiJoin(l.rel, r.rel, pred)
	case query.KindAntiJoin:
		out.rel = algebra.AntiJoin(l.rel, r.rel, pred)
	case query.KindLeftOuter:
		out.rel = algebra.LeftOuter(l.rel, r.rel, pred, sideDefaults(r))
	case query.KindFullOuter:
		out.rel = algebra.FullOuter(l.rel, r.rel, pred, sideDefaults(l), sideDefaults(r))
	case query.KindGroupJoin:
		if len(r.weights) != 0 {
			return nil, fmt.Errorf("engine: groupjoin over a pre-aggregated right side is not supported")
		}
		gj := findGroupJoin(e.q.Root, p.Rels)
		if gj == nil {
			return nil, fmt.Errorf("engine: groupjoin node not found in the query tree")
		}
		out.rel = algebra.GroupJoin(l.rel, r.rel, pred, gj.GroupJoinAggs)
	default:
		return nil, fmt.Errorf("engine: unsupported operator %v", p.Op)
	}
	return out, nil
}

// refProduct is product on the map runtime.
func (e *refExecutor) refProduct(rel *algebra.Rel, attrs []string) (string, *algebra.Rel) {
	switch len(attrs) {
	case 0:
		return "", rel
	case 1:
		return attrs[0], rel
	}
	name := e.fresh("prod")
	cols := append([]string(nil), attrs...)
	rel = algebra.Map(rel, map[string]func(algebra.Tuple) algebra.Value{
		name: func(t algebra.Tuple) algebra.Value {
			v := algebra.Int(1)
			for _, a := range cols {
				v = algebra.Mul(v, t.Get(a))
			}
			return v
		},
	})
	return name, rel
}

func (e *refExecutor) group(child *refCompiled, p *plan.Plan) (*refCompiled, error) {
	s := p.Rels
	gNames := e.attrNames(p.GroupBy)
	rel := child.rel
	out := &refCompiled{aggs: make([]aggState, len(e.q.Aggregates))}

	wAll, rel2 := e.refProduct(rel, weightAttrs(child.weights, bitset.VSet{}))
	rel = rel2
	wNew := e.fresh("w")
	inner := aggfn.Vector{}
	if wAll == "" {
		inner = append(inner, aggfn.Agg{Out: wNew, Kind: aggfn.CountStar})
	} else {
		inner = append(inner, aggfn.Agg{Out: wNew, Kind: aggfn.Sum, Arg: wAll})
	}

	srcs := e.q.AggSourceRels()
	for i, agg := range e.q.Aggregates {
		st := child.aggs[i]
		switch {
		case st.partial != nil:
			wOther, rel3 := e.refProduct(rel, weightAttrs(child.weights, st.cover))
			rel = rel3
			ns, err := e.reaggregate(agg.Kind, st, wOther, &inner, s)
			if err != nil {
				return nil, err
			}
			out.aggs[i] = ns
		case srcs[i].IsEmpty():
		case !srcs[i].Intersects(s):
		case !srcs[i].SubsetOf(s):
			return nil, fmt.Errorf("engine: aggregate %d spans the grouped subtree boundary — invalid plan", i)
		default:
			ns, err := e.collapse(agg, wAll, &inner, s)
			if err != nil {
				return nil, err
			}
			out.aggs[i] = ns
		}
	}

	out.rel = algebra.Group(rel, gNames, inner)
	out.weights = []weight{{attr: wNew, cover: s}}
	return out, nil
}

func (e *refExecutor) finalGroup(child *refCompiled, groupBy bitset.VSet) (*refCompiled, error) {
	rel := child.rel
	final := aggfn.Vector{}
	srcs := e.q.AggSourceRels()
	for i, agg := range e.q.Aggregates {
		st := child.aggs[i]
		if st.partial != nil {
			wOther, rel2 := e.refProduct(rel, weightAttrs(child.weights, st.cover))
			rel = rel2
			fa, err := finalOfPartial(agg, st, wOther)
			if err != nil {
				return nil, err
			}
			final = append(final, fa)
			continue
		}
		wAll, rel2 := e.refProduct(rel, weightAttrs(child.weights, srcs[i]))
		rel = rel2
		fa, err := finalOfRaw(agg, wAll)
		if err != nil {
			return nil, err
		}
		final = append(final, fa)
	}
	gNames := e.attrNames(groupBy)
	res := algebra.Group(rel, gNames, final)
	return &refCompiled{rel: res, aggs: make([]aggState, len(e.q.Aggregates))}, nil
}

// CanonicalRef evaluates the query as written with the nested-loop
// reference operators.
func CanonicalRef(q *query.Query, data Data) (*algebra.Rel, error) {
	if q.Root == nil {
		return nil, fmt.Errorf("engine: query has no operator tree")
	}
	rel, err := refEvalTree(q, q.Root, data)
	if err != nil {
		return nil, err
	}
	if !q.HasGrouping {
		return rel, nil
	}
	var g []string
	q.GroupBy.ForEach(func(a int) { g = append(g, q.AttrNames[a]) })
	return algebra.Group(rel, g, q.Aggregates), nil
}

func refEvalTree(q *query.Query, n *query.OpNode, data Data) (*algebra.Rel, error) {
	if n.Kind == query.KindScan {
		rel, ok := data[n.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: no data for relation %d", n.Rel)
		}
		return rel, nil
	}
	l, err := refEvalTree(q, n.Left, data)
	if err != nil {
		return nil, err
	}
	r, err := refEvalTree(q, n.Right, data)
	if err != nil {
		return nil, err
	}
	var ps []algebra.Pred
	for i := range n.Pred.Left {
		ps = append(ps, algebra.EqAttr(q.AttrNames[n.Pred.Left[i]], q.AttrNames[n.Pred.Right[i]]))
	}
	pred := algebra.AndPred(ps...)
	switch n.Kind {
	case query.KindJoin:
		return algebra.Join(l, r, pred), nil
	case query.KindSemiJoin:
		return algebra.SemiJoin(l, r, pred), nil
	case query.KindAntiJoin:
		return algebra.AntiJoin(l, r, pred), nil
	case query.KindLeftOuter:
		return algebra.LeftOuter(l, r, pred, nil), nil
	case query.KindFullOuter:
		return algebra.FullOuter(l, r, pred, nil, nil), nil
	case query.KindGroupJoin:
		return algebra.GroupJoin(l, r, pred, n.GroupJoinAggs), nil
	}
	return nil, fmt.Errorf("engine: unsupported node kind %v", n.Kind)
}
