package engine

import (
	"math/rand"
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// groupJoinQuery builds a query whose tree contains a groupjoin:
// Γ_{g}( (fact Z_{fk=dk; z:sum(dv)} detail) B_{fk2=pk} dim ) with
// aggregates over fact attributes. The groupjoin acts as a reordering
// barrier; groupings may still be pushed around it on the left side.
func groupJoinQuery() *query.Query {
	q := query.New()
	fact := q.AddRelation("fact", 50_000)
	detail := q.AddRelation("detail", 200_000)
	dim := q.AddRelation("dim", 50)
	fk := q.AddAttr(fact, "fact.fk", 5_000)
	g := q.AddAttr(fact, "fact.g", 8)
	q.AddAttr(fact, "fact.v", 10_000)
	fk2 := q.AddAttr(fact, "fact.fk2", 50)
	dk := q.AddAttr(detail, "detail.dk", 5_000)
	q.AddAttr(detail, "detail.dv", 100_000)
	pk := q.AddAttr(dim, "dim.pk", 50)
	q.AddKey(dim, pk)

	gj := &query.OpNode{
		Kind:  query.KindGroupJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: fact},
		Right: &query.OpNode{Kind: query.KindScan, Rel: detail},
		Pred:  &query.Predicate{Left: []int{fk}, Right: []int{dk}, Selectivity: 1.0 / 5_000},
		GroupJoinAggs: aggfn.Vector{
			{Out: "z", Kind: aggfn.Sum, Arg: "detail.dv"},
			{Out: "zn", Kind: aggfn.CountStar},
		},
	}
	q.Root = &query.OpNode{
		Kind:  query.KindJoin,
		Left:  gj,
		Right: &query.OpNode{Kind: query.KindScan, Rel: dim},
		Pred:  &query.Predicate{Left: []int{fk2}, Right: []int{pk}, Selectivity: 1.0 / 50},
	}
	q.SetGrouping([]int{g}, aggfn.Vector{
		{Out: "cnt", Kind: aggfn.CountStar},
		{Out: "s", Kind: aggfn.Sum, Arg: "fact.v"},
	})
	return q
}

// TestGroupJoinQueryEndToEnd optimizes and executes a groupjoin query with
// every algorithm, checking results against the canonical evaluation.
func TestGroupJoinQueryEndToEnd(t *testing.T) {
	q := groupJoinQuery()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 25; trial++ {
		data := RandomData(rng, q, 8)
		want, err := Canonical(q, data)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []core.Algorithm{core.AlgDPhyp, core.AlgEAPrune, core.AlgH1} {
			res, err := core.Optimize(q, core.Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			got, err := Exec(q, res.Plan, data)
			if err != nil {
				t.Fatalf("%v exec: %v\n%v", alg, err, res.Plan.StringWithQuery(q))
			}
			if !algebra.EqualBags(want, got, OutputAttrs(q)) {
				t.Fatalf("trial %d %v: groupjoin plan result differs\nplan:\n%v\nwant:\n%v\ngot:\n%v",
					trial, alg, res.Plan.StringWithQuery(q), want, got)
			}
		}
	}
}

// TestGroupJoinKeepsOperandsFixed: the conflict detector treats the
// groupjoin conservatively, so its right operand stays exactly the
// original right subtree in every produced plan.
func TestGroupJoinKeepsOperandsFixed(t *testing.T) {
	q := groupJoinQuery()
	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		t.Fatal(err)
	}
	var gj *plan.Plan
	var walk func(p *plan.Plan)
	walk = func(p *plan.Plan) {
		if p == nil {
			return
		}
		if p.Kind == plan.NodeOp && p.Op == query.KindGroupJoin {
			gj = p
		}
		walk(p.Left)
		walk(p.Right)
	}
	walk(res.Plan)
	if gj == nil {
		t.Fatalf("optimized plan lost the groupjoin:\n%v", res.Plan.StringWithQuery(q))
	}
	if !gj.Right.Rels.IsSingleton() || gj.Right.Rels.Min() != 1 {
		t.Errorf("groupjoin right operand moved: %v", gj.Right.Rels)
	}
}
