package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/randquery"
)

// identicalTables asserts bit-identical execution results: same schema,
// same rows in the same order, every value equal in kind and payload
// (floats by bit pattern — order-sensitive float sums must not drift).
func identicalTables(t *testing.T, label string, want, got *algebra.Table) {
	t.Helper()
	if fmt.Sprint(want.Schema.Names()) != fmt.Sprint(got.Schema.Names()) {
		t.Fatalf("%s: schema differs: %v vs %v", label, want.Schema.Names(), got.Schema.Names())
	}
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("%s: cardinality differs: want %d got %d", label, len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			a, b := want.Rows[i][j], got.Rows[i][j]
			if a.Kind != b.Kind || a.I != b.I || a.S != b.S ||
				math.Float64bits(a.F) != math.Float64bits(b.F) {
				t.Fatalf("%s: row %d slot %d differs: %v vs %v", label, i, j, a, b)
			}
		}
	}
}

// TestExecParallelDeterminism is the central contract of the
// morsel-driven runtime, mirroring internal/core/parallel_test.go for
// execution: on random queries and data, executing any optimized plan
// with Workers: 8 must return a table bit-identical to the sequential
// reference path (Workers: 1) — full-outer padding, weight products and
// order-sensitive float sums included. Tiny morsels force real fan-out
// on the small fuzz-sized inputs; run with -race to make the schedule
// adversarial.
func TestExecParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(20153))
	algs := []core.Options{
		{Algorithm: core.AlgDPhyp},
		{Algorithm: core.AlgEAPrune},
		{Algorithm: core.AlgH1},
		{Algorithm: core.AlgH2, F: 1.03},
		{Algorithm: core.AlgBeam, BeamWidth: 4},
	}
	queries := 0
	for n := 2; n <= 7; n++ {
		for trial := 0; trial < 10; trial++ {
			q := randquery.Generate(rng, randquery.Params{Relations: n})
			data := RandomData(rng, q, 14).Tables()
			queries++
			opts := algs[(queries-1)%len(algs)]
			res, err := core.Optimize(q, opts)
			if err != nil {
				t.Fatal(err)
			}

			seq, err := ExecTablesOpts(q, res.Plan, data, ExecOptions{Workers: 1})
			if err != nil {
				t.Fatalf("n=%d trial=%d sequential: %v", n, trial, err)
			}
			par, err := ExecTablesOpts(q, res.Plan, data, ExecOptions{Workers: 8, MorselSize: 2})
			if err != nil {
				t.Fatalf("n=%d trial=%d parallel: %v", n, trial, err)
			}
			identicalTables(t, fmt.Sprintf("n=%d trial=%d %v exec", n, trial, opts.Algorithm), seq, par)

			cseq, err := CanonicalTablesOpts(q, data, ExecOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			cpar, err := CanonicalTablesOpts(q, data, ExecOptions{Workers: 8, MorselSize: 2})
			if err != nil {
				t.Fatal(err)
			}
			identicalTables(t, fmt.Sprintf("n=%d trial=%d canonical", n, trial), cseq, cpar)
		}
	}
	if queries < 50 {
		t.Fatalf("workload too small: %d queries", queries)
	}
}

// TestCoutQError pins the clamped q-error semantics: a zero-vs-nonzero
// mismatch degrades by its magnitude instead of returning the old
// sentinel 0 (indistinguishable from a perfect estimate), the all-zero
// case is vacuously 1 and flagged trivial, and matching estimates are 1.
func TestCoutQError(t *testing.T) {
	cases := []struct {
		est, act float64
		want     float64
		trivial  bool
	}{
		{0, 0, 1, true},       // nothing to estimate: vacuous, flagged
		{100, 0, 100, false},  // estimator invented volume: penalized
		{0, 100, 100, false},  // estimator missed volume: penalized
		{50, 50, 1, false},    // exact
		{200, 100, 2, false},  // over by 2x
		{100, 400, 4, false},  // under by 4x
		{0.25, 0.5, 1, false}, // sub-row volumes clamp to 1: no reward
	}
	for _, c := range cases {
		s := &ExecStats{EstimatedCout: c.est, ActualCout: c.act}
		if got := s.CoutQError(); got != c.want {
			t.Errorf("CoutQError(est=%g, act=%g) = %g, want %g", c.est, c.act, got, c.want)
		}
		if got := s.CoutTrivial(); got != c.trivial {
			t.Errorf("CoutTrivial(est=%g, act=%g) = %v, want %v", c.est, c.act, got, c.trivial)
		}
		if s.CoutQError() < 1 {
			t.Errorf("q-error below 1 for est=%g act=%g", c.est, c.act)
		}
	}
}
