package engine

import (
	"fmt"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
	"eagg/internal/query"
)

// Runtime selects the physical execution runtime: row-at-a-time over
// []Value rows (the reference), or batch-at-a-time over columnar vectors
// (internal/algebra's ColTable operators). Both produce bit-identical
// output sequences — the batch runtime exists purely for speed, and the
// row runtime stays the differential oracle.
type Runtime int

const (
	// RuntimeRow executes operators row at a time on *algebra.Table.
	RuntimeRow Runtime = iota
	// RuntimeBatch executes operators batch at a time on columnar
	// vectors, converting to rows only at the result boundary.
	RuntimeBatch
)

func (r Runtime) String() string {
	switch r {
	case RuntimeRow:
		return "row"
	case RuntimeBatch:
		return "batch"
	}
	return fmt.Sprintf("Runtime(%d)", int(r))
}

// ParseRuntime parses a runtime name. The empty string selects the row
// runtime (the default).
func ParseRuntime(s string) (Runtime, error) {
	switch s {
	case "", "row":
		return RuntimeRow, nil
	case "batch":
		return RuntimeBatch, nil
	}
	return 0, fmt.Errorf("engine: unknown runtime %q (want row or batch)", s)
}

// rtTable is a compiled subplan's materialized data in whichever
// representation the runtime works on. Both *algebra.Table and
// *algebra.ColTable implement it; the compiler only ever needs the
// cardinality and the schema — everything else goes through runtimeOps.
type rtTable interface {
	Card() int
	TabSchema() *algebra.Schema
}

// runtimeOps is the operator surface the plan compiler executes against.
// scan converts a stored table into the runtime's representation and
// result converts back; every operator maps a plan node onto the
// corresponding algebra call.
type runtimeOps interface {
	scan(t *algebra.Table) rtTable
	result(t rtTable) *algebra.Table
	hashJoin(l, r rtTable, lk, rk []int) rtTable
	hashSemiJoin(l, r rtTable, lk, rk []int) rtTable
	hashAntiJoin(l, r rtTable, lk, rk []int) rtTable
	hashLeftOuter(l, r rtTable, lk, rk []int, rpad algebra.Row) rtTable
	hashFullOuter(l, r rtTable, lk, rk []int, lpad, rpad algebra.Row) rtTable
	hashGroupJoin(l, r rtTable, lk, rk []int, f aggfn.Vector) rtTable
	hashGroup(t rtTable, groupBy []string, f aggfn.Vector) rtTable
	sortGroup(t rtTable, groupBy []string, f aggfn.Vector, sortInput bool, verify []int) (rtTable, error)
	mergeJoin(op query.OpKind, l, r rtTable, lk, rk []int, sortL, sortR bool, rpad algebra.Row) (rtTable, error)
	product(t rtTable, name string, slots []int) rtTable
}

// rowRuntime runs every operator on the row-at-a-time slot runtime.
type rowRuntime struct{ ex *algebra.Exec }

func (rt rowRuntime) tab(t rtTable) *algebra.Table { return t.(*algebra.Table) }

func (rt rowRuntime) scan(t *algebra.Table) rtTable { return t }
func (rt rowRuntime) result(t rtTable) *algebra.Table {
	return rt.tab(t)
}
func (rt rowRuntime) hashJoin(l, r rtTable, lk, rk []int) rtTable {
	return rt.ex.HashJoin(rt.tab(l), rt.tab(r), lk, rk)
}
func (rt rowRuntime) hashSemiJoin(l, r rtTable, lk, rk []int) rtTable {
	return rt.ex.HashSemiJoin(rt.tab(l), rt.tab(r), lk, rk)
}
func (rt rowRuntime) hashAntiJoin(l, r rtTable, lk, rk []int) rtTable {
	return rt.ex.HashAntiJoin(rt.tab(l), rt.tab(r), lk, rk)
}
func (rt rowRuntime) hashLeftOuter(l, r rtTable, lk, rk []int, rpad algebra.Row) rtTable {
	return rt.ex.HashLeftOuter(rt.tab(l), rt.tab(r), lk, rk, rpad)
}
func (rt rowRuntime) hashFullOuter(l, r rtTable, lk, rk []int, lpad, rpad algebra.Row) rtTable {
	return rt.ex.HashFullOuter(rt.tab(l), rt.tab(r), lk, rk, lpad, rpad)
}
func (rt rowRuntime) hashGroupJoin(l, r rtTable, lk, rk []int, f aggfn.Vector) rtTable {
	return rt.ex.HashGroupJoin(rt.tab(l), rt.tab(r), lk, rk, f)
}
func (rt rowRuntime) hashGroup(t rtTable, groupBy []string, f aggfn.Vector) rtTable {
	return rt.ex.HashGroup(rt.tab(t), groupBy, f)
}
func (rt rowRuntime) sortGroup(t rtTable, groupBy []string, f aggfn.Vector, sortInput bool, verify []int) (rtTable, error) {
	return rt.ex.SortGroup(rt.tab(t), groupBy, f, sortInput, verify)
}
func (rt rowRuntime) mergeJoin(op query.OpKind, l, r rtTable, lk, rk []int, sortL, sortR bool, rpad algebra.Row) (rtTable, error) {
	switch op {
	case query.KindJoin:
		return rt.ex.MergeJoin(rt.tab(l), rt.tab(r), lk, rk, sortL, sortR)
	case query.KindSemiJoin:
		return rt.ex.MergeSemiJoin(rt.tab(l), rt.tab(r), lk, rk, sortL, sortR)
	case query.KindAntiJoin:
		return rt.ex.MergeAntiJoin(rt.tab(l), rt.tab(r), lk, rk, sortL, sortR)
	case query.KindLeftOuter:
		return rt.ex.MergeLeftOuter(rt.tab(l), rt.tab(r), lk, rk, sortL, sortR, rpad)
	}
	return nil, fmt.Errorf("engine: %v has no sort-based form", op)
}
func (rt rowRuntime) product(t rtTable, name string, slots []int) rtTable {
	return rt.ex.ExtendTable(rt.tab(t), name, func(row algebra.Row) algebra.Value {
		v := algebra.Int(1)
		for _, s := range slots {
			v = algebra.Mul(v, row[s])
		}
		return v
	})
}

// batchRuntime runs the hash operators batch at a time on columnar
// vectors. The sort-merge layer stays row-based — those operators bridge
// through the row representation (their output, a *algebra.Table, is
// itself an rtTable, and the next batch operator re-columnarizes it
// lazily via Columnar). Output sequences are bit-identical to the row
// runtime's for every batch size.
type batchRuntime struct{ ex *algebra.Exec }

// col views any rtTable columnar: ColTables pass through (selection
// vectors intact), row tables columnarize once and cache.
func (rt batchRuntime) col(t rtTable) *algebra.ColTable {
	switch v := t.(type) {
	case *algebra.ColTable:
		return v
	case *algebra.Table:
		return v.Columnar()
	}
	panic(fmt.Sprintf("engine: unknown runtime table %T", t))
}

func (rt batchRuntime) scan(t *algebra.Table) rtTable { return t.Columnar() }
func (rt batchRuntime) result(t rtTable) *algebra.Table {
	if v, ok := t.(*algebra.Table); ok {
		return v
	}
	return rt.col(t).Table()
}
func (rt batchRuntime) hashJoin(l, r rtTable, lk, rk []int) rtTable {
	return rt.ex.BatchHashJoin(rt.col(l), rt.col(r), lk, rk)
}
func (rt batchRuntime) hashSemiJoin(l, r rtTable, lk, rk []int) rtTable {
	return rt.ex.BatchHashSemiJoin(rt.col(l), rt.col(r), lk, rk)
}
func (rt batchRuntime) hashAntiJoin(l, r rtTable, lk, rk []int) rtTable {
	return rt.ex.BatchHashAntiJoin(rt.col(l), rt.col(r), lk, rk)
}
func (rt batchRuntime) hashLeftOuter(l, r rtTable, lk, rk []int, rpad algebra.Row) rtTable {
	return rt.ex.BatchHashLeftOuter(rt.col(l), rt.col(r), lk, rk, rpad)
}
func (rt batchRuntime) hashFullOuter(l, r rtTable, lk, rk []int, lpad, rpad algebra.Row) rtTable {
	return rt.ex.BatchHashFullOuter(rt.col(l), rt.col(r), lk, rk, lpad, rpad)
}
func (rt batchRuntime) hashGroupJoin(l, r rtTable, lk, rk []int, f aggfn.Vector) rtTable {
	return rt.ex.BatchHashGroupJoin(rt.col(l), rt.col(r), lk, rk, f)
}
func (rt batchRuntime) hashGroup(t rtTable, groupBy []string, f aggfn.Vector) rtTable {
	return rt.ex.BatchHashGroup(rt.col(t), groupBy, f)
}
func (rt batchRuntime) sortGroup(t rtTable, groupBy []string, f aggfn.Vector, sortInput bool, verify []int) (rtTable, error) {
	return rt.ex.SortGroup(rt.result(t), groupBy, f, sortInput, verify)
}
func (rt batchRuntime) mergeJoin(op query.OpKind, l, r rtTable, lk, rk []int, sortL, sortR bool, rpad algebra.Row) (rtTable, error) {
	return rowRuntime{ex: rt.ex}.mergeJoin(op, rt.result(l), rt.result(r), lk, rk, sortL, sortR, rpad)
}
func (rt batchRuntime) product(t rtTable, name string, slots []int) rtTable {
	return rt.ex.BatchExtendProduct(rt.col(t), name, slots)
}
