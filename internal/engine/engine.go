// Package engine executes optimized plans on concrete data through the
// algebra runtime, so that plans using eager aggregation can be verified to
// produce exactly the same results as the canonical (lazy) plan.
//
// The compilation realizes the mechanics behind the paper's equivalences in
// composed form. Every pushed-down grouping Γ_{G⁺} computes
//
//   - partial states for the aggregates whose sources lie inside the
//     grouped subtree (F¹ of the decompositions of Sec. 2.1.2), and
//   - one weight attribute: the count(*)-style multiplicity each grouped
//     row stands for (the c of the Groupby-Count equivalences).
//
// Joins concatenate weights; re-grouping re-aggregates partials weighted by
// the weights of *other* collapsed sides (the ⊗ operator), and the final
// grouping combines everything into the original aggregation vector F.
// Left and full outerjoins pad grouped sides with the default vectors
// F¹({⊥}) and c:1 exactly as the generalized operators of Sec. 2.2 demand.
package engine

import (
	"fmt"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
	"eagg/internal/bitset"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// Data maps relation ids to their contents.
type Data map[int]*algebra.Rel

// aggState tracks one original aggregate through the plan.
type aggState struct {
	// partial is nil while the aggregate is still raw (its argument
	// attributes flow through unaggregated). Once a grouping collapses
	// its source relations it holds the partial attribute names:
	// [p] for sum/count/min/max-style states, [s, n] for avg.
	partial []string
	// defaults aligns with partial: the {⊥} value of each partial
	// attribute, used as outerjoin defaults.
	defaults []aggfn.Default
	// cover is the relation set whose multiplicity is folded into the
	// partial.
	cover bitset.Set64
}

// weight is one multiplicity attribute with the relation set it covers.
type weight struct {
	attr  string
	cover bitset.Set64
}

// compiled is an executed subplan plus its aggregate bookkeeping.
type compiled struct {
	rel     *algebra.Rel
	weights []weight
	aggs    []aggState // indexed like the query's aggregation vector
}

// Exec executes an optimized plan against the data and returns the result
// relation over G ∪ A(F) (or the plain operator result for grouping-free
// queries).
func Exec(q *query.Query, p *plan.Plan, data Data) (*algebra.Rel, error) {
	e := &executor{q: q, data: data}
	c, err := e.compile(p)
	if err != nil {
		return nil, err
	}
	return c.rel, nil
}

type executor struct {
	q    *query.Query
	data Data
	seq  int
}

func (e *executor) fresh(prefix string) string {
	e.seq++
	return fmt.Sprintf("§%s%d", prefix, e.seq)
}

func (e *executor) attrNames(set bitset.Set64) []string {
	var out []string
	set.ForEach(func(a int) { out = append(out, e.q.AttrNames[a]) })
	return out
}

func (e *executor) compile(p *plan.Plan) (*compiled, error) {
	switch p.Kind {
	case plan.NodeScan:
		rel, ok := e.data[p.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: no data for relation %d", p.Rel)
		}
		return &compiled{rel: rel, aggs: make([]aggState, len(e.q.Aggregates))}, nil
	case plan.NodeOp:
		return e.compileOp(p)
	case plan.NodeGroup:
		child, err := e.compile(p.Left)
		if err != nil {
			return nil, err
		}
		if p.Final {
			return e.finalGroup(child, p.GroupBy, false)
		}
		return e.group(child, p)
	case plan.NodeProject:
		child, err := e.compile(p.Left)
		if err != nil {
			return nil, err
		}
		// The projection replaces the final grouping when every group is
		// a single tuple; evaluating the final vector per group yields
		// identical results (Eqv. 42).
		return e.finalGroup(child, e.q.GroupBy, true)
	}
	return nil, fmt.Errorf("engine: unknown node kind %d", p.Kind)
}

// pred compiles the plan node's predicates.
func (e *executor) pred(preds []*query.Predicate) algebra.Pred {
	var ps []algebra.Pred
	for _, p := range preds {
		for i := range p.Left {
			ps = append(ps, algebra.EqAttr(e.q.AttrNames[p.Left[i]], e.q.AttrNames[p.Right[i]]))
		}
	}
	return algebra.AndPred(ps...)
}

// sideDefaults builds the outerjoin default vector for a padded side: every
// weight defaults to 1 and every partial attribute to its {⊥} value.
func sideDefaults(c *compiled) algebra.Defaults {
	d := algebra.Defaults{}
	for _, w := range c.weights {
		d[w.attr] = algebra.Int(1)
	}
	for _, st := range c.aggs {
		for i, attr := range st.partial {
			switch st.defaults[i] {
			case aggfn.DefaultOne:
				d[attr] = algebra.Int(1)
			case aggfn.DefaultZero:
				d[attr] = algebra.Int(0)
			}
		}
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

func (e *executor) compileOp(p *plan.Plan) (*compiled, error) {
	l, err := e.compile(p.Left)
	if err != nil {
		return nil, err
	}
	r, err := e.compile(p.Right)
	if err != nil {
		return nil, err
	}
	pred := e.pred(p.Preds)

	out := &compiled{aggs: make([]aggState, len(e.q.Aggregates))}
	dropRight := p.Op.LeftOnly()
	for i := range out.aggs {
		switch {
		case l.aggs[i].partial != nil:
			out.aggs[i] = l.aggs[i]
		case !dropRight && r.aggs[i].partial != nil:
			out.aggs[i] = r.aggs[i]
		}
	}
	out.weights = append(out.weights, l.weights...)
	if !dropRight {
		out.weights = append(out.weights, r.weights...)
	}

	switch p.Op {
	case query.KindJoin:
		out.rel = algebra.Join(l.rel, r.rel, pred)
	case query.KindSemiJoin:
		out.rel = algebra.SemiJoin(l.rel, r.rel, pred)
	case query.KindAntiJoin:
		out.rel = algebra.AntiJoin(l.rel, r.rel, pred)
	case query.KindLeftOuter:
		out.rel = algebra.LeftOuter(l.rel, r.rel, pred, sideDefaults(r))
	case query.KindFullOuter:
		out.rel = algebra.FullOuter(l.rel, r.rel, pred, sideDefaults(l), sideDefaults(r))
	case query.KindGroupJoin:
		if len(r.weights) != 0 {
			return nil, fmt.Errorf("engine: groupjoin over a pre-aggregated right side is not supported")
		}
		// Locate the groupjoin's own vector on the original tree node.
		gj := findGroupJoin(e.q.Root, p.Rels)
		if gj == nil {
			return nil, fmt.Errorf("engine: groupjoin node not found in the query tree")
		}
		out.rel = algebra.GroupJoin(l.rel, r.rel, pred, gj.GroupJoinAggs)
	default:
		return nil, fmt.Errorf("engine: unsupported operator %v", p.Op)
	}
	return out, nil
}

// findGroupJoin locates the original groupjoin node covering exactly the
// relations the plan node covers (the conflict detector keeps groupjoin
// operands fixed, so the match is unique).
func findGroupJoin(n *query.OpNode, rels bitset.Set64) *query.OpNode {
	if n == nil || n.Kind == query.KindScan {
		return nil
	}
	if n.Kind == query.KindGroupJoin && n.Rels() == rels {
		return n
	}
	if g := findGroupJoin(n.Left, rels); g != nil {
		return g
	}
	return findGroupJoin(n.Right, rels)
}
