// Package engine executes optimized plans on concrete data, so that plans
// using eager aggregation can be verified to produce exactly the same
// results as the canonical (lazy) plan — and timed against it.
//
// The execution runtime is slot-based and columnar-friendly: every
// operator resolves the attribute names it touches against its input
// Schema once, at plan-compilation time, and then works on flat
// []Value rows. Equi-joins (the only join form the optimizer emits) run
// as build/probe hash joins over collision-proof typed keys, and every
// grouping runs as typed hash aggregation (internal/algebra's slot
// runtime). A frozen map-tuple/nested-loop implementation of the same
// compilation is kept in reference.go (ExecRef, CanonicalRef) as the
// differential-testing oracle and benchmark baseline.
//
// The compilation realizes the mechanics behind the paper's equivalences
// in composed form. Every pushed-down grouping Γ_{G⁺} computes
//
//   - partial states for the aggregates whose sources lie inside the
//     grouped subtree (F¹ of the decompositions of Sec. 2.1.2), and
//   - one weight attribute: the count(*)-style multiplicity each grouped
//     row stands for (the c of the Groupby-Count equivalences).
//
// Joins concatenate weights; re-grouping re-aggregates partials weighted
// by the weights of *other* collapsed sides (the ⊗ operator), and the
// final grouping combines everything into the original aggregation
// vector F. Left and full outerjoins pad grouped sides with the default
// vectors F¹({⊥}) and c:1 exactly as the generalized operators of
// Sec. 2.2 demand.
package engine

import (
	"fmt"
	"math"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
	"eagg/internal/bitset"
	"eagg/internal/cost"
	"eagg/internal/obs"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// Data maps relation ids to their contents in the map-tuple boundary
// representation.
type Data map[int]*algebra.Rel

// TableData maps relation ids to slot-based tables — the representation
// the runtime actually executes on. Convert once with Data.Tables, or
// generate tables directly (internal/tpch does).
type TableData map[int]*algebra.Table

// Tables converts boundary relations into slot-based tables.
func (d Data) Tables() TableData {
	out := make(TableData, len(d))
	for id, rel := range d {
		out[id] = algebra.TableOf(rel)
	}
	return out
}

// ExecOptions configures plan execution.
type ExecOptions struct {
	// Workers is the number of goroutines the morsel-driven runtime
	// uses inside each operator: 0 (or negative) selects GOMAXPROCS,
	// 1 is the exact sequential reference path, larger counts enable
	// the parallel operator variants. Results are bit-identical for
	// every value (see DESIGN.md's determinism argument).
	Workers int
	// MorselSize overrides the rows-per-morsel granularity (0 = the
	// adaptive default: several morsels per worker, clamped to
	// [64, algebra.DefaultMorselSize]). Setting it also disables the
	// small-operator sequential cutoff, forcing the parallel machinery
	// onto every operator — the tests rely on that to exercise
	// parallelism on tiny inputs. Leave it 0 in production; results
	// are identical for every size.
	MorselSize int
	// Pool, when set, supplies the goroutines for every operator
	// fan-out from a shared scheduler instead of spawning fresh ones —
	// the handoff the service layer uses to multiplex one worker pool
	// across concurrent queries. Workers still controls the (purely
	// size-derived) work decomposition, so results are bit-identical
	// with and without a pool.
	Pool *algebra.Pool
	// Runtime selects row-at-a-time (the default, the reference) or
	// batch-at-a-time columnar execution. Results are bit-identical.
	Runtime Runtime
	// BatchSize overrides the rows-per-batch granularity of the batch
	// runtime (0 = algebra.DefaultBatchSize). Results are identical for
	// every size.
	BatchSize int
	// Trace, when set, records one span per plan node (operator wall
	// time, rows in/out, estimates, hash/sort telemetry) into the given
	// trace. Spans are recorded by the driver goroutine at the operator
	// barriers the profiler already uses, so collection never perturbs
	// results: the deterministic span fields (structure, names, row
	// counts — obs.Trace.Fingerprint) are bit-identical for every worker
	// count, and timing lives in separate fields excluded from the
	// determinism comparisons. Nil (the default) skips all recording; the
	// only residue is one pointer test per operator.
	Trace *obs.Trace
}

// exec resolves the options into operator execution settings.
func (o ExecOptions) exec() *algebra.Exec {
	e := algebra.NewExec(o.Workers)
	if o.MorselSize > 0 {
		e = e.WithMorselSize(o.MorselSize)
	}
	if o.Pool != nil {
		e = e.WithPool(o.Pool)
	}
	if o.BatchSize > 0 {
		e = e.WithBatchSize(o.BatchSize)
	}
	return e
}

// runtime resolves the options into the operator runtime the compiler
// executes against.
func (o ExecOptions) runtime(ex *algebra.Exec) runtimeOps {
	if o.Runtime == RuntimeBatch {
		return batchRuntime{ex: ex}
	}
	return rowRuntime{ex: ex}
}

// ExecStats profiles one execution: a per-operator cardinality profile
// (each join and grouping operator's measured output under its canonical
// (relation-set, grouping-attrs) key — scans and the free projection
// excluded, matching the estimator) plus the plan-level aggregates
// derived from it.
type ExecStats struct {
	// ActualCout is Σ |output| over join and grouping operators — the
	// measured value of the quantity C_out estimates.
	ActualCout float64
	// EstimatedCout is the plan's C_out estimate (root cost).
	EstimatedCout float64
	// ResultRows is the cardinality of the final result.
	ResultRows int
	// Workers is the resolved per-operator worker count the execution
	// used (1 = sequential reference path).
	Workers int
	// Ops is the per-operator cardinality profile, one entry per costed
	// operator in compile (bottom-up) order. Relation bitsets survive
	// the binder, so keys are recorded at operator-completion time.
	Ops []OpCard
	// Hash aggregates the flat hash-table telemetry of the execution
	// (batch-runtime builds and bloom-filtered probes; zero-valued under
	// the row runtime's map-based sequential operators).
	Hash algebra.HashTableStats
}

// OpCard is one operator's measured output cardinality with its canonical
// key and the plan's estimate for the same operator.
type OpCard struct {
	Key cost.CardKey
	Est float64 // the plan node's estimated output cardinality
	Act float64 // the measured output cardinality
}

// QError is the per-operator cardinality q-error, clamped like
// ExecStats.CoutQError.
func (c OpCard) QError() float64 {
	est := math.Max(c.Est, 1)
	act := math.Max(c.Act, 1)
	if est > act {
		return est / act
	}
	return act / est
}

// WorstOp returns the operator with the largest cardinality q-error, or
// ok=false for plans without costed operators. Ties keep the first
// (deepest) operator, where the error originates.
func (s *ExecStats) WorstOp() (OpCard, bool) {
	if len(s.Ops) == 0 {
		return OpCard{}, false
	}
	worst := s.Ops[0]
	for _, op := range s.Ops[1:] {
		if op.QError() > worst.QError() {
			worst = op
		}
	}
	return worst, true
}

// HarvestInto records every measured operator cardinality into the
// overlay — the harvest half of the execute→harvest→re-optimize loop.
func (s *ExecStats) HarvestInto(o *cost.FeedbackOverlay) {
	for _, op := range s.Ops {
		o.Set(op.Key, op.Act)
	}
}

// Profile returns the measured cardinalities as a fresh FeedbackOverlay,
// ready to be passed to a re-optimization via core.Options.Stats.
func (s *ExecStats) Profile() *cost.FeedbackOverlay {
	o := cost.NewFeedbackOverlay()
	s.HarvestInto(o)
	return o
}

// CoutQError returns the q-error of the C_out estimate:
// max(est, actual)/min(est, actual) with both sides clamped to ≥ 1, the
// standard guard that keeps the metric finite and monotone when either
// cardinality is zero. A perfect estimate (including "both zero") is 1;
// an estimate of n against a measured 0 — or vice versa — degrades as n
// instead of collapsing to a sentinel indistinguishable from perfect.
// Use CoutTrivial to tell the vacuous all-zero case apart.
func (s *ExecStats) CoutQError() float64 {
	est := math.Max(s.EstimatedCout, 1)
	act := math.Max(s.ActualCout, 1)
	if est > act {
		return est / act
	}
	return act / est
}

// CoutTrivial reports whether the plan had no costed operators at all
// (both the estimate and the measurement are zero), in which case the
// q-error is vacuously 1 and reports should print it as undefined.
func (s *ExecStats) CoutTrivial() bool {
	return s.ActualCout == 0 && s.EstimatedCout == 0
}

// aggState tracks one original aggregate through the plan.
type aggState struct {
	// partial is nil while the aggregate is still raw (its argument
	// attributes flow through unaggregated). Once a grouping collapses
	// its source relations it holds the partial attribute names:
	// [p] for sum/count/min/max-style states, [s, n] for avg.
	partial []string
	// defaults aligns with partial: the {⊥} value of each partial
	// attribute, used as outerjoin defaults.
	defaults []aggfn.Default
	// cover is the relation set whose multiplicity is folded into the
	// partial.
	cover bitset.VSet
}

// weight is one multiplicity attribute with the relation set it covers.
type weight struct {
	attr  string
	cover bitset.VSet
}

// binder is the representation-independent part of plan compilation: the
// query, fresh-name generation and the aggregate bookkeeping rewrites
// shared by the slot executor and the reference executor.
type binder struct {
	q   *query.Query
	seq int
}

func (e *binder) fresh(prefix string) string {
	e.seq++
	return fmt.Sprintf("§%s%d", prefix, e.seq)
}

func (e *binder) attrNames(set bitset.VSet) []string {
	var out []string
	set.ForEach(func(a int) { out = append(out, e.q.AttrNames[a]) })
	return out
}

// compiled is an executed subplan plus its aggregate bookkeeping. The
// table lives in whichever representation the selected runtime works on
// (rows or columnar batches).
type compiled struct {
	tab     rtTable
	weights []weight
	aggs    []aggState // indexed like the query's aggregation vector
}

// Exec executes an optimized plan against boundary data and returns the
// result relation over G ∪ A(F) (or the plain operator result for
// grouping-free queries).
func Exec(q *query.Query, p *plan.Plan, data Data) (*algebra.Rel, error) {
	tab, err := ExecTables(q, p, data.Tables())
	if err != nil {
		return nil, err
	}
	return tab.Rel(), nil
}

// ExecTables executes an optimized plan on slot-based tables on the
// sequential reference path; ExecTablesOpts adds morsel-driven
// parallelism.
func ExecTables(q *query.Query, p *plan.Plan, data TableData) (*algebra.Table, error) {
	return ExecTablesOpts(q, p, data, ExecOptions{Workers: 1})
}

// ExecTablesOpts executes an optimized plan on slot-based tables under
// the given execution options. Results are bit-identical for every
// worker count.
func ExecTablesOpts(q *query.Query, p *plan.Plan, data TableData, opts ExecOptions) (*algebra.Table, error) {
	rt := opts.runtime(opts.exec())
	e := &executor{binder: binder{q: q}, data: data, rt: rt, tr: opts.Trace}
	c, err := e.compile(p)
	if err != nil {
		return nil, err
	}
	return rt.result(c.tab), nil
}

// ExecProfiled executes an optimized plan and reports execution
// statistics, including the measured counterpart of the plan's C_out
// estimate, on the sequential reference path.
func ExecProfiled(q *query.Query, p *plan.Plan, data TableData) (*algebra.Table, *ExecStats, error) {
	return ExecProfiledOpts(q, p, data, ExecOptions{Workers: 1})
}

// ExecProfiledOpts is ExecProfiled under the given execution options.
// Parallelism is intra-operator (morsels inside each hash operator), so
// the per-operator cardinality profile is accumulated by the single
// driver goroutine after each operator's barrier — no synchronization
// on ExecStats is needed, and the profile itself is deterministic.
func ExecProfiledOpts(q *query.Query, p *plan.Plan, data TableData, opts ExecOptions) (*algebra.Table, *ExecStats, error) {
	hs := &algebra.HashStats{}
	ex := opts.exec().WithHashStats(hs)
	rt := opts.runtime(ex)
	stats := &ExecStats{EstimatedCout: p.Cost, Workers: ex.Workers()}
	e := &executor{binder: binder{q: q}, data: data, stats: stats, rt: rt, tr: opts.Trace, hs: hs}
	c, err := e.compile(p)
	if err != nil {
		return nil, nil, err
	}
	res := rt.result(c.tab)
	stats.ResultRows = res.Card()
	stats.Hash = hs.Snapshot()
	return res, stats, nil
}

type executor struct {
	binder
	data  TableData
	stats *ExecStats
	rt    runtimeOps
	tr    *obs.Trace         // nil = no tracing
	hs    *algebra.HashStats // live hash telemetry, for per-span deltas
}

// record accumulates one operator's actual output cardinality, both into
// the summed actual C_out and — keyed by the operator's canonical
// (relation-set, grouping-attrs) identity — into the per-operator profile
// the feedback loop harvests.
func (e *executor) record(p *plan.Plan, t rtTable) {
	if e.stats == nil {
		return
	}
	act := float64(t.Card())
	e.stats.ActualCout += act
	if key, ok := cost.KeyOf(p); ok {
		e.stats.Ops = append(e.stats.Ops, OpCard{Key: key, Est: p.Card, Act: act})
	}
}

// compile executes one plan node (children first), wrapped in a trace
// span when tracing is on. The span is opened before the children
// compile and closed at the node's operator barrier, so spans nest by
// plan structure and a span's duration is the node's inclusive wall
// time — exactly what EXPLAIN ANALYZE prints. All recording happens on
// the driver goroutine; the morsel fan-outs inside operators never see
// the trace.
func (e *executor) compile(p *plan.Plan) (*compiled, error) {
	if e.tr == nil {
		return e.compileNode(p)
	}
	var before algebra.HashTableStats
	if e.hs != nil {
		before = e.hs.Snapshot()
	}
	sid := e.tr.Begin(spanName(e.q, p), "op")
	c, err := e.compileNode(p)
	if err != nil {
		e.tr.End(sid)
		return nil, err
	}
	// Rows in = the outputs of the direct child spans (none for scans).
	rowsIn := int64(-1)
	for _, sp := range e.tr.Spans() {
		if sp.Parent == sid {
			if rowsIn < 0 {
				rowsIn = 0
			}
			rowsIn += sp.RowsOut
		}
	}
	e.tr.SetRows(sid, rowsIn, int64(c.tab.Card()))
	annotateSpan(e.tr, sid, p, e.hs, before)
	e.tr.End(sid)
	return c, nil
}

func (e *executor) compileNode(p *plan.Plan) (*compiled, error) {
	switch p.Kind {
	case plan.NodeScan:
		tab, ok := e.data[p.Rel]
		if !ok {
			return nil, fmt.Errorf("engine: no data for relation %d", p.Rel)
		}
		return &compiled{tab: e.rt.scan(tab), aggs: make([]aggState, len(e.q.Aggregates))}, nil
	case plan.NodeOp:
		return e.compileOp(p)
	case plan.NodeGroup:
		child, err := e.compile(p.Left)
		if err != nil {
			return nil, err
		}
		var c *compiled
		if p.Final {
			c, err = e.finalGroup(child, p.GroupBy, p)
		} else {
			c, err = e.group(child, p)
		}
		if err != nil {
			return nil, err
		}
		e.record(p, c.tab)
		return c, nil
	case plan.NodeProject:
		child, err := e.compile(p.Left)
		if err != nil {
			return nil, err
		}
		// The projection replaces the final grouping when every group is
		// a single tuple; evaluating the final vector per group yields
		// identical results (Eqv. 42). It is free under C_out, so its
		// output is not recorded into ActualCout — matching the
		// estimator, which prices NodeProject at its child's cost.
		return e.finalGroup(child, e.q.GroupBy, nil)
	}
	return nil, fmt.Errorf("engine: unknown node kind %d", p.Kind)
}

// joinKeys resolves the plan node's equi-predicates into paired key
// slots. Predicates may arrive in commuted orientation (the DP driver
// applies commutative operators both ways), so each attribute pair is
// oriented by schema membership. Attributes absent from both sides
// resolve to slot -1, which reads as NULL and — under strict join
// equality — matches nothing, mirroring the map runtime.
func joinKeys(q *query.Query, preds []*query.Predicate, ls, rs *algebra.Schema) (lk, rk []int) {
	slotIn := func(s *algebra.Schema, name string) int {
		if i, ok := s.Slot(name); ok {
			return i
		}
		return -1
	}
	for _, p := range preds {
		for i := range p.Left {
			ln, rn := q.AttrNames[p.Left[i]], q.AttrNames[p.Right[i]]
			if !ls.Has(ln) && ls.Has(rn) {
				ln, rn = rn, ln
			}
			lk = append(lk, slotIn(ls, ln))
			rk = append(rk, slotIn(rs, rn))
		}
	}
	return lk, rk
}

// mergeKeySlots resolves a sort-merge node's merge-key attribute ids
// (already oriented and permuted by the optimizer, plan.MergeL/MergeR)
// against the input schemas. Attributes dropped below (slot -1) read as
// NULL and match nothing, like in the hash path.
func mergeKeySlots(q *query.Query, p *plan.Plan, ls, rs *algebra.Schema) (lk, rk []int) {
	slotIn := func(s *algebra.Schema, a int) int {
		if i, ok := s.Slot(q.AttrNames[a]); ok {
			return i
		}
		return -1
	}
	for i := range p.MergeL {
		lk = append(lk, slotIn(ls, p.MergeL[i]))
		rk = append(rk, slotIn(rs, p.MergeR[i]))
	}
	return lk, rk
}

// padRow builds the outerjoin default row for a padded side: NULL
// everywhere except weights (1) and partial attributes ({⊥} defaults).
func padRow(c *compiled) algebra.Row {
	s := c.tab.TabSchema()
	pad := algebra.NullRow(s)
	set := func(attr string, v algebra.Value) {
		if slot, ok := s.Slot(attr); ok {
			pad[slot] = v
		}
	}
	for _, w := range c.weights {
		set(w.attr, algebra.Int(1))
	}
	for _, st := range c.aggs {
		for i, attr := range st.partial {
			switch st.defaults[i] {
			case aggfn.DefaultOne:
				set(attr, algebra.Int(1))
			case aggfn.DefaultZero:
				set(attr, algebra.Int(0))
			}
		}
	}
	return pad
}

func (e *executor) compileOp(p *plan.Plan) (*compiled, error) {
	l, err := e.compile(p.Left)
	if err != nil {
		return nil, err
	}
	r, err := e.compile(p.Right)
	if err != nil {
		return nil, err
	}
	lk, rk := joinKeys(e.q, p.Preds, l.tab.TabSchema(), r.tab.TabSchema())

	out := &compiled{aggs: make([]aggState, len(e.q.Aggregates))}
	dropRight := p.Op.LeftOnly()
	for i := range out.aggs {
		switch {
		case l.aggs[i].partial != nil:
			out.aggs[i] = l.aggs[i]
		case !dropRight && r.aggs[i].partial != nil:
			out.aggs[i] = r.aggs[i]
		}
	}
	out.weights = append(out.weights, l.weights...)
	if !dropRight {
		out.weights = append(out.weights, r.weights...)
	}

	if p.Phys == plan.PhysSortMerge {
		// The sort-based layer: merge joins over the plan's merge-key
		// order, sorting only the inputs the optimizer could not prove
		// ordered. Output sequences equal the hash operators', so the
		// choice of layer never shows in results — only in the sorts
		// performed.
		mlk, mrk := mergeKeySlots(e.q, p, l.tab.TabSchema(), r.tab.TabSchema())
		var rpad algebra.Row
		if p.Op == query.KindLeftOuter {
			rpad = padRow(r)
		}
		tab, err := e.rt.mergeJoin(p.Op, l.tab, r.tab, mlk, mrk, p.SortL, p.SortR, rpad)
		if err != nil {
			return nil, err
		}
		out.tab = tab
		e.record(p, out.tab)
		return out, nil
	}

	switch p.Op {
	case query.KindJoin:
		out.tab = e.rt.hashJoin(l.tab, r.tab, lk, rk)
	case query.KindSemiJoin:
		out.tab = e.rt.hashSemiJoin(l.tab, r.tab, lk, rk)
	case query.KindAntiJoin:
		out.tab = e.rt.hashAntiJoin(l.tab, r.tab, lk, rk)
	case query.KindLeftOuter:
		out.tab = e.rt.hashLeftOuter(l.tab, r.tab, lk, rk, padRow(r))
	case query.KindFullOuter:
		out.tab = e.rt.hashFullOuter(l.tab, r.tab, lk, rk, padRow(l), padRow(r))
	case query.KindGroupJoin:
		if len(r.weights) != 0 {
			return nil, fmt.Errorf("engine: groupjoin over a pre-aggregated right side is not supported")
		}
		// Locate the groupjoin's own vector on the original tree node.
		gj := findGroupJoin(e.q.Root, p.Rels)
		if gj == nil {
			return nil, fmt.Errorf("engine: groupjoin node not found in the query tree")
		}
		out.tab = e.rt.hashGroupJoin(l.tab, r.tab, lk, rk, gj.GroupJoinAggs)
	default:
		return nil, fmt.Errorf("engine: unsupported operator %v", p.Op)
	}
	e.record(p, out.tab)
	return out, nil
}

// findGroupJoin locates the original groupjoin node covering exactly the
// relations the plan node covers (the conflict detector keeps groupjoin
// operands fixed, so the match is unique).
func findGroupJoin(n *query.OpNode, rels bitset.VSet) *query.OpNode {
	if n == nil || n.Kind == query.KindScan {
		return nil
	}
	if n.Kind == query.KindGroupJoin && n.Rels() == rels {
		return n
	}
	if g := findGroupJoin(n.Left, rels); g != nil {
		return g
	}
	return findGroupJoin(n.Right, rels)
}
