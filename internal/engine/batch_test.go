package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"eagg/internal/core"
	"eagg/internal/randquery"
)

// TestParseRuntime pins the flag-surface contract: empty and "row" are
// the row runtime, "batch" is the batch runtime, anything else errors.
func TestParseRuntime(t *testing.T) {
	for s, want := range map[string]Runtime{"": RuntimeRow, "row": RuntimeRow, "batch": RuntimeBatch} {
		got, err := ParseRuntime(s)
		if err != nil || got != want {
			t.Errorf("ParseRuntime(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseRuntime("vector"); err == nil {
		t.Error("ParseRuntime must reject unknown names")
	}
	if RuntimeRow.String() != "row" || RuntimeBatch.String() != "batch" {
		t.Error("Runtime.String mismatch")
	}
}

// TestBatchParallelDeterminism is the batch runtime's version of the
// central determinism contract: on random queries and data, executing an
// optimized plan on the batch runtime — for every (workers, batch-size)
// pair — must return a table bit-identical to the sequential row
// reference path, order-sensitive float sums included.
func TestBatchParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(90217))
	algs := []core.Options{
		{Algorithm: core.AlgDPhyp},
		{Algorithm: core.AlgEAPrune},
		{Algorithm: core.AlgH1},
	}
	batchSizes := []int{1, 7, 1024}
	queries := 0
	for n := 2; n <= 6; n++ {
		for trial := 0; trial < 6; trial++ {
			q := randquery.Generate(rng, randquery.Params{Relations: n})
			data := RandomData(rng, q, 14).Tables()
			queries++
			opts := algs[(queries-1)%len(algs)]
			res, err := core.Optimize(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := ExecTablesOpts(q, res.Plan, data, ExecOptions{Workers: 1})
			if err != nil {
				t.Fatalf("n=%d trial=%d sequential: %v", n, trial, err)
			}
			for _, bs := range batchSizes {
				for _, workers := range []int{1, 8} {
					eo := ExecOptions{Workers: workers, Runtime: RuntimeBatch, BatchSize: bs}
					if workers > 1 {
						eo.MorselSize = 2
					}
					got, err := ExecTablesOpts(q, res.Plan, data, eo)
					if err != nil {
						t.Fatalf("n=%d trial=%d batch=%d workers=%d: %v", n, trial, bs, workers, err)
					}
					identicalTables(t,
						fmt.Sprintf("n=%d trial=%d %v batch=%d workers=%d", n, trial, opts.Algorithm, bs, workers),
						seq, got)
				}
			}
		}
	}
	if queries < 25 {
		t.Fatalf("workload too small: %d queries", queries)
	}
}

// TestExecStatsHashTelemetry pins that hash-table telemetry flows
// through ExecProfiledOpts: the batch runtime builds flat tables (so
// Builds > 0 with a sane load factor), while the sequential row runtime
// stays on Go maps and reports zero builds.
func TestExecStatsHashTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(90218))
	q := randquery.Generate(rng, randquery.Params{Relations: 4})
	data := RandomData(rng, q, 14).Tables()
	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		t.Fatal(err)
	}
	_, batch, err := ExecProfiledOpts(q, res.Plan, data, ExecOptions{Workers: 1, Runtime: RuntimeBatch})
	if err != nil {
		t.Fatal(err)
	}
	if batch.Hash.Builds == 0 || batch.Hash.Entries == 0 {
		t.Fatalf("batch runtime reported no flat-table builds: %+v", batch.Hash)
	}
	if lf := batch.Hash.LoadFactor(); lf <= 0 || lf > 0.75 {
		t.Fatalf("batch load factor %v outside (0, 0.75]", lf)
	}
	_, row, err := ExecProfiledOpts(q, res.Plan, data, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if row.Hash.Builds != 0 {
		t.Fatalf("sequential row runtime built flat tables: %+v", row.Hash)
	}
}
