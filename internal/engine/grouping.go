package engine

import (
	"fmt"

	"eagg/internal/aggfn"
	"eagg/internal/bitset"
	"eagg/internal/plan"
)

// product materializes the product of the given weight attributes as a
// fresh column and returns its name ("" when there are none, the
// attribute itself when there is exactly one). The column is computed
// slot-wise: the weight attributes are resolved against the table schema
// once, and the runtime multiplies plain slot reads (per row, or as a
// typed columnar kernel on the batch runtime).
func (e *executor) product(tab rtTable, attrs []string) (string, rtTable) {
	switch len(attrs) {
	case 0:
		return "", tab
	case 1:
		return attrs[0], tab
	}
	name := e.fresh("prod")
	slots := tab.TabSchema().Slots(attrs)
	return name, e.rt.product(tab, name, slots)
}

func weightAttrs(ws []weight, excludeCover bitset.VSet) []string {
	var out []string
	for _, w := range ws {
		if !w.cover.Intersects(excludeCover) {
			out = append(out, w.attr)
		}
	}
	return out
}

// group executes a pushed-down grouping node: collapse the subtree to one
// row per G⁺ value, computing a fresh weight and partial aggregate
// states, via typed hash aggregation.
func (e *executor) group(child *compiled, p *plan.Plan) (*compiled, error) {
	s := p.Rels
	gNames := e.attrNames(p.GroupBy)
	tab := child.tab
	out := &compiled{aggs: make([]aggState, len(e.q.Aggregates))}

	// Fresh weight: the number of original tuple combinations each
	// grouped row stands for — Σ over the group of the product of the
	// existing weights (count(*) when none exist yet).
	wAll, tab2 := e.product(tab, weightAttrs(child.weights, bitset.VSet{}))
	tab = tab2
	wNew := e.fresh("w")
	inner := aggfn.Vector{}
	if wAll == "" {
		inner = append(inner, aggfn.Agg{Out: wNew, Kind: aggfn.CountStar})
	} else {
		inner = append(inner, aggfn.Agg{Out: wNew, Kind: aggfn.Sum, Arg: wAll})
	}

	srcs := e.q.AggSourceRels()
	for i, agg := range e.q.Aggregates {
		st := child.aggs[i]
		switch {
		case st.partial != nil:
			// Re-aggregate the partial, weighted by the multiplicities
			// of the other collapsed sides (the ⊗ adjustment).
			wOther, tab3 := e.product(tab, weightAttrs(child.weights, st.cover))
			tab = tab3
			ns, err := e.reaggregate(agg.Kind, st, wOther, &inner, s)
			if err != nil {
				return nil, err
			}
			out.aggs[i] = ns
		case srcs[i].IsEmpty():
			// count(*): fully tracked by the weights.
		case !srcs[i].Intersects(s):
			// Raw and entirely outside this subtree: untouched.
		case !srcs[i].SubsetOf(s):
			return nil, fmt.Errorf("engine: aggregate %d spans the grouped subtree boundary — invalid plan", i)
		default:
			// First collapse: raw → partial, weighted by all existing
			// multiplicities.
			ns, err := e.collapse(agg, wAll, &inner, s)
			if err != nil {
				return nil, err
			}
			out.aggs[i] = ns
		}
	}

	res, err := e.groupTable(tab, gNames, inner, p)
	if err != nil {
		return nil, err
	}
	out.tab = res
	out.weights = []weight{{attr: wNew, cover: s}}
	return out, nil
}

// groupTable runs one aggregation on the physical layer the plan node
// selected: typed hash aggregation, or sort-group aggregation that
// either streams over the input's existing order (SortL false — the
// eliminated sort, verified against the covering order prefix the
// optimizer recorded in p.MergeL) or sorts by the grouping key first.
// Both layers emit the identical output sequence.
func (e *executor) groupTable(tab rtTable, gNames []string, f aggfn.Vector, p *plan.Plan) (rtTable, error) {
	if p != nil && p.Phys == plan.PhysSortMerge {
		var verify []int
		if !p.SortL {
			for _, a := range p.MergeL {
				if slot, ok := tab.TabSchema().Slot(e.q.AttrNames[a]); ok {
					verify = append(verify, slot)
				}
			}
		}
		return e.rt.sortGroup(tab, gNames, f, p.SortL, verify)
	}
	return e.rt.hashGroup(tab, gNames, f), nil
}

// collapse turns a raw aggregate into a partial state, appending the
// needed inner aggregates.
func (e *binder) collapse(agg aggfn.Agg, w string, inner *aggfn.Vector, cover bitset.VSet) (aggState, error) {
	switch agg.Kind {
	case aggfn.Sum:
		p := e.fresh("p")
		if w == "" {
			*inner = append(*inner, aggfn.Agg{Out: p, Kind: aggfn.Sum, Arg: agg.Arg})
		} else {
			*inner = append(*inner, aggfn.Agg{Out: p, Kind: aggfn.SumTimes, Arg: agg.Arg, Arg2: w})
		}
		return aggState{partial: []string{p}, defaults: []aggfn.Default{aggfn.DefaultNull}, cover: cover}, nil
	case aggfn.Count:
		p := e.fresh("p")
		if w == "" {
			*inner = append(*inner, aggfn.Agg{Out: p, Kind: aggfn.Count, Arg: agg.Arg})
		} else {
			*inner = append(*inner, aggfn.Agg{Out: p, Kind: aggfn.SumIfNotNull, Arg: agg.Arg, Arg2: w})
		}
		return aggState{partial: []string{p}, defaults: []aggfn.Default{aggfn.DefaultZero}, cover: cover}, nil
	case aggfn.Min, aggfn.Max:
		p := e.fresh("p")
		*inner = append(*inner, aggfn.Agg{Out: p, Kind: agg.Kind, Arg: agg.Arg})
		return aggState{partial: []string{p}, defaults: []aggfn.Default{aggfn.DefaultNull}, cover: cover}, nil
	case aggfn.Avg:
		ps, pn := e.fresh("ps"), e.fresh("pn")
		if w == "" {
			*inner = append(*inner,
				aggfn.Agg{Out: ps, Kind: aggfn.Sum, Arg: agg.Arg},
				aggfn.Agg{Out: pn, Kind: aggfn.Count, Arg: agg.Arg})
		} else {
			*inner = append(*inner,
				aggfn.Agg{Out: ps, Kind: aggfn.SumTimes, Arg: agg.Arg, Arg2: w},
				aggfn.Agg{Out: pn, Kind: aggfn.SumIfNotNull, Arg: agg.Arg, Arg2: w})
		}
		return aggState{
			partial:  []string{ps, pn},
			defaults: []aggfn.Default{aggfn.DefaultNull, aggfn.DefaultZero},
			cover:    cover,
		}, nil
	}
	return aggState{}, fmt.Errorf("engine: aggregate kind %v cannot be pushed (not decomposable)", agg.Kind)
}

// reaggregate merges an existing partial at a higher grouping.
func (e *binder) reaggregate(kind aggfn.Kind, st aggState, wOther string, inner *aggfn.Vector, cover bitset.VSet) (aggState, error) {
	sumLike := func(src string, def aggfn.Default) (string, aggfn.Default) {
		p := e.fresh("p")
		if wOther == "" {
			*inner = append(*inner, aggfn.Agg{Out: p, Kind: aggfn.Sum, Arg: src})
		} else {
			*inner = append(*inner, aggfn.Agg{Out: p, Kind: aggfn.SumTimes, Arg: src, Arg2: wOther})
		}
		return p, def
	}
	switch kind {
	case aggfn.Sum, aggfn.Count:
		p, d := sumLike(st.partial[0], st.defaults[0])
		return aggState{partial: []string{p}, defaults: []aggfn.Default{d}, cover: cover}, nil
	case aggfn.Min, aggfn.Max:
		p := e.fresh("p")
		*inner = append(*inner, aggfn.Agg{Out: p, Kind: kind, Arg: st.partial[0]})
		return aggState{partial: []string{p}, defaults: []aggfn.Default{aggfn.DefaultNull}, cover: cover}, nil
	case aggfn.Avg:
		ps, _ := sumLike(st.partial[0], aggfn.DefaultNull)
		pn, _ := sumLike(st.partial[1], aggfn.DefaultZero)
		return aggState{
			partial:  []string{ps, pn},
			defaults: []aggfn.Default{aggfn.DefaultNull, aggfn.DefaultZero},
			cover:    cover,
		}, nil
	}
	return aggState{}, fmt.Errorf("engine: cannot re-aggregate partial of kind %v", kind)
}

// finalGroup evaluates the query's final grouping (or its projection
// replacement — results are identical when G holds a key of a
// duplicate-free input, which is exactly when the optimizer chooses the
// projection). p is the plan node selecting the physical layer; nil (the
// projection path) aggregates on the hash layer.
func (e *executor) finalGroup(child *compiled, groupBy bitset.VSet, p *plan.Plan) (*compiled, error) {
	tab := child.tab
	final := aggfn.Vector{}
	srcs := e.q.AggSourceRels()
	for i, agg := range e.q.Aggregates {
		st := child.aggs[i]
		if st.partial != nil {
			wOther, tab2 := e.product(tab, weightAttrs(child.weights, st.cover))
			tab = tab2
			fa, err := finalOfPartial(agg, st, wOther)
			if err != nil {
				return nil, err
			}
			final = append(final, fa)
			continue
		}
		// Raw aggregate (or count(*)): weight by every collapsed side.
		wAll, tab2 := e.product(tab, weightAttrs(child.weights, srcs[i]))
		tab = tab2
		fa, err := finalOfRaw(agg, wAll)
		if err != nil {
			return nil, err
		}
		final = append(final, fa)
	}
	gNames := e.attrNames(groupBy)
	res, err := e.groupTable(tab, gNames, final, p)
	if err != nil {
		return nil, err
	}
	return &compiled{tab: res, aggs: make([]aggState, len(e.q.Aggregates))}, nil
}

func finalOfPartial(agg aggfn.Agg, st aggState, w string) (aggfn.Agg, error) {
	switch agg.Kind {
	case aggfn.Sum, aggfn.Count, aggfn.CountStar:
		if w == "" {
			return aggfn.Agg{Out: agg.Out, Kind: aggfn.Sum, Arg: st.partial[0]}, nil
		}
		return aggfn.Agg{Out: agg.Out, Kind: aggfn.SumTimes, Arg: st.partial[0], Arg2: w}, nil
	case aggfn.Min, aggfn.Max:
		return aggfn.Agg{Out: agg.Out, Kind: agg.Kind, Arg: st.partial[0]}, nil
	case aggfn.Avg:
		return aggfn.Agg{Out: agg.Out, Kind: aggfn.AvgMerge, Arg: st.partial[0], Arg2: st.partial[1], Weight: w}, nil
	}
	return aggfn.Agg{}, fmt.Errorf("engine: no final form for partial %v", agg.Kind)
}

func finalOfRaw(agg aggfn.Agg, w string) (aggfn.Agg, error) {
	if w == "" {
		return agg, nil
	}
	switch agg.Kind {
	case aggfn.CountStar:
		return aggfn.Agg{Out: agg.Out, Kind: aggfn.Sum, Arg: w}, nil
	case aggfn.Sum:
		return aggfn.Agg{Out: agg.Out, Kind: aggfn.SumTimes, Arg: agg.Arg, Arg2: w}, nil
	case aggfn.Count:
		return aggfn.Agg{Out: agg.Out, Kind: aggfn.SumIfNotNull, Arg: agg.Arg, Arg2: w}, nil
	case aggfn.Avg:
		return aggfn.Agg{Out: agg.Out, Kind: aggfn.AvgWeighted, Arg: agg.Arg, Arg2: w}, nil
	case aggfn.Min, aggfn.Max, aggfn.SumDistinct, aggfn.CountDistinct, aggfn.AvgDistinct:
		return agg, nil // duplicate agnostic
	}
	return aggfn.Agg{}, fmt.Errorf("engine: no weighted final form for %v", agg.Kind)
}
