// The cardinality feedback loop: execute an optimized plan, harvest the
// measured per-operator output cardinalities (the quantities C_out
// estimates), overlay them on the estimator, and re-optimize — iterating
// until the chosen plan is stable or a round bound is hit.
//
// The loop can change which plan is chosen, never what it computes: every
// round's plan is a valid plan for the same query, so the equivalence
// guarantees of the optimizer and the runtime carry over unchanged (the
// fuzz suite enforces it). Convergence is a fixed point by construction:
// once a round re-selects the previous round's plan, every operator of
// that plan was estimated from its own measured cardinality, so the
// plan-level C_out q-error of the final round collapses to 1.
package engine

import (
	"fmt"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/cost"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// DefaultFeedbackRounds bounds the optimize→execute iterations of
// Reoptimize when FeedbackOptions.MaxRounds is unset. Round 1 is the
// model-only baseline; in practice the plan is stable by round 2 or 3,
// so the default allows one extra round for profiles whose canonical
// keys only get covered after a plan change.
const DefaultFeedbackRounds = 4

// FeedbackOptions configures a Reoptimize run.
type FeedbackOptions struct {
	// Opt is the optimizer configuration used in every round; round 1
	// runs it as given (Opt.Stats overlays an externally harvested
	// profile, nil starts from the pure model), later rounds override
	// Opt.Stats with the accumulated measured profile.
	Opt core.Options
	// Exec is the execution configuration used in every round.
	Exec ExecOptions
	// MaxRounds bounds the optimize→execute rounds (0 selects
	// DefaultFeedbackRounds; the minimum of 2 means one baseline and
	// one re-optimization).
	MaxRounds int
}

// FeedbackRound is one optimize→execute→harvest iteration.
type FeedbackRound struct {
	// Plan is the plan the round chose; its Card/Cost estimates reflect
	// the profile the round optimized under.
	Plan *plan.Plan
	// Stats is the round's execution profile.
	Stats *ExecStats
	// PlanChanged reports whether the plan differs structurally from the
	// previous round's (always false for the first round).
	PlanChanged bool
}

// FeedbackResult is the outcome of a Reoptimize run.
type FeedbackResult struct {
	// Rounds holds every executed round in order; the first is the
	// baseline, the last the final (converged or round-bounded) plan.
	Rounds []FeedbackRound
	// Converged reports that the last round re-selected the previous
	// round's plan — the loop's fixed point.
	Converged bool
	// Result is the final round's result table (every round computes the
	// same logical result; re-executions are bit-identical per the
	// engine's determinism contract).
	Result *algebra.Table
	// Profile is the accumulated measured-cardinality overlay, ready to
	// seed another Reoptimize or a plain core.Optimize via Options.Stats.
	Profile *cost.FeedbackOverlay
}

// First returns the baseline round (pure model, or Opt.Stats as given).
func (r *FeedbackResult) First() *FeedbackRound { return &r.Rounds[0] }

// Final returns the last executed round.
func (r *FeedbackResult) Final() *FeedbackRound { return &r.Rounds[len(r.Rounds)-1] }

// PlanChanged reports whether the final plan differs structurally from
// the baseline plan.
func (r *FeedbackResult) PlanChanged() bool {
	return r.First().Plan.Signature() != r.Final().Plan.Signature()
}

// Reoptimize closes the cardinality feedback loop on one query: optimize,
// execute with profiling, feed the measured per-operator cardinalities
// back into the estimator through a FeedbackOverlay, and re-optimize —
// until the chosen plan is stable (Converged) or MaxRounds is exhausted.
// When Opt.Stats carries an externally harvested FeedbackOverlay (e.g. a
// previous run's Profile), its measurements seed the loop's accumulator,
// so nothing already learned is forgotten after round 1. The converged
// round does not re-execute: the stable plan is structurally identical
// to the one just executed, so by the engine's determinism contract its
// Stats are assembled from the overlay — the corrected estimates against
// the very measurements they came from.
func Reoptimize(q *query.Query, data TableData, opts FeedbackOptions) (*FeedbackResult, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultFeedbackRounds
	}
	if maxRounds < 2 {
		maxRounds = 2
	}

	overlay := cost.NewFeedbackOverlay()
	if seed, ok := opts.Opt.Stats.(*cost.FeedbackOverlay); ok && seed != nil {
		overlay.Merge(seed)
	}
	out := &FeedbackResult{Profile: overlay}
	prevSig := ""
	// With a trace attached to the execution options, every round gets a
	// "feedback" span; the optimizer spans (TraceOptimize) and the
	// executor's operator spans nest under it through the trace's open-
	// span stack, so a Reoptimize run opens in Perfetto as rounds of
	// optimize → execute bars.
	tr := opts.Exec.Trace
	for round := 0; round < maxRounds; round++ {
		rid := -1
		if tr != nil {
			rid = tr.Begin(fmt.Sprintf("feedback round %d", round+1), "feedback")
		}
		o := opts.Opt
		if round > 0 {
			o.Stats = overlay
		}
		res, err := TraceOptimize(tr, "optimize", func() (*core.Result, error) { return core.Optimize(q, o) })
		if err != nil {
			if rid >= 0 {
				tr.End(rid)
			}
			return nil, fmt.Errorf("engine: feedback round %d: %w", round+1, err)
		}
		sig := res.Plan.Signature()
		if round > 0 && sig == prevSig {
			prev := out.Rounds[len(out.Rounds)-1].Stats
			out.Rounds = append(out.Rounds, FeedbackRound{
				Plan:  res.Plan,
				Stats: statsFromOverlay(res.Plan, overlay, prev),
			})
			out.Converged = true
			if rid >= 0 {
				tr.Annotate(rid, "converged", "plan stable; stats assembled from the overlay, no re-execution")
				tr.End(rid)
			}
			break
		}
		tab, stats, err := ExecProfiledOpts(q, res.Plan, data, opts.Exec)
		if err != nil {
			if rid >= 0 {
				tr.End(rid)
			}
			return nil, fmt.Errorf("engine: feedback round %d: %w", round+1, err)
		}
		stats.HarvestInto(overlay)
		changed := round > 0 && sig != prevSig
		out.Rounds = append(out.Rounds, FeedbackRound{
			Plan:        res.Plan,
			Stats:       stats,
			PlanChanged: changed,
		})
		out.Result = tab
		prevSig = sig
		if rid >= 0 {
			if changed {
				tr.Annotate(rid, "plan_changed", "feedback changed the chosen plan")
			}
			tr.End(rid)
		}
	}
	return out, nil
}

// statsFromOverlay assembles the ExecStats a re-execution of p would
// measure, from the overlay's harvested cardinalities. Valid only when a
// structurally identical plan was just executed and harvested (the
// converged round): every costed operator of p then has its key in the
// overlay, and determinism guarantees a real execution would reproduce
// exactly these numbers. Operators are walked in the executor's
// compile order (post-order, left before right), so the Ops profile is
// ordered identically to a recorded one.
func statsFromOverlay(p *plan.Plan, overlay *cost.FeedbackOverlay, prev *ExecStats) *ExecStats {
	s := &ExecStats{EstimatedCout: p.Cost, ResultRows: prev.ResultRows, Workers: prev.Workers}
	var walk func(n *plan.Plan)
	walk = func(n *plan.Plan) {
		if n == nil {
			return
		}
		walk(n.Left)
		walk(n.Right)
		if key, ok := cost.KeyOf(n); ok {
			act, found := overlay.Lookup(key)
			if !found {
				act = n.Card // unreachable at a fixed point; degrade to the estimate
			}
			s.ActualCout += act
			s.Ops = append(s.Ops, OpCard{Key: key, Est: n.Card, Act: act})
		}
	}
	walk(p)
	return s
}
