package engine_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/obs"
	"eagg/internal/plan"
	"eagg/internal/randquery"
	"eagg/internal/tpch"
)

// TestTraceDeterminismConcurrent extends the workers-1≡8 contract to
// the trace: the deterministic span fields — structure, names, rows
// in/out, captured by obs.Trace.Fingerprint — must be identical for
// every worker count, morsel size and runtime, because spans are
// recorded at operator barriers by the driver goroutine only. Timing
// and annotations (morsel counts, hash-table deltas) legitimately
// differ and are masked by the fingerprint.
func TestTraceDeterminismConcurrent(t *testing.T) {
	configs := []struct {
		label string
		opts  engine.ExecOptions
	}{
		{"workers=1/row", engine.ExecOptions{Workers: 1}},
		{"workers=8/row", engine.ExecOptions{Workers: 8, MorselSize: 2}},
		{"workers=1/batch", engine.ExecOptions{Workers: 1, Runtime: engine.RuntimeBatch}},
		{"workers=8/batch", engine.ExecOptions{Workers: 8, MorselSize: 2, Runtime: engine.RuntimeBatch}},
	}

	// TPC-H shapes at execution scale plus random fuzz-sized queries.
	type caseT struct {
		label string
		run   func(opts engine.ExecOptions) string
	}
	var cases []caseT
	for _, name := range []string{"Ex", "Q3", "Q5", "Q10"} {
		name := name
		q := tpch.Queries()[name]
		data := tpch.GenerateTables(rand.New(rand.NewSource(7)), q, tpch.ExecutionScaleAt(name, 0.2))
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, caseT{name, func(opts engine.ExecOptions) string {
			tr := obs.NewTrace()
			opts.Trace = tr
			if _, _, err := engine.ExecProfiledOpts(q, res.Plan, data, opts); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return tr.Fingerprint()
		}})
	}
	rng := rand.New(rand.NewSource(414))
	for trial := 0; trial < 6; trial++ {
		trial := trial
		q := randquery.Generate(rng, randquery.Params{Relations: 3 + trial%4})
		data := engine.RandomData(rng, q, 14).Tables()
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgDPhyp})
		if err != nil {
			t.Fatal(err)
		}
		label := fmt.Sprintf("rand-%d", trial)
		cases = append(cases, caseT{label, func(opts engine.ExecOptions) string {
			tr := obs.NewTrace()
			opts.Trace = tr
			if _, _, err := engine.ExecProfiledOpts(q, res.Plan, data, opts); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			return tr.Fingerprint()
		}})
	}

	for _, c := range cases {
		want := ""
		for i, cfg := range configs {
			got := c.run(cfg.opts)
			if got == "" {
				t.Fatalf("%s/%s: empty trace fingerprint", c.label, cfg.label)
			}
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: trace fingerprint differs at %s:\nwant:\n%s\ngot:\n%s",
					c.label, cfg.label, want, got)
			}
		}
	}
}

// TestTraceFeedbackSpans pins the span tree of a Reoptimize run: one
// "feedback" span per round, optimizer spans (with dp-level children on
// multi-relation queries) and operator spans nested under them, and the
// converged round annotated as not re-executed.
func TestTraceFeedbackSpans(t *testing.T) {
	q := tpch.Queries()["Q5"]
	data := tpch.GenerateTables(rand.New(rand.NewSource(7)), q, tpch.ExecutionScaleAt("Q5", 0.2))
	tr := obs.NewTrace()
	res, err := engine.Reoptimize(q, data, engine.FeedbackOptions{
		Opt:  core.Options{Algorithm: core.AlgEAPrune, Stats: nil},
		Exec: engine.ExecOptions{Workers: 1, Trace: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	rounds, optimizes, ops, converged := 0, 0, 0, false
	for _, sp := range tr.Spans() {
		switch sp.Cat {
		case "feedback":
			rounds++
			for _, kv := range sp.Args {
				if kv.Key == "converged" {
					converged = true
				}
			}
		case "optimize":
			optimizes++
		case "op":
			ops++
		}
	}
	if rounds != len(res.Rounds) {
		t.Errorf("feedback spans %d != rounds %d", rounds, len(res.Rounds))
	}
	if optimizes != len(res.Rounds) {
		t.Errorf("optimize spans %d != rounds %d (every round optimizes, converged included)", optimizes, len(res.Rounds))
	}
	if ops == 0 {
		t.Error("no operator spans")
	}
	if res.Converged && !converged {
		t.Error("converged round not annotated")
	}
}

// TestExplainAnalyzeRender joins one traced execution with its plan: one
// annotated line per plan node, scans with measured rows, operators with
// est-vs-actual and q-error.
func TestExplainAnalyzeRender(t *testing.T) {
	q := tpch.Queries()["Q3"]
	data := tpch.GenerateTables(rand.New(rand.NewSource(7)), q, tpch.ExecutionScaleAt("Q3", 0.2))
	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace()
	_, stats, err := engine.ExecProfiledOpts(q, res.Plan, data, engine.ExecOptions{Workers: 1, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	text := engine.ExplainAnalyze(q, res.Plan, tr)
	lines := strings.Count(strings.TrimRight(text, "\n"), "\n") + 1
	nodes := 0
	var countNodes func(p *plan.Plan)
	countNodes = func(p *plan.Plan) {
		if p == nil {
			return
		}
		nodes++
		countNodes(p.Left)
		countNodes(p.Right)
	}
	countNodes(res.Plan)
	if lines != nodes {
		t.Errorf("rendered %d lines for %d plan nodes:\n%s", lines, nodes, text)
	}
	if !strings.Contains(text, "scan ") || !strings.Contains(text, "act=") || !strings.Contains(text, "q=") {
		t.Errorf("missing annotations:\n%s", text)
	}
	// The final result rows appear as the root span's actuals.
	if !strings.Contains(text, fmt.Sprintf("act=%d", stats.ResultRows)) {
		t.Errorf("root actuals %d not rendered:\n%s", stats.ResultRows, text)
	}
}
