package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/plan"
	"eagg/internal/randquery"
	"eagg/internal/tpch"
)

// physModes are the two modes that activate the sort-based layer.
var physModes = []core.PhysMode{core.PhysModeSort, core.PhysModeAuto}

// TestSortPhysTPCHDifferential is the TPC-H arm of the differential
// coverage: for every query and sort mode, the sort-annotated plan must
// execute bit-identically to the same logical plan stripped to the hash
// layer (the sort operators emit the hash-canonical sequence), and
// bag-equal to the canonical evaluation and the frozen nested-loop
// reference executor.
func TestSortPhysTPCHDifferential(t *testing.T) {
	for name, q := range tpch.Queries() {
		tables := tpch.GenerateTables(rand.New(rand.NewSource(3)), q, tpch.ExecutionScale(name))
		data := engine.Data{}
		for id, tab := range tables {
			data[id] = tab.Rel()
		}
		attrs := engine.OutputAttrs(q)
		want, err := engine.CanonicalTables(q, tables)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range physModes {
			for _, alg := range []core.Algorithm{core.AlgEAPrune, core.AlgH1, core.AlgDPhyp} {
				label := fmt.Sprintf("%s/%v/%v", name, mode, alg)
				res, err := core.Optimize(q, core.Options{Algorithm: alg, Phys: mode})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				got, err := engine.ExecTables(q, res.Plan, tables)
				if err != nil {
					t.Fatalf("%s exec: %v\nplan:\n%v", label, err, res.Plan.StringWithQuery(q))
				}
				stripped, err := engine.ExecTables(q, plan.StripPhys(res.Plan), tables)
				if err != nil {
					t.Fatalf("%s stripped exec: %v", label, err)
				}
				identicalTables(t, label+" sort≡hash(same plan)", stripped, got)
				if !algebra.EqualBags(want.Rel(), got.Rel(), attrs) {
					t.Fatalf("%s: result differs from canonical\nplan:\n%v", label, res.Plan.StringWithQuery(q))
				}
				ref, err := engine.ExecRef(q, res.Plan, data)
				if err != nil {
					t.Fatalf("%s ref exec: %v", label, err)
				}
				if !algebra.EqualBags(ref, got.Rel(), attrs) {
					t.Fatalf("%s: slot sort path differs from nested-loop reference", label)
				}
			}
		}
	}
}

// TestSortPhysRandomDifferential fans the same differential over random
// queries and data: annotated ≡ stripped bit for bit, ≡ canonical as
// bags.
func TestSortPhysRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		q := randquery.Generate(rng, randquery.Params{Relations: n})
		data := engine.RandomData(rng, q, 8)
		tables := data.Tables()
		attrs := engine.OutputAttrs(q)
		want, err := engine.CanonicalTables(q, tables)
		if err != nil {
			t.Fatal(err)
		}
		mode := physModes[trial%len(physModes)]
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune, Phys: mode})
		if err != nil {
			t.Fatalf("trial=%d %v: %v", trial, mode, err)
		}
		got, err := engine.ExecTables(q, res.Plan, tables)
		if err != nil {
			t.Fatalf("trial=%d %v exec: %v\nplan:\n%v", trial, mode, err, res.Plan.StringWithQuery(q))
		}
		stripped, err := engine.ExecTables(q, plan.StripPhys(res.Plan), tables)
		if err != nil {
			t.Fatalf("trial=%d stripped: %v", trial, err)
		}
		identicalTables(t, fmt.Sprintf("trial=%d %v", trial, mode), stripped, got)
		if !algebra.EqualBags(want.Rel(), got.Rel(), attrs) {
			t.Fatalf("trial=%d %v: ≢ canonical\nplan:\n%v", trial, mode, res.Plan.StringWithQuery(q))
		}
	}
}

// TestSortParallelBitIdentity pins workers 1 vs 8 bit-identity for the
// parallel sort path: the forced small morsel size pushes the parallel
// machinery (chunked sorts, merge rounds, run-parallel aggregation) onto
// every operator even at test sizes.
func TestSortParallelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		q := randquery.Generate(rng, randquery.Params{Relations: n})
		tables := engine.RandomData(rng, q, 12).Tables()
		mode := physModes[trial%len(physModes)]
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgH1, Phys: mode})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := engine.ExecTablesOpts(q, res.Plan, tables, engine.ExecOptions{Workers: 1})
		if err != nil {
			t.Fatalf("trial=%d sequential: %v", trial, err)
		}
		par, err := engine.ExecTablesOpts(q, res.Plan, tables, engine.ExecOptions{Workers: 8, MorselSize: 3})
		if err != nil {
			t.Fatalf("trial=%d parallel: %v", trial, err)
		}
		identicalTables(t, fmt.Sprintf("trial=%d %v workers 1 vs 8", trial, mode), seq, par)
	}
	// The TPC-H queries at execution scale cross the parallel cutoff
	// with adaptive morsels too.
	for name, q := range tpch.Queries() {
		tables := tpch.GenerateTables(rand.New(rand.NewSource(4)), q, tpch.ExecutionScale(name))
		res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune, Phys: core.PhysModeSort})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := engine.ExecTablesOpts(q, res.Plan, tables, engine.ExecOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		par, err := engine.ExecTablesOpts(q, res.Plan, tables, engine.ExecOptions{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		identicalTables(t, name+" sort workers 1 vs 8", seq, par)
	}
}

// TestAutoEliminatesSortOnTPCH pins the acceptance scenario: under
// -phys auto, at least Q3 ends up with a sort-merge join whose sort is
// eliminated (the orders scan order is reused), the plan reports
// eliminated sorts, and the results stay identical to the hash plan and
// the canonical evaluation.
func TestAutoEliminatesSortOnTPCH(t *testing.T) {
	q := tpch.Queries()["Q3"]
	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune, Phys: core.PhysModeAuto})
	if err != nil {
		t.Fatal(err)
	}
	_, eliminated := res.Plan.SortStats()
	if eliminated == 0 {
		t.Fatalf("Q3 auto plan eliminated no sorts:\n%v", res.Plan.StringWithQuery(q))
	}
	foundMergeElim := false
	var walk func(p *plan.Plan)
	walk = func(p *plan.Plan) {
		if p == nil {
			return
		}
		if p.Kind == plan.NodeOp && p.Phys == plan.PhysSortMerge && (!p.SortL || !p.SortR) {
			foundMergeElim = true
		}
		walk(p.Left)
		walk(p.Right)
	}
	walk(res.Plan)
	if !foundMergeElim {
		t.Fatalf("Q3 auto plan has no sort-merge join with an eliminated sort:\n%v", res.Plan.StringWithQuery(q))
	}

	tables := tpch.GenerateTables(rand.New(rand.NewSource(2)), q, tpch.ExecutionScale("Q3"))
	got, err := engine.ExecTables(q, res.Plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	hashRes, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		t.Fatal(err)
	}
	hashTab, err := engine.ExecTables(q, hashRes.Plan, tables)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.CanonicalTables(q, tables)
	if err != nil {
		t.Fatal(err)
	}
	attrs := engine.OutputAttrs(q)
	if !algebra.EqualBags(hashTab.Rel(), got.Rel(), attrs) || !algebra.EqualBags(want.Rel(), got.Rel(), attrs) {
		t.Fatal("auto plan result differs from hash plan / canonical")
	}
}
