package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/tpch"
)

// TestBatchTPCHShapes runs every TPC-H query shape on the batch runtime —
// eager and lazy plans from several enumerators, hash and sort-annotated
// physical layers — and requires bit-identity with the row runtime plus
// bag-equality with the canonical evaluation.
func TestBatchTPCHShapes(t *testing.T) {
	for name, q := range tpch.Queries() {
		tables := tpch.GenerateTables(rand.New(rand.NewSource(5)), q, tpch.ExecutionScale(name))
		attrs := engine.OutputAttrs(q)
		want, err := engine.CanonicalTables(q, tables)
		if err != nil {
			t.Fatal(err)
		}
		for _, opt := range []core.Options{
			{Algorithm: core.AlgDPhyp},
			{Algorithm: core.AlgH1},
			{Algorithm: core.AlgEAPrune},
			{Algorithm: core.AlgDPhyp, Phys: core.PhysModeAuto},
		} {
			label := fmt.Sprintf("%s/%v/%v", name, opt.Algorithm, opt.Phys)
			res, err := core.Optimize(q, opt)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			row, err := engine.ExecTablesOpts(q, res.Plan, tables, engine.ExecOptions{Workers: 1})
			if err != nil {
				t.Fatalf("%s row exec: %v", label, err)
			}
			for _, bs := range []int{0, 1, 7} {
				batch, err := engine.ExecTablesOpts(q, res.Plan, tables,
					engine.ExecOptions{Workers: 1, Runtime: engine.RuntimeBatch, BatchSize: bs})
				if err != nil {
					t.Fatalf("%s batch exec: %v", label, err)
				}
				identicalTables(t, fmt.Sprintf("%s batch=%d", label, bs), row, batch)
			}
			if !algebra.EqualBags(want.Rel(), row.Rel(), attrs) {
				t.Fatalf("%s: result differs from canonical", label)
			}
		}
	}
}
