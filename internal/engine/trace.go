// Trace integration: span naming and annotation for executor operators,
// the bridge that turns an optimization's core.Stats into optimizer
// spans, and the EXPLAIN ANALYZE renderer that joins a plan tree with
// the spans its execution recorded.
package engine

import (
	"fmt"
	"math"
	"strings"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/obs"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// spanName renders a plan node's deterministic span name: the operator
// with its physical tag, plus the relation or grouping attributes that
// identify it. Names are pure functions of the plan and query, so they
// participate in the trace fingerprint the determinism suite compares.
func spanName(q *query.Query, p *plan.Plan) string {
	switch p.Kind {
	case plan.NodeScan:
		return "scan " + q.Relations[p.Rel].Name
	case plan.NodeOp:
		return p.Op.String() + p.PhysTag() + " " + attrList(q, p.Rels)
	case plan.NodeGroup:
		label := "Γ"
		if p.Final {
			label = "Γ(final)"
		}
		return label + p.PhysTag() + " " + groupAttrList(q, p)
	case plan.NodeProject:
		return "Π"
	}
	return fmt.Sprintf("node(%d)", int(p.Kind))
}

// attrList renders a relation set as {name, name, …}.
func attrList(q *query.Query, rels interface{ ForEach(func(int)) }) string {
	var names []string
	rels.ForEach(func(r int) { names = append(names, q.Relations[r].Name) })
	return "{" + strings.Join(names, ",") + "}"
}

// groupAttrList renders a grouping node's attribute set with names.
func groupAttrList(q *query.Query, p *plan.Plan) string {
	var names []string
	p.GroupBy.ForEach(func(a int) { names = append(names, q.AttrNames[a]) })
	return "{" + strings.Join(names, ",") + "}"
}

// annotateSpan attaches the non-deterministic (worker-count-dependent or
// advisory) operator telemetry to a finished span: the estimate the
// optimizer planned with, the sort decisions of the sort-merge layer,
// and the flat hash-table delta this operator contributed (batch
// runtime). Annotations are excluded from the fingerprint, so they may
// depend on the execution configuration freely.
func annotateSpan(tr *obs.Trace, id int, p *plan.Plan, hs *algebra.HashStats, before algebra.HashTableStats) {
	if p.Kind == plan.NodeOp || p.Kind == plan.NodeGroup {
		tr.Annotatef(id, "est_rows", "%.6g", p.Card)
	}
	if p.Phys == plan.PhysSortMerge {
		performed := 0
		count := func(need bool) {
			if need {
				performed++
			}
		}
		count(p.SortL)
		total := 1
		if p.Kind == plan.NodeOp {
			total = 2
			count(p.SortR)
		}
		tr.Annotatef(id, "sorts", "%d performed, %d eliminated", performed, total-performed)
	}
	if hs == nil {
		return
	}
	// The operator barrier has passed: every morsel task that touched the
	// shared HashStats is done, so the snapshot delta is exactly this
	// operator's traffic.
	after := hs.Snapshot()
	if builds := after.Builds - before.Builds; builds > 0 {
		tr.Annotatef(id, "ht_builds", "%d", builds)
		tr.Annotatef(id, "ht_entries", "%d", after.Entries-before.Entries)
	}
	if checks := after.BloomChecks - before.BloomChecks; checks > 0 {
		tr.Annotatef(id, "bloom_checks", "%d", checks)
		tr.Annotatef(id, "bloom_passes", "%d", after.BloomPasses-before.BloomPasses)
	}
}

// TraceOptimize runs one optimization under a trace span, attaching the
// optimizer's phase telemetry as child spans and annotations: one
// "dp-level" span per sealed DP level (pairs processed, subsets — the
// per-level timings core.Stats already records, re-anchored inside the
// optimize span), the csg-cmp-pair and plans-built totals, and whether
// the pair budget forced the greedy fallback. With a nil trace it is
// exactly fn(). The deterministic span fields (level structure, pair
// counts) are identical for every optimizer worker count — levels seal
// in the same order under the parallel driver.
func TraceOptimize(tr *obs.Trace, name string, fn func() (*core.Result, error)) (*core.Result, error) {
	if tr == nil {
		return fn()
	}
	id := tr.Begin(name, "optimize")
	res, err := fn()
	if err != nil {
		tr.End(id)
		return nil, err
	}
	s := res.Stats
	tr.Annotatef(id, "csg_cmp_pairs", "%d", s.CsgCmpPairs)
	tr.Annotatef(id, "plans_built", "%d", s.PlansBuilt)
	tr.Annotatef(id, "workers", "%d", s.Workers)
	if s.ShardContention > 0 {
		tr.Annotatef(id, "shard_contention", "%d", s.ShardContention)
	}
	if s.PairBudgetExceeded {
		tr.Annotate(id, "pair_budget", "exceeded: plan built by the deterministic greedy fallback")
	}
	// Levels seal strictly one after another, so re-anchoring them
	// back-to-back from the optimize span's start reconstructs the real
	// phase layout (enumeration and setup time shows as the gap before
	// the levels end and the span does).
	start := tr.Spans()[id].StartNS
	for _, l := range s.Levels {
		dur := l.Duration.Nanoseconds()
		lid := tr.Emit(id, fmt.Sprintf("dp-level %d", l.Level), "dp-level", start, dur, -1, int64(l.Pairs))
		tr.Annotatef(lid, "subsets", "%d", l.Subsets)
		start += dur
	}
	tr.End(id)
	return res, nil
}

// ExplainAnalyze renders the plan tree annotated with estimated versus
// actual cardinality, per-operator q-error and inclusive wall time — the
// EXPLAIN ANALYZE view. tr must hold the spans of exactly one execution
// of p (ExecOptions.Trace on a fresh obs.Trace); the executor records
// one "op" span per plan node in compile pre-order, which is the same
// pre-order this renderer walks, so spans and nodes join positionally.
func ExplainAnalyze(q *query.Query, p *plan.Plan, tr *obs.Trace) string {
	var ops []obs.Span
	for _, sp := range tr.Spans() {
		if sp.Cat == "op" {
			ops = append(ops, sp)
		}
	}
	var b strings.Builder
	idx := 0
	var walk func(n *plan.Plan, depth int)
	walk = func(n *plan.Plan, depth int) {
		if n == nil {
			return
		}
		indent := strings.Repeat("  ", depth)
		name := spanName(q, n)
		line := indent + name
		if idx < len(ops) {
			sp := ops[idx]
			idx++
			act := sp.RowsOut
			ms := float64(sp.DurNS) / 1e6
			switch n.Kind {
			case plan.NodeScan:
				fmt.Fprintf(&b, "%s (rows=%d time=%.3fms)\n", line, act, ms)
			default:
				fmt.Fprintf(&b, "%s (est=%.6g act=%d q=%.2f time=%.3fms)\n",
					line, n.Card, act, qerror(n.Card, float64(act)), ms)
			}
		} else {
			// No span left (foreign trace): degrade to the estimate-only view.
			fmt.Fprintf(&b, "%s (est=%.6g)\n", line, n.Card)
		}
		walk(n.Left, depth+1)
		walk(n.Right, depth+1)
	}
	walk(p, 0)
	return b.String()
}

// qerror is the clamped cardinality q-error (see ExecStats.CoutQError).
func qerror(est, act float64) float64 {
	e, a := math.Max(est, 1), math.Max(act, 1)
	if e > a {
		return e / a
	}
	return a / e
}
