package conflict

import (
	"math/rand"
	"testing"

	"eagg/internal/algebra"
	"eagg/internal/query"
)

// The property tables drive which reorderings the plan generator may
// produce, so a wrong "true" entry silently yields wrong plans. These
// tests execute both sides of each algebraic identity on random relations
// (including NULLs) and check agreement with the tables: entries marked
// true must never produce a counterexample, and for key false entries we
// assert the harness actually finds one (proving the test has teeth).

var reorderableOps = []query.OpKind{
	query.KindJoin, query.KindSemiJoin, query.KindAntiJoin,
	query.KindLeftOuter, query.KindFullOuter,
}

func applyOp(kind query.OpKind, l, r *algebra.Rel, p algebra.Pred) *algebra.Rel {
	switch kind {
	case query.KindJoin:
		return algebra.Join(l, r, p)
	case query.KindSemiJoin:
		return algebra.SemiJoin(l, r, p)
	case query.KindAntiJoin:
		return algebra.AntiJoin(l, r, p)
	case query.KindLeftOuter:
		return algebra.LeftOuter(l, r, p, nil)
	case query.KindFullOuter:
		return algebra.FullOuter(l, r, p, nil, nil)
	}
	panic("unsupported op")
}

func randRel3(rng *rand.Rand, attrs []string) *algebra.Rel {
	n := rng.Intn(5)
	r := &algebra.Rel{Attrs: attrs}
	for i := 0; i < n; i++ {
		tu := algebra.Tuple{}
		for _, a := range attrs {
			if rng.Intn(8) == 0 {
				tu[a] = algebra.Null
			} else {
				tu[a] = algebra.Int(int64(rng.Intn(3)))
			}
		}
		r.Tuples = append(r.Tuples, tu)
	}
	return r
}

// outAttrs computes the visible schema of op(l, r).
func outAttrs(kind query.OpKind, l, r []string) []string {
	switch kind {
	case query.KindSemiJoin, query.KindAntiJoin:
		return l
	default:
		return append(append([]string{}, l...), r...)
	}
}

func TestAssocTableEmpirically(t *testing.T) {
	const trials = 200
	for _, a := range reorderableOps {
		// assoc LHS (e1 ◦a e2) needs e2's attributes afterwards for p23:
		// semijoin/antijoin lose them, making the identity inapplicable
		// (table entries are false).
		if a == query.KindSemiJoin || a == query.KindAntiJoin {
			continue
		}
		for _, b := range reorderableOps {
			rng := rand.New(rand.NewSource(int64(100*int(a) + int(b))))
			sawCounterexample := false
			for trial := 0; trial < trials; trial++ {
				e1 := randRel3(rng, []string{"x1"})
				e2 := randRel3(rng, []string{"x2", "y2"})
				e3 := randRel3(rng, []string{"x3"})
				p12 := algebra.EqAttr("x1", "x2")
				p23 := algebra.EqAttr("y2", "x3")
				lhs := applyOp(b, applyOp(a, e1, e2, p12), e3, p23)
				rhs := applyOp(a, e1, applyOp(b, e2, e3, p23), p12)
				attrs := outAttrs(b, outAttrs(a, []string{"x1"}, []string{"x2", "y2"}), []string{"x3"})
				if !algebra.EqualBags(lhs, rhs, attrs) {
					sawCounterexample = true
					if Assoc(a, b) {
						t.Fatalf("assoc(%v,%v) claimed but violated:\ne1:\n%v\ne2:\n%v\ne3:\n%v\nLHS:\n%v\nRHS:\n%v",
							a, b, e1, e2, e3, lhs, rhs)
					}
				}
			}
			_ = sawCounterexample
		}
	}
}

// TestAssocFalseEntriesHaveCounterexamples confirms the harness can refute
// the known-invalid transformations — guarding against a vacuous test.
func TestAssocFalseEntriesHaveCounterexamples(t *testing.T) {
	cases := []struct{ a, b query.OpKind }{
		{query.KindJoin, query.KindFullOuter},
		{query.KindLeftOuter, query.KindJoin},
		{query.KindFullOuter, query.KindJoin},
		{query.KindLeftOuter, query.KindSemiJoin},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(7))
		found := false
		for trial := 0; trial < 500 && !found; trial++ {
			e1 := randRel3(rng, []string{"x1"})
			e2 := randRel3(rng, []string{"x2", "y2"})
			e3 := randRel3(rng, []string{"x3"})
			p12 := algebra.EqAttr("x1", "x2")
			p23 := algebra.EqAttr("y2", "x3")
			lhs := applyOp(c.b, applyOp(c.a, e1, e2, p12), e3, p23)
			rhs := applyOp(c.a, e1, applyOp(c.b, e2, e3, p23), p12)
			attrs := outAttrs(c.b, outAttrs(c.a, []string{"x1"}, []string{"x2", "y2"}), []string{"x3"})
			if !algebra.EqualBags(lhs, rhs, attrs) {
				found = true
			}
		}
		if !found {
			t.Errorf("no counterexample for ¬assoc(%v,%v); either the table is too conservative or the harness is weak", c.a, c.b)
		}
	}
}

func TestLAsscomTableEmpirically(t *testing.T) {
	const trials = 200
	for _, a := range reorderableOps {
		for _, b := range reorderableOps {
			rng := rand.New(rand.NewSource(int64(200*int(a) + int(b))))
			for trial := 0; trial < trials; trial++ {
				// Both predicates reference e1: p12(x1, x2), p13(w1, x3).
				e1 := randRel3(rng, []string{"x1", "w1"})
				e2 := randRel3(rng, []string{"x2"})
				e3 := randRel3(rng, []string{"x3"})
				p12 := algebra.EqAttr("x1", "x2")
				p13 := algebra.EqAttr("w1", "x3")
				lhs := applyOp(b, applyOp(a, e1, e2, p12), e3, p13)
				rhs := applyOp(a, applyOp(b, e1, e3, p13), e2, p12)
				attrs := outAttrs(b, outAttrs(a, []string{"x1", "w1"}, []string{"x2"}), []string{"x3"})
				if !algebra.EqualBags(lhs, rhs, attrs) {
					if LAsscom(a, b) {
						t.Fatalf("l-asscom(%v,%v) claimed but violated:\ne1:\n%v\ne2:\n%v\ne3:\n%v\nLHS:\n%v\nRHS:\n%v",
							a, b, e1, e2, e3, lhs, rhs)
					}
					break
				}
			}
		}
	}
}

func TestLAsscomFalseEntriesHaveCounterexamples(t *testing.T) {
	cases := []struct{ a, b query.OpKind }{
		{query.KindFullOuter, query.KindJoin},
		{query.KindJoin, query.KindFullOuter},
		{query.KindFullOuter, query.KindSemiJoin},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(17))
		found := false
		for trial := 0; trial < 500 && !found; trial++ {
			e1 := randRel3(rng, []string{"x1", "w1"})
			e2 := randRel3(rng, []string{"x2"})
			e3 := randRel3(rng, []string{"x3"})
			p12 := algebra.EqAttr("x1", "x2")
			p13 := algebra.EqAttr("w1", "x3")
			lhs := applyOp(c.b, applyOp(c.a, e1, e2, p12), e3, p13)
			rhs := applyOp(c.a, applyOp(c.b, e1, e3, p13), e2, p12)
			attrs := outAttrs(c.b, outAttrs(c.a, []string{"x1", "w1"}, []string{"x2"}), []string{"x3"})
			if !algebra.EqualBags(lhs, rhs, attrs) {
				found = true
			}
		}
		if !found {
			t.Errorf("no counterexample for ¬l-asscom(%v,%v)", c.a, c.b)
		}
	}
}

func TestRAsscomTableEmpirically(t *testing.T) {
	const trials = 200
	full := []query.OpKind{query.KindJoin, query.KindLeftOuter, query.KindFullOuter}
	for _, a := range full {
		for _, b := range full {
			rng := rand.New(rand.NewSource(int64(300*int(a) + int(b))))
			for trial := 0; trial < trials; trial++ {
				// Both predicates reference e3: p13(x1, x3), p23(x2, w3).
				e1 := randRel3(rng, []string{"x1"})
				e2 := randRel3(rng, []string{"x2"})
				e3 := randRel3(rng, []string{"x3", "w3"})
				p13 := algebra.EqAttr("x1", "x3")
				p23 := algebra.EqAttr("x2", "w3")
				lhs := applyOp(a, e1, applyOp(b, e2, e3, p23), p13)
				rhs := applyOp(b, e2, applyOp(a, e1, e3, p13), p23)
				attrs := []string{"x1", "x2", "x3", "w3"}
				if !algebra.EqualBags(lhs, rhs, attrs) {
					if RAsscom(a, b) {
						t.Fatalf("r-asscom(%v,%v) claimed but violated:\ne1:\n%v\ne2:\n%v\ne3:\n%v\nLHS:\n%v\nRHS:\n%v",
							a, b, e1, e2, e3, lhs, rhs)
					}
					break
				}
			}
		}
	}
}

func TestRAsscomFalseEntriesHaveCounterexamples(t *testing.T) {
	cases := []struct{ a, b query.OpKind }{
		{query.KindJoin, query.KindLeftOuter},
		{query.KindLeftOuter, query.KindJoin},
		{query.KindJoin, query.KindFullOuter},
	}
	for _, c := range cases {
		rng := rand.New(rand.NewSource(23))
		found := false
		for trial := 0; trial < 500 && !found; trial++ {
			e1 := randRel3(rng, []string{"x1"})
			e2 := randRel3(rng, []string{"x2"})
			e3 := randRel3(rng, []string{"x3", "w3"})
			p13 := algebra.EqAttr("x1", "x3")
			p23 := algebra.EqAttr("x2", "w3")
			lhs := applyOp(c.a, e1, applyOp(c.b, e2, e3, p23), p13)
			rhs := applyOp(c.b, e2, applyOp(c.a, e1, e3, p13), p23)
			if !algebra.EqualBags(lhs, rhs, []string{"x1", "x2", "x3", "w3"}) {
				found = true
			}
		}
		if !found {
			t.Errorf("no counterexample for ¬r-asscom(%v,%v)", c.a, c.b)
		}
	}
}

func TestTableSymmetry(t *testing.T) {
	for _, a := range reorderableOps {
		for _, b := range reorderableOps {
			if LAsscom(a, b) != LAsscom(b, a) {
				t.Errorf("l-asscom not symmetric for (%v,%v)", a, b)
			}
			if RAsscom(a, b) != RAsscom(b, a) {
				t.Errorf("r-asscom not symmetric for (%v,%v)", a, b)
			}
		}
	}
}
