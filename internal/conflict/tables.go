// Package conflict implements conflict detection for reordering non-inner
// joins, following the CD-C approach of Moerkotte, Fender and Eich ("On the
// correct and complete enumeration of the core search space", SIGMOD 2013),
// which the paper's plan generator builds on (Sec. 4.1): every operator's
// syntactic eligibility set (SES) is extended to a total eligibility set
// (TES) plus residual conflict rules, the TES pair becomes a hyperedge of
// the query hypergraph, and Applicable(S1, S2, ◦) checks the rules that the
// hypergraph cannot encode.
package conflict

import "eagg/internal/query"

// The property tables below assume null-rejecting (equi-join) predicates,
// which is all this engine produces; entries that hold only under that
// assumption are marked "°" in the comments. The groupjoin is treated
// conservatively: it neither associates nor asscommutes with anything, so
// its operands stay fixed.

// assocTable[a][b] reports assoc(◦a, ◦b):
// (e1 ◦a e2) ◦b e3 ≡ e1 ◦a (e2 ◦b e3).
var assocTable = map[query.OpKind]map[query.OpKind]bool{
	query.KindJoin: {
		query.KindJoin:      true,
		query.KindSemiJoin:  true,
		query.KindAntiJoin:  true,
		query.KindLeftOuter: true,
		query.KindFullOuter: false,
	},
	query.KindSemiJoin:  {}, // semijoin loses e2's attributes: never assoc
	query.KindAntiJoin:  {},
	query.KindLeftOuter: {query.KindLeftOuter: true}, // °
	query.KindFullOuter: {
		query.KindLeftOuter: true, // °
		query.KindFullOuter: true, // °
	},
	query.KindGroupJoin: {},
}

// lAsscomTable[a][b] reports l-asscom(◦a, ◦b):
// (e1 ◦a e2) ◦b e3 ≡ (e1 ◦b e3) ◦a e2. The property is symmetric.
var lAsscomTable = map[query.OpKind]map[query.OpKind]bool{
	query.KindJoin: {
		query.KindJoin:      true,
		query.KindSemiJoin:  true,
		query.KindAntiJoin:  true,
		query.KindLeftOuter: true,
		query.KindFullOuter: false,
	},
	query.KindSemiJoin: {
		query.KindJoin:      true,
		query.KindSemiJoin:  true,
		query.KindAntiJoin:  true,
		query.KindLeftOuter: true,
		query.KindFullOuter: false,
	},
	query.KindAntiJoin: {
		query.KindJoin:      true,
		query.KindSemiJoin:  true,
		query.KindAntiJoin:  true,
		query.KindLeftOuter: true,
		query.KindFullOuter: false,
	},
	query.KindLeftOuter: {
		query.KindJoin:      true,
		query.KindSemiJoin:  true,
		query.KindAntiJoin:  true,
		query.KindLeftOuter: true, // °
		query.KindFullOuter: true, // °
	},
	query.KindFullOuter: {
		query.KindLeftOuter: true, // °
		query.KindFullOuter: true, // °
	},
	query.KindGroupJoin: {},
}

// rAsscomTable[a][b] reports r-asscom(◦a, ◦b):
// e1 ◦a (e2 ◦b e3) ≡ e2 ◦b (e1 ◦a e3). The property is symmetric.
var rAsscomTable = map[query.OpKind]map[query.OpKind]bool{
	query.KindJoin:      {query.KindJoin: true},
	query.KindFullOuter: {query.KindFullOuter: true}, // °
}

// Assoc reports assoc(a, b).
func Assoc(a, b query.OpKind) bool { return assocTable[a][b] }

// LAsscom reports l-asscom(a, b); it is symmetric.
func LAsscom(a, b query.OpKind) bool { return lAsscomTable[a][b] || lAsscomTable[b][a] }

// RAsscom reports r-asscom(a, b); it is symmetric.
func RAsscom(a, b query.OpKind) bool { return rAsscomTable[a][b] || rAsscomTable[b][a] }
