package conflict

import (
	"testing"

	"eagg/internal/bitset"
	"eagg/internal/query"
)

// buildMotivating constructs the shape of the paper's introduction query:
// (nation_s B supplier) K (nation_c B customer).
// Relations: 0=ns, 1=s, 2=nc, 3=c.
func buildMotivating() *query.Query {
	q := query.New()
	ns := q.AddRelation("ns", 25)
	s := q.AddRelation("s", 10000)
	nc := q.AddRelation("nc", 25)
	c := q.AddRelation("c", 150000)
	nsk := q.AddAttr(ns, "ns.nationkey", 25)
	ssk := q.AddAttr(s, "s.nationkey", 25)
	nck := q.AddAttr(nc, "nc.nationkey", 25)
	csk := q.AddAttr(c, "c.nationkey", 25)
	left := &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: ns},
		Right: &query.OpNode{Kind: query.KindScan, Rel: s},
		Pred:  &query.Predicate{Left: []int{nsk}, Right: []int{ssk}, Selectivity: 1.0 / 25},
	}
	right := &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: nc},
		Right: &query.OpNode{Kind: query.KindScan, Rel: c},
		Pred:  &query.Predicate{Left: []int{nck}, Right: []int{csk}, Selectivity: 1.0 / 25},
	}
	q.Root = &query.OpNode{
		Kind: query.KindFullOuter,
		Left: left, Right: right,
		Pred: &query.Predicate{Left: []int{nsk}, Right: []int{nck}, Selectivity: 1.0 / 25},
	}
	return q
}

func TestDetectMotivatingQuery(t *testing.T) {
	q := buildMotivating()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	d := Detect[bitset.Set64](q)
	if len(d.Ops) != 3 {
		t.Fatalf("detected %d operators, want 3", len(d.Ops))
	}
	// The full outerjoin is the root (last in post-order).
	k := d.Ops[2]
	if k.Node.Kind != query.KindFullOuter {
		t.Fatalf("root op is %v", k.Node.Kind)
	}
	// The inner joins must not be reordered across the outerjoin: its TES
	// must grow to cover all four relations.
	wantL, wantR := bitset.New64(0, 1), bitset.New64(2, 3)
	if k.LTES != wantL || k.RTES != wantR {
		t.Errorf("K TES sides = %v / %v, want %v / %v", k.LTES, k.RTES, wantL, wantR)
	}
	// The inner joins themselves carry no conflicts.
	for i := 0; i < 2; i++ {
		if len(d.Ops[i].Rules) != 0 || d.Ops[i].TES != d.Ops[i].SES {
			t.Errorf("inner join %d has unexpected conflicts: TES=%v rules=%v",
				i, d.Ops[i].TES, d.Ops[i].Rules)
		}
	}
	// The hypergraph must have one hyperedge with both non-singleton
	// endpoints (the outerjoin) and two simple edges.
	if !d.Graph.HasHyperedges() {
		t.Error("expected a hyperedge for the full outerjoin")
	}
}

func TestDetectInnerChainIsSimple(t *testing.T) {
	// R0 B R1 B R2: all edges simple, no rules, free reordering.
	q := query.New()
	r0 := q.AddRelation("r0", 10)
	r1 := q.AddRelation("r1", 20)
	r2 := q.AddRelation("r2", 30)
	a0 := q.AddAttr(r0, "a0", 10)
	a1 := q.AddAttr(r1, "a1", 10)
	b1 := q.AddAttr(r1, "b1", 10)
	b2 := q.AddAttr(r2, "b2", 10)
	j01 := &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: r0},
		Right: &query.OpNode{Kind: query.KindScan, Rel: r1},
		Pred:  &query.Predicate{Left: []int{a0}, Right: []int{a1}, Selectivity: 0.1},
	}
	q.Root = &query.OpNode{
		Kind:  query.KindJoin,
		Left:  j01,
		Right: &query.OpNode{Kind: query.KindScan, Rel: r2},
		Pred:  &query.Predicate{Left: []int{b1}, Right: []int{b2}, Selectivity: 0.1},
	}
	d := Detect[bitset.Set64](q)
	if d.Graph.HasHyperedges() {
		t.Error("inner-join chain should yield only simple edges")
	}
	for _, op := range d.Ops {
		if len(op.Rules) != 0 {
			t.Errorf("inner join carries rules: %v", op.Rules)
		}
	}
	// DPhyp on the chain must find (n³-n)/6 = 4 pairs for n=3... the
	// chain here is r0-r1-r2: 4 ccps.
	if got := len(d.Graph.CsgCmpPairs()); got != 4 {
		t.Errorf("chain ccps = %d, want 4", got)
	}
}

func TestApplicableOrientation(t *testing.T) {
	// R0 E R1: the left outerjoin is not commutative; Applicable must
	// enforce LTES ⊆ S1.
	q := query.New()
	r0 := q.AddRelation("r0", 10)
	r1 := q.AddRelation("r1", 20)
	a0 := q.AddAttr(r0, "a0", 10)
	a1 := q.AddAttr(r1, "a1", 10)
	q.Root = &query.OpNode{
		Kind:  query.KindLeftOuter,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: r0},
		Right: &query.OpNode{Kind: query.KindScan, Rel: r1},
		Pred:  &query.Predicate{Left: []int{a0}, Right: []int{a1}, Selectivity: 0.1},
	}
	d := Detect[bitset.Set64](q)
	op := d.Ops[0]
	if !op.Applicable(bitset.New64(0), bitset.New64(1)) {
		t.Error("E must be applicable in original orientation")
	}
	if op.Applicable(bitset.New64(1), bitset.New64(0)) {
		t.Error("E must not be applicable with swapped arguments")
	}
}

func TestRuleViolationBlocksApplication(t *testing.T) {
	// (R0 E01 R1) B12 R2 with the join predicate on R1, R2:
	// assoc(E,B) = false, so the join may not be applied to {1} × {2}
	// without R0; l-asscom(E,B) = true so ({0},{...}) splits are fine.
	q := query.New()
	r0 := q.AddRelation("r0", 10)
	r1 := q.AddRelation("r1", 20)
	r2 := q.AddRelation("r2", 30)
	a0 := q.AddAttr(r0, "a0", 10)
	a1 := q.AddAttr(r1, "a1", 10)
	b1 := q.AddAttr(r1, "b1", 10)
	b2 := q.AddAttr(r2, "b2", 10)
	outer := &query.OpNode{
		Kind:  query.KindLeftOuter,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: r0},
		Right: &query.OpNode{Kind: query.KindScan, Rel: r1},
		Pred:  &query.Predicate{Left: []int{a0}, Right: []int{a1}, Selectivity: 0.1},
	}
	q.Root = &query.OpNode{
		Kind:  query.KindJoin,
		Left:  outer,
		Right: &query.OpNode{Kind: query.KindScan, Rel: r2},
		Pred:  &query.Predicate{Left: []int{b1}, Right: []int{b2}, Selectivity: 0.1},
	}
	d := Detect[bitset.Set64](q)
	join := d.Ops[1]
	if join.Node.Kind != query.KindJoin {
		t.Fatalf("op order unexpected: %v", join.Node.Kind)
	}
	// Applying the join to S1={1}, S2={2} would compute R1 B R2 before
	// the outerjoin — invalid (assoc(E,B) is false).
	if join.Applicable(bitset.New64(1), bitset.New64(2)) {
		t.Error("join over {1}×{2} must be blocked (would push B below E)")
	}
	// With R0 included the join is fine.
	if !join.Applicable(bitset.New64(0, 1), bitset.New64(2)) {
		t.Error("join over {0,1}×{2} must be applicable")
	}
}
