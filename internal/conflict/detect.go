package conflict

import (
	"eagg/internal/bitset"
	"eagg/internal/hypergraph"
	"eagg/internal/query"
)

// Rule is a conflict rule T1 → T2: whenever an operator is applied to
// arguments whose union intersects T1, the union must contain all of T2.
type Rule[S bitset.RelSet[S]] struct {
	If, Then S
}

// Op is one reorderable operator of the initial tree with its conflict
// information.
type Op[S bitset.RelSet[S]] struct {
	Node *query.OpNode
	// LeftRels and RightRels are the relation sets of the operator's
	// original subtrees.
	LeftRels, RightRels S
	// SES is the syntactic eligibility set (relations of the predicate).
	SES S
	// TES extends SES with the conflicts expressible as hyperedge
	// endpoints; LTES/RTES are its per-side components.
	TES, LTES, RTES S
	Rules           []Rule[S]
}

// Applicable implements the paper's applicability test (Sec. 4.1, third
// component): the operator may combine plans for (S1, S2) iff its TES
// sides are covered in the correct orientation and no conflict rule is
// violated. Commutative operators are additionally tried by the caller
// with swapped arguments.
func (o *Op[S]) Applicable(s1, s2 S) bool {
	if !o.LTES.SubsetOf(s1) || !o.RTES.SubsetOf(s2) {
		return false
	}
	u := s1.Union(s2)
	for _, r := range o.Rules {
		if r.If.Intersects(u) && !r.Then.SubsetOf(u) {
			return false
		}
	}
	return true
}

// Detection is the result of conflict detection: the query hypergraph with
// one hyperedge per operator (payload = index into Ops), plus the operator
// table.
type Detection[S bitset.RelSet[S]] struct {
	Graph *hypergraph.Graph[S]
	Ops   []*Op[S]
}

// Detect runs CD-C-style conflict detection over the query's initial
// operator tree and builds the query hypergraph, in the relation-set
// representation S the plan generator runs on.
func Detect[S bitset.RelSet[S]](q *query.Query) *Detection[S] {
	d := &Detection[S]{Graph: hypergraph.New[S](len(q.Relations))}
	var walk func(n *query.OpNode)
	walk = func(n *query.OpNode) {
		if n == nil || n.Kind == query.KindScan {
			return
		}
		walk(n.Left)
		walk(n.Right)
		op := buildOp[S](q, n)
		d.Ops = append(d.Ops, op)
	}
	walk(q.Root)
	for i, op := range d.Ops {
		d.Graph.AddEdge(op.LTES, op.RTES, i)
	}
	return d
}

// buildOp computes SES, conflict rules, and the TES of one operator.
func buildOp[S bitset.RelSet[S]](q *query.Query, b *query.OpNode) *Op[S] {
	op := &Op[S]{
		Node:      b,
		LeftRels:  bitset.FromVIn[S](b.Left.Rels()),
		RightRels: bitset.FromVIn[S](b.Right.Rels()),
	}
	op.SES = bitset.FromVIn[S](q.RelsOf(b.Pred.Attrs()))
	op.TES = op.SES

	// Collect conflict rules from the operators of both subtrees
	// (CD-C: one rule per non-applicable transformation).
	var collect func(n *query.OpNode, leftSide bool)
	collect = func(a *query.OpNode, leftSide bool) {
		if a == nil || a.Kind == query.KindScan {
			return
		}
		aLeft := bitset.FromVIn[S](a.Left.Rels())
		aRight := bitset.FromVIn[S](a.Right.Rels())
		if leftSide {
			// a under the left input: (e1 ◦a e2) ◦b e3.
			if !Assoc(a.Kind, b.Kind) {
				// ◦b may not move below ◦a's right side: touching e2
				// requires all of e1.
				op.Rules = append(op.Rules, Rule[S]{If: aRight, Then: aLeft})
			}
			if !LAsscom(a.Kind, b.Kind) {
				// ◦b may not separate e1 from e2.
				op.Rules = append(op.Rules, Rule[S]{If: aLeft, Then: aRight})
			}
		} else {
			// a under the right input: e1 ◦b (e2 ◦a e3).
			if !Assoc(b.Kind, a.Kind) {
				op.Rules = append(op.Rules, Rule[S]{If: aLeft, Then: aRight})
			}
			if !RAsscom(a.Kind, b.Kind) {
				op.Rules = append(op.Rules, Rule[S]{If: aRight, Then: aLeft})
			}
		}
		collect(a.Left, leftSide)
		collect(a.Right, leftSide)
	}
	collect(b.Left, true)
	collect(b.Right, false)

	// Rule simplification: a rule whose If-side intersects the TES always
	// fires, so its Then-side can be absorbed into the TES and the rule
	// dropped. Iterate to a fixpoint.
	for changed := true; changed; {
		changed = false
		kept := op.Rules[:0]
		for _, r := range op.Rules {
			if r.If.Intersects(op.TES) {
				if !r.Then.SubsetOf(op.TES) {
					op.TES = op.TES.Union(r.Then)
					changed = true
				}
				continue
			}
			kept = append(kept, r)
		}
		op.Rules = kept
	}

	op.LTES = op.TES.Intersect(op.LeftRels)
	op.RTES = op.TES.Intersect(op.RightRels)
	// The SES always has relations on both sides (equi predicates), so
	// the TES sides are non-empty.
	return op
}

// OpForEdge returns the operator owning the hyperedge with the given
// payload.
func (d *Detection[S]) OpForEdge(payload int) *Op[S] { return d.Ops[payload] }
