// Package hypergraph implements query hypergraphs and the csg-cmp-pair
// enumeration underlying DPhyp (Moerkotte & Neumann, "Dynamic Programming
// Strikes Back", SIGMOD 2008), which the paper's plan generators build on
// (Sec. 4.1).
//
// Nodes are relations 0…n-1; a hyperedge (U, V) connects every relation set
// containing U with every set containing V. Simple edges are hyperedges
// with singleton endpoints. Hyperedges arise from the conflict detector's
// TES sets, which encode reordering restrictions of non-inner joins.
package hypergraph

import (
	"fmt"
	"sort"

	"eagg/internal/bitset"
)

// Edge is a hyperedge (Left, Right) with disjoint, non-empty endpoints.
// Payload carries an opaque operator reference for the plan generator.
type Edge struct {
	Left, Right bitset.Set64
	Payload     int
}

// Graph is a query hypergraph over nodes {0,…,N-1}.
type Graph struct {
	N     int
	Edges []Edge
}

// New returns an empty hypergraph over n nodes.
func New(n int) *Graph {
	if n < 1 || n > 63 {
		panic(fmt.Sprintf("hypergraph: unsupported node count %d", n))
	}
	return &Graph{N: n}
}

// AddEdge adds a hyperedge. It panics on overlapping or empty endpoints —
// such edges are always construction bugs.
func (g *Graph) AddEdge(left, right bitset.Set64, payload int) {
	if left.IsEmpty() || right.IsEmpty() || left.Intersects(right) {
		panic("hypergraph: invalid hyperedge endpoints")
	}
	g.Edges = append(g.Edges, Edge{Left: left, Right: right, Payload: payload})
}

// AddSimpleEdge adds the edge ({u},{v}).
func (g *Graph) AddSimpleEdge(u, v, payload int) {
	g.AddEdge(bitset.Single64(u), bitset.Single64(v), payload)
}

// All returns the full node set.
func (g *Graph) All() bitset.Set64 {
	return bitset.Range64(0, g.N)
}

// ConnectsSets reports whether some edge connects S1 and S2, i.e. condition
// 3 of Def. 3: ∃(u,v) ∈ E with u ⊆ S1 ∧ v ⊆ S2 (or the mirror image).
// It returns the index of a witnessing edge, or -1.
func (g *Graph) ConnectsSets(s1, s2 bitset.Set64) int {
	for i, e := range g.Edges {
		if (e.Left.SubsetOf(s1) && e.Right.SubsetOf(s2)) ||
			(e.Left.SubsetOf(s2) && e.Right.SubsetOf(s1)) {
			return i
		}
	}
	return -1
}

// ConnectingEdges returns the indices of all edges connecting S1 and S2.
func (g *Graph) ConnectingEdges(s1, s2 bitset.Set64) []int {
	var out []int
	for i, e := range g.Edges {
		if (e.Left.SubsetOf(s1) && e.Right.SubsetOf(s2)) ||
			(e.Left.SubsetOf(s2) && e.Right.SubsetOf(s1)) {
			out = append(out, i)
		}
	}
	return out
}

// IsConnected reports whether S induces a connected subgraph under the
// reachability notion: starting from min(S), grow by edges whose one
// endpoint is inside the grown set and whose other endpoint lies fully
// inside S. For simple graphs this coincides with the DP notion of
// connectedness (Def. 3 / the recursive definition of the DPhyp paper).
// For hypergraphs it is an approximation used only inside the DPhyp fast
// path; the definitional notion is Buildable/BuildableSets below.
func (g *Graph) IsConnected(s bitset.Set64) bool {
	if s.IsEmpty() {
		return false
	}
	if s.IsSingleton() {
		return true
	}
	reach := s.MinSet()
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges {
			if e.Left.SubsetOf(reach) && e.Right.SubsetOf(s) && !e.Right.SubsetOf(reach) {
				reach = reach.Union(e.Right)
				changed = true
			}
			if e.Right.SubsetOf(reach) && e.Left.SubsetOf(s) && !e.Left.SubsetOf(reach) {
				reach = reach.Union(e.Left)
				changed = true
			}
		}
	}
	return reach == s
}

// neighborHyper describes one reachable hypernode: Rep is its minimum
// element (the DPhyp representative), Full the complete endpoint that must
// be absorbed together.
type neighborHyper struct {
	Rep  int
	Full bitset.Set64
}

// neighborhood computes 𝒩(S, X): for every edge with one endpoint inside
// S, the not-yet-absorbed remainder of the other endpoint is reachable if
// it avoids the exclusion set X. Taking the remainder v \ S (rather than
// requiring v ∩ S = ∅) handles hyperedges whose endpoint partially overlaps
// the grown set; every grown candidate is re-validated with IsConnected, so
// this only adds reachable steps. When two edges offer hypernodes with the
// same representative, the smaller one wins — larger supersets remain
// reachable through subsequent recursion steps.
func (g *Graph) neighborhood(s, x bitset.Set64) []neighborHyper {
	byRep := map[int]bitset.Set64{}
	add := func(v bitset.Set64) {
		rem := v.Diff(s)
		if rem.IsEmpty() || rem.Intersects(x) {
			return
		}
		rep := rem.Min()
		if old, ok := byRep[rep]; !ok || rem.Len() < old.Len() {
			byRep[rep] = rem
		}
	}
	for _, e := range g.Edges {
		if e.Left.SubsetOf(s) {
			add(e.Right)
		}
		if e.Right.SubsetOf(s) {
			add(e.Left)
		}
	}
	out := make([]neighborHyper, 0, len(byRep))
	for rep, full := range byRep {
		out = append(out, neighborHyper{Rep: rep, Full: full})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rep < out[j].Rep })
	return out
}

// CsgCmpPair is one enumerated pair per Def. 3.
type CsgCmpPair struct {
	S1, S2 bitset.Set64
}

// HasHyperedges reports whether any edge has a non-singleton endpoint.
func (g *Graph) HasHyperedges() bool {
	for _, e := range g.Edges {
		if !e.Left.IsSingleton() || !e.Right.IsSingleton() {
			return true
		}
	}
	return false
}

// CsgCmpPairs enumerates every csg-cmp-pair of the hypergraph exactly once
// (unordered: each pair appears with min(S1) < min(S2)) and returns them
// ordered by |S1 ∪ S2| ascending, so a dynamic programming driver can
// consume them directly: all sub-pairs of a set precede the pairs forming
// that set.
//
// Two strategies are used. Simple graphs (no hyperedges) run the DPhyp
// enumeration (EnumerateCsg/EmitCsg/EnumerateCsgRec/EnumerateCmp). For
// hypergraphs the representative/exclusion-set mechanism of textbook DPhyp
// is incomplete when two hypernodes share a minimum element (the exclusion
// set then blocks the smaller hypernode after the larger was offered), so
// we switch to a provably complete closure-based enumeration: connected
// sets are exactly the closure of singletons under "absorb the remainder
// of an edge endpoint whose other endpoint is contained", and complements
// are enumerated the same way within the exterior of each S1.
func (g *Graph) CsgCmpPairs() []CsgCmpPair {
	var pairs []CsgCmpPair
	if g.HasHyperedges() {
		pairs = g.completePairs()
	} else {
		pairs = g.dphypPairs()
	}
	sort.SliceStable(pairs, func(i, j int) bool {
		si := pairs[i].S1.Union(pairs[i].S2).Len()
		sj := pairs[j].S1.Union(pairs[j].S2).Len()
		return si < sj
	})
	return pairs
}

// dphypPairs runs the DPhyp enumeration. Exact on simple graphs; on
// hypergraphs the representative/exclusion-set mechanism can both miss
// pairs and emit pairs with non-buildable components, so CsgCmpPairs never
// uses it there.
func (g *Graph) dphypPairs() []CsgCmpPair {
	var pairs []CsgCmpPair
	seen := map[[2]uint64]bool{}
	emit := func(s1, s2 bitset.Set64) {
		key := [2]uint64{uint64(s1), uint64(s2)}
		if !seen[key] {
			seen[key] = true
			pairs = append(pairs, CsgCmpPair{S1: s1, S2: s2})
		}
	}
	// EnumerateCsg: seed with every node, descending, then grow.
	for i := g.N - 1; i >= 0; i-- {
		s1 := bitset.Single64(i)
		below := bitset.Range64(0, i+1)
		g.emitCsg(s1, emit)
		g.enumerateCsgRec(s1, below, emit)
	}
	return pairs
}

// BuildableSets computes the family of connected sets under the recursive
// DP definition: singletons are connected, and S1 ∪ S2 is connected when
// S1 and S2 are disjoint connected sets linked by an edge. This is exactly
// the family of relation sets a cross-product-free bottom-up plan
// generator can build. The pairs recorded along the way are exactly the
// csg-cmp-pairs.
//
// The worklist combines every newly discovered set against the family
// discovered so far, which makes the enumeration definitionally complete:
// for any valid pair (A, B), whichever of the two is processed later sees
// the other already in the family.
func (g *Graph) BuildableSets() (family []bitset.Set64, pairs []CsgCmpPair) {
	inFamily := map[uint64]bool{}
	seenPair := map[[2]uint64]bool{}
	var queue []bitset.Set64
	add := func(s bitset.Set64) {
		if !inFamily[uint64(s)] {
			inFamily[uint64(s)] = true
			family = append(family, s)
			queue = append(queue, s)
		}
	}
	for i := 0; i < g.N; i++ {
		add(bitset.Single64(i))
	}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		// Snapshot length: sets added during this pass are processed on
		// their own turn.
		snapshot := len(family)
		for i := 0; i < snapshot; i++ {
			t := family[i]
			if s.Intersects(t) || g.ConnectsSets(s, t) < 0 {
				continue
			}
			a, b := s, t
			if a.Min() > b.Min() {
				a, b = b, a
			}
			key := [2]uint64{uint64(a), uint64(b)}
			if !seenPair[key] {
				seenPair[key] = true
				pairs = append(pairs, CsgCmpPair{S1: a, S2: b})
			}
			add(s.Union(t))
		}
	}
	return family, pairs
}

// completePairs enumerates all csg-cmp-pairs via the recursive-definition
// fixpoint. Used for hypergraphs, where the DPhyp representative trick can
// miss pairs when distinct hypernodes share a minimum element.
func (g *Graph) completePairs() []CsgCmpPair {
	_, pairs := g.BuildableSets()
	return pairs
}

// enumerateCsgRec grows the connected set s1 by subsets of its
// neighborhood, emitting complements for every grown set.
func (g *Graph) enumerateCsgRec(s1, x bitset.Set64, emit func(a, b bitset.Set64)) {
	neighbors := g.neighborhood(s1, x)
	if len(neighbors) == 0 {
		return
	}
	reps := bitset.Empty64
	for _, n := range neighbors {
		reps = reps.Add(n.Rep)
	}
	expand := func(sub bitset.Set64) bitset.Set64 {
		full := bitset.Empty64
		for _, n := range neighbors {
			if sub.Contains(n.Rep) {
				full = full.Union(n.Full)
			}
		}
		return full
	}
	reps.SubsetsAsc(func(sub bitset.Set64) bool {
		grown := s1.Union(expand(sub))
		if g.IsConnected(grown) {
			g.emitCsg(grown, emit)
		}
		return true
	})
	newX := x.Union(reps)
	reps.SubsetsAsc(func(sub bitset.Set64) bool {
		grown := s1.Union(expand(sub))
		if g.IsConnected(grown) {
			g.enumerateCsgRec(grown, newX, emit)
		}
		return true
	})
}

// emitCsg enumerates the complements of the connected set s1.
func (g *Graph) emitCsg(s1 bitset.Set64, emit func(a, b bitset.Set64)) {
	x := s1.Union(bitset.Range64(0, s1.Min()+1))
	neighbors := g.neighborhood(s1, x)
	for i := len(neighbors) - 1; i >= 0; i-- {
		n := neighbors[i]
		s2 := n.Full
		if g.IsConnected(s2) && g.ConnectsSets(s1, s2) >= 0 {
			emit(s1, s2)
		}
		// Exclude smaller representatives so each complement is grown
		// from exactly one seed.
		var lower bitset.Set64
		for _, m := range neighbors {
			if m.Rep <= n.Rep {
				lower = lower.Add(m.Rep)
			}
		}
		g.enumerateCmpRec(s1, s2, x.Union(lower), emit)
	}
}

// enumerateCmpRec grows the complement s2 within the exclusion set x.
func (g *Graph) enumerateCmpRec(s1, s2, x bitset.Set64, emit func(a, b bitset.Set64)) {
	neighbors := g.neighborhood(s2, x)
	if len(neighbors) == 0 {
		return
	}
	reps := bitset.Empty64
	for _, n := range neighbors {
		reps = reps.Add(n.Rep)
	}
	expand := func(sub bitset.Set64) bitset.Set64 {
		full := bitset.Empty64
		for _, n := range neighbors {
			if sub.Contains(n.Rep) {
				full = full.Union(n.Full)
			}
		}
		return full
	}
	reps.SubsetsAsc(func(sub bitset.Set64) bool {
		grown := s2.Union(expand(sub))
		if !grown.Intersects(s1) && g.IsConnected(grown) && g.ConnectsSets(s1, grown) >= 0 {
			emit(s1, grown)
		}
		return true
	})
	newX := x.Union(reps)
	reps.SubsetsAsc(func(sub bitset.Set64) bool {
		grown := s2.Union(expand(sub))
		if !grown.Intersects(s1) && g.IsConnected(grown) {
			g.enumerateCmpRec(s1, grown, newX, emit)
		}
		return true
	})
}

// Buildable reports whether S is connected under the recursive DP
// definition, computed top-down with memoization. Exponential in |S| —
// intended for tests and small diagnostics; the production path uses
// BuildableSets.
func (g *Graph) Buildable(s bitset.Set64) bool {
	return g.buildableMemo(s, map[uint64]bool{})
}

func (g *Graph) buildableMemo(s bitset.Set64, memo map[uint64]bool) bool {
	if s.IsSingleton() {
		return true
	}
	if s.IsEmpty() {
		return false
	}
	if v, ok := memo[uint64(s)]; ok {
		return v
	}
	memo[uint64(s)] = false // guard against re-entry
	result := false
	rest := s.Remove(s.Min())
	rest.SubsetsAsc(func(sub bitset.Set64) bool {
		s2 := sub
		s1 := s.Diff(s2)
		if s1.IsEmpty() {
			return true
		}
		if g.ConnectsSets(s1, s2) >= 0 && g.buildableMemo(s1, memo) && g.buildableMemo(s2, memo) {
			result = true
			return false
		}
		return true
	})
	memo[uint64(s)] = result
	return result
}

// CountCsgCmpPairsBrute counts csg-cmp-pairs by brute force over all
// subsets using the recursive connectedness definition; used to validate
// the enumerators in tests. Exponential — callers keep N small.
func (g *Graph) CountCsgCmpPairsBrute() int {
	count := 0
	memo := map[uint64]bool{}
	all := g.All()
	all.SubsetsAsc(func(s bitset.Set64) bool {
		if s.IsSingleton() {
			return true
		}
		s.SubsetsAsc(func(s1 bitset.Set64) bool {
			s2 := s.Diff(s1)
			if s2.IsEmpty() || s1.Min() > s2.Min() {
				return true
			}
			if g.ConnectsSets(s1, s2) >= 0 && g.buildableMemo(s1, memo) && g.buildableMemo(s2, memo) {
				count++
			}
			return true
		})
		return true
	})
	return count
}
