// Package hypergraph implements query hypergraphs and the csg-cmp-pair
// enumeration underlying DPhyp (Moerkotte & Neumann, "Dynamic Programming
// Strikes Back", SIGMOD 2008), which the paper's plan generators build on
// (Sec. 4.1).
//
// Nodes are relations 0…n-1; a hyperedge (U, V) connects every relation set
// containing U with every set containing V. Simple edges are hyperedges
// with singleton endpoints. Hyperedges arise from the conflict detector's
// TES sets, which encode reordering restrictions of non-inner joins.
//
// The package is generic in the relation-set representation S
// (bitset.RelSet): bitset.Set64 is the zero-overhead fast path for ≤63
// relations, bitset.Wide the multi-word path beyond. All enumeration
// order is defined by S's ascending-subset order, which both
// representations share, so the emitted pair sequence is independent of
// the representation.
package hypergraph

import (
	"fmt"

	"eagg/internal/bitset"
)

// Edge is a hyperedge (Left, Right) with disjoint, non-empty endpoints.
// Payload carries an opaque operator reference for the plan generator.
type Edge[S bitset.RelSet[S]] struct {
	Left, Right S
	Payload     int
}

// Graph is a query hypergraph over nodes {0,…,N-1}.
type Graph[S bitset.RelSet[S]] struct {
	N     int
	Edges []Edge[S]

	// adj[i] is the neighbor mask of node i when every edge is simple;
	// nil on hypergraphs and until ensureAdj runs. It turns the
	// per-edge subset tests of IsConnected/neighborhood — four generic
	// method calls per edge per round — into a handful of word-wide
	// set operations per node. Built single-threaded at the start of
	// the DPhyp enumeration, invalidated by AddEdge.
	adj []S
}

// ensureAdj builds the simple-graph adjacency masks. Callers guarantee
// the graph has no hyperedges and no concurrent mutation.
func (g *Graph[S]) ensureAdj() {
	if g.adj != nil {
		return
	}
	adj := make([]S, g.N)
	for i := range g.Edges {
		u, v := g.Edges[i].Left.Min(), g.Edges[i].Right.Min()
		adj[u] = adj[u].Add(v)
		adj[v] = adj[v].Add(u)
	}
	g.adj = adj
}

// New returns an empty hypergraph over n nodes.
func New[S bitset.RelSet[S]](n int) *Graph[S] {
	var z S
	if n < 1 || n > z.Cap()-1 {
		panic(fmt.Sprintf("hypergraph: unsupported node count %d", n))
	}
	return &Graph[S]{N: n}
}

// AddEdge adds a hyperedge. It panics on overlapping or empty endpoints —
// such edges are always construction bugs.
func (g *Graph[S]) AddEdge(left, right S, payload int) {
	if left.IsEmpty() || right.IsEmpty() || left.Intersects(right) {
		panic("hypergraph: invalid hyperedge endpoints")
	}
	g.Edges = append(g.Edges, Edge[S]{Left: left, Right: right, Payload: payload})
	g.adj = nil
}

// AddSimpleEdge adds the edge ({u},{v}).
func (g *Graph[S]) AddSimpleEdge(u, v, payload int) {
	g.AddEdge(bitset.SingleIn[S](u), bitset.SingleIn[S](v), payload)
}

// All returns the full node set.
func (g *Graph[S]) All() S {
	return bitset.RangeIn[S](0, g.N)
}

// ConnectsSets reports whether some edge connects S1 and S2, i.e. condition
// 3 of Def. 3: ∃(u,v) ∈ E with u ⊆ S1 ∧ v ⊆ S2 (or the mirror image).
// It returns the index of a witnessing edge, or -1.
func (g *Graph[S]) ConnectsSets(s1, s2 S) int {
	for i, e := range g.Edges {
		if (e.Left.SubsetOf(s1) && e.Right.SubsetOf(s2)) ||
			(e.Left.SubsetOf(s2) && e.Right.SubsetOf(s1)) {
			return i
		}
	}
	return -1
}

// ConnectingEdges returns the indices of all edges connecting S1 and S2.
func (g *Graph[S]) ConnectingEdges(s1, s2 S) []int {
	var out []int
	for i, e := range g.Edges {
		if (e.Left.SubsetOf(s1) && e.Right.SubsetOf(s2)) ||
			(e.Left.SubsetOf(s2) && e.Right.SubsetOf(s1)) {
			out = append(out, i)
		}
	}
	return out
}

// IsConnected reports whether S induces a connected subgraph under the
// reachability notion: starting from min(S), grow by edges whose one
// endpoint is inside the grown set and whose other endpoint lies fully
// inside S. For simple graphs this coincides with the DP notion of
// connectedness (Def. 3 / the recursive definition of the DPhyp paper).
// For hypergraphs it is an approximation used only inside the DPhyp fast
// path; the definitional notion is Buildable/BuildableSets below.
func (g *Graph[S]) IsConnected(s S) bool {
	if s.IsEmpty() {
		return false
	}
	if s.IsSingleton() {
		return true
	}
	if g.adj != nil {
		// Simple-graph BFS over the precomputed neighbor masks: one
		// Union per frontier node instead of four subset tests per edge
		// per growth round.
		reach := s.MinSet()
		frontier := reach
		for {
			var nb S
			for rem := frontier; !rem.IsEmpty(); {
				i := rem.Min()
				rem = rem.Remove(i)
				nb = nb.Union(g.adj[i])
			}
			frontier = nb.Intersect(s).Diff(reach)
			if frontier.IsEmpty() {
				return reach == s
			}
			reach = reach.Union(frontier)
		}
	}
	reach := s.MinSet()
	for changed := true; changed; {
		changed = false
		for _, e := range g.Edges {
			if e.Left.SubsetOf(reach) && e.Right.SubsetOf(s) && !e.Right.SubsetOf(reach) {
				reach = reach.Union(e.Right)
				changed = true
			}
			if e.Right.SubsetOf(reach) && e.Left.SubsetOf(s) && !e.Left.SubsetOf(reach) {
				reach = reach.Union(e.Left)
				changed = true
			}
		}
	}
	return reach == s
}

// neighborHyper describes one reachable hypernode: Rep is its minimum
// element (the DPhyp representative), Full the complete endpoint that must
// be absorbed together.
type neighborHyper[S bitset.RelSet[S]] struct {
	Rep  int
	Full S
}

// neighborMask computes 𝒩(S, X) on the simple-graph fast path (g.adj
// non-nil): every reachable hypernode is a singleton, so the whole
// neighborhood is one mask union over the members of S. The enumeration
// recursion consumes the mask directly — reps are the mask itself and
// growing by a rep subset is a plain union — skipping the hypernode
// slice the general path materializes.
func (g *Graph[S]) neighborMask(s, x S) S {
	var nb S
	for rem := s; !rem.IsEmpty(); {
		i := rem.Min()
		rem = rem.Remove(i)
		nb = nb.Union(g.adj[i])
	}
	return nb.Diff(s).Diff(x)
}

// neighborhood computes 𝒩(S, X): for every edge with one endpoint inside
// S, the not-yet-absorbed remainder of the other endpoint is reachable if
// it avoids the exclusion set X. Taking the remainder v \ S (rather than
// requiring v ∩ S = ∅) handles hyperedges whose endpoint partially overlaps
// the grown set; every grown candidate is re-validated with IsConnected, so
// this only adds reachable steps. When two edges offer hypernodes with the
// same representative, the smaller one wins — larger supersets remain
// reachable through subsequent recursion steps.
func (g *Graph[S]) neighborhood(s, x S) []neighborHyper[S] {
	if g.adj != nil {
		nb := g.neighborMask(s, x)
		out := make([]neighborHyper[S], 0, nb.Len())
		nb.ForEach(func(v int) {
			out = append(out, neighborHyper[S]{Rep: v, Full: bitset.SingleIn[S](v)})
		})
		return out
	}
	// Indexed by representative instead of a map: reps are node ids
	// < N, so a rep bitset plus a flat array replaces map hashing and
	// the final sort (ForEach yields reps in ascending order). This
	// runs once per enumeration step and used to dominate its cost.
	var repSet S
	full := make([]S, g.N)
	add := func(v S) {
		rem := v.Diff(s)
		if rem.IsEmpty() || rem.Intersects(x) {
			return
		}
		rep := rem.Min()
		if !repSet.Contains(rep) {
			repSet = repSet.Add(rep)
			full[rep] = rem
		} else if rem.Len() < full[rep].Len() {
			full[rep] = rem
		}
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Left.SubsetOf(s) {
			add(e.Right)
		}
		if e.Right.SubsetOf(s) {
			add(e.Left)
		}
	}
	out := make([]neighborHyper[S], 0, repSet.Len())
	repSet.ForEach(func(rep int) {
		out = append(out, neighborHyper[S]{Rep: rep, Full: full[rep]})
	})
	return out
}

// CsgCmpPair is one enumerated pair per Def. 3.
type CsgCmpPair[S bitset.RelSet[S]] struct {
	S1, S2 S
}

// HasHyperedges reports whether any edge has a non-singleton endpoint.
func (g *Graph[S]) HasHyperedges() bool {
	for _, e := range g.Edges {
		if !e.Left.IsSingleton() || !e.Right.IsSingleton() {
			return true
		}
	}
	return false
}

// CsgCmpPairs enumerates every csg-cmp-pair of the hypergraph exactly once
// (unordered: each pair appears with min(S1) < min(S2)) and returns them
// ordered by |S1 ∪ S2| ascending, so a dynamic programming driver can
// consume them directly: all sub-pairs of a set precede the pairs forming
// that set.
//
// Two strategies are used. Simple graphs (no hyperedges) run the DPhyp
// enumeration (EnumerateCsg/EmitCsg/EnumerateCsgRec/EnumerateCmp). For
// hypergraphs the representative/exclusion-set mechanism of textbook DPhyp
// is incomplete when two hypernodes share a minimum element (the exclusion
// set then blocks the smaller hypernode after the larger was offered), so
// we switch to a provably complete closure-based enumeration: connected
// sets are exactly the closure of singletons under "absorb the remainder
// of an edge endpoint whose other endpoint is contained", and complements
// are enumerated the same way within the exterior of each S1.
func (g *Graph[S]) CsgCmpPairs() []CsgCmpPair[S] {
	pairs, _ := g.CsgCmpPairsBudget(0)
	return pairs
}

// CsgCmpPairsBudget is CsgCmpPairs with an emission budget: once budget
// pairs have been emitted (budget 0 = unlimited) the enumeration aborts
// deterministically and returns complete=false. The partial pair list is
// returned unsorted — a DP driver cannot use it (sub-pairs may be
// missing), so callers fall back to a heuristic; the budget exists to
// bound enumeration time on graphs whose connected-subgraph count is
// exponential (e.g. large stars and cliques).
func (g *Graph[S]) CsgCmpPairsBudget(budget int) ([]CsgCmpPair[S], bool) {
	var pairs []CsgCmpPair[S]
	complete := true
	if g.HasHyperedges() {
		_, pairs, complete = g.buildableSets(budget)
	} else {
		pairs, complete = g.dphypPairs(budget)
	}
	if !complete {
		return pairs, false
	}
	// Stable counting sort by |S1 ∪ S2|: the key range is just [2, N], and
	// on large graphs the pair list dominates the optimizer's footprint —
	// O(n) with one Union per pair beats sort.SliceStable's reflection-
	// driven swapping (which showed up as a top-ten profile entry).
	lens := make([]int, len(pairs))
	pos := make([]int, g.N+2)
	for i, p := range pairs {
		l := p.S1.Union(p.S2).Len()
		lens[i] = l
		pos[l+1]++
	}
	for l := 1; l < len(pos); l++ {
		pos[l] += pos[l-1]
	}
	sorted := make([]CsgCmpPair[S], len(pairs))
	for i, p := range pairs {
		sorted[pos[lens[i]]] = p
		pos[lens[i]]++
	}
	return sorted, true
}

// dphypPairs runs the DPhyp enumeration. Exact on simple graphs; on
// hypergraphs the representative/exclusion-set mechanism can both miss
// pairs and emit pairs with non-buildable components, so CsgCmpPairs never
// uses it there. A positive budget aborts (complete=false) once that many
// pairs were emitted, with a step cap guarding stretches of the subset
// enumeration that emit nothing.
func (g *Graph[S]) dphypPairs(budget int) ([]CsgCmpPair[S], bool) {
	g.ensureAdj() // no hyperedges on this path; see CsgCmpPairsBudget
	var pairs []CsgCmpPair[S]
	seen := map[[2]S]bool{}
	stop := false
	steps := 0
	emit := func(s1, s2 S) {
		key := [2]S{s1, s2}
		if seen[key] {
			return
		}
		seen[key] = true
		pairs = append(pairs, CsgCmpPair[S]{S1: s1, S2: s2})
		if budget > 0 && len(pairs) >= budget {
			stop = true
		}
	}
	step := func() bool {
		if budget > 0 {
			steps++
			if steps >= budget*8 {
				stop = true
			}
		}
		return !stop
	}
	// EnumerateCsg: seed with every node, descending, then grow.
	for i := g.N - 1; i >= 0 && !stop; i-- {
		s1 := bitset.SingleIn[S](i)
		below := bitset.RangeIn[S](0, i+1)
		g.emitCsg(s1, emit, &stop, step)
		g.enumerateCsgRec(s1, below, emit, &stop, step)
	}
	return pairs, !stop
}

// BuildableSets computes the family of connected sets under the recursive
// DP definition: singletons are connected, and S1 ∪ S2 is connected when
// S1 and S2 are disjoint connected sets linked by an edge. This is exactly
// the family of relation sets a cross-product-free bottom-up plan
// generator can build. The pairs recorded along the way are exactly the
// csg-cmp-pairs.
//
// The worklist combines every newly discovered set against the family
// discovered so far, which makes the enumeration definitionally complete:
// for any valid pair (A, B), whichever of the two is processed later sees
// the other already in the family.
func (g *Graph[S]) BuildableSets() (family []S, pairs []CsgCmpPair[S]) {
	family, pairs, _ = g.buildableSets(0)
	return family, pairs
}

// buildableSets is BuildableSets with an emission budget (0 = unlimited);
// complete=false means the closure was aborted mid-way.
func (g *Graph[S]) buildableSets(budget int) (family []S, pairs []CsgCmpPair[S], complete bool) {
	inFamily := map[S]bool{}
	seenPair := map[[2]S]bool{}
	var queue []S
	add := func(s S) {
		if !inFamily[s] {
			inFamily[s] = true
			family = append(family, s)
			queue = append(queue, s)
		}
	}
	for i := 0; i < g.N; i++ {
		add(bitset.SingleIn[S](i))
	}
	for head := 0; head < len(queue); head++ {
		s := queue[head]
		// Snapshot length: sets added during this pass are processed on
		// their own turn.
		snapshot := len(family)
		for i := 0; i < snapshot; i++ {
			t := family[i]
			if s.Intersects(t) || g.ConnectsSets(s, t) < 0 {
				continue
			}
			a, b := s, t
			if a.Min() > b.Min() {
				a, b = b, a
			}
			key := [2]S{a, b}
			if !seenPair[key] {
				seenPair[key] = true
				pairs = append(pairs, CsgCmpPair[S]{S1: a, S2: b})
				if budget > 0 && len(pairs) >= budget {
					return family, pairs, false
				}
			}
			add(s.Union(t))
		}
	}
	return family, pairs, true
}

// enumerateCsgRec grows the connected set s1 by subsets of its
// neighborhood, emitting complements for every grown set.
func (g *Graph[S]) enumerateCsgRec(s1, x S, emit func(a, b S), stop *bool, step func() bool) {
	if *stop {
		return
	}
	var reps S
	var neighbors []neighborHyper[S]
	if g.adj != nil {
		// Simple graph: reps are the neighbor mask and growing by a rep
		// subset is a plain union (every hypernode is a singleton).
		reps = g.neighborMask(s1, x)
		if reps.IsEmpty() {
			return
		}
	} else {
		neighbors = g.neighborhood(s1, x)
		if len(neighbors) == 0 {
			return
		}
		for _, n := range neighbors {
			reps = reps.Add(n.Rep)
		}
	}
	expand := func(sub S) S {
		if neighbors == nil {
			return sub
		}
		var full S
		for _, n := range neighbors {
			if sub.Contains(n.Rep) {
				full = full.Union(n.Full)
			}
		}
		return full
	}
	reps.SubsetsAsc(func(sub S) bool {
		if !step() {
			return false
		}
		grown := s1.Union(expand(sub))
		if g.IsConnected(grown) {
			g.emitCsg(grown, emit, stop, step)
		}
		return !*stop
	})
	newX := x.Union(reps)
	reps.SubsetsAsc(func(sub S) bool {
		if !step() {
			return false
		}
		grown := s1.Union(expand(sub))
		if g.IsConnected(grown) {
			g.enumerateCsgRec(grown, newX, emit, stop, step)
		}
		return !*stop
	})
}

// emitCsg enumerates the complements of the connected set s1.
func (g *Graph[S]) emitCsg(s1 S, emit func(a, b S), stop *bool, step func() bool) {
	if *stop {
		return
	}
	x := s1.Union(bitset.RangeIn[S](0, s1.Min()+1))
	if g.adj != nil {
		// Simple graph: complements seed from single neighbors, visited
		// in descending order as below; the lower-representative
		// exclusion is a range mask over the neighbor set.
		nb := g.neighborMask(s1, x)
		for rem := nb; !rem.IsEmpty() && !*stop; {
			v := rem.Max()
			rem = rem.Remove(v)
			s2 := bitset.SingleIn[S](v)
			if g.ConnectsSets(s1, s2) >= 0 {
				emit(s1, s2)
			}
			lower := nb.Intersect(bitset.RangeIn[S](0, v+1))
			g.enumerateCmpRec(s1, s2, x.Union(lower), emit, stop, step)
		}
		return
	}
	neighbors := g.neighborhood(s1, x)
	for i := len(neighbors) - 1; i >= 0 && !*stop; i-- {
		n := neighbors[i]
		s2 := n.Full
		if g.IsConnected(s2) && g.ConnectsSets(s1, s2) >= 0 {
			emit(s1, s2)
		}
		// Exclude smaller representatives so each complement is grown
		// from exactly one seed.
		var lower S
		for _, m := range neighbors {
			if m.Rep <= n.Rep {
				lower = lower.Add(m.Rep)
			}
		}
		g.enumerateCmpRec(s1, s2, x.Union(lower), emit, stop, step)
	}
}

// enumerateCmpRec grows the complement s2 within the exclusion set x.
func (g *Graph[S]) enumerateCmpRec(s1, s2, x S, emit func(a, b S), stop *bool, step func() bool) {
	if *stop {
		return
	}
	var reps S
	var neighbors []neighborHyper[S]
	if g.adj != nil {
		reps = g.neighborMask(s2, x)
		if reps.IsEmpty() {
			return
		}
	} else {
		neighbors = g.neighborhood(s2, x)
		if len(neighbors) == 0 {
			return
		}
		for _, n := range neighbors {
			reps = reps.Add(n.Rep)
		}
	}
	expand := func(sub S) S {
		if neighbors == nil {
			return sub
		}
		var full S
		for _, n := range neighbors {
			if sub.Contains(n.Rep) {
				full = full.Union(n.Full)
			}
		}
		return full
	}
	reps.SubsetsAsc(func(sub S) bool {
		if !step() {
			return false
		}
		grown := s2.Union(expand(sub))
		if !grown.Intersects(s1) && g.IsConnected(grown) && g.ConnectsSets(s1, grown) >= 0 {
			emit(s1, grown)
		}
		return !*stop
	})
	newX := x.Union(reps)
	reps.SubsetsAsc(func(sub S) bool {
		if !step() {
			return false
		}
		grown := s2.Union(expand(sub))
		if !grown.Intersects(s1) && g.IsConnected(grown) {
			g.enumerateCmpRec(s1, grown, newX, emit, stop, step)
		}
		return !*stop
	})
}

// Buildable reports whether S is connected under the recursive DP
// definition, computed top-down with memoization. Exponential in |S| —
// intended for tests and small diagnostics; the production path uses
// BuildableSets.
func (g *Graph[S]) Buildable(s S) bool {
	return g.buildableMemo(s, map[S]bool{})
}

func (g *Graph[S]) buildableMemo(s S, memo map[S]bool) bool {
	if s.IsSingleton() {
		return true
	}
	if s.IsEmpty() {
		return false
	}
	if v, ok := memo[s]; ok {
		return v
	}
	memo[s] = false // guard against re-entry
	result := false
	rest := s.Remove(s.Min())
	rest.SubsetsAsc(func(sub S) bool {
		s2 := sub
		s1 := s.Diff(s2)
		if s1.IsEmpty() {
			return true
		}
		if g.ConnectsSets(s1, s2) >= 0 && g.buildableMemo(s1, memo) && g.buildableMemo(s2, memo) {
			result = true
			return false
		}
		return true
	})
	memo[s] = result
	return result
}

// CountCsgCmpPairsBrute counts csg-cmp-pairs by brute force over all
// subsets using the recursive connectedness definition; used to validate
// the enumerators in tests. Exponential — callers keep N small.
func (g *Graph[S]) CountCsgCmpPairsBrute() int {
	count := 0
	memo := map[S]bool{}
	all := g.All()
	all.SubsetsAsc(func(s S) bool {
		if s.IsSingleton() {
			return true
		}
		s.SubsetsAsc(func(s1 S) bool {
			s2 := s.Diff(s1)
			if s2.IsEmpty() || s1.Min() > s2.Min() {
				return true
			}
			if g.ConnectsSets(s1, s2) >= 0 && g.buildableMemo(s1, memo) && g.buildableMemo(s2, memo) {
				count++
			}
			return true
		})
		return true
	})
	return count
}
