package hypergraph

import (
	"math/rand"
	"testing"

	"eagg/internal/bitset"
)

// genLaminarTES builds a hypergraph the way the conflict detector does:
// start from a random binary operator tree over n relations; each internal
// node contributes one hyperedge whose endpoints are supersets of the
// original predicate's two relations, confined to the node's left and
// right subtree leaf sets (like TES extensions).
func genLaminarTES(rng *rand.Rand, n int) *Graph[bitset.Set64] {
	g := New[bitset.Set64](n)
	// Random binary tree shape: repeatedly merge two random forests.
	type node struct{ leaves bitset.Set64 }
	forest := make([]node, n)
	for i := range forest {
		forest[i] = node{leaves: bitset.Single64(i)}
	}
	for len(forest) > 1 {
		i := rng.Intn(len(forest))
		j := rng.Intn(len(forest) - 1)
		if j >= i {
			j++
		}
		l, r := forest[i], forest[j]
		// The operator's own predicate links one leaf of each subtree;
		// TES extension adds random further leaves from the same side.
		randomSuperset := func(base, span bitset.Set64) bitset.Set64 {
			s := base
			span.ForEach(func(e int) {
				if rng.Intn(3) == 0 {
					s = s.Add(e)
				}
			})
			return s
		}
		lAnchor := bitset.Single64(l.leaves.Select(rng.Intn(l.leaves.Len())))
		rAnchor := bitset.Single64(r.leaves.Select(rng.Intn(r.leaves.Len())))
		g.AddEdge(randomSuperset(lAnchor, l.leaves), randomSuperset(rAnchor, r.leaves), len(g.Edges))
		merged := node{leaves: l.leaves.Union(r.leaves)}
		if i > j {
			i, j = j, i
		}
		forest[j] = forest[len(forest)-1]
		forest = forest[:len(forest)-1]
		forest[i] = merged
	}
	return g
}

// TestLaminarCsgCmpPairsMatchBrute verifies the production enumeration
// (exact fixpoint, since these graphs carry hyperedges) against the
// independent recursive-definition brute force on conflict-detector-shaped
// (laminar TES) hypergraphs.
func TestLaminarCsgCmpPairsMatchBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		n := 3 + rng.Intn(9)
		g := genLaminarTES(rng, n)
		if got, want := len(g.CsgCmpPairs()), g.CountCsgCmpPairsBrute(); got != want {
			t.Fatalf("trial %d (n=%d): enumerated %d pairs, brute force %d", trial, n, got, want)
		}
	}
}

// TestBuildableSetsMatchesBrute cross-checks the fixpoint family against
// the independent recursive-definition implementation.
func TestBuildableSetsMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(5)
		g := genLaminarTES(rng, n)
		family, pairs := g.BuildableSets()
		inFamily := map[uint64]bool{}
		for _, s := range family {
			inFamily[uint64(s)] = true
		}
		g.All().SubsetsAsc(func(s bitset.Set64) bool {
			if g.Buildable(s) != inFamily[uint64(s)] {
				t.Fatalf("trial %d: buildability of %v disagrees (recursive %v, fixpoint %v)",
					trial, s, g.Buildable(s), inFamily[uint64(s)])
			}
			return true
		})
		if got, want := len(pairs), g.CountCsgCmpPairsBrute(); got != want {
			t.Fatalf("trial %d: fixpoint %d pairs, brute %d", trial, got, want)
		}
	}
}

// TestBuildableVsReachOnSimple: on simple graphs the reach-based and the
// recursive connectivity notions coincide.
func TestBuildableVsReachOnSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(6)
		g := New[bitset.Set64](n)
		for i := 1; i < n; i++ {
			g.AddSimpleEdge(rng.Intn(i), i, i)
		}
		for k := rng.Intn(3); k > 0; k-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddSimpleEdge(min(u, v), max(u, v), 0)
			}
		}
		g.All().SubsetsAsc(func(s bitset.Set64) bool {
			if g.IsConnected(s) != g.Buildable(s) {
				t.Fatalf("trial %d: %v reach=%v buildable=%v", trial, s, g.IsConnected(s), g.Buildable(s))
			}
			return true
		})
	}
}
