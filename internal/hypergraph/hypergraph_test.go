package hypergraph

import (
	"math/rand"
	"testing"

	"eagg/internal/bitset"
)

func chain(n int) *Graph[bitset.Set64] {
	g := New[bitset.Set64](n)
	for i := 0; i+1 < n; i++ {
		g.AddSimpleEdge(i, i+1, i)
	}
	return g
}

func cycle(n int) *Graph[bitset.Set64] {
	g := chain(n)
	g.AddSimpleEdge(n-1, 0, n-1)
	return g
}

func star(n int) *Graph[bitset.Set64] {
	g := New[bitset.Set64](n)
	for i := 1; i < n; i++ {
		g.AddSimpleEdge(0, i, i-1)
	}
	return g
}

func clique(n int) *Graph[bitset.Set64] {
	g := New[bitset.Set64](n)
	e := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddSimpleEdge(i, j, e)
			e++
		}
	}
	return g
}

func TestIsConnected(t *testing.T) {
	g := chain(5)
	if !g.IsConnected(bitset.New64(1, 2, 3)) {
		t.Error("contiguous chain segment must be connected")
	}
	if g.IsConnected(bitset.New64(0, 2)) {
		t.Error("gap in chain must disconnect")
	}
	if !g.IsConnected(bitset.New64(3)) {
		t.Error("singleton always connected")
	}
	if g.IsConnected(bitset.Empty64) {
		t.Error("empty set is not connected")
	}
}

func TestIsConnectedHyperedge(t *testing.T) {
	// Hyperedge ({0,1},{2,3}): {0,1,2,3} is connected only together with
	// the simple edges making each endpoint internally connected.
	g := New[bitset.Set64](4)
	g.AddSimpleEdge(0, 1, 0)
	g.AddSimpleEdge(2, 3, 1)
	g.AddEdge(bitset.New64(0, 1), bitset.New64(2, 3), 2)
	if !g.IsConnected(bitset.New64(0, 1, 2, 3)) {
		t.Error("hyperedge must connect the union")
	}
	// {0,2}: the hyperedge needs both 0,1 on one side; not connected.
	if g.IsConnected(bitset.New64(0, 2)) {
		t.Error("partial hypernodes must not connect")
	}
}

func TestConnectsSets(t *testing.T) {
	g := New[bitset.Set64](4)
	g.AddEdge(bitset.New64(0, 1), bitset.New64(2), 7)
	if g.ConnectsSets(bitset.New64(0, 1), bitset.New64(2, 3)) < 0 {
		t.Error("edge with u ⊆ S1, v ⊆ S2 must connect")
	}
	if g.ConnectsSets(bitset.New64(0), bitset.New64(2, 3)) >= 0 {
		t.Error("partial hypernode must not connect")
	}
	if g.ConnectsSets(bitset.New64(2, 3), bitset.New64(0, 1)) < 0 {
		t.Error("ConnectsSets must be symmetric")
	}
}

// Closed-form csg-cmp-pair counts for chains: (n³−n)/6.
func TestChainCcpCount(t *testing.T) {
	for n := 2; n <= 10; n++ {
		want := (n*n*n - n) / 6
		got := len(chain(n).CsgCmpPairs())
		if got != want {
			t.Errorf("chain(%d): %d ccps, want %d", n, got, want)
		}
	}
}

// Closed-form csg-cmp-pair counts for cliques: (3ⁿ − 2ⁿ⁺¹ + 1)/2.
func TestCliqueCcpCount(t *testing.T) {
	pow := func(b, e int) int {
		out := 1
		for i := 0; i < e; i++ {
			out *= b
		}
		return out
	}
	for n := 2; n <= 8; n++ {
		want := (pow(3, n) - pow(2, n+1) + 1) / 2
		got := len(clique(n).CsgCmpPairs())
		if got != want {
			t.Errorf("clique(%d): %d ccps, want %d", n, got, want)
		}
	}
}

// Closed-form csg-cmp-pair counts for stars: (n−1)·2^(n−2).
func TestStarCcpCount(t *testing.T) {
	for n := 2; n <= 10; n++ {
		want := (n - 1) << uint(n-2)
		got := len(star(n).CsgCmpPairs())
		if got != want {
			t.Errorf("star(%d): %d ccps, want %d", n, got, want)
		}
	}
}

func TestCycleAgainstBrute(t *testing.T) {
	for n := 3; n <= 8; n++ {
		g := cycle(n)
		if got, want := len(g.CsgCmpPairs()), g.CountCsgCmpPairsBrute(); got != want {
			t.Errorf("cycle(%d): %d ccps, brute force %d", n, got, want)
		}
	}
}

// TestEnumerationProperties checks every emitted pair satisfies Def. 3 and
// that the stream is duplicate-free and size-ordered.
func TestEnumerationProperties(t *testing.T) {
	g := cycle(7)
	pairs := g.CsgCmpPairs()
	seen := map[[2]uint64]bool{}
	lastSize := 0
	for _, p := range pairs {
		if p.S1.Intersects(p.S2) {
			t.Fatalf("overlapping pair %v %v", p.S1, p.S2)
		}
		if !g.IsConnected(p.S1) || !g.IsConnected(p.S2) {
			t.Fatalf("disconnected pair %v %v", p.S1, p.S2)
		}
		if g.ConnectsSets(p.S1, p.S2) < 0 {
			t.Fatalf("unconnected pair %v %v", p.S1, p.S2)
		}
		if p.S1.Min() > p.S2.Min() {
			t.Fatalf("pair not canonical: %v %v", p.S1, p.S2)
		}
		key := [2]uint64{uint64(p.S1), uint64(p.S2)}
		if seen[key] {
			t.Fatalf("duplicate pair %v %v", p.S1, p.S2)
		}
		seen[key] = true
		size := p.S1.Union(p.S2).Len()
		if size < lastSize {
			t.Fatalf("size order violated at %v %v", p.S1, p.S2)
		}
		lastSize = size
	}
}

// TestRandomGraphsAgainstBrute fuzz-tests the enumerator against the brute
// force counter on random connected graphs, with and without hyperedges.
func TestRandomGraphsAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 400; trial++ {
		n := 3 + rng.Intn(5)
		g := New[bitset.Set64](n)
		// Random spanning tree keeps the graph connected.
		for i := 1; i < n; i++ {
			g.AddSimpleEdge(rng.Intn(i), i, len(g.Edges))
		}
		// Extra random simple edges.
		for k := rng.Intn(3); k > 0; k-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(bitset.Single64(min(u, v)), bitset.Single64(max(u, v)), len(g.Edges))
			}
		}
		// Occasionally a hyperedge between two disjoint sets.
		if rng.Intn(2) == 0 && n >= 4 {
			var left, right bitset.Set64
			for i := 0; i < n; i++ {
				switch rng.Intn(3) {
				case 0:
					left = left.Add(i)
				case 1:
					right = right.Add(i)
				}
			}
			if !left.IsEmpty() && !right.IsEmpty() && !left.Intersects(right) {
				g.AddEdge(left, right, len(g.Edges))
			}
		}
		got := len(g.CsgCmpPairs())
		want := g.CountCsgCmpPairsBrute()
		if got != want {
			t.Fatalf("trial %d (n=%d, %d edges): DPhyp found %d ccps, brute force %d",
				trial, n, len(g.Edges), got, want)
		}
	}
}

func TestTreeCcpEqualsBrute(t *testing.T) {
	// Random trees are exactly the paper's workload shape.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		g := New[bitset.Set64](n)
		for i := 1; i < n; i++ {
			g.AddSimpleEdge(rng.Intn(i), i, i)
		}
		if got, want := len(g.CsgCmpPairs()), g.CountCsgCmpPairsBrute(); got != want {
			t.Fatalf("tree trial %d: %d vs brute %d", trial, got, want)
		}
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New[bitset.Set64](3)
	for _, c := range []struct{ l, r bitset.Set64 }{
		{bitset.Empty64, bitset.New64(1)},
		{bitset.New64(0), bitset.Empty64},
		{bitset.New64(0, 1), bitset.New64(1, 2)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%v,%v) should panic", c.l, c.r)
				}
			}()
			g.AddEdge(c.l, c.r, 0)
		}()
	}
}

func TestConnectingEdges(t *testing.T) {
	g := New[bitset.Set64](3)
	g.AddSimpleEdge(0, 1, 10)
	g.AddSimpleEdge(1, 2, 11)
	g.AddSimpleEdge(0, 2, 12)
	got := g.ConnectingEdges(bitset.New64(0, 1), bitset.New64(2))
	if len(got) != 2 {
		t.Fatalf("ConnectingEdges = %v", got)
	}
}
