package aggfn

import "fmt"

// Default symbolically describes the value an aggregate yields when applied
// to the single all-NULL tuple {⊥}. The paper attaches these as default
// vectors to its generalized outerjoins (Eqvs. 11/12, 14/15, …): an
// unmatched tuple receives F¹({⊥}) for the pushed-down aggregates and 1 for
// the pushed-down count.
type Default int

const (
	// DefaultNull: sum/min/max/avg of {⊥} is NULL.
	DefaultNull Default = iota
	// DefaultZero: count(a) of {⊥} is 0 (a is NULL).
	DefaultZero
	// DefaultOne: count(*) of {⊥} is 1 — one tuple is present.
	DefaultOne
)

func (d Default) String() string {
	switch d {
	case DefaultNull:
		return "NULL"
	case DefaultZero:
		return "0"
	case DefaultOne:
		return "1"
	}
	return fmt.Sprintf("Default(%d)", int(d))
}

// BottomDefault returns the aggregate's value on {⊥}, the single tuple that
// is NULL in every attribute.
func (a Agg) BottomDefault() Default {
	switch a.Kind {
	case CountStar:
		return DefaultOne
	case Count, CountDistinct, SumIfNotNull:
		return DefaultZero
	default:
		return DefaultNull
	}
}

// BottomDefaults returns one symbolic default per vector entry, aligned
// with v.
func (v Vector) BottomDefaults() []Default {
	out := make([]Default, len(v))
	for i, a := range v {
		out[i] = a.BottomDefault()
	}
	return out
}

// Decomposition is the result of decomposing a vector F into an inner
// vector F¹ (evaluated by the pushed-down grouping, producing fresh partial
// attributes) and an outer vector F² (evaluated by the upper grouping over
// those partials, producing the original output attributes).
type Decomposition struct {
	Inner Vector // F¹ — partials, fresh Out names
	Outer Vector // F² — combines partials into the original Outs
}

// Decompose splits each aggregate agg into (agg¹, agg²) per Def. 2.
// Intermediate attribute names are derived from the output name: b → b′
// (and b_s/b_n for the two halves of avg). It returns an error if the
// vector contains a non-decomposable aggregate.
func (v Vector) Decompose() (Decomposition, error) {
	var d Decomposition
	for _, a := range v {
		switch a.Kind {
		case CountStar, Count:
			p := a.Out + "'"
			d.Inner = append(d.Inner, Agg{Out: p, Kind: a.Kind, Arg: a.Arg})
			d.Outer = append(d.Outer, Agg{Out: a.Out, Kind: Sum, Arg: p})
		case Sum:
			p := a.Out + "'"
			d.Inner = append(d.Inner, Agg{Out: p, Kind: Sum, Arg: a.Arg})
			d.Outer = append(d.Outer, Agg{Out: a.Out, Kind: Sum, Arg: p})
		case SumTimes, SumIfNotNull:
			p := a.Out + "'"
			d.Inner = append(d.Inner, Agg{Out: p, Kind: a.Kind, Arg: a.Arg, Arg2: a.Arg2})
			d.Outer = append(d.Outer, Agg{Out: a.Out, Kind: Sum, Arg: p})
		case Min, Max:
			p := a.Out + "'"
			d.Inner = append(d.Inner, Agg{Out: p, Kind: a.Kind, Arg: a.Arg})
			d.Outer = append(d.Outer, Agg{Out: a.Out, Kind: a.Kind, Arg: p})
		case Avg:
			ps, pn := a.Out+"_s", a.Out+"_n"
			d.Inner = append(d.Inner,
				Agg{Out: ps, Kind: Sum, Arg: a.Arg},
				Agg{Out: pn, Kind: Count, Arg: a.Arg})
			d.Outer = append(d.Outer, Agg{Out: a.Out, Kind: AvgMerge, Arg: ps, Arg2: pn})
		case AvgWeighted:
			ps, pn := a.Out+"_s", a.Out+"_n"
			d.Inner = append(d.Inner,
				Agg{Out: ps, Kind: SumTimes, Arg: a.Arg, Arg2: a.Arg2},
				Agg{Out: pn, Kind: SumIfNotNull, Arg: a.Arg, Arg2: a.Arg2})
			d.Outer = append(d.Outer, Agg{Out: a.Out, Kind: AvgMerge, Arg: ps, Arg2: pn})
		case AvgMerge:
			ps, pn := a.Out+"_s", a.Out+"_n"
			if a.Weight != "" {
				d.Inner = append(d.Inner,
					Agg{Out: ps, Kind: SumTimes, Arg: a.Arg, Arg2: a.Weight},
					Agg{Out: pn, Kind: SumTimes, Arg: a.Arg2, Arg2: a.Weight})
			} else {
				d.Inner = append(d.Inner,
					Agg{Out: ps, Kind: Sum, Arg: a.Arg},
					Agg{Out: pn, Kind: Sum, Arg: a.Arg2})
			}
			d.Outer = append(d.Outer, Agg{Out: a.Out, Kind: AvgMerge, Arg: ps, Arg2: pn})
		default:
			return Decomposition{}, fmt.Errorf("aggfn: %s is not decomposable", a)
		}
	}
	return d, nil
}

// Adjust implements the ⊗ operator of Sec. 2.1.3: F ⊗ c re-weights each
// duplicate-sensitive aggregate by the count attribute c, which holds the
// number of original tuples each input tuple stands for:
//
//	agg duplicate agnostic → agg unchanged
//	sum(a)                 → sum(a*c)
//	count(*)               → sum(c)
//	count(a)               → sum(a IS NULL ? 0 : c)
//	avg(a)                 → sum(a*c)/sum(a IS NULL ? 0 : c)
//	sum(p)/sum(q)          → sum(p*c)/sum(q*c)    (AvgMerge gains a weight)
//
// It returns an error for forms that cannot absorb another weight (a second
// ⊗ application, which the single-push equivalences never produce).
func (v Vector) Adjust(c string) (Vector, error) {
	out := make(Vector, 0, len(v))
	for _, a := range v {
		if a.Kind.DuplicateAgnostic() {
			out = append(out, a)
			continue
		}
		switch a.Kind {
		case Sum:
			out = append(out, Agg{Out: a.Out, Kind: SumTimes, Arg: a.Arg, Arg2: c})
		case CountStar:
			out = append(out, Agg{Out: a.Out, Kind: Sum, Arg: c})
		case Count:
			out = append(out, Agg{Out: a.Out, Kind: SumIfNotNull, Arg: a.Arg, Arg2: c})
		case Avg:
			out = append(out, Agg{Out: a.Out, Kind: AvgWeighted, Arg: a.Arg, Arg2: c})
		case AvgMerge:
			if a.Weight != "" {
				return nil, fmt.Errorf("aggfn: cannot ⊗-adjust already weighted %s", a)
			}
			out = append(out, Agg{Out: a.Out, Kind: AvgMerge, Arg: a.Arg, Arg2: a.Arg2, Weight: c})
		default:
			return nil, fmt.Errorf("aggfn: cannot ⊗-adjust %s", a)
		}
	}
	return out, nil
}
