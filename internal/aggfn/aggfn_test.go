package aggfn

import (
	"strings"
	"testing"
)

func TestDuplicateAgnostic(t *testing.T) {
	agnostic := []Kind{Min, Max, SumDistinct, CountDistinct, AvgDistinct}
	sensitive := []Kind{Sum, Count, CountStar, Avg}
	for _, k := range agnostic {
		if !k.DuplicateAgnostic() {
			t.Errorf("%s should be duplicate agnostic", k)
		}
	}
	for _, k := range sensitive {
		if k.DuplicateAgnostic() {
			t.Errorf("%s should be duplicate sensitive", k)
		}
	}
}

func TestDecomposableKinds(t *testing.T) {
	for _, k := range []Kind{CountStar, Count, Sum, Min, Max, Avg} {
		if !k.Decomposable() {
			t.Errorf("%s should be decomposable", k)
		}
	}
	for _, k := range []Kind{SumDistinct, CountDistinct, AvgDistinct} {
		if k.Decomposable() {
			t.Errorf("%s must not be decomposable", k)
		}
	}
}

func TestVectorConcatAndOuts(t *testing.T) {
	f1 := Vector{{Out: "b1", Kind: Sum, Arg: "a1"}}
	f2 := Vector{{Out: "b2", Kind: Count, Arg: "a2"}}
	f := f1.Concat(f2)
	if len(f) != 2 || f[0].Out != "b1" || f[1].Out != "b2" {
		t.Fatalf("Concat = %v", f)
	}
	outs := f.Outs()
	if outs[0] != "b1" || outs[1] != "b2" {
		t.Errorf("Outs = %v", outs)
	}
	// Concat must not alias the inputs' backing arrays.
	f[0].Out = "x"
	if f1[0].Out != "b1" {
		t.Error("Concat aliases input vector")
	}
}

func TestInputAttrs(t *testing.T) {
	f := Vector{
		{Out: "k", Kind: CountStar},
		{Out: "b", Kind: Sum, Arg: "a1"},
		{Out: "w", Kind: SumTimes, Arg: "a2", Arg2: "c1"},
	}
	attrs := f.InputAttrs()
	for _, a := range []string{"a1", "a2", "c1"} {
		if !attrs[a] {
			t.Errorf("InputAttrs missing %s", a)
		}
	}
	if attrs[""] || len(attrs) != 3 {
		t.Errorf("InputAttrs = %v", attrs)
	}
}

func sideOf(attrs ...string) func(string) bool {
	set := map[string]bool{}
	for _, a := range attrs {
		set[a] = true
	}
	return func(a string) bool { return set[a] }
}

func TestSplit(t *testing.T) {
	// The paper's Fig. 4 vector: F = k:count(*), b1:sum(a1), b2:sum(a2).
	f := Vector{
		{Out: "k", Kind: CountStar},
		{Out: "b1", Kind: Sum, Arg: "a1"},
		{Out: "b2", Kind: Sum, Arg: "a2"},
	}
	f1, f2, ok := f.Split(sideOf("g1", "j1", "a1"), sideOf("g2", "j2", "a2"))
	if !ok {
		t.Fatal("vector should be splittable")
	}
	// count(*) goes left by the S1 convention.
	if len(f1) != 2 || f1[0].Out != "k" || f1[1].Out != "b1" {
		t.Errorf("F1 = %v", f1)
	}
	if len(f2) != 1 || f2[0].Out != "b2" {
		t.Errorf("F2 = %v", f2)
	}
}

func TestSplitFailsAcrossSides(t *testing.T) {
	f := Vector{{Out: "x", Kind: SumTimes, Arg: "a1", Arg2: "a2"}}
	if _, _, ok := f.Split(sideOf("a1"), sideOf("a2")); ok {
		t.Error("aggregate spanning both sides must not split")
	}
	// Attribute known to neither side.
	g := Vector{{Out: "y", Kind: Sum, Arg: "zz"}}
	if _, _, ok := g.Split(sideOf("a1"), sideOf("a2")); ok {
		t.Error("aggregate over unknown attribute must not split")
	}
}

func TestDecomposeSumCount(t *testing.T) {
	f := Vector{
		{Out: "k", Kind: CountStar},
		{Out: "b", Kind: Sum, Arg: "a"},
	}
	d, err := f.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	// Inner: k':count(*), b':sum(a). Outer: k:sum(k'), b:sum(b').
	if d.Inner[0].Kind != CountStar || d.Inner[0].Out != "k'" {
		t.Errorf("inner[0] = %v", d.Inner[0])
	}
	if d.Outer[0].Kind != Sum || d.Outer[0].Arg != "k'" || d.Outer[0].Out != "k" {
		t.Errorf("outer[0] = %v", d.Outer[0])
	}
	if d.Inner[1].Kind != Sum || d.Outer[1].Kind != Sum || d.Outer[1].Arg != "b'" {
		t.Errorf("sum decomposition = %v / %v", d.Inner[1], d.Outer[1])
	}
}

func TestDecomposeMinMax(t *testing.T) {
	f := Vector{{Out: "lo", Kind: Min, Arg: "a"}, {Out: "hi", Kind: Max, Arg: "a"}}
	d, err := f.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if d.Outer[0].Kind != Min || d.Outer[1].Kind != Max {
		t.Errorf("min/max must recombine with min/max, got %v", d.Outer)
	}
}

func TestDecomposeAvg(t *testing.T) {
	f := Vector{{Out: "m", Kind: Avg, Arg: "a"}}
	d, err := f.Decompose()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Inner) != 2 {
		t.Fatalf("avg inner = %v", d.Inner)
	}
	if d.Inner[0].Kind != Sum || d.Inner[1].Kind != Count {
		t.Errorf("avg decomposes into sum+countNN, got %v", d.Inner)
	}
	if d.Outer[0].Kind != AvgMerge {
		t.Errorf("avg outer = %v", d.Outer[0])
	}
}

func TestDecomposeRejectsDistinct(t *testing.T) {
	f := Vector{{Out: "d", Kind: CountDistinct, Arg: "a"}}
	if _, err := f.Decompose(); err == nil {
		t.Error("count(distinct) must not decompose")
	}
}

func TestAdjust(t *testing.T) {
	f := Vector{
		{Out: "k", Kind: CountStar},
		{Out: "b", Kind: Sum, Arg: "a"},
		{Out: "c", Kind: Count, Arg: "a"},
		{Out: "lo", Kind: Min, Arg: "a"},
		{Out: "m", Kind: Avg, Arg: "a"},
	}
	g, err := f.Adjust("c1")
	if err != nil {
		t.Fatal(err)
	}
	// count(*) ⊗ c1 = sum(c1)
	if g[0].Kind != Sum || g[0].Arg != "c1" {
		t.Errorf("count(*)⊗c = %v", g[0])
	}
	// sum(a) ⊗ c1 = sum(a*c1)
	if g[1].Kind != SumTimes || g[1].Arg != "a" || g[1].Arg2 != "c1" {
		t.Errorf("sum⊗c = %v", g[1])
	}
	// count(a) ⊗ c1 = sum(a IS NULL ? 0 : c1)
	if g[2].Kind != SumIfNotNull {
		t.Errorf("count(a)⊗c = %v", g[2])
	}
	// min is duplicate agnostic: unchanged.
	if g[3] != f[3] {
		t.Errorf("min⊗c = %v", g[3])
	}
	if g[4].Kind != AvgWeighted {
		t.Errorf("avg⊗c = %v", g[4])
	}
}

func TestAdjustAvgMergeGainsWeight(t *testing.T) {
	f := Vector{{Out: "m", Kind: AvgMerge, Arg: "s", Arg2: "n"}}
	g, err := f.Adjust("c2")
	if err != nil {
		t.Fatal(err)
	}
	if g[0].Weight != "c2" {
		t.Errorf("AvgMerge⊗c = %v", g[0])
	}
	// A second adjustment is out of scope and must error.
	if _, err := g.Adjust("c3"); err == nil {
		t.Error("double ⊗ on AvgMerge should error")
	}
}

func TestBottomDefaults(t *testing.T) {
	f := Vector{
		{Out: "k", Kind: CountStar},
		{Out: "c", Kind: Count, Arg: "a"},
		{Out: "b", Kind: Sum, Arg: "a"},
		{Out: "lo", Kind: Min, Arg: "a"},
	}
	want := []Default{DefaultOne, DefaultZero, DefaultNull, DefaultNull}
	got := f.BottomDefaults()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("default[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStringRendering(t *testing.T) {
	f := Vector{
		{Out: "k", Kind: CountStar},
		{Out: "b", Kind: SumTimes, Arg: "a", Arg2: "c1"},
	}
	s := f.String()
	if !strings.Contains(s, "k:count(*)") || !strings.Contains(s, "b:sum(a*c1)") {
		t.Errorf("String = %q", s)
	}
}

func TestVectorDecomposablePredicate(t *testing.T) {
	ok := Vector{{Out: "b", Kind: Sum, Arg: "a"}}
	bad := Vector{{Out: "b", Kind: Sum, Arg: "a"}, {Out: "d", Kind: SumDistinct, Arg: "a"}}
	if !ok.Decomposable() || bad.Decomposable() {
		t.Error("Decomposable predicate broken")
	}
}
