// Package aggfn models SQL aggregate functions and vectors thereof, together
// with the three properties the paper's equivalences rely on (Sec. 2.1):
//
//   - splittability of an aggregation vector F into F1 ◦ F2 w.r.t. two
//     expressions (Def. 1),
//   - decomposability of an aggregate into an inner part F¹ and an outer
//     part F² (Def. 2), and
//   - duplicate sensitivity, which drives the ⊗c adjustment operator that
//     re-weights duplicate-sensitive aggregates by a count attribute.
//
// The package is purely symbolic: it manipulates aggregate descriptions.
// Evaluation over tuples lives in internal/algebra.
package aggfn

import (
	"fmt"
	"strings"
)

// Kind identifies an aggregate function. Beyond the SQL standard functions
// the enum contains the derived forms that the paper's rewrites produce:
// weighted sums for ⊗c adjustments and the merge form of avg.
type Kind int

const (
	// CountStar is count(*): counts tuples, never NULL-sensitive.
	CountStar Kind = iota
	// Count is count(a): counts tuples where a is not NULL. This is also
	// the paper's countNN used to decompose avg.
	Count
	// Sum is sum(a) with SQL semantics: NULL on empty or all-NULL input.
	Sum
	// Min is min(a).
	Min
	// Max is max(a).
	Max
	// Avg is avg(a) = sum(a)/countNN(a).
	Avg
	// SumDistinct is sum(distinct a). Duplicate agnostic, not decomposable.
	SumDistinct
	// CountDistinct is count(distinct a). Duplicate agnostic, not
	// decomposable.
	CountDistinct
	// AvgDistinct is avg(distinct a). Duplicate agnostic, not decomposable.
	AvgDistinct

	// SumTimes is sum(Arg * Arg2), the ⊗c image of Sum.
	SumTimes
	// SumIfNotNull is sum(Arg IS NULL ? 0 : Arg2), the ⊗c image of Count.
	SumIfNotNull
	// AvgMerge is sum(Arg)/sum(Arg2), the outer half of a decomposed Avg;
	// Arg carries partial sums, Arg2 partial non-NULL counts. With a
	// non-empty Weight both sums are weighted: sum(Arg·W)/sum(Arg2·W).
	AvgMerge
	// AvgWeighted is the ⊗c image of Avg:
	// sum(Arg·Arg2) / sum(Arg IS NULL ? 0 : Arg2).
	AvgWeighted
)

var kindNames = map[Kind]string{
	CountStar:     "count(*)",
	Count:         "count",
	Sum:           "sum",
	Min:           "min",
	Max:           "max",
	Avg:           "avg",
	SumDistinct:   "sum(distinct)",
	CountDistinct: "count(distinct)",
	AvgDistinct:   "avg(distinct)",
	SumTimes:      "sum*",
	SumIfNotNull:  "sumIfNN",
	AvgMerge:      "avgMerge",
	AvgWeighted:   "avgWeighted",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// DuplicateAgnostic reports whether the aggregate's result is independent of
// duplicates in its input (the paper's Class D; Sec. 2.1.3).
func (k Kind) DuplicateAgnostic() bool {
	switch k {
	case Min, Max, SumDistinct, CountDistinct, AvgDistinct:
		return true
	}
	return false
}

// Decomposable reports whether agg(X∪Y) can be computed from agg1 applied to
// X and Y separately (Def. 2). The distinct variants are not decomposable.
func (k Kind) Decomposable() bool {
	switch k {
	case CountStar, Count, Sum, Min, Max, Avg, SumTimes, SumIfNotNull, AvgMerge, AvgWeighted:
		return true
	}
	return false
}

// Agg is one entry of an aggregation vector: Out : kind(Arg[, Arg2]).
// Arg is empty for count(*). Arg2 is used by the two-argument derived kinds
// (SumTimes, SumIfNotNull, AvgMerge). Weight optionally re-weights AvgMerge.
type Agg struct {
	Out    string // result attribute
	Kind   Kind
	Arg    string // aggregated attribute ("" for count(*))
	Arg2   string // second attribute for derived kinds
	Weight string // weight attribute for AvgMerge ⊗ c
}

// Args returns the input attributes the aggregate references.
func (a Agg) Args() []string {
	var out []string
	if a.Arg != "" {
		out = append(out, a.Arg)
	}
	if a.Arg2 != "" {
		out = append(out, a.Arg2)
	}
	if a.Weight != "" {
		out = append(out, a.Weight)
	}
	return out
}

func (a Agg) String() string {
	switch a.Kind {
	case CountStar:
		return a.Out + ":count(*)"
	case SumTimes:
		return fmt.Sprintf("%s:sum(%s*%s)", a.Out, a.Arg, a.Arg2)
	case SumIfNotNull:
		return fmt.Sprintf("%s:sum(%s isnull?0:%s)", a.Out, a.Arg, a.Arg2)
	case AvgMerge:
		if a.Weight != "" {
			return fmt.Sprintf("%s:sum(%s*%s)/sum(%s*%s)", a.Out, a.Arg, a.Weight, a.Arg2, a.Weight)
		}
		return fmt.Sprintf("%s:sum(%s)/sum(%s)", a.Out, a.Arg, a.Arg2)
	case AvgWeighted:
		return fmt.Sprintf("%s:avg(%s weighted by %s)", a.Out, a.Arg, a.Arg2)
	default:
		return fmt.Sprintf("%s:%s(%s)", a.Out, a.Kind, a.Arg)
	}
}

// Vector is an ordered aggregation vector F = (b1:agg1(a1), …, bk:aggk(ak)).
type Vector []Agg

// String renders the vector as the paper writes it.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, a := range v {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// Concat returns the concatenation v ◦ w.
func (v Vector) Concat(w Vector) Vector {
	out := make(Vector, 0, len(v)+len(w))
	out = append(out, v...)
	out = append(out, w...)
	return out
}

// Outs returns the result attributes of the vector, in order.
func (v Vector) Outs() []string {
	out := make([]string, len(v))
	for i, a := range v {
		out[i] = a.Out
	}
	return out
}

// InputAttrs returns the set of attributes referenced by the vector, i.e.
// F(F) in the paper's notation.
func (v Vector) InputAttrs() map[string]bool {
	out := map[string]bool{}
	for _, a := range v {
		for _, arg := range a.Args() {
			out[arg] = true
		}
	}
	return out
}

// Decomposable reports whether every aggregate in the vector is
// decomposable.
func (v Vector) Decomposable() bool {
	for _, a := range v {
		if !a.Kind.Decomposable() {
			return false
		}
	}
	return true
}

// Split splits F into F1 ◦ F2 with respect to two attribute universes
// (Def. 1): an aggregate referencing only attributes of side 1 goes to F1,
// only side 2 to F2. count(*) (special case S1) references nothing and is
// placed on side 1. ok is false if some aggregate references attributes
// from both sides or from neither — then F is not splittable.
func (v Vector) Split(attrsOfSide1, attrsOfSide2 func(attr string) bool) (f1, f2 Vector, ok bool) {
	for _, a := range v {
		args := a.Args()
		if len(args) == 0 { // count(*): S1 convention, goes left
			f1 = append(f1, a)
			continue
		}
		in1, in2 := true, true
		for _, arg := range args {
			if !attrsOfSide1(arg) {
				in1 = false
			}
			if !attrsOfSide2(arg) {
				in2 = false
			}
		}
		switch {
		case in1 && !in2:
			f1 = append(f1, a)
		case in2 && !in1:
			f2 = append(f2, a)
		default:
			return nil, nil, false
		}
	}
	return f1, f2, true
}
