package core

// Plan-class retention for the sort-based physical layer. In the default
// hash mode every DP-table entry competes on C_out alone (one plan per
// relation set for the heuristics). With Options.Phys enabled, entries
// become *plan classes* keyed by
//
//	(relation set, GroupsBelow, contractual order)
//
// — the relation set is the table key as before, and within an entry
// plans only compete against plans of the same collapse state and the
// same order. A plan that is dominated on cost but carries a stronger
// order therefore survives enumeration (the classic interesting-order
// argument): its order may later eliminate a sort whose saving exceeds
// the cost gap. Selection inside a class — and at the top level — is by
// PhysCost: C_out plus the physical reorganization overheads of
// cost/phys.go. Ties keep the first-enumerated plan, which (hash
// variants are enumerated before sort variants) resolves toward the
// hash layer and keeps the choice deterministic for the parallel driver.

import (
	"eagg/internal/cost"
	"eagg/internal/ordering"
	"eagg/internal/plan"
)

// physOn reports whether the sort-based physical layer participates.
func (g *generator[S]) physOn() bool { return g.opts.Phys != PhysModeHash }

// sameClass reports whether two plans fall into the same plan class of
// one DP-table entry: identical collapse state and identical contractual
// order.
func sameClass(a, b *plan.Plan) bool {
	return a.GroupsBelow == b.GroupsBelow && ordering.Order(a.Ord).Equal(ordering.Order(b.Ord))
}

// insertPhys is the retention policy of the sort/auto modes, applied per
// plan class.
func (g *generator[S]) insertPhys(est *cost.Estimator, s S, entry []*plan.Plan, t *plan.Plan) []*plan.Plan {
	switch g.opts.Algorithm {
	case AlgEAAll:
		return append(entry, t)
	case AlgEAPrune:
		return g.pruneDominatedPlansPhys(est, s, entry, t)
	case AlgBeam:
		return g.insertBeamPhys(entry, t)
	case AlgH2:
		for i, old := range entry {
			if sameClass(old, t) {
				if g.compareAdjustedPhysCosts(t, old) {
					entry[i] = t
				}
				return entry
			}
		}
		return append(entry, t)
	default: // DPhyp, H1: single cheapest plan per class
		for i, old := range entry {
			if sameClass(old, t) {
				if t.PhysCost < old.PhysCost {
					entry[i] = t
				}
				return entry
			}
		}
		return append(entry, t)
	}
}

// compareAdjustedPhysCosts is H2's eagerness-biased comparison (Fig. 12)
// on physical costs: within a class, more eager plans get the tolerance
// factor F, exactly like the hash mode's compareAdjustedCosts does on
// C_out.
func (g *generator[S]) compareAdjustedPhysCosts(t, cur *plan.Plan) bool {
	et, ec := t.Eagerness(), cur.Eagerness()
	f := g.opts.F
	switch {
	case et == ec:
		return t.PhysCost < cur.PhysCost
	case et < ec:
		return f*t.PhysCost < cur.PhysCost
	default:
		return t.PhysCost < f*cur.PhysCost
	}
}

// physDominates extends the dominance test of Sec. 4.6 with the physical
// dimensions: a only dominates b if it is also at least as cheap
// physically and its contractual order is at least as strong (b's order
// is a prefix of a's) — otherwise the dominated-but-ordered plan must
// survive.
func physDominates(a, b *plan.Plan) bool {
	if a.PhysCost > b.PhysCost {
		return false
	}
	if !ordering.Order(a.Ord).HasPrefix(ordering.Order(b.Ord)) {
		return false
	}
	return dominates(a, b)
}

// pruneDominatedPlansPhys is Fig. 13 under the extended dominance.
func (g *generator[S]) pruneDominatedPlansPhys(est *cost.Estimator, s S, entry []*plan.Plan, t *plan.Plan) []*plan.Plan {
	g.fillProfileWith(est, s, t)
	for _, old := range entry {
		if physDominates(old, t) {
			return entry
		}
	}
	kept := entry[:0]
	for _, old := range entry {
		if !physDominates(t, old) {
			kept = append(kept, old)
		}
	}
	return append(kept, t)
}

// insertBeamPhys keeps the BeamWidth physically cheapest plans per plan
// class. Within a class the worst member is evicted; on cost ties the
// earlier-enumerated plan stays (determinism).
func (g *generator[S]) insertBeamPhys(entry []*plan.Plan, t *plan.Plan) []*plan.Plan {
	k := g.opts.BeamWidth
	members := 0
	worst := -1
	for i, old := range entry {
		if !sameClass(old, t) {
			continue
		}
		members++
		if worst < 0 || old.PhysCost > entry[worst].PhysCost {
			worst = i
		}
	}
	if members < k {
		return append(entry, t)
	}
	if worst >= 0 && t.PhysCost < entry[worst].PhysCost {
		entry[worst] = t
	}
	return entry
}
