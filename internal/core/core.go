// Package core implements the paper's plan generators (Sec. 4): the
// DP-based driver over csg-cmp-pairs, the OpTrees expansion that adds the
// eager-aggregation variants of Fig. 8, the NeedsGrouping test (Fig. 7),
// the complete generators EA-All (Fig. 9) and EA-Prune (Figs. 13/14), and
// the heuristics H1 (Fig. 10) and H2 (Fig. 12).
package core

import (
	"errors"
	"fmt"

	"eagg/internal/bitset"
	"eagg/internal/conflict"
	"eagg/internal/cost"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// Algorithm selects the plan generator variant.
type Algorithm int

const (
	// AlgDPhyp is the baseline: optimal operator ordering, no eager
	// aggregation (the grouping stays on top).
	AlgDPhyp Algorithm = iota
	// AlgEAAll keeps every subplan: the complete search space of Sec. 4.3.
	AlgEAAll
	// AlgEAPrune is EA-All plus the optimality-preserving dominance
	// pruning of Sec. 4.6.
	AlgEAPrune
	// AlgH1 keeps the single locally cheapest tree per plan class
	// (Sec. 4.4).
	AlgH1
	// AlgH2 is H1 with the eagerness-biased cost comparison of Sec. 4.5.
	AlgH2
	// AlgBeam is an extension in the direction of the paper's future-work
	// remark ("discover better heuristic algorithms"): it keeps the K
	// cheapest plans per plan class, interpolating between H1 (K = 1) and
	// EA-All (K = ∞) — a tunable quality/price dial.
	AlgBeam
)

var algNames = map[Algorithm]string{
	AlgDPhyp:   "DPhyp",
	AlgEAAll:   "EA-All",
	AlgEAPrune: "EA-Prune",
	AlgH1:      "H1",
	AlgH2:      "H2",
	AlgBeam:    "Beam",
}

func (a Algorithm) String() string {
	if s, ok := algNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configure an optimization run.
type Options struct {
	Algorithm Algorithm
	// F is H2's tolerance factor (Sec. 4.5); the paper evaluates 1.01,
	// 1.03, 1.05 and 1.1. Values ≤ 1 make H2 behave like H1.
	F float64
	// BeamWidth is the number of plans AlgBeam retains per plan class
	// (default 4). BeamWidth 1 coincides with H1.
	BeamWidth int
	// FDReduceGroups enables FD-based reduction of grouping attribute
	// sets in the cardinality estimator (sharper estimates; departs from
	// the paper's evaluation conditions — see internal/cost).
	FDReduceGroups bool
}

// Stats reports search effort.
type Stats struct {
	CsgCmpPairs int // pairs enumerated
	PlansBuilt  int // operator trees constructed (incl. discarded)
	TablePlans  int // plans retained across all DP-table entries
}

// Result is an optimization outcome.
type Result struct {
	Plan  *plan.Plan
	Stats Stats
}

// Optimize runs the selected plan generator on the query.
func Optimize(q *query.Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if opts.Algorithm == AlgH2 && opts.F <= 0 {
		return nil, errors.New("core: H2 requires a tolerance factor F > 0")
	}
	if opts.Algorithm == AlgBeam && opts.BeamWidth <= 0 {
		opts.BeamWidth = 4
	}
	est := cost.NewEstimator(q)
	est.FDReduceGroups = opts.FDReduceGroups
	g := &generator{
		q:    q,
		det:  conflict.Detect(q),
		est:  est,
		opts: opts,
		all:  bitset.Range64(0, len(q.Relations)),
	}
	g.prepare()
	return g.run()
}

// generator carries the state of one optimization run.
type generator struct {
	q    *query.Query
	det  *conflict.Detection
	est  *cost.Estimator
	opts Options
	all  bitset.Set64

	// table maps a relation set to its retained plans. Heuristic
	// algorithms keep exactly one entry; EA-All/EA-Prune keep lists. The
	// entry for the complete set holds the single best top-level plan.
	table map[bitset.Set64][]*plan.Plan

	// aggSrc[i] is the set of relations aggregate i draws from; aggOK[i]
	// whether it is decomposable.
	aggSrc []bitset.Set64
	aggOK  []bool

	// joinAttrs caches the union of all predicate attributes.
	predAttrs []bitset.Set64

	// gjRight is the union of all groupjoin right-subtree relations;
	// groupings are never pushed there because they would aggregate away
	// the inputs of the groupjoin's own vector F̄.
	gjRight bitset.Set64

	stats Stats
}

func (g *generator) prepare() {
	g.table = make(map[bitset.Set64][]*plan.Plan)
	if g.q.HasGrouping {
		g.aggSrc = g.q.AggSourceRels()
		g.aggOK = make([]bool, len(g.q.Aggregates))
		for i, a := range g.q.Aggregates {
			g.aggOK[i] = a.Kind.Decomposable()
		}
	}
	for _, op := range g.det.Ops {
		g.predAttrs = append(g.predAttrs, op.Node.Pred.Attrs())
		if op.Node.Kind == query.KindGroupJoin {
			g.gjRight = g.gjRight.Union(op.RightRels)
		}
	}
}

func (g *generator) run() (*Result, error) {
	// Component 1: initial access paths (Fig. 5, lines 1-2).
	for r := range g.q.Relations {
		g.table[bitset.Single64(r)] = []*plan.Plan{g.est.Scan(r)}
	}
	if len(g.q.Relations) == 1 {
		best := g.table[bitset.Single64(0)][0]
		return &Result{Plan: g.finalize(best), Stats: g.stats}, nil
	}

	// Component 2: enumerate csg-cmp-pairs (Fig. 5, line 3).
	pairs := g.det.Graph.CsgCmpPairs()
	g.stats.CsgCmpPairs = len(pairs)

	for _, pr := range pairs {
		// Component 3: the applicability test per operator whose edge
		// connects the pair (Fig. 5, lines 4-5).
		for _, ei := range g.det.Graph.ConnectingEdges(pr.S1, pr.S2) {
			op := g.det.OpForEdge(g.det.Graph.Edges[ei].Payload)
			if op.Applicable(pr.S1, pr.S2) {
				g.buildPlans(pr.S1, pr.S2, op)
			}
			// Commutative operators (B, K) could also be applied with
			// swapped arguments (Fig. 5, lines 7-8). Under the symmetric
			// C_out cost function the mirrored trees of Fig. 8 (e)-(h)
			// have identical cost and properties, so we skip them.
			if op.Node.Kind.Commutative() && op.Applicable(pr.S2, pr.S1) && !op.Applicable(pr.S1, pr.S2) {
				g.buildPlans(pr.S2, pr.S1, op)
			}
		}
	}

	best := g.table[g.all]
	if len(best) == 0 {
		return nil, errors.New("core: no plan found for the complete relation set (conflicting query graph)")
	}
	for s, plans := range g.table {
		if s != g.all {
			g.stats.TablePlans += len(plans)
		}
	}
	g.stats.TablePlans++
	return &Result{Plan: best[0], Stats: g.stats}, nil
}

// preds collects the predicates of every edge connecting S1 and S2, so
// cyclic query graphs apply all cross predicates at once.
func (g *generator) preds(s1, s2 bitset.Set64) []*query.Predicate {
	var out []*query.Predicate
	for _, ei := range g.det.Graph.ConnectingEdges(s1, s2) {
		out = append(out, g.det.OpForEdge(g.det.Graph.Edges[ei].Payload).Node.Pred)
	}
	return out
}

// buildPlans dispatches to the per-algorithm BuildPlans variant.
func (g *generator) buildPlans(s1, s2 bitset.Set64, op *conflict.Op) {
	t1s, ok1 := g.table[s1]
	t2s, ok2 := g.table[s2]
	if !ok1 || !ok2 {
		// The enumeration may emit pairs whose components are not
		// buildable (or were blocked by applicability); skip them.
		return
	}
	preds := g.preds(s1, s2)
	s := s1.Union(s2)
	for _, t1 := range t1s {
		for _, t2 := range t2s {
			for _, tree := range g.opTrees(t1, t2, op, preds) {
				g.stats.PlansBuilt++
				if s == g.all {
					g.insertTopLevelPlan(s, tree)
				} else {
					g.insert(s, tree)
				}
			}
		}
	}
}

// insert applies the algorithm's retention policy for non-top entries.
func (g *generator) insert(s bitset.Set64, t *plan.Plan) {
	switch g.opts.Algorithm {
	case AlgEAAll:
		g.table[s] = append(g.table[s], t)
	case AlgEAPrune:
		g.pruneDominatedPlans(s, t)
	case AlgBeam:
		g.insertBeam(s, t)
	case AlgH2:
		cur := g.table[s]
		if len(cur) == 0 || g.compareAdjustedCosts(t, cur[0], false) {
			g.table[s] = []*plan.Plan{t}
		}
	default: // DPhyp, H1: single cheapest plan
		cur := g.table[s]
		if len(cur) == 0 || t.Cost < cur[0].Cost {
			g.table[s] = []*plan.Plan{t}
		}
	}
}

// insertTopLevelPlan implements Fig. 9's InsertTopLevelPlan: top-level
// plans are always compared by plain cost and only the best one is kept.
// The final grouping (or its elimination) has already been attached by
// opTrees.
func (g *generator) insertTopLevelPlan(s bitset.Set64, t *plan.Plan) {
	cur := g.table[s]
	if len(cur) == 0 || t.Cost < cur[0].Cost {
		g.table[s] = []*plan.Plan{t}
	}
}

// pruneDominatedPlans implements Fig. 13. Dominance (Def. 4) weakens the
// FD-closure comparison to candidate-key implication, as the paper
// suggests for implementations, and — because our distinct-count estimates
// are plan-dependent — additionally compares the distinct profile of the
// grouping-relevant attributes (the quantitative counterpart of the FD
// condition: it is what determines future grouping cardinalities).
func (g *generator) pruneDominatedPlans(s bitset.Set64, t *plan.Plan) {
	g.fillProfile(s, t)
	cur := g.table[s]
	for _, old := range cur {
		if dominates(old, t) {
			return
		}
	}
	kept := cur[:0]
	for _, old := range cur {
		if !dominates(t, old) {
			kept = append(kept, old)
		}
	}
	g.table[s] = append(kept, t)
}

// profileAttrs returns the attributes whose distinct counts can influence
// future groupings of a plan over S: grouping attributes and join
// attributes of S.
func (g *generator) profileAttrs(s bitset.Set64) bitset.Set64 {
	attrs := g.q.AttrsOf(s)
	rel := g.q.GroupBy.Intersect(attrs)
	for _, pa := range g.predAttrs {
		rel = rel.Union(pa.Intersect(attrs))
	}
	return rel
}

func (g *generator) fillProfile(s bitset.Set64, t *plan.Plan) {
	if t.Profile != nil {
		return
	}
	attrs := g.profileAttrs(s)
	prof := make([]float64, 0, attrs.Len()+s.Len())
	attrs.ForEach(func(a int) {
		prof = append(prof, g.est.Distinct(a, t))
	})
	// Per-relation path cardinalities are a further hidden dimension:
	// they cap future per-relation grouping contributions.
	s.ForEach(func(rel int) {
		prof = append(prof, g.est.RelPathCard(rel, t))
	})
	t.Profile = prof
}

// dominates reports whether a dominates b: cost ≤, cardinality ≤, a's key
// set implies b's (every key of b is implied by some key of a),
// duplicate-freeness at least as strong, and a distinct profile that is
// pointwise ≤.
func dominates(a, b *plan.Plan) bool {
	if a.Cost > b.Cost || a.Card > b.Card {
		return false
	}
	if !a.DupFree && b.DupFree {
		return false
	}
	for i := range a.Profile {
		if a.Profile[i] > b.Profile[i] {
			return false
		}
	}
	for _, kb := range b.Keys {
		implied := false
		for _, ka := range a.Keys {
			if ka.SubsetOf(kb) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// compareAdjustedCosts implements Fig. 12: H2 biases the comparison toward
// more eager plans using the tolerance factor F. It returns whether t
// should replace cur.
func (g *generator) compareAdjustedCosts(t, cur *plan.Plan, topLevel bool) bool {
	et, ec := t.Eagerness(), cur.Eagerness()
	f := g.opts.F
	switch {
	case topLevel || et == ec:
		return t.Cost < cur.Cost
	case et < ec:
		return f*t.Cost < cur.Cost
	default:
		return t.Cost < f*cur.Cost
	}
}

// insertBeam keeps the BeamWidth cheapest plans per entry, preferring
// diversity: a candidate costing the same as a retained plan but with a
// strictly smaller cardinality replaces it (small results are what future
// groupings and joins profit from).
func (g *generator) insertBeam(s bitset.Set64, t *plan.Plan) {
	k := g.opts.BeamWidth
	cur := g.table[s]
	// Insert in cost order.
	pos := len(cur)
	for i, old := range cur {
		if t.Cost < old.Cost || (t.Cost == old.Cost && t.Card < old.Card) {
			pos = i
			break
		}
	}
	if pos >= k {
		return
	}
	cur = append(cur, nil)
	copy(cur[pos+1:], cur[pos:])
	cur[pos] = t
	if len(cur) > k {
		cur = cur[:k]
	}
	g.table[s] = cur
}
