// Package core implements the paper's plan generators (Sec. 4): the
// DP-based driver over csg-cmp-pairs, the OpTrees expansion that adds the
// eager-aggregation variants of Fig. 8, the NeedsGrouping test (Fig. 7),
// the complete generators EA-All (Fig. 9) and EA-Prune (Figs. 13/14), and
// the heuristics H1 (Fig. 10) and H2 (Fig. 12).
package core

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"eagg/internal/bitset"
	"eagg/internal/conflict"
	"eagg/internal/cost"
	"eagg/internal/hypergraph"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// Algorithm selects the plan generator variant.
type Algorithm int

const (
	// AlgDPhyp is the baseline: optimal operator ordering, no eager
	// aggregation (the grouping stays on top).
	AlgDPhyp Algorithm = iota
	// AlgEAAll keeps every subplan: the complete search space of Sec. 4.3.
	AlgEAAll
	// AlgEAPrune is EA-All plus the optimality-preserving dominance
	// pruning of Sec. 4.6.
	AlgEAPrune
	// AlgH1 keeps the single locally cheapest tree per plan class
	// (Sec. 4.4).
	AlgH1
	// AlgH2 is H1 with the eagerness-biased cost comparison of Sec. 4.5.
	AlgH2
	// AlgBeam is an extension in the direction of the paper's future-work
	// remark ("discover better heuristic algorithms"): it keeps the K
	// cheapest plans per plan class, interpolating between H1 (K = 1) and
	// EA-All (K = ∞) — a tunable quality/price dial.
	AlgBeam
)

var algNames = map[Algorithm]string{
	AlgDPhyp:   "DPhyp",
	AlgEAAll:   "EA-All",
	AlgEAPrune: "EA-Prune",
	AlgH1:      "H1",
	AlgH2:      "H2",
	AlgBeam:    "Beam",
}

func (a Algorithm) String() string {
	if s, ok := algNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// PhysMode selects the physical algebra the plan generator may use.
type PhysMode int

const (
	// PhysModeHash (the default) builds plans for the hash layer only —
	// the exact pre-existing behavior, bit for bit.
	PhysModeHash PhysMode = iota
	// PhysModeSort prefers the sort-based layer: every operator with a
	// sort-based form (inner/semi/anti/leftouter joins, all groupings)
	// uses it; full outer joins and groupjoins stay on the hash layer.
	PhysModeSort
	// PhysModeAuto lets both layers compete: the DP table keeps plan
	// classes keyed by (relation set, collapse state, contractual
	// order), so a plan that is more expensive but ordered survives
	// enumeration and can win later by eliminating sorts; selection is
	// by PhysCost (C_out plus physical reorganization overhead).
	PhysModeAuto
)

var physNames = map[PhysMode]string{
	PhysModeHash: "hash",
	PhysModeSort: "sort",
	PhysModeAuto: "auto",
}

func (m PhysMode) String() string {
	if s, ok := physNames[m]; ok {
		return s
	}
	return fmt.Sprintf("PhysMode(%d)", int(m))
}

// ParsePhysMode resolves the user-facing physical-mode names ("hash",
// "sort", "auto"; "" means hash).
func ParsePhysMode(s string) (PhysMode, error) {
	switch s {
	case "", "hash":
		return PhysModeHash, nil
	case "sort":
		return PhysModeSort, nil
	case "auto":
		return PhysModeAuto, nil
	}
	return 0, fmt.Errorf("unknown physical mode %q (want hash, sort or auto)", s)
}

// Options configure an optimization run.
type Options struct {
	Algorithm Algorithm
	// F is H2's tolerance factor (Sec. 4.5); the paper evaluates 1.01,
	// 1.03, 1.05 and 1.1. Values ≤ 1 make H2 behave like H1.
	F float64
	// BeamWidth is the number of plans AlgBeam retains per plan class
	// (default 4). BeamWidth 1 coincides with H1.
	BeamWidth int
	// FDReduceGroups enables FD-based reduction of grouping attribute
	// sets in the cardinality estimator (sharper estimates; departs from
	// the paper's evaluation conditions — see internal/cost).
	FDReduceGroups bool
	// Workers is the number of goroutines the DP driver uses. 0 selects
	// GOMAXPROCS; 1 runs the sequential reference path. The parallel
	// driver buckets csg-cmp-pairs by result-set cardinality and seals
	// one level at a time, so any worker count produces plans
	// bit-identical to the sequential run (see parallel.go).
	Workers int
	// Stats overrides the estimator's cardinality source (nil = the pure
	// selectivity model). Pass a cost.FeedbackOverlay built from an
	// execution profile to re-optimize with measured cardinalities
	// (engine.Reoptimize drives that loop). The source must be safe for
	// concurrent reads and must not change during the optimization:
	// parallel workers share it across their estimator clones.
	Stats cost.CardSource
	// Phys selects the physical algebra (hash only, sort-based, or both
	// competing). The default PhysModeHash reproduces the pre-existing
	// plans exactly; the sort modes additionally track contractual
	// orders, key DP plan classes by them, and rank plans by PhysCost.
	Phys PhysMode
	// ForceWide routes the run through the multi-word wide set
	// representation even when the query fits the Set64 fast path. The
	// two paths are bit-identical (the differential tests pin this);
	// the flag exists for those tests and for diagnostics.
	ForceWide bool
	// PairBudget bounds the csg-cmp-pair enumeration. 0 means the
	// default: unlimited for queries of ≤63 relations, and
	// DefaultLargePairBudget beyond (graphs like large stars and
	// cliques have exponentially many connected subgraphs, so exact
	// enumeration must be cut off somewhere). When the budget is hit
	// the exact DP is abandoned and a deterministic greedy fallback
	// (beamed left-deep construction, see runGreedy) produces the plan;
	// Stats.PairBudgetExceeded reports that this happened.
	PairBudget int
}

// DefaultLargePairBudget is the csg-cmp-pair budget applied to queries
// beyond 63 relations when Options.PairBudget is unset. It admits the
// exact (and parallel) DP for a 100-relation chain (~167k pairs) while
// cutting off shapes with exponential connected-subgraph counts (a
// 100-relation star) after ~1M pairs.
const DefaultLargePairBudget = 1 << 20

// Stats reports search effort.
type Stats struct {
	CsgCmpPairs int // pairs enumerated
	PlansBuilt  int // operator trees constructed (incl. discarded)
	TablePlans  int // plans retained across all DP-table entries
	Workers     int // goroutines the DP driver used (1 = sequential)
	// Levels holds one entry per sealed DP level, in processing order.
	Levels []LevelStat
	// ShardContention counts contended shard-lock acquisitions in the
	// parallel driver's staging table (always 0 for the sequential path).
	ShardContention int64
	// PairBudgetExceeded reports that the csg-cmp-pair enumeration hit
	// its budget and the plan came from the greedy fallback instead of
	// the exact DP.
	PairBudgetExceeded bool
}

// LevelStat records the work done for one DP level: all csg-cmp-pairs
// whose result set |S1 ∪ S2| has the same cardinality.
type LevelStat struct {
	Level    int           // result-set cardinality
	Pairs    int           // csg-cmp-pairs processed
	Subsets  int           // distinct subproblem keys (the parallel task granularity)
	Duration time.Duration // wall-clock time to seal the level
}

// Result is an optimization outcome.
type Result struct {
	Plan  *plan.Plan
	Stats Stats
}

// Optimize runs the selected plan generator on the query.
func Optimize(q *query.Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if opts.Algorithm == AlgH2 && opts.F <= 0 {
		return nil, errors.New("core: H2 requires a tolerance factor F > 0")
	}
	if opts.Algorithm == AlgBeam && opts.BeamWidth <= 0 {
		opts.BeamWidth = 4
	}
	est := cost.NewEstimator(q)
	est.FDReduceGroups = opts.FDReduceGroups
	if opts.Stats != nil {
		est.Source = opts.Stats
	}
	// Representation dispatch: ≤63 relations run on Set64 (zero-overhead
	// fast path, bit-for-bit the pre-generics behavior); larger queries —
	// or any query under ForceWide — run on the multi-word bitset.Wide.
	// Everything downstream of the set representation is shared, so the
	// two paths retain identical plans.
	if len(q.Relations) <= 63 && !opts.ForceWide {
		return optimizeAs[bitset.Set64](q, est, opts)
	}
	return optimizeAs[bitset.Wide](q, est, opts)
}

func optimizeAs[S bitset.RelSet[S]](q *query.Query, est *cost.Estimator, opts Options) (*Result, error) {
	g := &generator[S]{
		q:    q,
		det:  conflict.Detect[S](q),
		est:  est,
		opts: opts,
		all:  bitset.RangeIn[S](0, len(q.Relations)),
	}
	g.allV = g.all.ToV()
	g.prepare()
	return g.run()
}

// generator carries the state of one optimization run. It is generic in
// the relation-set representation S; attribute sets (and the relation
// sets stored inside plans) stay bitset.VSet, so the estimator and plan
// layers hold a single code path regardless of S.
type generator[S bitset.RelSet[S]] struct {
	q    *query.Query
	det  *conflict.Detection[S]
	est  *cost.Estimator
	opts Options
	all  S
	allV bitset.VSet // g.all in VSet form, for comparing plan.Plan.Rels

	// table maps a relation set to its retained plans. Heuristic
	// algorithms keep exactly one entry; EA-All/EA-Prune keep lists. The
	// entry for the complete set holds the single best top-level plan.
	table map[S][]*plan.Plan

	// aggSrc[i] is the set of relations aggregate i draws from; aggOK[i]
	// whether it is decomposable.
	aggSrc []bitset.VSet
	aggOK  []bool

	// predAttrs[i] caches op i's predicate attribute set, predRels[i] the
	// relations those attributes come from, and profAttrs the union of the
	// grouping attributes with every predicate's attributes — all constant
	// per query, all on the per-pair hot path (gPlus, profileAttrs).
	predAttrs []bitset.VSet
	predRels  []bitset.VSet
	profAttrs bitset.VSet

	// gjRight is the union of all groupjoin right-subtree relations;
	// groupings are never pushed there because they would aggregate away
	// the inputs of the groupjoin's own vector F̄.
	gjRight bitset.VSet

	stats Stats
}

func (g *generator[S]) prepare() {
	g.table = make(map[S][]*plan.Plan)
	if g.q.HasGrouping {
		g.aggSrc = g.q.AggSourceRels()
		g.aggOK = make([]bool, len(g.q.Aggregates))
		for i, a := range g.q.Aggregates {
			g.aggOK[i] = a.Kind.Decomposable()
		}
	}
	g.profAttrs = g.q.GroupBy
	for _, op := range g.det.Ops {
		pa := op.Node.Pred.Attrs()
		g.predAttrs = append(g.predAttrs, pa)
		g.predRels = append(g.predRels, g.q.RelsOf(pa))
		g.profAttrs = g.profAttrs.Union(pa)
		if op.Node.Kind == query.KindGroupJoin {
			g.gjRight = g.gjRight.Union(op.RightRels.ToV())
		}
	}
}

// pairBudget resolves Options.PairBudget: explicit value if set,
// otherwise unlimited for ≤63-relation queries (keeping every small
// query — including ForceWide differential runs — on the exact DP) and
// DefaultLargePairBudget beyond.
func (g *generator[S]) pairBudget() int {
	if g.opts.PairBudget > 0 {
		return g.opts.PairBudget
	}
	if len(g.q.Relations) > 63 {
		return DefaultLargePairBudget
	}
	return 0
}

func (g *generator[S]) run() (*Result, error) {
	// Component 1: initial access paths (Fig. 5, lines 1-2).
	for r := range g.q.Relations {
		p := g.est.Scan(r)
		if g.physOn() {
			g.est.PhysifyScan(p) // contractual scan order, zero overhead
		}
		g.table[bitset.SingleIn[S](r)] = []*plan.Plan{p}
	}
	if len(g.q.Relations) == 1 {
		g.stats.Workers = 1 // no pairs to enumerate; trivially sequential
		best := g.table[bitset.SingleIn[S](0)][0]
		return &Result{Plan: g.finalize(g.est, best), Stats: g.stats}, nil
	}

	// Component 2: enumerate csg-cmp-pairs (Fig. 5, line 3). They come
	// back ordered by |S1 ∪ S2|, so the DP levels are contiguous runs.
	pairs, complete := g.det.Graph.CsgCmpPairsBudget(g.pairBudget())
	g.stats.CsgCmpPairs = len(pairs)

	if !complete {
		// The enumeration was cut off: the partial pair list is useless
		// for DP (sub-pairs may be missing), so discard it and build the
		// plan with the deterministic greedy fallback. It is sequential
		// regardless of Workers, so the workers-invariance contract holds
		// trivially.
		g.stats.PairBudgetExceeded = true
		g.stats.Workers = 1
		g.runGreedy()
	} else {
		workers := g.opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		g.stats.Workers = workers
		if workers > 1 {
			g.runLevelsParallel(pairs, workers)
		} else {
			g.runLevelsSequential(pairs)
		}
	}

	best := g.table[g.all]
	if len(best) == 0 {
		return nil, errors.New("core: no plan found for the complete relation set (conflicting query graph)")
	}
	for s, plans := range g.table {
		if s != g.all {
			g.stats.TablePlans += len(plans)
		}
	}
	g.stats.TablePlans++
	return &Result{Plan: best[0], Stats: g.stats}, nil
}

// forEachLevel calls fn once per DP level with the contiguous slice of
// pairs whose result set has that cardinality.
func forEachLevel[S bitset.RelSet[S]](pairs []hypergraph.CsgCmpPair[S], fn func(level int, chunk []hypergraph.CsgCmpPair[S])) {
	for start := 0; start < len(pairs); {
		level := pairs[start].S1.Union(pairs[start].S2).Len()
		end := start + 1
		for end < len(pairs) && pairs[end].S1.Union(pairs[end].S2).Len() == level {
			end++
		}
		fn(level, pairs[start:end])
		start = end
	}
}

// runLevelsSequential is the reference driver: it consumes the pairs in
// enumeration order, exactly like the paper's Fig. 5 loop, recording
// per-level timing along the way.
func (g *generator[S]) runLevelsSequential(pairs []hypergraph.CsgCmpPair[S]) {
	forEachLevel(pairs, func(level int, chunk []hypergraph.CsgCmpPair[S]) {
		start := time.Now()
		subsets := make(map[S]struct{}, len(chunk))
		for _, pr := range chunk {
			s := pr.S1.Union(pr.S2)
			subsets[s] = struct{}{}
			g.processPair(pr, s)
		}
		g.stats.Levels = append(g.stats.Levels, LevelStat{
			Level: level, Pairs: len(chunk), Subsets: len(subsets), Duration: time.Since(start),
		})
	})
}

// forEachApplicable runs component 3 for one pair: the applicability test
// per operator whose edge connects it (Fig. 5, lines 4-5), invoking apply
// for every admissible orientation. Shared by the sequential and parallel
// drivers so the commutativity guard cannot diverge between them.
func (g *generator[S]) forEachApplicable(pr hypergraph.CsgCmpPair[S], apply func(s1, s2 S, op *conflict.Op[S])) {
	// Edge scan inlined from ConnectingEdges: this runs once per
	// csg-cmp-pair and must not allocate an index slice every time.
	for i := range g.det.Graph.Edges {
		e := &g.det.Graph.Edges[i]
		if !((e.Left.SubsetOf(pr.S1) && e.Right.SubsetOf(pr.S2)) ||
			(e.Left.SubsetOf(pr.S2) && e.Right.SubsetOf(pr.S1))) {
			continue
		}
		op := g.det.OpForEdge(e.Payload)
		if op.Applicable(pr.S1, pr.S2) {
			apply(pr.S1, pr.S2, op)
		}
		// Commutative operators (B, K) could also be applied with
		// swapped arguments (Fig. 5, lines 7-8). Under the symmetric
		// C_out cost function the mirrored trees of Fig. 8 (e)-(h)
		// have identical cost and properties, so the hash mode skips
		// them. With the sort-based layer the mirror matters for inner
		// joins: the output preserves the *left* input's contractual
		// order and the merge may reuse either side's order, so both
		// orientations are enumerated. (The full outerjoin has no sort
		// form; its mirror stays redundant.)
		if op.Node.Kind.Commutative() && op.Applicable(pr.S2, pr.S1) &&
			(!op.Applicable(pr.S1, pr.S2) ||
				(g.physOn() && op.Node.Kind == query.KindJoin)) {
			apply(pr.S2, pr.S1, op)
		}
	}
}

// processPair is the sequential per-pair step.
func (g *generator[S]) processPair(pr hypergraph.CsgCmpPair[S], s S) {
	topLevel := s == g.all
	g.forEachApplicable(pr, func(s1, s2 S, op *conflict.Op[S]) {
		g.applySequential(s, s1, s2, op, topLevel)
	})
}

func (g *generator[S]) applySequential(s, s1, s2 S, op *conflict.Op[S], topLevel bool) {
	entry, built := g.buildInto(g.est, g.table[s], s, s1, s2, op, topLevel)
	g.stats.PlansBuilt += built
	if built > 0 {
		g.table[s] = entry
	}
}

// preds collects the predicates of every edge connecting S1 and S2, so
// cyclic query graphs apply all cross predicates at once.
func (g *generator[S]) preds(s1, s2 S) []*query.Predicate {
	// Inlined ConnectingEdges: scanning the edge list directly avoids
	// materializing the index slice on the per-pair hot path.
	out := make([]*query.Predicate, 0, 2)
	for i := range g.det.Graph.Edges {
		e := &g.det.Graph.Edges[i]
		if (e.Left.SubsetOf(s1) && e.Right.SubsetOf(s2)) ||
			(e.Left.SubsetOf(s2) && e.Right.SubsetOf(s1)) {
			out = append(out, g.det.OpForEdge(e.Payload).Node.Pred)
		}
	}
	return out
}

// buildInto constructs every operator tree for (s1, s2, op) — reading the
// component subplans from sealed table levels — and folds each tree
// through the algorithm's retention policy into entry, the caller-owned
// plan list for the result set s. It returns the updated entry and the
// number of trees built. The table is only ever read here, which is what
// lets the parallel driver's level workers share it lock-free.
func (g *generator[S]) buildInto(est *cost.Estimator, entry []*plan.Plan, s, s1, s2 S, op *conflict.Op[S], topLevel bool) ([]*plan.Plan, int) {
	t1s, ok1 := g.table[s1]
	t2s, ok2 := g.table[s2]
	if !ok1 || !ok2 {
		// The enumeration may emit pairs whose components are not
		// buildable (or were blocked by applicability); skip them.
		return entry, 0
	}
	preds := g.preds(s1, s2)
	built := 0
	for _, t1 := range t1s {
		for _, t2 := range t2s {
			for _, tree := range g.opTrees(est, t1, t2, op, preds) {
				built++
				if topLevel {
					entry = g.insertTopLevelPlan(entry, tree)
				} else {
					entry = g.insert(est, s, entry, tree)
				}
			}
		}
	}
	return entry, built
}

// insert applies the algorithm's retention policy for non-top entries and
// returns the updated plan list. In the sort/auto physical modes the
// policy applies per plan class (see phys.go).
func (g *generator[S]) insert(est *cost.Estimator, s S, entry []*plan.Plan, t *plan.Plan) []*plan.Plan {
	if g.physOn() {
		return g.insertPhys(est, s, entry, t)
	}
	switch g.opts.Algorithm {
	case AlgEAAll:
		return append(entry, t)
	case AlgEAPrune:
		return g.pruneDominatedPlans(est, s, entry, t)
	case AlgBeam:
		return g.insertBeam(entry, t)
	case AlgH2:
		if len(entry) == 0 {
			return []*plan.Plan{t}
		}
		if g.compareAdjustedCosts(t, entry[0], false) {
			entry[0] = t
		}
		return entry
	default: // DPhyp, H1: single cheapest plan
		if len(entry) == 0 {
			return []*plan.Plan{t}
		}
		if t.Cost < entry[0].Cost {
			entry[0] = t
		}
		return entry
	}
}

// insertTopLevelPlan implements Fig. 9's InsertTopLevelPlan: top-level
// plans are always compared by plain cost — physical cost in the
// sort/auto modes — and only the best one is kept. The final grouping
// (or its elimination) has already been attached by opTrees.
func (g *generator[S]) insertTopLevelPlan(entry []*plan.Plan, t *plan.Plan) []*plan.Plan {
	if len(entry) == 0 {
		return []*plan.Plan{t}
	}
	if g.physOn() {
		if t.PhysCost < entry[0].PhysCost {
			entry[0] = t
		}
		return entry
	}
	if t.Cost < entry[0].Cost {
		entry[0] = t
	}
	return entry
}

// pruneDominatedPlans implements Fig. 13. Dominance (Def. 4) weakens the
// FD-closure comparison to candidate-key implication, as the paper
// suggests for implementations, and — because our distinct-count estimates
// are plan-dependent — additionally compares the distinct profile of the
// grouping-relevant attributes (the quantitative counterpart of the FD
// condition: it is what determines future grouping cardinalities).
func (g *generator[S]) pruneDominatedPlans(est *cost.Estimator, s S, entry []*plan.Plan, t *plan.Plan) []*plan.Plan {
	g.fillProfileWith(est, s, t)
	for _, old := range entry {
		if dominates(old, t) {
			return entry
		}
	}
	kept := entry[:0]
	for _, old := range entry {
		if !dominates(t, old) {
			kept = append(kept, old)
		}
	}
	return append(kept, t)
}

// profileAttrs returns the attributes whose distinct counts can influence
// future groupings of a plan over S: grouping attributes and join
// attributes of S.
func (g *generator[S]) profileAttrs(sv bitset.VSet) bitset.VSet {
	// ∩ distributes over ∪, so the per-predicate loop collapses onto the
	// precomputed union: (G ∪ ⋃ᵢ predAttrs[i]) ∩ attrs(S).
	return g.profAttrs.Intersect(g.q.AttrsOf(sv))
}

func (g *generator[S]) fillProfile(s S, t *plan.Plan) {
	g.fillProfileWith(g.est, s, t)
}

// fillProfileWith computes the profile against the given estimator so
// parallel workers can fill profiles through their own clone. Profiles are
// pure functions of the plan and the query, so every clone produces the
// same values.
func (g *generator[S]) fillProfileWith(est *cost.Estimator, s S, t *plan.Plan) {
	if t.Profile != nil {
		return
	}
	sv := s.ToV()
	attrs := g.profileAttrs(sv)
	prof := make([]float64, 0, attrs.Len()+sv.Len())
	// One path walk per relation of S instead of one per profile attribute
	// plus one per relation: for a plan containing rel,
	// Distinct(a, t) = max(1, min(Q.Distinct[a], RelPathCard(rel(a), t)))
	// — distinctWalk and RelPathCard traverse the same root-to-scan path
	// and fold the same cardinalities through an exact float min, so the
	// identity is bit-for-bit. This loop was the EA-Prune hot spot.
	pathCard := make([]float64, len(g.q.Relations))
	for w, nw := 0, sv.NumWords(); w < nw; w++ {
		for bs := sv.Word(w); bs != 0; bs &= bs - 1 {
			rel := w*64 + bits.TrailingZeros64(bs)
			pathCard[rel] = est.RelPathCard(rel, t)
		}
	}
	for w, nw := 0, attrs.NumWords(); w < nw; w++ {
		for bs := attrs.Word(w); bs != 0; bs &= bs - 1 {
			a := w*64 + bits.TrailingZeros64(bs)
			d := g.q.Distinct[a]
			if pc := pathCard[g.q.AttrRel[a]]; pc < d {
				d = pc
			}
			if d < 1 {
				d = 1
			}
			prof = append(prof, d)
		}
	}
	// Per-relation path cardinalities are a further hidden dimension:
	// they cap future per-relation grouping contributions.
	for w, nw := 0, sv.NumWords(); w < nw; w++ {
		for bs := sv.Word(w); bs != 0; bs &= bs - 1 {
			prof = append(prof, pathCard[w*64+bits.TrailingZeros64(bs)])
		}
	}
	t.Profile = prof
}

// dominates reports whether a dominates b: cost ≤, cardinality ≤, a's key
// set implies b's (every key of b is implied by some key of a),
// duplicate-freeness at least as strong, and a distinct profile that is
// pointwise ≤.
func dominates(a, b *plan.Plan) bool {
	if a.Cost > b.Cost || a.Card > b.Card {
		return false
	}
	if !a.DupFree && b.DupFree {
		return false
	}
	for i := range a.Profile {
		if a.Profile[i] > b.Profile[i] {
			return false
		}
	}
	for _, kb := range b.Keys {
		implied := false
		for _, ka := range a.Keys {
			if ka.SubsetOf(kb) {
				implied = true
				break
			}
		}
		if !implied {
			return false
		}
	}
	return true
}

// compareAdjustedCosts implements Fig. 12: H2 biases the comparison toward
// more eager plans using the tolerance factor F. It returns whether t
// should replace cur.
func (g *generator[S]) compareAdjustedCosts(t, cur *plan.Plan, topLevel bool) bool {
	et, ec := t.Eagerness(), cur.Eagerness()
	f := g.opts.F
	switch {
	case topLevel || et == ec:
		return t.Cost < cur.Cost
	case et < ec:
		return f*t.Cost < cur.Cost
	default:
		return t.Cost < f*cur.Cost
	}
}

// insertBeam keeps the BeamWidth cheapest plans per entry, preferring
// diversity: a candidate costing the same as a retained plan but with a
// strictly smaller cardinality replaces it (small results are what future
// groupings and joins profit from).
func (g *generator[S]) insertBeam(entry []*plan.Plan, t *plan.Plan) []*plan.Plan {
	k := g.opts.BeamWidth
	// Insert in cost order.
	pos := len(entry)
	for i, old := range entry {
		if t.Cost < old.Cost || (t.Cost == old.Cost && t.Card < old.Card) {
			pos = i
			break
		}
	}
	if pos >= k {
		return entry
	}
	entry = append(entry, nil)
	copy(entry[pos+1:], entry[pos:])
	entry[pos] = t
	if len(entry) > k {
		entry = entry[:k]
	}
	return entry
}
