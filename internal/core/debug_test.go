package core

import (
	"math/rand"
	"testing"

	"eagg/internal/bitset"
	"eagg/internal/conflict"
	"eagg/internal/cost"
	"eagg/internal/plan"
	"eagg/internal/query"
	"eagg/internal/randquery"
)

// TestPruneCoverageInvariant checks the pruning invariant behind Sec. 4.6
// set by set, which is much stronger than comparing final costs: every
// plan the exhaustive EA-All table holds must be dominated (or matched) by
// a plan EA-Prune retained for the same relation set. A violation means a
// future-relevant plan property escaped the dominance test (that is
// exactly how the estimator inconsistencies fixed during development were
// found).
func TestPruneCoverageInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(20151))
	for n := 3; n <= 6; n++ {
		for trial := 0; trial < 8; trial++ {
			q := randquery.Generate(rng, randquery.Params{Relations: n})
			all := tableOf(t, q, AlgEAAll)
			pruned := tableOf(t, q, AlgEAPrune)
			full := bitset.Range64(0, n)
			for s, plans := range all {
				if s == full {
					continue
				}
				for _, p := range plans {
					covered := false
					for _, kp := range pruned[s] {
						if dominates(kp, p) {
							covered = true
							break
						}
					}
					if !covered {
						t.Fatalf("n=%d trial=%d set %v: plan not covered by EA-Prune retentions\ncost=%.6g card=%.6g keys=%v\n%v",
							n, trial, s, p.Cost, p.Card, p.Keys, p.String())
					}
				}
			}
		}
	}
}

// tableOf runs the generator and returns its DP table with profiles
// filled, so dominance can be evaluated post hoc.
func tableOf(t *testing.T, q *query.Query, alg Algorithm) map[bitset.Set64][]*plan.Plan {
	t.Helper()
	g := &generator[bitset.Set64]{
		q:    q,
		det:  conflict.Detect[bitset.Set64](q),
		est:  cost.NewEstimator(q),
		opts: Options{Algorithm: alg},
		all:  bitset.Range64(0, len(q.Relations)),
	}
	g.allV = g.all.ToV()
	g.prepare()
	if _, err := g.run(); err != nil {
		t.Fatal(err)
	}
	for s, plans := range g.table {
		for _, p := range plans {
			g.fillProfile(s, p)
		}
	}
	return g.table
}
