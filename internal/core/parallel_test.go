package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"eagg/internal/bitset"
	"eagg/internal/cost"
	"eagg/internal/hypergraph"
	"eagg/internal/plan"
	"eagg/internal/query"
	"eagg/internal/randquery"
)

// TestParallelDeterminism is the central contract of the parallel driver:
// for every algorithm, optimizing with Workers: 8 must return a plan that
// is bit-identical (structure, cardinalities, costs, keys) to the
// sequential reference path, with identical search-effort counters. The
// loop covers well over 50 random queries across relation counts.
func TestParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(20152))
	type algCfg struct {
		alg  Algorithm
		f    float64
		maxN int
	}
	algs := []algCfg{
		{AlgDPhyp, 0, 10},
		{AlgH1, 0, 10},
		{AlgH2, 1.03, 10},
		{AlgBeam, 0, 10},
		{AlgEAPrune, 0, 9},
		{AlgEAAll, 0, 7},
	}
	queries := 0
	for n := 3; n <= 10; n++ {
		for trial := 0; trial < 8; trial++ {
			q := randquery.Generate(rng, randquery.Params{Relations: n})
			queries++
			for _, c := range algs {
				if n > c.maxN {
					continue
				}
				seq, err := Optimize(q, Options{Algorithm: c.alg, F: c.f, Workers: 1})
				if err != nil {
					t.Fatalf("n=%d trial=%d %v sequential: %v", n, trial, c.alg, err)
				}
				par, err := Optimize(q, Options{Algorithm: c.alg, F: c.f, Workers: 8})
				if err != nil {
					t.Fatalf("n=%d trial=%d %v parallel: %v", n, trial, c.alg, err)
				}
				if !plan.Equal(seq.Plan, par.Plan) {
					t.Fatalf("n=%d trial=%d %v: parallel plan differs\nsequential (cost %.17g):\n%v\nparallel (cost %.17g):\n%v",
						n, trial, c.alg, seq.Plan.Cost, seq.Plan, par.Plan.Cost, par.Plan)
				}
				if seq.Stats.PlansBuilt != par.Stats.PlansBuilt ||
					seq.Stats.TablePlans != par.Stats.TablePlans ||
					seq.Stats.CsgCmpPairs != par.Stats.CsgCmpPairs {
					t.Fatalf("n=%d trial=%d %v: stats diverged: sequential %+v parallel %+v",
						n, trial, c.alg, seq.Stats, par.Stats)
				}
			}
		}
	}
	if queries < 50 {
		t.Fatalf("workload too small: %d queries", queries)
	}
}

// TestWorkersOption pins the Workers semantics: 0 resolves to GOMAXPROCS,
// explicit counts are reported back, and the sequential path never touches
// a shard lock.
func TestWorkersOption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := randquery.Generate(rng, randquery.Params{Relations: 6})

	res, err := Optimize(q, Options{Algorithm: AlgH1})
	if err != nil {
		t.Fatal(err)
	}
	if want := runtime.GOMAXPROCS(0); res.Stats.Workers != want {
		t.Errorf("Workers 0: got %d workers, want GOMAXPROCS %d", res.Stats.Workers, want)
	}

	res, err = Optimize(q, Options{Algorithm: AlgH1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers != 1 {
		t.Errorf("Workers 1: got %d", res.Stats.Workers)
	}
	if res.Stats.ShardContention != 0 {
		t.Errorf("sequential path reported shard contention %d", res.Stats.ShardContention)
	}
	if len(res.Stats.Levels) == 0 {
		t.Error("no per-level stats recorded")
	}
	pairs := 0
	for _, l := range res.Stats.Levels {
		pairs += l.Pairs
		if l.Level < 2 || l.Level > 6 {
			t.Errorf("implausible level %d", l.Level)
		}
		if l.Subsets <= 0 || l.Subsets > l.Pairs {
			t.Errorf("level %d: %d subsets for %d pairs", l.Level, l.Subsets, l.Pairs)
		}
	}
	if pairs != res.Stats.CsgCmpPairs {
		t.Errorf("level pairs sum %d != enumerated pairs %d", pairs, res.Stats.CsgCmpPairs)
	}
}

// TestSingleRelationStats pins the Stats contract on the trivial path: a
// single-relation query enumerates no pairs, so the driver is trivially
// sequential and must report Workers == 1 regardless of the option.
func TestSingleRelationStats(t *testing.T) {
	q := query.New()
	r := q.AddRelation("only", 1000)
	q.AddAttr(r, "only.a", 10)
	q.Root = &query.OpNode{Kind: query.KindScan, Rel: r}
	res, err := Optimize(q, Options{Algorithm: AlgH1, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers != 1 {
		t.Errorf("single-relation query reported Workers %d, want 1", res.Stats.Workers)
	}
}

// TestGroupBySubset checks the parallel work-unit construction: keys keep
// first-appearance order, pair order within a key is preserved, and the
// tasks partition the chunk.
func TestGroupBySubset(t *testing.T) {
	mk := func(a, b uint64) hypergraph.CsgCmpPair[bitset.Set64] {
		return hypergraph.CsgCmpPair[bitset.Set64]{S1: bitset.Set64(a), S2: bitset.Set64(b)}
	}
	chunk := []hypergraph.CsgCmpPair[bitset.Set64]{
		mk(0b0011, 0b0100), // union 0b0111
		mk(0b1001, 0b0110), // union 0b1111
		mk(0b0101, 0b0010), // union 0b0111 again
		mk(0b0110, 0b0001), // union 0b0111 again
	}
	tasks := groupBySubset(chunk)
	if len(tasks) != 2 {
		t.Fatalf("got %d tasks, want 2", len(tasks))
	}
	if tasks[0].s != 0b0111 || tasks[1].s != 0b1111 {
		t.Fatalf("task keys out of order: %v, %v", tasks[0].s, tasks[1].s)
	}
	if len(tasks[0].pairs) != 3 || len(tasks[1].pairs) != 1 {
		t.Fatalf("pair partition wrong: %d + %d", len(tasks[0].pairs), len(tasks[1].pairs))
	}
	if tasks[0].pairs[0] != chunk[0] || tasks[0].pairs[1] != chunk[2] || tasks[0].pairs[2] != chunk[3] {
		t.Error("pair order within a task not preserved")
	}
}

// TestShardOf checks range and that the finalizer actually spreads the
// popcount-clustered keys of one level over many shards.
func TestShardOf(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 63; i++ {
		for j := i + 1; j < 63; j++ {
			s := bitset.Single64(i).Union(bitset.Single64(j))
			sh := shardOf(s)
			if sh < 0 || sh >= tableShards {
				t.Fatalf("shard %d out of range for %v", sh, s)
			}
			seen[sh] = true
		}
	}
	if len(seen) < tableShards/2 {
		t.Errorf("2-element keys hit only %d/%d shards", len(seen), tableShards)
	}
}

// TestStagingTable exercises put/seal round trips including the reset
// between levels.
func TestStagingTable(t *testing.T) {
	st := newStagingTable[bitset.Set64]()
	table := map[bitset.Set64][]*plan.Plan{}
	p := &plan.Plan{}
	for i := 0; i < 100; i++ {
		st.put(bitset.Set64(i+1), []*plan.Plan{p})
	}
	st.sealInto(table)
	if len(table) != 100 {
		t.Fatalf("sealed %d entries, want 100", len(table))
	}
	st.sealInto(table) // shards must be empty now
	if len(table) != 100 {
		t.Fatalf("re-seal changed the table: %d entries", len(table))
	}
}

// TestParallelExercisesPool makes sure the determinism guarantee is not
// vacuous: on a query large enough to fan out, the parallel run must
// actually have used multiple workers over multi-subset levels.
func TestParallelExercisesPool(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := randquery.Generate(rng, randquery.Params{Relations: 10})
	res, err := Optimize(q, Options{Algorithm: AlgH1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Workers != 4 {
		t.Fatalf("got %d workers", res.Stats.Workers)
	}
	multi := 0
	for _, l := range res.Stats.Levels {
		if l.Subsets > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no level had more than one subset task; pool never exercised")
	}
	// Spot-check the level report shape for a 10-relation query.
	if got := len(res.Stats.Levels); got < 5 {
		t.Errorf("only %d levels recorded", got)
	}
	t.Log(fmt.Sprintf("levels=%d pairs=%d contention=%d", len(res.Stats.Levels), res.Stats.CsgCmpPairs, res.Stats.ShardContention))
}

// TestParallelDeterminismWithStats extends the determinism contract to
// the stats-provider seam: optimizer workers share one read-only
// FeedbackOverlay across their estimator clones, and any worker count
// must return plans bit-identical to the sequential path under the same
// overlay. The overlay is synthesized from a first (model-only) run by
// perturbing every costed operator's estimate, so lookups actually fire
// on hot paths.
func TestParallelDeterminismWithStats(t *testing.T) {
	rng := rand.New(rand.NewSource(8841))
	for n := 3; n <= 9; n++ {
		for trial := 0; trial < 4; trial++ {
			q := randquery.Generate(rng, randquery.Params{Relations: n})
			base, err := Optimize(q, Options{Algorithm: AlgEAPrune, Workers: 1})
			if err != nil {
				t.Fatalf("n=%d trial=%d base: %v", n, trial, err)
			}
			overlay := cost.NewFeedbackOverlay()
			var harvest func(p *plan.Plan)
			harvest = func(p *plan.Plan) {
				if p == nil {
					return
				}
				if key, ok := cost.KeyOf(p); ok {
					overlay.Set(key, p.Card/3+1) // a "measurement" ≠ the model
				}
				harvest(p.Left)
				harvest(p.Right)
			}
			harvest(base.Plan)
			if overlay.Len() == 0 {
				continue
			}
			seq, err := Optimize(q, Options{Algorithm: AlgEAPrune, Workers: 1, Stats: overlay})
			if err != nil {
				t.Fatalf("n=%d trial=%d seq overlay: %v", n, trial, err)
			}
			par, err := Optimize(q, Options{Algorithm: AlgEAPrune, Workers: 8, Stats: overlay})
			if err != nil {
				t.Fatalf("n=%d trial=%d par overlay: %v", n, trial, err)
			}
			if !plan.Equal(seq.Plan, par.Plan) {
				t.Fatalf("n=%d trial=%d: overlay plans diverge\nseq:\n%v\npar:\n%v", n, trial, seq.Plan, par.Plan)
			}
		}
	}
}
