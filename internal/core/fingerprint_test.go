package core

import (
	"math/rand"
	"testing"

	"eagg/internal/cost"
	"eagg/internal/query"
	"eagg/internal/randquery"
)

// fpQuery builds a deterministic 5-relation query; equal seeds yield
// structurally identical (but independently allocated) queries.
func fpQuery(seed int64, rels int) *query.Query {
	rng := rand.New(rand.NewSource(seed))
	return randquery.Generate(rng, randquery.Params{Relations: rels})
}

// TestFingerprintInvariants pins what the plan-cache key must and must
// not depend on: Workers and Stats never change the fingerprint (plans
// are shareable across both), while every plan-shaping input — algorithm,
// physical mode, statistics, selectivities — changes it.
func TestFingerprintInvariants(t *testing.T) {
	q := fpQuery(7, 5)
	base := Fingerprint(q, Options{Algorithm: AlgEAPrune})

	// Workers and Stats are excluded by design.
	if got := Fingerprint(q, Options{Algorithm: AlgEAPrune, Workers: 8}); got != base {
		t.Error("Workers changed the fingerprint")
	}
	ov := cost.NewFeedbackOverlay()
	if got := Fingerprint(q, Options{Algorithm: AlgEAPrune, Stats: ov}); got != base {
		t.Error("Stats changed the fingerprint")
	}
	// F is irrelevant outside H2, BeamWidth outside Beam.
	if got := Fingerprint(q, Options{Algorithm: AlgEAPrune, F: 1.05, BeamWidth: 7}); got != base {
		t.Error("F/BeamWidth changed a non-H2/non-Beam fingerprint")
	}
	// BeamWidth 0 and the resolved default 4 coincide for Beam.
	if Fingerprint(q, Options{Algorithm: AlgBeam}) != Fingerprint(q, Options{Algorithm: AlgBeam, BeamWidth: 4}) {
		t.Error("Beam default width not normalized")
	}

	// Plan-shaping differences must separate.
	diff := []Options{
		{Algorithm: AlgDPhyp},
		{Algorithm: AlgH2, F: 1.03},
		{Algorithm: AlgEAPrune, Phys: PhysModeSort},
		{Algorithm: AlgEAPrune, Phys: PhysModeAuto},
		{Algorithm: AlgEAPrune, FDReduceGroups: true},
		{Algorithm: AlgBeam, BeamWidth: 8},
	}
	seen := map[string]int{base: -1}
	for i, o := range diff {
		fp := Fingerprint(q, o)
		if j, dup := seen[fp]; dup {
			t.Errorf("options %d and %d collide: %+v", i, j, o)
		}
		seen[fp] = i
	}

	// Different queries must separate; an independently rebuilt but
	// identical query must agree (predicates fingerprint by content,
	// not pointer identity).
	if Fingerprint(fpQuery(8, 5), Options{Algorithm: AlgEAPrune}) == base {
		t.Error("two different random queries share a fingerprint")
	}
	if Fingerprint(fpQuery(7, 5), Options{Algorithm: AlgEAPrune}) != base {
		t.Error("two builds of the same query fingerprint differently")
	}
}

// TestFingerprintSeparatesRandomQueries runs the generator over a random
// workload: distinct query structures should (essentially always) get
// distinct fingerprints, and re-fingerprinting is stable.
func TestFingerprintSeparatesRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		q := randquery.Generate(rng, randquery.Params{Relations: 2 + i%5})
		fp := Fingerprint(q, Options{Algorithm: AlgEAPrune})
		if fp != Fingerprint(q, Options{Algorithm: AlgEAPrune}) {
			t.Fatal("fingerprint not stable across calls")
		}
		seen[fp] = true
	}
	if len(seen) < 35 {
		t.Fatalf("only %d distinct fingerprints over 40 random queries", len(seen))
	}
}
