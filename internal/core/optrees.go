package core

import (
	"eagg/internal/bitset"
	"eagg/internal/conflict"
	"eagg/internal/cost"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// opTrees implements Fig. 6: for a pair of subplans and an operator it
// returns the base tree plus the up-to-three eager-aggregation variants of
// Fig. 8, each already wrapped with the final grouping (or its
// elimination) when the tree completes the query.
//
// DPhyp mode and grouping-free queries produce only the base tree.
func (g *generator) opTrees(est *cost.Estimator, t1, t2 *plan.Plan, op *conflict.Op, preds []*query.Predicate) []*plan.Plan {
	kind := op.Node.Kind
	out := make([]*plan.Plan, 0, 4)
	add := func(l, r *plan.Plan) {
		tree := est.Op(kind, preds, l, r)
		out = append(out, g.maybeFinalize(est, tree))
	}

	add(t1, t2)
	if g.opts.Algorithm == AlgDPhyp || !g.q.HasGrouping {
		return out
	}

	var gl, gr *plan.Plan
	if g.validPush(t1.Rels, true, kind) {
		gp := g.gPlus(t1.Rels)
		if g.needsGrouping(gp, t1) {
			gl = est.Group(t1, gp)
		}
	}
	if g.validPush(t2.Rels, false, kind) {
		gp := g.gPlus(t2.Rels)
		if g.needsGrouping(gp, t2) {
			gr = est.Group(t2, gp)
		}
	}
	if gl != nil {
		add(gl, t2)
	}
	if gr != nil {
		add(t1, gr)
	}
	if gl != nil && gr != nil {
		add(gl, gr)
	}
	return out
}

// maybeFinalize attaches the final grouping to complete plans (Fig. 6,
// lines 6-8 etc.): a grouping on G, or — when G contains a key of a
// duplicate-free result — the free projection of Sec. 3.2.
func (g *generator) maybeFinalize(est *cost.Estimator, tree *plan.Plan) *plan.Plan {
	if tree.Rels != g.all {
		return tree
	}
	return g.finalize(est, tree)
}

func (g *generator) finalize(est *cost.Estimator, tree *plan.Plan) *plan.Plan {
	if !g.q.HasGrouping {
		return tree
	}
	// At the top every predicate has been applied, so the query-level FD
	// closure of G is valid: a key *implied* by the grouping attributes
	// eliminates the final grouping just like one contained in them
	// (Sec. 3.2 with FD+ instead of the syntactic test).
	if tree.DupFree && tree.HasKeySubsetOf(est.FDClosure(g.q.GroupBy)) {
		return est.Project(tree)
	}
	return est.FinalGroup(tree)
}

// needsGrouping implements Fig. 7: grouping on attrs is unnecessary iff
// attrs contain a candidate key of t and t is duplicate-free. Below the
// top this test is deliberately syntactic: query-level FD equivalences
// from predicates that are not yet applied inside the subtree do not hold
// there, and using them here both skips profitable groupings and breaks
// the estimator consistency the dominance pruning relies on.
func (g *generator) needsGrouping(attrs bitset.Set64, t *plan.Plan) bool {
	return !(t.DupFree && t.HasKeySubsetOf(attrs))
}

// validPush implements the Valid check of Sec. 4.2 backed by the
// equivalences of Sec. 3: a grouping may be pushed onto the given side iff
//
//   - the operator admits a push on that side (the left semijoin, antijoin
//     and groupjoin only produce left attributes, so only their left
//     argument can be grouped — Sec. 3.1.3);
//   - the aggregation vector splits w.r.t. the side: every aggregate
//     drawing from the side's relations draws only from them; and
//   - those aggregates are decomposable (no distinct aggregates).
//
// Aggregates over relations outside the side are re-weighted through the
// count attribute of the Groupby-Count equivalences; attribute-free
// count(*) entries never block a push.
func (g *generator) validPush(side bitset.Set64, isLeft bool, kind query.OpKind) bool {
	if !g.q.HasGrouping {
		return false
	}
	if !isLeft && kind.LeftOnly() {
		return false
	}
	if side.Intersects(g.gjRight) {
		return false // protect groupjoin F̄ inputs from pre-aggregation
	}
	for i, src := range g.aggSrc {
		if src.IsEmpty() || !src.Intersects(side) {
			continue
		}
		if !src.SubsetOf(side) {
			return false // aggregate spans the side boundary: not splittable
		}
		if !g.aggOK[i] {
			return false // not decomposable
		}
	}
	return true
}

// gPlus computes G⁺ for a relation set S: the grouping attributes plus
// every join attribute of predicates not yet applied inside S, restricted
// to S's attributes (Sec. 3.1: G⁺ᵢ = Gᵢ ∪ Jᵢ, generalized to all
// predicates that still connect S to the rest of the query).
func (g *generator) gPlus(s bitset.Set64) bitset.Set64 {
	attrs := g.q.AttrsOf(s)
	gp := g.q.GroupBy.Intersect(attrs)
	for i, op := range g.det.Ops {
		predRels := g.q.RelsOf(g.predAttrs[i])
		if !predRels.SubsetOf(s) {
			gp = gp.Union(g.predAttrs[i].Intersect(attrs))
		}
		_ = op
	}
	return gp
}
