package core

import (
	"eagg/internal/bitset"
	"eagg/internal/conflict"
	"eagg/internal/cost"
	"eagg/internal/plan"
	"eagg/internal/query"
)

// opTrees implements Fig. 6: for a pair of subplans and an operator it
// returns the base tree plus the up-to-three eager-aggregation variants of
// Fig. 8, each already wrapped with the final grouping (or its
// elimination) when the tree completes the query.
//
// DPhyp mode and grouping-free queries produce only the base tree.
func (g *generator[S]) opTrees(est *cost.Estimator, t1, t2 *plan.Plan, op *conflict.Op[S], preds []*query.Predicate) []*plan.Plan {
	kind := op.Node.Kind
	out := make([]*plan.Plan, 0, 4)
	add := func(l, r *plan.Plan) {
		if !g.physOn() {
			tree := est.Op(kind, preds, l, r)
			out = append(out, g.maybeFinalize(est, tree))
			return
		}
		// Sort/auto physical modes: one tree per admissible physical
		// kind, hash first (ties resolve toward hash in the retention
		// policies), each completed tree finalized per physical kind of
		// the final grouping.
		for _, ph := range g.opPhysKinds(kind) {
			tree := est.Op(kind, preds, l, r)
			if !est.PhysifyOp(tree, ph) {
				continue
			}
			if tree.Rels != g.allV {
				out = append(out, tree)
				continue
			}
			out = append(out, g.finalizeAll(est, tree)...)
		}
	}

	add(t1, t2)
	if g.opts.Algorithm == AlgDPhyp || !g.q.HasGrouping {
		return out
	}

	gls := g.groupVariants(est, t1, t1.Rels, true, kind)
	grs := g.groupVariants(est, t2, t2.Rels, false, kind)
	for _, gl := range gls {
		add(gl, t2)
	}
	for _, gr := range grs {
		add(t1, gr)
	}
	for _, gl := range gls {
		for _, gr := range grs {
			add(gl, gr)
		}
	}
	return out
}

// groupVariants builds the admissible pushed-grouping plans for one side
// of an operator: none when the push is invalid or unnecessary, one hash
// grouping in the default mode, and one plan per enabled physical kind
// otherwise (hash aggregation and sort-group aggregation are distinct
// plan-class members: their costs and contractual orders differ).
func (g *generator[S]) groupVariants(est *cost.Estimator, t *plan.Plan, side bitset.VSet, isLeft bool, kind query.OpKind) []*plan.Plan {
	if !g.validPush(side, isLeft, kind) {
		return nil
	}
	gp := g.gPlus(est, side)
	if !g.needsGrouping(gp, t) {
		return nil
	}
	if !g.physOn() {
		return []*plan.Plan{est.Group(t, gp)}
	}
	var out []*plan.Plan
	for _, ph := range g.groupPhysKinds() {
		gt := est.Group(t, gp)
		if est.PhysifyGroup(gt, ph) {
			out = append(out, gt)
		}
	}
	return out
}

// opPhysKinds returns the physical kinds to enumerate for a binary
// operator, hash before sort. Operators without a sort-based form (full
// outerjoin, groupjoin) stay on the hash layer in every mode.
func (g *generator[S]) opPhysKinds(kind query.OpKind) []plan.PhysKind {
	switch g.opts.Phys {
	case PhysModeSort:
		switch kind {
		case query.KindFullOuter, query.KindGroupJoin:
			return []plan.PhysKind{plan.PhysHash}
		}
		return []plan.PhysKind{plan.PhysSortMerge}
	case PhysModeAuto:
		switch kind {
		case query.KindFullOuter, query.KindGroupJoin:
			return []plan.PhysKind{plan.PhysHash}
		}
		return []plan.PhysKind{plan.PhysHash, plan.PhysSortMerge}
	}
	return []plan.PhysKind{plan.PhysHash}
}

// groupPhysKinds returns the physical kinds to enumerate for groupings.
func (g *generator[S]) groupPhysKinds() []plan.PhysKind {
	switch g.opts.Phys {
	case PhysModeSort:
		return []plan.PhysKind{plan.PhysSortMerge}
	case PhysModeAuto:
		return []plan.PhysKind{plan.PhysHash, plan.PhysSortMerge}
	}
	return []plan.PhysKind{plan.PhysHash}
}

// maybeFinalize attaches the final grouping to complete plans (Fig. 6,
// lines 6-8 etc.): a grouping on G, or — when G contains a key of a
// duplicate-free result — the free projection of Sec. 3.2.
func (g *generator[S]) maybeFinalize(est *cost.Estimator, tree *plan.Plan) *plan.Plan {
	if tree.Rels != g.allV {
		return tree
	}
	return g.finalize(est, tree)
}

func (g *generator[S]) finalize(est *cost.Estimator, tree *plan.Plan) *plan.Plan {
	if !g.q.HasGrouping {
		return tree
	}
	if g.physOn() {
		// Pick the physically cheapest finalization (used only where a
		// single plan is needed, e.g. single-relation queries); ties
		// keep the hash variant, which finalizeAll lists first.
		variants := g.finalizeAll(est, tree)
		best := variants[0]
		for _, v := range variants[1:] {
			if v.PhysCost < best.PhysCost {
				best = v
			}
		}
		return best
	}
	// At the top every predicate has been applied, so the query-level FD
	// closure of G is valid: a key *implied* by the grouping attributes
	// eliminates the final grouping just like one contained in them
	// (Sec. 3.2 with FD+ instead of the syntactic test).
	if tree.DupFree && tree.HasKeySubsetOf(est.FDClosure(g.q.GroupBy)) {
		return est.Project(tree)
	}
	return est.FinalGroup(tree)
}

// finalizeAll attaches the final grouping (or its free projection) to a
// complete tree, one plan per enabled physical kind of the final
// grouping, hash first. The sort-group variant of the top Γ_G is where
// a contractual order carried this far pays off: when it covers G the
// final aggregation streams with zero reorganization.
func (g *generator[S]) finalizeAll(est *cost.Estimator, tree *plan.Plan) []*plan.Plan {
	if !g.q.HasGrouping {
		return []*plan.Plan{tree}
	}
	if tree.DupFree && tree.HasKeySubsetOf(est.FDClosure(g.q.GroupBy)) {
		p := est.Project(tree)
		est.PhysifyProject(p)
		return []*plan.Plan{p}
	}
	var out []*plan.Plan
	for _, ph := range g.groupPhysKinds() {
		fg := est.FinalGroup(tree)
		if est.PhysifyGroup(fg, ph) {
			out = append(out, fg)
		}
	}
	return out
}

// needsGrouping implements Fig. 7: grouping on attrs is unnecessary iff
// attrs contain a candidate key of t and t is duplicate-free. Below the
// top this test is deliberately syntactic: query-level FD equivalences
// from predicates that are not yet applied inside the subtree do not hold
// there, and using them here both skips profitable groupings and breaks
// the estimator consistency the dominance pruning relies on.
func (g *generator[S]) needsGrouping(attrs bitset.VSet, t *plan.Plan) bool {
	return !(t.DupFree && t.HasKeySubsetOf(attrs))
}

// validPush implements the Valid check of Sec. 4.2 backed by the
// equivalences of Sec. 3: a grouping may be pushed onto the given side iff
//
//   - the operator admits a push on that side (the left semijoin, antijoin
//     and groupjoin only produce left attributes, so only their left
//     argument can be grouped — Sec. 3.1.3);
//   - the aggregation vector splits w.r.t. the side: every aggregate
//     drawing from the side's relations draws only from them; and
//   - those aggregates are decomposable (no distinct aggregates).
//
// Aggregates over relations outside the side are re-weighted through the
// count attribute of the Groupby-Count equivalences; attribute-free
// count(*) entries never block a push.
func (g *generator[S]) validPush(side bitset.VSet, isLeft bool, kind query.OpKind) bool {
	if !g.q.HasGrouping {
		return false
	}
	if !isLeft && kind.LeftOnly() {
		return false
	}
	if side.Intersects(g.gjRight) {
		return false // protect groupjoin F̄ inputs from pre-aggregation
	}
	for i, src := range g.aggSrc {
		if src.IsEmpty() || !src.Intersects(side) {
			continue
		}
		if !src.SubsetOf(side) {
			return false // aggregate spans the side boundary: not splittable
		}
		if !g.aggOK[i] {
			return false // not decomposable
		}
	}
	return true
}

// gPlus computes G⁺ for a relation set S: the grouping attributes plus
// every join attribute of predicates not yet applied inside S, restricted
// to S's attributes (Sec. 3.1: G⁺ᵢ = Gᵢ ∪ Jᵢ, generalized to all
// predicates that still connect S to the rest of the query).
func (g *generator[S]) gPlus(est *cost.Estimator, s bitset.VSet) bitset.VSet {
	// Memoized per worker (the estimator is the per-worker object): the
	// same side sets recur across every pair they participate in. Narrow
	// sets key a uint64 map, which hashes much faster than the VSet form.
	lo, narrow := s.Lo()
	if narrow {
		if gp, ok := est.GPlusLo[lo]; ok {
			return gp
		}
	} else if gp, ok := est.GPlus[s]; ok {
		return gp
	}
	attrs := g.q.AttrsOf(s)
	gp := g.q.GroupBy.Intersect(attrs)
	for i := range g.predAttrs {
		if !g.predRels[i].SubsetOf(s) {
			gp = gp.Union(g.predAttrs[i].Intersect(attrs))
		}
	}
	if narrow {
		if est.GPlusLo == nil {
			est.GPlusLo = make(map[uint64]bitset.VSet)
		}
		est.GPlusLo[lo] = gp
	} else {
		if est.GPlus == nil {
			est.GPlus = make(map[bitset.VSet]bitset.VSet)
		}
		est.GPlus[s] = gp
	}
	return gp
}
