package core

// Greedy fallback for queries whose csg-cmp-pair enumeration exceeds its
// budget (e.g. a 100-relation star: every subset containing the hub is a
// connected subgraph, so the exact pair count is exponential). The
// fallback is a beamed left-deep construction: per DP level it extends
// each frontier set by one relation through the same applicability walk,
// operator-tree expansion and retention policy the exact DP uses, then
// keeps the greedyFrontier cheapest result sets. It is sequential and
// fully deterministic — ties resolve by first-appearance order, which is
// itself determined by the frontier order — so the workers-invariance
// contract of the parallel driver holds trivially.

import (
	"sort"
	"time"

	"eagg/internal/bitset"
	"eagg/internal/conflict"
	"eagg/internal/hypergraph"
	"eagg/internal/plan"
)

// greedyFrontier is the number of result sets the fallback carries per
// level. Width 1 is pure greedy; a modest beam recovers most of the
// quality lost to the missing exact enumeration at linear cost.
const greedyFrontier = 16

// bestPlanCost returns the ranking cost of a DP-table entry: the
// cheapest member, by physical cost when the sort layer participates.
func (g *generator[S]) bestPlanCost(entry []*plan.Plan) float64 {
	best := entry[0]
	for _, p := range entry[1:] {
		if g.physOn() {
			if p.PhysCost < best.PhysCost {
				best = p
			}
		} else if p.Cost < best.Cost {
			best = p
		}
	}
	if g.physOn() {
		return best.PhysCost
	}
	return best.Cost
}

func (g *generator[S]) runGreedy() {
	n := len(g.q.Relations)
	frontier := make([]S, 0, n)
	for r := 0; r < n; r++ {
		frontier = append(frontier, bitset.SingleIn[S](r))
	}
	for level := 2; level <= n && len(frontier) > 0; level++ {
		start := time.Now()
		levelPairs := 0
		var next []S
		seen := make(map[S]bool)
		for _, s := range frontier {
			for r := 0; r < n; r++ {
				if s.Contains(r) {
					continue
				}
				single := bitset.SingleIn[S](r)
				if g.det.Graph.ConnectsSets(s, single) < 0 {
					continue
				}
				// Orient the pair the way the exact enumerator emits it
				// (min(S1) < min(S2)) so applicability decisions match.
				pr := hypergraph.CsgCmpPair[S]{S1: s, S2: single}
				if r < s.Min() {
					pr = hypergraph.CsgCmpPair[S]{S1: single, S2: s}
				}
				t := s.Add(r)
				topLevel := t == g.all
				levelPairs++
				built := false
				g.forEachApplicable(pr, func(s1, s2 S, op *conflict.Op[S]) {
					entry, nb := g.buildInto(g.est, g.table[t], t, s1, s2, op, topLevel)
					g.stats.PlansBuilt += nb
					if nb > 0 {
						g.table[t] = entry
						built = true
					}
				})
				if built && !seen[t] {
					seen[t] = true
					next = append(next, t)
				}
			}
		}
		// Beam: keep the cheapest greedyFrontier result sets. The stable
		// sort preserves first-appearance order on cost ties.
		if level < n && len(next) > greedyFrontier {
			sort.SliceStable(next, func(i, j int) bool {
				return g.bestPlanCost(g.table[next[i]]) < g.bestPlanCost(g.table[next[j]])
			})
			for _, s := range next[greedyFrontier:] {
				delete(g.table, s)
			}
			next = next[:greedyFrontier]
		}
		g.stats.Levels = append(g.stats.Levels, LevelStat{
			Level: level, Pairs: levelPairs, Subsets: len(next), Duration: time.Since(start),
		})
		frontier = next
	}
}
