package core

import (
	"math/rand"
	"testing"

	"eagg/internal/plan"
	"eagg/internal/randquery"
)

// TestPhysParallelDeterminism extends the parallel-driver contract to
// the sort/auto physical modes: plan-class retention, physical costs and
// order inference are pure functions of the query, so Workers: 8 must
// return bit-identical plans (including every physical annotation, which
// plan.Equal compares) and identical search counters.
func TestPhysParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	for n := 3; n <= 7; n++ {
		for trial := 0; trial < 4; trial++ {
			q := randquery.Generate(rng, randquery.Params{Relations: n})
			for _, mode := range []PhysMode{PhysModeSort, PhysModeAuto} {
				for _, alg := range []Algorithm{AlgH1, AlgEAPrune, AlgBeam} {
					if alg == AlgEAPrune && n > 5 {
						continue // the phys-mode EA search space grows fast; H1/Beam cover the larger graphs
					}
					seq, err := Optimize(q, Options{Algorithm: alg, Phys: mode, Workers: 1})
					if err != nil {
						t.Fatalf("n=%d trial=%d %v/%v sequential: %v", n, trial, alg, mode, err)
					}
					par, err := Optimize(q, Options{Algorithm: alg, Phys: mode, Workers: 8})
					if err != nil {
						t.Fatalf("n=%d trial=%d %v/%v parallel: %v", n, trial, alg, mode, err)
					}
					if !plan.Equal(seq.Plan, par.Plan) {
						t.Fatalf("n=%d trial=%d %v/%v: parallel plan differs\nsequential:\n%v\nparallel:\n%v",
							n, trial, alg, mode, seq.Plan, par.Plan)
					}
					if seq.Stats.PlansBuilt != par.Stats.PlansBuilt ||
						seq.Stats.TablePlans != par.Stats.TablePlans {
						t.Fatalf("n=%d trial=%d %v/%v: search counters differ (%+v vs %+v)",
							n, trial, alg, mode, seq.Stats, par.Stats)
					}
				}
			}
		}
	}
}

// TestPhysHashModeUnchanged pins that the default mode is untouched by
// the sort-based layer: a run with Phys unset produces plans carrying no
// physical annotations at all, bit-identical to what an explicit
// PhysModeHash run returns.
func TestPhysHashModeUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		q := randquery.Generate(rng, randquery.Params{Relations: 3 + trial%4})
		def, err := Optimize(q, Options{Algorithm: AlgEAPrune})
		if err != nil {
			t.Fatal(err)
		}
		explicit, err := Optimize(q, Options{Algorithm: AlgEAPrune, Phys: PhysModeHash})
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Equal(def.Plan, explicit.Plan) {
			t.Fatal("explicit PhysModeHash differs from the default")
		}
		var walk func(p *plan.Plan)
		walk = func(p *plan.Plan) {
			if p == nil {
				return
			}
			if p.Phys != plan.PhysHash || p.Ord != nil || p.PhysCost != 0 || p.SortL || p.SortR {
				t.Fatalf("default-mode plan carries physical annotations: %+v", p)
			}
			walk(p.Left)
			walk(p.Right)
		}
		walk(def.Plan)
	}
}

// TestPhysCostAccounting pins the overhead model on a plan whose shape
// is known: in auto mode PhysCost is C_out plus the physical overheads,
// and eliminated sorts are the only free reorganizations.
func TestPhysCostAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		q := randquery.Generate(rng, randquery.Params{Relations: 3 + trial%3})
		res, err := Optimize(q, Options{Algorithm: AlgH1, Phys: PhysModeAuto})
		if err != nil {
			t.Fatal(err)
		}
		var overhead func(p *plan.Plan) float64
		overhead = func(p *plan.Plan) float64 {
			if p == nil {
				return 0
			}
			o := overhead(p.Left) + overhead(p.Right)
			switch {
			case p.Kind == plan.NodeOp && p.Phys == plan.PhysHash:
				o += p.Left.Card + p.Right.Card
			case p.Kind == plan.NodeOp && p.Phys == plan.PhysSortMerge:
				if p.SortL {
					o += p.Left.Card
				}
				if p.SortR {
					o += p.Right.Card
				}
			case p.Kind == plan.NodeGroup && p.Phys == plan.PhysHash:
				o += p.Left.Card
			case p.Kind == plan.NodeGroup && p.Phys == plan.PhysSortMerge && p.SortL:
				o += p.Left.Card
			}
			return o
		}
		want := res.Plan.Cost + overhead(res.Plan)
		if diff := want - res.Plan.PhysCost; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("PhysCost %.6g != C_out %.6g + overheads %.6g\n%v",
				res.Plan.PhysCost, res.Plan.Cost, overhead(res.Plan), res.Plan)
		}
	}
}
