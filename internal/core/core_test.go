package core

import (
	"math"
	"math/rand"
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/bitset"
	"eagg/internal/plan"
	"eagg/internal/query"
	"eagg/internal/randquery"
)

// motivatingQuery builds the paper's introduction query with grouping:
// select ns.name, nc.name, count(*) from (ns B s) K (nc B c) group by …
func motivatingQuery() *query.Query {
	q := query.New()
	ns := q.AddRelation("nation_s", 25)
	s := q.AddRelation("supplier", 10000)
	nc := q.AddRelation("nation_c", 25)
	c := q.AddRelation("customer", 150000)
	nsk := q.AddAttr(ns, "ns.nationkey", 25)
	nsn := q.AddAttr(ns, "ns.name", 25)
	ssk := q.AddAttr(s, "s.nationkey", 25)
	nck := q.AddAttr(nc, "nc.nationkey", 25)
	ncn := q.AddAttr(nc, "nc.name", 25)
	csk := q.AddAttr(c, "c.nationkey", 25)
	q.AddKey(ns, nsk)
	q.AddKey(nc, nck)
	left := &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: ns},
		Right: &query.OpNode{Kind: query.KindScan, Rel: s},
		Pred:  &query.Predicate{Left: []int{nsk}, Right: []int{ssk}, Selectivity: 1.0 / 25},
	}
	right := &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: nc},
		Right: &query.OpNode{Kind: query.KindScan, Rel: c},
		Pred:  &query.Predicate{Left: []int{nck}, Right: []int{csk}, Selectivity: 1.0 / 25},
	}
	q.Root = &query.OpNode{
		Kind: query.KindFullOuter,
		Left: left, Right: right,
		Pred: &query.Predicate{Left: []int{nsk}, Right: []int{nck}, Selectivity: 1.0 / 25},
	}
	q.SetGrouping([]int{nsn, ncn}, aggfn.Vector{{Out: "cnt", Kind: aggfn.CountStar}})
	return q
}

func optimize(t *testing.T, q *query.Query, alg Algorithm, f float64) *Result {
	t.Helper()
	res, err := Optimize(q, Options{Algorithm: alg, F: f})
	if err != nil {
		t.Fatalf("%v: %v", alg, err)
	}
	return res
}

// TestMotivatingQueryGain reproduces the introduction's headline: eager
// aggregation collapses the plan cost of the outer-join grouping query by
// orders of magnitude.
func TestMotivatingQueryGain(t *testing.T) {
	q := motivatingQuery()
	dphyp := optimize(t, q, AlgDPhyp, 0)
	prune := optimize(t, q, AlgEAPrune, 0)
	all := optimize(t, q, AlgEAAll, 0)
	if math.Abs(all.Plan.Cost-prune.Plan.Cost) > 1e-6*all.Plan.Cost {
		t.Errorf("EA-All cost %.6g != EA-Prune cost %.6g", all.Plan.Cost, prune.Plan.Cost)
	}
	ratio := dphyp.Plan.Cost / prune.Plan.Cost
	if ratio < 50 {
		t.Errorf("expected a large eager-aggregation gain on the motivating query, got ratio %.2f\nDPhyp:\n%v\nEA-Prune:\n%v",
			ratio, dphyp.Plan.StringWithQuery(q), prune.Plan.StringWithQuery(q))
	}
	// The eager plan must actually contain pushed-down groupings.
	if prune.Plan.CountGroupings() == 0 {
		t.Errorf("EA-Prune plan has no eager groupings:\n%v", prune.Plan.StringWithQuery(q))
	}
}

// checkWellFormed validates structural invariants of produced plans.
func checkWellFormed(t *testing.T, q *query.Query, p *plan.Plan, isRoot bool) {
	t.Helper()
	if p == nil {
		t.Fatal("nil plan node")
	}
	switch p.Kind {
	case plan.NodeScan:
		if !p.Rels.IsSingleton() {
			t.Errorf("scan with Rels=%v", p.Rels)
		}
	case plan.NodeOp:
		if p.Left == nil || p.Right == nil {
			t.Fatalf("operator node without children")
		}
		if p.Rels != p.Left.Rels.Union(p.Right.Rels) {
			t.Errorf("Rels mismatch at %v", p.Op)
		}
		if p.Cost+1e-9 < p.Left.Cost+p.Right.Cost {
			t.Errorf("cost not monotone at %v", p.Op)
		}
		checkWellFormed(t, q, p.Left, false)
		checkWellFormed(t, q, p.Right, false)
	case plan.NodeGroup:
		if p.Final && !isRoot {
			t.Error("final grouping below the root")
		}
		if !p.Final && isRoot && q.HasGrouping {
			t.Error("root grouping not marked final")
		}
		if !p.DupFree {
			t.Error("grouping result must be duplicate-free")
		}
		checkWellFormed(t, q, p.Left, false)
	case plan.NodeProject:
		if !isRoot {
			t.Error("projection only replaces the final grouping")
		}
		checkWellFormed(t, q, p.Left, false)
	}
}

// TestAlgorithmsOnRandomQueries is the central integration battery:
// EA-All and EA-Prune must agree on the optimal cost (the pruning is
// optimality-preserving, Sec. 4.6), and every other algorithm's plan costs
// at least as much.
func TestAlgorithmsOnRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for n := 2; n <= 7; n++ {
		for trial := 0; trial < 12; trial++ {
			q := randquery.Generate(rng, randquery.Params{Relations: n})
			all := optimize(t, q, AlgEAAll, 0)
			prune := optimize(t, q, AlgEAPrune, 0)
			dphyp := optimize(t, q, AlgDPhyp, 0)
			h1 := optimize(t, q, AlgH1, 0)
			h2 := optimize(t, q, AlgH2, 1.03)

			opt := all.Plan.Cost
			if diff := math.Abs(prune.Plan.Cost - opt); diff > 1e-6*opt {
				t.Fatalf("n=%d trial=%d: EA-Prune %.6g != EA-All %.6g — pruning lost optimality\nEA-All:\n%v\nEA-Prune:\n%v",
					n, trial, prune.Plan.Cost, opt, all.Plan.String(), prune.Plan.String())
			}
			for _, r := range []*Result{dphyp, h1, h2} {
				if r.Plan.Cost < opt*(1-1e-9) {
					t.Fatalf("n=%d trial=%d: %.6g beats the optimum %.6g", n, trial, r.Plan.Cost, opt)
				}
			}
			for _, r := range []*Result{all, prune, dphyp, h1, h2} {
				checkWellFormed(t, q, r.Plan, true)
				// The plan must cover all relations below the final node.
				if r.Plan.Rels.Len() != n {
					t.Fatalf("n=%d: plan covers %v", n, r.Plan.Rels)
				}
			}
			// DPhyp never contains eager groupings.
			if dphyp.Plan.CountGroupings() != 0 {
				t.Fatalf("DPhyp plan contains eager groupings:\n%v", dphyp.Plan.String())
			}
		}
	}
}

// TestNoGroupingDegeneratesToJoinOrdering: without a grouping, no eager
// variants exist, so EA-All and EA-Prune still agree exactly, DPhyp and H1
// build the same single-plan tables (identical costs), and the single-plan
// algorithms can only be ≥ the multi-plan optimum. (They are not always
// equal: the clamped semijoin/outerjoin cardinality formulas are not
// join-order-invariant, so Bellman's principle can fail even without
// grouping — keeping all plans then wins.)
func TestNoGroupingDegeneratesToJoinOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		q := randquery.Generate(rng, randquery.Params{Relations: 5})
		q.HasGrouping = false
		q.GroupBy = bitset.VSet{}
		q.Aggregates = nil
		costs := map[Algorithm]float64{}
		for _, alg := range []Algorithm{AlgDPhyp, AlgEAAll, AlgEAPrune, AlgH1} {
			costs[alg] = optimize(t, q, alg, 0).Plan.Cost
		}
		if math.Abs(costs[AlgEAAll]-costs[AlgEAPrune]) > 1e-6*costs[AlgEAAll] {
			t.Fatalf("trial %d: EA-All %.6g != EA-Prune %.6g", trial, costs[AlgEAAll], costs[AlgEAPrune])
		}
		if math.Abs(costs[AlgDPhyp]-costs[AlgH1]) > 1e-6*costs[AlgDPhyp] {
			t.Fatalf("trial %d: DPhyp %.6g != H1 %.6g without grouping", trial, costs[AlgDPhyp], costs[AlgH1])
		}
		if costs[AlgDPhyp] < costs[AlgEAAll]*(1-1e-9) {
			t.Fatalf("trial %d: single-plan DP beat the exhaustive search", trial)
		}
	}
}

// TestH2ToleranceInfluence: H2 with absurdly large F should essentially
// always prefer eager plans; with F=1 it matches H1's decisions on ties
// broken identically. We only assert both run and produce valid plans and
// that costs stay ≥ optimal.
func TestH2Tolerances(t *testing.T) {
	rng := rand.New(rand.NewSource(512))
	for trial := 0; trial < 10; trial++ {
		q := randquery.Generate(rng, randquery.Params{Relations: 6})
		opt := optimize(t, q, AlgEAPrune, 0).Plan.Cost
		for _, f := range []float64{1.0, 1.01, 1.03, 1.05, 1.1, 2.0} {
			r := optimize(t, q, AlgH2, f)
			if r.Plan.Cost < opt*(1-1e-9) {
				t.Fatalf("H2(F=%.2f) cost %.6g below optimum %.6g", f, r.Plan.Cost, opt)
			}
			checkWellFormed(t, q, r.Plan, true)
		}
	}
}

// TestH2RequiresF ensures the misconfiguration is rejected.
func TestH2RequiresF(t *testing.T) {
	q := motivatingQuery()
	if _, err := Optimize(q, Options{Algorithm: AlgH2}); err == nil {
		t.Error("H2 without F must error")
	}
}

// TestSingleJoinGrouping is a minimal sanity scenario with hand-checkable
// numbers: R0(card 1000, 10 groups) B R1(card 10, key) grouped by R0.g.
func TestSingleJoinGrouping(t *testing.T) {
	q := query.New()
	r0 := q.AddRelation("fact", 1000)
	r1 := q.AddRelation("dim", 10)
	fk := q.AddAttr(r0, "fact.fk", 10)
	g := q.AddAttr(r0, "fact.g", 10)
	q.AddAttr(r0, "fact.a", 500)
	pk := q.AddAttr(r1, "dim.pk", 10)
	q.AddKey(r1, pk)
	q.Root = &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: r0},
		Right: &query.OpNode{Kind: query.KindScan, Rel: r1},
		Pred:  &query.Predicate{Left: []int{fk}, Right: []int{pk}, Selectivity: 0.1},
	}
	q.SetGrouping([]int{g}, aggfn.Vector{
		{Out: "cnt", Kind: aggfn.CountStar},
		{Out: "s", Kind: aggfn.Sum, Arg: "fact.a"},
	})
	// Lazy: join (1000×10×0.1 = 1000) + final Γ (10) = 1010.
	// Eager: Γ_{g,fk}(R0) → 100 rows, join → 100, final Γ → 10: 210.
	prune := optimize(t, q, AlgEAPrune, 0)
	if math.Abs(prune.Plan.Cost-210) > 1 {
		t.Errorf("EA-Prune cost = %.6g, want ≈210\n%v", prune.Plan.Cost, prune.Plan.StringWithQuery(q))
	}
	dphyp := optimize(t, q, AlgDPhyp, 0)
	if math.Abs(dphyp.Plan.Cost-1010) > 1 {
		t.Errorf("DPhyp cost = %.6g, want ≈1010\n%v", dphyp.Plan.Cost, dphyp.Plan.StringWithQuery(q))
	}
}

// TestOptimalityAtEight pushes the EA-All ≡ EA-Prune check to eight
// relations, where the exhaustive table holds hundreds of thousands of
// trees. Skipped with -short.
func TestOptimalityAtEight(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration at n=8 is slow")
	}
	rng := rand.New(rand.NewSource(888))
	for trial := 0; trial < 2; trial++ {
		q := randquery.Generate(rng, randquery.Params{Relations: 8})
		all := optimize(t, q, AlgEAAll, 0)
		prune := optimize(t, q, AlgEAPrune, 0)
		if diff := math.Abs(prune.Plan.Cost - all.Plan.Cost); diff > 1e-6*all.Plan.Cost {
			t.Fatalf("trial %d: EA-Prune %.6g != EA-All %.6g (built %d vs %d trees)",
				trial, prune.Plan.Cost, all.Plan.Cost, prune.Stats.PlansBuilt, all.Stats.PlansBuilt)
		}
		// The pruning must actually prune (orders of magnitude fewer trees).
		if prune.Stats.PlansBuilt*10 > all.Stats.PlansBuilt {
			t.Logf("note: weak pruning on this query (%d vs %d trees)",
				prune.Stats.PlansBuilt, all.Stats.PlansBuilt)
		}
	}
}

// TestBeamSearchInterpolates: the beam generalization behaves like H1 at
// width 1, approaches the optimum as the width grows, and never beats it.
func TestBeamSearchInterpolates(t *testing.T) {
	rng := rand.New(rand.NewSource(31415))
	betterThanH1 := 0
	for trial := 0; trial < 20; trial++ {
		q := randquery.Generate(rng, randquery.Params{Relations: 6})
		opt := optimize(t, q, AlgEAPrune, 0).Plan.Cost
		h1 := optimize(t, q, AlgH1, 0).Plan.Cost
		res1, err := Optimize(q, Options{Algorithm: AlgBeam, BeamWidth: 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res1.Plan.Cost-h1) > 1e-6*h1 {
			t.Fatalf("trial %d: beam(1) %.6g != H1 %.6g", trial, res1.Plan.Cost, h1)
		}
		prev := math.Inf(1)
		for _, k := range []int{1, 4, 16, 64} {
			res, err := Optimize(q, Options{Algorithm: AlgBeam, BeamWidth: k})
			if err != nil {
				t.Fatal(err)
			}
			if res.Plan.Cost < opt*(1-1e-9) {
				t.Fatalf("trial %d: beam(%d) %.6g beats the optimum %.6g", trial, k, res.Plan.Cost, opt)
			}
			checkWellFormed(t, q, res.Plan, true)
			if k == 64 && res.Plan.Cost < prev*(1-1e-9) {
				betterThanH1++
			}
			prev = res.Plan.Cost
		}
	}
	// Wider beams must help on at least some queries, otherwise the dial
	// is useless.
	if betterThanH1 == 0 {
		t.Log("note: beam width made no difference on this sample")
	}
}

// TestBeamDefaultWidth: a zero width falls back to the default instead of
// erroring.
func TestBeamDefaultWidth(t *testing.T) {
	q := motivatingQuery()
	res, err := Optimize(q, Options{Algorithm: AlgBeam})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("no plan")
	}
}

// TestFDReduceGroupsMode: the sharper estimator mode must preserve the
// optimality relationships (EA-All ≡ EA-Prune; heuristics ≥ optimum).
func TestFDReduceGroupsMode(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 10; trial++ {
		q := randquery.Generate(rng, randquery.Params{Relations: 6})
		all, err := Optimize(q, Options{Algorithm: AlgEAAll, FDReduceGroups: true})
		if err != nil {
			t.Fatal(err)
		}
		prune, err := Optimize(q, Options{Algorithm: AlgEAPrune, FDReduceGroups: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(prune.Plan.Cost-all.Plan.Cost) > 1e-6*all.Plan.Cost {
			t.Fatalf("trial %d: FD-reduced mode broke pruning: %.6g vs %.6g",
				trial, prune.Plan.Cost, all.Plan.Cost)
		}
		h1, err := Optimize(q, Options{Algorithm: AlgH1, FDReduceGroups: true})
		if err != nil {
			t.Fatal(err)
		}
		if h1.Plan.Cost < all.Plan.Cost*(1-1e-9) {
			t.Fatalf("trial %d: H1 beat the optimum in FD-reduced mode", trial)
		}
	}
}
