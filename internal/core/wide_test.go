package core_test

import (
	"math/rand"
	"testing"

	"eagg/internal/core"
	"eagg/internal/plan"
	"eagg/internal/query"
	"eagg/internal/randquery"
	"eagg/internal/tpch"
)

// TestWideDifferentialFastPath is the seam contract of the set
// representation: for every query the Set64 fast path handles, forcing
// the multi-word wide path (Options.ForceWide) must reproduce the
// fast-path plan bit for bit — structure, cardinalities, costs, keys —
// with identical search-effort counters. The workload covers the TPC-H
// shapes plus random queries across relation counts and the four
// algorithm families that remain enabled at scale, and DPhyp/EA-Prune
// as the exact references.
func TestWideDifferentialFastPath(t *testing.T) {
	type algCfg struct {
		alg  core.Algorithm
		f    float64
		maxN int
	}
	algs := []algCfg{
		{core.AlgDPhyp, 0, 10},
		{core.AlgEAPrune, 0, 8},
		{core.AlgH1, 0, 10},
		{core.AlgBeam, 0, 10},
	}
	check := func(t *testing.T, label string, q *query.Query, c algCfg) {
		t.Helper()
		fast, err := core.Optimize(q, core.Options{Algorithm: c.alg, F: c.f})
		if err != nil {
			t.Fatalf("%s %v fast: %v", label, c.alg, err)
		}
		wide, err := core.Optimize(q, core.Options{Algorithm: c.alg, F: c.f, ForceWide: true})
		if err != nil {
			t.Fatalf("%s %v wide: %v", label, c.alg, err)
		}
		if !plan.Equal(fast.Plan, wide.Plan) {
			t.Fatalf("%s %v: wide plan differs from fast path\nfast (cost %.17g):\n%v\nwide (cost %.17g):\n%v",
				label, c.alg, fast.Plan.Cost, fast.Plan, wide.Plan.Cost, wide.Plan)
		}
		if fast.Stats.PlansBuilt != wide.Stats.PlansBuilt ||
			fast.Stats.TablePlans != wide.Stats.TablePlans ||
			fast.Stats.CsgCmpPairs != wide.Stats.CsgCmpPairs {
			t.Fatalf("%s %v: stats diverged: fast %+v wide %+v", label, c.alg, fast.Stats, wide.Stats)
		}
		if wide.Stats.PairBudgetExceeded {
			t.Fatalf("%s %v: ForceWide on a small query must keep the unlimited default budget", label, c.alg)
		}
	}

	for name, q := range tpch.Queries() {
		for _, c := range algs {
			check(t, "tpch/"+name, q, c)
		}
	}
	rng := rand.New(rand.NewSource(8163))
	queries := 0
	for n := 3; n <= 10; n++ {
		for trial := 0; trial < 3; trial++ {
			q := randquery.Generate(rng, randquery.Params{Relations: n})
			queries++
			for _, c := range algs {
				if n > c.maxN {
					continue
				}
				check(t, "rand", q, c)
			}
		}
	}
	if queries < 20 {
		t.Fatalf("workload too small: %d queries", queries)
	}
}

// TestWideParallelDeterminism100 extends the workers-invariance contract
// past the 63-relation fast path. The 100-relation chain enumerates
// exactly (its pair count is quadratic), so Workers: 8 runs the real
// sharded parallel DP on the wide representation and must reproduce the
// sequential plan bit for bit. The 100-relation clique covers the
// hyperedge enumeration route the same way. The 100-relation star
// exceeds any practical budget: both worker counts must agree because
// the greedy fallback is sequential by contract — the Stats must say so.
func TestWideParallelDeterminism100(t *testing.T) {
	t.Run("chain100-exact", func(t *testing.T) {
		q := randquery.Chain(100)
		seq, err := core.Optimize(q, core.Options{Algorithm: core.AlgH1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Stats.PairBudgetExceeded {
			t.Fatal("chain100 must enumerate exactly under the default budget")
		}
		if want := 100 * 99 * 101 / 6; seq.Stats.CsgCmpPairs != want {
			// n(n-1)(n+1)/6 csg-cmp-pairs for an n-chain: intervals ×
			// split points, both orientations deduplicated.
			t.Fatalf("chain100: %d pairs, want %d", seq.Stats.CsgCmpPairs, want)
		}
		par, err := core.Optimize(q, core.Options{Algorithm: core.AlgH1, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if par.Stats.Workers != 8 {
			t.Fatalf("parallel run reported %d workers", par.Stats.Workers)
		}
		if !plan.Equal(seq.Plan, par.Plan) {
			t.Fatalf("chain100: parallel plan differs\nsequential (cost %.17g):\n%v\nparallel (cost %.17g):\n%v",
				seq.Plan.Cost, seq.Plan, par.Plan.Cost, par.Plan)
		}
		if seq.Stats.PlansBuilt != par.Stats.PlansBuilt || seq.Stats.CsgCmpPairs != par.Stats.CsgCmpPairs {
			t.Fatalf("chain100: stats diverged: sequential %+v parallel %+v", seq.Stats, par.Stats)
		}
	})

	t.Run("clique100-exact", func(t *testing.T) {
		q := randquery.Clique(100)
		seq, err := core.Optimize(q, core.Options{Algorithm: core.AlgH1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Stats.PairBudgetExceeded {
			t.Fatal("clique100 must enumerate exactly (one buildable set per level)")
		}
		par, err := core.Optimize(q, core.Options{Algorithm: core.AlgH1, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if !plan.Equal(seq.Plan, par.Plan) {
			t.Fatalf("clique100: parallel plan differs\nsequential:\n%v\nparallel:\n%v", seq.Plan, par.Plan)
		}
	})

	t.Run("star100-fallback", func(t *testing.T) {
		q := randquery.Star(100)
		seq, err := core.Optimize(q, core.Options{Algorithm: core.AlgH1, Workers: 1, PairBudget: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if !seq.Stats.PairBudgetExceeded {
			t.Fatal("star100 must exceed a 2000-pair budget")
		}
		par, err := core.Optimize(q, core.Options{Algorithm: core.AlgH1, Workers: 8, PairBudget: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if par.Stats.Workers != 1 {
			t.Fatalf("greedy fallback must report sequential execution, got %d workers", par.Stats.Workers)
		}
		if !plan.Equal(seq.Plan, par.Plan) {
			t.Fatalf("star100: fallback plans differ across worker counts\nworkers 1:\n%v\nworkers 8:\n%v",
				seq.Plan, par.Plan)
		}
	})
}
