// The query fingerprint: a canonical string identifying everything that
// shapes which plan Optimize chooses — the plan-relevant optimizer
// options plus the complete optimizer input (relations, statistics,
// keys, declared orders, the initial tree, predicates, grouping and
// aggregates). Two (query, options) pairs with equal fingerprints are
// guaranteed the same chosen plan when optimized under the same stats
// snapshot, which is exactly the property the service layer's plan
// cache needs: its key is (Fingerprint, stats epoch).
package core

import (
	"fmt"
	"strings"

	"eagg/internal/query"
)

// Fingerprint returns the canonical signature of a (query, options)
// pair. Options that cannot influence the chosen plan are deliberately
// excluded:
//
//   - Workers: the parallel DP driver is bit-identical to the sequential
//     one for every worker count (the PR 1 contract), so plans may be
//     shared across worker settings.
//   - Stats: the cardinality source is external state; the service layer
//     accounts for it separately through the overlay epoch. Callers that
//     cache must pair the fingerprint with a stats identity of their own.
//
// Everything else is normalized the way Optimize resolves it (BeamWidth
// defaulting, F only mattering to H2), so option spellings that resolve
// to the same search also share a fingerprint.
func Fingerprint(q *query.Query, opts Options) string {
	var b strings.Builder
	// Options half.
	f := 0.0
	if opts.Algorithm == AlgH2 {
		f = opts.F
	}
	bw := 0
	if opts.Algorithm == AlgBeam {
		bw = opts.BeamWidth
		if bw <= 0 {
			bw = 4
		}
	}
	// ForceWide and PairBudget are plan-relevant: the wide path is
	// bit-identical only while the enumeration completes, and the budget
	// decides where the greedy fallback takes over.
	fmt.Fprintf(&b, "alg=%d f=%g bw=%d fd=%t phys=%d wide=%t pb=%d;",
		opts.Algorithm, f, bw, opts.FDReduceGroups, opts.Phys, opts.ForceWide, opts.PairBudget)

	// Relations with their statistics, keys and declared orders.
	for i := range q.Relations {
		r := &q.Relations[i]
		fmt.Fprintf(&b, "R%d=%s c=%g a=%v k=", i, r.Name, r.Card, r.Attrs)
		for _, k := range r.Keys {
			fmt.Fprintf(&b, "%v,", k)
		}
		fmt.Fprintf(&b, " o=%v;", r.Ordered)
	}
	// Attributes: name, owner, distinct count.
	for a, name := range q.AttrNames {
		fmt.Fprintf(&b, "A%d=%s@%d d=%g;", a, name, q.AttrRel[a], q.Distinct[a])
	}
	// The initial operator tree with predicates and groupjoin vectors.
	b.WriteString("T=")
	fingerprintNode(&b, q.Root)
	// Grouping and the aggregation vector.
	fmt.Fprintf(&b, ";G=%v hg=%t F=", q.GroupBy, q.HasGrouping)
	for _, a := range q.Aggregates {
		fmt.Fprintf(&b, "%s:%d(%s|%s|%s),", a.Out, a.Kind, a.Arg, a.Arg2, a.Weight)
	}
	return b.String()
}

// fingerprintNode renders one initial-tree node. Predicates are rendered
// by content (paired attribute ids and selectivity), not identity, so
// two independently built but identical queries fingerprint equal.
func fingerprintNode(b *strings.Builder, n *query.OpNode) {
	if n == nil {
		b.WriteString("·")
		return
	}
	if n.Kind == query.KindScan {
		fmt.Fprintf(b, "s%d", n.Rel)
		return
	}
	fmt.Fprintf(b, "(%d", n.Kind)
	if p := n.Pred; p != nil {
		fmt.Fprintf(b, "[%v=%v@%g]", p.Left, p.Right, p.Selectivity)
	}
	for _, a := range n.GroupJoinAggs {
		fmt.Fprintf(b, "{%s:%d(%s|%s|%s)}", a.Out, a.Kind, a.Arg, a.Arg2, a.Weight)
	}
	b.WriteString(" ")
	fingerprintNode(b, n.Left)
	b.WriteString(" ")
	fingerprintNode(b, n.Right)
	b.WriteString(")")
}
