// Parallel DP driver. Csg-cmp-pairs are bucketed by result-set cardinality
// (the DP "levels"); within a level every pair writes only entries of that
// level and reads only strictly smaller, already-sealed levels, so a
// barrier between levels preserves the dynamic-programming dependency
// order. Within a level the pairs are grouped by their result set (the
// subproblem key |S1 ∪ S2| identifies the DP-table entry) and each group is
// claimed by exactly one worker, which folds the group's operator trees
// through the retention policy in the exact order the sequential driver
// would and publishes the finished entry once into a sharded staging
// table. At the barrier the staged entries are sealed into the main table
// single-threaded. Because per-entry insertion order is preserved and all
// estimates are pure functions of the query, any worker count produces
// plans bit-identical to the sequential reference path (Workers: 1).
package core

import (
	"sync"
	"sync/atomic"
	"time"

	"eagg/internal/bitset"
	"eagg/internal/conflict"
	"eagg/internal/cost"
	"eagg/internal/hypergraph"
	"eagg/internal/plan"
)

// tableShards is the number of staging shards (a power of two). Entries
// are spread by hash of the subproblem key, so with 64 shards even dozens
// of workers rarely collide on a shard lock.
const tableShards = 64

type tableShard[S bitset.RelSet[S]] struct {
	mu      sync.Mutex
	entries map[S][]*plan.Plan
	// Pad the 8-byte mutex + 8-byte map header to a full 64-byte cache
	// line so adjacent shard locks don't false-share.
	_ [48]byte
}

// stagingTable buffers the entries of the level currently being processed.
// Workers write finished entries under the shard mutex; the sealed main
// table is never written during a level, so workers read it lock-free.
type stagingTable[S bitset.RelSet[S]] struct {
	shards     [tableShards]tableShard[S]
	contention atomic.Int64
}

func newStagingTable[S bitset.RelSet[S]]() *stagingTable[S] {
	st := &stagingTable[S]{}
	for i := range st.shards {
		st.shards[i].entries = make(map[S][]*plan.Plan)
	}
	return st
}

// shardOf hashes the subproblem key to a shard index. The raw bit pattern
// is heavily clustered (all keys of a level share a popcount), so the
// representation's Hash64 (a splitmix64-style finalizer) spreads it.
func shardOf[S bitset.RelSet[S]](s S) int {
	return int(s.Hash64() & (tableShards - 1))
}

func (st *stagingTable[S]) put(s S, entry []*plan.Plan) {
	sh := &st.shards[shardOf(s)]
	if !sh.mu.TryLock() {
		st.contention.Add(1)
		sh.mu.Lock()
	}
	sh.entries[s] = entry
	sh.mu.Unlock()
}

// sealInto moves every staged entry into the main table and resets the
// shards for the next level. Runs single-threaded at the level barrier.
func (st *stagingTable[S]) sealInto(table map[S][]*plan.Plan) {
	for i := range st.shards {
		sh := &st.shards[i]
		for s, e := range sh.entries {
			table[s] = e
			delete(sh.entries, s)
		}
	}
}

// subsetTask is the parallel work unit: every csg-cmp-pair of one level
// sharing the same result set, in enumeration order. Single ownership per
// subproblem key is what keeps the retention-policy insertion order — and
// hence the retained plans — identical to the sequential driver.
type subsetTask[S bitset.RelSet[S]] struct {
	s     S
	pairs []hypergraph.CsgCmpPair[S]
}

// groupBySubset splits a level's pairs into per-result-set tasks,
// preserving both first-appearance order of the keys and pair order within
// each key.
func groupBySubset[S bitset.RelSet[S]](chunk []hypergraph.CsgCmpPair[S]) []subsetTask[S] {
	idx := make(map[S]int, len(chunk))
	tasks := make([]subsetTask[S], 0, len(chunk))
	for _, pr := range chunk {
		s := pr.S1.Union(pr.S2)
		i, ok := idx[s]
		if !ok {
			i = len(tasks)
			idx[s] = i
			tasks = append(tasks, subsetTask[S]{s: s})
		}
		tasks[i].pairs = append(tasks[i].pairs, pr)
	}
	return tasks
}

// processSubset builds the complete DP-table entry for one subproblem key:
// the edge loop of Fig. 5 over every pair of the task, folded through the
// retention policy into a locally owned plan list.
func (g *generator[S]) processSubset(est *cost.Estimator, task subsetTask[S]) ([]*plan.Plan, int) {
	topLevel := task.s == g.all
	var entry []*plan.Plan
	built := 0
	apply := func(s1, s2 S, op *conflict.Op[S]) {
		var n int
		entry, n = g.buildInto(est, entry, task.s, s1, s2, op, topLevel)
		built += n
	}
	for _, pr := range task.pairs {
		g.forEachApplicable(pr, apply)
	}
	return entry, built
}

// runLevelsParallel processes the DP levels with a worker pool. Workers
// claim subset tasks off a shared atomic cursor; each worker estimates
// through its own estimator clone (the clones share the immutable query
// analysis but own their cardinality caches, so no estimator lock exists
// on the hot path).
func (g *generator[S]) runLevelsParallel(pairs []hypergraph.CsgCmpPair[S], workers int) {
	staging := newStagingTable[S]()
	ests := make([]*cost.Estimator, workers)
	ests[0] = g.est
	for i := 1; i < workers; i++ {
		ests[i] = g.est.Clone()
	}
	forEachLevel(pairs, func(level int, chunk []hypergraph.CsgCmpPair[S]) {
		start := time.Now()
		tasks := groupBySubset(chunk)
		nw := workers
		if nw > len(tasks) {
			nw = len(tasks)
		}
		if nw <= 1 {
			// A single subproblem key cannot fan out; skip the pool.
			for _, task := range tasks {
				entry, built := g.processSubset(g.est, task)
				g.stats.PlansBuilt += built
				if len(entry) > 0 {
					g.table[task.s] = entry
				}
			}
		} else {
			var cursor, built atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func(est *cost.Estimator) {
					defer wg.Done()
					local := 0
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(tasks) {
							break
						}
						entry, n := g.processSubset(est, tasks[i])
						local += n
						if len(entry) > 0 {
							staging.put(tasks[i].s, entry)
						}
					}
					built.Add(int64(local))
				}(ests[w])
			}
			wg.Wait()
			staging.sealInto(g.table)
			g.stats.PlansBuilt += int(built.Load())
		}
		g.stats.Levels = append(g.stats.Levels, LevelStat{
			Level: level, Pairs: len(chunk), Subsets: len(tasks), Duration: time.Since(start),
		})
	})
	g.stats.ShardContention = staging.contention.Load()
}
