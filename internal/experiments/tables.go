package experiments

import (
	"fmt"
	"time"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/tpch"
)

// Table1 reproduces Table 1 exactly: the C_out values of every
// subexpression of the two operator trees of Fig. 11, computed by actually
// executing the example relations R0, R1, R2 through the algebra runtime.
type Table1Result struct {
	// Left tree (lazy): e1,2 ; e0,1,2 ; Γ(e0,1,2).
	CoutE12, CoutE012, CoutGroupLazy float64
	// Right tree (eager): e'1 ; e'1,2 ; e'0,1,2 ; Γ(e'0,1,2).
	CoutE1g, CoutE12g, CoutE012g, CoutGroupEager float64
}

// Table1 executes the Fig. 11 example. The expected values (the paper's
// Table 1) are: 4, 8, 10 for the lazy tree and 3, 5, 7, 9 for the eager
// tree — with the final grouping replaceable by a free projection, leaving
// 7 versus 10.
func Table1() Table1Result {
	r0 := algebra.NewRel([]string{"r0.a", "r0.b"},
		[]any{0, 0}, []any{1, 0}, []any{2, 1}, []any{3, 1})
	r1 := algebra.NewRel([]string{"r1.c", "r1.d"},
		[]any{0, 1}, []any{1, 0}, []any{2, 1}, []any{3, 1}, []any{4, 4})
	r2 := algebra.NewRel([]string{"r2.e", "r2.f"},
		[]any{0, 0}, []any{1, 1}, []any{2, 3}, []any{3, 4})

	// Lazy tree: Γ_{d;d':count(*)}(R0 B_{a=f} (R1 B_{d=e} R2)).
	e12 := algebra.Join(r1, r2, algebra.EqAttr("r1.d", "r2.e"))
	e012 := algebra.Join(r0, e12, algebra.EqAttr("r0.a", "r2.f"))
	gLazy := algebra.Group(e012, []string{"r1.d"},
		aggfn.Vector{{Out: "d'", Kind: aggfn.CountStar}})

	// Eager tree: Γ_{d;d'':sum(d')}(R0 B_{a=f} (Γ_{d;d':count(*)}(R1) B_{d=e} R2)).
	e1g := algebra.Group(r1, []string{"r1.d"},
		aggfn.Vector{{Out: "d'", Kind: aggfn.CountStar}})
	e12g := algebra.Join(e1g, r2, algebra.EqAttr("r1.d", "r2.e"))
	e012g := algebra.Join(r0, e12g, algebra.EqAttr("r0.a", "r2.f"))
	gEager := algebra.Group(e012g, []string{"r1.d"},
		aggfn.Vector{{Out: "d''", Kind: aggfn.Sum, Arg: "d'"}})

	// C_out accumulates intermediate sizes; scans are free.
	c12 := float64(e12.Card())
	c012 := c12 + float64(e012.Card())
	cLazy := c012 + float64(gLazy.Card())
	c1g := float64(e1g.Card())
	c12g := c1g + float64(e12g.Card())
	c012g := c12g + float64(e012g.Card())
	cEager := c012g + float64(gEager.Card())

	return Table1Result{
		CoutE12: c12, CoutE012: c012, CoutGroupLazy: cLazy,
		CoutE1g: c1g, CoutE12g: c12g, CoutE012g: c012g, CoutGroupEager: cEager,
	}
}

// Format renders Table 1 like the paper.
func (t Table1Result) Format() string {
	return fmt.Sprintf(`Table 1: C_out of the Fig. 11 subexpressions (paper values in parentheses)
  lazy tree:  Cout(e1,2)=%g (4)  Cout(e0,1,2)=%g (8)  Cout(Γ(e0,1,2))=%g (10)
  eager tree: Cout(e'1)=%g (3)  Cout(e'1,2)=%g (5)  Cout(e'0,1,2)=%g (7)  Cout(Γ(e'0,1,2))=%g (9)
  with the final grouping replaced by a projection: 7 vs 10
`,
		t.CoutE12, t.CoutE012, t.CoutGroupLazy,
		t.CoutE1g, t.CoutE12g, t.CoutE012g, t.CoutGroupEager)
}

// Table2Row is one column of the paper's Table 2 for one query.
type Table2Row struct {
	Query   string
	TimeEA  time.Duration
	TimeH1  time.Duration
	TimeH2  time.Duration
	TimeDP  time.Duration
	RelTime map[string]float64 // EA/DPhyp, H1/DPhyp, H2/DPhyp
	RelCost map[string]float64 // EA/DPhyp, H1/DPhyp, H2/DPhyp
	CostDP  float64
	CostEA  float64
	CostH1  float64
	CostH2  float64
}

// Table2 reproduces Table 2: optimization time and relative plan cost of
// EA-Prune, H1 and H2 (F = 1.03) versus DPhyp for the example query and
// the TPC-H queries Q3, Q5 and Q10 on SF-1 statistics.
func Table2() []Table2Row {
	names := []string{"Ex", "Q3", "Q5", "Q10"}
	qs := tpch.Queries()
	var rows []Table2Row
	for _, name := range names {
		q := qs[name]
		timeOf := func(alg core.Algorithm, f float64) (time.Duration, float64) {
			// Median-of-few to stabilize sub-millisecond timings.
			best := time.Duration(1 << 62)
			var cost float64
			for i := 0; i < 5; i++ {
				start := time.Now()
				res, err := core.Optimize(q, core.Options{Algorithm: alg, F: f})
				if err != nil {
					panic(err)
				}
				if d := time.Since(start); d < best {
					best = d
				}
				cost = res.Plan.Cost
			}
			return best, cost
		}
		row := Table2Row{Query: name, RelTime: map[string]float64{}, RelCost: map[string]float64{}}
		row.TimeEA, row.CostEA = timeOf(core.AlgEAPrune, 0)
		row.TimeH1, row.CostH1 = timeOf(core.AlgH1, 0)
		row.TimeH2, row.CostH2 = timeOf(core.AlgH2, 1.03)
		row.TimeDP, row.CostDP = timeOf(core.AlgDPhyp, 0)
		row.RelTime["EA/DPhyp"] = float64(row.TimeEA) / float64(row.TimeDP)
		row.RelTime["H1/DPhyp"] = float64(row.TimeH1) / float64(row.TimeDP)
		row.RelTime["H2/DPhyp"] = float64(row.TimeH2) / float64(row.TimeDP)
		row.RelCost["EA/DPhyp"] = row.CostEA / row.CostDP
		row.RelCost["H1/DPhyp"] = row.CostH1 / row.CostDP
		row.RelCost["H2/DPhyp"] = row.CostH2 / row.CostDP
		rows = append(rows, row)
	}
	return rows
}

// FormatTable2 renders the rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	out := "Table 2: optimization time and plan cost for the TPC-H queries\n"
	out += fmt.Sprintf("%-22s", "metric")
	for _, r := range rows {
		out += fmt.Sprintf(" %12s", r.Query)
	}
	out += "\n"
	line := func(label string, f func(Table2Row) string) {
		out += fmt.Sprintf("%-22s", label)
		for _, r := range rows {
			out += fmt.Sprintf(" %12s", f(r))
		}
		out += "\n"
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000) }
	line("Time EA [ms]", func(r Table2Row) string { return ms(r.TimeEA) })
	line("Time H1 [ms]", func(r Table2Row) string { return ms(r.TimeH1) })
	line("Time H2 [ms]", func(r Table2Row) string { return ms(r.TimeH2) })
	line("Time DPhyp [ms]", func(r Table2Row) string { return ms(r.TimeDP) })
	line("Rel. Time EA/DPhyp", func(r Table2Row) string { return fmt.Sprintf("%.2f", r.RelTime["EA/DPhyp"]) })
	line("Rel. Time H1/DPhyp", func(r Table2Row) string { return fmt.Sprintf("%.2f", r.RelTime["H1/DPhyp"]) })
	line("Rel. Time H2/DPhyp", func(r Table2Row) string { return fmt.Sprintf("%.2f", r.RelTime["H2/DPhyp"]) })
	line("Rel. Cost EA/DPhyp", func(r Table2Row) string { return fmt.Sprintf("%.3g", r.RelCost["EA/DPhyp"]) })
	line("Rel. Cost H1/DPhyp", func(r Table2Row) string { return fmt.Sprintf("%.3g", r.RelCost["H1/DPhyp"]) })
	line("Rel. Cost H2/DPhyp", func(r Table2Row) string { return fmt.Sprintf("%.3g", r.RelCost["H2/DPhyp"]) })
	return out
}
