package experiments

import (
	"fmt"
	"strings"
	"time"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/engine"
)

// FeedbackRow is one (query, plan-generator) cell of the feedback
// experiment: the cardinality feedback loop run to convergence, with the
// baseline (round 1, pure selectivity model) compared against the final
// (measured-cardinality) round.
type FeedbackRow struct {
	Query string
	Plan  string // "lazy/DPhyp" or "eager/EA-Prune"
	// Rounds is the number of optimize→execute rounds the loop ran;
	// Converged whether the plan reached its fixed point within them.
	Rounds    int
	Converged bool
	// PlanChanged reports whether feedback changed the chosen plan
	// (baseline vs final round, structural comparison).
	PlanChanged bool
	// QErrBefore/QErrAfter are the plan-level C_out q-errors of the
	// baseline and final rounds; WorstBefore/WorstAfter the worst
	// single-operator q-errors of the same rounds.
	QErrBefore, QErrAfter   float64
	WorstBefore, WorstAfter float64
	// CoutBefore/CoutAfter are the measured intermediate-result volumes:
	// the delta is the execution-side win (or cost) of re-optimizing.
	CoutBefore, CoutAfter float64
	Millis                float64 // total loop wall time (all rounds)
	// Match reports result equality of the final round against the
	// canonical evaluation.
	Match bool
}

// FeedbackReport is the output of the -exec -feedback mode.
type FeedbackReport struct {
	Factor  float64
	Workers int
	Rows    []FeedbackRow
}

// FeedbackEval closes the cardinality feedback loop per TPC-H query and
// plan generator: optimize, execute on synthetic data scaled by factor,
// harvest the measured per-operator cardinalities, re-optimize under
// them, and iterate until the plan is stable. A nil or empty names list
// selects every query. cfg.Workers drives the optimizer and the
// morsel-driven execution runtime in every round.
func FeedbackEval(cfg Config, factor float64, names []string) *FeedbackReport {
	cfg = cfg.Defaults()
	rep := &FeedbackReport{Factor: factor, Workers: cfg.Workers}
	for _, name := range execQueryNames(names) {
		q, data, wantRel, attrs, _ := execSetup(cfg, factor, name)

		for _, alg := range execAlgs {
			// With a trace attached, each cell's feedback rounds (and the
			// optimize/operator spans within them) nest under one "query"
			// span — the Perfetto view of the loop converging.
			cid := -1
			if cfg.Trace != nil {
				cid = cfg.Trace.Begin(name+" "+alg.label, "query")
			}
			start := time.Now()
			res, err := engine.Reoptimize(q, data, engine.FeedbackOptions{
				Opt:  core.Options{Algorithm: alg.alg, Workers: cfg.Workers, Phys: cfg.Phys},
				Exec: engine.ExecOptions{Workers: cfg.Workers, Runtime: cfg.Runtime, Trace: cfg.Trace},
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: feedback %s/%s: %v", name, alg.label, err))
			}
			if cid >= 0 {
				cfg.Trace.SetRows(cid, -1, int64(res.Final().Stats.ResultRows))
				cfg.Trace.End(cid)
			}
			first, final := res.First().Stats, res.Final().Stats
			row := FeedbackRow{
				Query:       name,
				Plan:        alg.label,
				Rounds:      len(res.Rounds),
				Converged:   res.Converged,
				PlanChanged: res.PlanChanged(),
				QErrBefore:  first.CoutQError(),
				QErrAfter:   final.CoutQError(),
				CoutBefore:  first.ActualCout,
				CoutAfter:   final.ActualCout,
				Millis:      float64(time.Since(start).Microseconds()) / 1000,
				Match:       algebra.EqualBags(wantRel, res.Result.Rel(), attrs),
			}
			if w, ok := first.WorstOp(); ok {
				row.WorstBefore = w.QError()
			}
			if w, ok := final.WorstOp(); ok {
				row.WorstAfter = w.QError()
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// AllMatch reports whether every final-round plan reproduced the
// canonical result — the go/no-go signal for scripted use.
func (r *FeedbackReport) AllMatch() bool {
	for _, row := range r.Rows {
		if !row.Match {
			return false
		}
	}
	return true
}

// AnyPlanChanged reports whether feedback changed at least one chosen
// plan (the loop's raison d'être at small scale factors, where the model
// is off by orders of magnitude).
func (r *FeedbackReport) AnyPlanChanged() bool {
	for _, row := range r.Rows {
		if row.PlanChanged {
			return true
		}
	}
	return false
}

// Format renders the report as an aligned table: per query and plan
// generator, the q-error of the C_out estimate before (pure model) and
// after feedback, whether the plan changed, and the measured
// intermediate-volume delta.
func (r *FeedbackReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cardinality feedback: optimize → execute → re-optimize until stable (scale factor %g, workers %d)\n", r.Factor, r.Workers)
	fmt.Fprintf(&b, "%-6s %-15s %6s %5s %8s %9s %9s %9s %9s %12s %12s %10s %6s\n",
		"query", "plan", "rounds", "conv", "changed", "q-err:1st", "q-err:fin", "worst:1st", "worst:fin",
		"C_out:1st", "C_out:fin", "ms", "match")
	for _, row := range r.Rows {
		match := "ok"
		if !row.Match {
			match = "FAIL"
		}
		changed := "-"
		if row.PlanChanged {
			changed = "yes"
		}
		conv := "yes"
		if !row.Converged {
			conv = "NO"
		}
		fmt.Fprintf(&b, "%-6s %-15s %6d %5s %8s %9.2f %9.2f %9.2f %9.2f %12.0f %12.0f %10.2f %6s\n",
			row.Query, row.Plan, row.Rounds, conv, changed,
			row.QErrBefore, row.QErrAfter, row.WorstBefore, row.WorstAfter,
			row.CoutBefore, row.CoutAfter, row.Millis, match)
	}
	return b.String()
}
