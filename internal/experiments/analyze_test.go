package experiments

import (
	"strings"
	"testing"
)

// TestAnalyzeEvalQ5 runs the EXPLAIN ANALYZE evaluation on Q5 end to
// end: both plan generators, results verified, and the rendered report
// carrying est-vs-actual annotations for the before-feedback tree.
func TestAnalyzeEvalQ5(t *testing.T) {
	rep := AnalyzeEval(Config{}, 1, "Q5")
	if len(rep.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if !c.Match {
			t.Errorf("%s: final round does not match the canonical result", c.Plan)
		}
		if c.Rounds < 1 {
			t.Errorf("%s: no executed rounds", c.Plan)
		}
		for _, part := range []string{"est=", "act=", "q=", "time=", "rows="} {
			if !strings.Contains(c.Before, part) {
				t.Errorf("%s: before-tree missing %q:\n%s", c.Plan, part, c.Before)
			}
		}
		if c.QErrBefore < 1 || c.QErrAfter < 1 {
			t.Errorf("%s: q-errors below 1: %v → %v", c.Plan, c.QErrBefore, c.QErrAfter)
		}
	}
	text := rep.Format()
	for _, want := range []string{"EXPLAIN ANALYZE: Q5", "before feedback (round 1", "=== lazy/DPhyp ===", "=== eager/EA-Prune ==="} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
