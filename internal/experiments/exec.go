package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/tpch"
)

// ExecRow is one executed plan of the execution experiment.
type ExecRow struct {
	Query      string
	Plan       string // "lazy/DPhyp" or "eager/EA-Prune"
	Groupings  int    // pushed-down groupings in the plan
	Millis     float64
	ResultRows int
	// ActualCout and EstimatedCout compare the cost model against the
	// measured intermediate-result volume; QError is the clamped
	// q-error max(e,1)/max(a,1) folded over both directions (≥ 1, with
	// a zero-vs-nonzero mismatch degrading by its magnitude instead of
	// reading as perfect). QErrorTrivial marks the vacuous case — no
	// costed operators at all — which the report prints as "-".
	ActualCout    float64
	EstimatedCout float64
	QError        float64
	QErrorTrivial bool
	// RowsPerSec is the runtime throughput: intermediate + final rows
	// produced per second of execution.
	RowsPerSec float64
	// Match reports result equality against the canonical evaluation.
	Match bool
}

// ExecReport is the output of the -exec mode: per TPC-H query, the
// canonical evaluation time plus one row per optimized plan.
type ExecReport struct {
	Factor      float64
	Workers     int // execution workers (1 = sequential reference)
	CanonMillis map[string]float64
	Rows        []ExecRow
}

// ExecEval optimizes each named TPC-H query lazily (DPhyp) and eagerly
// (EA-Prune), executes both plans and the canonical tree on synthetic
// data scaled by factor, verifies result equality, and reports
// throughput and the C_out-vs-actual cardinality error. A nil or empty
// names list selects every query. cfg.Workers drives both the optimizer
// and the morsel-driven execution runtime; results are bit-identical
// for every worker count.
func ExecEval(cfg Config, factor float64, names []string) *ExecReport {
	cfg = cfg.Defaults()
	execOpts := engine.ExecOptions{Workers: cfg.Workers}
	queries := tpch.Queries()
	if len(names) == 0 {
		for name := range queries {
			names = append(names, name)
		}
		sort.Strings(names)
	}
	rep := &ExecReport{Factor: factor, Workers: cfg.Workers, CanonMillis: map[string]float64{}}
	for _, name := range names {
		q, ok := queries[name]
		if !ok {
			panic(fmt.Sprintf("experiments: unknown TPC-H query %q", name))
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		data := tpch.GenerateTables(rng, q, tpch.ExecutionScaleAt(name, factor))

		start := time.Now()
		want, err := engine.CanonicalTablesOpts(q, data, execOpts)
		if err != nil {
			panic(fmt.Sprintf("experiments: canonical %s: %v", name, err))
		}
		rep.CanonMillis[name] = float64(time.Since(start).Microseconds()) / 1000
		wantRel := want.Rel()
		attrs := engine.OutputAttrs(q)

		for _, alg := range []struct {
			label string
			alg   core.Algorithm
		}{
			{"lazy/DPhyp", core.AlgDPhyp},
			{"eager/EA-Prune", core.AlgEAPrune},
		} {
			res := mustOptimize(q, alg.alg, 0, cfg.Workers)
			start := time.Now()
			tab, stats, err := engine.ExecProfiledOpts(q, res.Plan, data, execOpts)
			if err != nil {
				panic(fmt.Sprintf("experiments: exec %s/%s: %v", name, alg.label, err))
			}
			elapsed := time.Since(start)
			secs := elapsed.Seconds()
			row := ExecRow{
				Query:         name,
				Plan:          alg.label,
				Groupings:     res.Plan.CountGroupings(),
				Millis:        float64(elapsed.Microseconds()) / 1000,
				ResultRows:    stats.ResultRows,
				ActualCout:    stats.ActualCout,
				EstimatedCout: stats.EstimatedCout,
				QError:        stats.CoutQError(),
				QErrorTrivial: stats.CoutTrivial(),
				Match:         algebra.EqualBags(wantRel, tab.Rel(), attrs),
			}
			if secs > 0 {
				row.RowsPerSec = stats.ActualCout / secs
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// AllMatch reports whether every executed plan reproduced the canonical
// result — the go/no-go signal for scripted use of the -exec mode.
func (r *ExecReport) AllMatch() bool {
	for _, row := range r.Rows {
		if !row.Match {
			return false
		}
	}
	return true
}

// Format renders the report as an aligned table.
func (r *ExecReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Execution: optimized vs canonical plans on synthetic TPC-H data (scale factor %g, workers %d)\n", r.Factor, r.Workers)
	fmt.Fprintf(&b, "%-6s %-15s %4s %10s %10s %12s %12s %12s %8s %6s\n",
		"query", "plan", "Γ", "ms", "rows", "C_out act", "C_out est", "rows/s", "q-err", "match")
	var names []string
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if !seen[row.Query] {
			seen[row.Query] = true
			names = append(names, row.Query)
		}
	}
	for _, name := range names {
		for _, row := range r.Rows {
			if row.Query != name {
				continue
			}
			match := "ok"
			if !row.Match {
				match = "FAIL"
			}
			qerr := fmt.Sprintf("%8.2f", row.QError)
			if row.QErrorTrivial {
				qerr = fmt.Sprintf("%8s", "-") // no costed operators: nothing to estimate
			}
			fmt.Fprintf(&b, "%-6s %-15s %4d %10.2f %10d %12.0f %12.0f %12.0f %s %6s\n",
				row.Query, row.Plan, row.Groupings, row.Millis, row.ResultRows,
				row.ActualCout, row.EstimatedCout, row.RowsPerSec, qerr, match)
		}
		fmt.Fprintf(&b, "%-6s %-15s %4s %10.2f   (canonical evaluation of the initial tree)\n",
			name, "canonical", "-", r.CanonMillis[name])
	}
	return b.String()
}
