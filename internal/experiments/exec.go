package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/query"
	"eagg/internal/tpch"
)

// ExecRow is one executed plan of the execution experiment.
type ExecRow struct {
	Query      string
	Plan       string // "lazy/DPhyp" or "eager/EA-Prune"
	Groupings  int    // pushed-down groupings in the plan
	Millis     float64
	ResultRows int
	// ActualCout and EstimatedCout compare the cost model against the
	// measured intermediate-result volume; QError is the clamped
	// q-error max(e,1)/max(a,1) folded over both directions (≥ 1, with
	// a zero-vs-nonzero mismatch degrading by its magnitude instead of
	// reading as perfect). QErrorTrivial marks the vacuous case — no
	// costed operators at all — which the report prints as "-".
	ActualCout    float64
	EstimatedCout float64
	QError        float64
	QErrorTrivial bool
	// WorstOpQError and WorstOp drill the plan-level aggregate down to
	// the per-operator cardinality profile: the largest single-operator
	// q-error and a description of the operator it occurs at (canonical
	// key rendered with relation/attribute names). The worst operator is
	// where the estimate actually went wrong — a plan-level number close
	// to 1 can hide large errors that cancel.
	WorstOpQError float64
	WorstOp       string
	// RowsPerSec is the runtime throughput: intermediate + final rows
	// produced per second of execution.
	RowsPerSec float64
	// SortsPerformed/SortsEliminated count the sorts of the plan's
	// sort-based operators: inputs that had to be sorted versus inputs
	// whose existing order was reused (the interesting-order win). Both
	// zero for pure hash plans.
	SortsPerformed, SortsEliminated int
	// Hash is the flat hash-table telemetry of the execution: builds,
	// mean load factor, worst probe distance and bloom-filter traffic.
	// Zero Builds under the row runtime's map-based sequential path.
	Hash algebra.HashTableStats
	// Match reports result equality against the canonical evaluation.
	Match bool
}

// ExecReport is the output of the -exec mode: per TPC-H query, the
// canonical evaluation time plus one row per optimized plan.
type ExecReport struct {
	Factor      float64
	Workers     int            // execution workers (1 = sequential reference)
	Phys        core.PhysMode  // physical algebra the plans were built for
	Runtime     engine.Runtime // execution runtime (row or batch)
	CanonMillis map[string]float64
	Rows        []ExecRow
}

// execAlgs is the plan-generator axis every execution experiment
// compares: the lazy baseline against the eager optimum.
var execAlgs = []struct {
	label string
	alg   core.Algorithm
}{
	{"lazy/DPhyp", core.AlgDPhyp},
	{"eager/EA-Prune", core.AlgEAPrune},
}

// execQueryNames resolves the query selection of an execution
// experiment: nil or empty selects every TPC-H query, sorted.
func execQueryNames(names []string) []string {
	if len(names) > 0 {
		return names
	}
	for name := range tpch.Queries() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// execSetup prepares one named query for an execution experiment: the
// scaled synthetic instance (deterministic per cfg.Seed), the canonical
// reference result with its evaluation time, and the output schema. The
// scaling, seeding and canonical-evaluation rules live only here so the
// -exec and -feedback reports stay comparable.
func execSetup(cfg Config, factor float64, name string) (q *query.Query, data engine.TableData, wantRel *algebra.Rel, attrs []string, canonMillis float64) {
	q, ok := tpch.Queries()[name]
	if !ok {
		panic(fmt.Sprintf("experiments: unknown TPC-H query %q", name))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	data = tpch.GenerateTables(rng, q, tpch.ExecutionScaleAt(name, factor))
	start := time.Now()
	want, err := engine.CanonicalTablesOpts(q, data, engine.ExecOptions{Workers: cfg.Workers})
	if err != nil {
		panic(fmt.Sprintf("experiments: canonical %s: %v", name, err))
	}
	canonMillis = float64(time.Since(start).Microseconds()) / 1000
	return q, data, want.Rel(), engine.OutputAttrs(q), canonMillis
}

// ExecEval optimizes each named TPC-H query lazily (DPhyp) and eagerly
// (EA-Prune), executes both plans and the canonical tree on synthetic
// data scaled by factor, verifies result equality, and reports
// throughput and the C_out-vs-actual cardinality error. A nil or empty
// names list selects every query. cfg.Workers drives both the optimizer
// and the morsel-driven execution runtime; results are bit-identical
// for every worker count.
func ExecEval(cfg Config, factor float64, names []string) *ExecReport {
	cfg = cfg.Defaults()
	execOpts := engine.ExecOptions{Workers: cfg.Workers, Runtime: cfg.Runtime, Trace: cfg.Trace}
	rep := &ExecReport{Factor: factor, Workers: cfg.Workers, Phys: cfg.Phys, Runtime: cfg.Runtime, CanonMillis: map[string]float64{}}
	for _, name := range execQueryNames(names) {
		q, data, wantRel, attrs, canonMillis := execSetup(cfg, factor, name)
		rep.CanonMillis[name] = canonMillis

		for _, alg := range execAlgs {
			// With a trace attached, each (query, plan) cell gets one
			// "query" span; the optimizer phases (TraceOptimize) and the
			// executor's operator spans nest under it.
			cid := -1
			if cfg.Trace != nil {
				cid = cfg.Trace.Begin(name+" "+alg.label, "query")
			}
			res, err := engine.TraceOptimize(cfg.Trace, "optimize", func() (*core.Result, error) {
				return core.Optimize(q, core.Options{Algorithm: alg.alg, Workers: cfg.Workers, Phys: cfg.Phys})
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: optimize %s/%s: %v", name, alg.label, err))
			}
			start := time.Now()
			tab, stats, err := engine.ExecProfiledOpts(q, res.Plan, data, execOpts)
			if err != nil {
				panic(fmt.Sprintf("experiments: exec %s/%s: %v", name, alg.label, err))
			}
			elapsed := time.Since(start)
			if cid >= 0 {
				cfg.Trace.SetRows(cid, -1, int64(stats.ResultRows))
				cfg.Trace.End(cid)
			}
			secs := elapsed.Seconds()
			row := ExecRow{
				Query:         name,
				Plan:          alg.label,
				Groupings:     res.Plan.CountGroupings(),
				Millis:        float64(elapsed.Microseconds()) / 1000,
				ResultRows:    stats.ResultRows,
				ActualCout:    stats.ActualCout,
				EstimatedCout: stats.EstimatedCout,
				QError:        stats.CoutQError(),
				QErrorTrivial: stats.CoutTrivial(),
				Hash:          stats.Hash,
				Match:         algebra.EqualBags(wantRel, tab.Rel(), attrs),
			}
			if w, ok := stats.WorstOp(); ok {
				row.WorstOpQError = w.QError()
				row.WorstOp = w.Key.Describe(q)
			}
			row.SortsPerformed, row.SortsEliminated = res.Plan.SortStats()
			if secs > 0 {
				row.RowsPerSec = stats.ActualCout / secs
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep
}

// AllMatch reports whether every executed plan reproduced the canonical
// result — the go/no-go signal for scripted use of the -exec mode.
func (r *ExecReport) AllMatch() bool {
	for _, row := range r.Rows {
		if !row.Match {
			return false
		}
	}
	return true
}

// Format renders the report as an aligned table. The q-error columns
// expose the per-operator cardinality profile: the plan-level aggregate
// plus the worst single operator (value and the operator it occurs at).
// The hash-table columns (mean load factor, worst probe distance, bloom
// pass rate) profile the flat tables of the batch runtime; "-" means no
// flat table (or no bloom filter) was built.
func (r *ExecReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Execution: optimized vs canonical plans on synthetic TPC-H data (scale factor %g, workers %d, phys %v, runtime %v)\n", r.Factor, r.Workers, r.Phys, r.Runtime)
	fmt.Fprintf(&b, "%-6s %-15s %4s %7s %10s %10s %12s %12s %12s %7s %6s %5s %8s %9s %6s  %s\n",
		"query", "plan", "Γ", "sorts", "ms", "rows", "C_out act", "C_out est", "rows/s", "ht-load", "probe≤", "bloom", "q-err", "worst-op", "match", "worst operator")
	var names []string
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if !seen[row.Query] {
			seen[row.Query] = true
			names = append(names, row.Query)
		}
	}
	for _, name := range names {
		for _, row := range r.Rows {
			if row.Query != name {
				continue
			}
			match := "ok"
			if !row.Match {
				match = "FAIL"
			}
			qerr := fmt.Sprintf("%8.2f", row.QError)
			worst := fmt.Sprintf("%9.2f", row.WorstOpQError)
			if row.QErrorTrivial {
				// no costed operators: nothing to estimate
				qerr = fmt.Sprintf("%8s", "-")
				worst = fmt.Sprintf("%9s", "-")
			}
			// sorts column: performed/eliminated on the sort-based
			// layer; "-" for pure hash plans.
			sorts := "-"
			if row.SortsPerformed+row.SortsEliminated > 0 {
				sorts = fmt.Sprintf("%d/%d", row.SortsPerformed, row.SortsEliminated)
			}
			// hash-table columns: flat-table builds happen only on the
			// batch runtime; a bloom rate only when a filter was gated in.
			htLoad, htProbe, htBloom := "-", "-", "-"
			if row.Hash.Builds > 0 {
				htLoad = fmt.Sprintf("%.2f", row.Hash.LoadFactor())
				htProbe = fmt.Sprintf("%d", row.Hash.MaxProbe)
				if row.Hash.BloomChecks > 0 {
					htBloom = fmt.Sprintf("%.0f%%", 100*row.Hash.BloomPassRate())
				}
			}
			fmt.Fprintf(&b, "%-6s %-15s %4d %7s %10.2f %10d %12.0f %12.0f %12.0f %7s %6s %5s %s %s %6s  %s\n",
				row.Query, row.Plan, row.Groupings, sorts, row.Millis, row.ResultRows,
				row.ActualCout, row.EstimatedCout, row.RowsPerSec, htLoad, htProbe, htBloom, qerr, worst, match, row.WorstOp)
		}
		fmt.Fprintf(&b, "%-6s %-15s %4s %7s %10.2f   (canonical evaluation of the initial tree)\n",
			name, "canonical", "-", "-", r.CanonMillis[name])
	}
	return b.String()
}
