// Machine-readable report output: the -json mode of eabench. The JSON
// mirrors the Format() tables — same rows, same quantities — with enum
// fields rendered as their String() forms so downstream tooling never
// depends on internal constant values.
package experiments

import (
	"encoding/json"
	"io"
)

// WriteJSON writes the execution report as indented JSON.
func (r *ExecReport) WriteJSON(w io.Writer) error {
	out := struct {
		Mode        string             `json:"mode"`
		Factor      float64            `json:"factor"`
		Workers     int                `json:"workers"`
		Phys        string             `json:"phys"`
		Runtime     string             `json:"runtime"`
		AllMatch    bool               `json:"all_match"`
		CanonMillis map[string]float64 `json:"canon_millis"`
		Rows        []ExecRow          `json:"rows"`
	}{
		Mode:        "exec",
		Factor:      r.Factor,
		Workers:     r.Workers,
		Phys:        r.Phys.String(),
		Runtime:     r.Runtime.String(),
		AllMatch:    r.AllMatch(),
		CanonMillis: r.CanonMillis,
		Rows:        r.Rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteJSON writes the feedback report as indented JSON.
func (r *FeedbackReport) WriteJSON(w io.Writer) error {
	out := struct {
		Mode     string        `json:"mode"`
		Factor   float64       `json:"factor"`
		Workers  int           `json:"workers"`
		AllMatch bool          `json:"all_match"`
		Rows     []FeedbackRow `json:"rows"`
	}{
		Mode:     "feedback",
		Factor:   r.Factor,
		Workers:  r.Workers,
		AllMatch: r.AllMatch(),
		Rows:     r.Rows,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
