package experiments

import (
	"strings"
	"testing"
)

// TestTable1ExactPaperValues: the Fig. 11 walk-through must reproduce the
// paper's Table 1 numbers exactly — this is data-level, not estimate-level.
func TestTable1ExactPaperValues(t *testing.T) {
	got := Table1()
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"Cout(e1,2)", got.CoutE12, 4},
		{"Cout(e0,1,2)", got.CoutE012, 8},
		{"Cout(Γ(e0,1,2))", got.CoutGroupLazy, 10},
		{"Cout(e'1)", got.CoutE1g, 3},
		{"Cout(e'1,2)", got.CoutE12g, 5},
		{"Cout(e'0,1,2)", got.CoutE012g, 7},
		{"Cout(Γ(e'0,1,2))", got.CoutGroupEager, 9},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s = %g, want %g", c.name, c.got, c.want)
		}
	}
	if !strings.Contains(got.Format(), "7 vs 10") {
		t.Error("Format must mention the projection-eliminated comparison")
	}
}

// TestFig15Shape: the DPhyp/EA-Prune cost ratio is ≥1 everywhere and grows
// with the relation count (allowing sampling noise between adjacent
// sizes). This is the paper's "gain" claim.
func TestFig15Shape(t *testing.T) {
	cfg := Config{Queries: 8, MaxNPrune: 8, Seed: 7}
	fig := Fig15(cfg)
	if len(fig.Points) == 0 {
		t.Fatal("empty figure")
	}
	first := fig.Points[0].Values["DPhyp/EA-Prune"]
	last := fig.Points[len(fig.Points)-1].Values["DPhyp/EA-Prune"]
	for _, p := range fig.Points {
		v := p.Values["DPhyp/EA-Prune"]
		if v < 1-1e-9 {
			t.Errorf("n=%d: ratio %.4g below 1 — DPhyp beat the optimum?!", p.N, v)
		}
		if p.Values["max outlier"] < v {
			t.Errorf("n=%d: max outlier below the mean", p.N)
		}
	}
	if last < first {
		t.Errorf("gain should grow with relations: n=%d → %.3g, n=%d → %.3g",
			fig.Points[0].N, first, fig.Points[len(fig.Points)-1].N, last)
	}
	if last < 1.2 {
		t.Errorf("gain at n=%d only %.3g — eager aggregation should pay off clearly", fig.Points[len(fig.Points)-1].N, last)
	}
}

// TestFig17Shape: heuristics sit between 1.0 (optimal) and the DPhyp
// ratio; H2 must not be worse than ~2× optimal on average at these sizes.
func TestFig17Shape(t *testing.T) {
	cfg := Config{Queries: 8, MaxNPrune: 7, Seed: 11}
	fig := Fig17(cfg)
	for _, p := range fig.Points {
		for name, v := range p.Values {
			if v < 1-1e-9 {
				t.Errorf("n=%d %s: relative cost %.4g below 1", p.N, name, v)
			}
			if v > 3 {
				t.Errorf("n=%d %s: relative cost %.4g implausibly high", p.N, name, v)
			}
		}
	}
}

// TestFig16And18Run: the timing figures must produce complete, positive
// series (values are machine-dependent; only structure is asserted).
func TestFig16And18Run(t *testing.T) {
	cfg := Config{Queries: 3, MaxN: 6, MaxNPrune: 5, MaxNExhaustive: 4, Seed: 3}
	f16 := Fig16(cfg)
	for _, p := range f16.Points {
		if p.Values["DPhyp"] <= 0 || p.Values["H1"] <= 0 {
			t.Errorf("n=%d: missing fast-algorithm timings", p.N)
		}
		if p.N <= cfg.MaxNExhaustive && p.Values["EA-All"] <= 0 {
			t.Errorf("n=%d: missing EA-All timing", p.N)
		}
		if p.N > cfg.MaxNExhaustive {
			if _, ok := p.Values["EA-All"]; ok {
				t.Errorf("n=%d: EA-All should stop at %d", p.N, cfg.MaxNExhaustive)
			}
		}
	}
	f18 := Fig18(cfg)
	for _, p := range f18.Points {
		if p.Values["H2/H1"] <= 0 {
			t.Errorf("n=%d: missing H2/H1 ratio", p.N)
		}
	}
	if !strings.Contains(f16.Format(), "Figure 16") {
		t.Error("Format broken")
	}
}

// TestTable2Shape mirrors the TPC-H expectations of Sec. 5.4.
func TestTable2Shape(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Query] = r
	}
	if byName["Ex"].RelCost["EA/DPhyp"] > 0.05 {
		t.Errorf("Ex gains should be dramatic, got %.4g", byName["Ex"].RelCost["EA/DPhyp"])
	}
	if byName["Q5"].RelCost["EA/DPhyp"] < byName["Q10"].RelCost["EA/DPhyp"] {
		t.Errorf("Q5 should benefit least: Q5=%.3g Q10=%.3g",
			byName["Q5"].RelCost["EA/DPhyp"], byName["Q10"].RelCost["EA/DPhyp"])
	}
	for _, r := range rows {
		if r.RelCost["EA/DPhyp"] > 1+1e-9 {
			t.Errorf("%s: EA worse than DPhyp (%.4g)", r.Query, r.RelCost["EA/DPhyp"])
		}
		if r.RelCost["H2/DPhyp"] < r.RelCost["EA/DPhyp"]-1e-9 {
			t.Errorf("%s: H2 below the optimum", r.Query)
		}
	}
	out := FormatTable2(rows)
	for _, want := range []string{"Ex", "Q3", "Q5", "Q10", "Rel. Cost EA/DPhyp"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatTable2 missing %q", want)
		}
	}
}

// TestFeedbackEval smokes the -exec -feedback experiment: every loop
// converges with final plan-level q-error 1 (the fixed point), every
// final result matches the canonical evaluation, and at small scale
// factors feedback demonstrably changes at least one chosen plan with a
// ≥10x plan-level q-error reduction on it.
func TestFeedbackEval(t *testing.T) {
	rep := FeedbackEval(Config{}, 1, nil)
	if !rep.AllMatch() {
		t.Fatalf("re-optimized plans must reproduce the canonical results:\n%s", rep.Format())
	}
	if len(rep.Rows) != 8 { // 4 queries × {lazy, eager}
		t.Fatalf("expected 8 rows, got %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if !row.Converged {
			t.Errorf("%s/%s: did not converge in %d rounds", row.Query, row.Plan, row.Rounds)
		}
		if row.QErrAfter > 1+1e-9 {
			t.Errorf("%s/%s: final q-error %g > 1", row.Query, row.Plan, row.QErrAfter)
		}
	}
	if !rep.AnyPlanChanged() {
		t.Fatalf("at sf 1 feedback should change at least one plan:\n%s", rep.Format())
	}
	for _, row := range rep.Rows {
		if row.PlanChanged && row.QErrBefore >= 10*row.QErrAfter {
			return // the acceptance property: plan changed and q-error fell ≥10x
		}
	}
	t.Fatalf("no changed plan with a ≥10x q-error reduction:\n%s", rep.Format())
}

// TestExecEvalWorstOp checks the per-operator drill-down of the -exec
// report: every non-trivial row carries a labeled worst-operator
// q-error ≥ 1.
func TestExecEvalWorstOp(t *testing.T) {
	rep := ExecEval(Config{}, 1, []string{"Q3"})
	for _, row := range rep.Rows {
		if row.QErrorTrivial {
			continue
		}
		if row.WorstOpQError < 1 || row.WorstOp == "" {
			t.Errorf("%s/%s: missing worst-op profile: %g %q", row.Query, row.Plan, row.WorstOpQError, row.WorstOp)
		}
	}
}
