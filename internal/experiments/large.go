package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/query"
	"eagg/internal/randquery"
)

// The -large mode: queries past the 63-relation fast path, optimized on
// the wide set representation and executed end-to-end. Chains stay
// exactly enumerable (the pair count is quadratic); stars and cliques
// trip the enumeration budget and fall back to the deterministic greedy
// construction. Either way the produced plan must reproduce the
// canonical result — the mode is the wide path's soak test, not just a
// stopwatch.

// LargeShapes maps the shape names accepted by -shape to their
// constructors. The relation count is part of the name so reports are
// self-describing.
var LargeShapes = map[string]func() *query.Query{
	"chain100":  func() *query.Query { return randquery.Chain(100) },
	"star100":   func() *query.Query { return randquery.Star(100) },
	"clique100": func() *query.Query { return randquery.Clique(100) },
}

// LargeShapeNames returns the accepted -shape names, sorted.
func LargeShapeNames() []string {
	names := make([]string, 0, len(LargeShapes))
	for name := range LargeShapes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// largeAlgs is the algorithm axis of the large-query report: the greedy
// heuristic H1 and the beam search, the two generators that remain
// feasible at 100 relations (EA-All and EA-Prune are exponential in the
// relation count and stop around 8 and 13).
var largeAlgs = []struct {
	label string
	alg   core.Algorithm
	width int
}{
	{"H1", core.AlgH1, 0},
	{"Beam(4)", core.AlgBeam, 4},
}

// LargeRow is one optimized-and-executed plan of the large-query report.
type LargeRow struct {
	Shape     string
	Alg       string
	Relations int
	// OptMillis and ExecMillis split the wall time into planning and
	// execution; Pairs is the number of enumerated csg-cmp-pairs and
	// BudgetHit reports whether the enumeration budget aborted the exact
	// enumeration (the greedy fallback then produced the plan).
	OptMillis  float64
	ExecMillis float64
	Pairs      int
	BudgetHit  bool
	Cost       float64
	ResultRows int
	Match      bool
}

// LargeReport is the output of the -large mode.
type LargeReport struct {
	Workers    int
	PairBudget int
	Rows       []LargeRow
}

// LargeEval optimizes each named shape with every feasible large-query
// algorithm on the wide set representation, executes the plans on small
// deterministic random data, and verifies each result against the
// canonical evaluation of the initial tree. pairBudget caps the exact
// enumeration (0 = the core default); cfg.Workers drives the optimizer
// and the execution runtime. Unknown shape names panic — the CLI
// validates them before calling.
func LargeEval(cfg Config, shapes []string, pairBudget int) *LargeReport {
	cfg = cfg.Defaults()
	rep := &LargeReport{Workers: cfg.Workers, PairBudget: pairBudget}
	if len(shapes) == 0 {
		shapes = LargeShapeNames()
	}
	for _, name := range shapes {
		build, ok := LargeShapes[name]
		if !ok {
			panic(fmt.Sprintf("experiments: unknown large shape %q", name))
		}
		q := build()
		data := LargeData(q, 6).Tables()
		want, err := engine.CanonicalTablesOpts(q, data, engine.ExecOptions{Workers: cfg.Workers})
		if err != nil {
			panic(fmt.Sprintf("experiments: canonical %s: %v", name, err))
		}
		wantRel, attrs := want.Rel(), engine.OutputAttrs(q)

		for _, a := range largeAlgs {
			start := time.Now()
			res, err := core.Optimize(q, core.Options{
				Algorithm: a.alg, BeamWidth: a.width,
				Workers: cfg.Workers, PairBudget: pairBudget,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: optimize %s/%s: %v", name, a.label, err))
			}
			optMillis := float64(time.Since(start).Microseconds()) / 1000

			start = time.Now()
			tab, stats, err := engine.ExecProfiledOpts(q, res.Plan, data, engine.ExecOptions{Workers: cfg.Workers, Runtime: cfg.Runtime})
			if err != nil {
				panic(fmt.Sprintf("experiments: exec %s/%s: %v", name, a.label, err))
			}
			rep.Rows = append(rep.Rows, LargeRow{
				Shape:      name,
				Alg:        a.label,
				Relations:  len(q.Relations),
				OptMillis:  optMillis,
				ExecMillis: float64(time.Since(start).Microseconds()) / 1000,
				Pairs:      res.Stats.CsgCmpPairs,
				BudgetHit:  res.Stats.PairBudgetExceeded,
				Cost:       res.Plan.Cost,
				ResultRows: stats.ResultRows,
				Match:      algebra.EqualBags(wantRel, tab.Rel(), attrs),
			})
		}
	}
	return rep
}

// LargeData generates deterministic diagonal contents for a large-shape
// query: every key and join attribute of row i holds the value i, other
// attributes cycle through small groups with occasional NULLs. Random
// contents would not do here — a 100-relation inner-join chain keeps a
// tuple only if all 99 predicates match, so independently drawn values
// make the result empty with near certainty and the end-to-end
// verification vacuous. On the diagonal, row i of every relation joins
// row i of every other, the result carries exactly rows tuples, and the
// declared pk scan orders stay truthful (keys count up in row order).
func LargeData(q *query.Query, rows int) engine.Data {
	joinOrKey := map[int]bool{}
	var walk func(n *query.OpNode)
	walk = func(n *query.OpNode) {
		if n == nil || n.Kind == query.KindScan {
			return
		}
		for _, a := range n.Pred.Left {
			joinOrKey[a] = true
		}
		for _, a := range n.Pred.Right {
			joinOrKey[a] = true
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(q.Root)
	for _, rel := range q.Relations {
		for _, k := range rel.Keys {
			k.ForEach(func(a int) { joinOrKey[a] = true })
		}
	}

	data := engine.Data{}
	for ri := range q.Relations {
		rel := &q.Relations[ri]
		r := &algebra.Rel{}
		rel.Attrs.ForEach(func(a int) { r.Attrs = append(r.Attrs, q.AttrNames[a]) })
		for row := 0; row < rows; row++ {
			t := algebra.Tuple{}
			rel.Attrs.ForEach(func(a int) {
				name := q.AttrNames[a]
				switch {
				case joinOrKey[a]:
					t[name] = algebra.Int(int64(row))
				case row%5 == 4:
					t[name] = algebra.Null
				default:
					t[name] = algebra.Int(int64(row % 3))
				}
			})
			r.Tuples = append(r.Tuples, t)
		}
		data[ri] = r
	}
	return data
}

// AllMatch reports whether every large-query plan reproduced the
// canonical result.
func (r *LargeReport) AllMatch() bool {
	for _, row := range r.Rows {
		if !row.Match {
			return false
		}
	}
	return true
}

// Format renders the report as an aligned table.
func (r *LargeReport) Format() string {
	var b strings.Builder
	budget := "default"
	if r.PairBudget > 0 {
		budget = fmt.Sprintf("%d", r.PairBudget)
	}
	fmt.Fprintf(&b, "Large queries: wide-representation optimization + execution (workers %d, pair budget %s)\n", r.Workers, budget)
	fmt.Fprintf(&b, "%-10s %-8s %5s %12s %12s %10s %8s %12s %6s %6s\n",
		"shape", "alg", "rels", "opt ms", "exec ms", "pairs", "budget", "cost", "rows", "match")
	for _, row := range r.Rows {
		match := "ok"
		if !row.Match {
			match = "FAIL"
		}
		hit := "-"
		if row.BudgetHit {
			hit = "hit"
		}
		fmt.Fprintf(&b, "%-10s %-8s %5d %12.1f %12.1f %10d %8s %12.4g %6d %6s\n",
			row.Shape, row.Alg, row.Relations, row.OptMillis, row.ExecMillis,
			row.Pairs, hit, row.Cost, row.ResultRows, match)
	}
	return b.String()
}
