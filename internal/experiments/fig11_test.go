package experiments

import (
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/core"
	"eagg/internal/query"
)

// fig11Query feeds the optimizer the statistics of the Fig. 11 example
// (cards 4/5/4, distinct counts from the actual data, selectivities from
// the actual join results).
func fig11Query() *query.Query {
	q := query.New()
	r0 := q.AddRelation("R0", 4)
	r1 := q.AddRelation("R1", 5)
	r2 := q.AddRelation("R2", 4)
	a := q.AddAttr(r0, "r0.a", 4)
	d := q.AddAttr(r1, "r1.d", 3)
	dd := q.AddAttr(r1, "r1.c", 5) // carried along; aggregated implicitly
	e := q.AddAttr(r2, "r2.e", 4)
	f := q.AddAttr(r2, "r2.f", 4)
	_ = dd

	j12 := &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: r1},
		Right: &query.OpNode{Kind: query.KindScan, Rel: r2},
		// |R1 ⋈_{d=e} R2| = 4 → selectivity 4/20.
		Pred: &query.Predicate{Left: []int{d}, Right: []int{e}, Selectivity: 4.0 / 20},
	}
	q.Root = &query.OpNode{
		Kind:  query.KindJoin,
		Left:  &query.OpNode{Kind: query.KindScan, Rel: r0},
		Right: j12,
		// |R0 ⋈_{a=f} (R1⋈R2)| = 4 → selectivity 4/16 against R0×R2.
		Pred: &query.Predicate{Left: []int{a}, Right: []int{f}, Selectivity: 4.0 / 16},
	}
	q.SetGrouping([]int{d}, aggfn.Vector{{Out: "d'", Kind: aggfn.CountStar}})
	return q
}

// TestFig11OptimizerPrefersEager: Sec. 4.4 argues the eager tree of
// Fig. 11 is cheaper (9, or 7 with the projection) than the lazy tree (10),
// yet H1's local comparison discards it. Our estimator must agree on the
// ordering: EA-Prune's plan is cheaper than DPhyp's and pushes a grouping
// onto R1's side.
func TestFig11OptimizerPrefersEager(t *testing.T) {
	q := fig11Query()
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	dphyp, err := core.Optimize(q, core.Options{Algorithm: core.AlgDPhyp})
	if err != nil {
		t.Fatal(err)
	}
	ea, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		t.Fatal(err)
	}
	if ea.Plan.Cost >= dphyp.Plan.Cost {
		t.Fatalf("eager should win on Fig. 11: EA %.4g vs DPhyp %.4g\nEA:\n%v",
			ea.Plan.Cost, dphyp.Plan.Cost, ea.Plan.StringWithQuery(q))
	}
	if ea.Plan.CountGroupings() == 0 {
		t.Errorf("EA plan lacks the pushed grouping:\n%v", ea.Plan.StringWithQuery(q))
	}
	// The estimated magnitudes track the paper's exact C_out values
	// (lazy 10, eager 9): small single-digit costs, lazy above eager.
	if dphyp.Plan.Cost < 8 || dphyp.Plan.Cost > 13 {
		t.Errorf("lazy cost %.4g far from the paper's 10", dphyp.Plan.Cost)
	}
	if ea.Plan.Cost < 6 || ea.Plan.Cost > 12 {
		t.Errorf("eager cost %.4g far from the paper's 9", ea.Plan.Cost)
	}
}

// TestFig11H1DiscardsEager reproduces the discussion of Sec. 4.4: H1's
// local cost comparison is allowed to discard the globally better eager
// subtree. We do not assert that H1 *must* fail (the estimator's numbers
// differ slightly from the true values), only that H1 never beats EA-Prune
// and that both stay in the expected band.
func TestFig11H1DiscardsEager(t *testing.T) {
	q := fig11Query()
	ea, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := core.Optimize(q, core.Options{Algorithm: core.AlgH1})
	if err != nil {
		t.Fatal(err)
	}
	if h1.Plan.Cost < ea.Plan.Cost*(1-1e-9) {
		t.Fatalf("H1 %.4g below the optimum %.4g", h1.Plan.Cost, ea.Plan.Cost)
	}
}
