// The EXPLAIN ANALYZE evaluation behind eaexplain -analyze: run the
// cardinality feedback loop on one TPC-H query with a fresh trace per
// executed round, and render the plan tree with estimated-vs-actual
// cardinality and per-operator wall time before and after feedback —
// the one-command view of what the measured cardinalities bought.
//
// The loop is run manually here rather than through engine.Reoptimize
// because EXPLAIN ANALYZE needs one trace per execution: the converged
// round never executes (its stats are assembled from the overlay), so
// the "after" tree must come from the last round that actually ran.
package experiments

import (
	"fmt"
	"strings"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/cost"
	"eagg/internal/engine"
	"eagg/internal/obs"
)

// AnalyzeCell is one plan generator's EXPLAIN ANALYZE: the annotated
// trees of the first and the last executed feedback round.
type AnalyzeCell struct {
	Plan        string // "lazy/DPhyp" or "eager/EA-Prune"
	Rounds      int    // executed rounds (the converged re-check not counted)
	Converged   bool
	PlanChanged bool
	// Before and After are the rendered trees of the first and the last
	// executed rounds (identical text when feedback never changed the
	// plan — the annotation line says so).
	Before, After string
	// QErrBefore/QErrAfter are the plan-level C_out q-errors of the same
	// two rounds.
	QErrBefore, QErrAfter float64
	Match                 bool
}

// AnalyzeReport is the output of eaexplain -analyze.
type AnalyzeReport struct {
	Query   string
	Factor  float64
	Workers int
	Phys    core.PhysMode
	Runtime engine.Runtime
	Cells   []AnalyzeCell
}

// AnalyzeEval runs EXPLAIN ANALYZE for one named TPC-H query: per plan
// generator, the feedback loop to convergence (max
// engine.DefaultFeedbackRounds executed rounds) with every execution
// traced, each round's result verified against the canonical
// evaluation.
func AnalyzeEval(cfg Config, factor float64, name string) *AnalyzeReport {
	cfg = cfg.Defaults()
	q, data, wantRel, attrs, _ := execSetup(cfg, factor, name)
	rep := &AnalyzeReport{Query: name, Factor: factor, Workers: cfg.Workers, Phys: cfg.Phys, Runtime: cfg.Runtime}

	for _, alg := range execAlgs {
		overlay := cost.NewFeedbackOverlay()
		cell := AnalyzeCell{Plan: alg.label, Match: true}
		prevSig := ""
		var firstStats, lastStats *engine.ExecStats
		for round := 0; round < engine.DefaultFeedbackRounds; round++ {
			opt := core.Options{Algorithm: alg.alg, Workers: cfg.Workers, Phys: cfg.Phys}
			if round > 0 {
				opt.Stats = overlay
			}
			res, err := core.Optimize(q, opt)
			if err != nil {
				panic(fmt.Sprintf("experiments: analyze %s/%s round %d: %v", name, alg.label, round+1, err))
			}
			sig := res.Plan.Signature()
			if round > 0 && sig == prevSig {
				cell.Converged = true
				break
			}
			tr := obs.NewTrace()
			tab, stats, err := engine.ExecProfiledOpts(q, res.Plan, data, engine.ExecOptions{
				Workers: cfg.Workers, Runtime: cfg.Runtime, Trace: tr,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: analyze %s/%s round %d: %v", name, alg.label, round+1, err))
			}
			stats.HarvestInto(overlay)
			if !algebra.EqualBags(wantRel, tab.Rel(), attrs) {
				cell.Match = false
			}
			tree := engine.ExplainAnalyze(q, res.Plan, tr)
			if round == 0 {
				cell.Before, firstStats = tree, stats
			}
			cell.After, lastStats = tree, stats
			cell.Rounds = round + 1
			cell.PlanChanged = round > 0 // a later round ran ⇒ the plan changed
			prevSig = sig
		}
		cell.QErrBefore = firstStats.CoutQError()
		cell.QErrAfter = lastStats.CoutQError()
		rep.Cells = append(rep.Cells, cell)
	}
	return rep
}

// Format renders the report: per plan generator, the loop's outcome
// line, then the annotated tree before feedback (round 1, pure model)
// and — when feedback changed the plan — after it.
func (r *AnalyzeReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN ANALYZE: %s (scale factor %g, workers %d, phys %v, runtime %v)\n",
		r.Query, r.Factor, r.Workers, r.Phys, r.Runtime)
	for _, c := range r.Cells {
		match := "ok"
		if !c.Match {
			match = "FAIL"
		}
		conv := "converged"
		if !c.Converged {
			conv = "round-bounded"
		}
		fmt.Fprintf(&b, "\n=== %s ===\n", c.Plan)
		fmt.Fprintf(&b, "%d executed round(s), %s, C_out q-error %.2f → %.2f, match %s\n",
			c.Rounds, conv, c.QErrBefore, c.QErrAfter, match)
		fmt.Fprintf(&b, "--- before feedback (round 1, pure model) ---\n%s", c.Before)
		if c.PlanChanged {
			fmt.Fprintf(&b, "--- after feedback (round %d, measured cardinalities) ---\n%s", c.Rounds, c.After)
		} else {
			fmt.Fprintf(&b, "--- feedback confirmed the plan: no later round changed it ---\n")
		}
	}
	return b.String()
}
