package experiments

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/query"
	"eagg/internal/service"
)

// ServeRow aggregates one TPC-H shape's traffic in a -serve run.
type ServeRow struct {
	Query    string
	Requests int
	// CacheHits counts requests whose plan came from the cache (the
	// first request per (shape, epoch) is the only necessary miss).
	CacheHits int
	// QPS is the shape's completed requests per second of wall time
	// (shapes run interleaved, so per-shape qps sums to the total).
	QPS float64
	// Latency percentiles over the shape's end-to-end request times.
	MeanMillis float64
	P50Millis  float64
	P99Millis  float64
	// Match reports that every response reproduced the canonical
	// result — concurrency must never change what a query computes.
	Match bool
}

// ServeReport is the output of the -serve mode: one engine serving
// concurrent sessions that replay TPC-H query shapes against resident
// data.
type ServeReport struct {
	Factor   float64
	Sessions int
	Workers  int
	Feedback bool
	Phys     core.PhysMode
	Rows     []ServeRow
	// TotalQPS is completed requests per second across all shapes.
	TotalQPS float64
	// WallMillis is the serving phase's wall time.
	WallMillis float64
	// Metrics is the engine's final state (cache hit/miss, feedback
	// epoch, pool task counts).
	Metrics service.Metrics
	// MetricsAddr is the bound address of the metrics endpoint ("" when
	// none was requested).
	MetricsAddr string
}

// ServeEval stands up a service engine over synthetic TPC-H data and
// drives it with `sessions` concurrent sessions, each replaying the
// named query shapes round-robin until every shape has served
// `requests` requests. Every response is verified against the shape's
// canonical result; per-shape latency percentiles and throughput plus
// the engine's cache/feedback metrics make up the report. A nil or
// empty names list selects every TPC-H query.
func ServeEval(cfg Config, factor float64, names []string, sessions, requests int, feedback bool) *ServeReport {
	return ServeEvalMetrics(cfg, factor, names, sessions, requests, feedback, nil)
}

// ServeEvalMetrics is ServeEval with a live metrics endpoint: for the
// duration of the serving phase, the engine's registry is scrapeable on
// ln at /metrics (Prometheus text exposition) and /debug/vars (expvar,
// registry published under "eagg"). The caller owns creating the
// listener — a bad address is then a flag-validation error, not a
// mid-run surprise — and the server closes it on the way out. A nil ln
// is plain ServeEval.
func ServeEvalMetrics(cfg Config, factor float64, names []string, sessions, requests int, feedback bool, ln net.Listener) *ServeReport {
	cfg = cfg.Defaults()
	if sessions < 1 {
		sessions = 1
	}
	if requests < 1 {
		requests = 1
	}
	names = execQueryNames(names)

	type shape struct {
		name    string
		q       *queryWithData
		pending atomic.Int64 // requests still to issue
		mu      sync.Mutex
		lats    []float64
		hits    int
		match   bool
	}
	shapes := make([]*shape, len(names))

	eng := service.NewEngine(service.EngineOptions{
		Workers:        cfg.Workers,
		MaxConcurrent:  sessions,
		SharedFeedback: feedback,
	})
	defer eng.Close()

	metricsAddr := ""
	if ln != nil {
		metricsAddr = ln.Addr().String()
		eng.Registry().PublishExpvar("eagg")
		mux := http.NewServeMux()
		mux.Handle("/metrics", eng.Registry().Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
	}

	for i, name := range names {
		q, data, wantRel, attrs, _ := execSetup(cfg, factor, name)
		eng.Register(name, data)
		shapes[i] = &shape{
			name:  name,
			q:     &queryWithData{q: q, wantRel: wantRel, attrs: attrs},
			match: true,
		}
		shapes[i].pending.Store(int64(requests))
	}

	var wg sync.WaitGroup
	wg.Add(sessions)
	start := time.Now()
	for s := 0; s < sessions; s++ {
		go func(s int) {
			defer wg.Done()
			sess := eng.NewSession()
			for {
				served := false
				for off := 0; off < len(shapes); off++ {
					sh := shapes[(s+off)%len(shapes)]
					if sh.pending.Add(-1) < 0 {
						continue
					}
					served = true
					reqStart := time.Now()
					resp, err := sess.Execute(sh.q.q, service.Request{
						Opt:     core.Options{Algorithm: core.AlgEAPrune, Workers: cfg.Workers, Phys: cfg.Phys},
						Exec:    engine.ExecOptions{Workers: cfg.Workers, Runtime: cfg.Runtime},
						Dataset: sh.name,
					})
					lat := float64(time.Since(reqStart).Microseconds()) / 1000
					ok := err == nil && algebra.EqualBags(sh.q.wantRel, resp.Table.Rel(), sh.q.attrs)
					sh.mu.Lock()
					sh.lats = append(sh.lats, lat)
					if err == nil && resp.CacheHit {
						sh.hits++
					}
					if !ok {
						sh.match = false
					}
					sh.mu.Unlock()
				}
				if !served {
					return
				}
			}
		}(s)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &ServeReport{
		Factor:      factor,
		Sessions:    sessions,
		Workers:     cfg.Workers,
		Feedback:    feedback,
		Phys:        cfg.Phys,
		WallMillis:  float64(wall.Microseconds()) / 1000,
		Metrics:     eng.Metrics(),
		MetricsAddr: metricsAddr,
	}
	total := 0
	secs := wall.Seconds()
	for _, sh := range shapes {
		sort.Float64s(sh.lats)
		row := ServeRow{
			Query:     sh.name,
			Requests:  len(sh.lats),
			CacheHits: sh.hits,
			Match:     sh.match,
		}
		if n := len(sh.lats); n > 0 {
			sum := 0.0
			for _, l := range sh.lats {
				sum += l
			}
			row.MeanMillis = sum / float64(n)
			row.P50Millis = sh.lats[n/2]
			row.P99Millis = sh.lats[min(n-1, n*99/100)]
			if secs > 0 {
				row.QPS = float64(n) / secs
			}
		}
		total += row.Requests
		rep.Rows = append(rep.Rows, row)
	}
	if secs > 0 {
		rep.TotalQPS = float64(total) / secs
	}
	return rep
}

// queryWithData bundles one shape's query and verification oracle.
type queryWithData struct {
	q       *query.Query
	wantRel *algebra.Rel
	attrs   []string
}

// AllMatch reports whether every served response reproduced its shape's
// canonical result — the go/no-go signal for scripted -serve use.
func (r *ServeReport) AllMatch() bool {
	for _, row := range r.Rows {
		if !row.Match {
			return false
		}
	}
	return true
}

// Format renders the report as an aligned table plus the engine's
// shared-state counters.
func (r *ServeReport) Format() string {
	var b strings.Builder
	feedback := "off"
	if r.Feedback {
		feedback = "on"
	}
	fmt.Fprintf(&b, "Service throughput: %d sessions over one shared engine (scale factor %g, workers %d, phys %v, feedback %s)\n",
		r.Sessions, r.Factor, r.Workers, r.Phys, feedback)
	fmt.Fprintf(&b, "%-6s %9s %9s %10s %10s %10s %10s %6s\n",
		"query", "requests", "hits", "qps", "mean ms", "p50 ms", "p99 ms", "match")
	for _, row := range r.Rows {
		match := "ok"
		if !row.Match {
			match = "FAIL"
		}
		fmt.Fprintf(&b, "%-6s %9d %9d %10.1f %10.2f %10.2f %10.2f %6s\n",
			row.Query, row.Requests, row.CacheHits, row.QPS, row.MeanMillis, row.P50Millis, row.P99Millis, match)
	}
	m := r.Metrics
	fmt.Fprintf(&b, "total: %.1f qps over %.0f ms wall\n", r.TotalQPS, r.WallMillis)
	fmt.Fprintf(&b, "engine: cache %d hits / %d misses (%d cached, %d evicted), feedback epoch %d (%d keys), pool %d worker + %d helper tasks over %d jobs (max %d queued), %d admission waits\n",
		m.PlanCacheHits, m.PlanCacheMiss, m.PlanCacheSize, m.PlanCacheEvictions, m.Epoch, m.FeedbackKeys,
		m.Pool.WorkerTasks, m.Pool.HelperTasks, m.Pool.Jobs, m.Pool.MaxQueued, m.AdmissionWaits)
	if r.MetricsAddr != "" {
		fmt.Fprintf(&b, "metrics: served on http://%s/metrics (Prometheus) and /debug/vars (expvar) during the run\n", r.MetricsAddr)
	}
	return b.String()
}
