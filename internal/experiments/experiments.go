// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5). Each experiment returns its data series so that both
// the eabench command and the benchmark suite can print the same rows the
// paper reports.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/obs"
	"eagg/internal/query"
	"eagg/internal/randquery"
)

// Config controls workload sizes. The paper uses 10,000 queries per
// relation count; the defaults are smaller so the whole suite runs in
// seconds, and callers can restore the paper's scale.
type Config struct {
	// Queries per relation count (paper: 10000).
	Queries int
	// Seed for the workload generator.
	Seed int64
	// MaxNExhaustive bounds EA-All (paper stops at 7-8).
	MaxNExhaustive int
	// MaxNPrune bounds EA-Prune (paper stops at ~13; >1 s per query
	// beyond 11).
	MaxNPrune int
	// MaxN bounds the fast algorithms (paper: 20).
	MaxN int
	// Workers is the worker count passed to core.Options.Workers for
	// optimization and — in the -exec mode — to engine.ExecOptions for
	// morsel-driven plan execution. Unlike core, 0 here selects the
	// sequential default (1) so the runtime experiments keep
	// reproducing the paper's single-threaded conditions unless
	// parallelism is explicitly requested. Results are bit-identical
	// for every value; only the runtime figures change.
	Workers int
	// Phys selects the physical algebra for the -exec and -feedback
	// modes (hash, sort-based, or both competing per plan class). The
	// zero value keeps the hash layer, the paper's conditions.
	Phys core.PhysMode
	// Runtime selects the execution runtime for the -exec, -feedback and
	// -serve modes: row-at-a-time (the zero value, the reference) or
	// batch-at-a-time columnar vectors. Results are bit-identical; only
	// the runtime figures change.
	Runtime engine.Runtime
	// Trace, when non-nil, collects spans from the -exec and -feedback
	// evaluations: one "query" span per (query, plan-generator) cell with
	// the optimizer phases and executor operators nested under it — the
	// tree eabench -trace writes as Chrome trace-event JSON. Nil (the
	// default) keeps every experiment on the untraced hot path.
	Trace *obs.Trace
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.Queries == 0 {
		c.Queries = 20
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxNExhaustive == 0 {
		c.MaxNExhaustive = 7
	}
	if c.MaxNPrune == 0 {
		c.MaxNPrune = 10
	}
	if c.MaxN == 0 {
		c.MaxN = 16
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// queriesFor deterministically generates the workload for one relation
// count.
func queriesFor(cfg Config, n int) []*query.Query {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(n)*7919))
	out := make([]*query.Query, cfg.Queries)
	for i := range out {
		out[i] = randquery.Generate(rng, randquery.Params{Relations: n})
	}
	return out
}

func mustOptimize(q *query.Query, alg core.Algorithm, f float64, workers int) *core.Result {
	return mustOptimizePhys(q, alg, f, workers, core.PhysModeHash)
}

func mustOptimizePhys(q *query.Query, alg core.Algorithm, f float64, workers int, phys core.PhysMode) *core.Result {
	res, err := core.Optimize(q, core.Options{Algorithm: alg, F: f, Workers: workers, Phys: phys})
	if err != nil {
		panic(fmt.Sprintf("experiments: %v failed: %v", alg, err))
	}
	return res
}

// Point is one x-position of a figure: the relation count plus one value
// per series.
type Point struct {
	N      int
	Values map[string]float64
}

// Figure is a reproduced figure: named series over relation counts.
type Figure struct {
	Title  string
	Series []string
	Points []Point
}

// Format renders the figure as aligned text rows (one per relation count).
func (f *Figure) Format() string {
	out := fmt.Sprintf("%s\n%-4s", f.Title, "n")
	for _, s := range f.Series {
		out += fmt.Sprintf(" %16s", s)
	}
	out += "\n"
	for _, p := range f.Points {
		out += fmt.Sprintf("%-4d", p.N)
		for _, s := range f.Series {
			if v, ok := p.Values[s]; ok {
				out += fmt.Sprintf(" %16.6g", v)
			} else {
				out += fmt.Sprintf(" %16s", "-")
			}
		}
		out += "\n"
	}
	return out
}

// Fig15 reproduces Figure 15: the average plan cost of DPhyp (no eager
// aggregation) relative to the optimum found by EA-Prune/EA-All, for 3…13
// relations. Values grow with the relation count (the paper reaches ≈18×
// at 13 relations, with extreme outliers far beyond).
func Fig15(cfg Config) *Figure {
	cfg = cfg.Defaults()
	fig := &Figure{
		Title:  "Figure 15: relative plan cost, DPhyp vs EA-Prune (1.0 = optimal)",
		Series: []string{"DPhyp/EA-Prune", "geomean", "max outlier"},
	}
	for n := 3; n <= cfg.MaxNPrune; n++ {
		sum, logSum, maxRatio := 0.0, 0.0, 0.0
		qs := queriesFor(cfg, n)
		for _, q := range qs {
			d := mustOptimize(q, core.AlgDPhyp, 0, cfg.Workers)
			p := mustOptimize(q, core.AlgEAPrune, 0, cfg.Workers)
			r := d.Plan.Cost / p.Plan.Cost
			sum += r
			logSum += math.Log(r)
			if r > maxRatio {
				maxRatio = r
			}
		}
		fig.Points = append(fig.Points, Point{N: n, Values: map[string]float64{
			"DPhyp/EA-Prune": sum / float64(len(qs)),
			"geomean":        math.Exp(logSum / float64(len(qs))),
			"max outlier":    maxRatio,
		}})
	}
	return fig
}

// Fig16 reproduces Figure 16: average optimization runtime in seconds for
// DPhyp, EA-Prune, EA-All and H1. EA-All stops at MaxNExhaustive and
// EA-Prune at MaxNPrune, mirroring the feasibility limits of the paper.
func Fig16(cfg Config) *Figure {
	cfg = cfg.Defaults()
	fig := &Figure{
		Title:  "Figure 16: optimization runtime [s]",
		Series: []string{"DPhyp", "EA-Prune", "EA-All", "H1"},
	}
	for n := 2; n <= cfg.MaxN; n++ {
		qs := queriesFor(cfg, n)
		vals := map[string]float64{}
		run := func(name string, alg core.Algorithm) {
			start := time.Now()
			for _, q := range qs {
				mustOptimize(q, alg, 0, cfg.Workers)
			}
			vals[name] = time.Since(start).Seconds() / float64(len(qs))
		}
		run("DPhyp", core.AlgDPhyp)
		run("H1", core.AlgH1)
		if n <= cfg.MaxNPrune {
			run("EA-Prune", core.AlgEAPrune)
		}
		if n <= cfg.MaxNExhaustive {
			run("EA-All", core.AlgEAAll)
		}
		fig.Points = append(fig.Points, Point{N: n, Values: vals})
	}
	return fig
}

// Fig17 reproduces Figure 17: plan cost of the heuristics H1 and H2 (for
// the paper's tolerance factors) relative to the optimum of EA-Prune. The
// paper's best heuristic is H2 with F = 1.03, within ≈7% of optimal at 13
// relations.
func Fig17(cfg Config) *Figure {
	cfg = cfg.Defaults()
	factors := []float64{1.01, 1.03, 1.05, 1.1}
	fig := &Figure{Title: "Figure 17: relative plan cost of the heuristics (1.0 = EA-Prune optimum)"}
	fig.Series = []string{"H1"}
	for _, f := range factors {
		fig.Series = append(fig.Series, fmt.Sprintf("H2 F=%.2f", f))
	}
	for n := 2; n <= cfg.MaxNPrune; n++ {
		qs := queriesFor(cfg, n)
		sums := map[string]float64{}
		for _, q := range qs {
			opt := mustOptimize(q, core.AlgEAPrune, 0, cfg.Workers).Plan.Cost
			sums["H1"] += mustOptimize(q, core.AlgH1, 0, cfg.Workers).Plan.Cost / opt
			for _, f := range factors {
				key := fmt.Sprintf("H2 F=%.2f", f)
				sums[key] += mustOptimize(q, core.AlgH2, f, cfg.Workers).Plan.Cost / opt
			}
		}
		vals := map[string]float64{}
		for k, s := range sums {
			vals[k] = s / float64(len(qs))
		}
		fig.Points = append(fig.Points, Point{N: n, Values: vals})
	}
	return fig
}

// Fig18 reproduces Figure 18: the runtime of H2 relative to H1. The two
// are nearly identical, with H2 often slightly faster because preferring
// eager plans strengthens key constraints and removes groupings further up
// (Sec. 5.3).
func Fig18(cfg Config) *Figure {
	cfg = cfg.Defaults()
	fig := &Figure{
		Title:  "Figure 18: runtime of H2 (F=1.03) relative to H1",
		Series: []string{"H2/H1"},
	}
	for n := 2; n <= cfg.MaxN; n++ {
		qs := queriesFor(cfg, n)
		startH1 := time.Now()
		for _, q := range qs {
			mustOptimize(q, core.AlgH1, 0, cfg.Workers)
		}
		h1 := time.Since(startH1).Seconds()
		startH2 := time.Now()
		for _, q := range qs {
			mustOptimize(q, core.AlgH2, 1.03, cfg.Workers)
		}
		h2 := time.Since(startH2).Seconds()
		fig.Points = append(fig.Points, Point{N: n, Values: map[string]float64{"H2/H1": h2 / h1}})
	}
	return fig
}

// SortedSeriesNames is a helper for deterministic printing of map-based
// series.
func SortedSeriesNames(vals map[string]float64) []string {
	names := make([]string, 0, len(vals))
	for k := range vals {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
