package experiments

import (
	"strings"
	"testing"

	"eagg/internal/algebra"
)

// TestLargeEval drives the 100-relation chain and star end to end: wide
// optimization under H1 and beam search, slot-runtime execution on the
// diagonal data, verification against the canonical evaluation. The
// modest pair budget routes both shapes through the enumeration-abort +
// greedy-fallback path quickly — on chains the fallback reaches the
// same plan cost as the exact DP (the exact-enumeration arm at 100
// relations lives in the core determinism test); stars exceed any
// practical budget by construction.
func TestLargeEval(t *testing.T) {
	rep := LargeEval(Config{Workers: 2}, []string{"chain100", "star100"}, 20000)
	if len(rep.Rows) != 4 {
		t.Fatalf("want 4 rows (2 shapes × 2 algorithms), got %d", len(rep.Rows))
	}
	if !rep.AllMatch() {
		t.Fatalf("large-query plans did not reproduce the canonical result:\n%s", rep.Format())
	}
	for _, row := range rep.Rows {
		if row.Relations != 100 {
			t.Errorf("%s/%s: %d relations, want 100", row.Shape, row.Alg, row.Relations)
		}
		if row.ResultRows == 0 {
			// The diagonal data guarantees a nonempty result; an empty
			// one means the verification was vacuous.
			t.Errorf("%s/%s: empty result", row.Shape, row.Alg)
		}
		if !row.BudgetHit {
			t.Errorf("%s/%s: a 20000-pair budget must be exceeded at 100 relations", row.Shape, row.Alg)
		}
	}
	out := rep.Format()
	for _, want := range []string{"chain100", "star100", "H1", "Beam(4)", "pair budget 20000"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestLargeDataDiagonal pins the data generator's contract: key and
// join attributes carry the row index (so fk→pk predicates match on the
// diagonal and declared pk scan orders stay truthful), and every
// relation carries the requested number of rows.
func TestLargeDataDiagonal(t *testing.T) {
	q := LargeShapes["star100"]()
	data := LargeData(q, 5)
	if len(data) != 100 {
		t.Fatalf("want 100 relations of data, got %d", len(data))
	}
	for ri, rel := range data {
		if len(rel.Tuples) != 5 {
			t.Fatalf("relation %d: %d rows, want 5", ri, len(rel.Tuples))
		}
	}
	// dim7.pk is a key and fact.fk7 joins it: both must carry the row
	// index so the predicate matches on the diagonal.
	for row := 0; row < 5; row++ {
		if got := data[7].Tuples[row]["dim7.pk"]; got != algebra.Int(int64(row)) {
			t.Fatalf("dim7.pk row %d: %v, want %d", row, got, row)
		}
		if got := data[0].Tuples[row]["fact.fk7"]; got != algebra.Int(int64(row)) {
			t.Fatalf("fact.fk7 row %d: %v, want %d", row, got, row)
		}
	}
}
