package experiments

import (
	"strings"
	"testing"
)

// TestServeEvalSmoke runs the -serve experiment end to end on a small
// instance: every shape's responses must reproduce the canonical result
// under concurrency, the warm cache must serve all repeats (one miss
// per shape at the stable epoch), and the report must render.
func TestServeEvalSmoke(t *testing.T) {
	cfg := Config{Workers: 2}
	rep := ServeEval(cfg, 0.2, []string{"Ex", "Q3"}, 3, 6, false)
	if !rep.AllMatch() {
		t.Fatalf("served results diverged from canonical:\n%s", rep.Format())
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows=%d, want 2", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Requests != 6 {
			t.Errorf("%s served %d requests, want 6", row.Query, row.Requests)
		}
		// Without feedback the epoch never moves: exactly one miss per
		// shape, everything else hits.
		if row.CacheHits != row.Requests-1 {
			t.Errorf("%s: %d hits over %d requests, want %d", row.Query, row.CacheHits, row.Requests, row.Requests-1)
		}
	}
	if rep.Metrics.PlanCacheMiss != 2 {
		t.Errorf("engine misses=%d, want 2 (one per shape)", rep.Metrics.PlanCacheMiss)
	}
	out := rep.Format()
	for _, want := range []string{"Service throughput", "Q3", "qps", "engine: cache"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestServeEvalFeedback runs the serve loop with the shared overlay on:
// results still match, and the engine ends at a nonzero epoch with
// measured keys (TPC-H estimates are imperfect, so the first publishes
// must change something).
func TestServeEvalFeedback(t *testing.T) {
	cfg := Config{Workers: 2}
	rep := ServeEval(cfg, 0.2, []string{"Q3"}, 2, 5, true)
	if !rep.AllMatch() {
		t.Fatalf("feedback serving diverged from canonical:\n%s", rep.Format())
	}
	if rep.Metrics.Epoch == 0 || rep.Metrics.FeedbackKeys == 0 {
		t.Fatalf("shared feedback never accumulated: %+v", rep.Metrics)
	}
}
