package eqv

import (
	"math/rand"
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
)

// This file verifies the Appendix A variants beyond Fig. 3: the left
// outerjoin with user-provided defaults (Sec. A.3, Eqvs. 65-73 in spirit)
// and the top-grouping eliminations over join results (Sec. A.2.6).

// TestLeftOuterWithDefaultPush verifies the A.3 family: pushing a grouping
// below e1 E^D e2 behaves exactly like the default-free case on the left
// side (Eqv. 65), because the user defaults D only affect the padded right
// side.
func TestLeftOuterWithDefaultPush(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	d := algebra.Defaults{"a2": algebra.Int(-7)}
	f := aggfn.Vector{
		{Out: "k", Kind: aggfn.CountStar},
		{Out: "s1", Kind: aggfn.Sum, Arg: "a1"},
		{Out: "s2", Kind: aggfn.Sum, Arg: "a2"},
	}
	for trial := 0; trial < 250; trial++ {
		in := randInstance(rng)
		in.G = []string{"g1", "g2"}
		in.F = f

		// LHS: Γ_G;F(e1 E^D e2).
		joined := algebra.LeftOuter(in.E1, in.E2, in.Pred(), d)
		lhs := algebra.Group(joined, in.G, in.F)

		// RHS (Eqv. 65 shape): Γ_{G;(F2⊗c1)◦F²1}(Γ_{G1+;F¹1◦c1}(e1) E^D e2).
		f1 := aggfn.Vector{f[0], f[1]}
		f2 := aggfn.Vector{f[2]}
		dec, err := f1.Decompose()
		if err != nil {
			t.Fatal(err)
		}
		inner := dec.Inner.Concat(aggfn.Vector{{Out: "c1", Kind: aggfn.CountStar}})
		grouped := algebra.Group(in.E1, in.GPlus1(), inner)
		joinedR := algebra.LeftOuter(grouped, in.E2, in.Pred(), d)
		adj, err := f2.Adjust("c1")
		if err != nil {
			t.Fatal(err)
		}
		rhs := algebra.Group(joinedR, in.G, dec.Outer.Concat(adj))

		if !algebra.EqualBags(lhs, rhs, in.OutAttrs()) {
			t.Fatalf("trial %d: Eqv 65 mismatch\ne1:\n%v\ne2:\n%v\nLHS:\n%v\nRHS:\n%v",
				trial, in.E1, in.E2, lhs, rhs)
		}
	}
}

// TestTopGroupingEliminationOverJoin verifies the Sec. A.2.6 shape:
// when G is a key of the (duplicate-free) join result, the final grouping
// over e1 E e2 can be replaced by the map/projection of Eqv. 42.
func TestTopGroupingEliminationOverJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 200; trial++ {
		// e1 with unique key k1 (duplicate-free construction).
		n1 := 1 + rng.Intn(5)
		e1 := &algebra.Rel{Attrs: []string{"k1", "j1", "a1"}}
		for i := 0; i < n1; i++ {
			e1.Tuples = append(e1.Tuples, algebra.Tuple{
				"k1": algebra.Int(int64(i)),
				"j1": algebra.Int(int64(rng.Intn(3))),
				"a1": algebra.Int(int64(rng.Intn(4))),
			})
		}
		// e2 with unique join attribute so the left outerjoin preserves
		// e1's key.
		n2 := 1 + rng.Intn(3)
		e2 := &algebra.Rel{Attrs: []string{"j2", "a2"}}
		for i := 0; i < n2; i++ {
			e2.Tuples = append(e2.Tuples, algebra.Tuple{
				"j2": algebra.Int(int64(i)),
				"a2": algebra.Int(int64(rng.Intn(4))),
			})
		}
		f := aggfn.Vector{
			{Out: "c", Kind: aggfn.CountStar},
			{Out: "s", Kind: aggfn.Sum, Arg: "a2"},
			{Out: "m", Kind: aggfn.Min, Arg: "a1"},
		}
		g := []string{"k1"}
		joined := algebra.LeftOuter(e1, e2, algebra.EqAttr("j1", "j2"), nil)

		lhs := algebra.Group(joined, g, f)
		// Eqv. 42 RHS: Π_C(χ_F̂(e)) — per-tuple aggregate evaluation.
		rhs := algebra.Project(algebra.MapAggs(joined, f), append([]string{"k1"}, f.Outs()...))

		if !algebra.EqualBags(lhs, rhs, append([]string{"k1"}, f.Outs()...)) {
			t.Fatalf("trial %d: top-grouping elimination mismatch\nLHS:\n%v\nRHS:\n%v",
				trial, lhs, rhs)
		}
	}
}

// TestGroupJoinPushWithThetaLe exercises the θ-groupjoin push (Eqv. 101
// family) with a non-equality comparison, using a band-style θ = '≤'.
func TestGroupJoinPushWithThetaLe(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	r, err := RuleByNum(39)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		in := randInstance(rng)
		in.Theta = algebra.CmpLe
		in.FBar = aggfn.Vector{
			{Out: "z", Kind: aggfn.Sum, Arg: "a2"},
			{Out: "zn", Kind: aggfn.Count, Arg: "a2"},
		}
		in.G = []string{"g1"}
		in.F = aggfn.Vector{
			{Out: "k", Kind: aggfn.CountStar},
			{Out: "s1", Kind: aggfn.Sum, Arg: "a1"},
			{Out: "sz", Kind: aggfn.Sum, Arg: "z"},
			{Out: "mz", Kind: aggfn.Min, Arg: "zn"},
		}
		equal, lhs, rhs, err := r.Check(in)
		if err != nil {
			t.Fatal(err)
		}
		if !equal {
			t.Fatalf("trial %d: θ-groupjoin push mismatch\nLHS:\n%v\nRHS:\n%v", trial, lhs, rhs)
		}
	}
}

// TestEqv34WithAvgBothSides stresses the Split equivalence with avg on
// both sides (sum/countNN decompositions and weighted AvgMerge recombine).
func TestEqv34WithAvgBothSides(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, num := range []int{34, 35, 36} {
		r, err := RuleByNum(num)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			in := randInstance(rng)
			in.G = []string{"g1", "g2"}
			in.F = aggfn.Vector{
				{Out: "v1", Kind: aggfn.Avg, Arg: "a1"},
				{Out: "v2", Kind: aggfn.Avg, Arg: "a2"},
				{Out: "k", Kind: aggfn.CountStar},
			}
			equal, lhs, rhs, err := r.Check(in)
			if err != nil {
				t.Fatal(err)
			}
			if !equal {
				t.Fatalf("Eqv %d trial %d: avg split mismatch\ne1:\n%v\ne2:\n%v\nLHS:\n%v\nRHS:\n%v",
					num, trial, in.E1, in.E2, lhs, rhs)
			}
		}
	}
}
