package eqv

import (
	"errors"
	"fmt"

	"eagg/internal/algebra"
)

// Rule identifies one equivalence of Fig. 3 by its number in the paper.
type Rule struct {
	// Num is the equation number in the paper (10–41).
	Num int
	// Name is the paper's section heading for the rule group.
	Name string
	// Op is the operator under the grouping on the left-hand side.
	Op Op
	// Left and Right are the push modes of the right-hand side.
	Left, Right Mode
}

// Rules lists every equivalence of Fig. 3, in paper order. Eqvs. 37/38
// (semijoin/antijoin) use whole-Γ pushes and are marked with ModeNone on
// both sides; RHS dispatches them to PushSemiAnti.
var Rules = []Rule{
	{10, "Eager/Lazy Groupby-Count", OpJoin, ModeAggsCount, ModeNone},
	{11, "Eager/Lazy Groupby-Count", OpLeftOuter, ModeAggsCount, ModeNone},
	{12, "Eager/Lazy Groupby-Count", OpFullOuter, ModeAggsCount, ModeNone},
	{13, "Eager/Lazy Groupby-Count", OpJoin, ModeNone, ModeAggsCount},
	{14, "Eager/Lazy Groupby-Count", OpLeftOuter, ModeNone, ModeAggsCount},
	{15, "Eager/Lazy Groupby-Count", OpFullOuter, ModeNone, ModeAggsCount},

	{16, "Eager/Lazy Group-by", OpJoin, ModeAggs, ModeNone},
	{17, "Eager/Lazy Group-by", OpLeftOuter, ModeAggs, ModeNone},
	{18, "Eager/Lazy Group-by", OpFullOuter, ModeAggs, ModeNone},
	{19, "Eager/Lazy Group-by", OpJoin, ModeNone, ModeAggs},
	{20, "Eager/Lazy Group-by", OpLeftOuter, ModeNone, ModeAggs},
	{21, "Eager/Lazy Group-by", OpFullOuter, ModeNone, ModeAggs},

	{22, "Eager/Lazy Count", OpJoin, ModeCount, ModeNone},
	{23, "Eager/Lazy Count", OpLeftOuter, ModeCount, ModeNone},
	{24, "Eager/Lazy Count", OpFullOuter, ModeCount, ModeNone},
	{25, "Eager/Lazy Count", OpJoin, ModeNone, ModeCount},
	{26, "Eager/Lazy Count", OpLeftOuter, ModeNone, ModeCount},
	{27, "Eager/Lazy Count", OpFullOuter, ModeNone, ModeCount},

	{28, "Double Eager/Lazy", OpJoin, ModeAggs, ModeCount},
	{29, "Double Eager/Lazy", OpLeftOuter, ModeAggs, ModeCount},
	{30, "Double Eager/Lazy", OpFullOuter, ModeAggs, ModeCount},
	{31, "Double Eager/Lazy", OpJoin, ModeCount, ModeAggs},
	{32, "Double Eager/Lazy", OpLeftOuter, ModeCount, ModeAggs},
	{33, "Double Eager/Lazy", OpFullOuter, ModeCount, ModeAggs},

	{34, "Eager/Lazy Split", OpJoin, ModeAggsCount, ModeAggsCount},
	{35, "Eager/Lazy Split", OpLeftOuter, ModeAggsCount, ModeAggsCount},
	{36, "Eager/Lazy Split", OpFullOuter, ModeAggsCount, ModeAggsCount},

	{37, "Others", OpSemiJoin, ModeNone, ModeNone},
	{38, "Others", OpAntiJoin, ModeNone, ModeNone},
	{39, "Others", OpGroupJoin, ModeAggsCount, ModeNone},
	{40, "Others", OpGroupJoin, ModeAggs, ModeNone},
	{41, "Others", OpGroupJoin, ModeCount, ModeNone},
}

// RuleByNum returns the rule with the given paper equation number.
func RuleByNum(num int) (Rule, error) {
	for _, r := range Rules {
		if r.Num == num {
			return r, nil
		}
	}
	return Rule{}, fmt.Errorf("eqv: no rule %d", num)
}

// RHS constructs the right-hand side of the rule on the instance.
func (r Rule) RHS(in *Instance) (*algebra.Rel, error) {
	if r.Op == OpSemiJoin || r.Op == OpAntiJoin {
		return in.PushSemiAnti(r.Op)
	}
	return in.Eager(r.Op, r.Left, r.Right)
}

// Check evaluates both sides of the rule on the instance and reports
// whether they agree as bags over G ∪ A(F). The returned relations allow
// callers to print counterexamples.
func (r Rule) Check(in *Instance) (equal bool, lhs, rhs *algebra.Rel, err error) {
	rhs, err = r.RHS(in)
	if err != nil {
		return false, nil, nil, err
	}
	lhs = in.LHS(r.Op)
	return algebra.EqualBags(lhs, rhs, in.OutAttrs()), lhs, rhs, nil
}

// EliminateTopGrouping implements Eqv. 42: Γ_G;F(e) ≡ Π_C(χ_F̂(e)) with
// C = G ∪ A(F), valid when G contains a key of e and e is duplicate-free.
// The key/duplicate-free precondition is the caller's obligation (the plan
// generator tracks it via NeedsGrouping); this function just builds the
// right-hand side.
func EliminateTopGrouping(e *algebra.Rel, g []string, f *Instance) (*algebra.Rel, error) {
	if f == nil {
		return nil, errors.New("eqv: nil instance")
	}
	mapped := algebra.MapAggs(e, f.F)
	c := unionAttrs(g, f.F.Outs())
	return algebra.Project(mapped, c), nil
}
