package eqv

import (
	"math/rand"
	"testing"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
)

// fig4Instance is the paper's Fig. 4 example for Eqvs. 10 and 12.
func fig4Instance() *Instance {
	e1 := algebra.NewRel([]string{"g1", "j1", "a1"},
		[]any{1, 1, 2},
		[]any{1, 2, 4},
		[]any{1, 2, 8},
	)
	e2 := algebra.NewRel([]string{"g2", "j2", "a2"},
		[]any{1, 1, 2},
		[]any{1, 1, 4},
		[]any{1, 2, 8},
	)
	return &Instance{
		E1: e1, E2: e2,
		J1: []string{"j1"}, J2: []string{"j2"},
		G: []string{"g1", "g2"},
		F: aggfn.Vector{
			{Out: "c", Kind: aggfn.CountStar},
			{Out: "b1", Kind: aggfn.Sum, Arg: "a1"},
			{Out: "b2", Kind: aggfn.Sum, Arg: "a2"},
		},
	}
}

// TestFig4Eqv10 replays the paper's Example 1 (Sec. 3.1.1): the final
// result e7 must equal Γ with c=4, b1=16, b2=22.
func TestFig4Eqv10(t *testing.T) {
	in := fig4Instance()
	r, err := RuleByNum(10)
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := r.RHS(in)
	if err != nil {
		t.Fatal(err)
	}
	want := algebra.NewRel([]string{"g1", "g2", "c", "b1", "b2"},
		[]any{1, 1, 4, 16, 22})
	if !algebra.EqualBags(rhs, want, want.Attrs) {
		t.Errorf("Eqv 10 RHS:\n%v\nwant:\n%v", rhs, want)
	}
	lhs := in.LHS(OpJoin)
	if !algebra.EqualBags(lhs, want, want.Attrs) {
		t.Errorf("Eqv 10 LHS:\n%v\nwant:\n%v", lhs, want)
	}
}

// TestFig4Eqv12 runs Example 2 (Sec. 3.1.2) extended with orphan tuples on
// both sides, exercising the full outerjoin defaults F¹1({⊥}), c1:1.
func TestFig4Eqv12(t *testing.T) {
	in := fig4Instance()
	in.E1.Tuples = append(in.E1.Tuples,
		algebra.Tuple{"g1": algebra.Int(2), "j1": algebra.Int(5), "a1": algebra.Int(3)})
	in.E2.Tuples = append(in.E2.Tuples,
		algebra.Tuple{"g2": algebra.Int(7), "j2": algebra.Int(9), "a2": algebra.Int(5)})
	r, _ := RuleByNum(12)
	equal, lhs, rhs, err := r.Check(in)
	if err != nil {
		t.Fatal(err)
	}
	if !equal {
		t.Errorf("Eqv 12 mismatch:\nLHS:\n%v\nRHS:\n%v", lhs, rhs)
	}
	// The orphan right tuple must surface as a group with count(*)=1 and
	// NULL b1 (F¹1({⊥}) semantics).
	found := false
	for _, tu := range rhs.Tuples {
		if tu.Get("g2").Kind == algebra.KindInt && tu.Get("g2").I == 7 {
			found = true
			if tu.Get("c").I != 1 || !tu.Get("b1").IsNull() || tu.Get("b2").I != 5 {
				t.Errorf("orphan group wrong: %v", tu)
			}
		}
	}
	if !found {
		t.Error("right orphan group missing")
	}
}

// randInstance generates a random instance. The aggregation vector and
// grouping attributes are chosen per rule by the caller.
func randRel(rng *rand.Rand, attrs []string, nullable map[string]float64) *algebra.Rel {
	n := rng.Intn(6)
	r := &algebra.Rel{Attrs: attrs}
	for i := 0; i < n; i++ {
		tu := algebra.Tuple{}
		for _, a := range attrs {
			if p, ok := nullable[a]; ok && rng.Float64() < p {
				tu[a] = algebra.Null
				continue
			}
			tu[a] = algebra.Int(int64(rng.Intn(3)))
		}
		r.Tuples = append(r.Tuples, tu)
	}
	return r
}

func randInstance(rng *rand.Rand) *Instance {
	null := map[string]float64{"a1": 0.2, "a2": 0.2, "j1": 0.1, "j2": 0.1}
	return &Instance{
		E1: randRel(rng, []string{"g1", "j1", "a1"}, null),
		E2: randRel(rng, []string{"g2", "j2", "a2"}, null),
		J1: []string{"j1"}, J2: []string{"j2"},
	}
}

// Aggregation vectors compatible with the rules' side constraints.
func vecBoth() aggfn.Vector {
	return aggfn.Vector{
		{Out: "k", Kind: aggfn.CountStar},
		{Out: "s1", Kind: aggfn.Sum, Arg: "a1"},
		{Out: "n1", Kind: aggfn.Count, Arg: "a1"},
		{Out: "s2", Kind: aggfn.Sum, Arg: "a2"},
		{Out: "v2", Kind: aggfn.Avg, Arg: "a2"},
		{Out: "m2", Kind: aggfn.Max, Arg: "a2"},
	}
}

func vecLeftOnly() aggfn.Vector {
	return aggfn.Vector{
		{Out: "k", Kind: aggfn.CountStar},
		{Out: "s1", Kind: aggfn.Sum, Arg: "a1"},
		{Out: "n1", Kind: aggfn.Count, Arg: "a1"},
		{Out: "v1", Kind: aggfn.Avg, Arg: "a1"},
		{Out: "m1", Kind: aggfn.Min, Arg: "a1"},
	}
}

func vecRightOnly() aggfn.Vector {
	return aggfn.Vector{
		{Out: "k", Kind: aggfn.CountStar},
		{Out: "s2", Kind: aggfn.Sum, Arg: "a2"},
		{Out: "n2", Kind: aggfn.Count, Arg: "a2"},
		{Out: "v2", Kind: aggfn.Avg, Arg: "a2"},
		{Out: "m2", Kind: aggfn.Max, Arg: "a2"},
	}
}

// configureForRule sets G and F so the rule's preconditions hold.
func configureForRule(in *Instance, r Rule, rng *rand.Rand) {
	switch {
	case r.Op == OpSemiJoin || r.Op == OpAntiJoin:
		// Whole-Γ push needs J1 ⊆ G and F over e1 only.
		in.G = []string{"g1", "j1"}
		in.F = vecLeftOnly()
	case r.Op == OpGroupJoin:
		in.Theta = algebra.CmpEq
		if rng.Intn(3) == 0 {
			in.Theta = algebra.CmpLe
		}
		in.FBar = aggfn.Vector{
			{Out: "z", Kind: aggfn.Sum, Arg: "a2"},
			{Out: "zc", Kind: aggfn.CountStar},
		}
		switch {
		case r.Left == ModeAggsCount: // Eqv. 39: F may span both sides
			in.G = []string{"g1"}
			in.F = aggfn.Vector{
				{Out: "k", Kind: aggfn.CountStar},
				{Out: "s1", Kind: aggfn.Sum, Arg: "a1"},
				{Out: "sz", Kind: aggfn.Sum, Arg: "z"},
				{Out: "mz", Kind: aggfn.Max, Arg: "z"},
			}
		case r.Left == ModeAggs: // Eqv. 40: F2 = ()
			in.G = []string{"g1"}
			in.F = vecLeftOnly()
		default: // Eqv. 41: F1 = ()
			in.G = []string{"g1"}
			in.F = aggfn.Vector{
				{Out: "sz", Kind: aggfn.Sum, Arg: "z"},
				{Out: "kz", Kind: aggfn.Count, Arg: "z"},
			}
		}
	default:
		in.G = []string{"g1", "g2"}
		switch rng.Intn(6) {
		case 0:
			in.G = []string{"g1"} // grouping attributes from one side only
		case 1:
			in.G = nil // grouping on ∅: one global group
		}
		needF1Empty := r.Left == ModeCount || (r.Right != ModeNone && !hasCount(r.Right))
		needF2Empty := r.Right == ModeCount || (r.Left != ModeNone && !hasCount(r.Left))
		switch {
		case needF1Empty:
			in.F = vecRightOnly()
		case needF2Empty:
			in.F = vecLeftOnly()
		default:
			in.F = vecBoth()
		}
	}
}

// TestAllRulesRandomized verifies every equivalence of Fig. 3 on hundreds
// of random instances, including NULLs in join and aggregate attributes.
func TestAllRulesRandomized(t *testing.T) {
	const trials = 300
	for _, r := range Rules {
		r := r
		t.Run(ruleName(r), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + r.Num)))
			for trial := 0; trial < trials; trial++ {
				in := randInstance(rng)
				configureForRule(in, r, rng)
				equal, lhs, rhs, err := r.Check(in)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !equal {
					t.Fatalf("trial %d: Eqv %d violated\ne1:\n%v\ne2:\n%v\nLHS:\n%v\nRHS:\n%v",
						trial, r.Num, in.E1, in.E2, lhs, rhs)
				}
			}
		})
	}
}

func ruleName(r Rule) string {
	return "Eqv" + itoa(r.Num) + "_" + r.Op.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestTwoAttributeJoinPredicate exercises Eqv. 10 with a conjunctive
// two-attribute join predicate.
func TestTwoAttributeJoinPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	null := map[string]float64{"a1": 0.2, "a2": 0.2}
	for trial := 0; trial < 100; trial++ {
		in := &Instance{
			E1: randRel(rng, []string{"g1", "j1", "j1b", "a1"}, null),
			E2: randRel(rng, []string{"g2", "j2", "j2b", "a2"}, null),
			J1: []string{"j1", "j1b"}, J2: []string{"j2", "j2b"},
			G: []string{"g1", "g2"},
			F: vecBoth(),
		}
		r, _ := RuleByNum(10)
		equal, lhs, rhs, err := r.Check(in)
		if err != nil {
			t.Fatal(err)
		}
		if !equal {
			t.Fatalf("trial %d mismatch:\nLHS:\n%v\nRHS:\n%v", trial, lhs, rhs)
		}
	}
}

// TestPreconditionErrors checks that the constructors reject instances
// violating their preconditions instead of building wrong plans.
func TestPreconditionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randInstance(rng)
	in.G = []string{"g1", "g2"}

	// Non-splittable: an aggregate spanning both sides.
	in.F = aggfn.Vector{{Out: "x", Kind: aggfn.SumTimes, Arg: "a1", Arg2: "a2"}}
	if _, err := in.Eager(OpJoin, ModeAggsCount, ModeNone); err == nil {
		t.Error("expected splittability error")
	}

	// Non-decomposable pushed side.
	in.F = aggfn.Vector{{Out: "d", Kind: aggfn.CountDistinct, Arg: "a1"}}
	if _, err := in.Eager(OpJoin, ModeAggsCount, ModeNone); err == nil {
		t.Error("expected decomposability error")
	}

	// Eager Group-by left with non-empty F2.
	in.F = vecBoth()
	if _, err := in.Eager(OpJoin, ModeAggs, ModeNone); err == nil {
		t.Error("expected F2-empty error")
	}

	// Eager Count left with non-empty F1.
	if _, err := in.Eager(OpJoin, ModeCount, ModeNone); err == nil {
		t.Error("expected F1-empty error")
	}

	// Semijoin push without J1 ⊆ G.
	in.G = []string{"g1"}
	in.F = vecLeftOnly()
	if _, err := in.PushSemiAnti(OpSemiJoin); err == nil {
		t.Error("expected join-attribute-not-grouped error")
	}

	// Right push into a groupjoin is not defined.
	if _, err := in.Eager(OpGroupJoin, ModeNone, ModeAggsCount); err == nil {
		t.Error("expected groupjoin right-push error")
	}
}

// TestEliminateTopGrouping verifies Eqv. 42 on a duplicate-free input whose
// grouping attributes form a key.
func TestEliminateTopGrouping(t *testing.T) {
	e := algebra.NewRel([]string{"g", "a"},
		[]any{1, 10},
		[]any{2, nil},
		[]any{3, 30},
	)
	in := &Instance{
		G: []string{"g"},
		F: aggfn.Vector{
			{Out: "k", Kind: aggfn.CountStar},
			{Out: "s", Kind: aggfn.Sum, Arg: "a"},
			{Out: "c", Kind: aggfn.Count, Arg: "a"},
			{Out: "m", Kind: aggfn.Min, Arg: "a"},
		},
	}
	lhs := algebra.Group(e, in.G, in.F)
	rhs, err := EliminateTopGrouping(e, in.G, in)
	if err != nil {
		t.Fatal(err)
	}
	if !algebra.EqualBags(lhs, rhs, unionAttrs(in.G, in.F.Outs())) {
		t.Errorf("Eqv 42 mismatch:\nLHS:\n%v\nRHS:\n%v", lhs, rhs)
	}
}

// TestGroupJoinViaOuterjoin verifies Eqv. 100: the groupjoin can be
// expressed as a left outerjoin with defaults over a grouped right side.
//
// Sec. A.5.1 discusses the count(*) corner: our groupjoin follows Def. 9
// literally, so count(*) over an empty partner set is 0, and the matching
// outerjoin default is 0. (The paper instead redefines count(*)(∅) := 1 in
// the context of outerjoin defaults so that the groupjoin can stand in for
// Γ(e1 E e2) patterns, where the padded tuple is counted; both conventions
// make the equivalence exact, they just fix the constant differently.)
func TestGroupJoinViaOuterjoin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := aggfn.Vector{
		{Out: "z", Kind: aggfn.Sum, Arg: "a2"},
		{Out: "zc", Kind: aggfn.CountStar},
	}
	for trial := 0; trial < 200; trial++ {
		in := randInstance(rng)
		lhs := algebra.GroupJoinTheta(in.E1, in.E2, in.J1, in.J2, algebra.CmpEq, f)
		// RHS: Π_C(e1 E^{D}_{J1=J2} Γ_{J2;F}(e2)).
		grouped := algebra.Group(in.E2, in.J2, f)
		d := algebra.Defaults{"zc": algebra.Int(0)}
		joined := algebra.LeftOuter(in.E1, grouped, in.Pred(), d)
		attrs := unionAttrs(in.E1.Attrs, f.Outs())
		rhs := algebra.Project(joined, attrs)
		if !algebra.EqualBags(lhs, rhs, attrs) {
			t.Fatalf("trial %d: Eqv 100 mismatch\nLHS:\n%v\nRHS:\n%v", trial, lhs, rhs)
		}
	}
}
