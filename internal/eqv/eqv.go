// Package eqv is the executable form of the paper's equivalences (Fig. 3
// and Appendix A). Every equivalence Γ_G;F(e1 ◦ e2) ≡ … is available as a
// function that constructs the right-hand side with the algebra runtime, so
// the test suite can verify each equivalence by evaluating both sides on
// concrete relations.
//
// The equivalences share one generic shape, "eager aggregation with mode m
// per side", where a side is either left untouched, grouped with a count
// (Eager Count), grouped with decomposed aggregates (Eager Group-by), or
// both (Eager Groupby-Count / Split). The numbered constructors below
// instantiate this shape exactly as printed in the paper.
package eqv

import (
	"errors"
	"fmt"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
)

// Op selects the binary operator under the grouping.
type Op int

const (
	// OpJoin is the inner join B.
	OpJoin Op = iota
	// OpLeftOuter is the left outerjoin E.
	OpLeftOuter
	// OpFullOuter is the full outerjoin K.
	OpFullOuter
	// OpSemiJoin is the left semijoin N.
	OpSemiJoin
	// OpAntiJoin is the left antijoin T.
	OpAntiJoin
	// OpGroupJoin is the left groupjoin Z.
	OpGroupJoin
)

func (o Op) String() string {
	switch o {
	case OpJoin:
		return "join"
	case OpLeftOuter:
		return "leftouter"
	case OpFullOuter:
		return "fullouter"
	case OpSemiJoin:
		return "semijoin"
	case OpAntiJoin:
		return "antijoin"
	case OpGroupJoin:
		return "groupjoin"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Mode describes what is pushed into one side of the operator.
type Mode int

const (
	// ModeNone leaves the side untouched.
	ModeNone Mode = iota
	// ModeCount pushes only c:count(*) (Eager/Lazy Count).
	ModeCount
	// ModeAggs pushes the decomposed aggregates F¹ᵢ without a count
	// (Eager/Lazy Group-by); requires the other side's vector to be empty.
	ModeAggs
	// ModeAggsCount pushes F¹ᵢ ◦ (c:count(*)) (Eager/Lazy Groupby-Count
	// and Split).
	ModeAggsCount
)

// Instance bundles everything an equivalence mentions: the two inputs, the
// equi-join attribute lists J1/J2, the grouping attributes G, the
// aggregation vector F, and — for the groupjoin — its comparison θ and its
// own aggregation vector F̄.
type Instance struct {
	E1, E2 *algebra.Rel
	J1, J2 []string
	G      []string
	F      aggfn.Vector

	Theta algebra.Cmp  // groupjoin comparison (default '=')
	FBar  aggfn.Vector // the groupjoin's aggregation vector F̄
}

// countAttr1 and countAttr2 are the names of the introduced count
// attributes c1 and c2. Input relations must not use them.
const (
	countAttr1 = "c1"
	countAttr2 = "c2"
)

// Pred returns the equi-join predicate q: ⋀ J1[i] = J2[i].
func (in *Instance) Pred() algebra.Pred {
	ps := make([]algebra.Pred, len(in.J1))
	for i := range in.J1 {
		ps[i] = algebra.EqAttr(in.J1[i], in.J2[i])
	}
	return algebra.AndPred(ps...)
}

// side1Has reports whether attr belongs to side 1 (always A(e1)).
func (in *Instance) side1Has(attr string) bool { return in.E1.HasAttr(attr) }

// side2Has reports whether attr belongs to side 2: A(e2), except for the
// groupjoin where the visible side-2 attributes are the outputs of F̄.
func (in *Instance) side2Has(op Op) func(string) bool {
	if op == OpGroupJoin {
		outs := map[string]bool{}
		for _, a := range in.FBar {
			outs[a.Out] = true
		}
		return func(attr string) bool { return outs[attr] }
	}
	return in.E2.HasAttr
}

// G1 returns G ∩ A(e1).
func (in *Instance) G1() []string { return filterAttrs(in.G, in.side1Has) }

// G2 returns G ∩ side2.
func (in *Instance) G2(op Op) []string { return filterAttrs(in.G, in.side2Has(op)) }

// GPlus1 returns G1 ∪ J1 (the paper's G₁⁺).
func (in *Instance) GPlus1() []string { return unionAttrs(in.G1(), in.J1) }

// GPlus2 returns G2 ∪ J2 (the paper's G₂⁺).
func (in *Instance) GPlus2(op Op) []string { return unionAttrs(in.G2(op), in.J2) }

// OutAttrs returns the result schema of the grouped expression:
// G ∪ A(F).
func (in *Instance) OutAttrs() []string { return unionAttrs(in.G, in.F.Outs()) }

func filterAttrs(attrs []string, keep func(string) bool) []string {
	var out []string
	for _, a := range attrs {
		if keep(a) {
			out = append(out, a)
		}
	}
	return out
}

func unionAttrs(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, x := range b {
		dup := false
		for _, y := range out {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, x)
		}
	}
	return out
}

// apply evaluates e1 ◦ e2 for the operator with optional default vectors.
func (in *Instance) apply(op Op, e1, e2 *algebra.Rel, d1, d2 algebra.Defaults) *algebra.Rel {
	switch op {
	case OpJoin:
		return algebra.Join(e1, e2, in.Pred())
	case OpLeftOuter:
		return algebra.LeftOuter(e1, e2, in.Pred(), d2)
	case OpFullOuter:
		return algebra.FullOuter(e1, e2, in.Pred(), d1, d2)
	case OpSemiJoin:
		return algebra.SemiJoin(e1, e2, in.Pred())
	case OpAntiJoin:
		return algebra.AntiJoin(e1, e2, in.Pred())
	case OpGroupJoin:
		return algebra.GroupJoinTheta(e1, e2, in.J1, in.J2, in.Theta, in.FBar)
	}
	panic("eqv: unknown op")
}

// LHS evaluates the left-hand side Γ_G;F(e1 ◦ e2) directly.
func (in *Instance) LHS(op Op) *algebra.Rel {
	return algebra.Group(in.apply(op, in.E1, in.E2, nil, nil), in.G, in.F)
}

// defaultsFor converts the symbolic {⊥}-defaults of an inner vector into an
// algebra default assignment; withCount adds c:1.
func defaultsFor(inner aggfn.Vector, countAttr string, withCount bool) algebra.Defaults {
	d := algebra.Defaults{}
	for _, a := range inner {
		switch a.BottomDefault() {
		case aggfn.DefaultOne:
			d[a.Out] = algebra.Int(1)
		case aggfn.DefaultZero:
			d[a.Out] = algebra.Int(0)
			// DefaultNull coincides with NULL padding: nothing to add.
		}
	}
	if withCount {
		d[countAttr] = algebra.Int(1)
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

// Eager constructs the right-hand side of the eager-aggregation
// equivalences for the given operator and per-side modes. It returns an
// error when the preconditions (splittability, decomposability, emptiness
// constraints of the specialized equivalences) do not hold.
func (in *Instance) Eager(op Op, left, right Mode) (*algebra.Rel, error) {
	if op == OpSemiJoin || op == OpAntiJoin {
		return nil, errors.New("eqv: semijoin/antijoin use PushSemiAnti, not Eager")
	}
	if right != ModeNone && op == OpGroupJoin {
		return nil, errors.New("eqv: the groupjoin only admits a left push")
	}
	if left == ModeNone && right == ModeNone {
		return nil, errors.New("eqv: nothing to push")
	}

	// Split F into F1 ◦ F2. count(*) entries are attribute-free (case S1)
	// and may live on either side; place them on a side that aggregates.
	f1, f2, ok := in.split(op, left, right)
	if !ok {
		return nil, errors.New("eqv: F is not splittable w.r.t. e1, e2")
	}
	// The specialized equivalences require emptiness of the not-pushed
	// aggregate vector when no count is available to re-weight it.
	if left != ModeNone && !hasCount(left) && len(f2) > 0 {
		return nil, errors.New("eqv: pushing without count on the left requires F2 = ()")
	}
	if right != ModeNone && !hasCount(right) && len(f1) > 0 {
		return nil, errors.New("eqv: pushing without count on the right requires F1 = ()")
	}
	if left == ModeCount && len(f1) > 0 {
		return nil, errors.New("eqv: Eager Count on the left requires F1 = ()")
	}
	if right == ModeCount && len(f2) > 0 {
		return nil, errors.New("eqv: Eager Count on the right requires F2 = ()")
	}

	e1, e2 := in.E1, in.E2
	var outer1, outer2 aggfn.Vector // F²ᵢ replacements for pushed sides
	var d1, d2 algebra.Defaults

	// Left side.
	if left != ModeNone {
		inner := aggfn.Vector{}
		if hasAggs(left) {
			dec, err := f1.Decompose()
			if err != nil {
				return nil, fmt.Errorf("eqv: F1 not decomposable: %w", err)
			}
			inner = dec.Inner
			outer1 = dec.Outer
		} else {
			outer1 = nil // F1 is empty here by the checks above
		}
		if hasCount(left) {
			inner = inner.Concat(aggfn.Vector{{Out: countAttr1, Kind: aggfn.CountStar}})
		}
		if op == OpFullOuter {
			d1 = defaultsFor(innerAggsOnly(inner, countAttr1), countAttr1, hasCount(left))
		}
		e1 = algebra.Group(e1, in.GPlus1(), inner)
	} else {
		outer1 = f1
	}

	// Right side.
	if right != ModeNone {
		inner := aggfn.Vector{}
		if hasAggs(right) {
			dec, err := f2.Decompose()
			if err != nil {
				return nil, fmt.Errorf("eqv: F2 not decomposable: %w", err)
			}
			inner = dec.Inner
			outer2 = dec.Outer
		} else {
			outer2 = nil
		}
		if hasCount(right) {
			inner = inner.Concat(aggfn.Vector{{Out: countAttr2, Kind: aggfn.CountStar}})
		}
		if op == OpLeftOuter || op == OpFullOuter {
			d2 = defaultsFor(innerAggsOnly(inner, countAttr2), countAttr2, hasCount(right))
		}
		e2 = algebra.Group(e2, in.GPlus2(op), inner)
	} else {
		outer2 = f2
	}

	// Top vector: each side's contribution, ⊗-adjusted by the other
	// side's count attribute when one was introduced.
	top := outer1
	if hasCount(right) {
		adj, err := outer1.Adjust(countAttr2)
		if err != nil {
			return nil, err
		}
		top = adj
	}
	part2 := outer2
	if hasCount(left) {
		adj, err := outer2.Adjust(countAttr1)
		if err != nil {
			return nil, err
		}
		part2 = adj
	}
	top = top.Concat(part2)

	joined := in.apply(op, e1, e2, d1, d2)
	return algebra.Group(joined, in.G, top), nil
}

// innerAggsOnly strips the count attribute from an inner vector so the
// default vector logic sees F¹ᵢ alone (the count's default is handled
// separately as c:1).
func innerAggsOnly(inner aggfn.Vector, countAttr string) aggfn.Vector {
	var out aggfn.Vector
	for _, a := range inner {
		if a.Out != countAttr {
			out = append(out, a)
		}
	}
	return out
}

func hasCount(m Mode) bool { return m == ModeCount || m == ModeAggsCount }
func hasAggs(m Mode) bool  { return m == ModeAggs || m == ModeAggsCount }

// split separates F into (F1, F2) by side, routing attribute-free
// count(*) entries to a side that can absorb them.
func (in *Instance) split(op Op, left, right Mode) (f1, f2 aggfn.Vector, ok bool) {
	// Preferred side for count(*): one whose mode aggregates; default left.
	countStarLeft := true
	switch {
	case hasAggs(left):
		countStarLeft = true
	case hasAggs(right):
		countStarLeft = false
	case left == ModeCount: // F1 must be empty
		countStarLeft = false
	}
	s1, s2 := in.side1Has, in.side2Has(op)
	for _, a := range in.F {
		args := a.Args()
		if len(args) == 0 {
			if countStarLeft {
				f1 = append(f1, a)
			} else {
				f2 = append(f2, a)
			}
			continue
		}
		in1, in2 := true, true
		for _, arg := range args {
			if !s1(arg) {
				in1 = false
			}
			if !s2(arg) {
				in2 = false
			}
		}
		switch {
		case in1 && !in2:
			f1 = append(f1, a)
		case in2 && !in1:
			f2 = append(f2, a)
		default:
			return nil, nil, false
		}
	}
	return f1, f2, true
}

// PushSemiAnti constructs the right-hand side of Eqvs. 37/38:
// Γ_G;F(e1) ◦ e2 for ◦ ∈ {N, T}, valid when F(q) ∩ A(e1) ⊆ G.
func (in *Instance) PushSemiAnti(op Op) (*algebra.Rel, error) {
	if op != OpSemiJoin && op != OpAntiJoin {
		return nil, errors.New("eqv: PushSemiAnti needs a semijoin or antijoin")
	}
	for _, j := range in.J1 {
		found := false
		for _, g := range in.G {
			if g == j {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("eqv: join attribute %s of e1 not in G", j)
		}
	}
	grouped := algebra.Group(in.E1, in.G, in.F)
	return in.apply(op, grouped, in.E2, nil, nil), nil
}
