// Package plan defines the operator trees the plan generators build, along
// with the logical properties attached to every subplan: estimated
// cardinality, accumulated C_out cost, candidate keys, duplicate-freeness
// and eagerness. Property computation lives in internal/cost.
package plan

import (
	"fmt"
	"strings"

	"eagg/internal/bitset"
	"eagg/internal/query"
)

// NodeKind discriminates plan nodes.
type NodeKind int

const (
	// NodeScan reads a base relation.
	NodeScan NodeKind = iota
	// NodeOp applies one of the binary operators of Sec. 2.2.
	NodeOp
	// NodeGroup is a pushed-down grouping operator Γ_{G⁺} introduced by
	// eager aggregation, or the query's final grouping Γ_G.
	NodeGroup
	// NodeProject stands for the duplicate-preserving projection that
	// replaces an unnecessary top grouping (Sec. 3.2); it is free under
	// C_out.
	NodeProject
)

// PhysKind selects the physical algebra a plan node executes on. The
// zero value is the hash layer, so plans built without the sort-based
// physical layer (the default optimization mode) are unchanged.
type PhysKind int

const (
	// PhysHash is the build/probe hash layer (hash join, typed hash
	// aggregation) — the default.
	PhysHash PhysKind = iota
	// PhysSortMerge is the sort-based layer: streaming sort-merge join
	// (inner/semi/anti/leftouter) and sort-group aggregation. Inputs
	// whose contractual order already covers the requirement skip their
	// sort (SortL/SortR false); the output sequence is bit-identical to
	// the hash layer's either way.
	PhysSortMerge
)

// Plan is an immutable plan node. Plans share subtrees freely (the DP
// table interleaves them), so nodes are never mutated after construction.
type Plan struct {
	Kind NodeKind
	// Rels is the set of base relations covered, T(T) in the paper.
	Rels bitset.VSet

	// Scan fields.
	Rel int

	// Op fields.
	Op          query.OpKind
	Preds       []*query.Predicate
	Left, Right *Plan

	// Group fields: the grouping attributes (G⁺ for pushed groupings, G
	// for the final grouping). Child is Left.
	GroupBy bitset.VSet
	// Final marks the query's top grouping (aggregates finalized here).
	Final bool

	// Logical properties (filled by the estimator).
	Card    float64
	Cost    float64
	Keys    []bitset.VSet
	DupFree bool

	// GroupsBelow is the union of the grouping-attribute sets of the
	// eager groupings that shape this node's output: the node's own
	// GroupBy plus the groupings below it, except across boundaries
	// where grouping cannot matter (the right side of semijoin, antijoin
	// and groupjoin contributes only a value set, which grouping leaves
	// unchanged). It is a pure function of the plan structure, filled at
	// construction by the estimator, and forms the grouping-attrs half of
	// the canonical (relation-set, grouping-attrs) keys the cardinality
	// feedback loop records and looks up measured cardinalities under
	// (internal/cost.KeyOf).
	GroupsBelow bitset.VSet

	// Physical properties, filled by the estimator only when the
	// optimizer runs with the sort-based physical layer enabled
	// (core.Options.Phys != PhysModeHash); plans built in the default
	// mode carry the zero values and behave exactly as before.

	// Phys is the physical algebra of this operator (NodeOp, NodeGroup).
	Phys PhysKind
	// SortL/SortR report that the sort-based operator must sort its
	// left/right input (NodeGroup uses SortL for its only input). False
	// on a PhysSortMerge node means the input's contractual order
	// already covers the requirement — the sort is eliminated.
	SortL, SortR bool
	// MergeL/MergeR are the equi-join attribute ids in merge-comparison
	// order (aligned pairs) on PhysSortMerge NodeOp nodes. The optimizer
	// permutes the predicate pairs so that an input's existing order is
	// matched where possible; the executor merges in exactly this order.
	// On a PhysSortMerge NodeGroup with SortL false, MergeL instead
	// holds the covering order prefix whose non-decreasingness the
	// runtime verifies before streaming runs.
	MergeL, MergeR []int
	// Ord is the contractual physical output order (ordering.Order as
	// attribute ids). It originates at declared scan orders and
	// propagates only through the sort-based layer; nil means no claim.
	Ord []int
	// PhysCost ranks plans in sort/auto optimization modes: the C_out
	// cost plus every operator's physical reorganization overhead (hash
	// operators pay the rows they hash, sort operators the rows of each
	// sort actually performed; reused orders are free). Zero in the
	// default hash mode, where plain Cost keeps ranking plans.
	PhysCost float64

	// Profile caches the distinct-count estimates of the
	// grouping-relevant attributes for the dominance test of Sec. 4.6
	// (lazily filled by the plan generator; nil until then). With a
	// path-dependent distinct estimator, two plans of equal cost and
	// cardinality can still differ in the cardinality of future
	// groupings, so the profile joins cost, cardinality and keys as a
	// dominance dimension.
	Profile []float64
}

// Input returns the only child of a unary node.
func (p *Plan) Input() *Plan { return p.Left }

// Eagerness implements Sec. 4.5: the number of grouping operators that are
// a direct child of the topmost operator. Non-operator nodes have
// eagerness 0.
func (p *Plan) Eagerness() int {
	if p == nil || p.Kind != NodeOp {
		return 0
	}
	e := 0
	if p.Left != nil && p.Left.Kind == NodeGroup {
		e++
	}
	if p.Right != nil && p.Right.Kind == NodeGroup {
		e++
	}
	return e
}

// HasKeySubsetOf reports whether some candidate key is contained in attrs
// — the key test of NeedsGrouping (Fig. 7).
func (p *Plan) HasKeySubsetOf(attrs bitset.VSet) bool {
	for _, k := range p.Keys {
		if k.SubsetOf(attrs) {
			return true
		}
	}
	return false
}

// CountGroupings returns the number of grouping operators in the plan,
// excluding the final grouping.
func (p *Plan) CountGroupings() int {
	if p == nil {
		return 0
	}
	n := p.Left.CountGroupings() + p.Right.CountGroupings()
	if p.Kind == NodeGroup && !p.Final {
		n++
	}
	return n
}

// String renders the plan as an indented tree.
func (p *Plan) String() string {
	var b strings.Builder
	p.render(&b, 0, nil)
	return b.String()
}

// StringWithQuery renders the plan with attribute and relation names
// resolved against the query.
func (p *Plan) StringWithQuery(q *query.Query) string {
	var b strings.Builder
	p.render(&b, 0, q)
	return b.String()
}

func (p *Plan) render(b *strings.Builder, depth int, q *query.Query) {
	if p == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	switch p.Kind {
	case NodeScan:
		name := fmt.Sprintf("R%d", p.Rel)
		if q != nil {
			name = q.Relations[p.Rel].Name
		}
		fmt.Fprintf(b, "%sscan %s (card=%.6g)\n", indent, name, p.Card)
	case NodeOp:
		fmt.Fprintf(b, "%s%v%s %v (card=%.6g cost=%.6g)\n", indent, p.Op, p.PhysTag(), p.Rels, p.Card, p.Cost)
		p.Left.render(b, depth+1, q)
		p.Right.render(b, depth+1, q)
	case NodeGroup:
		label := "Γ" + p.PhysTag()
		if p.Final {
			label = "Γ(final)" + p.PhysTag()
		}
		attrs := p.GroupBy.String()
		if q != nil {
			var names []string
			p.GroupBy.ForEach(func(a int) { names = append(names, q.AttrNames[a]) })
			attrs = "{" + strings.Join(names, ", ") + "}"
		}
		fmt.Fprintf(b, "%s%s %s (card=%.6g cost=%.6g)\n", indent, label, attrs, p.Card, p.Cost)
		p.Left.render(b, depth+1, q)
	case NodeProject:
		fmt.Fprintf(b, "%sΠ (card=%.6g cost=%.6g)\n", indent, p.Card, p.Cost)
		p.Left.render(b, depth+1, q)
	}
}

// Equal reports whether two plans are structurally identical with
// bit-identical estimates — the determinism contract between the
// sequential and parallel plan generators. Profiles are excluded: they are
// lazily filled caches, not plan properties. Predicates are compared by
// identity, which is exact when both plans optimize the same Query.
func Equal(a, b *Plan) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Rels != b.Rels || a.Rel != b.Rel || a.Op != b.Op ||
		a.GroupBy != b.GroupBy || a.Final != b.Final ||
		a.Card != b.Card || a.Cost != b.Cost || a.DupFree != b.DupFree ||
		a.GroupsBelow != b.GroupsBelow ||
		a.Phys != b.Phys || a.SortL != b.SortL || a.SortR != b.SortR ||
		a.PhysCost != b.PhysCost {
		return false
	}
	if len(a.Keys) != len(b.Keys) || len(a.Preds) != len(b.Preds) {
		return false
	}
	if !equalInts(a.MergeL, b.MergeL) || !equalInts(a.MergeR, b.MergeR) || !equalInts(a.Ord, b.Ord) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	for i := range a.Preds {
		if a.Preds[i] != b.Preds[i] {
			return false
		}
	}
	return Equal(a.Left, b.Left) && Equal(a.Right, b.Right)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Signature returns a canonical string identifying the plan's structure
// (used by tests to compare plans irrespective of pointer identity).
func (p *Plan) Signature() string {
	if p == nil {
		return "·"
	}
	switch p.Kind {
	case NodeScan:
		return fmt.Sprintf("R%d", p.Rel)
	case NodeOp:
		return fmt.Sprintf("(%s %v%s %s)", p.Left.Signature(), p.Op, p.PhysTag(), p.Right.Signature())
	case NodeGroup:
		return fmt.Sprintf("Γ%s%v[%s]", p.PhysTag(), p.GroupBy, p.Left.Signature())
	case NodeProject:
		return fmt.Sprintf("Π[%s]", p.Left.Signature())
	}
	return "?"
}

// PhysTag renders the physical choice into signatures and trees: empty
// for hash (keeping default-mode signatures stable), "∘sort" for the
// sort-based layer with per-input sort/reuse marks.
func (p *Plan) PhysTag() string {
	if p.Phys != PhysSortMerge {
		return ""
	}
	mark := func(need bool) byte {
		if need {
			return 's' // sort performed
		}
		return 'o' // order reused, sort eliminated
	}
	if p.Kind == NodeGroup {
		return fmt.Sprintf("∘sort[%c]", mark(p.SortL))
	}
	return fmt.Sprintf("∘sort[%c%c]", mark(p.SortL), mark(p.SortR))
}

// SortStats counts the sorts of the plan's sort-based operators:
// performed (the input had to be sorted) versus eliminated (an existing
// order was reused). Hash operators contribute nothing.
func (p *Plan) SortStats() (performed, eliminated int) {
	if p == nil {
		return 0, 0
	}
	lp, le := p.Left.SortStats()
	rp, re := p.Right.SortStats()
	performed, eliminated = lp+rp, le+re
	if p.Phys == PhysSortMerge {
		count := func(need bool) {
			if need {
				performed++
			} else {
				eliminated++
			}
		}
		count(p.SortL)
		if p.Kind == NodeOp {
			count(p.SortR)
		}
	}
	return performed, eliminated
}

// StripPhys returns a copy of the plan with every physical annotation
// removed — the same logical tree on the pure hash layer. Executing the
// stripped plan is the differential oracle for the sort-based layer: the
// sort operators emit the hash-canonical output sequence, so results
// must be bit-identical, not merely bag-equal.
func StripPhys(p *Plan) *Plan {
	if p == nil {
		return nil
	}
	c := *p
	c.Phys = PhysHash
	c.SortL, c.SortR = false, false
	c.MergeL, c.MergeR = nil, nil
	c.Ord = nil
	c.PhysCost = 0
	c.Profile = nil
	c.Left = StripPhys(p.Left)
	c.Right = StripPhys(p.Right)
	return &c
}
