// Package plan defines the operator trees the plan generators build, along
// with the logical properties attached to every subplan: estimated
// cardinality, accumulated C_out cost, candidate keys, duplicate-freeness
// and eagerness. Property computation lives in internal/cost.
package plan

import (
	"fmt"
	"strings"

	"eagg/internal/bitset"
	"eagg/internal/query"
)

// NodeKind discriminates plan nodes.
type NodeKind int

const (
	// NodeScan reads a base relation.
	NodeScan NodeKind = iota
	// NodeOp applies one of the binary operators of Sec. 2.2.
	NodeOp
	// NodeGroup is a pushed-down grouping operator Γ_{G⁺} introduced by
	// eager aggregation, or the query's final grouping Γ_G.
	NodeGroup
	// NodeProject stands for the duplicate-preserving projection that
	// replaces an unnecessary top grouping (Sec. 3.2); it is free under
	// C_out.
	NodeProject
)

// Plan is an immutable plan node. Plans share subtrees freely (the DP
// table interleaves them), so nodes are never mutated after construction.
type Plan struct {
	Kind NodeKind
	// Rels is the set of base relations covered, T(T) in the paper.
	Rels bitset.Set64

	// Scan fields.
	Rel int

	// Op fields.
	Op          query.OpKind
	Preds       []*query.Predicate
	Left, Right *Plan

	// Group fields: the grouping attributes (G⁺ for pushed groupings, G
	// for the final grouping). Child is Left.
	GroupBy bitset.Set64
	// Final marks the query's top grouping (aggregates finalized here).
	Final bool

	// Logical properties (filled by the estimator).
	Card    float64
	Cost    float64
	Keys    []bitset.Set64
	DupFree bool

	// GroupsBelow is the union of the grouping-attribute sets of the
	// eager groupings that shape this node's output: the node's own
	// GroupBy plus the groupings below it, except across boundaries
	// where grouping cannot matter (the right side of semijoin, antijoin
	// and groupjoin contributes only a value set, which grouping leaves
	// unchanged). It is a pure function of the plan structure, filled at
	// construction by the estimator, and forms the grouping-attrs half of
	// the canonical (relation-set, grouping-attrs) keys the cardinality
	// feedback loop records and looks up measured cardinalities under
	// (internal/cost.KeyOf).
	GroupsBelow bitset.Set64

	// Profile caches the distinct-count estimates of the
	// grouping-relevant attributes for the dominance test of Sec. 4.6
	// (lazily filled by the plan generator; nil until then). With a
	// path-dependent distinct estimator, two plans of equal cost and
	// cardinality can still differ in the cardinality of future
	// groupings, so the profile joins cost, cardinality and keys as a
	// dominance dimension.
	Profile []float64
}

// Input returns the only child of a unary node.
func (p *Plan) Input() *Plan { return p.Left }

// Eagerness implements Sec. 4.5: the number of grouping operators that are
// a direct child of the topmost operator. Non-operator nodes have
// eagerness 0.
func (p *Plan) Eagerness() int {
	if p == nil || p.Kind != NodeOp {
		return 0
	}
	e := 0
	if p.Left != nil && p.Left.Kind == NodeGroup {
		e++
	}
	if p.Right != nil && p.Right.Kind == NodeGroup {
		e++
	}
	return e
}

// HasKeySubsetOf reports whether some candidate key is contained in attrs
// — the key test of NeedsGrouping (Fig. 7).
func (p *Plan) HasKeySubsetOf(attrs bitset.Set64) bool {
	for _, k := range p.Keys {
		if k.SubsetOf(attrs) {
			return true
		}
	}
	return false
}

// CountGroupings returns the number of grouping operators in the plan,
// excluding the final grouping.
func (p *Plan) CountGroupings() int {
	if p == nil {
		return 0
	}
	n := p.Left.CountGroupings() + p.Right.CountGroupings()
	if p.Kind == NodeGroup && !p.Final {
		n++
	}
	return n
}

// String renders the plan as an indented tree.
func (p *Plan) String() string {
	var b strings.Builder
	p.render(&b, 0, nil)
	return b.String()
}

// StringWithQuery renders the plan with attribute and relation names
// resolved against the query.
func (p *Plan) StringWithQuery(q *query.Query) string {
	var b strings.Builder
	p.render(&b, 0, q)
	return b.String()
}

func (p *Plan) render(b *strings.Builder, depth int, q *query.Query) {
	if p == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	switch p.Kind {
	case NodeScan:
		name := fmt.Sprintf("R%d", p.Rel)
		if q != nil {
			name = q.Relations[p.Rel].Name
		}
		fmt.Fprintf(b, "%sscan %s (card=%.6g)\n", indent, name, p.Card)
	case NodeOp:
		fmt.Fprintf(b, "%s%v %v (card=%.6g cost=%.6g)\n", indent, p.Op, p.Rels, p.Card, p.Cost)
		p.Left.render(b, depth+1, q)
		p.Right.render(b, depth+1, q)
	case NodeGroup:
		label := "Γ"
		if p.Final {
			label = "Γ(final)"
		}
		attrs := p.GroupBy.String()
		if q != nil {
			var names []string
			p.GroupBy.ForEach(func(a int) { names = append(names, q.AttrNames[a]) })
			attrs = "{" + strings.Join(names, ", ") + "}"
		}
		fmt.Fprintf(b, "%s%s %s (card=%.6g cost=%.6g)\n", indent, label, attrs, p.Card, p.Cost)
		p.Left.render(b, depth+1, q)
	case NodeProject:
		fmt.Fprintf(b, "%sΠ (card=%.6g cost=%.6g)\n", indent, p.Card, p.Cost)
		p.Left.render(b, depth+1, q)
	}
}

// Equal reports whether two plans are structurally identical with
// bit-identical estimates — the determinism contract between the
// sequential and parallel plan generators. Profiles are excluded: they are
// lazily filled caches, not plan properties. Predicates are compared by
// identity, which is exact when both plans optimize the same Query.
func Equal(a, b *Plan) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Rels != b.Rels || a.Rel != b.Rel || a.Op != b.Op ||
		a.GroupBy != b.GroupBy || a.Final != b.Final ||
		a.Card != b.Card || a.Cost != b.Cost || a.DupFree != b.DupFree ||
		a.GroupsBelow != b.GroupsBelow {
		return false
	}
	if len(a.Keys) != len(b.Keys) || len(a.Preds) != len(b.Preds) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	for i := range a.Preds {
		if a.Preds[i] != b.Preds[i] {
			return false
		}
	}
	return Equal(a.Left, b.Left) && Equal(a.Right, b.Right)
}

// Signature returns a canonical string identifying the plan's structure
// (used by tests to compare plans irrespective of pointer identity).
func (p *Plan) Signature() string {
	if p == nil {
		return "·"
	}
	switch p.Kind {
	case NodeScan:
		return fmt.Sprintf("R%d", p.Rel)
	case NodeOp:
		return fmt.Sprintf("(%s %v %s)", p.Left.Signature(), p.Op, p.Right.Signature())
	case NodeGroup:
		return fmt.Sprintf("Γ%v[%s]", p.GroupBy, p.Left.Signature())
	case NodeProject:
		return fmt.Sprintf("Π[%s]", p.Left.Signature())
	}
	return "?"
}
