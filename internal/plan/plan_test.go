package plan

import (
	"strings"
	"testing"

	"eagg/internal/bitset"
	"eagg/internal/query"
)

func samplePlans() (*Plan, *Plan, *Plan) {
	s0 := &Plan{Kind: NodeScan, Rels: bitset.NewV(0), Rel: 0, Card: 100}
	s1 := &Plan{Kind: NodeScan, Rels: bitset.NewV(1), Rel: 1, Card: 10}
	g := &Plan{Kind: NodeGroup, Rels: s0.Rels, GroupBy: bitset.NewV(2), Left: s0, Card: 5, DupFree: true}
	j := &Plan{Kind: NodeOp, Op: query.KindJoin, Rels: bitset.NewV(0, 1), Left: g, Right: s1, Card: 50, Cost: 55}
	return s0, s1, j
}

func TestEagerness(t *testing.T) {
	s0, s1, j := samplePlans()
	if j.Eagerness() != 1 {
		t.Errorf("one grouped child: eagerness = %d", j.Eagerness())
	}
	base := &Plan{Kind: NodeOp, Op: query.KindJoin, Left: s0, Right: s1}
	if base.Eagerness() != 0 {
		t.Error("base tree eagerness must be 0")
	}
	g2 := &Plan{Kind: NodeGroup, Left: s1}
	double := &Plan{Kind: NodeOp, Op: query.KindJoin, Left: j.Left, Right: g2}
	if double.Eagerness() != 2 {
		t.Error("double eager must be 2")
	}
	if s0.Eagerness() != 0 {
		t.Error("scans have eagerness 0")
	}
}

func TestHasKeySubsetOf(t *testing.T) {
	p := &Plan{Keys: []bitset.VSet{bitset.NewV(1, 2)}}
	if !p.HasKeySubsetOf(bitset.NewV(1, 2, 3)) {
		t.Error("superset of a key must qualify")
	}
	if p.HasKeySubsetOf(bitset.NewV(1)) {
		t.Error("partial key must not qualify")
	}
}

func TestCountGroupings(t *testing.T) {
	_, _, j := samplePlans()
	if j.CountGroupings() != 1 {
		t.Errorf("CountGroupings = %d", j.CountGroupings())
	}
	final := &Plan{Kind: NodeGroup, Final: true, Left: j}
	if final.CountGroupings() != 1 {
		t.Error("final grouping must not count as eager")
	}
}

func TestSignatureAndString(t *testing.T) {
	_, _, j := samplePlans()
	sig := j.Signature()
	if !strings.Contains(sig, "join") || !strings.Contains(sig, "Γ") {
		t.Errorf("Signature = %q", sig)
	}
	s := j.String()
	for _, want := range []string{"join", "Γ", "scan R0", "scan R1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String misses %q:\n%s", want, s)
		}
	}
}

func TestStringWithQuery(t *testing.T) {
	q := query.New()
	q.AddRelation("lineitem", 100)
	q.AddRelation("orders", 10)
	q.AddAttr(0, "l.x", 5)
	q.AddAttr(1, "o.y", 5)
	a2 := q.AddAttr(0, "l.g", 5)
	_, _, j := samplePlans()
	j.Left.GroupBy = bitset.NewV(a2)
	s := j.StringWithQuery(q)
	if !strings.Contains(s, "lineitem") || !strings.Contains(s, "l.g") {
		t.Errorf("StringWithQuery misses names:\n%s", s)
	}
}
