package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// VSet is an adaptive-width value bitset. Bits 0–63 live in an inline
// word; bits 64 and above live in a canonical packed string of
// little-endian 8-byte words with trailing zero words trimmed. The
// canonical packing makes == content equality, so VSet keys maps and
// compares like Set64 while holding arbitrarily large universes. The
// zero value is the empty set, and sets that fit 64 bits never allocate.
//
// VSet is the lingua franca of the non-enumeration layers (query, plan,
// cost, fd, ordering, engine): they hold one code path regardless of the
// set representation the DP enumerator runs on, which is what keeps the
// fast and wide optimizer paths structurally bit-identical.
type VSet struct {
	lo uint64
	hi string
}

// NewV returns the set containing exactly the given elements.
func NewV(elems ...int) VSet {
	var s VSet
	for _, e := range elems {
		s = s.Add(e)
	}
	return s
}

// SingleV returns the singleton set {e}.
func SingleV(e int) VSet {
	return VSet{}.Add(e)
}

// packWords trims trailing zero words and packs the rest little-endian.
func packWords(ws []uint64) string {
	n := len(ws)
	for n > 0 && ws[n-1] == 0 {
		n--
	}
	if n == 0 {
		return ""
	}
	b := make([]byte, n*8)
	for i := 0; i < n; i++ {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(ws[i] >> (8 * j))
		}
	}
	return string(b)
}

// unpackWord decodes word i (bits 64·(i+1)…) of a packed hi string.
func unpackWord(hi string, i int) uint64 {
	var w uint64
	for j := 0; j < 8; j++ {
		w |= uint64(hi[i*8+j]) << (8 * j)
	}
	return w
}

// hiWords returns the number of packed high words.
func (s VSet) hiWords() int { return len(s.hi) / 8 }

// Lo returns the inline low word and whether the set fits entirely in it
// (no elements ≥ 64). Hot set-keyed caches use it to key the common
// small-universe case by a plain uint64, which hashes much faster than
// the struct form.
func (s VSet) Lo() (uint64, bool) { return s.lo, s.hi == "" }

// NumWords returns the number of 64-bit words the set spans (≥ 1; word 0
// is the inline low word). With Word it supports allocation-free,
// closure-free iteration in hot paths:
//
//	for w, nw := 0, s.NumWords(); w < nw; w++ {
//		for t := s.Word(w); t != 0; t &= t - 1 {
//			e := w*64 + bits.TrailingZeros64(t)
//			...
//		}
//	}
func (s VSet) NumWords() int { return 1 + s.hiWords() }

// Word returns the w-th 64-bit word of the set (word 0 holds elements
// 0–63, word 1 elements 64–127, …).
func (s VSet) Word(w int) uint64 {
	if w == 0 {
		return s.lo
	}
	return unpackWord(s.hi, w-1)
}

// words flattens the set into a word slice [lo, hi…].
func (s VSet) words() []uint64 {
	ws := make([]uint64, 1+s.hiWords())
	ws[0] = s.lo
	for i := 0; i < s.hiWords(); i++ {
		ws[i+1] = unpackWord(s.hi, i)
	}
	return ws
}

// fromWords rebuilds a canonical VSet from a word slice.
func fromWords(ws []uint64) VSet {
	if len(ws) == 0 {
		return VSet{}
	}
	return VSet{lo: ws[0], hi: packWords(ws[1:])}
}

// The small predicates and constructors below are split into an
// inlinable single-word fast path and an out-of-line multi-word helper:
// the optimizer's hot loops hammer Contains/SubsetOf/Union/… on sets
// that overwhelmingly fit the inline low word, and keeping the fast path
// under the compiler's inlining budget is worth measurable optimizer
// time (the monolithic versions showed up as top profile entries).

// Add returns s ∪ {e}.
func (s VSet) Add(e int) VSet {
	if e < 64 {
		s.lo |= 1 << uint(e)
		return s
	}
	return s.addHi(e)
}

func (s VSet) addHi(e int) VSet {
	w := e/64 - 1
	ws := make([]uint64, maxInt(s.hiWords(), w+1))
	for i := 0; i < s.hiWords(); i++ {
		ws[i] = unpackWord(s.hi, i)
	}
	ws[w] |= 1 << uint(e%64)
	s.hi = packWords(ws)
	return s
}

// Remove returns s \ {e}.
func (s VSet) Remove(e int) VSet {
	if e < 64 {
		s.lo &^= 1 << uint(e)
		return s
	}
	w := e/64 - 1
	if w >= s.hiWords() {
		return s
	}
	ws := s.words()
	ws[w+1] &^= 1 << uint(e%64)
	return fromWords(ws)
}

// Contains reports whether e ∈ s.
func (s VSet) Contains(e int) bool {
	if e < 64 {
		return s.lo&(1<<uint(e)) != 0
	}
	return s.containsHi(e)
}

//go:noinline
func (s VSet) containsHi(e int) bool {
	w := e/64 - 1
	if w >= s.hiWords() {
		return false
	}
	return unpackWord(s.hi, w)&(1<<uint(e%64)) != 0
}

// Union returns s ∪ t.
func (s VSet) Union(t VSet) VSet {
	if s.hi == "" && t.hi == "" {
		return VSet{lo: s.lo | t.lo}
	}
	return s.unionHi(t)
}

func (s VSet) unionHi(t VSet) VSet {
	a, b := s.words(), t.words()
	if len(a) < len(b) {
		a, b = b, a
	}
	out := make([]uint64, len(a))
	copy(out, a)
	for i := range b {
		out[i] |= b[i]
	}
	return fromWords(out)
}

// Intersect returns s ∩ t.
func (s VSet) Intersect(t VSet) VSet {
	if s.hi == "" || t.hi == "" {
		return VSet{lo: s.lo & t.lo}
	}
	return s.intersectHi(t)
}

func (s VSet) intersectHi(t VSet) VSet {
	a, b := s.words(), t.words()
	n := minInt(len(a), len(b))
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] & b[i]
	}
	return fromWords(out)
}

// Diff returns s \ t.
func (s VSet) Diff(t VSet) VSet {
	if s.hi == "" {
		return VSet{lo: s.lo &^ t.lo}
	}
	return s.diffHi(t)
}

func (s VSet) diffHi(t VSet) VSet {
	out := s.words()
	b := t.words()
	for i := 0; i < minInt(len(out), len(b)); i++ {
		out[i] &^= b[i]
	}
	return fromWords(out)
}

// IsEmpty reports whether s = ∅.
func (s VSet) IsEmpty() bool {
	return s.lo == 0 && s.hi == ""
}

// IsSingleton reports whether |s| = 1.
func (s VSet) IsSingleton() bool {
	if s.hi == "" {
		return s.lo != 0 && s.lo&(s.lo-1) == 0
	}
	return s.Len() == 1
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s VSet) Intersects(t VSet) bool {
	if s.hi == "" || t.hi == "" {
		return s.lo&t.lo != 0
	}
	return s.intersectsHi(t)
}

//go:noinline
func (s VSet) intersectsHi(t VSet) bool {
	if s.lo&t.lo != 0 {
		return true
	}
	n := minInt(s.hiWords(), t.hiWords())
	for i := 0; i < n; i++ {
		if unpackWord(s.hi, i)&unpackWord(t.hi, i) != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether s ⊆ t.
func (s VSet) SubsetOf(t VSet) bool {
	if s.lo&^t.lo != 0 {
		return false
	}
	if s.hi == "" {
		return true
	}
	return s.subsetHi(t)
}

func (s VSet) subsetHi(t VSet) bool {
	if s.hiWords() > t.hiWords() {
		return false // canonical trimming: extra words are non-zero
	}
	for i := 0; i < s.hiWords(); i++ {
		if unpackWord(s.hi, i)&^unpackWord(t.hi, i) != 0 {
			return false
		}
	}
	return true
}

// Disjoint reports whether s ∩ t = ∅.
func (s VSet) Disjoint(t VSet) bool { return !s.Intersects(t) }

// Len returns |s|.
func (s VSet) Len() int {
	n := bits.OnesCount64(s.lo)
	for i := 0; i < s.hiWords(); i++ {
		n += bits.OnesCount64(unpackWord(s.hi, i))
	}
	return n
}

// Min returns the smallest element of s. It panics on the empty set.
func (s VSet) Min() int {
	if s.lo != 0 {
		return bits.TrailingZeros64(s.lo)
	}
	for i := 0; i < s.hiWords(); i++ {
		if w := unpackWord(s.hi, i); w != 0 {
			return (i+1)*64 + bits.TrailingZeros64(w)
		}
	}
	panic("bitset: Min of empty VSet")
}

// Max returns the largest element of s. It panics on the empty set.
func (s VSet) Max() int {
	if n := s.hiWords(); n > 0 {
		// trailing zero words are trimmed, so the last word is non-zero
		return n*64 + 63 - bits.LeadingZeros64(unpackWord(s.hi, n-1))
	}
	if s.lo != 0 {
		return 63 - bits.LeadingZeros64(s.lo)
	}
	panic("bitset: Max of empty VSet")
}

// Elems returns the elements of s in ascending order.
func (s VSet) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(e int) { out = append(out, e) })
	return out
}

// ForEach calls f for each element of s in ascending order.
func (s VSet) ForEach(f func(e int)) {
	for t := s.lo; t != 0; t &= t - 1 {
		f(bits.TrailingZeros64(t))
	}
	for i := 0; i < s.hiWords(); i++ {
		for t := unpackWord(s.hi, i); t != 0; t &= t - 1 {
			f((i+1)*64 + bits.TrailingZeros64(t))
		}
	}
}

// Less orders sets numerically (reading the words as one little-endian
// integer) — a total deterministic order for sorting CardKeys and other
// set-keyed records.
func (s VSet) Less(t VSet) bool {
	if s.hiWords() != t.hiWords() {
		return s.hiWords() < t.hiWords()
	}
	for i := s.hiWords() - 1; i >= 0; i-- {
		a, b := unpackWord(s.hi, i), unpackWord(t.hi, i)
		if a != b {
			return a < b
		}
	}
	return s.lo < t.lo
}

// ToSet64 converts the set to a Set64. It panics when the set holds
// elements ≥ 64; callers guard with the fast-path invariant.
func (s VSet) ToSet64() Set64 {
	if s.hi != "" {
		panic("bitset: VSet does not fit Set64")
	}
	return Set64(s.lo)
}

// String renders the set like "{0, 3, 170}".
func (s VSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(e int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", e)
	})
	b.WriteByte('}')
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
