package bitset

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(200)
	s.Add(0)
	s.Add(130)
	s.Add(199)
	if !s.Contains(130) || s.Contains(131) {
		t.Error("Contains broken across word boundaries")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Remove(130)
	if s.Contains(130) || s.Len() != 2 {
		t.Error("Remove broken")
	}
}

func TestSetZeroValue(t *testing.T) {
	var s Set
	if !s.IsEmpty() || s.Len() != 0 {
		t.Error("zero value should be empty")
	}
	s.Add(70)
	if !s.Contains(70) {
		t.Error("Add on zero value broken")
	}
}

func TestSetGrowth(t *testing.T) {
	s := NewSetOf()
	s.Add(500)
	if !s.Contains(500) || s.Contains(499) {
		t.Error("growth broken")
	}
	s.Remove(10000) // beyond capacity: no-op, no panic
	if s.Len() != 1 {
		t.Error("Remove beyond capacity changed set")
	}
}

func TestSetAlgebraOps(t *testing.T) {
	a := NewSetOf(1, 100, 200)
	b := NewSetOf(100, 300)
	u := a.Union(b)
	for _, e := range []int{1, 100, 200, 300} {
		if !u.Contains(e) {
			t.Errorf("union missing %d", e)
		}
	}
	i := a.Intersect(b)
	if i.Len() != 1 || !i.Contains(100) {
		t.Errorf("intersect = %v", i)
	}
	d := a.Diff(b)
	if d.Contains(100) || !d.Contains(1) || !d.Contains(200) {
		t.Errorf("diff = %v", d)
	}
	// Originals untouched by the non-mutating forms.
	if a.Len() != 3 || b.Len() != 2 {
		t.Error("non-mutating ops mutated inputs")
	}
}

func TestSetSubsetEqual(t *testing.T) {
	a := NewSetOf(1, 128)
	b := NewSetOf(1, 128, 400)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf broken")
	}
	if !a.Equal(a.Clone()) || a.Equal(b) {
		t.Error("Equal broken")
	}
	// Different backing lengths, same content.
	c := NewSet(1000)
	c.Add(1)
	c.Add(128)
	if !a.Equal(c) {
		t.Error("Equal must ignore trailing zero words")
	}
	if !a.Intersects(b) || a.Intersects(NewSetOf(77)) {
		t.Error("Intersects broken")
	}
}

func TestSetMinMaxElems(t *testing.T) {
	s := NewSetOf(65, 3, 500)
	if s.Min() != 3 || s.Max() != 500 {
		t.Errorf("Min/Max = %d/%d", s.Min(), s.Max())
	}
	got := s.Elems()
	want := []int{3, 65, 500}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v", got)
		}
	}
	var empty Set
	if empty.Min() != -1 || empty.Max() != -1 {
		t.Error("Min/Max of empty should be -1")
	}
}

func TestFromSet64(t *testing.T) {
	s := FromSet64(New64(0, 63))
	if !s.Contains(0) || !s.Contains(63) || s.Len() != 2 {
		t.Errorf("FromSet64 = %v", s)
	}
	if !FromSet64(Empty64).IsEmpty() {
		t.Error("FromSet64(empty) should be empty")
	}
}

func TestSetString(t *testing.T) {
	if got := NewSetOf(2, 70).String(); got != "{2, 70}" {
		t.Errorf("String = %q", got)
	}
}

// Randomized cross-check of Set against a map-based model.
func TestSetAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewSet(0)
	model := map[int]bool{}
	for op := 0; op < 5000; op++ {
		e := rng.Intn(300)
		switch rng.Intn(3) {
		case 0:
			s.Add(e)
			model[e] = true
		case 1:
			s.Remove(e)
			delete(model, e)
		case 2:
			if s.Contains(e) != model[e] {
				t.Fatalf("divergence at element %d after %d ops", e, op)
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", s.Len(), len(model))
	}
	s.ForEach(func(e int) {
		if !model[e] {
			t.Fatalf("set contains %d not in model", e)
		}
	})
}

// Randomized cross-check of UnionWith/IntersectWith/DiffWith semantics.
func TestSetMutatingOpsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		a, b := NewSet(0), NewSet(0)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < 40; i++ {
			x, y := rng.Intn(256), rng.Intn(256)
			a.Add(x)
			ma[x] = true
			b.Add(y)
			mb[y] = true
		}
		check := func(got *Set, pred func(e int) bool) {
			for e := 0; e < 256; e++ {
				if got.Contains(e) != pred(e) {
					t.Fatalf("trial %d: element %d mismatch", trial, e)
				}
			}
		}
		check(a.Union(b), func(e int) bool { return ma[e] || mb[e] })
		check(a.Intersect(b), func(e int) bool { return ma[e] && mb[e] })
		check(a.Diff(b), func(e int) bool { return ma[e] && !mb[e] })
	}
}
