// Package bitset provides the small-set machinery the plan generator is
// built on: Set64, a value-type bitset over the universe {0,…,63}, and Set,
// an arbitrary-width bitset for larger universes.
//
// The dynamic-programming plan generator identifies every subset of
// relations, every set of attributes, every key, and every grouping set with
// a bitset, so subset tests, unions and subset enumeration must all be
// single-instruction cheap. Set64 is a plain uint64 and is passed by value
// everywhere.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set64 is a bitset over the universe {0,…,63}. The zero value is the empty
// set. Set64 is a value type: all operations return new sets and never
// mutate the receiver.
type Set64 uint64

// Empty64 is the empty set.
const Empty64 Set64 = 0

// New64 returns the set containing exactly the given elements.
func New64(elems ...int) Set64 {
	var s Set64
	for _, e := range elems {
		s = s.Add(e)
	}
	return s
}

// Range64 returns the set {lo, lo+1, …, hi-1}.
func Range64(lo, hi int) Set64 {
	var s Set64
	for i := lo; i < hi; i++ {
		s = s.Add(i)
	}
	return s
}

// Single64 returns the singleton set {e}.
func Single64(e int) Set64 {
	return Set64(1) << uint(e)
}

// Add returns s ∪ {e}.
func (s Set64) Add(e int) Set64 {
	return s | Set64(1)<<uint(e)
}

// Remove returns s \ {e}.
func (s Set64) Remove(e int) Set64 {
	return s &^ (Set64(1) << uint(e))
}

// Contains reports whether e ∈ s.
func (s Set64) Contains(e int) bool {
	return s&(Set64(1)<<uint(e)) != 0
}

// Union returns s ∪ t.
func (s Set64) Union(t Set64) Set64 { return s | t }

// Intersect returns s ∩ t.
func (s Set64) Intersect(t Set64) Set64 { return s & t }

// Diff returns s \ t.
func (s Set64) Diff(t Set64) Set64 { return s &^ t }

// SymDiff returns the symmetric difference s △ t.
func (s Set64) SymDiff(t Set64) Set64 { return s ^ t }

// IsEmpty reports whether s = ∅.
func (s Set64) IsEmpty() bool { return s == 0 }

// Intersects reports whether s ∩ t ≠ ∅.
func (s Set64) Intersects(t Set64) bool { return s&t != 0 }

// SubsetOf reports whether s ⊆ t.
func (s Set64) SubsetOf(t Set64) bool { return s&^t == 0 }

// ProperSubsetOf reports whether s ⊂ t.
func (s Set64) ProperSubsetOf(t Set64) bool { return s != t && s&^t == 0 }

// Disjoint reports whether s ∩ t = ∅.
func (s Set64) Disjoint(t Set64) bool { return s&t == 0 }

// Len returns |s|.
func (s Set64) Len() int { return bits.OnesCount64(uint64(s)) }

// IsSingleton reports whether |s| = 1.
func (s Set64) IsSingleton() bool { return s != 0 && s&(s-1) == 0 }

// Min returns the smallest element of s. It panics on the empty set.
func (s Set64) Min() int {
	if s == 0 {
		panic("bitset: Min of empty Set64")
	}
	return bits.TrailingZeros64(uint64(s))
}

// Max returns the largest element of s. It panics on the empty set.
func (s Set64) Max() int {
	if s == 0 {
		panic("bitset: Max of empty Set64")
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

// MinSet returns the singleton set containing the smallest element of s, or
// the empty set if s is empty. This is the "lowest bit" idiom used by DPhyp.
func (s Set64) MinSet() Set64 {
	return s & (-s)
}

// Below returns the set of all elements strictly smaller than the smallest
// element of s, i.e. B(min(s)) in DPhyp notation. For the empty set it
// returns the full universe.
func (s Set64) Below() Set64 {
	if s == 0 {
		return ^Set64(0)
	}
	return s.MinSet() - 1
}

// BelowEq returns Below(s) ∪ MinSet(s): all elements ≤ min(s).
func (s Set64) BelowEq() Set64 {
	if s == 0 {
		return ^Set64(0)
	}
	m := s.MinSet()
	return m | (m - 1)
}

// Elems returns the elements of s in ascending order.
func (s Set64) Elems() []int {
	out := make([]int, 0, s.Len())
	for t := s; t != 0; t &= t - 1 {
		out = append(out, bits.TrailingZeros64(uint64(t)))
	}
	return out
}

// ForEach calls f for each element of s in ascending order.
func (s Set64) ForEach(f func(e int)) {
	for t := s; t != 0; t &= t - 1 {
		f(bits.TrailingZeros64(uint64(t)))
	}
}

// NextAfter returns the smallest element of s that is > e, or -1 if there is
// none.
func (s Set64) NextAfter(e int) int {
	t := s & ^(Set64(1)<<uint(e+1) - 1)
	if e >= 63 {
		t = 0
	}
	if t == 0 {
		return -1
	}
	return bits.TrailingZeros64(uint64(t))
}

// Rank returns |{x ∈ s : x < e}|, the rank of e within s.
func (s Set64) Rank(e int) int {
	mask := Set64(1)<<uint(e) - 1
	return (s & mask).Len()
}

// Select returns the i-th smallest element of s (0-based). It panics if
// i ≥ |s|.
func (s Set64) Select(i int) int {
	for t := s; t != 0; t &= t - 1 {
		if i == 0 {
			return bits.TrailingZeros64(uint64(t))
		}
		i--
	}
	panic(fmt.Sprintf("bitset: Select(%d) out of range", i))
}

// SubsetsAsc calls f for every non-empty subset of s in the canonical
// ascending enumeration order (numerically increasing as uint64). If f
// returns false the enumeration stops.
//
// This is the classic "increasing subsets" loop: s1 = s & -s; s1 = s & (s1-s).
func (s Set64) SubsetsAsc(f func(sub Set64) bool) {
	if s == 0 {
		return
	}
	sub := s & (-s)
	for {
		if !f(sub) {
			return
		}
		if sub == s {
			return
		}
		sub = s & (sub - s)
	}
}

// SubsetsDesc calls f for every non-empty subset of s in numerically
// decreasing order. If f returns false the enumeration stops.
func (s Set64) SubsetsDesc(f func(sub Set64) bool) {
	if s == 0 {
		return
	}
	sub := s
	for {
		if !f(sub) {
			return
		}
		sub = (sub - 1) & s
		if sub == 0 {
			return
		}
	}
}

// ProperSubsetsAsc enumerates the non-empty proper subsets of s in ascending
// order. DPhyp's EnumerateCsgCmp pairs each connected subset S1 with
// complements drawn from these.
func (s Set64) ProperSubsetsAsc(f func(sub Set64) bool) {
	s.SubsetsAsc(func(sub Set64) bool {
		if sub == s {
			return true
		}
		return f(sub)
	})
}

// String renders the set like "{0, 3, 17}".
func (s Set64) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(e int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", e)
	})
	b.WriteByte('}')
	return b.String()
}
