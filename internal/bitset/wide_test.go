package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// set64AsWide mirrors a Set64 into a Wide for cross-checking.
func set64AsWide(s Set64) Wide {
	var w Wide
	s.ForEach(func(e int) { w = w.Add(e) })
	return w
}

func TestWideMirrorsSet64(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		a64 := Set64(rng.Uint64() >> 1)
		b64 := Set64(rng.Uint64() >> 1)
		a, b := set64AsWide(a64), set64AsWide(b64)

		if got, want := a.Union(b), set64AsWide(a64.Union(b64)); got != want {
			t.Fatalf("Union mismatch: %v vs %v", got, want)
		}
		if got, want := a.Intersect(b), set64AsWide(a64.Intersect(b64)); got != want {
			t.Fatalf("Intersect mismatch")
		}
		if got, want := a.Diff(b), set64AsWide(a64.Diff(b64)); got != want {
			t.Fatalf("Diff mismatch")
		}
		if a.Len() != a64.Len() || a.IsEmpty() != a64.IsEmpty() ||
			a.IsSingleton() != a64.IsSingleton() ||
			a.Intersects(b) != a64.Intersects(b64) ||
			a.SubsetOf(b) != a64.SubsetOf(b64) {
			t.Fatalf("predicate mismatch for %v / %v", a64, b64)
		}
		if !a64.IsEmpty() {
			if a.Min() != a64.Min() || a.Max() != a64.Max() {
				t.Fatalf("Min/Max mismatch for %v", a64)
			}
			if a.MinSet() != set64AsWide(a64.MinSet()) {
				t.Fatalf("MinSet mismatch for %v", a64)
			}
		}
		if !reflect.DeepEqual(a.Elems(), a64.Elems()) {
			t.Fatalf("Elems mismatch for %v", a64)
		}
		if a.String() != a64.String() {
			t.Fatalf("String mismatch: %s vs %s", a.String(), a64.String())
		}
	}
}

// TestWideSubsetsAscOrder pins the wide ascending-subset enumeration to
// Set64's — the order the DP determinism contract relies on — including
// across a word boundary.
func TestWideSubsetsAscOrder(t *testing.T) {
	s64 := New64(0, 3, 5, 9, 12)
	var want []string
	s64.SubsetsAsc(func(sub Set64) bool {
		want = append(want, sub.String())
		return true
	})
	var got []string
	set64AsWide(s64).SubsetsAsc(func(sub Wide) bool {
		got = append(got, sub.String())
		return true
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Wide.SubsetsAsc order diverges from Set64:\n got %v\nwant %v", got, want)
	}

	// Cross-word: bits straddling the 64-bit boundary enumerate in
	// ascending numeric order and the borrow propagates between words.
	w := NewWide(62, 63, 64, 65, 130)
	var subs []Wide
	w.SubsetsAsc(func(sub Wide) bool {
		subs = append(subs, sub)
		return true
	})
	if len(subs) != 31 { // 2^5 - 1
		t.Fatalf("got %d subsets, want 31", len(subs))
	}
	seen := map[Wide]bool{}
	for i, sub := range subs {
		if sub.IsEmpty() || !sub.SubsetOf(w) || seen[sub] {
			t.Fatalf("subset %d invalid or duplicated: %v", i, sub)
		}
		seen[sub] = true
	}
	if subs[0] != NewWide(62) || subs[len(subs)-1] != w {
		t.Fatalf("enumeration must start at the min singleton and end at the full set")
	}
}

func TestWideSubsetsAscEarlyStop(t *testing.T) {
	w := NewWide(1, 2, 70, 200)
	n := 0
	w.SubsetsAsc(func(Wide) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop ignored: %d callbacks", n)
	}
}

func TestVSetBasics(t *testing.T) {
	s := NewV(0, 63, 64, 100, 511, 700)
	if s.Len() != 6 || !s.Contains(700) || s.Contains(99) {
		t.Fatalf("membership broken: %v", s)
	}
	if s.Min() != 0 || s.Max() != 700 {
		t.Fatalf("Min/Max broken: %d %d", s.Min(), s.Max())
	}
	if got := s.Elems(); !reflect.DeepEqual(got, []int{0, 63, 64, 100, 511, 700}) {
		t.Fatalf("Elems: %v", got)
	}
	if s.String() != "{0, 63, 64, 100, 511, 700}" {
		t.Fatalf("String: %s", s.String())
	}

	// Canonical trimming: removing the top element must shrink hi so ==
	// remains content equality.
	if s.Remove(700).Remove(511) != NewV(0, 63, 64, 100) {
		t.Fatalf("canonical trimming violated")
	}
	if !NewV(64).Remove(64).IsEmpty() {
		t.Fatalf("removing the only high bit must yield the canonical empty set")
	}
	if NewV(64).Remove(64) != (VSet{}) {
		t.Fatalf("empty sets must compare equal")
	}

	if !NewV(1, 100).SubsetOf(s.Add(1)) || NewV(1, 99).SubsetOf(s) {
		t.Fatalf("SubsetOf broken")
	}
	if !NewV(100).Intersects(s) || NewV(101).Intersects(s) {
		t.Fatalf("Intersects broken")
	}
	if got := NewV(3, 64, 200).Union(NewV(3, 70)); got != NewV(3, 64, 70, 200) {
		t.Fatalf("Union: %v", got)
	}
	if got := NewV(3, 64, 200).Intersect(NewV(64, 200, 300)); got != NewV(64, 200) {
		t.Fatalf("Intersect: %v", got)
	}
	if got := NewV(3, 64, 200).Diff(NewV(64, 300)); got != NewV(3, 200) {
		t.Fatalf("Diff: %v", got)
	}
	if !NewV(500).IsSingleton() || NewV(1, 500).IsSingleton() {
		t.Fatalf("IsSingleton broken")
	}
}

func TestVSetLessTotalOrder(t *testing.T) {
	sets := []VSet{NewV(), NewV(0), NewV(5), NewV(63), NewV(64), NewV(0, 64), NewV(65), NewV(128), NewV(63, 128)}
	shuffled := append([]VSet(nil), sets...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	sort.Slice(shuffled, func(i, j int) bool { return shuffled[i].Less(shuffled[j]) })
	if !reflect.DeepEqual(shuffled, sets) {
		t.Fatalf("Less is not the expected numeric order: %v", shuffled)
	}
	for _, s := range sets {
		if s.Less(s) {
			t.Fatalf("irreflexivity violated for %v", s)
		}
	}
}

func TestConversions(t *testing.T) {
	s64 := New64(1, 5, 40)
	if s64.ToV() != NewV(1, 5, 40) {
		t.Fatalf("Set64.ToV broken")
	}
	if Set64(0).FromV(NewV(1, 5, 40)) != s64 {
		t.Fatalf("Set64.FromV broken")
	}
	w := NewWide(1, 70, 300)
	if w.ToV() != NewV(1, 70, 300) {
		t.Fatalf("Wide.ToV broken")
	}
	if (Wide{}).FromV(NewV(1, 70, 300)) != w {
		t.Fatalf("Wide.FromV broken")
	}
	if (Wide{}).FromV(VSet{}) != (Wide{}) {
		t.Fatalf("empty round-trip broken")
	}
	if NewV(7, 33).ToSet64() != New64(7, 33) {
		t.Fatalf("VSet.ToSet64 broken")
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("Set64.FromV must panic on wide VSet")
		}
	}()
	Set64(0).FromV(NewV(64))
}

// TestGenericHelpers exercises the RelSet constraint with both
// representations.
func TestGenericHelpers(t *testing.T) {
	if SingleIn[Set64](5) != New64(5) || SingleIn[Wide](100) != NewWide(100) {
		t.Fatalf("SingleIn broken")
	}
	if RangeIn[Set64](0, 4) != New64(0, 1, 2, 3) {
		t.Fatalf("RangeIn broken")
	}
	if RangeIn[Wide](62, 66) != NewWide(62, 63, 64, 65) {
		t.Fatalf("RangeIn across word boundary broken")
	}
	if FromVIn[Wide](NewV(3, 99)) != NewWide(3, 99) {
		t.Fatalf("FromVIn broken")
	}
}

func TestWideHash64Spreads(t *testing.T) {
	// All 12-element subsets of a 100-element universe landing on 64
	// shards must not collapse onto a few shards.
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 64)
	for i := 0; i < 4096; i++ {
		var w Wide
		for w.Len() < 12 {
			w = w.Add(rng.Intn(100))
		}
		counts[w.Hash64()&63]++
	}
	for sh, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d empty — hash does not spread", sh)
		}
	}
}
