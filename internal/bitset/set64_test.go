package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew64AndContains(t *testing.T) {
	s := New64(0, 3, 17, 63)
	for _, e := range []int{0, 3, 17, 63} {
		if !s.Contains(e) {
			t.Errorf("expected %d in %v", e, s)
		}
	}
	for _, e := range []int{1, 2, 16, 62} {
		if s.Contains(e) {
			t.Errorf("did not expect %d in %v", e, s)
		}
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
}

func TestRange64(t *testing.T) {
	s := Range64(2, 6)
	if got := s.Elems(); len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Errorf("Range64(2,6) = %v", got)
	}
	if !Range64(3, 3).IsEmpty() {
		t.Error("Range64(3,3) should be empty")
	}
}

func TestAddRemove(t *testing.T) {
	s := Empty64.Add(5).Add(9).Remove(5)
	if s.Contains(5) || !s.Contains(9) {
		t.Errorf("Add/Remove broken: %v", s)
	}
	// Removing an absent element is a no-op.
	if s.Remove(40) != s {
		t.Error("Remove of absent element changed the set")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := New64(1, 2, 3)
	b := New64(3, 4)
	if got := a.Union(b); got != New64(1, 2, 3, 4) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != New64(3) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != New64(1, 2) {
		t.Errorf("Diff = %v", got)
	}
	if got := a.SymDiff(b); got != New64(1, 2, 4) {
		t.Errorf("SymDiff = %v", got)
	}
}

func TestSubsetPredicates(t *testing.T) {
	a := New64(1, 2)
	b := New64(1, 2, 3)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf broken")
	}
	if !a.ProperSubsetOf(b) || a.ProperSubsetOf(a) {
		t.Error("ProperSubsetOf broken")
	}
	if !a.Intersects(b) || a.Intersects(New64(5)) {
		t.Error("Intersects broken")
	}
	if !a.Disjoint(New64(7)) || a.Disjoint(b) {
		t.Error("Disjoint broken")
	}
	if !Empty64.SubsetOf(a) {
		t.Error("empty set must be subset of everything")
	}
}

func TestMinMax(t *testing.T) {
	s := New64(7, 12, 40)
	if s.Min() != 7 || s.Max() != 40 {
		t.Errorf("Min/Max = %d/%d", s.Min(), s.Max())
	}
	if s.MinSet() != New64(7) {
		t.Errorf("MinSet = %v", s.MinSet())
	}
	defer func() {
		if recover() == nil {
			t.Error("Min of empty set should panic")
		}
	}()
	Empty64.Min()
}

func TestBelow(t *testing.T) {
	s := New64(5, 9)
	if got := s.Below(); got != Range64(0, 5) {
		t.Errorf("Below = %v", got)
	}
	if got := s.BelowEq(); got != Range64(0, 6) {
		t.Errorf("BelowEq = %v", got)
	}
}

func TestIsSingleton(t *testing.T) {
	if !Single64(9).IsSingleton() {
		t.Error("Single64(9) should be singleton")
	}
	if Empty64.IsSingleton() || New64(1, 2).IsSingleton() {
		t.Error("non-singletons misreported")
	}
}

func TestElemsForEach(t *testing.T) {
	s := New64(2, 5, 6)
	var seen []int
	s.ForEach(func(e int) { seen = append(seen, e) })
	want := []int{2, 5, 6}
	if len(seen) != len(want) {
		t.Fatalf("ForEach visited %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("ForEach order: got %v", seen)
		}
	}
}

func TestNextAfter(t *testing.T) {
	s := New64(2, 5, 63)
	cases := []struct{ after, want int }{
		{0, 2}, {2, 5}, {4, 5}, {5, 63}, {63, -1},
	}
	for _, c := range cases {
		if got := s.NextAfter(c.after); got != c.want {
			t.Errorf("NextAfter(%d) = %d, want %d", c.after, got, c.want)
		}
	}
}

func TestRankSelect(t *testing.T) {
	s := New64(3, 8, 20)
	if s.Rank(3) != 0 || s.Rank(9) != 2 || s.Rank(21) != 3 {
		t.Error("Rank broken")
	}
	for i, want := range []int{3, 8, 20} {
		if got := s.Select(i); got != want {
			t.Errorf("Select(%d) = %d, want %d", i, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Select out of range should panic")
		}
	}()
	s.Select(3)
}

func TestSubsetsAscCount(t *testing.T) {
	s := New64(1, 4, 9)
	var subs []Set64
	s.SubsetsAsc(func(sub Set64) bool {
		subs = append(subs, sub)
		return true
	})
	if len(subs) != 7 { // 2^3 - 1 non-empty subsets
		t.Fatalf("got %d subsets, want 7", len(subs))
	}
	for i := 1; i < len(subs); i++ {
		if subs[i] <= subs[i-1] {
			t.Errorf("subsets not ascending: %v", subs)
		}
	}
	for _, sub := range subs {
		if !sub.SubsetOf(s) || sub.IsEmpty() {
			t.Errorf("bad subset %v of %v", sub, s)
		}
	}
}

func TestSubsetsDesc(t *testing.T) {
	s := New64(0, 2)
	var subs []Set64
	s.SubsetsDesc(func(sub Set64) bool {
		subs = append(subs, sub)
		return true
	})
	if len(subs) != 3 {
		t.Fatalf("got %d subsets, want 3", len(subs))
	}
	for i := 1; i < len(subs); i++ {
		if subs[i] >= subs[i-1] {
			t.Errorf("subsets not descending: %v", subs)
		}
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	s := Range64(0, 6)
	n := 0
	s.SubsetsAsc(func(Set64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestProperSubsetsAsc(t *testing.T) {
	s := New64(1, 2)
	var subs []Set64
	s.ProperSubsetsAsc(func(sub Set64) bool {
		subs = append(subs, sub)
		return true
	})
	if len(subs) != 2 {
		t.Fatalf("got %v", subs)
	}
	for _, sub := range subs {
		if sub == s {
			t.Error("proper subsets must exclude the set itself")
		}
	}
}

func TestString(t *testing.T) {
	if got := New64(0, 3).String(); got != "{0, 3}" {
		t.Errorf("String = %q", got)
	}
	if got := Empty64.String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: for random sets, Len equals the number of elements visited, and
// Union/Intersect/Diff agree with element-wise definitions.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(a, b uint64) bool {
		sa, sb := Set64(a), Set64(b)
		for e := 0; e < 64; e++ {
			inA, inB := sa.Contains(e), sb.Contains(e)
			if sa.Union(sb).Contains(e) != (inA || inB) {
				return false
			}
			if sa.Intersect(sb).Contains(e) != (inA && inB) {
				return false
			}
			if sa.Diff(sb).Contains(e) != (inA && !inB) {
				return false
			}
		}
		return len(sa.Elems()) == sa.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SubsetsAsc enumerates exactly 2^|s|-1 distinct subsets of s.
func TestQuickSubsetEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var s Set64
		for i := 0; i < 10; i++ {
			s = s.Add(rng.Intn(30))
		}
		seen := map[Set64]bool{}
		s.SubsetsAsc(func(sub Set64) bool {
			if seen[sub] {
				t.Fatalf("duplicate subset %v", sub)
			}
			if !sub.SubsetOf(s) {
				t.Fatalf("%v not subset of %v", sub, s)
			}
			seen[sub] = true
			return true
		})
		if want := (1 << uint(s.Len())) - 1; len(seen) != want {
			t.Fatalf("enumerated %d subsets of %v, want %d", len(seen), s, want)
		}
	}
}

// Property: Rank and Select are inverse.
func TestQuickRankSelect(t *testing.T) {
	f := func(a uint64) bool {
		s := Set64(a)
		for i := 0; i < s.Len(); i++ {
			if s.Rank(s.Select(i)) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
