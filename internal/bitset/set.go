package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set is an arbitrary-width bitset for universes larger than 64 elements
// (for example, attribute universes of very wide queries). Unlike Set64 it
// is a reference type backed by a word slice; the exported methods are
// nevertheless written in a mostly functional style and document clearly
// when they mutate.
//
// The zero value is an empty set ready for use.
type Set struct {
	words []uint64
}

const wordBits = 64

// NewSet returns an empty set with capacity hint n elements.
func NewSet(n int) *Set {
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewSetOf returns a set containing exactly the given elements.
func NewSetOf(elems ...int) *Set {
	s := &Set{}
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// FromSet64 returns a *Set holding the same elements as s64.
func FromSet64(s64 Set64) *Set {
	if s64 == 0 {
		return &Set{}
	}
	return &Set{words: []uint64{uint64(s64)}}
}

func (s *Set) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts e into s (mutating).
func (s *Set) Add(e int) {
	w := e / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(e%wordBits)
}

// Remove deletes e from s (mutating).
func (s *Set) Remove(e int) {
	w := e / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(e%wordBits)
	}
}

// Contains reports whether e ∈ s.
func (s *Set) Contains(e int) bool {
	w := e / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(e%wordBits)) != 0
}

// Len returns |s|.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether s = ∅.
func (s *Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	out := &Set{words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// UnionWith adds every element of t to s (mutating) and returns s.
func (s *Set) UnionWith(t *Set) *Set {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
	return s
}

// IntersectWith removes from s every element not in t (mutating) and
// returns s.
func (s *Set) IntersectWith(t *Set) *Set {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
	return s
}

// DiffWith removes every element of t from s (mutating) and returns s.
func (s *Set) DiffWith(t *Set) *Set {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &^= t.words[i]
		}
	}
	return s
}

// Union returns a fresh set s ∪ t.
func (s *Set) Union(t *Set) *Set { return s.Clone().UnionWith(t) }

// Intersect returns a fresh set s ∩ t.
func (s *Set) Intersect(t *Set) *Set { return s.Clone().IntersectWith(t) }

// Diff returns a fresh set s \ t.
func (s *Set) Diff(t *Set) *Set { return s.Clone().DiffWith(t) }

// SubsetOf reports whether s ⊆ t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s *Set) Intersects(t *Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var sw, tw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if i < len(t.words) {
			tw = t.words[i]
		}
		if sw != tw {
			return false
		}
	}
	return true
}

// Min returns the smallest element, or -1 if s is empty.
func (s *Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if s is empty.
func (s *Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + 63 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// ForEach calls f for each element in ascending order.
func (s *Set) ForEach(f func(e int)) {
	for i, w := range s.words {
		for t := w; t != 0; t &= t - 1 {
			f(i*wordBits + bits.TrailingZeros64(t))
		}
	}
}

// Elems returns the elements in ascending order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(e int) { out = append(out, e) })
	return out
}

// String renders the set like "{0, 3, 170}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(e int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", e)
	})
	b.WriteByte('}')
	return b.String()
}
