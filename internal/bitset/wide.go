package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

// WideWords is the word width of Wide; WideBits its universe size.
const (
	WideWords = 8
	WideBits  = WideWords * 64
)

// Wide is a fixed-width value bitset over the universe {0,…,WideBits-1}.
// It is the wide-path counterpart of Set64: a plain comparable array, so
// it keys DP tables and dedup maps exactly like Set64 does, is passed by
// value, and never mutates its receiver. The zero value is the empty set.
type Wide [WideWords]uint64

// NewWide returns the set containing exactly the given elements.
func NewWide(elems ...int) Wide {
	var s Wide
	for _, e := range elems {
		s = s.Add(e)
	}
	return s
}

// Add returns s ∪ {e}.
func (s Wide) Add(e int) Wide {
	s[e/64] |= 1 << uint(e%64)
	return s
}

// Remove returns s \ {e}.
func (s Wide) Remove(e int) Wide {
	s[e/64] &^= 1 << uint(e%64)
	return s
}

// Contains reports whether e ∈ s.
func (s Wide) Contains(e int) bool {
	return s[e/64]&(1<<uint(e%64)) != 0
}

// Union returns s ∪ t.
func (s Wide) Union(t Wide) Wide {
	for i := range s {
		s[i] |= t[i]
	}
	return s
}

// Intersect returns s ∩ t.
func (s Wide) Intersect(t Wide) Wide {
	for i := range s {
		s[i] &= t[i]
	}
	return s
}

// Diff returns s \ t.
func (s Wide) Diff(t Wide) Wide {
	for i := range s {
		s[i] &^= t[i]
	}
	return s
}

// IsEmpty reports whether s = ∅.
func (s Wide) IsEmpty() bool {
	return s == Wide{}
}

// IsSingleton reports whether |s| = 1.
func (s Wide) IsSingleton() bool {
	seen := false
	for _, w := range s {
		if w == 0 {
			continue
		}
		if seen || w&(w-1) != 0 {
			return false
		}
		seen = true
	}
	return seen
}

// Intersects reports whether s ∩ t ≠ ∅.
func (s Wide) Intersects(t Wide) bool {
	for i := range s {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether s ⊆ t.
func (s Wide) SubsetOf(t Wide) bool {
	for i := range s {
		if s[i]&^t[i] != 0 {
			return false
		}
	}
	return true
}

// Len returns |s|.
func (s Wide) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Min returns the smallest element of s. It panics on the empty set.
func (s Wide) Min() int {
	for i, w := range s {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	panic("bitset: Min of empty Wide")
}

// Max returns the largest element of s. It panics on the empty set.
func (s Wide) Max() int {
	for i := WideWords - 1; i >= 0; i-- {
		if w := s[i]; w != 0 {
			return i*64 + 63 - bits.LeadingZeros64(w)
		}
	}
	panic("bitset: Max of empty Wide")
}

// MinSet returns the singleton set containing the smallest element of s,
// or the empty set if s is empty — the "lowest bit" idiom of DPhyp.
func (s Wide) MinSet() Wide {
	var out Wide
	for i, w := range s {
		if w != 0 {
			out[i] = w & (-w)
			return out
		}
	}
	return out
}

// Elems returns the elements of s in ascending order.
func (s Wide) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(e int) { out = append(out, e) })
	return out
}

// ForEach calls f for each element of s in ascending order.
func (s Wide) ForEach(f func(e int)) {
	for i, w := range s {
		for t := w; t != 0; t &= t - 1 {
			f(i*64 + bits.TrailingZeros64(t))
		}
	}
}

// sub returns the multi-word difference s - t (wrapping), the arithmetic
// backbone of the ascending-subset enumeration.
func (s Wide) sub(t Wide) Wide {
	var out Wide
	var borrow uint64
	for i := range s {
		out[i], borrow = bits.Sub64(s[i], t[i], borrow)
	}
	return out
}

// SubsetsAsc calls f for every non-empty subset of s in the canonical
// ascending enumeration order (numerically increasing when the words are
// read as one big little-endian integer) — the same order Set64
// enumerates, which the enumeration-determinism contract relies on. If f
// returns false the enumeration stops.
//
// This is the multi-word form of the classic loop sub = s & (sub - s):
// the per-word subtraction carries its borrow across word boundaries.
func (s Wide) SubsetsAsc(f func(sub Wide) bool) {
	if s.IsEmpty() {
		return
	}
	sub := s.MinSet()
	for {
		if !f(sub) {
			return
		}
		if sub == s {
			return
		}
		sub = s.Intersect(sub.sub(s))
	}
}

// Hash64 returns a well-mixed 64-bit hash of the set, for sharding. Each
// word runs through a splitmix64-style finalizer so the heavily clustered
// raw bit patterns (all keys of a DP level share a popcount) spread
// evenly.
func (s Wide) Hash64() uint64 {
	var h uint64
	for _, w := range s {
		x := h ^ w
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		h = x
	}
	return h
}

// Cap returns the universe capacity of the representation.
func (Wide) Cap() int { return WideBits }

// ToV converts the set to its VSet form.
func (s Wide) ToV() VSet {
	return VSet{lo: s[0], hi: packWords(s[1:])}
}

// FromV converts a VSet into a Wide; the receiver is ignored (it exists
// so the conversion is reachable through the RelSet constraint). It
// panics when the VSet holds elements ≥ WideBits.
func (Wide) FromV(v VSet) Wide {
	var s Wide
	s[0] = v.lo
	for i := 0; i*8 < len(v.hi); i++ {
		if i+1 >= WideWords {
			panic("bitset: VSet does not fit Wide")
		}
		s[i+1] = unpackWord(v.hi, i)
	}
	return s
}

// String renders the set like "{0, 3, 170}".
func (s Wide) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(e int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", e)
	})
	b.WriteByte('}')
	return b.String()
}
