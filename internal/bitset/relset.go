package bitset

// RelSet is the constraint of the generic enumeration layer (hypergraph,
// conflict detection, the DP core): a comparable value bitset with the
// Set64 method surface the enumerator needs. Two representations satisfy
// it — Set64 (the zero-overhead fast path for ≤63 relations) and Wide
// (the multi-word path up to WideBits-1 relations). All methods are
// value-receiver and non-mutating, so S keys maps directly.
//
// FromV is a conversion hook: it ignores its receiver (call it on the
// zero value) and rebuilds a VSet in the S representation. It is how the
// generic layer imports relation sets computed by the VSet-typed query
// front-end.
type RelSet[S comparable] interface {
	comparable
	Add(e int) S
	Remove(e int) S
	Contains(e int) bool
	Union(t S) S
	Intersect(t S) S
	Diff(t S) S
	IsEmpty() bool
	IsSingleton() bool
	Intersects(t S) bool
	SubsetOf(t S) bool
	Len() int
	Min() int
	Max() int
	MinSet() S
	ForEach(f func(e int))
	Elems() []int
	SubsetsAsc(f func(sub S) bool)
	Hash64() uint64
	Cap() int
	ToV() VSet
	FromV(v VSet) S
	String() string
}

// SingleIn returns the singleton {e} in the representation S.
func SingleIn[S RelSet[S]](e int) S {
	var z S
	return z.Add(e)
}

// RangeIn returns {lo, …, hi-1} in the representation S.
func RangeIn[S RelSet[S]](lo, hi int) S {
	var z S
	for e := lo; e < hi; e++ {
		z = z.Add(e)
	}
	return z
}

// FromVIn converts a VSet into the representation S.
func FromVIn[S RelSet[S]](v VSet) S {
	var z S
	return z.FromV(v)
}

// Hash64 returns a splitmix64-style finalizer of the raw bits, for
// sharding the parallel DP staging table.
func (s Set64) Hash64() uint64 {
	x := uint64(s)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Cap returns the universe capacity of the representation.
func (Set64) Cap() int { return 64 }

// ToV converts the set to its VSet form.
func (s Set64) ToV() VSet { return VSet{lo: uint64(s)} }

// FromV converts a VSet into a Set64; the receiver is ignored (it exists
// so the conversion is reachable through the RelSet constraint). It
// panics when the VSet holds elements ≥ 64.
func (Set64) FromV(v VSet) Set64 {
	if v.hi != "" {
		panic("bitset: VSet does not fit Set64")
	}
	return Set64(v.lo)
}
