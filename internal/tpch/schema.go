// Package tpch provides the TPC-H substrate of the evaluation (Sec. 5.4):
// the schema with scale-factor-1 statistics ("Query statistics were taken
// from a scale factor 1 instance of TPC-H"), the paper's example query Ex
// from the introduction, operator trees for the join+grouping cores of
// TPC-H Q3, Q5 and Q10, and a scaled-down synthetic data generator used to
// execute plans (the substitution for a full dbgen database documented in
// DESIGN.md).
package tpch

import (
	"math/rand"

	"eagg/internal/algebra"
	"eagg/internal/engine"
	"eagg/internal/query"
)

// SF1 cardinalities per the TPC-H specification at scale factor 1.
const (
	CardRegion   = 5
	CardNation   = 25
	CardSupplier = 10_000
	CardCustomer = 150_000
	CardPart     = 200_000
	CardPartSupp = 800_000
	CardOrders   = 1_500_000
	CardLineitem = 6_001_215
)

// Distinct counts used for the selection/grouping columns referenced by
// the queries (SF-1 values per the spec's data distributions).
const (
	DistinctOrderDate    = 2406 // o_orderdate spans ~2406 days
	DistinctShipDate     = 2526
	DistinctMktSegment   = 5
	DistinctRegionName   = 5
	DistinctNationName   = 25
	DistinctReturnFlag   = 3
	DistinctOrdersPerCus = 100_000 // customers with orders ≈ 100k distinct o_custkey
)

// scan builds a scan node.
func scan(rel int) *query.OpNode { return &query.OpNode{Kind: query.KindScan, Rel: rel} }

// join builds an operator node with a single-pair equi predicate.
func join(kind query.OpKind, l, r *query.OpNode, la, ra int, sel float64) *query.OpNode {
	return &query.OpNode{
		Kind: kind, Left: l, Right: r,
		Pred: &query.Predicate{Left: []int{la}, Right: []int{ra}, Selectivity: sel},
	}
}

// GenerateTables produces a scaled-down synthetic instance whose
// foreign-key structure matches TPC-H (every FK hits an existing PK;
// nation keys are shared across customer and supplier), built directly in
// the slot-based representation the execution runtime consumes: one flat
// row per tuple, no per-tuple maps. Row counts come from the scale map
// (relations absent from the map default to 20 rows).
func GenerateTables(rng *rand.Rand, q *query.Query, scale map[string]int) engine.TableData {
	data := engine.TableData{}
	for ri := range q.Relations {
		rel := &q.Relations[ri]
		n := scale[rel.Name]
		if n <= 0 {
			n = 20
		}
		var attrIDs []int
		var names []string
		rel.Attrs.ForEach(func(a int) {
			attrIDs = append(attrIDs, a)
			names = append(names, q.AttrNames[a])
		})
		keyed := map[int]bool{}
		for _, k := range rel.Keys {
			k.ForEach(func(a int) { keyed[a] = true })
		}
		// Per-column domains resolved once: keys count up, the rest draw
		// from small domains derived from the attribute's distinct count,
		// capped for the scaled instance.
		domains := make([]int64, len(attrIDs))
		for i, a := range attrIDs {
			if keyed[a] {
				domains[i] = 0 // marker: unique key column
				continue
			}
			d := int64(q.Distinct[a])
			if d > int64(n) {
				d = int64(n)
			}
			if d < 1 {
				d = 1
			}
			domains[i] = d
		}
		tab := algebra.NewTable(algebra.NewSchema(names))
		tab.Rows = make([]algebra.Row, n)
		for row := 0; row < n; row++ {
			r := make(algebra.Row, len(attrIDs))
			for i := range attrIDs {
				if domains[i] == 0 {
					r[i] = algebra.Int(int64(row))
				} else {
					r[i] = algebra.Int(rng.Int63n(domains[i]))
				}
			}
			tab.Rows[row] = r
		}
		data[ri] = tab
	}
	return data
}

// GenerateData is GenerateTables in the map-tuple boundary
// representation, kept for callers that feed the reference executor.
func GenerateData(rng *rand.Rand, q *query.Query, scale map[string]int) engine.Data {
	data := engine.Data{}
	for ri, tab := range GenerateTables(rng, q, scale) {
		data[ri] = tab.Rel()
	}
	return data
}
