package tpch

import (
	"eagg/internal/aggfn"
	"eagg/internal/query"
)

// Local selections (date ranges, segment filters, …) are folded into the
// base cardinalities exactly as a cascaded optimizer would see them; the
// constants below are the SF-1 selectivities of the filters the four
// queries apply.
const (
	selQ3Orders    = 0.485     // o_orderdate < 1995-03-15
	selQ3Lineitem  = 0.54      // l_shipdate > 1995-03-15
	selQ5Orders    = 1.0 / 6.6 // one order year out of 6.6
	selQ5Region    = 0.2       // r_name = 'ASIA'
	selQ10Orders   = 1.0 / 28  // one quarter out of ~7 years
	selQ10Lineitem = 0.25      // l_returnflag = 'R'
)

// Ex builds the paper's introduction query:
//
//	select ns.n_name, nc.n_name, count(*)
//	from (nation ns join supplier s on ns.n_nationkey = s.s_nationkey)
//	     full outer join
//	     (nation nc join customer c on nc.n_nationkey = c.c_nationkey)
//	     on ns.n_nationkey = nc.n_nationkey
//	group by ns.n_name, nc.n_name
func Ex() *query.Query {
	q := query.New()
	ns := q.AddRelation("nation_s", CardNation)
	s := q.AddRelation("supplier", CardSupplier)
	nc := q.AddRelation("nation_c", CardNation)
	c := q.AddRelation("customer", CardCustomer)

	nsKey := q.AddAttr(ns, "ns.n_nationkey", CardNation)
	nsName := q.AddAttr(ns, "ns.n_name", DistinctNationName)
	sNk := q.AddAttr(s, "s.s_nationkey", CardNation)
	ncKey := q.AddAttr(nc, "nc.n_nationkey", CardNation)
	ncName := q.AddAttr(nc, "nc.n_name", DistinctNationName)
	cNk := q.AddAttr(c, "c.c_nationkey", CardNation)
	q.AddKey(ns, nsKey)
	q.AddKey(nc, ncKey)
	declareKeyScanOrders(q)

	left := join(query.KindJoin, scan(ns), scan(s), nsKey, sNk, 1.0/CardNation)
	right := join(query.KindJoin, scan(nc), scan(c), ncKey, cNk, 1.0/CardNation)
	q.Root = join(query.KindFullOuter, left, right, nsKey, ncKey, 1.0/CardNation)
	q.SetGrouping([]int{nsName, ncName}, aggfn.Vector{{Out: "cnt", Kind: aggfn.CountStar}})
	return q
}

// Q3 builds the join+grouping core of TPC-H Q3:
//
//	select l_orderkey, o_orderdate, o_shippriority,
//	       sum(l_extendedprice * (1 - l_discount))
//	from customer, orders, lineitem
//	where c_mktsegment = 'BUILDING' and c_custkey = o_custkey
//	  and l_orderkey = o_orderkey and dates…
//	group by l_orderkey, o_orderdate, o_shippriority
func Q3() *query.Query {
	q := query.New()
	c := q.AddRelation("customer", CardCustomer/DistinctMktSegment)
	o := q.AddRelation("orders", CardOrders*selQ3Orders)
	l := q.AddRelation("lineitem", CardLineitem*selQ3Lineitem)

	cCk := q.AddAttr(c, "c.c_custkey", CardCustomer/DistinctMktSegment)
	oCk := q.AddAttr(o, "o.o_custkey", DistinctOrdersPerCus)
	oOk := q.AddAttr(o, "o.o_orderkey", CardOrders*selQ3Orders)
	oDate := q.AddAttr(o, "o.o_orderdate", DistinctOrderDate*selQ3Orders)
	oPrio := q.AddAttr(o, "o.o_shippriority", 1)
	lOk := q.AddAttr(l, "l.l_orderkey", CardOrders)
	lPrice := q.AddAttr(l, "l.l_revenue", CardLineitem/10)
	q.AddKey(c, cCk)
	q.AddKey(o, oOk)
	declareKeyScanOrders(q)

	co := join(query.KindJoin, scan(c), scan(o), cCk, oCk, 1.0/(CardCustomer/DistinctMktSegment))
	q.Root = join(query.KindJoin, co, scan(l), oOk, lOk, 1.0/CardOrders)
	q.SetGrouping([]int{lOk, oDate, oPrio}, aggfn.Vector{
		{Out: "revenue", Kind: aggfn.Sum, Arg: q.AttrNames[lPrice]},
	})
	return q
}

// Q5 builds the join+grouping core of TPC-H Q5 (six relations, one cyclic
// predicate c_nationkey = s_nationkey folded into the supplier join):
//
//	select n_name, sum(l_extendedprice * (1 - l_discount))
//	from customer, orders, lineitem, supplier, nation, region
//	where … group by n_name
func Q5() *query.Query {
	q := query.New()
	c := q.AddRelation("customer", CardCustomer)
	o := q.AddRelation("orders", CardOrders*selQ5Orders)
	l := q.AddRelation("lineitem", CardLineitem*selQ5Orders)
	s := q.AddRelation("supplier", CardSupplier)
	n := q.AddRelation("nation", CardNation)
	r := q.AddRelation("region", CardRegion*selQ5Region)

	cCk := q.AddAttr(c, "c.c_custkey", CardCustomer)
	cNk := q.AddAttr(c, "c.c_nationkey", CardNation)
	oCk := q.AddAttr(o, "o.o_custkey", DistinctOrdersPerCus)
	oOk := q.AddAttr(o, "o.o_orderkey", CardOrders*selQ5Orders)
	lOk := q.AddAttr(l, "l.l_orderkey", CardOrders*selQ5Orders)
	lSk := q.AddAttr(l, "l.l_suppkey", CardSupplier)
	lPrice := q.AddAttr(l, "l.l_revenue", CardLineitem/10)
	sSk := q.AddAttr(s, "s.s_suppkey", CardSupplier)
	sNk := q.AddAttr(s, "s.s_nationkey", CardNation)
	nNk := q.AddAttr(n, "n.n_nationkey", CardNation)
	nName := q.AddAttr(n, "n.n_name", DistinctNationName)
	nRk := q.AddAttr(n, "n.n_regionkey", CardRegion)
	rRk := q.AddAttr(r, "r.r_regionkey", CardRegion)
	q.AddKey(c, cCk)
	q.AddKey(o, oOk)
	q.AddKey(s, sSk)
	q.AddKey(n, nNk)
	q.AddKey(r, rRk)
	declareKeyScanOrders(q)

	co := join(query.KindJoin, scan(c), scan(o), cCk, oCk, 1.0/CardCustomer)
	col := join(query.KindJoin, co, scan(l), oOk, lOk, 1.0/(CardOrders*selQ5Orders))
	// Supplier join carries both l_suppkey = s_suppkey and the cyclic
	// c_nationkey = s_nationkey.
	cols := &query.OpNode{
		Kind: query.KindJoin, Left: col, Right: scan(s),
		Pred: &query.Predicate{
			Left:        []int{lSk, cNk},
			Right:       []int{sSk, sNk},
			Selectivity: (1.0 / CardSupplier) * (1.0 / CardNation),
		},
	}
	colsn := join(query.KindJoin, cols, scan(n), sNk, nNk, 1.0/CardNation)
	q.Root = join(query.KindJoin, colsn, scan(r), nRk, rRk, 1.0/CardRegion)
	q.SetGrouping([]int{nName}, aggfn.Vector{
		{Out: "revenue", Kind: aggfn.Sum, Arg: q.AttrNames[lPrice]},
	})
	return q
}

// Q10 builds the join+grouping core of TPC-H Q10:
//
//	select c_custkey, c_name, …, n_name,
//	       sum(l_extendedprice * (1 - l_discount))
//	from customer, orders, lineitem, nation
//	where c_custkey = o_custkey and l_orderkey = o_orderkey
//	  and o_orderdate in quarter and l_returnflag = 'R'
//	  and c_nationkey = n_nationkey
//	group by c_custkey, c_name, …, n_name
func Q10() *query.Query {
	q := query.New()
	c := q.AddRelation("customer", CardCustomer)
	o := q.AddRelation("orders", CardOrders*selQ10Orders)
	// The l_returnflag = 'R' filter is modelled as a residual predicate
	// evaluated with the aggregation rather than folded into the base
	// cardinality: the paper's Table 2 numbers (EA/DPhyp cost 0.58) match
	// an intermediate of ≈4 lineitems per in-window order, which is what
	// the official Q10 answer sizes (≈115k joined rows → ≈38k groups)
	// also indicate once the filter correlation is accounted for.
	l := q.AddRelation("lineitem", CardLineitem)
	n := q.AddRelation("nation", CardNation)

	cCk := q.AddAttr(c, "c.c_custkey", CardCustomer)
	cName := q.AddAttr(c, "c.c_name", CardCustomer)
	cNk := q.AddAttr(c, "c.c_nationkey", CardNation)
	oCk := q.AddAttr(o, "o.o_custkey", DistinctOrdersPerCus)
	oOk := q.AddAttr(o, "o.o_orderkey", CardOrders*selQ10Orders)
	lOk := q.AddAttr(l, "l.l_orderkey", CardOrders)
	lPrice := q.AddAttr(l, "l.l_revenue", CardLineitem/10)
	nNk := q.AddAttr(n, "n.n_nationkey", CardNation)
	nName := q.AddAttr(n, "n.n_name", DistinctNationName)
	q.AddKey(c, cCk)
	q.AddKey(o, oOk)
	q.AddKey(n, nNk)
	declareKeyScanOrders(q)

	co := join(query.KindJoin, scan(c), scan(o), cCk, oCk, 1.0/CardCustomer)
	col := join(query.KindJoin, co, scan(l), oOk, lOk, 1.0/CardOrders)
	q.Root = join(query.KindJoin, col, scan(n), cNk, nNk, 1.0/CardNation)
	q.SetGrouping([]int{cCk, cName, nName}, aggfn.Vector{
		{Out: "revenue", Kind: aggfn.Sum, Arg: q.AttrNames[lPrice]},
	})
	return q
}

// declareKeyScanOrders declares every single-attribute candidate key as
// the relation's physical scan order. GenerateTables produces key
// columns counting up in row order, so the declaration is true of every
// generated instance — it is the TPC-H analogue of data arriving in
// primary-key order, and it is what the sort-based physical layer's
// interesting orders originate from.
func declareKeyScanOrders(q *query.Query) {
	for ri := range q.Relations {
		for _, k := range q.Relations[ri].Keys {
			if k.Len() == 1 {
				q.SetScanOrder(ri, k.Min())
				break
			}
		}
	}
}

// Queries returns the four evaluation queries keyed by the paper's names.
func Queries() map[string]*query.Query {
	return map[string]*query.Query{
		"Ex":  Ex(),
		"Q3":  Q3(),
		"Q5":  Q5(),
		"Q10": Q10(),
	}
}

// ExecutionScale returns the scaled-down row counts used when executing a
// query's plans on synthetic data.
func ExecutionScale(name string) map[string]int {
	switch name {
	case "Ex":
		return map[string]int{"nation_s": 25, "nation_c": 25, "supplier": 300, "customer": 600}
	case "Q3":
		return map[string]int{"customer": 100, "orders": 200, "lineitem": 400}
	case "Q5":
		return map[string]int{"customer": 80, "orders": 150, "lineitem": 300, "supplier": 40, "nation": 25, "region": 5}
	case "Q10":
		return map[string]int{"customer": 100, "orders": 200, "lineitem": 300, "nation": 25}
	}
	return nil
}

// ExecutionScaleAt multiplies the base execution scale by a factor — the
// scale-factor knob of the execution benchmarks and eabench's -exec mode.
// Factor 1 is ExecutionScale; dimension tables with natural cardinality
// caps (nation: 25, region: 5) do not grow beyond them.
func ExecutionScaleAt(name string, factor float64) map[string]int {
	base := ExecutionScale(name)
	if base == nil || factor <= 0 {
		return base
	}
	caps := map[string]int{"nation": CardNation, "nation_s": CardNation, "nation_c": CardNation, "region": CardRegion}
	out := make(map[string]int, len(base))
	for rel, n := range base {
		scaled := int(float64(n) * factor)
		if scaled < 1 {
			scaled = 1
		}
		if limit, ok := caps[rel]; ok && scaled > limit {
			scaled = limit
		}
		out[rel] = scaled
	}
	return out
}
