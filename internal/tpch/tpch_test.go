package tpch

import (
	"math/rand"
	"testing"

	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/engine"
	"eagg/internal/plan"
)

func TestQueriesValidate(t *testing.T) {
	for name, q := range Queries() {
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestTable2CostRatios checks the qualitative shape of Table 2: Ex gains
// orders of magnitude from eager aggregation, Q3 and Q10 gain noticeably,
// Q5 gains little (relative cost close to 1).
func TestTable2CostRatios(t *testing.T) {
	ratios := map[string]float64{}
	for name, q := range Queries() {
		dphyp, err := core.Optimize(q, core.Options{Algorithm: core.AlgDPhyp})
		if err != nil {
			t.Fatalf("%s DPhyp: %v", name, err)
		}
		ea, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
		if err != nil {
			t.Fatalf("%s EA-Prune: %v", name, err)
		}
		ratios[name] = ea.Plan.Cost / dphyp.Plan.Cost
	}
	// Paper's Table 2 (Rel. Cost EA/DPhyp): Ex 6.1e-4, Q3 0.65, Q5 0.9,
	// Q10 0.58. Our cost model differs in constants; assert the shape.
	if ratios["Ex"] > 0.05 {
		t.Errorf("Ex ratio %.4g: eager aggregation should collapse the cost", ratios["Ex"])
	}
	if ratios["Q3"] >= 1 || ratios["Q3"] < 0.1 {
		t.Errorf("Q3 ratio %.4g outside the moderate-gain band", ratios["Q3"])
	}
	if ratios["Q10"] >= 1 || ratios["Q10"] < 0.1 {
		t.Errorf("Q10 ratio %.4g outside the moderate-gain band", ratios["Q10"])
	}
	if ratios["Q5"] > 1.0001 || ratios["Q5"] < 0.5 {
		t.Errorf("Q5 ratio %.4g should be close to 1 (smallest gain)", ratios["Q5"])
	}
	if !(ratios["Ex"] < ratios["Q10"] && ratios["Q10"] <= ratios["Q5"]) {
		t.Errorf("gain ordering broken: %v", ratios)
	}
}

// TestPlansExecuteCorrectly runs each query's DPhyp and EA-Prune plans on
// scaled synthetic data and checks both match the canonical result.
func TestPlansExecuteCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, q := range Queries() {
		data := GenerateData(rng, q, ExecutionScale(name))
		want, err := engine.Canonical(q, data)
		if err != nil {
			t.Fatalf("%s canonical: %v", name, err)
		}
		attrs := engine.OutputAttrs(q)
		for _, alg := range []core.Algorithm{core.AlgDPhyp, core.AlgEAPrune, core.AlgH1} {
			res, err := core.Optimize(q, core.Options{Algorithm: alg})
			if err != nil {
				t.Fatalf("%s %v: %v", name, alg, err)
			}
			got, err := engine.Exec(q, res.Plan, data)
			if err != nil {
				t.Fatalf("%s %v exec: %v\n%v", name, alg, err, res.Plan.StringWithQuery(q))
			}
			if !algebra.EqualBags(want, got, attrs) {
				t.Fatalf("%s: %v plan result differs from canonical\nplan:\n%v",
					name, alg, res.Plan.StringWithQuery(q))
			}
		}
	}
}

// TestExEagerPlanShape: the optimized Ex plan must push groupings below
// the full outerjoin — the paper's headline transformation.
func TestExEagerPlanShape(t *testing.T) {
	q := Ex()
	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.CountGroupings() < 1 {
		t.Errorf("Ex plan lacks eager groupings:\n%v", res.Plan.StringWithQuery(q))
	}
}

func TestGenerateDataRespectsKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := Ex()
	data := GenerateData(rng, q, ExecutionScale("Ex"))
	// nation_s has key ns.n_nationkey — all values distinct.
	seen := map[int64]bool{}
	for _, tu := range data[0].Tuples {
		v := tu.Get("ns.n_nationkey")
		if seen[v.I] {
			t.Fatal("key attribute with duplicate values")
		}
		seen[v.I] = true
	}
	if len(data[0].Tuples) != 25 {
		t.Errorf("nation_s rows = %d", len(data[0].Tuples))
	}
}

// TestStatsInternalConsistency sanity-checks the hard-coded SF-1 numbers
// against the TPC-H spec's structural ratios.
func TestStatsInternalConsistency(t *testing.T) {
	if CardOrders != 10*CardCustomer {
		t.Error("orders = 10 × customers at SF-1")
	}
	if CardSupplier*80 != CardPartSupp*1 {
		t.Error("partsupp = 80 × suppliers at SF-1")
	}
	if CardLineitem < 4*CardOrders || CardLineitem > 4.3*CardOrders {
		t.Error("lineitem ≈ 4 × orders at SF-1")
	}
	if CardNation != 25 || CardRegion != 5 {
		t.Error("fixed-size dimensions wrong")
	}
}

// TestQ5CyclicPredicateIsHyperedge: the folded c_nationkey = s_nationkey
// predicate makes the supplier join a hyperedge ({c,l},{s}).
func TestQ5CyclicPredicateIsHyperedge(t *testing.T) {
	q := Q5()
	res, err := core.Optimize(q, core.Options{Algorithm: core.AlgDPhyp})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CsgCmpPairs == 0 {
		t.Fatal("no pairs enumerated")
	}
	// The plan must apply the combined predicate: supplier joins only
	// after customer and lineitem are both present.
	var check func(p *plan.Plan) bool
	supplier := 3
	check = func(p *plan.Plan) bool {
		if p == nil || p.Kind != plan.NodeOp {
			return true
		}
		if p.Right != nil && p.Right.Rels.IsSingleton() && p.Right.Rels.Min() == supplier {
			// Left side must contain customer (0) and lineitem (2).
			if !p.Left.Rels.Contains(0) || !p.Left.Rels.Contains(2) {
				t.Errorf("supplier joined without customer+lineitem: left=%v", p.Left.Rels)
			}
		}
		return check(p.Left) && check(p.Right)
	}
	check(res.Plan)
}
