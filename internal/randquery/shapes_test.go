package randquery

import (
	"reflect"
	"testing"

	"eagg/internal/query"
)

// TestShapesValidatePast63 pins the point of the deterministic shapes:
// they build valid queries well past the old 63-relation cap, with every
// relation declaring a key and a physical scan order.
func TestShapesValidatePast63(t *testing.T) {
	shapes := map[string]func(int) *query.Query{
		"chain": Chain, "star": Star, "clique": Clique,
	}
	for name, build := range shapes {
		for _, n := range []int{2, 8, 64, 100} {
			q := build(n)
			if err := q.Validate(); err != nil {
				t.Fatalf("%s(%d): %v", name, n, err)
			}
			if len(q.Relations) != n {
				t.Fatalf("%s(%d): %d relations", name, n, len(q.Relations))
			}
			for ri, rel := range q.Relations {
				if len(rel.Keys) == 0 {
					t.Fatalf("%s(%d): relation %d has no key", name, n, ri)
				}
				if len(rel.Ordered) == 0 {
					t.Fatalf("%s(%d): relation %d has no declared scan order", name, n, ri)
				}
			}
		}
	}
}

// TestShapesDeterministic pins reproducibility: the same n must build
// the same catalog and tree, call after call.
func TestShapesDeterministic(t *testing.T) {
	for name, build := range map[string]func(int) *query.Query{
		"chain": Chain, "star": Star, "clique": Clique,
	} {
		a, b := build(20), build(20)
		if !reflect.DeepEqual(a.AttrNames, b.AttrNames) || !reflect.DeepEqual(a.Distinct, b.Distinct) {
			t.Fatalf("%s: catalogs differ across calls", name)
		}
		var sig func(n *query.OpNode) string
		sig = func(n *query.OpNode) string {
			if n.Kind == query.KindScan {
				return "R" + itoa(n.Rel)
			}
			return "(" + sig(n.Left) + " " + sig(n.Right) + ")"
		}
		if sig(a.Root) != sig(b.Root) {
			t.Fatalf("%s: trees differ across calls", name)
		}
	}
}

// TestShapeTopology spot-checks what makes each shape that shape: a
// chain's predicates link consecutive relations, a star's predicates all
// touch the hub, and a clique's predicate at relation j spans all of
// relations 0…j.
func TestShapeTopology(t *testing.T) {
	preds := func(q *query.Query) []*query.Predicate {
		var out []*query.Predicate
		var walk func(n *query.OpNode)
		walk = func(n *query.OpNode) {
			if n == nil || n.Kind == query.KindScan {
				return
			}
			out = append(out, n.Pred)
			walk(n.Left)
			walk(n.Right)
		}
		walk(q.Root)
		return out
	}

	chain := Chain(70)
	for _, p := range preds(chain) {
		rels := chain.RelsOf(p.Attrs())
		if rels.Len() != 2 || rels.Max()-rels.Min() != 1 {
			t.Fatalf("chain predicate spans %v, want consecutive relations", rels)
		}
	}
	star := Star(70)
	for _, p := range preds(star) {
		rels := star.RelsOf(p.Attrs())
		if rels.Len() != 2 || !rels.Contains(0) {
			t.Fatalf("star predicate spans %v, want hub + dimension", rels)
		}
	}
	clique := Clique(70)
	for _, p := range preds(clique) {
		rels := clique.RelsOf(p.Attrs())
		if rels.Min() != 0 || rels.Len() != rels.Max()+1 {
			t.Fatalf("clique predicate spans %v, want the full prefix", rels)
		}
	}
}
