package randquery

import (
	"math"
	"math/rand"

	"eagg/internal/aggfn"
	"eagg/internal/query"
)

// Params configure the workload generator.
type Params struct {
	// Relations is the number of base relations (leaves), 2…20 in the
	// paper's experiments.
	Relations int
	// OuterJoinShare is the probability that an internal node becomes a
	// non-inner join; the concrete operator is then drawn uniformly from
	// {left outerjoin, full outerjoin, semijoin, antijoin}. The default
	// (used when the value is 0 and DefaultOps is false… see Defaults)
	// mirrors a mixed OLAP workload.
	OuterJoinShare float64
	// MinCard/MaxCard bound the log-uniform base cardinalities.
	MinCard, MaxCard float64
	// GroupingRelations is how many relations contribute a grouping
	// attribute (capped by Relations).
	GroupingRelations int
	// Aggregates is how many aggregate functions the query computes (in
	// addition to a count(*)).
	Aggregates int
}

// Defaults fills zero fields with the defaults used throughout the
// evaluation.
func (p Params) Defaults() Params {
	if p.MinCard == 0 {
		p.MinCard = 10
	}
	if p.MaxCard == 0 {
		p.MaxCard = 100000
	}
	if p.OuterJoinShare == 0 {
		p.OuterJoinShare = 0.35
	}
	if p.GroupingRelations == 0 {
		p.GroupingRelations = 2
	}
	if p.Aggregates == 0 {
		p.Aggregates = 2
	}
	return p
}

// Generate produces a random query with the paper's construction: a
// uniformly random binary tree (via Dyck-word unranking), random operators
// and predicates, random grouping attributes, cardinalities and
// selectivities. All randomness flows from rng, so workloads are
// reproducible from a seed.
func Generate(rng *rand.Rand, p Params) *query.Query {
	p = p.Defaults()
	n := p.Relations
	if n < 2 {
		panic("randquery: need at least two relations")
	}

	shape := UnrankTree(n, rng.Int63n(Catalan(n-1)))
	q := query.New()

	// Relations with log-uniform cardinalities.
	cards := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := math.Log(p.MinCard), math.Log(p.MaxCard)
		cards[i] = math.Exp(lo + rng.Float64()*(hi-lo))
		q.AddRelation(relName(i), math.Ceil(cards[i]))
	}

	// Assign relations to leaves left-to-right and build the operator
	// tree with random operators and predicates.
	next := 0
	var build func(t *Tree) *query.OpNode
	build = func(t *Tree) *query.OpNode {
		if t.IsLeaf() {
			node := &query.OpNode{Kind: query.KindScan, Rel: next}
			next++
			return node
		}
		l := build(t.Left)
		r := build(t.Right)
		kind := query.KindJoin
		if rng.Float64() < p.OuterJoinShare {
			kind = []query.OpKind{
				query.KindLeftOuter, query.KindFullOuter,
				query.KindSemiJoin, query.KindAntiJoin,
			}[rng.Intn(4)]
		}
		lr := pickRel(rng, l.Rels().Elems())
		rr := pickRel(rng, r.Rels().Elems())
		la := q.AddAttr(lr, attrName(lr, "j", countAttrs(q, lr)), distinctFor(rng, cards[lr]))
		ra := q.AddAttr(rr, attrName(rr, "j", countAttrs(q, rr)), distinctFor(rng, cards[rr]))
		// Selectivity: key/foreign-key flavoured with variance. z is
		// log-uniform in [0.2, 5]; sel = z / min(card) capped at 1.
		z := math.Exp(math.Log(0.2) + rng.Float64()*(math.Log(5)-math.Log(0.2)))
		sel := z / math.Min(cards[lr], cards[rr])
		if sel > 1 {
			sel = 1
		}
		return &query.OpNode{
			Kind: kind, Left: l, Right: r,
			Pred: &query.Predicate{Left: []int{la}, Right: []int{ra}, Selectivity: sel},
		}
	}
	q.Root = build(shape)

	// Grouping attributes: from relations visible at the top (relations
	// on the right side of semijoins/antijoins lose their attributes).
	visible := visibleRels(q.Root)
	var groupBy []int
	for _, r := range pickSome(rng, visible, p.GroupingRelations) {
		// Grouping attributes have few distinct values (card^0.2…0.6) so
		// that grouping actually reduces cardinalities.
		d := math.Max(2, math.Pow(cards[r], 0.2+0.4*rng.Float64()))
		groupBy = append(groupBy, q.AddAttr(r, attrName(r, "g", countAttrs(q, r)), d))
	}

	// Aggregates: count(*) plus sums/mins/counts over visible relations.
	f := aggfn.Vector{{Out: "cnt", Kind: aggfn.CountStar}}
	for i := 0; i < p.Aggregates; i++ {
		r := visible[rng.Intn(len(visible))]
		a := q.AddAttr(r, attrName(r, "a", countAttrs(q, r)), distinctFor(rng, cards[r]))
		kind := []aggfn.Kind{aggfn.Sum, aggfn.Min, aggfn.Max, aggfn.Count}[rng.Intn(4)]
		f = append(f, aggfn.Agg{Out: aggOut(i), Kind: kind, Arg: q.AttrNames[a]})
	}
	q.SetGrouping(groupBy, f)

	// Keys: half of the relations get a key on their first join
	// attribute, creating the cases where NeedsGrouping fires. Keyed
	// relations also declare the key as their physical scan order —
	// engine.RandomData generates key columns counting up in row order,
	// so the declaration is truthful and gives the sort-based physical
	// layer orders to propagate and reuse.
	for r := 0; r < n; r++ {
		if rng.Intn(2) == 0 {
			if a := firstAttr(q, r); a >= 0 {
				q.AddKey(r, a)
				q.Distinct[a] = q.Relations[r].Card // keys are unique
				q.SetScanOrder(r, a)
			}
		}
	}
	return q
}

// visibleRels returns the relations whose attributes survive to the top of
// the operator tree (right sides of semijoins and antijoins drop out; the
// groupjoin also hides its right side, but the generator does not emit
// groupjoins).
func visibleRels(n *query.OpNode) []int {
	if n.Kind == query.KindScan {
		return []int{n.Rel}
	}
	left := visibleRels(n.Left)
	if n.Kind.LeftOnly() {
		return left
	}
	return append(left, visibleRels(n.Right)...)
}

func relName(i int) string {
	return "R" + itoa(i)
}

func attrName(rel int, class string, seq int) string {
	return "R" + itoa(rel) + "." + class + itoa(seq)
}

func aggOut(i int) string { return "agg" + itoa(i) }

func countAttrs(q *query.Query, rel int) int {
	return q.Relations[rel].Attrs.Len()
}

func firstAttr(q *query.Query, rel int) int {
	if q.Relations[rel].Attrs.IsEmpty() {
		return -1
	}
	return q.Relations[rel].Attrs.Min()
}

func distinctFor(rng *rand.Rand, card float64) float64 {
	// Join attributes have between card^0.5 and card distinct values.
	return math.Max(2, math.Pow(card, 0.5+0.5*rng.Float64()))
}

func pickRel(rng *rand.Rand, rels []int) int {
	return rels[rng.Intn(len(rels))]
}

func pickSome(rng *rand.Rand, from []int, k int) []int {
	if k > len(from) {
		k = len(from)
	}
	perm := rng.Perm(len(from))
	out := make([]int, 0, k)
	for _, i := range perm[:k] {
		out = append(out, from[i])
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
