package randquery

import (
	"math/rand"
	"testing"

	"eagg/internal/query"
)

func TestCatalan(t *testing.T) {
	want := []int64{1, 1, 2, 5, 14, 42, 132, 429, 1430, 4862}
	for m, w := range want {
		if got := Catalan(m); got != w {
			t.Errorf("Catalan(%d) = %d, want %d", m, got, w)
		}
	}
	// The largest size the paper uses: 19 internal nodes for 20 relations.
	if got := Catalan(19); got != 1767263190 {
		t.Errorf("Catalan(19) = %d", got)
	}
}

func TestUnrankDyckLexOrder(t *testing.T) {
	m := 4
	prev := ""
	for r := int64(0); r < Catalan(m); r++ {
		w := UnrankDyck(m, r)
		if len(w) != 2*m {
			t.Fatalf("word %q has wrong length", w)
		}
		if r > 0 && w <= prev {
			t.Fatalf("lex order violated: %q after %q", w, prev)
		}
		depth := 0
		for _, c := range w {
			if c == '(' {
				depth++
			} else {
				depth--
			}
			if depth < 0 {
				t.Fatalf("invalid Dyck word %q", w)
			}
		}
		if depth != 0 {
			t.Fatalf("unbalanced Dyck word %q", w)
		}
		prev = w
	}
}

func TestUnrankTreeBijective(t *testing.T) {
	for n := 1; n <= 8; n++ {
		seen := map[string]bool{}
		total := Catalan(n - 1)
		for r := int64(0); r < total; r++ {
			tree := UnrankTree(n, r)
			if tree.Leaves() != n || tree.Internal() != n-1 {
				t.Fatalf("n=%d rank=%d: %d leaves, %d internal", n, r, tree.Leaves(), tree.Internal())
			}
			d := DyckOf(tree)
			if seen[d] {
				t.Fatalf("n=%d: duplicate tree %q", n, d)
			}
			seen[d] = true
			// Round trip: the serialized word must unrank back to itself.
			if got := UnrankDyck(n-1, r); got != d {
				t.Fatalf("n=%d rank=%d: word %q, tree serializes to %q", n, r, got, d)
			}
		}
		if int64(len(seen)) != total {
			t.Fatalf("n=%d: %d distinct trees, want %d", n, len(seen), total)
		}
	}
}

func TestUnrankPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range rank")
		}
	}()
	UnrankDyck(3, Catalan(3))
}

func TestGenerateValidQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 2; n <= 20; n++ {
		for trial := 0; trial < 20; trial++ {
			q := Generate(rng, Params{Relations: n})
			if err := q.Validate(); err != nil {
				t.Fatalf("n=%d trial %d: %v", n, trial, err)
			}
			if len(q.Relations) != n {
				t.Fatalf("n=%d: got %d relations", n, len(q.Relations))
			}
			if !q.HasGrouping || len(q.Aggregates) == 0 {
				t.Fatalf("n=%d: query lacks grouping", n)
			}
			// Grouping attributes must be visible at the top.
			vis := map[int]bool{}
			for _, r := range visibleRels(q.Root) {
				vis[r] = true
			}
			q.GroupBy.ForEach(func(a int) {
				if !vis[q.AttrRel[a]] {
					t.Fatalf("n=%d: grouping attribute %s hidden by a left-only operator",
						n, q.AttrNames[a])
				}
			})
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(rand.New(rand.NewSource(7)), Params{Relations: 9})
	b := Generate(rand.New(rand.NewSource(7)), Params{Relations: 9})
	var sigA, sigB string
	var walk func(n *query.OpNode) string
	walk = func(n *query.OpNode) string {
		if n.Kind == query.KindScan {
			return "R" + itoa(n.Rel)
		}
		return "(" + walk(n.Left) + " " + n.Kind.String() + " " + walk(n.Right) + ")"
	}
	sigA, sigB = walk(a.Root), walk(b.Root)
	if sigA != sigB {
		t.Errorf("same seed produced different trees:\n%s\n%s", sigA, sigB)
	}
}

func TestGenerateOperatorMix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := map[query.OpKind]int{}
	var tally func(n *query.OpNode)
	tally = func(n *query.OpNode) {
		if n == nil || n.Kind == query.KindScan {
			return
		}
		counts[n.Kind]++
		tally(n.Left)
		tally(n.Right)
	}
	for trial := 0; trial < 300; trial++ {
		tally(Generate(rng, Params{Relations: 8}).Root)
	}
	if counts[query.KindJoin] == 0 || counts[query.KindFullOuter] == 0 ||
		counts[query.KindLeftOuter] == 0 || counts[query.KindSemiJoin] == 0 {
		t.Errorf("operator mix degenerate: %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if frac := float64(counts[query.KindJoin]) / float64(total); frac < 0.4 || frac > 0.9 {
		t.Errorf("inner join share %.2f outside expectation", frac)
	}
}
