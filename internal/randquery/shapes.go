package randquery

// Deterministic large-query shapes. Unlike Generate, these take no rng:
// the same n always yields the same catalog, predicates and statistics,
// which is what the large-query tests and benchmarks need to pin plans
// across runs. All three shapes scale past the 63-relation fast path —
// they are the workloads of the wide set representation.
//
// Every relation declares a primary key and declares it as the physical
// scan order. The declaration is truthful under engine.RandomData (key
// columns count up in row order), and key-to-foreign-key join predicates
// keep intermediate results bounded by the probe side, so even the
// 100-relation shapes execute end-to-end in tests.

import (
	"fmt"

	"eagg/internal/aggfn"
	"eagg/internal/query"
)

// Chain builds a deterministic n-relation chain
// R0 ⋈ R1 ⋈ … ⋈ R(n-1), each join a foreign-key lookup into the next
// relation's primary key, grouped on attributes of both endpoints.
// Chains keep the csg-cmp-pair count quadratic, so they stay exactly
// enumerable far past 63 relations.
func Chain(n int) *query.Query {
	if n < 2 {
		panic("randquery: need at least two relations")
	}
	q := query.New()
	cards := make([]float64, n)
	pks := make([]int, n)
	for i := 0; i < n; i++ {
		cards[i] = float64(1000 * (1 + (i*7919)%97))
		q.AddRelation(fmt.Sprintf("R%d", i), cards[i])
		pks[i] = q.AddAttr(i, fmt.Sprintf("R%d.pk", i), cards[i])
		q.AddKey(i, pks[i])
		q.SetScanOrder(i, pks[i])
	}
	root := &query.OpNode{Kind: query.KindScan, Rel: 0}
	for i := 1; i < n; i++ {
		fk := q.AddAttr(i-1, fmt.Sprintf("R%d.fk", i-1), cards[i])
		root = &query.OpNode{
			Kind:  query.KindJoin,
			Left:  root,
			Right: &query.OpNode{Kind: query.KindScan, Rel: i},
			Pred:  &query.Predicate{Left: []int{fk}, Right: []int{pks[i]}, Selectivity: 1 / cards[i]},
		}
	}
	q.Root = root
	g0 := q.AddAttr(0, "R0.g", 20)
	gn := q.AddAttr(n-1, fmt.Sprintf("R%d.g", n-1), 20)
	v := q.AddAttr(0, "R0.v", cards[0])
	q.SetGrouping([]int{g0, gn}, aggfn.Vector{
		{Out: "cnt", Kind: aggfn.CountStar},
		{Out: "total", Kind: aggfn.Sum, Arg: q.AttrNames[v]},
	})
	return q
}

// Star builds a deterministic n-relation star: a fact relation joined to
// n-1 dimensions through foreign-key predicates, grouped on a fact
// attribute. Every subset containing the hub is connected, so the exact
// pair count is exponential — stars are the shape that exercises the
// enumeration budget and the greedy fallback.
func Star(n int) *query.Query {
	if n < 2 {
		panic("randquery: need at least two relations")
	}
	q := query.New()
	fact := q.AddRelation("fact", 1_000_000)
	fpk := q.AddAttr(fact, "fact.pk", 1_000_000)
	q.AddKey(fact, fpk)
	q.SetScanOrder(fact, fpk)
	g := q.AddAttr(fact, "fact.g", 50)
	v := q.AddAttr(fact, "fact.v", 500_000)
	root := &query.OpNode{Kind: query.KindScan, Rel: fact}
	for i := 1; i < n; i++ {
		card := float64(100 * i)
		d := q.AddRelation(fmt.Sprintf("dim%d", i), card)
		pk := q.AddAttr(d, fmt.Sprintf("dim%d.pk", i), card)
		q.AddKey(d, pk)
		q.SetScanOrder(d, pk)
		fk := q.AddAttr(fact, fmt.Sprintf("fact.fk%d", i), card)
		root = &query.OpNode{
			Kind:  query.KindJoin,
			Left:  root,
			Right: &query.OpNode{Kind: query.KindScan, Rel: d},
			Pred:  &query.Predicate{Left: []int{fk}, Right: []int{pk}, Selectivity: 1 / card},
		}
	}
	q.Root = root
	q.SetGrouping([]int{g}, aggfn.Vector{
		{Out: "cnt", Kind: aggfn.CountStar},
		{Out: "total", Kind: aggfn.Sum, Arg: q.AttrNames[v]},
	})
	return q
}

// Clique builds a deterministic n-relation clique in the
// attribute-connectivity sense: every pair of relations shares a join
// conjunct, n(n-1)/2 conjuncts in total. The query model carries one
// predicate per operator node, so the conjuncts are distributed over
// n-1 multi-attribute predicates: the join that introduces relation j
// equates one attribute of every earlier relation with an attribute of
// j. Those predicates become hyperedges of growing width, routing the
// enumeration through the buildable-sets path rather than plain DPhyp —
// the third topology the wide representation has to handle.
func Clique(n int) *query.Query {
	if n < 2 {
		panic("randquery: need at least two relations")
	}
	q := query.New()
	cards := make([]float64, n)
	for i := 0; i < n; i++ {
		cards[i] = float64(100 * (1 + (i*31)%17))
		q.AddRelation(fmt.Sprintf("C%d", i), cards[i])
		pk := q.AddAttr(i, fmt.Sprintf("C%d.pk", i), cards[i])
		q.AddKey(i, pk)
		q.SetScanOrder(i, pk)
	}
	root := &query.OpNode{Kind: query.KindScan, Rel: 0}
	for j := 1; j < n; j++ {
		var left, right []int
		for i := 0; i < j; i++ {
			left = append(left, q.AddAttr(i, fmt.Sprintf("C%d.j%d", i, j), cards[i]/2))
			right = append(right, q.AddAttr(j, fmt.Sprintf("C%d.j%d", j, i), cards[j]/2))
		}
		root = &query.OpNode{
			Kind:  query.KindJoin,
			Left:  root,
			Right: &query.OpNode{Kind: query.KindScan, Rel: j},
			Pred:  &query.Predicate{Left: left, Right: right, Selectivity: 1 / cards[j]},
		}
	}
	q.Root = root
	g0 := q.AddAttr(0, "C0.g", 10)
	q.SetGrouping([]int{g0}, aggfn.Vector{{Out: "cnt", Kind: aggfn.CountStar}})
	return q
}
