// Package randquery generates the random query workload of Sec. 5:
// uniformly random binary operator trees obtained by unranking Dyck words
// in lexicographic order (Liebehenschel's procedure), random operators on
// internal nodes, relations on leaves, random equality join predicates,
// random grouping attributes, and random cardinalities and selectivities.
package randquery

import "fmt"

// maxInternal bounds the tree sizes the unranker supports; Catalan numbers
// and ballot counts up to this size fit comfortably in int64.
const maxInternal = 30

// completions[l][d] is the number of ways to complete a Dyck prefix with l
// symbols remaining and current depth d (opens minus closes).
var completions [2*maxInternal + 1][]int64

func init() {
	for l := 0; l <= 2*maxInternal; l++ {
		completions[l] = make([]int64, 2*maxInternal+2)
	}
	completions[0][0] = 1
	for l := 1; l <= 2*maxInternal; l++ {
		for d := 0; d <= 2*maxInternal; d++ {
			c := completions[l-1][d+1] // emit '('
			if d > 0 {
				c += completions[l-1][d-1] // emit ')'
			}
			completions[l][d] = c
		}
	}
}

// Catalan returns the m-th Catalan number, the number of binary trees with
// m internal nodes (m+1 leaves).
func Catalan(m int) int64 {
	if m < 0 || m > maxInternal {
		panic(fmt.Sprintf("randquery: Catalan(%d) out of supported range", m))
	}
	return completions[2*m][0]
}

// UnrankDyck returns the rank-th Dyck word of length 2m in lexicographic
// order ('(' < ')'), rank ∈ [0, Catalan(m)).
func UnrankDyck(m int, rank int64) string {
	if rank < 0 || rank >= Catalan(m) {
		panic(fmt.Sprintf("randquery: rank %d out of range for m=%d", rank, m))
	}
	buf := make([]byte, 2*m)
	depth := 0
	for i := 0; i < 2*m; i++ {
		remaining := 2*m - i - 1
		// Count completions if we emit '(' here.
		withOpen := completions[remaining][depth+1]
		if rank < withOpen {
			buf[i] = '('
			depth++
		} else {
			rank -= withOpen
			buf[i] = ')'
			depth--
		}
	}
	return string(buf)
}

// Tree is a binary tree shape; leaves are nil-children nodes.
type Tree struct {
	Left, Right *Tree
}

// IsLeaf reports whether the node is a leaf.
func (t *Tree) IsLeaf() bool { return t.Left == nil && t.Right == nil }

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int {
	if t.IsLeaf() {
		return 1
	}
	return t.Left.Leaves() + t.Right.Leaves()
}

// Internal returns the number of internal nodes.
func (t *Tree) Internal() int {
	if t.IsLeaf() {
		return 0
	}
	return 1 + t.Left.Internal() + t.Right.Internal()
}

// UnrankTree returns the rank-th binary tree with n leaves (n-1 internal
// nodes) under the lexicographic Dyck-word order.
func UnrankTree(n int, rank int64) *Tree {
	if n < 1 {
		panic("randquery: trees need at least one leaf")
	}
	word := UnrankDyck(n-1, rank)
	pos := 0
	var parse func() *Tree
	parse = func() *Tree {
		if pos >= len(word) || word[pos] == ')' {
			return &Tree{}
		}
		pos++ // consume '('
		left := parse()
		pos++ // consume ')'
		right := parse()
		return &Tree{Left: left, Right: right}
	}
	t := parse()
	if pos != len(word) {
		panic("randquery: dangling Dyck symbols")
	}
	return t
}

// DyckOf serializes a tree back into its Dyck word (inverse of
// UnrankTree's parse), used to verify bijectivity.
func DyckOf(t *Tree) string {
	if t.IsLeaf() {
		return ""
	}
	return "(" + DyckOf(t.Left) + ")" + DyckOf(t.Right)
}
