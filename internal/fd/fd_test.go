package fd

import (
	"testing"

	"eagg/internal/bitset"
)

func TestClosureBasic(t *testing.T) {
	var s Set
	s.Add(bitset.NewV(0), bitset.NewV(1, 2)) // 0 → 1,2
	s.Add(bitset.NewV(1, 2), bitset.NewV(3)) // 1,2 → 3
	got := s.Closure(bitset.NewV(0))
	if got != bitset.NewV(0, 1, 2, 3) {
		t.Errorf("closure = %v", got)
	}
	// 1 alone implies nothing.
	if s.Closure(bitset.NewV(1)) != bitset.NewV(1) {
		t.Error("partial determinant must not fire")
	}
}

func TestClosureEquiv(t *testing.T) {
	var s Set
	s.AddEquiv(0, 5)
	s.Add(bitset.NewV(5), bitset.NewV(6))
	if !s.Implies(bitset.NewV(0), 6) {
		t.Error("0 ↔ 5 → 6 must chain")
	}
	if !s.Implies(bitset.NewV(5), 0) {
		t.Error("equivalence must work both ways")
	}
}

func TestTrivialFDsIgnored(t *testing.T) {
	var s Set
	s.Add(bitset.NewV(1), bitset.NewV(1))
	s.Add(bitset.VSet{}, bitset.NewV(2))
	if s.Len() != 0 {
		t.Errorf("trivial FDs stored: %d", s.Len())
	}
}

func TestReduce(t *testing.T) {
	var s Set
	// 0 → 1 (key → name), 2 ↔ 3 (join), 3 → 4 (key → name).
	s.Add(bitset.NewV(0), bitset.NewV(1))
	s.AddEquiv(2, 3)
	s.Add(bitset.NewV(3), bitset.NewV(4))
	// G = {0, 1, 4} with 0 → 1: 1 drops; 4 not implied by {0}: stays.
	got := s.Reduce(bitset.NewV(0, 1, 4))
	if got != bitset.NewV(0, 4) {
		t.Errorf("Reduce = %v, want {0, 4}", got)
	}
	// G = {2, 3, 4}: 2 ↔ 3 and 3 → 4, so a single representative of the
	// equivalence class remains (the ascending greedy drops 2 first,
	// keeping {3}).
	got = s.Reduce(bitset.NewV(2, 3, 4))
	if got != bitset.NewV(3) {
		t.Errorf("Reduce = %v, want {3}", got)
	}
	// Grouping sets are never reduced to ∅.
	var empty Set
	if empty.Reduce(bitset.NewV(7)) != bitset.NewV(7) {
		t.Error("no-FD reduce must be identity")
	}
}

func TestReduceDeterministic(t *testing.T) {
	var s Set
	s.AddEquiv(1, 2) // either could represent the pair
	got := s.Reduce(bitset.NewV(1, 2))
	// Ascending greedy keeps the larger id (1 is dropped first since
	// {2} → 1 holds).
	if got.Len() != 1 {
		t.Errorf("Reduce of an equivalent pair = %v", got)
	}
	if got != s.Reduce(bitset.NewV(1, 2)) {
		t.Error("Reduce must be deterministic")
	}
}
