// Package fd implements functional dependencies over the query's attribute
// universe. The paper's dominance criterion (Def. 4) and top-grouping
// elimination (Sec. 3.2) are stated in terms of FD closures; the plan
// generator uses this package for the query-level dependencies that hold
// in every complete plan:
//
//   - key → attributes for every base-relation candidate key, and
//   - a ↔ b for every *inner* equi-join predicate a = b.
//
// Both families survive outer-join padding under the null-equality
// convention of Sec. 2.3 (a padded key is NULL and so are the attributes
// it determines; an inner predicate below an outer join holds with both
// sides NULL on padded rows). Predicates of outer joins themselves are
// excluded: a left outerjoin pads only its right side, so a = b fails with
// a non-NULL and b NULL.
package fd

import "eagg/internal/bitset"

// FD is a functional dependency Det → Dep.
type FD struct {
	Det, Dep bitset.VSet
}

// Set is a collection of functional dependencies.
type Set struct {
	fds []FD
}

// Add appends Det → Dep.
func (s *Set) Add(det, dep bitset.VSet) {
	if dep.SubsetOf(det) || det.IsEmpty() {
		return // trivial
	}
	s.fds = append(s.fds, FD{Det: det, Dep: dep})
}

// AddEquiv records a ↔ b (both directions of an inner equi-join pair).
func (s *Set) AddEquiv(a, b int) {
	s.Add(bitset.SingleV(a), bitset.SingleV(b))
	s.Add(bitset.SingleV(b), bitset.SingleV(a))
}

// Len returns the number of stored dependencies.
func (s *Set) Len() int { return len(s.fds) }

// Closure computes the attribute closure attrs⁺ under the dependency set
// (the standard fixpoint).
func (s *Set) Closure(attrs bitset.VSet) bitset.VSet {
	out := attrs
	for changed := true; changed; {
		changed = false
		for _, f := range s.fds {
			if f.Det.SubsetOf(out) && !f.Dep.SubsetOf(out) {
				out = out.Union(f.Dep)
				changed = true
			}
		}
	}
	return out
}

// Implies reports whether attrs → a follows from the set.
func (s *Set) Implies(attrs bitset.VSet, a int) bool {
	return s.Closure(attrs).Contains(a)
}

// Reduce removes attributes that are functionally implied by the remaining
// ones — a minimal-ish cover of the attribute set (greedy, ascending, so
// the result is deterministic). Grouping by Reduce(G) produces exactly the
// groups of G, which is what the cardinality estimator exploits.
func (s *Set) Reduce(attrs bitset.VSet) bitset.VSet {
	if len(s.fds) == 0 {
		return attrs
	}
	out := attrs
	attrs.ForEach(func(a int) {
		rest := out.Remove(a)
		if !rest.IsEmpty() && s.Closure(rest).Contains(a) {
			out = rest
		}
	})
	if out.IsEmpty() {
		return attrs // never reduce to nothing
	}
	return out
}
