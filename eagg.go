// Package eagg is a plan generator that jointly reorders joins — including
// outer joins, semijoins, antijoins and groupjoins — and the placement of
// grouping (eager aggregation), reproducing Eich & Moerkotte, "Dynamic
// Programming: The Next Step" (ICDE 2015).
//
// The package is a thin facade over the building blocks in internal/:
//
//   - build a Query (relations, statistics, keys, an initial operator
//     tree, grouping attributes and an aggregation vector),
//   - Optimize it with one of the plan generators of the paper (DPhyp
//     baseline, EA-All, EA-Prune, H1, H2) or the beam-search extension,
//   - inspect the resulting Plan, and optionally
//   - Execute it on concrete data to cross-check results, or
//   - Reoptimize it in the cardinality feedback loop: execute, harvest
//     the measured per-operator cardinalities, re-optimize under them.
//
// A minimal end-to-end use:
//
//	q := eagg.NewQuery()
//	fact := q.AddRelation("fact", 1_000_000)
//	dim := q.AddRelation("dim", 100)
//	fk := q.AddAttr(fact, "fact.fk", 100)
//	g := q.AddAttr(fact, "fact.g", 10)
//	q.AddAttr(fact, "fact.v", 500_000)
//	pk := q.AddAttr(dim, "dim.pk", 100)
//	q.AddKey(dim, pk)
//	q.Root = eagg.Join(eagg.InnerJoin,
//		eagg.Scan(fact), eagg.Scan(dim), fk, pk, 1.0/100)
//	q.SetGrouping([]int{g}, eagg.Aggregates(
//		eagg.Count("cnt"), eagg.Sum("total", "fact.v")))
//	res, err := eagg.Optimize(q, eagg.Options{Algorithm: eagg.EAPrune})
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package eagg

import (
	"eagg/internal/aggfn"
	"eagg/internal/algebra"
	"eagg/internal/core"
	"eagg/internal/cost"
	"eagg/internal/engine"
	"eagg/internal/obs"
	"eagg/internal/plan"
	"eagg/internal/query"
	"eagg/internal/service"
)

// Query is the optimizer input: relations with statistics, the initial
// operator tree, grouping attributes and aggregates.
type Query = query.Query

// OpNode is a node of the initial operator tree.
type OpNode = query.OpNode

// Predicate is an equi-join predicate with a selectivity estimate.
type Predicate = query.Predicate

// Plan is an optimized operator tree with logical properties.
type Plan = plan.Plan

// Options select the algorithm and its parameters, including Workers: the
// DP driver parallelizes across result-set levels (0 = GOMAXPROCS, 1 =
// sequential reference) and returns bit-identical plans for every worker
// count. See the README's "Parallel optimization" section.
type Options = core.Options

// Result carries the optimized plan and search statistics.
type Result = core.Result

// Algorithm identifies one of the paper's five plan generators.
type Algorithm = core.Algorithm

// Agg describes one aggregate function of the aggregation vector.
type Agg = aggfn.Agg

// Vector is an ordered aggregation vector F.
type Vector = aggfn.Vector

// Rel is a bag-semantics relation: the map-tuple boundary representation
// used to construct inputs and compare results.
type Rel = algebra.Rel

// Table is a slot-based relation: the flat-row representation the
// execution runtime works on. Convert with algebra.TableOf / Table.Rel,
// or build tables directly.
type Table = algebra.Table

// Data maps relation ids to contents for Execute.
type Data = engine.Data

// TableData maps relation ids to slot-based tables for ExecuteTables;
// obtain it from Data.Tables() or a columnar generator.
type TableData = engine.TableData

// ExecStats profiles one execution: the per-operator cardinality profile
// and the measured intermediate-result volume (actual C_out) against the
// plan's estimate.
type ExecStats = engine.ExecStats

// OpCard is one profiled operator: its canonical key, estimated and
// measured output cardinality.
type OpCard = engine.OpCard

// CardKey canonically identifies a logical intermediate result — the
// (relation-set, grouping-attrs) key measured cardinalities are recorded
// and looked up under.
type CardKey = cost.CardKey

// CardSource is the estimator's pluggable cardinality provider; see
// Options.Stats.
type CardSource = cost.CardSource

// FeedbackOverlay is a CardSource of measured cardinalities falling back
// to the selectivity model; build one from ExecStats.Profile (or
// NewFeedbackOverlay + ExecStats.HarvestInto) and pass it via
// Options.Stats to re-optimize with corrected cardinalities.
type FeedbackOverlay = cost.FeedbackOverlay

// NewFeedbackOverlay returns an empty measured-cardinality overlay.
func NewFeedbackOverlay() *FeedbackOverlay { return cost.NewFeedbackOverlay() }

// FeedbackOptions configures a Reoptimize run (optimizer options,
// execution options, round bound).
type FeedbackOptions = engine.FeedbackOptions

// FeedbackRound is one optimize→execute→harvest iteration of Reoptimize.
type FeedbackRound = engine.FeedbackRound

// FeedbackResult is the outcome of a Reoptimize run: every round, the
// convergence flag, the final result table and the harvested profile.
type FeedbackResult = engine.FeedbackResult

// ExecOptions configures plan execution. Workers selects the
// morsel-driven runtime's per-operator worker count (0 = GOMAXPROCS,
// 1 = the exact sequential reference path); results are bit-identical
// for every value, mirroring how Options.Workers behaves for the
// optimizer.
type ExecOptions = engine.ExecOptions

// Trace is a per-query structured trace: optimizer phases (dp levels,
// feedback rounds, plan-cache outcome) and executor operators (wall
// time, rows in/out) recorded as spans at operator barriers, so
// collection never perturbs results. Pass one via ExecOptions.Trace or
// Request.Exec.Trace; a Trace is single-goroutine (one query at a
// time). Render with ExplainAnalyze or Trace.WriteChrome (Perfetto /
// chrome://tracing).
type Trace = obs.Trace

// NewTrace returns an empty trace ready to record one query.
func NewTrace() *Trace { return obs.NewTrace() }

// MetricsRegistry is an engine-wide registry of counters, gauges and
// latency histograms; Engine.Registry() exposes the engine's, and
// Registry.Handler serves it as Prometheus text (see the README's
// metrics-endpoint section).
type MetricsRegistry = obs.Registry

// ExplainAnalyze joins a traced execution with its plan: the plan tree
// annotated per operator with estimated vs measured cardinality,
// q-error and wall time. The trace must come from executing exactly p.
func ExplainAnalyze(q *Query, p *Plan, tr *Trace) string {
	return engine.ExplainAnalyze(q, p, tr)
}

// Engine is the embedded query service: one shared worker pool, plan
// cache and (optionally) global feedback overlay serving many concurrent
// queries against resident table data. Construct with NewEngine, then
// execute through Sessions from any number of goroutines; results are
// bit-identical to the one-shot Optimize + ExecuteTables calls.
type Engine = service.Engine

// EngineOptions configures an Engine: shared worker count, admission
// bound, shared feedback, plan-cache size.
type EngineOptions = service.EngineOptions

// Session is one client's handle on an Engine (safe for concurrent use).
type Session = service.Session

// Request is one query submission to a Session: optimizer and execution
// options plus the input data (inline or a registered dataset name).
type Request = service.Request

// Response is one executed query: the result table, the plan, execution
// and optimizer statistics, and the cache/epoch provenance.
type Response = service.Response

// EngineMetrics is a point-in-time snapshot of an Engine's shared state
// (cache hit/miss counters, feedback epoch, pool activity).
type EngineMetrics = service.Metrics

// NewEngine starts an embedded query-service engine.
func NewEngine(opts EngineOptions) *Engine { return service.NewEngine(opts) }

// Pool is a shared morsel scheduler: one fixed worker set multiplexed
// across the operator fan-outs of concurrent plan executions (see
// ExecOptions.Pool). Engines manage their own pool; NewPool is for
// embedding the scheduler without the full service layer.
type Pool = algebra.Pool

// NewPool starts a shared execution worker pool.
func NewPool(workers int) *Pool { return algebra.NewPool(workers) }

// SharedOverlay is the concurrent counterpart of FeedbackOverlay: an
// epoch-versioned, copy-on-write accumulator of measured cardinalities
// shared across queries. Readers take immutable Snapshots; Publish only
// advances the epoch when a measurement actually changes.
type SharedOverlay = cost.SharedOverlay

// NewSharedOverlay returns an empty shared overlay at epoch 0.
func NewSharedOverlay() *SharedOverlay { return cost.NewSharedOverlay() }

// Fingerprint returns the canonical signature of a (query, options)
// pair — equal fingerprints guarantee the same chosen plan under the
// same statistics. Workers and Stats are excluded (plans are shareable
// across both); it is the query half of the service plan-cache key.
func Fingerprint(q *Query, opts Options) string { return core.Fingerprint(q, opts) }

// PhysMode selects the physical algebra the plan generator may use: the
// hash layer only (default), the sort-based layer, or both competing
// per plan class (see Options.Phys and the README's "-phys" section).
type PhysMode = core.PhysMode

// The physical algebra modes.
const (
	// PhysHash builds plans for the hash layer only (the default).
	PhysHash = core.PhysModeHash
	// PhysSort prefers sort-merge joins and sort-group aggregation.
	PhysSort = core.PhysModeSort
	// PhysAuto lets hash and sort operators compete; the DP table keys
	// plan classes by (relation set, collapse state, order) so ordered
	// plans survive and sorts get eliminated where orders can be reused.
	PhysAuto = core.PhysModeAuto
)

// ParsePhysMode resolves "hash", "sort" or "auto" ("" = hash).
func ParsePhysMode(s string) (PhysMode, error) { return core.ParsePhysMode(s) }

// ExecRuntime selects the execution runtime: row-at-a-time (default,
// the reference) or batch-at-a-time columnar vectors (see
// ExecOptions.Runtime and the README's "-runtime" section). Results are
// bit-identical between the two.
type ExecRuntime = engine.Runtime

// The execution runtimes.
const (
	// RuntimeRow executes plans row at a time (the default).
	RuntimeRow = engine.RuntimeRow
	// RuntimeBatch executes plans batch at a time on columnar vectors.
	RuntimeBatch = engine.RuntimeBatch
)

// ParseExecRuntime resolves "row" or "batch" ("" = row).
func ParseExecRuntime(s string) (ExecRuntime, error) { return engine.ParseRuntime(s) }

// The plan generators: the paper's five (Sec. 4) plus the beam extension.
const (
	// DPhyp is the baseline: optimal join ordering, grouping stays on top.
	DPhyp = core.AlgDPhyp
	// EAAll explores the complete eager-aggregation search space.
	EAAll = core.AlgEAAll
	// EAPrune is EA-All with optimality-preserving dominance pruning.
	EAPrune = core.AlgEAPrune
	// H1 keeps the locally cheapest tree per plan class.
	H1 = core.AlgH1
	// H2 is H1 with the eagerness-biased comparison (set Options.F).
	H2 = core.AlgH2
	// Beam keeps the K cheapest plans per plan class (set
	// Options.BeamWidth) — an extension interpolating between H1 and
	// EA-All.
	Beam = core.AlgBeam
)

// Operator kinds for the initial tree.
const (
	InnerJoin     = query.KindJoin
	SemiJoin      = query.KindSemiJoin
	AntiJoin      = query.KindAntiJoin
	LeftOuterJoin = query.KindLeftOuter
	FullOuterJoin = query.KindFullOuter
	GroupJoin     = query.KindGroupJoin
)

// NewQuery returns an empty query.
func NewQuery() *Query { return query.New() }

// Scan builds a base-relation leaf.
func Scan(rel int) *OpNode { return &OpNode{Kind: query.KindScan, Rel: rel} }

// Join builds an operator node with a single-pair equi-join predicate.
func Join(kind query.OpKind, left, right *OpNode, leftAttr, rightAttr int, selectivity float64) *OpNode {
	return &OpNode{
		Kind: kind, Left: left, Right: right,
		Pred: &Predicate{Left: []int{leftAttr}, Right: []int{rightAttr}, Selectivity: selectivity},
	}
}

// Aggregates builds an aggregation vector.
func Aggregates(aggs ...Agg) Vector { return Vector(aggs) }

// Count returns a count(*) aggregate.
func Count(out string) Agg { return Agg{Out: out, Kind: aggfn.CountStar} }

// CountOf returns a count(attr) aggregate.
func CountOf(out, attr string) Agg { return Agg{Out: out, Kind: aggfn.Count, Arg: attr} }

// Sum returns a sum(attr) aggregate.
func Sum(out, attr string) Agg { return Agg{Out: out, Kind: aggfn.Sum, Arg: attr} }

// Min returns a min(attr) aggregate.
func Min(out, attr string) Agg { return Agg{Out: out, Kind: aggfn.Min, Arg: attr} }

// Max returns a max(attr) aggregate.
func Max(out, attr string) Agg { return Agg{Out: out, Kind: aggfn.Max, Arg: attr} }

// Avg returns an avg(attr) aggregate.
func Avg(out, attr string) Agg { return Agg{Out: out, Kind: aggfn.Avg, Arg: attr} }

// Optimize runs the selected plan generator.
func Optimize(q *Query, opts Options) (*Result, error) {
	return core.Optimize(q, opts)
}

// Execute runs an optimized plan on concrete data, returning the result
// relation over G ∪ A(F). Execution is slot-based: equi-joins run as
// build/probe hash joins and groupings as typed hash aggregation (see
// DESIGN.md).
func Execute(q *Query, p *Plan, data Data) (*Rel, error) {
	return engine.Exec(q, p, data)
}

// ExecuteTables is Execute on slot-based tables, avoiding the boundary
// conversion for callers that already hold columnar data.
func ExecuteTables(q *Query, p *Plan, data TableData) (*Table, error) {
	return engine.ExecTables(q, p, data)
}

// ExecuteProfiled is ExecuteTables plus execution statistics: the actual
// intermediate-result volume to compare against the plan's C_out
// estimate.
func ExecuteProfiled(q *Query, p *Plan, data TableData) (*Table, *ExecStats, error) {
	return engine.ExecProfiled(q, p, data)
}

// ExecuteTablesOpts is ExecuteTables under explicit execution options —
// the entry point for morsel-driven parallel execution.
func ExecuteTablesOpts(q *Query, p *Plan, data TableData, opts ExecOptions) (*Table, error) {
	return engine.ExecTablesOpts(q, p, data, opts)
}

// ExecuteProfiledOpts is ExecuteProfiled under explicit execution
// options.
func ExecuteProfiledOpts(q *Query, p *Plan, data TableData, opts ExecOptions) (*Table, *ExecStats, error) {
	return engine.ExecProfiledOpts(q, p, data, opts)
}

// Reoptimize closes the cardinality feedback loop: optimize, execute
// with profiling, overlay the measured per-operator cardinalities on the
// estimator, and re-optimize — until the chosen plan is stable or the
// round bound is hit. Feedback may change the chosen plan, never the
// result (the equivalence suites enforce it).
func Reoptimize(q *Query, data TableData, opts FeedbackOptions) (*FeedbackResult, error) {
	return engine.Reoptimize(q, data, opts)
}

// Canonical evaluates the query as written (initial tree + top grouping):
// the reference result for Execute.
func Canonical(q *Query, data Data) (*Rel, error) {
	return engine.Canonical(q, data)
}

// CanonicalTables is Canonical on slot-based tables.
func CanonicalTables(q *Query, data TableData) (*Table, error) {
	return engine.CanonicalTables(q, data)
}

// CanonicalTablesOpts is CanonicalTables under explicit execution
// options.
func CanonicalTablesOpts(q *Query, data TableData, opts ExecOptions) (*Table, error) {
	return engine.CanonicalTablesOpts(q, data, opts)
}

// OutputAttrs returns the result schema of the query.
func OutputAttrs(q *Query) []string { return engine.OutputAttrs(q) }

// SameResult compares two results as bags over the query's output schema.
func SameResult(q *Query, a, b *Rel) bool {
	return algebra.EqualBags(a, b, engine.OutputAttrs(q))
}
