// Equivalences: replays the paper's Sec. 3.1 worked examples (Fig. 4) with
// the executable-equivalence layer — Eqv. 10 (pushing a grouping below an
// inner join) and Eqv. 12 (below a full outerjoin with default vectors),
// printing every intermediate relation exactly like the figure.
package main

import (
	"fmt"
	"log"

	"eagg/internal/aggfn"
	"eagg/internal/algebra"
	"eagg/internal/eqv"
)

func main() {
	e1 := algebra.NewRel([]string{"g1", "j1", "a1"},
		[]any{1, 1, 2},
		[]any{1, 2, 4},
		[]any{1, 2, 8},
	)
	e2 := algebra.NewRel([]string{"g2", "j2", "a2"},
		[]any{1, 1, 2},
		[]any{1, 1, 4},
		[]any{1, 2, 8},
	)
	in := &eqv.Instance{
		E1: e1, E2: e2,
		J1: []string{"j1"}, J2: []string{"j2"},
		G: []string{"g1", "g2"},
		F: aggfn.Vector{
			{Out: "c", Kind: aggfn.CountStar},
			{Out: "b1", Kind: aggfn.Sum, Arg: "a1"},
			{Out: "b2", Kind: aggfn.Sum, Arg: "a2"},
		},
	}

	fmt.Println("Figure 4 input relations")
	fmt.Println("e1:")
	fmt.Print(e1)
	fmt.Println("e2:")
	fmt.Print(e2)

	fmt.Println("\n=== Eqv. 10: Γ_G;F(e1 B e2) ≡ Γ(Γ(e1) B e2) ===")
	e3 := algebra.Join(e1, e2, in.Pred())
	fmt.Println("e3 := e1 B_{j1=j2} e2:")
	fmt.Print(e3)
	lhs := in.LHS(eqv.OpJoin)
	fmt.Println("e5 := Γ_{g1,g2;F}(e3)  (left-hand side):")
	fmt.Print(lhs)

	// Inner grouping e4 := Γ_{g1,j1; F1}(e1) with F1 = c1:count(*), b1':sum(a1).
	inner := aggfn.Vector{
		{Out: "b1'", Kind: aggfn.Sum, Arg: "a1"},
		{Out: "c1", Kind: aggfn.CountStar},
	}
	e4 := algebra.Group(e1, []string{"g1", "j1"}, inner)
	fmt.Println("e4 := Γ_{g1,j1;F1}(e1)  (eager grouping):")
	fmt.Print(e4)
	e6 := algebra.Join(e4, e2, in.Pred())
	fmt.Println("e6 := e4 B_{j1=j2} e2:")
	fmt.Print(e6)

	rule10, err := eqv.RuleByNum(10)
	if err != nil {
		log.Fatal(err)
	}
	rhs, err := rule10.RHS(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("e7 := Γ_{g1,g2;F2}(e6)  (right-hand side):")
	fmt.Print(rhs)
	fmt.Printf("LHS ≡ RHS: %v\n", algebra.EqualBags(lhs, rhs, in.OutAttrs()))

	fmt.Println("\n=== Eqv. 12: the same push below a full outerjoin (with defaults) ===")
	// Extend both inputs with orphan tuples so the outerjoin pads.
	in.E1.Tuples = append(in.E1.Tuples,
		algebra.Tuple{"g1": algebra.Int(2), "j1": algebra.Int(5), "a1": algebra.Int(3)})
	in.E2.Tuples = append(in.E2.Tuples,
		algebra.Tuple{"g2": algebra.Int(7), "j2": algebra.Int(9), "a2": algebra.Int(5)})

	rule12, _ := eqv.RuleByNum(12)
	ok, lhs12, rhs12, err := rule12.Check(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("LHS Γ_G;F(e1 K e2):")
	fmt.Print(lhs12)
	fmt.Println("RHS Γ(Γ(e1) K^{F¹({⊥}),c1:1;−} e2):")
	fmt.Print(rhs12)
	fmt.Printf("LHS ≡ RHS: %v\n", ok)
	fmt.Println("\nnote the orphan groups: the supplier-less nation keeps c=1 with b1 NULL —")
	fmt.Println("exactly the default vector F¹1({⊥}), c1:1 of the generalized outerjoin.")
}
