// Heuristics: runs a random workload batch (the Sec. 5 setup) and compares
// the quality/price trade-off of the plan generators: how close H1 and H2
// come to the EA-Prune optimum, and what the search costs in enumerated
// trees.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"eagg/internal/core"
	"eagg/internal/randquery"
)

func main() {
	const (
		relations = 7
		queries   = 40
	)
	rng := rand.New(rand.NewSource(2015))

	type agg struct {
		relCost    float64
		worst      float64
		trees      int
		elapsed    time.Duration
		optimalHit int
	}
	algs := []struct {
		name string
		alg  core.Algorithm
		f    float64
		beam int
	}{
		{"DPhyp", core.AlgDPhyp, 0, 0},
		{"H1", core.AlgH1, 0, 0},
		{"H2 F=1.01", core.AlgH2, 1.01, 0},
		{"H2 F=1.03", core.AlgH2, 1.03, 0},
		{"H2 F=1.10", core.AlgH2, 1.10, 0},
		{"Beam k=4", core.AlgBeam, 0, 4},
		{"Beam k=16", core.AlgBeam, 0, 16},
		{"EA-Prune", core.AlgEAPrune, 0, 0},
	}
	results := make([]agg, len(algs))

	for i := 0; i < queries; i++ {
		q := randquery.Generate(rng, randquery.Params{Relations: relations})
		opt, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
		if err != nil {
			log.Fatal(err)
		}
		for ai, a := range algs {
			start := time.Now()
			res, err := core.Optimize(q, core.Options{Algorithm: a.alg, F: a.f, BeamWidth: a.beam})
			if err != nil {
				log.Fatal(err)
			}
			results[ai].elapsed += time.Since(start)
			ratio := res.Plan.Cost / opt.Plan.Cost
			results[ai].relCost += ratio
			if ratio > results[ai].worst {
				results[ai].worst = ratio
			}
			if ratio < 1.000001 {
				results[ai].optimalHit++
			}
			results[ai].trees += res.Stats.PlansBuilt
		}
	}

	fmt.Printf("random workload: %d queries, %d relations each (joins + outer joins + semijoins)\n\n",
		queries, relations)
	fmt.Printf("%-12s %12s %10s %10s %12s %12s\n",
		"algorithm", "avg rel.cost", "worst", "optimal%", "trees built", "total time")
	for ai, a := range algs {
		r := results[ai]
		fmt.Printf("%-12s %12.4f %10.3f %9.0f%% %12d %12v\n",
			a.name,
			r.relCost/float64(queries),
			r.worst,
			100*float64(r.optimalHit)/float64(queries),
			r.trees,
			r.elapsed.Round(time.Microsecond))
	}
	fmt.Println("\nreading the table: EA-Prune defines the optimum (rel.cost 1.0); DPhyp pays")
	fmt.Println("the full price of keeping the grouping on top; H2 trades a tolerance factor")
	fmt.Println("for plan quality — the paper found F=1.03 best (≈7% off optimal at n=13).")
}
