// Quickstart: build a star-schema query through the public facade,
// optimize it with every algorithm of the paper, and execute the optimal
// plan to verify it computes the same result as the query as written.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"eagg"
	"eagg/internal/engine"
)

func main() {
	// A fact table with a low-cardinality grouping column joined to a
	// keyed dimension — the classic situation where pushing the grouping
	// below the join (eager aggregation) collapses the work.
	q := eagg.NewQuery()
	fact := q.AddRelation("fact", 1_000_000)
	dim := q.AddRelation("dim", 100)
	fk := q.AddAttr(fact, "fact.fk", 100)
	g := q.AddAttr(fact, "fact.g", 10)
	q.AddAttr(fact, "fact.v", 500_000)
	pk := q.AddAttr(dim, "dim.pk", 100)
	q.AddKey(dim, pk)
	q.Root = eagg.Join(eagg.InnerJoin, eagg.Scan(fact), eagg.Scan(dim), fk, pk, 1.0/100)
	q.SetGrouping([]int{g}, eagg.Aggregates(
		eagg.Count("cnt"),
		eagg.Sum("total", "fact.v"),
	))

	fmt.Println("select fact.g, count(*), sum(fact.v) from fact join dim group by fact.g")
	fmt.Println()

	for _, run := range []struct {
		name string
		opts eagg.Options
	}{
		{"DPhyp (lazy)", eagg.Options{Algorithm: eagg.DPhyp}},
		{"EA-Prune    ", eagg.Options{Algorithm: eagg.EAPrune}},
		{"H1          ", eagg.Options{Algorithm: eagg.H1}},
		{"H2 F=1.03   ", eagg.Options{Algorithm: eagg.H2, F: 1.03}},
	} {
		res, err := eagg.Optimize(q, run.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  cost=%.6g  eager groupings=%d\n",
			run.name, res.Plan.Cost, res.Plan.CountGroupings())
	}

	// Execute the optimal plan on small random data and compare with the
	// canonical evaluation.
	res, err := eagg.Optimize(q, eagg.Options{Algorithm: eagg.EAPrune})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimal plan:")
	fmt.Print(res.Plan.StringWithQuery(q))

	data := engine.RandomData(rand.New(rand.NewSource(1)), q, 12)
	want, err := eagg.Canonical(q, data)
	if err != nil {
		log.Fatal(err)
	}
	got, err := eagg.Execute(q, res.Plan, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted on sample data — results identical to the lazy plan: %v\n",
		eagg.SameResult(q, want, got))
	fmt.Println("\nresult sample:")
	fmt.Print(got)
}
