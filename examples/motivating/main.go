// Motivating: reproduces the paper's introduction end to end. The query
//
//	select ns.n_name, nc.n_name, count(*)
//	from (nation ns join supplier s on ns.n_nationkey = s.s_nationkey)
//	     full outer join
//	     (nation nc join customer c on nc.n_nationkey = c.c_nationkey)
//	     on ns.n_nationkey = nc.n_nationkey
//	group by ns.n_name, nc.n_name
//
// cannot be improved by join reordering alone — the outer join is a
// barrier, and the inner joins explode before the grouping collapses
// everything. With the paper's equivalences the plan generator pushes
// groupings below the full outerjoin and the cost collapses (on HyPer the
// authors measured 2140 ms → 1.51 ms).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"eagg"
	"eagg/internal/core"
	"eagg/internal/tpch"
)

func main() {
	q := tpch.Ex()
	fmt.Println("the paper's introduction query on TPC-H SF-1 statistics")
	fmt.Println()

	lazy, err := core.Optimize(q, core.Options{Algorithm: core.AlgDPhyp})
	if err != nil {
		log.Fatal(err)
	}
	eager, err := core.Optimize(q, core.Options{Algorithm: core.AlgEAPrune})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("DPhyp (grouping stays on top):   C_out = %.6g\n", lazy.Plan.Cost)
	fmt.Print(lazy.Plan.StringWithQuery(q))
	fmt.Println()
	fmt.Printf("EA-Prune (eager aggregation):    C_out = %.6g  (%.3g× cheaper)\n",
		eager.Plan.Cost, lazy.Plan.Cost/eager.Plan.Cost)
	fmt.Print(eager.Plan.StringWithQuery(q))
	fmt.Println()

	// Execute both plans on synthetic TPC-H-shaped data and show that
	// the results agree while the eager plan touches far fewer tuples.
	data := tpch.GenerateData(rand.New(rand.NewSource(2)), q, tpch.ExecutionScale("Ex"))
	t0 := time.Now()
	lazyRes, err := eagg.Execute(q, lazy.Plan, data)
	if err != nil {
		log.Fatal(err)
	}
	lazyTime := time.Since(t0)
	t1 := time.Now()
	eagerRes, err := eagg.Execute(q, eager.Plan, data)
	if err != nil {
		log.Fatal(err)
	}
	eagerTime := time.Since(t1)

	fmt.Printf("executed on a scaled instance (supplier=300, customer=600):\n")
	fmt.Printf("  lazy plan:  %v   eager plan: %v\n", lazyTime, eagerTime)
	fmt.Printf("  identical results: %v (%d groups)\n",
		eagg.SameResult(q, lazyRes, eagerRes), lazyRes.Card())
}
