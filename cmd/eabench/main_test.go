package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// TestFlagHygiene pins the misuse conventions: unknown -phys values and
// mode flags without -exec exit 2 with a pointed message, matching the
// -feedback convention.
func TestFlagHygiene(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"phys without exec", []string{"-phys", "sort"}, "-phys requires -exec"},
		{"unknown phys value", []string{"-exec", "-phys", "bogus"}, "unknown physical mode"},
		{"runtime without exec", []string{"-runtime", "batch"}, "-runtime requires -exec"},
		{"unknown runtime value", []string{"-exec", "-runtime", "vector"}, "unknown runtime"},
		{"feedback without exec", []string{"-feedback"}, "-feedback requires -exec"},
		{"negative workers", []string{"-workers", "-2"}, "-workers must be"},
		{"bad sf", []string{"-exec", "-sf", "0"}, "-sf must be > 0"},
		{"nothing selected", []string{"-fig", "3"}, "nothing selected"},
		{"serve with exec", []string{"-serve", "-exec"}, "mutually exclusive"},
		{"sessions without serve", []string{"-sessions", "4"}, "-sessions and -requests require -serve"},
		{"requests without serve", []string{"-requests", "10"}, "-sessions and -requests require -serve"},
		{"negative sessions", []string{"-serve", "-sessions", "-1"}, "must be > 0"},
		{"negative requests", []string{"-serve", "-requests", "-5"}, "must be > 0"},
		{"bad serve sf", []string{"-serve", "-sf", "0"}, "-sf must be > 0"},
		{"large with exec", []string{"-large", "-exec"}, "-large is mutually exclusive"},
		{"large with serve", []string{"-large", "-serve"}, "-large is mutually exclusive"},
		{"shape without large", []string{"-shape", "star100"}, "-shape and -pair-budget require -large"},
		{"pair budget without large", []string{"-pair-budget", "1000"}, "-shape and -pair-budget require -large"},
		{"negative pair budget", []string{"-large", "-pair-budget", "-1"}, "-pair-budget must be"},
		{"unknown shape", []string{"-large", "-shape", "ring100"}, "unknown -shape"},
		{"large with feedback", []string{"-large", "-feedback"}, "-feedback requires -exec"},
		{"large with query", []string{"-large", "-query", "Q3"}, "use -shape with -large"},
		{"unwritable cpuprofile", []string{"-table", "1", "-cpuprofile", "no-such-dir/cpu.prof"}, "-cpuprofile"},
		{"unwritable memprofile", []string{"-table", "1", "-memprofile", "no-such-dir/mem.prof"}, "-memprofile"},
		{"trace without exec", []string{"-trace", "out.json"}, "-trace requires -exec"},
		{"trace with serve", []string{"-serve", "-trace", "out.json"}, "-trace requires -exec"},
		{"unwritable trace", []string{"-exec", "-query", "Q3", "-trace", "no-such-dir/out.json"}, "-trace"},
		{"json without exec", []string{"-json"}, "-json requires -exec"},
		{"json with serve", []string{"-serve", "-json"}, "-json requires -exec"},
		{"metrics-addr without serve", []string{"-metrics-addr", "127.0.0.1:0"}, "-metrics-addr requires -serve"},
		{"metrics-addr with exec", []string{"-exec", "-metrics-addr", "127.0.0.1:0"}, "-metrics-addr requires -serve"},
		{"unbindable metrics-addr", []string{"-serve", "-metrics-addr", "256.0.0.1:1"}, "-metrics-addr"},
	}
	for _, tc := range cases {
		var out, errOut bytes.Buffer
		if code := run(tc.args, &out, &errOut); code != 2 {
			t.Errorf("%s: want exit 2, got %d (stderr: %s)", tc.name, code, errOut.String())
		}
		if !strings.Contains(errOut.String(), tc.wantErr) {
			t.Errorf("%s: stderr %q does not mention %q", tc.name, errOut.String(), tc.wantErr)
		}
	}
}

// TestExecPhysRuns drives the -exec mode end to end per physical mode on
// the smallest instance: exit 0 (all plans reproduce the canonical
// result) and, for the sort-based modes, a sorts column with eliminated
// sorts somewhere in the report.
func TestExecPhysRuns(t *testing.T) {
	for _, mode := range []string{"hash", "sort", "auto"} {
		var out, errOut bytes.Buffer
		code := run([]string{"-exec", "-phys", mode, "-sf", "0.2", "-query", "Q3"}, &out, &errOut)
		if code != 0 {
			t.Fatalf("-phys %s: exit %d\nstderr: %s\nstdout: %s", mode, code, errOut.String(), out.String())
		}
		if !strings.Contains(out.String(), "phys "+mode) {
			t.Fatalf("-phys %s: report header missing the mode\n%s", mode, out.String())
		}
		if mode != "hash" && !strings.Contains(out.String(), "/") {
			t.Fatalf("-phys %s: report has no sorts column values\n%s", mode, out.String())
		}
	}
}

// TestExecRuntimeRuns drives the -exec mode end to end per execution
// runtime on the smallest instance: exit 0 (the batch runtime reproduces
// the canonical result bit for bit) and the report header naming the
// runtime. -runtime batch also composes with -serve.
func TestExecRuntimeRuns(t *testing.T) {
	for _, rt := range []string{"row", "batch"} {
		var out, errOut bytes.Buffer
		code := run([]string{"-exec", "-runtime", rt, "-sf", "0.2", "-query", "Q3"}, &out, &errOut)
		if code != 0 {
			t.Fatalf("-runtime %s: exit %d\nstderr: %s\nstdout: %s", rt, code, errOut.String(), out.String())
		}
		if !strings.Contains(out.String(), "runtime "+rt) {
			t.Fatalf("-runtime %s: report header missing the runtime\n%s", rt, out.String())
		}
	}
	var out, errOut bytes.Buffer
	args := []string{"-serve", "-runtime", "batch", "-sf", "0.2", "-query", "Q3", "-sessions", "2", "-requests", "4"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("%v: exit %d\nstderr: %s", args, code, errOut.String())
	}
}

// TestServeRuns drives the -serve mode end to end on the smallest
// instance: exit 0 (every served response reproduced the canonical
// result) and a report with the throughput header, per-shape rows and
// the engine counters. -feedback composes with -serve.
func TestServeRuns(t *testing.T) {
	for _, extra := range [][]string{nil, {"-feedback"}} {
		args := append([]string{"-serve", "-sf", "0.2", "-query", "Q3", "-sessions", "2", "-requests", "4"}, extra...)
		var out, errOut bytes.Buffer
		code := run(args, &out, &errOut)
		if code != 0 {
			t.Fatalf("%v: exit %d\nstderr: %s\nstdout: %s", args, code, errOut.String(), out.String())
		}
		for _, want := range []string{"Service throughput", "2 sessions", "Q3", "engine: cache"} {
			if !strings.Contains(out.String(), want) {
				t.Fatalf("%v: report missing %q\n%s", args, want, out.String())
			}
		}
	}
}

// TestLargeRuns drives the -large mode end to end on the cheapest shape:
// exit 0 (both plans reproduce the canonical result) and a report with
// the wide-representation header and one row per algorithm. clique100 is
// the only shape that optimizes exactly in well under a second — its
// hyperedges admit one buildable set per level — so the heavier chains
// and stars are left to the dedicated large-query tests.
func TestLargeRuns(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run([]string{"-large", "-shape", "clique100"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("-large: exit %d\nstderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	for _, want := range []string{"wide-representation", "clique100", "H1", "Beam(4)", "ok"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-large: report missing %q\n%s", want, out.String())
		}
	}
}

// TestProfileFlags drives a run with both profile flags on the smallest
// workload: exit 0 and non-empty pprof files. Also pins that a bad
// profile path exits 2 before any workload runs (the cases in
// TestFlagHygiene cover the message; this covers "no partial output").
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.prof", dir+"/mem.prof"
	var out, errOut bytes.Buffer
	args := []string{"-table", "1", "-cpuprofile", cpu, "-memprofile", mem}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("%v: exit %d\nstderr: %s", args, code, errOut.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// Misuse (a mode-flag error) must not leave profile files behind:
	// validation runs before profile setup.
	bad := dir + "/never.prof"
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-phys", "sort", "-cpuprofile", bad}, &out, &errOut); code != 2 {
		t.Fatalf("misuse with -cpuprofile: want exit 2, got %d", code)
	}
	if _, err := os.Stat(bad); err == nil {
		t.Fatalf("misuse created profile file %s", bad)
	}
}

// TestHelpExitsZero pins that -h is a request, not misuse.
func TestHelpExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Fatalf("-h: want exit 0, got %d", code)
	}
	if !strings.Contains(errOut.String(), "-phys") {
		t.Fatal("usage output missing -phys")
	}
}

// TestTraceMode drives -exec -trace end to end: exit 0 and a valid
// Chrome trace-event JSON file with the span categories of the run —
// per-query spans, optimizer phases with dp-levels, executor operators.
// -trace also composes with -feedback (round spans appear).
func TestTraceMode(t *testing.T) {
	type chromeTrace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	load := func(path string) chromeTrace {
		t.Helper()
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var tr chromeTrace
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("trace is not valid JSON: %v", err)
		}
		return tr
	}

	dir := t.TempDir()
	path := dir + "/trace.json"
	var out, errOut bytes.Buffer
	args := []string{"-exec", "-query", "Q3", "-sf", "0.2", "-trace", path}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("%v: exit %d\nstderr: %s", args, code, errOut.String())
	}
	tr := load(path)
	if len(tr.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	cats := map[string]int{}
	for _, e := range tr.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("unexpected event phase %q", e.Ph)
		}
		cats[e.Cat]++
	}
	for _, want := range []string{"query", "optimize", "dp-level", "op"} {
		if cats[want] == 0 {
			t.Errorf("trace has no %q spans (got %v)", want, cats)
		}
	}

	fbPath := dir + "/feedback.json"
	out.Reset()
	errOut.Reset()
	args = []string{"-exec", "-feedback", "-query", "Q3", "-sf", "0.2", "-trace", fbPath}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("%v: exit %d\nstderr: %s", args, code, errOut.String())
	}
	rounds := 0
	for _, e := range load(fbPath).TraceEvents {
		if e.Cat == "feedback" {
			rounds++
		}
	}
	if rounds == 0 {
		t.Error("feedback trace has no round spans")
	}
}

// TestJSONMode drives -exec -json (and the -feedback composition): exit
// 0 and parseable JSON with the mode marker, string-rendered enums and
// the verification verdict.
func TestJSONMode(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-exec", "-query", "Q3", "-sf", "0.2", "-json"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("%v: exit %d\nstderr: %s", args, code, errOut.String())
	}
	var execRep struct {
		Mode     string `json:"mode"`
		Phys     string `json:"phys"`
		Runtime  string `json:"runtime"`
		AllMatch bool   `json:"all_match"`
		Rows     []struct {
			Query string
			Plan  string
		} `json:"rows"`
	}
	if err := json.Unmarshal(out.Bytes(), &execRep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if execRep.Mode != "exec" || execRep.Phys != "hash" || execRep.Runtime != "row" {
		t.Errorf("unexpected header: %+v", execRep)
	}
	if !execRep.AllMatch || len(execRep.Rows) != 2 {
		t.Errorf("want all_match with 2 rows, got %+v", execRep)
	}

	out.Reset()
	errOut.Reset()
	args = []string{"-exec", "-feedback", "-query", "Q3", "-sf", "0.2", "-json"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("%v: exit %d\nstderr: %s", args, code, errOut.String())
	}
	var fbRep struct {
		Mode     string `json:"mode"`
		AllMatch bool   `json:"all_match"`
	}
	if err := json.Unmarshal(out.Bytes(), &fbRep); err != nil {
		t.Fatalf("-feedback -json output is not valid JSON: %v", err)
	}
	if fbRep.Mode != "feedback" || !fbRep.AllMatch {
		t.Errorf("unexpected feedback report: %+v", fbRep)
	}
}

// TestServeMetricsAddr drives -serve -metrics-addr end to end: the bound
// address goes to stderr before the run, and the report records that the
// endpoint was served. (Live scraping under concurrency is covered by
// the service package's endpoint test.)
func TestServeMetricsAddr(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-serve", "-sf", "0.2", "-query", "Q3", "-sessions", "2", "-requests", "4", "-metrics-addr", "127.0.0.1:0"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("%v: exit %d\nstderr: %s", args, code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "metrics on http://127.0.0.1:") {
		t.Errorf("stderr does not announce the bound address: %s", errOut.String())
	}
	if !strings.Contains(out.String(), "metrics: served on http://127.0.0.1:") {
		t.Errorf("report does not record the metrics endpoint:\n%s", out.String())
	}
}
